// Command flymond is the FlyMon switch daemon: it hosts the simulated RMT
// data plane (CMU Groups + registers) and serves the southbound control
// channel that flymonctl and SDM controllers speak.
//
// Usage:
//
//	flymond [-listen :9177] [-groups 9] [-buckets 65536] [-bitwidth 32]
//	        [-mode accurate|efficient]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"flymon/internal/controlplane"
	"flymon/internal/rpc"
)

func main() {
	listen := flag.String("listen", ":9177", "control-channel listen address")
	groups := flag.Int("groups", 9, "CMU Groups in the pipeline (9 = full cross-stacked Tofino pipeline)")
	spliced := flag.Int("spliced", 0, "additional Appendix-E groups reached by mirror+recirculation (max 3)")
	buckets := flag.Int("buckets", 65536, "register buckets per CMU")
	bitWidth := flag.Int("bitwidth", 32, "register bucket width in bits")
	partitions := flag.Int("partitions", 32, "memory partitions per CMU")
	mode := flag.String("mode", "accurate", "memory allocation mode: accurate or efficient")
	flag.Parse()

	var memMode controlplane.MemoryMode
	switch strings.ToLower(*mode) {
	case "accurate":
		memMode = controlplane.Accurate
	case "efficient":
		memMode = controlplane.Efficient
	default:
		log.Fatalf("flymond: unknown memory mode %q", *mode)
	}

	ctrl := controlplane.NewController(controlplane.Config{
		Groups:        *groups,
		SplicedGroups: *spliced,
		Buckets:       *buckets,
		BitWidth:      *bitWidth,
		Partitions:    *partitions,
		Mode:          memMode,
	})
	srv := rpc.NewServer(ctrl, log.Printf)
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("flymond: %v", err)
	}
	fmt.Printf("flymond: %d+%d CMU Groups (%d CMUs), %d×%d-bit buckets/CMU, %s allocation\n",
		*groups, ctrl.Pipeline().SplicedGroups(), (*groups+ctrl.Pipeline().SplicedGroups())*3, *buckets, *bitWidth, memMode)
	fmt.Printf("flymond: control channel on %s\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("flymond: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("flymond: close: %v", err)
	}
}
