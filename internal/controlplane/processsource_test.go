package controlplane

import (
	"sync/atomic"
	"testing"

	"flymon/internal/packet"
	"flymon/internal/trace"
)

// sliceSource is a BatchSource over a pre-chunked packet list: workers
// race to claim chunks via an atomic cursor, like the replay ring but
// without the ring.
type sliceSource struct {
	batches [][]packet.Packet
	next    atomic.Int64
}

func (s *sliceSource) Next(w int) []packet.Packet {
	i := s.next.Add(1) - 1
	if int(i) >= len(s.batches) {
		return nil
	}
	return s.batches[i]
}

func newSourceController(t *testing.T, sharded bool, workers int) *Controller {
	t.Helper()
	ctrl := NewController(Config{
		Groups: 4, Buckets: 4096, BitWidth: 32,
		Workers: workers, ShardedState: sharded,
	})
	t.Cleanup(ctrl.Close)
	for i := 0; i < 3; i++ {
		if _, err := ctrl.AddTask(TaskSpec{
			Name: "load", Key: packet.KeyFiveTuple,
			Attribute: AttrFrequency, MemBuckets: 1024, D: 3,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return ctrl
}

// TestProcessSourceMatchesSequential drains a batch source through the
// worker pool (shared-CAS and sharded modes) and asserts every task
// register is bit-identical to the deterministic sequential replay.
func TestProcessSourceMatchesSequential(t *testing.T) {
	tr := trace.Generate(trace.Config{Flows: 300, Packets: 30_000, Seed: 5})
	const chunk = 512
	var batches [][]packet.Packet
	for lo := 0; lo < len(tr.Packets); lo += chunk {
		hi := lo + chunk
		if hi > len(tr.Packets) {
			hi = len(tr.Packets)
		}
		batches = append(batches, tr.Packets[lo:hi])
	}

	ref := newSourceController(t, false, 1)
	ref.ProcessBatch(tr.Packets)

	for _, mode := range []struct {
		name    string
		sharded bool
	}{{"shared", false}, {"sharded", true}} {
		t.Run(mode.name, func(t *testing.T) {
			ctrl := newSourceController(t, mode.sharded, 4)
			ctrl.ProcessSource(&sliceSource{batches: batches})
			for _, task := range ctrl.Tasks() {
				got, err := ctrl.ReadRegisters(task.ID)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.ReadRegisters(task.ID)
				if err != nil {
					t.Fatal(err)
				}
				for i := range got {
					for j := range got[i] {
						if got[i][j] != want[i][j] {
							t.Fatalf("task %d row %d bucket %d: %d != %d",
								task.ID, i, j, got[i][j], want[i][j])
						}
					}
				}
			}
		})
	}
}

// TestProcessSourceSeesRepublish verifies the per-batch snapshot reload: a
// task deployed while the source is mid-drain must start counting before
// the drain finishes.
func TestProcessSourceSeesRepublish(t *testing.T) {
	ctrl := newSourceController(t, false, 2)
	tr := trace.Generate(trace.Config{Flows: 50, Packets: 20_000, Seed: 6})

	// A source that deploys a new task after releasing half its batches.
	const chunk = 256
	var batches [][]packet.Packet
	for lo := 0; lo < len(tr.Packets); lo += chunk {
		hi := lo + chunk
		if hi > len(tr.Packets) {
			hi = len(tr.Packets)
		}
		batches = append(batches, tr.Packets[lo:hi])
	}
	src := &deployingSource{sliceSource: sliceSource{batches: batches}, ctrl: ctrl, at: int64(len(batches) / 2), t: t}
	ctrl.ProcessSource(src)

	id := int(src.newTask.Load())
	if id == 0 {
		t.Fatal("mid-drain deploy never ran")
	}
	regs, err := ctrl.ReadRegisters(id)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, row := range regs {
		for _, v := range row {
			total += uint64(v)
		}
	}
	if total == 0 {
		t.Fatal("task deployed mid-replay counted nothing; snapshot reload is broken")
	}
}

type deployingSource struct {
	sliceSource
	ctrl     *Controller
	at       int64
	deployed atomic.Bool
	newTask  atomic.Int64
	t        *testing.T
}

func (s *deployingSource) Next(w int) []packet.Packet {
	i := s.next.Add(1) - 1
	if i == s.at && !s.deployed.Swap(true) {
		task, err := s.ctrl.AddTask(TaskSpec{
			Name: "late", Key: packet.KeyFiveTuple,
			Attribute: AttrFrequency, MemBuckets: 512, D: 1,
		})
		if err != nil {
			s.t.Errorf("mid-drain deploy: %v", err)
		} else {
			s.newTask.Store(int64(task.ID))
		}
	}
	if int(i) >= len(s.batches) {
		return nil
	}
	return s.batches[i]
}
