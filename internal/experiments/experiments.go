// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): each Fig*/Table* function runs the corresponding
// experiment on the simulated data plane and returns a renderable table.
// The cmd/flymon-bench binary and the repository's testing.B benchmarks are
// thin wrappers over this package.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"flymon/internal/core"
	"flymon/internal/packet"
	"flymon/internal/trace"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Scale selects experiment workload sizes: Full approximates the paper's
// trace scale; Small keeps unit benchmarks fast.
type Scale int

// Workload scales.
const (
	Small Scale = iota
	Full
)

// workload returns (flows, packets) for the scale.
func (s Scale) workload() (int, int) {
	if s == Full {
		return 60_000, 2_000_000
	}
	return 6_000, 150_000
}

// heavyThreshold returns the heavy-hitter threshold matched to the scale
// (the paper uses 1024 on a ~9M-packet trace; smaller workloads need a
// proportionally smaller threshold to keep a meaningful heavy set).
func (s Scale) heavyThreshold() int {
	if s == Full {
		return 1024
	}
	return 128
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
func itoa(v int) string    { return fmt.Sprintf("%d", v) }

// groups32 builds a pipeline of n groups with 32-bit registers of the given
// size (the accuracy experiments' configuration).
func groups32(n, buckets int) []*core.Group {
	gs := make([]*core.Group, n)
	for i := range gs {
		gs[i] = core.NewGroup(core.GroupConfig{ID: i, Buckets: buckets, BitWidth: 32})
	}
	return gs
}

// baseTrace generates the shared Zipf workload for a scale and seed.
func baseTrace(s Scale, seed int64) *trace.Trace {
	flows, packets := s.workload()
	return trace.Generate(trace.Config{Flows: flows, Packets: packets, Seed: seed})
}

// flowUniverse extracts candidate keys and a membership universe from
// ground-truth counts.
func flowUniverse[K comparable](counts map[K]uint64) ([]K, map[K]bool) {
	cands := make([]K, 0, len(counts))
	universe := make(map[K]bool, len(counts))
	for k := range counts {
		cands = append(cands, k)
		universe[k] = true
	}
	return cands, universe
}

// memKey re-extracts a canonical key from a stored canonical key — identity
// helper used for readability in sweeps.
func memKey(k packet.CanonicalKey) packet.CanonicalKey { return k }
