package sketch

// Merge kernels: the inner loops of every network-wide register merge.
//
// The fleet query plane (internal/netwide) folds per-switch register
// readouts element-wise — saturating ADD for counters, MAX for HLL ranks,
// OR for bitmaps, XOR for odd sketches. At fleet scale those loops run
// over millions of uint32 registers per query, so they are unrolled 8-wide
// with bounds checks hoisted by full-slice re-slicing: the compiler proves
// d[0..7]/s[0..7] in range from the s = s[:len(d)] guard and emits a
// single check per 8 elements instead of one per element. The scalar
// twins (mergeAddScalar etc.) are the reference semantics; the property
// tests in kernels_test.go hold the unrolled kernels to them bit-for-bit,
// including the saturation boundary.

// mergeAddKernel adds src into dst element-wise with uint32 saturation.
// len(src) must be >= len(dst); extra src elements are ignored.
func mergeAddKernel(dst, src []uint32) {
	s := src[:len(dst)]
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		d8 := dst[i : i+8 : i+8]
		s8 := s[i : i+8 : i+8]
		d8[0] = satAdd32(d8[0], s8[0])
		d8[1] = satAdd32(d8[1], s8[1])
		d8[2] = satAdd32(d8[2], s8[2])
		d8[3] = satAdd32(d8[3], s8[3])
		d8[4] = satAdd32(d8[4], s8[4])
		d8[5] = satAdd32(d8[5], s8[5])
		d8[6] = satAdd32(d8[6], s8[6])
		d8[7] = satAdd32(d8[7], s8[7])
	}
	for ; i < len(dst); i++ {
		dst[i] = satAdd32(dst[i], s[i])
	}
}

// mergeMaxKernel takes the element-wise maximum of dst and src into dst.
func mergeMaxKernel(dst, src []uint32) {
	s := src[:len(dst)]
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		d8 := dst[i : i+8 : i+8]
		s8 := s[i : i+8 : i+8]
		d8[0] = max(d8[0], s8[0])
		d8[1] = max(d8[1], s8[1])
		d8[2] = max(d8[2], s8[2])
		d8[3] = max(d8[3], s8[3])
		d8[4] = max(d8[4], s8[4])
		d8[5] = max(d8[5], s8[5])
		d8[6] = max(d8[6], s8[6])
		d8[7] = max(d8[7], s8[7])
	}
	for ; i < len(dst); i++ {
		dst[i] = max(dst[i], s[i])
	}
}

// mergeOrKernel ORs src into dst element-wise.
func mergeOrKernel(dst, src []uint32) {
	s := src[:len(dst)]
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		d8 := dst[i : i+8 : i+8]
		s8 := s[i : i+8 : i+8]
		d8[0] |= s8[0]
		d8[1] |= s8[1]
		d8[2] |= s8[2]
		d8[3] |= s8[3]
		d8[4] |= s8[4]
		d8[5] |= s8[5]
		d8[6] |= s8[6]
		d8[7] |= s8[7]
	}
	for ; i < len(dst); i++ {
		dst[i] |= s[i]
	}
}

// mergeXorKernel XORs src into dst element-wise.
func mergeXorKernel(dst, src []uint32) {
	s := src[:len(dst)]
	i := 0
	for ; i+8 <= len(dst); i += 8 {
		d8 := dst[i : i+8 : i+8]
		s8 := s[i : i+8 : i+8]
		d8[0] ^= s8[0]
		d8[1] ^= s8[1]
		d8[2] ^= s8[2]
		d8[3] ^= s8[3]
		d8[4] ^= s8[4]
		d8[5] ^= s8[5]
		d8[6] ^= s8[6]
		d8[7] ^= s8[7]
	}
	for ; i < len(dst); i++ {
		dst[i] ^= s[i]
	}
}

// Scalar reference implementations. These define the merge semantics; the
// unrolled kernels above must match them exactly (see the property tests).

func mergeAddScalar(dst, src []uint32) {
	for i := range dst {
		dst[i] = satAdd32(dst[i], src[i])
	}
}

func mergeMaxScalar(dst, src []uint32) {
	for i := range dst {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

func mergeOrScalar(dst, src []uint32) {
	for i := range dst {
		dst[i] |= src[i]
	}
}

func mergeXorScalar(dst, src []uint32) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}
