package experiments

import (
	"fmt"
	"io"
	"os"
	"time"

	"flymon/internal/controlplane"
	"flymon/internal/mmtrace"
	"flymon/internal/packet"
	"flymon/internal/trace"
)

// ReplayEngine selects the trace-ingestion path a replay measures.
type ReplayEngine string

const (
	// EngineReader is the seed path: trace.Reader.ReadAll materializes the
	// whole trace into memory, then one ProcessParallel call walks it. Its
	// ingest cost is a full copy of the trace plus an allocation of the
	// same size — the baseline the mmap path is measured against.
	EngineReader ReplayEngine = "reader"
	// EngineReadBatch streams through trace.Reader.ReadBatch into a small
	// reusable scratch, feeding ProcessParallel batch by batch — the
	// improved legacy path for non-seekable inputs.
	EngineReadBatch ReplayEngine = "readbatch"
	// EngineMmap is the zero-copy path: traces are mmapped, producers
	// enqueue frame spans on the MPMC ring, and pool workers decode spans
	// into per-worker scratch on the fly (internal/mmtrace).
	EngineMmap ReplayEngine = "mmap"
	// EngineFrames is the FrameView-native compiled engine: the same
	// mmapped traces and span ring as EngineMmap, but workers execute raw
	// record spans stage-at-a-time through Snapshot.ProcessFrames — batched
	// digest kernels and grouped register updates, no packet
	// materialization at all.
	EngineFrames ReplayEngine = "frames"
)

// ReplayOptions parameterizes a replay run.
type ReplayOptions struct {
	Paths   []string      // trace files; >1 = one ring producer per file (mmap engine)
	Engine  ReplayEngine  // ingestion path (default mmap)
	Workers int           // pool width (0 = GOMAXPROCS)
	Sharded bool          // sharded register lanes (PR 4) instead of shared CAS
	Tasks   int           // CMS load tasks to deploy (< 0 = 9; 0 = none, pure-ingest measurement)
	Batch   int           // frames per span / per ReadBatch (default 512)
	Ring    int           // ring capacity in spans (mmap engine; default 1024)
	Loop    time.Duration // > 0: loop the trace for at least this long (steady state)
	Verify  bool          // afterwards: replay sequentially and compare every register
}

// Replay replays trace files through a fully loaded pipeline with the
// selected ingestion engine and reports sustained pkts/s. With Verify set
// it then replays the same packets through a fresh controller with the
// sequential, deterministic ProcessBatch and asserts every task register
// is bit-identical — the sketch-equivalence guarantee the zero-copy path
// must preserve.
func Replay(opt ReplayOptions) (*Table, error) {
	if len(opt.Paths) == 0 {
		return nil, fmt.Errorf("replay: no trace files")
	}
	engine := opt.Engine
	if engine == "" {
		engine = EngineMmap
	}
	tasks := opt.Tasks
	if tasks < 0 {
		tasks = 9
	}
	batch := opt.Batch
	if batch <= 0 {
		batch = 512
	}

	ctrl := newReplayController(opt.Workers, opt.Sharded, tasks)
	defer ctrl.Close()

	var (
		packets uint64
		elapsed time.Duration
		detail  string
		err     error
	)
	switch engine {
	case EngineMmap:
		packets, elapsed, detail, err = replayRing(ctrl, opt, batch, false)
	case EngineFrames:
		packets, elapsed, detail, err = replayRing(ctrl, opt, batch, true)
	case EngineReader:
		packets, elapsed, err = replayReader(ctrl, opt)
	case EngineReadBatch:
		packets, elapsed, err = replayReadBatch(ctrl, opt, batch)
	default:
		return nil, fmt.Errorf("replay: unknown engine %q", engine)
	}
	if err != nil {
		return nil, err
	}
	pps := float64(packets) / elapsed.Seconds()

	t := &Table{
		Title:  "Trace replay — sustained ingest through the loaded pipeline",
		Header: []string{"Engine", "Packets", "Elapsed", "Mpps"},
		Rows: [][]string{{
			string(engine), fmt.Sprintf("%d", packets),
			elapsed.Round(time.Millisecond).String(), f2(pps / 1e6),
		}},
	}
	if detail != "" {
		t.Notes = append(t.Notes, detail)
	}
	mode := "shared-CAS registers"
	if opt.Sharded {
		mode = "sharded register lanes"
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d workers, %d CMS tasks, %s", ctrl.Workers(), tasks, mode))

	if opt.Verify {
		if err := verifyReplay(ctrl, opt, tasks); err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, "verify: register readouts bit-identical to sequential ProcessBatch replay")
	}
	return t, nil
}

// newReplayController mirrors the Throughput experiment's pipeline: 9
// groups, 64 Ki buckets per CMU, one 3-row CMS per group up to tasks.
func newReplayController(workers int, sharded bool, tasks int) *controlplane.Controller {
	cfg := controlplane.Config{Groups: 9, Buckets: 65536, BitWidth: 32, Workers: workers}
	cfg.ShardedState = sharded
	ctrl := controlplane.NewController(cfg)
	for i := 0; i < tasks; i++ {
		if _, err := ctrl.AddTask(controlplane.TaskSpec{
			Name: "load", Key: packet.KeyFiveTuple,
			Attribute: controlplane.AttrFrequency, MemBuckets: 16384, D: 3,
		}); err != nil {
			panic(err)
		}
	}
	return ctrl
}

// replayRing runs the span-ring engines over mmapped traces: pool workers
// pull spans via ProcessSource (decode into per-worker packet scratch) or,
// with frames set, via ProcessFrameSource (the FrameView-native compiled
// engine, no packet materialization).
func replayRing(ctrl *controlplane.Controller, opt ReplayOptions, batch int, frames bool) (uint64, time.Duration, string, error) {
	traces := make([]*mmtrace.Trace, 0, len(opt.Paths))
	defer func() {
		for _, t := range traces {
			t.Close()
		}
	}()
	mappedAll := true
	for _, path := range opt.Paths {
		t, err := mmtrace.Open(path)
		if err != nil {
			if t == nil {
				return 0, 0, "", fmt.Errorf("replay: %s: %w", path, err)
			}
			fmt.Fprintf(os.Stderr, "replay: warning: %s: %v (replaying the intact prefix)\n", path, err)
		}
		mappedAll = mappedAll && t.Mapped()
		traces = append(traces, t)
	}
	passes := 1
	if opt.Loop > 0 {
		passes = -1
	}
	rep, err := mmtrace.NewReplayer(mmtrace.ReplayConfig{
		Traces:    traces,
		Workers:   ctrl.Workers(),
		Batch:     batch,
		RingSpans: opt.Ring,
		Passes:    passes,
	})
	if err != nil {
		return 0, 0, "", err
	}
	var stopTimer *time.Timer
	if opt.Loop > 0 {
		stopTimer = time.AfterFunc(opt.Loop, rep.Stop)
	}
	start := time.Now()
	rep.Start()
	if frames {
		ctrl.ProcessFrameSource(rep)
	} else {
		ctrl.ProcessSource(rep)
	}
	elapsed := time.Since(start)
	if stopTimer != nil {
		stopTimer.Stop()
	}
	st := rep.Stats()
	mapping := "mmap"
	if !mappedAll {
		mapping = "ReaderAt fallback"
	}
	detail := fmt.Sprintf("%s, %d producers, ring cap %d spans, stalls push=%d pop=%d",
		mapping, len(traces), st.Ring.Cap, st.Ring.PushStalls, st.Ring.PopStalls)
	return st.Packets, elapsed, detail, nil
}

// replayReader is the seed path: materialize everything, then process.
// Loop mode repeats the whole cycle — including the re-read — because the
// materialization is exactly the ingest cost being measured.
func replayReader(ctrl *controlplane.Controller, opt ReplayOptions) (uint64, time.Duration, error) {
	var packets uint64
	start := time.Now()
	for {
		for _, path := range opt.Paths {
			f, err := os.Open(path)
			if err != nil {
				return 0, 0, fmt.Errorf("replay: %w", err)
			}
			r, err := trace.NewReader(f)
			if err != nil {
				f.Close()
				return 0, 0, fmt.Errorf("replay: %s: %v", path, err)
			}
			tr, err := r.ReadAll()
			f.Close()
			if err != nil {
				return 0, 0, fmt.Errorf("replay: %s: %v", path, err)
			}
			ctrl.ProcessParallel(tr.Packets, ctrl.Workers())
			packets += uint64(len(tr.Packets))
		}
		if opt.Loop <= 0 || time.Since(start) >= opt.Loop {
			return packets, time.Since(start), nil
		}
	}
}

// replayReadBatch streams each file through Reader.ReadBatch into one
// reusable scratch slab, processing batch by batch.
func replayReadBatch(ctrl *controlplane.Controller, opt ReplayOptions, batch int) (uint64, time.Duration, error) {
	buf := make([]packet.Packet, batch*maxInt(ctrl.Workers(), 1))
	var packets uint64
	start := time.Now()
	for {
		for _, path := range opt.Paths {
			n, err := streamFile(ctrl, path, buf)
			packets += n
			if err != nil {
				return 0, 0, err
			}
		}
		if opt.Loop <= 0 || time.Since(start) >= opt.Loop {
			return packets, time.Since(start), nil
		}
	}
}

func streamFile(ctrl *controlplane.Controller, path string, buf []packet.Packet) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("replay: %w", err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return 0, fmt.Errorf("replay: %s: %v", path, err)
	}
	var packets uint64
	for {
		n, err := r.ReadBatch(buf)
		if n > 0 {
			ctrl.ProcessParallel(buf[:n], ctrl.Workers())
			packets += uint64(n)
		}
		if err == io.EOF {
			return packets, nil
		}
		if err != nil {
			return packets, fmt.Errorf("replay: %s: %v", path, err)
		}
	}
}

// verifyReplay replays opt.Paths once, sequentially and deterministically
// (ProcessBatch on a fresh controller with the same task layout), and
// compares every task's raw registers against ctrl's. A single differing
// bucket fails the run. Loop-mode runs cannot verify (the pass count under
// a deadline is not reproducible).
func verifyReplay(ctrl *controlplane.Controller, opt ReplayOptions, tasks int) error {
	if opt.Loop > 0 {
		return fmt.Errorf("replay: -replay-verify requires a single-pass replay (no loop)")
	}
	ref := newReplayController(1, false, tasks)
	defer ref.Close()
	buf := make([]packet.Packet, 4096)
	for _, path := range opt.Paths {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("replay: verify: %w", err)
		}
		r, err := trace.NewReader(f)
		if err != nil {
			f.Close()
			return fmt.Errorf("replay: verify: %s: %v", path, err)
		}
		for {
			n, err := r.ReadBatch(buf)
			if n > 0 {
				ref.ProcessBatch(buf[:n])
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				// The replay engines process a truncated file's intact
				// prefix; match that here.
				fmt.Fprintf(os.Stderr, "replay: verify: %s: %v\n", path, err)
				break
			}
		}
		f.Close()
	}
	for _, task := range ctrl.Tasks() {
		got, err := ctrl.ReadRegisters(task.ID)
		if err != nil {
			return fmt.Errorf("replay: verify: %w", err)
		}
		want, err := ref.ReadRegisters(task.ID)
		if err != nil {
			return fmt.Errorf("replay: verify: %w", err)
		}
		if len(got) != len(want) {
			return fmt.Errorf("replay: verify: task %d: %d rows vs %d", task.ID, len(got), len(want))
		}
		for i := range got {
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					return fmt.Errorf("replay: verify: task %d row %d bucket %d: got %d, want %d",
						task.ID, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
