GO ?= go
BENCH_OUT ?= bench_results.txt

# Hot-path benchmarks whose numbers back the concurrency claims in
# DESIGN.md. -cpu 1,4 shows the parallel path's scaling; -count=5 gives
# benchstat enough samples.
HOT_BENCH = BenchmarkPipelinePerPacket|BenchmarkProcessBatch|BenchmarkProcessParallel|BenchmarkCMUProcess|BenchmarkRegisterExecute

.PHONY: all check vet build test race bench bench-full clean

all: check

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the hot-path microbenchmarks at 1 and 4 cores and saves the
# output for benchstat comparison against a previous run:
#   make bench BENCH_OUT=old.txt   # before a change
#   make bench BENCH_OUT=new.txt   # after
#   benchstat old.txt new.txt
bench:
	$(GO) test -run '^$$' -bench '$(HOT_BENCH)' -count=5 -cpu 1,4 -benchmem . | tee $(BENCH_OUT)

# bench-full runs every benchmark once (figures + microbenchmarks).
bench-full:
	$(GO) test -run '^$$' -bench . -benchmem .

clean:
	$(GO) clean
