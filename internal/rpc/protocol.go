// Package rpc implements FlyMon's southbound control channel: a
// line-delimited JSON request/response protocol over TCP, standing in for
// P4Runtime between the controller CLI (flymonctl) and the switch daemon
// (flymond). The server wraps a controlplane.Controller; every mutation is
// a runtime-rule installation on the simulated data plane.
package rpc

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Request is one control-channel call.
type Request struct {
	ID     uint64          `json:"id"`
	Method string          `json:"method"`
	Params json.RawMessage `json:"params,omitempty"`
}

// Response answers a Request with the same ID.
type Response struct {
	ID     uint64          `json:"id"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// maxLine bounds a single protocol line (a register readout of a large
// partition is the biggest payload).
const maxLine = 64 << 20

// codec frames newline-delimited JSON messages over a stream.
type codec struct {
	r *bufio.Reader
	w *bufio.Writer
}

func newCodec(rw io.ReadWriter) *codec {
	return &codec{
		r: bufio.NewReaderSize(rw, 1<<16),
		w: bufio.NewWriterSize(rw, 1<<16),
	}
}

func (c *codec) write(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("rpc: encoding message: %w", err)
	}
	if _, err := c.w.Write(b); err != nil {
		return err
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return err
	}
	return c.w.Flush()
}

func (c *codec) read(v any) error {
	line, err := readLongLine(c.r)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(line, v); err != nil {
		return fmt.Errorf("rpc: decoding message: %w", err)
	}
	return nil
}

func readLongLine(r *bufio.Reader) ([]byte, error) {
	var buf []byte
	for {
		chunk, isPrefix, err := r.ReadLine()
		if err != nil {
			return nil, err
		}
		buf = append(buf, chunk...)
		if len(buf) > maxLine {
			return nil, fmt.Errorf("rpc: message exceeds %d bytes", maxLine)
		}
		if !isPrefix {
			return buf, nil
		}
	}
}
