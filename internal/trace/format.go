package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"flymon/internal/packet"
)

// Binary trace format: a fixed 8-byte header ("FLYMTRC" + version) followed
// by fixed-width little-endian records. The format exists so generated
// workloads can be saved once and replayed identically by the daemon, the
// bench harness, and the examples. The record layout is exported (RecordSize,
// DecodeRecord, EncodeRecord) so the mmap ingestion layer (internal/mmtrace)
// can decode frames straight out of a mapped file without going through a
// Reader.
//
// Record layout (little-endian, offsets in bytes):
//
//	0  SrcIP   u32     16 Size         u32
//	4  DstIP   u32     20 TimestampNs  u64
//	8  SrcPort u16     28 QueueLength  u32
//	10 DstPort u16     32 QueueDelayNs u32
//	12 Proto   u8
//	13 3 pad bytes (zero)

var magic = [HeaderSize]byte{'F', 'L', 'Y', 'M', 'T', 'R', 'C', 1}

// HeaderSize is the length of the file header: the 7-byte magic plus a
// format version byte.
const HeaderSize = 8

// RecordSize is the fixed width of one packet record.
const RecordSize = 4 + 4 + 2 + 2 + 1 + 3 /*pad*/ + 4 + 8 + 4 + 4

// ErrBadMagic is returned when a trace stream does not start with the
// expected header.
var ErrBadMagic = errors.New("trace: bad magic (not a FlyMon trace)")

// ValidateHeader checks a trace file header. b must hold at least
// HeaderSize bytes; shorter input and wrong magic both return ErrBadMagic.
func ValidateHeader(b []byte) error {
	if len(b) < HeaderSize || [HeaderSize]byte(b[:HeaderSize]) != magic {
		return ErrBadMagic
	}
	return nil
}

// Header returns the trace file header bytes.
func Header() [HeaderSize]byte { return magic }

// TruncatedError reports a stream that ended in the middle of record
// Record (0-based). It unwraps to io.ErrUnexpectedEOF, so
// errors.Is(err, io.ErrUnexpectedEOF) holds for every truncation, and both
// the streaming Reader and the mmap decoder (internal/mmtrace) return it
// with the same record index for the same byte stream.
type TruncatedError struct {
	Record int
}

// Error implements error.
func (e *TruncatedError) Error() string {
	return fmt.Sprintf("trace: record %d truncated: %v", e.Record, io.ErrUnexpectedEOF)
}

// Unwrap makes the error match io.ErrUnexpectedEOF under errors.Is.
func (e *TruncatedError) Unwrap() error { return io.ErrUnexpectedEOF }

// EncodeRecord writes p as one record into b, which must hold at least
// RecordSize bytes.
func EncodeRecord(b []byte, p *packet.Packet) {
	binary.LittleEndian.PutUint32(b[0:], p.SrcIP)
	binary.LittleEndian.PutUint32(b[4:], p.DstIP)
	binary.LittleEndian.PutUint16(b[8:], p.SrcPort)
	binary.LittleEndian.PutUint16(b[10:], p.DstPort)
	b[12] = p.Proto
	b[13], b[14], b[15] = 0, 0, 0
	binary.LittleEndian.PutUint32(b[16:], p.Size)
	binary.LittleEndian.PutUint64(b[20:], p.TimestampNs)
	binary.LittleEndian.PutUint32(b[28:], p.QueueLength)
	binary.LittleEndian.PutUint32(b[32:], p.QueueDelayNs)
}

// DecodeRecord reads one record from b (at least RecordSize bytes) into p.
// It is the single decode used by the Reader, the mmap frame views, and the
// batch decoders, so every ingestion path is bit-identical by construction.
func DecodeRecord(b []byte, p *packet.Packet) {
	_ = b[RecordSize-1] // one bounds check for the whole record
	p.SrcIP = binary.LittleEndian.Uint32(b[0:4])
	p.DstIP = binary.LittleEndian.Uint32(b[4:8])
	p.SrcPort = binary.LittleEndian.Uint16(b[8:10])
	p.DstPort = binary.LittleEndian.Uint16(b[10:12])
	p.Proto = b[12]
	p.Size = binary.LittleEndian.Uint32(b[16:20])
	p.TimestampNs = binary.LittleEndian.Uint64(b[20:28])
	p.QueueLength = binary.LittleEndian.Uint32(b[28:32])
	p.QueueDelayNs = binary.LittleEndian.Uint32(b[32:36])
}

// Writer streams packets into the binary trace format.
type Writer struct {
	w   *bufio.Writer
	buf [RecordSize]byte
	n   int
}

// NewWriter writes the header and returns a Writer. Call Flush when done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// WritePacket appends one packet record.
func (w *Writer) WritePacket(p *packet.Packet) error {
	EncodeRecord(w.buf[:], p)
	if _, err := w.w.Write(w.buf[:]); err != nil {
		return fmt.Errorf("trace: writing record %d: %w", w.n, err)
	}
	w.n++
	return nil
}

// WriteTrace appends every packet of t.
func (w *Writer) WriteTrace(t *Trace) error {
	for i := range t.Packets {
		if err := w.WritePacket(&t.Packets[i]); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader streams packets from the binary trace format.
type Reader struct {
	r     *bufio.Reader
	buf   [RecordSize]byte
	batch []byte // ReadBatch scratch, grown to the largest batch requested
	n     int    // records decoded so far (the index of the next record)
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr != magic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// ReadPacket reads the next record into p. It returns io.EOF at a clean end
// of stream and a *TruncatedError (matching io.ErrUnexpectedEOF) when the
// stream ends mid-record.
func (r *Reader) ReadPacket(p *packet.Packet) error {
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return &TruncatedError{Record: r.n}
		}
		return fmt.Errorf("trace: reading record %d: %w", r.n, err)
	}
	DecodeRecord(r.buf[:], p)
	r.n++
	return nil
}

// ReadBatch fills dst with the next records and returns how many it
// decoded. It amortizes per-record call overhead by reading
// len(dst)×RecordSize bytes in one ReadFull (large batches bypass the
// bufio copy entirely).
//
// The contract mirrors io.Reader batch idioms: n > 0 with a nil error means
// more may follow; a short batch at a clean end of stream returns the
// records with a nil error and the next call returns (0, io.EOF); a stream
// ending mid-record returns the complete records together with a
// *TruncatedError carrying the offending record's index.
func (r *Reader) ReadBatch(dst []packet.Packet) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	want := len(dst) * RecordSize
	if cap(r.batch) < want {
		r.batch = make([]byte, want)
	}
	buf := r.batch[:want]
	nb, err := io.ReadFull(r.r, buf)
	n := nb / RecordSize
	for i := 0; i < n; i++ {
		DecodeRecord(buf[i*RecordSize:], &dst[i])
	}
	r.n += n
	switch err {
	case nil:
		return n, nil
	case io.EOF:
		// ReadFull read zero bytes: clean end of stream.
		return 0, io.EOF
	case io.ErrUnexpectedEOF:
		if nb%RecordSize != 0 {
			return n, &TruncatedError{Record: r.n}
		}
		if n == 0 {
			return 0, io.EOF
		}
		// Short but record-aligned: report the records now, EOF on the
		// next call.
		return n, nil
	default:
		return n, fmt.Errorf("trace: reading record %d: %w", r.n, err)
	}
}

// readAllBatch is the batch size ReadAll streams with: large enough that
// ReadFull bypasses the bufio copy, small enough to stay cache-resident.
const readAllBatch = 4096

// ReadAll reads the remainder of the stream into an in-memory Trace.
func (r *Reader) ReadAll() (*Trace, error) {
	t := &Trace{}
	buf := make([]packet.Packet, readAllBatch)
	for {
		n, err := r.ReadBatch(buf)
		t.Packets = append(t.Packets, buf[:n]...)
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
	}
}
