package core

import (
	"sync"
	"testing"

	"flymon/internal/dataplane"
	"flymon/internal/packet"
	"flymon/internal/trace"
)

// buildCMS installs a d-row CMS-style task (Cond-ADD, p2=+∞) on group g,
// keyed on unit 0's compressed key with per-row rotations.
func buildCMS(t *testing.T, g *Group, taskID, d, buckets int) {
	t.Helper()
	if err := g.ConfigureUnit(0, packet.KeyFiveTuple); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d; i++ {
		r := &Rule{
			TaskID: taskID,
			Filter: packet.MatchAll,
			Key:    FullKey(0).SubRange(8*i, 32),
			P1:     Const(1),
			P2:     MaxValue(),
			Mem:    MemRange{Base: 0, Buckets: buckets},
			Op:     dataplane.OpCondAdd,
		}
		if err := g.CMU(i).InstallRule(r); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotMatchesInterpretive replays one trace through the mutable
// interpretive path and through a compiled snapshot on identical pipelines
// and requires bit-identical register state.
func TestSnapshotMatchesInterpretive(t *testing.T) {
	tr := trace.Generate(trace.Config{Flows: 500, Packets: 20_000, Seed: 7})

	build := func() (*Pipeline, *Group, *Group) {
		g0 := NewGroup(GroupConfig{ID: 0, Buckets: 4096, BitWidth: 32})
		g1 := NewGroup(GroupConfig{ID: 1, Buckets: 4096, BitWidth: 32})
		buildCMS(t, g0, 1, 3, 4096)
		// Second group keys on DstIP to exercise a distinct mask.
		if err := g1.ConfigureUnit(0, packet.KeyDstIP); err != nil {
			t.Fatal(err)
		}
		r := &Rule{
			TaskID: 2, Filter: packet.Filter{Proto: 6},
			Key: FullKey(0), P1: PacketSize(), P2: MaxValue(),
			Mem: MemRange{Base: 0, Buckets: 4096}, Op: dataplane.OpCondAdd,
		}
		if err := g1.CMU(0).InstallRule(r); err != nil {
			t.Fatal(err)
		}
		return NewPipelineWith(g0, g1), g0, g1
	}

	plA, a0, a1 := build()
	for i := range tr.Packets {
		plA.Process(&tr.Packets[i])
	}

	plB, b0, b1 := build()
	plB.Compile().ProcessBatch(tr.Packets)

	for ci := 0; ci < 3; ci++ {
		for i := 0; i < 4096; i++ {
			if a0.CMU(ci).Register().Read(uint32(i)) != b0.CMU(ci).Register().Read(uint32(i)) {
				t.Fatalf("group 0 CMU %d bucket %d differs between interpretive and snapshot paths", ci, i)
			}
		}
	}
	for i := 0; i < 4096; i++ {
		if a1.CMU(0).Register().Read(uint32(i)) != b1.CMU(0).Register().Read(uint32(i)) {
			t.Fatalf("group 1 bucket %d differs between interpretive and snapshot paths", i)
		}
	}
	if plA.Packets() != plB.Packets() {
		t.Fatalf("packet counters differ: %d vs %d", plA.Packets(), plB.Packets())
	}
}

// TestSnapshotDedupsHashes verifies the compile-time hash deduplication:
// two groups whose bootstrap units share the same polynomial and mask must
// collapse to one digest slot.
func TestSnapshotDedupsHashes(t *testing.T) {
	// Group IDs 0 and 8 both map unit 0 to polynomial (id*3)%8 = 0.
	g0 := NewGroup(GroupConfig{ID: 0, Buckets: 1024, BitWidth: 32})
	g8 := NewGroup(GroupConfig{ID: 8, Buckets: 1024, BitWidth: 32})
	buildCMS(t, g0, 1, 1, 1024)
	buildCMS(t, g8, 2, 1, 1024)
	s := NewPipelineWith(g0, g8).Compile()
	if len(s.masks) != 1 {
		t.Fatalf("expected 1 distinct mask, got %d", len(s.masks))
	}
	if len(s.hashes) != 1 {
		t.Fatalf("expected 1 distinct (mask, polynomial) digest, got %d", len(s.hashes))
	}
	// Both groups must still count, through the shared digest.
	p := packet.Packet{SrcIP: 9, DstIP: 5, Proto: 6}
	s.Process(NewProcCtx(), &p)
	for _, g := range []*Group{g0, g8} {
		var mass uint64
		for i := 0; i < 1024; i++ {
			mass += uint64(g.CMU(0).Register().Read(uint32(i)))
		}
		if mass != 1 {
			t.Fatalf("group %d register mass %d, want 1: rule must fire through the shared digest", g.ID(), mass)
		}
	}
}

// TestSnapshotSkipsRulelessGroups: a group with a configured unit but no
// enabled rules is compiled out — its compression stage costs nothing and
// its registers are never touched.
func TestSnapshotSkipsRulelessGroups(t *testing.T) {
	idle := NewGroup(GroupConfig{ID: 0, Buckets: 1024, BitWidth: 32})
	if err := idle.ConfigureUnit(0, packet.KeyFiveTuple); err != nil {
		t.Fatal(err)
	}
	busy := NewGroup(GroupConfig{ID: 1, Buckets: 1024, BitWidth: 32})
	buildCMS(t, busy, 1, 1, 1024)
	s := NewPipelineWith(idle, busy).Compile()
	if len(s.groups) != 1 {
		t.Fatalf("expected the ruleless group to be compiled out, got %d groups", len(s.groups))
	}

	// Freezing the only rule must compile the busy group out too.
	busy.CMU(0).RuleFor(1).Disabled = true
	if s2 := NewPipelineWith(idle, busy).Compile(); len(s2.groups) != 0 {
		t.Fatalf("expected zero groups once all rules are frozen, got %d", len(s2.groups))
	}
}

// TestFrozenSplicedTaskDoesNotRecirculate covers the splicedWants fix: a
// frozen spliced-group task must not trigger mirror+recirculation, on both
// the interpretive and the compiled path.
func TestFrozenSplicedTaskDoesNotRecirculate(t *testing.T) {
	build := func() (*Pipeline, *Group) {
		pl := NewPipeline(1)
		sp := NewGroup(GroupConfig{ID: 100, Buckets: 1024, BitWidth: 32})
		buildCMS(t, sp, 1, 1, 1024)
		if err := pl.AddSpliced(sp); err != nil {
			t.Fatal(err)
		}
		return pl, sp
	}
	p := packet.Packet{SrcIP: 1, DstIP: 2, Proto: 6}

	pl, sp := build()
	pl.Process(&p)
	if pl.Recirculated() != 1 {
		t.Fatalf("enabled spliced task must recirculate, got %d", pl.Recirculated())
	}
	sp.CMU(0).RuleFor(1).Disabled = true
	pl.Process(&p)
	if pl.Recirculated() != 1 {
		t.Fatalf("frozen spliced task must not recirculate, got %d", pl.Recirculated())
	}

	// Same through a snapshot.
	pl2, sp2 := build()
	sp2.CMU(0).RuleFor(1).Disabled = true
	pl2.Compile().Process(NewProcCtx(), &p)
	if pl2.Recirculated() != 0 {
		t.Fatalf("compiled path must not recirculate for a frozen spliced task, got %d", pl2.Recirculated())
	}
}

// TestSnapshotParallelSingleWorkerEqualsBatch: one worker is the
// sequential path.
func TestSnapshotParallelSingleWorkerEqualsBatch(t *testing.T) {
	tr := trace.Generate(trace.Config{Flows: 300, Packets: 10_000, Seed: 3})
	gA := NewGroup(GroupConfig{ID: 0, Buckets: 2048, BitWidth: 32})
	buildCMS(t, gA, 1, 3, 2048)
	NewPipelineWith(gA).Compile().ProcessBatch(tr.Packets)

	gB := NewGroup(GroupConfig{ID: 0, Buckets: 2048, BitWidth: 32})
	buildCMS(t, gB, 1, 3, 2048)
	NewPipelineWith(gB).Compile().ProcessParallel(tr.Packets, 1)

	for ci := 0; ci < 3; ci++ {
		for i := 0; i < 2048; i++ {
			if gA.CMU(ci).Register().Read(uint32(i)) != gB.CMU(ci).Register().Read(uint32(i)) {
				t.Fatalf("CMU %d bucket %d differs between batch and 1-worker parallel", ci, i)
			}
		}
	}
}

// TestSnapshotParallelExactMass: Cond-ADD with p2=+∞ commutes per bucket,
// so a many-worker replay must preserve the exact register mass.
func TestSnapshotParallelExactMass(t *testing.T) {
	tr := trace.Generate(trace.Config{Flows: 300, Packets: 30_000, Seed: 4})
	g := NewGroup(GroupConfig{ID: 0, Buckets: 4096, BitWidth: 32})
	buildCMS(t, g, 1, 3, 4096)
	NewPipelineWith(g).Compile().ProcessParallel(tr.Packets, 8)
	for ci := 0; ci < 3; ci++ {
		var mass uint64
		for i := 0; i < 4096; i++ {
			mass += uint64(g.CMU(ci).Register().Read(uint32(i)))
		}
		if mass != uint64(len(tr.Packets)) {
			t.Fatalf("CMU %d mass %d, want %d (per-bucket atomicity must keep counts exact)",
				ci, mass, len(tr.Packets))
		}
	}
}

// TestSnapshotParallelWorkersGetUniqueRngStreams guards the fix for the
// lockstep-sampling bug: ProcessParallel used to hand every chunk worker a
// NewProcCtx() with the same fixed seed, so probabilistic rules flipped
// identical coins across workers and sampled correlated packet subsets.
// The worker contexts must come from unique rng streams (and none may be
// the fixed replay seed, which remains reserved for the deterministic
// single-worker path).
func TestSnapshotParallelWorkersGetUniqueRngStreams(t *testing.T) {
	var mu sync.Mutex
	var seeds []uint64
	orig := newParallelCtx
	newParallelCtx = func() *ProcCtx {
		pc := orig()
		mu.Lock()
		seeds = append(seeds, pc.Ctx.rng)
		mu.Unlock()
		return pc
	}
	defer func() { newParallelCtx = orig }()

	tr := trace.Generate(trace.Config{Flows: 100, Packets: 4096, Seed: 9})
	g := NewGroup(GroupConfig{ID: 0, Buckets: 1024, BitWidth: 32})
	buildCMS(t, g, 1, 1, 1024)
	const workers = 8
	NewPipelineWith(g).Compile().ProcessParallel(tr.Packets, workers)

	if len(seeds) != workers {
		t.Fatalf("ProcessParallel built %d worker contexts, want %d", len(seeds), workers)
	}
	seen := map[uint64]bool{}
	for _, s := range seeds {
		if s == rngSeed {
			t.Fatalf("a parallel worker got the fixed replay seed %#x: workers would flip coins in lockstep", s)
		}
		if seen[s] {
			t.Fatalf("two parallel workers share rng stream %#x", s)
		}
		seen[s] = true
	}
}
