package controlplane_test

import (
	"fmt"

	"flymon/internal/controlplane"
	"flymon/internal/packet"
)

// Deploy a per-flow frequency task, feed packets, and read an estimate —
// the minimal FlyMon loop.
func ExampleController() {
	ctrl := controlplane.NewController(controlplane.Config{
		Groups: 1, Buckets: 65536, BitWidth: 32,
	})
	task, err := ctrl.AddTask(controlplane.TaskSpec{
		Name:       "per-flow-size",
		Key:        packet.KeyFiveTuple,
		Attribute:  controlplane.AttrFrequency,
		MemBuckets: 4096,
		D:          3,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	p := packet.Packet{SrcIP: packet.IPv4(10, 0, 0, 1), DstIP: packet.IPv4(10, 0, 0, 2),
		SrcPort: 1234, DstPort: 80, Proto: 6}
	for i := 0; i < 7; i++ {
		ctrl.Process(&p)
	}
	est, _ := ctrl.EstimateKey(task.ID, packet.KeyFiveTuple.Extract(&p))
	fmt.Printf("%s estimate: %.0f packets\n", task.Algorithm, est)
	// Output: FlyMon-CMS estimate: 7 packets
}

// Reconfigure a running task's memory without interrupting measurement of
// co-resident tasks.
func ExampleController_ResizeTask() {
	ctrl := controlplane.NewController(controlplane.Config{
		Groups: 1, Buckets: 65536, BitWidth: 32,
	})
	task, _ := ctrl.AddTask(controlplane.TaskSpec{
		Name: "t", Key: packet.KeyFiveTuple,
		Attribute: controlplane.AttrFrequency, MemBuckets: 2048, D: 3,
	})
	fmt.Println("before:", task.Buckets)
	_, _ = ctrl.ResizeTask(task.ID, 16384)
	after, _ := ctrl.Task(task.ID)
	fmt.Println("after:", after.Buckets)
	// Output:
	// before: 2048
	// after: 16384
}

// Choose implementations per attribute: the compiler's defaults (Table 3).
func ExampleTaskSpec_ChooseAlgorithm() {
	specs := []controlplane.TaskSpec{
		{Attribute: controlplane.AttrFrequency},
		{Attribute: controlplane.AttrDistinct, Key: packet.KeyDstIP,
			Param: controlplane.ParamSpec{Kind: controlplane.ParamFlowKey, Key: packet.KeySrcIP}},
		{Attribute: controlplane.AttrDistinct,
			Param: controlplane.ParamSpec{Kind: controlplane.ParamFlowKey, Key: packet.KeyFiveTuple}},
		{Attribute: controlplane.AttrMax, Param: controlplane.ParamSpec{Kind: controlplane.ParamQueueLength}},
	}
	for _, s := range specs {
		fmt.Println(s.ChooseAlgorithm())
	}
	// Output:
	// FlyMon-CMS
	// FlyMon-BeauCoup
	// FlyMon-HLL
	// FlyMon-SuMax(Max)
}
