package mmtrace

import (
	"encoding/binary"

	"flymon/internal/packet"
	"flymon/internal/trace"
)

// FrameView is a lazy view of one trace record: a window into the mapped
// buffer that decodes individual fields only when asked. Tools that touch a
// couple of fields per record (filters, samplers, tracedump's summary pass)
// skip the cost of decoding the other seven; paths that need the whole
// packet call Decode, which uses the exact codec trace.Reader uses, so both
// ingestion paths are bit-identical by construction.
//
// A FrameView aliases its Trace's mapping and is invalid after Close.
type FrameView []byte

// SrcIP returns the record's source address.
func (v FrameView) SrcIP() uint32 { return binary.LittleEndian.Uint32(v[0:]) }

// DstIP returns the record's destination address.
func (v FrameView) DstIP() uint32 { return binary.LittleEndian.Uint32(v[4:]) }

// SrcPort returns the record's source port.
func (v FrameView) SrcPort() uint16 { return binary.LittleEndian.Uint16(v[8:]) }

// DstPort returns the record's destination port.
func (v FrameView) DstPort() uint16 { return binary.LittleEndian.Uint16(v[10:]) }

// Proto returns the record's IP protocol number.
func (v FrameView) Proto() uint8 { return v[12] }

// Size returns the record's packet length in bytes.
func (v FrameView) Size() uint32 { return binary.LittleEndian.Uint32(v[16:]) }

// TimestampNs returns the record's capture timestamp.
func (v FrameView) TimestampNs() uint64 { return binary.LittleEndian.Uint64(v[20:]) }

// QueueLength returns the record's switch queue depth.
func (v FrameView) QueueLength() uint32 { return binary.LittleEndian.Uint32(v[28:]) }

// QueueDelayNs returns the record's queueing delay.
func (v FrameView) QueueDelayNs() uint32 { return binary.LittleEndian.Uint32(v[32:]) }

// Decode materializes the full packet into p.
func (v FrameView) Decode(p *packet.Packet) { trace.DecodeRecord(v, p) }
