package core

import (
	"math/rand"
	"testing"

	"flymon/internal/packet"
)

// randFilter draws a filter over a small value domain so wildcards, hits,
// and misses all occur.
func randFilter(rng *rand.Rand) packet.Filter {
	var f packet.Filter
	if rng.Intn(2) == 0 {
		f.SrcPrefix = packet.Prefix{Value: rng.Uint32(), Bits: rng.Intn(33)}
	}
	if rng.Intn(2) == 0 {
		f.DstPrefix = packet.Prefix{Value: rng.Uint32(), Bits: rng.Intn(33)}
	}
	if rng.Intn(2) == 0 {
		f.SrcPort = uint16(rng.Intn(4))
	}
	if rng.Intn(2) == 0 {
		f.DstPort = uint16(rng.Intn(4))
	}
	if rng.Intn(2) == 0 {
		f.Proto = uint8(rng.Intn(3))
	}
	return f
}

func randPacket(rng *rand.Rand) packet.Packet {
	return packet.Packet{
		SrcIP:   rng.Uint32() >> uint(rng.Intn(32)), // bias towards shared prefixes
		DstIP:   rng.Uint32() >> uint(rng.Intn(32)),
		SrcPort: uint16(rng.Intn(4)),
		DstPort: uint16(rng.Intn(4)),
		Proto:   uint8(rng.Intn(3)),
	}
}

// TestCompiledMatchEquivalence: the specialized matchers must agree with
// Filter.Matches on every (filter, packet) pair — the compiled engine's
// task selection is only correct if this holds exactly.
func TestCompiledMatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20_000; trial++ {
		f := randFilter(rng)
		cm := compileMatch(f)
		p := randPacket(rng)
		if got, want := cm.matches(&p), f.Matches(&p); got != want {
			t.Fatalf("filter %q (kind %d) on %+v: compiled %v, interpretive %v",
				f, cm.kind, p, got, want)
		}
	}
}

// TestCompiledMatchSpecialization: common filter shapes must compile to
// their cheap matcher kinds.
func TestCompiledMatchSpecialization(t *testing.T) {
	cases := []struct {
		f    packet.Filter
		kind matchKind
	}{
		{packet.MatchAll, matchAll},
		{packet.Filter{DstPort: 9}, matchExact},
		{packet.Filter{Proto: 6}, matchExact},
		{packet.Filter{SrcPrefix: packet.Prefix{Value: 0x0A000000, Bits: 8}}, matchPrefix},
		{packet.Filter{SrcPrefix: packet.Prefix{Value: 0x0A000000, Bits: 8}, DstPort: 53}, matchGeneric},
	}
	for _, tc := range cases {
		if got := compileMatch(tc.f).kind; got != tc.kind {
			t.Errorf("filter %q compiled to kind %d, want %d", tc.f, got, tc.kind)
		}
	}
}

// TestCompiledSelEquivalence: a compiled selector over the deduplicated
// digest cache must produce exactly what Selector.Resolve produces over
// the group-local key vector it replaces.
func TestCompiledSelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20_000; trial++ {
		nUnits := 1 + rng.Intn(4)
		// unitHash maps local units to slots of a shared digest cache;
		// some units are idle (-1).
		hashes := make([]uint32, 1+rng.Intn(6))
		for i := range hashes {
			hashes[i] = rng.Uint32()
		}
		unitHash := make([]int, nUnits)
		keys := make([]uint32, nUnits)
		for i := range unitHash {
			if rng.Intn(4) == 0 {
				unitHash[i] = -1
				keys[i] = 0
			} else {
				unitHash[i] = rng.Intn(len(hashes))
				keys[i] = hashes[unitHash[i]]
			}
		}
		sel := Selector{
			UnitA: rng.Intn(nUnits+2) - 1, // includes -1 and out-of-range
			UnitB: rng.Intn(nUnits+2) - 1,
			Lo:    rng.Intn(70) - 35,
			Width: rng.Intn(35) - 1,
		}
		cs := compileSel(sel, unitHash)
		if got, want := cs.resolve(hashes), sel.Resolve(keys); got != want {
			t.Fatalf("selector %+v (unitHash %v): compiled %#x, interpretive %#x",
				sel, unitHash, got, want)
		}
	}
}

// TestCompiledTranslateEquivalence: the folded shift/mask address
// translation must agree with Translate for both methods, power-of-two and
// degenerate ranges alike.
func TestCompiledTranslateEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	mems := []MemRange{
		{Base: 0, Buckets: 0},
		{Base: 128, Buckets: 0},
		{Base: 0, Buckets: 1},
		{Base: 0, Buckets: 1024},
		{Base: 3072, Buckets: 1024},
		{Base: 65536 - 16, Buckets: 16},
	}
	unitHash := []int{0}
	for _, mem := range mems {
		for _, method := range []TranslationMethod{ShiftBased, TCAMBased} {
			r := &Rule{Key: FullKey(0), Mem: mem, Translation: method}
			cr := compileRule(r, nil, unitHash, false)
			for trial := 0; trial < 1000; trial++ {
				addr := rng.Uint32()
				var got uint32
				if cr.shifted {
					got = cr.base + addr>>cr.addrShift
				} else {
					got = cr.base + addr&cr.addrMask
				}
				if want := Translate(addr, mem, method); got != want {
					t.Fatalf("mem %v %v addr %#x: compiled %d, Translate %d",
						mem, method, addr, got, want)
				}
			}
		}
	}
}

// TestCompiledParamFoldsMaxValue: ParamMaxValue compiles to a constant, so
// the hot path never re-derives +inf.
func TestCompiledParamFoldsMaxValue(t *testing.T) {
	cp := compileParam(MaxValue(), nil)
	if cp.kind != ParamConst || cp.value != ^uint32(0) {
		t.Fatalf("MaxValue compiled to %+v, want ParamConst ^0", cp)
	}
}
