package algorithms

import (
	"fmt"

	"flymon/internal/core"
	"flymon/internal/dataplane"
	"flymon/internal/packet"
)

// SuMaxSumTask is FlyMon-SuMax(Sum) (§4, Heavy Hitter): d CMUs in d
// distinct, non-overlapping CMU Groups chained through the pipeline's
// running-minimum bus. Each row's Cond-ADD fires only while its counter is
// below the minimum seen upstream — the approximate conservative update
// that makes SuMax tighter than CMS at equal memory. Its CMU-Group usage of
// d (Table 3) is the cost of that cooperation.
type SuMaxSumTask struct {
	Groups []*core.Group
	TaskID int
	Units  []int
	Rows   []core.MemRange
	Method core.TranslationMethod
}

// InstallSuMaxSum installs a FlyMon-SuMax(Sum) task across groups (one row
// per group, all on CMU 0). rows may be nil for whole registers.
func InstallSuMaxSum(groups []*core.Group, taskID int, filter packet.Filter,
	key packet.KeySpec, param core.ParamSource, rows []core.MemRange) (*SuMaxSumTask, error) {
	if len(groups) < 1 {
		return nil, fmt.Errorf("algorithms: SuMax(Sum) needs at least one group")
	}
	if rows == nil {
		rows = make([]core.MemRange, len(groups))
		for i, g := range groups {
			rows[i] = core.MemRange{Base: 0, Buckets: g.CMU(0).Register().Size()}
		}
	}
	if len(rows) != len(groups) {
		return nil, fmt.Errorf("algorithms: SuMax(Sum) placement has %d rows for %d groups", len(rows), len(groups))
	}
	t := &SuMaxSumTask{Groups: groups, TaskID: taskID, Rows: rows, Method: core.TCAMBased}
	for i, g := range groups {
		unit, err := EnsureUnit(g, key)
		if err != nil {
			t.Uninstall()
			return nil, err
		}
		t.Units = append(t.Units, unit)
		rule := &core.Rule{
			TaskID:      taskID,
			Filter:      filter,
			Key:         core.FullKey(unit),
			P1:          param,
			P2:          core.MaxValue(), // overridden by the min chain
			Mem:         rows[i],
			Translation: t.Method,
			Op:          dataplane.OpCondAdd,
			ChainMin:    true,
		}
		if err := g.CMU(0).InstallRule(rule); err != nil {
			t.Uninstall()
			return nil, err
		}
	}
	return t, nil
}

// EstimateKey returns the row-minimum estimate for canonical key k.
func (t *SuMaxSumTask) EstimateKey(k packet.CanonicalKey) uint32 {
	min := ^uint32(0)
	for i, g := range t.Groups {
		keys := make([]uint32, g.Units())
		keys[t.Units[i]] = g.HashKey(t.Units[i], k)
		idx := core.Translate(core.FullKey(t.Units[i]).Resolve(keys), t.Rows[i], t.Method)
		if c := g.CMU(0).Register().Read(idx); c < min {
			min = c
		}
	}
	return min
}

// HeavyHitters returns the candidates whose estimate meets the threshold.
func (t *SuMaxSumTask) HeavyHitters(candidates []packet.CanonicalKey, threshold uint32) map[packet.CanonicalKey]bool {
	out := make(map[packet.CanonicalKey]bool)
	for _, k := range candidates {
		if t.EstimateKey(k) >= threshold {
			out[k] = true
		}
	}
	return out
}

// MemoryBytes returns the task's register memory footprint.
func (t *SuMaxSumTask) MemoryBytes() int {
	total := 0
	for i, r := range t.Rows {
		total += r.Buckets * t.Groups[i].CMU(0).Register().BitWidth() / 8
	}
	return total
}

// Uninstall removes the task's rules from every group.
func (t *SuMaxSumTask) Uninstall() {
	for _, g := range t.Groups {
		for i := 0; i < g.CMUs(); i++ {
			g.CMU(i).RemoveRule(t.TaskID)
		}
	}
}

// SuMaxMaxTask is FlyMon-SuMax(Max) (Table 3): d CMUs of one group running
// the MAX operation over a metadata parameter (queue length, queue delay);
// the estimate is the minimum across rows, which trims hash-collision
// inflation.
type SuMaxMaxTask struct {
	Group  *core.Group
	TaskID int
	Unit   int
	Base   int // first CMU index
	D      int
	Rows   []core.MemRange
	Method core.TranslationMethod
}

// InstallSuMaxMax installs a FlyMon-SuMax(Max) task on group g tracking the
// per-key maximum of param.
func InstallSuMaxMax(g *core.Group, taskID int, filter packet.Filter, key packet.KeySpec,
	param core.ParamSource, d int, rows []core.MemRange, at ...int) (*SuMaxMaxTask, error) {
	base := baseCMU(at)
	if d < 1 || d > g.CMUs() {
		return nil, fmt.Errorf("algorithms: SuMax(Max) depth %d exceeds group's %d CMUs", d, g.CMUs())
	}
	rows, err := checkRows(g, rows, base, d)
	if err != nil {
		return nil, err
	}
	unit, err := EnsureUnit(g, key)
	if err != nil {
		return nil, err
	}
	t := &SuMaxMaxTask{Group: g, TaskID: taskID, Unit: unit, Base: base, D: d, Rows: rows, Method: core.TCAMBased}
	for i := 0; i < d; i++ {
		rule := &core.Rule{
			TaskID:      taskID,
			Filter:      filter,
			Key:         rowSelector(unit, base+i),
			P1:          param,
			P2:          core.Const(0),
			Mem:         rows[i],
			Translation: t.Method,
			Op:          dataplane.OpMax,
		}
		if err := g.CMU(base + i).InstallRule(rule); err != nil {
			t.Uninstall()
			return nil, err
		}
	}
	return t, nil
}

// EstimateKey returns the row-minimum of the per-key maxima.
func (t *SuMaxMaxTask) EstimateKey(k packet.CanonicalKey) uint32 {
	min := ^uint32(0)
	for i := 0; i < t.D; i++ {
		idx := rowIndex(t.Group, t.Unit, t.Base+i, k, t.Rows[i], t.Method)
		if c := t.Group.CMU(t.Base + i).Register().Read(idx); c < min {
			min = c
		}
	}
	return min
}

// MemoryBytes returns the task's register memory footprint.
func (t *SuMaxMaxTask) MemoryBytes() int {
	total := 0
	for i, r := range t.Rows {
		total += r.Buckets * t.Group.CMU(t.Base+i).Register().BitWidth() / 8
	}
	return total
}

// Uninstall removes the task's rules.
func (t *SuMaxMaxTask) Uninstall() {
	for i := 0; i < t.Group.CMUs(); i++ {
		t.Group.CMU(i).RemoveRule(t.TaskID)
	}
}
