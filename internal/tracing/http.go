package tracing

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// TraceDump is the JSON shape served on /debug/trace (and mirrored by the
// trace_dump RPC): the retained spans oldest-first plus the buffer's
// lifetime accounting, so a scraper can tell a quiet process from one
// whose ring has lapped.
type TraceDump struct {
	Total   uint64 `json:"total"`
	Dropped uint64 `json:"dropped"`
	Spans   []Span `json:"spans"`
}

// Handler serves the tracer's span buffer as JSON. `?limit=N` keeps only
// the newest N spans; `?format=tree` renders assembled span trees as
// plain text instead (the /debug/trace counterpart of `flymonctl trace`).
// A nil tracer serves an empty dump, so the endpoint can be wired
// unconditionally.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		spans, total, dropped := t.Dump()
		if limit, _ := strconv.Atoi(r.URL.Query().Get("limit")); limit > 0 && len(spans) > limit {
			spans = spans[len(spans)-limit:]
		}
		if r.URL.Query().Get("format") == "tree" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, tree := range Assemble(spans) {
				tree.Render(w)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(TraceDump{Total: total, Dropped: dropped, Spans: spans})
	})
}
