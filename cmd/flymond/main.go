// Command flymond is the FlyMon switch daemon: it hosts the simulated RMT
// data plane (CMU Groups + registers) and serves the southbound control
// channel that flymonctl and SDM controllers speak.
//
// Usage:
//
//	flymond [-listen :9177] [-admin :9090] [-groups 9] [-buckets 65536]
//	        [-bitwidth 32] [-mode accurate|efficient] [-workers N] [-sharded]
//	        [-replay trace.fmt[,more.fmt] [-replay-loop]] [-hello-gc 2m]
//	        [-log-level info] [-trace-buf 4096] [-version]
//	        [-chaos-seed N -chaos-read-delay 5ms -chaos-write-delay 5ms
//	         -chaos-reset-every N -chaos-corrupt-every N]
//
// The -replay flag puts the daemon in soak mode: the named traces are
// mmapped and replayed through the data plane (via the zero-copy span
// ring, internal/mmtrace) while the control channel keeps serving —
// reconfigurations land mid-replay, and /metrics exposes replay progress
// and ring occupancy. -replay-loop replays until shutdown.
//
// The -chaos-* flags wrap the control channel in the fault-injecting
// transport (internal/faultnet) for resilience drills: delays, connection
// resets, and corrupt frames on every accepted connection, from a seeded
// deterministic plan. They exist so operators can rehearse exactly the
// failures the resilient client claims to survive.
//
// The -admin flag opens the telemetry/debug HTTP listener: Prometheus
// metrics on /metrics, the reconfiguration journal on /debug/events, the
// control-plane trace span buffer on /debug/trace (add ?format=tree for
// rendered span trees), and the standard pprof handlers on
// /debug/pprof/. Telemetry itself is always
// on (the registry also answers flymonctl's `stats` over the control
// channel); -admin only controls the HTTP exposition.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"flymon/internal/controlplane"
	"flymon/internal/faultnet"
	"flymon/internal/mmtrace"
	"flymon/internal/rpc"
	"flymon/internal/telemetry"
	"flymon/internal/tracing"
)

func main() {
	listen := flag.String("listen", ":9177", "control-channel listen address")
	admin := flag.String("admin", "", "telemetry/debug HTTP listen address (/metrics, /debug/events, /debug/pprof/); empty = disabled")
	groups := flag.Int("groups", 9, "CMU Groups in the pipeline (9 = full cross-stacked Tofino pipeline)")
	spliced := flag.Int("spliced", 0, "additional Appendix-E groups reached by mirror+recirculation (max 3)")
	buckets := flag.Int("buckets", 65536, "register buckets per CMU")
	bitWidth := flag.Int("bitwidth", 32, "register bucket width in bits")
	partitions := flag.Int("partitions", 32, "memory partitions per CMU")
	mode := flag.String("mode", "accurate", "memory allocation mode: accurate or efficient")
	workers := flag.Int("workers", 0, "parallel batch workers and register lanes (0 = GOMAXPROCS)")
	sharded := flag.Bool("sharded", false, "sharded register state: mergeable ops write per-worker plain-store lanes, reduced on query")
	replay := flag.String("replay", "", "soak mode: replay these comma-separated FLYMTRC traces through the data plane while serving the control channel")
	replayLoop := flag.Bool("replay-loop", false, "loop the -replay traces until shutdown instead of replaying once")
	chaosSeed := flag.Int64("chaos-seed", 0, "fault-injection seed (0 with other chaos flags = seed 1)")
	chaosReadDelay := flag.Duration("chaos-read-delay", 0, "max injected delay per control-channel read")
	chaosWriteDelay := flag.Duration("chaos-write-delay", 0, "max injected delay per control-channel write")
	chaosResetEvery := flag.Int("chaos-reset-every", 0, "inject a connection reset every Nth I/O op (0 = never)")
	chaosCorruptEvery := flag.Int("chaos-corrupt-every", 0, "corrupt every Nth response frame (0 = never)")
	helloGC := flag.Duration("hello-gc", rpc.DefaultHelloGC, "drop controller liveness sessions idle this long (floored at 16× their advertised tx interval)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, error, or off")
	traceBuf := flag.Int("trace-buf", tracing.DefaultBufferSpans, "control-plane trace span buffer capacity (0 = tracing disabled)")
	version := flag.Bool("version", false, "print version and build info, then exit")
	flag.Parse()

	if *version {
		fmt.Printf("flymond %s\n", telemetry.ReadBuildInfo())
		return
	}
	lvl, err := telemetry.ParseLogLevel(*logLevel)
	if err != nil {
		log.Fatalf("flymond: %v", err)
	}
	logger := telemetry.NewLogger("flymond", lvl, os.Stderr)

	var memMode controlplane.MemoryMode
	switch strings.ToLower(*mode) {
	case "accurate":
		memMode = controlplane.Accurate
	case "efficient":
		memMode = controlplane.Efficient
	default:
		log.Fatalf("flymond: unknown memory mode %q", *mode)
	}

	reg := telemetry.NewRegistry()
	ctrl := controlplane.NewController(controlplane.Config{
		Groups:        *groups,
		SplicedGroups: *spliced,
		Buckets:       *buckets,
		BitWidth:      *bitWidth,
		Partitions:    *partitions,
		Mode:          memMode,
		Workers:       *workers,
		ShardedState:  *sharded,
		Telemetry:     reg,
	})
	srv := rpc.NewServer(ctrl, nil)
	srv.SetLogger(logger.With("rpc"))
	srv.SetTelemetry(reg)
	srv.SetHelloGC(*helloGC)
	var tracer *tracing.Tracer
	if *traceBuf > 0 {
		tracer = tracing.New(*traceBuf)
		srv.SetTracer(tracer)
		reg.AddMetricsWriter(tracer.WriteMetrics)
	}
	reg.AddMetricsWriter(telemetry.WriteBuildInfoMetric)
	plan := faultnet.Plan{
		Seed:         *chaosSeed,
		ReadDelay:    *chaosReadDelay,
		WriteDelay:   *chaosWriteDelay,
		ResetEvery:   *chaosResetEvery,
		CorruptEvery: *chaosCorruptEvery,
	}
	chaotic := plan.Seed != 0 || plan.ReadDelay > 0 || plan.WriteDelay > 0 ||
		plan.ResetEvery > 0 || plan.CorruptEvery > 0
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("flymond: listen %s: %v", *listen, err)
	}
	addr := ln.Addr().String()
	if chaotic {
		if plan.Seed == 0 {
			plan.Seed = 1 // a seeded plan is reproducible; 0 would collapse the rng streams
		}
		fmt.Printf("flymond: CHAOS MODE: control channel under fault plan %+v\n", plan)
		srv.Serve(faultnet.WrapListener(ln, plan))
	} else {
		srv.Serve(ln)
	}
	fmt.Printf("flymond: %d+%d CMU Groups (%d CMUs), %d×%d-bit buckets/CMU, %s allocation\n",
		*groups, ctrl.Pipeline().SplicedGroups(), (*groups+ctrl.Pipeline().SplicedGroups())*3, *buckets, *bitWidth, memMode)
	if ctrl.Sharded() {
		fmt.Printf("flymond: sharded register state: %d plain-store lanes per CMU, reduced on query\n", ctrl.Workers())
	}
	fmt.Printf("flymond: control channel on %s\n", addr)

	var adminSrv *http.Server
	if *admin != "" {
		aln, err := net.Listen("tcp", *admin)
		if err != nil {
			log.Fatalf("flymond: admin listen %s: %v", *admin, err)
		}
		mux := http.NewServeMux()
		mux.Handle("/", reg.Handler())
		mux.Handle("/debug/trace", tracing.Handler(tracer))
		adminSrv = &http.Server{Handler: mux}
		go func() {
			if err := adminSrv.Serve(aln); err != nil && err != http.ErrServerClosed {
				logger.Errorf("admin: %v", err)
			}
		}()
		fmt.Printf("flymond: telemetry on http://%s/metrics (journal: /debug/events, traces: /debug/trace, pprof: /debug/pprof/)\n", aln.Addr())
	}

	// Soak mode: replay traces through the data plane in the background
	// while the control channel stays live — reconfigurations issued via
	// flymonctl take effect mid-replay at batch granularity, exercising
	// exactly the on-the-fly property under sustained load. The replayer
	// registers with telemetry, so /metrics shows ring occupancy and stall
	// counters while it runs.
	var replayer *mmtrace.Replayer
	replayDone := make(chan struct{})
	if *replay != "" {
		var traces []*mmtrace.Trace
		for _, path := range strings.Split(*replay, ",") {
			t, err := mmtrace.Open(path)
			if err != nil {
				if t == nil {
					log.Fatalf("flymond: replay: %v", err)
				}
				logger.Warnf("replay: %s: %v (replaying the intact prefix)", path, err)
			}
			traces = append(traces, t)
		}
		passes := 1
		if *replayLoop {
			passes = -1
		}
		var err error
		replayer, err = mmtrace.NewReplayer(mmtrace.ReplayConfig{
			Traces:  traces,
			Workers: ctrl.Workers(),
			Passes:  passes,
		})
		if err != nil {
			log.Fatalf("flymond: replay: %v", err)
		}
		reg.SetReplaySource(replayer)
		replayer.Start()
		fmt.Printf("flymond: replaying %d trace(s) (loop=%v)\n", len(traces), *replayLoop)
		go func() {
			defer close(replayDone)
			// Frame-native drain: spans execute straight off the mmapped
			// records; control-channel reconfigurations still land at span
			// boundaries (an ineligible snapshot just falls back to
			// per-frame decode inside the same call).
			ctrl.ProcessFrameSource(replayer)
			reg.ClearReplaySource(replayer)
			for _, t := range traces {
				t.Close()
			}
			st := replayer.Stats()
			fmt.Printf("flymond: replay finished: %d packets (ring stalls push=%d pop=%d)\n",
				st.Packets, st.Ring.PushStalls, st.Ring.PopStalls)
		}()
	} else {
		close(replayDone)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("flymond: shutting down")
	if replayer != nil {
		replayer.Stop()
		<-replayDone
	}
	if adminSrv != nil {
		adminSrv.Close()
	}
	if err := srv.Close(); err != nil {
		logger.Errorf("close: %v", err)
	}
}
