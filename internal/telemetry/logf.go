package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LogLevel orders log severities. The zero value is LevelInfo so a
// zero-configured logger behaves like the stdlib default: informational
// and worse.
type LogLevel int32

const (
	LevelDebug LogLevel = iota - 1
	LevelInfo
	LevelWarn
	LevelError
	// LevelOff silences the logger entirely.
	LevelOff
)

func (l LogLevel) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	case LevelOff:
		return "off"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLogLevel maps a -log-level flag value to a LogLevel.
func ParseLogLevel(s string) (LogLevel, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "none":
		return LevelOff, nil
	default:
		return LevelInfo, fmt.Errorf("telemetry: unknown log level %q (want debug|info|warn|error|off)", s)
	}
}

// Logger is the small leveled, component-tagged logger flymond and
// flymonctl share. Lines look like
//
//	2026-08-08T12:00:00.123Z WARN  [rpc] accept: connection reset
//
// A nil *Logger is the disabled logger: every method is a no-op, so
// libraries can hold one unconditionally. The level is atomic — a
// future admin endpoint can flip it at runtime without a restart.
type Logger struct {
	component string
	level     atomic.Int32
	mu        *sync.Mutex // shared by With-derived loggers writing to one stream
	w         io.Writer
	sink      func(format string, args ...any) // alternate output, see NewFuncLogger
}

// NewLogger builds a logger writing timestamped lines to w.
func NewLogger(component string, level LogLevel, w io.Writer) *Logger {
	l := &Logger{component: component, mu: &sync.Mutex{}, w: w}
	l.level.Store(int32(level))
	return l
}

// NewFuncLogger builds a logger that forwards formatted lines (level and
// component tags included, no timestamp — the sink owns presentation) to
// a printf-style sink. It adapts legacy logf callbacks, like the one
// rpc.NewServer has always accepted, to the leveled interface.
func NewFuncLogger(component string, level LogLevel, logf func(format string, args ...any)) *Logger {
	if logf == nil {
		return nil
	}
	l := &Logger{component: component, mu: &sync.Mutex{}, sink: logf}
	l.level.Store(int32(level))
	return l
}

// With returns a logger for a sub-component sharing this logger's stream,
// level, and line mutex.
func (l *Logger) With(component string) *Logger {
	if l == nil {
		return nil
	}
	nl := &Logger{component: component, mu: l.mu, w: l.w, sink: l.sink}
	nl.level.Store(l.level.Load())
	return nl
}

// SetLevel changes the threshold at runtime.
func (l *Logger) SetLevel(level LogLevel) {
	if l != nil {
		l.level.Store(int32(level))
	}
}

// Level returns the current threshold (LevelOff on a nil logger).
func (l *Logger) Level() LogLevel {
	if l == nil {
		return LevelOff
	}
	return LogLevel(l.level.Load())
}

// Enabled reports whether a message at the given level would be emitted.
func (l *Logger) Enabled(level LogLevel) bool {
	return l != nil && level >= l.Level() && l.Level() != LevelOff
}

func (l *Logger) logf(level LogLevel, format string, args ...any) {
	if !l.Enabled(level) {
		return
	}
	if l.sink != nil {
		l.sink("%-5s [%s] %s", strings.ToUpper(level.String()), l.component, fmt.Sprintf(format, args...))
		return
	}
	line := fmt.Sprintf("%s %-5s [%s] %s\n",
		time.Now().UTC().Format("2006-01-02T15:04:05.000Z"),
		strings.ToUpper(level.String()), l.component, fmt.Sprintf(format, args...))
	l.mu.Lock()
	io.WriteString(l.w, line)
	l.mu.Unlock()
}

// Debugf logs at debug level.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

// Infof logs at info level.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Warnf logs at warn level.
func (l *Logger) Warnf(format string, args ...any) { l.logf(LevelWarn, format, args...) }

// Errorf logs at error level.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }
