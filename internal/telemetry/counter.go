// Package telemetry is the runtime observability plane: striped data-plane
// counters folded on read, a bounded reconfiguration journal, alloc-free
// latency histograms, RPC/fleet health counters, and the Prometheus/pprof
// exposition endpoints flymond serves.
//
// The package deliberately imports nothing but the standard library so every
// layer (core, controlplane, rpc, netwide, cmd) can depend on it without
// cycles. Hot-path instrumentation follows the same discipline as the
// register lanes in internal/dataplane: writers touch per-worker state
// (context-local accumulators flushed into cache-line-padded stripes) and
// only the read side pays for a coherent fold.
package telemetry

import "sync/atomic"

// CounterStripes is the number of independent cache lines a Counter spreads
// its increments over. Power of two so the stripe pick is a mask, sized for
// the worker counts the pool actually runs (GOMAXPROCS workers hash onto 16
// lines with few collisions; a collision only costs a shared cache line, not
// correctness).
const CounterStripes = 16

type counterStripe struct {
	v atomic.Uint64
	_ [56]byte // pad to a 64-byte line so neighbouring stripes never false-share
}

// Counter is a monotonically increasing counter striped across
// CounterStripes cache lines. Writers pick a stripe (per-worker, any value —
// it is reduced mod CounterStripes) and Add there; Load folds all stripes.
// Writes are wait-free atomic adds on uncontended lines; Load is O(stripes)
// and intended for scrape/query frequency, not the packet path.
type Counter struct {
	s [CounterStripes]counterStripe
}

// Inc adds 1 on the given stripe.
func (c *Counter) Inc(stripe uint32) {
	c.s[stripe%CounterStripes].v.Add(1)
}

// Add adds n on the given stripe.
func (c *Counter) Add(stripe uint32, n uint64) {
	c.s[stripe%CounterStripes].v.Add(n)
}

// Load folds every stripe into the counter's current total. It is safe
// against concurrent writers; the result is a consistent lower bound (adds
// landing mid-fold may or may not be included, as with any live counter).
func (c *Counter) Load() uint64 {
	var t uint64
	for i := range c.s {
		t += c.s[i].v.Load()
	}
	return t
}
