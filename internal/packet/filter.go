package packet

import (
	"fmt"
	"strings"
)

// Prefix is a CIDR-style prefix match on one 32-bit (or narrower) field.
// A zero Prefix (Bits == 0) matches everything.
type Prefix struct {
	Value uint32
	Bits  int
}

// Matches reports whether v falls inside the prefix.
func (pr Prefix) Matches(v uint32) bool {
	if pr.Bits <= 0 {
		return true
	}
	shift := 32 - pr.Bits
	return v>>shift == pr.Value>>shift
}

// Contains reports whether other is a sub-prefix of pr (every value matched
// by other is also matched by pr).
func (pr Prefix) Contains(other Prefix) bool {
	if pr.Bits <= 0 {
		return true
	}
	if other.Bits < pr.Bits {
		return false
	}
	return pr.Matches(other.Value)
}

// Overlaps reports whether the two prefixes share any value.
func (pr Prefix) Overlaps(other Prefix) bool {
	return pr.Contains(other) || other.Contains(pr)
}

// String implements fmt.Stringer.
func (pr Prefix) String() string {
	if pr.Bits <= 0 {
		return "*"
	}
	return fmt.Sprintf("%s/%d", FormatIPv4(pr.Value), pr.Bits)
}

// Filter is a task filter: the traffic slice a measurement task applies to.
// It matches on source/destination IP prefixes and optional exact ports and
// protocol. The zero Filter matches all traffic.
//
// Filters are the unit FlyMon's control plane uses both to direct packets to
// tasks (the first-match "task id" assignment, §6 Other optimizations) and
// to detect traffic intersection — two tasks with overlapping filters cannot
// share a CMU because a SALU performs only one memory access per packet.
type Filter struct {
	SrcPrefix Prefix
	DstPrefix Prefix
	SrcPort   uint16 // 0 = wildcard
	DstPort   uint16 // 0 = wildcard
	Proto     uint8  // 0 = wildcard
}

// MatchAll is the filter that matches every packet.
var MatchAll = Filter{}

// Matches reports whether p belongs to the filter's traffic slice.
func (f Filter) Matches(p *Packet) bool {
	if !f.SrcPrefix.Matches(p.SrcIP) || !f.DstPrefix.Matches(p.DstIP) {
		return false
	}
	if f.SrcPort != 0 && f.SrcPort != p.SrcPort {
		return false
	}
	if f.DstPort != 0 && f.DstPort != p.DstPort {
		return false
	}
	if f.Proto != 0 && f.Proto != p.Proto {
		return false
	}
	return true
}

// Intersects conservatively reports whether the two filters can match a
// common packet. Used by the control plane to forbid co-locating
// intersecting tasks on one CMU (§3.3, Limitation of Address Translation).
func (f Filter) Intersects(g Filter) bool {
	if !f.SrcPrefix.Overlaps(g.SrcPrefix) || !f.DstPrefix.Overlaps(g.DstPrefix) {
		return false
	}
	if f.SrcPort != 0 && g.SrcPort != 0 && f.SrcPort != g.SrcPort {
		return false
	}
	if f.DstPort != 0 && g.DstPort != 0 && f.DstPort != g.DstPort {
		return false
	}
	if f.Proto != 0 && g.Proto != 0 && f.Proto != g.Proto {
		return false
	}
	return true
}

// IsMatchAll reports whether the filter matches every packet.
func (f Filter) IsMatchAll() bool { return f == Filter{} }

// String implements fmt.Stringer.
func (f Filter) String() string {
	if f.IsMatchAll() {
		return "*"
	}
	var parts []string
	if f.SrcPrefix.Bits > 0 {
		parts = append(parts, "src="+f.SrcPrefix.String())
	}
	if f.DstPrefix.Bits > 0 {
		parts = append(parts, "dst="+f.DstPrefix.String())
	}
	if f.SrcPort != 0 {
		parts = append(parts, fmt.Sprintf("sport=%d", f.SrcPort))
	}
	if f.DstPort != 0 {
		parts = append(parts, fmt.Sprintf("dport=%d", f.DstPort))
	}
	if f.Proto != 0 {
		parts = append(parts, fmt.Sprintf("proto=%d", f.Proto))
	}
	return strings.Join(parts, ",")
}

// SplitSrc splits the filter into two disjoint halves by extending the
// source prefix one bit (the paper's task-splitting example: 10.0.0.0/8 →
// 10.0.0.0/9 and 10.128.0.0/9). It returns ok=false when the source prefix
// is already host-width.
func (f Filter) SplitSrc() (lo, hi Filter, ok bool) {
	if f.SrcPrefix.Bits >= 32 {
		return f, f, false
	}
	bits := f.SrcPrefix.Bits + 1
	base := f.SrcPrefix.Value
	if f.SrcPrefix.Bits > 0 {
		base &= ^uint32(0) << (32 - f.SrcPrefix.Bits)
	} else {
		base = 0
	}
	lo, hi = f, f
	lo.SrcPrefix = Prefix{Value: base, Bits: bits}
	hi.SrcPrefix = Prefix{Value: base | 1<<(32-bits), Bits: bits}
	return lo, hi, true
}
