package sketch

import (
	"fmt"
	"math"
	"math/bits"

	"flymon/internal/hashing"
	"flymon/internal/packet"
)

// HLL is a HyperLogLog cardinality estimator (Flajolet et al.): 2^b
// registers, each tracking the maximum rank ρ (position of the leftmost
// 1-bit) of hashed keys routed to it by stochastic averaging; the estimate
// is the bias-corrected harmonic mean α_m · m² / Σ 2^{−M_j}.
type HLL struct {
	spec packet.KeySpec
	b    int
	regs []uint8
	hash *hashing.Unit
}

// NewHLL builds a HyperLogLog with 2^b registers (4 ≤ b ≤ 16) keyed by spec.
func NewHLL(spec packet.KeySpec, b int) *HLL {
	if b < 1 || b > 16 {
		panic(fmt.Sprintf("sketch: HLL precision b=%d out of range [1,16]", b))
	}
	h := hashing.NewUnit(0)
	h.Configure(spec)
	return &HLL{spec: spec, b: b, regs: make([]uint8, 1<<b), hash: h}
}

// NewHLLForBytes sizes an HLL to approximately memBytes of register state
// (1 byte per register in this implementation).
func NewHLLForBytes(spec packet.KeySpec, memBytes int) *HLL {
	b := 1
	for (1<<(b+1)) <= memBytes && b < 16 {
		b++
	}
	return NewHLL(spec, b)
}

// AddPacket observes p's flow key.
func (h *HLL) AddPacket(p *packet.Packet) { h.addHash(h.hash.Hash(p)) }

// AddKey observes a canonical key directly.
func (h *HLL) AddKey(k packet.CanonicalKey) { h.addHash(h.hash.HashBytes(k[:])) }

func (h *HLL) addHash(x uint32) {
	idx := x >> (32 - h.b)
	rest := x << h.b
	// Rank ρ: position of the leftmost 1-bit of the remaining 32−b bits
	// (1-based); all-zero remainder gets the maximum rank.
	rho := uint8(bits.LeadingZeros32(rest)) + 1
	if rest == 0 {
		rho = uint8(32 - h.b + 1)
	}
	if rho > h.regs[idx] {
		h.regs[idx] = rho
	}
}

// Estimate returns the cardinality estimate with the standard small-range
// (linear counting) and large-range corrections.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.regs))
	var sum float64
	zeros := 0
	for _, r := range h.regs {
		sum += math.Pow(2, -float64(r))
		if r == 0 {
			zeros++
		}
	}
	est := alpha(len(h.regs)) * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		// Small-range correction: fall back to linear counting.
		est = m * math.Log(m/float64(zeros))
	} else if est > (1.0/30.0)*math.Pow(2, 32) {
		// Large-range correction for 32-bit hash saturation.
		est = -math.Pow(2, 32) * math.Log(1-est/math.Pow(2, 32))
	}
	return est
}

// Registers exposes the register file (read-only use) so the FlyMon
// control-plane estimator can be validated against it.
func (h *HLL) Registers() []uint8 { return h.regs }

// Precision returns b.
func (h *HLL) Precision() int { return h.b }

// MemoryBytes returns the register memory footprint.
func (h *HLL) MemoryBytes() int { return len(h.regs) }

// Reset zeroes the registers.
func (h *HLL) Reset() { clear(h.regs) }

// alpha returns the HLL bias-correction constant for m registers.
func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	}
	if m < 16 {
		return 0.673
	}
	return 0.7213 / (1 + 1.079/float64(m))
}

// HLLEstimateFromRanks computes the HyperLogLog estimate from a raw rank
// register file. This is the control-plane half FlyMon runs after reading a
// CMU's register memory (the data plane tracked ranks with the MAX op).
func HLLEstimateFromRanks(regs []uint8, hashBits int) float64 {
	m := float64(len(regs))
	if m == 0 {
		return 0
	}
	var sum float64
	zeros := 0
	for _, r := range regs {
		sum += math.Pow(2, -float64(r))
		if r == 0 {
			zeros++
		}
	}
	est := alpha(len(regs)) * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	} else if hashBits < 64 {
		full := math.Pow(2, float64(hashBits))
		if est > full/30 {
			est = -full * math.Log(1-est/full)
		}
	}
	return est
}
