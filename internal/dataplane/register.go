package dataplane

import (
	"fmt"
	"sync/atomic"
)

// StatefulOp identifies one of the register actions a SALU can preload.
// FlyMon's reduced operation set (§3.1.2, Appendix A) needs only three,
// leaving one of the four hardware slots free for extensions (e.g. an XOR
// op for Odd Sketch, §6).
type StatefulOp uint8

const (
	// OpNone performs no update and returns 0.
	OpNone StatefulOp = iota
	// OpCondAdd adds p1 to the bucket if bucket < p2, returning the updated
	// value, else returns 0 (Appendix A, Operation 1). With p2 = MaxUint32
	// it degenerates to the unconditional ADD that CMS/MRAC need.
	OpCondAdd
	// OpMax sets the bucket to p1 if bucket < p1, returning the updated
	// value, else returns 0 (Appendix A, Operation 2).
	OpMax
	// OpAndOr performs bucket &= p1 when p2 == 0, else bucket |= p1,
	// returning the updated bucket (Appendix A, Operation 3).
	OpAndOr
	// OpXor toggles bucket bits: bucket ^= p1, returning the updated
	// bucket. This is the paper's reserved-slot extension (§6): with the
	// fourth SALU action slot, FlyMon can host Odd Sketch for traffic-set
	// similarity.
	OpXor
)

// String implements fmt.Stringer.
func (op StatefulOp) String() string {
	switch op {
	case OpNone:
		return "None"
	case OpCondAdd:
		return "Cond-ADD"
	case OpMax:
		return "MAX"
	case OpAndOr:
		return "AND-OR"
	case OpXor:
		return "XOR"
	default:
		return fmt.Sprintf("StatefulOp(%d)", uint8(op))
	}
}

// ReducedOperationSet is the set of stateful operations FlyMon preloads on
// every CMU register (§3.1.2); the fourth SALU slot stays free.
var ReducedOperationSet = []StatefulOp{OpCondAdd, OpMax, OpAndOr}

// ExtendedOperationSet adds the reserved-slot XOR extension (§6),
// exhausting the SALU's four action slots.
var ExtendedOperationSet = []StatefulOp{OpCondAdd, OpMax, OpAndOr, OpXor}

// Register models a SALU bound to a fixed-size stateful memory. The bucket
// count and bit width are fixed at compile time (they cannot change at
// runtime — the constraint that motivates FlyMon's address translation);
// the executed action is selected per packet.
//
// The register enforces the single-access-per-packet constraint indirectly:
// each stateful op touches exactly one bucket, and the CMU layer never
// issues two ops for one packet.
//
// Two update variants are offered, mirroring the two packet paths above:
//
//   - ApplySeq/Execute: plain read-modify-write for a single writer — the
//     interpretive pipeline path and single-threaded replays. Fastest; must
//     not run concurrently with anything else touching the register.
//   - Apply: a CAS loop per stateful op, safe for concurrent writers —
//     the snapshot fast path, modeling the independent pipes of a real
//     switch where each pipe's SALU performs its read-modify-write in one
//     hardware clock. Per-bucket updates are linearizable, but no atomicity
//     is promised across buckets (the d rows of a sketch may be observed
//     mid-update by a concurrent reader, exactly as on hardware).
//
// Read/ReadRange/ClearRange use atomic bucket access so control-plane
// readout can overlap the concurrent path.
//
// A third, contention-free update path exists for FlyMon's mergeable
// operation set: EnableSharding gives every data-plane worker a private
// bucket lane, written with plain stores through ShardApply and reduced
// back into the shared buckets by DrainRange — see the sharding section
// below for the exactness argument and the synchronization contract.
type Register struct {
	buckets  []uint32
	bitWidth int
	mask     uint32

	// accesses counts single-writer base updates (ApplySeq/Execute). It is
	// striped away from the bucket/shard headers by the pads so that stats
	// traffic never shares a cache line with per-packet state; the sharded
	// path keeps its own per-lane counters (regShard.accesses) and
	// Accesses folds all stripes on read.
	_        [cacheLineBytes]byte
	accesses uint64
	_        [cacheLineBytes - 8]byte

	// clamps counts Cond-ADD saturation events: updates whose sum exceeded
	// the bucket width and were clamped to the mask. A saturating register
	// is the hardware signal that a task's buckets are too narrow (or its
	// traffic share too hot) — the telemetry plane exposes it per CMU.
	// Clamping is rare, so both update paths count it with one interlocked
	// add on its own padded line.
	clamps uint64
	_      [cacheLineBytes - 8]byte

	shards []regShard
	// drainedSeq is the ShardSeq value the last MarkDrained recorded; the
	// control plane's drain skips registers whose cursor has not moved.
	drainedSeq uint64
}

// cacheLineBytes is the assumed cache-line size used to pad shard state so
// lanes and counters of different workers never false-share.
const cacheLineBytes = 64

// lanePadBuckets is the head/tail padding (in buckets) around each shard's
// lane allocation: one full cache line keeps a lane's first and last
// buckets off lines owned by neighboring heap objects.
const lanePadBuckets = cacheLineBytes / 4

// regShard is one worker's private bucket lane plus its access-counter
// stripe. The struct is padded to a multiple of the cache line so the
// counters of adjacent shards (updated on every sharded op) never share a
// line.
type regShard struct {
	lane     []uint32 // len == register size; single-writer, plain access
	accesses uint64
	_        [cacheLineBytes*2 - 32]byte
}

// NewRegister allocates a register with the given bucket count (rounded up
// to a power of two, as hardware memories are) and bucket bit width (at
// most 32).
func NewRegister(buckets, bitWidth int) *Register {
	if bitWidth <= 0 || bitWidth > 32 {
		panic(fmt.Sprintf("dataplane: register bit width %d out of range (0,32]", bitWidth))
	}
	n := 1
	for n < buckets {
		n <<= 1
	}
	var mask uint32 = ^uint32(0)
	if bitWidth < 32 {
		mask = 1<<uint(bitWidth) - 1
	}
	return &Register{buckets: make([]uint32, n), bitWidth: bitWidth, mask: mask}
}

// Size returns the bucket count.
func (r *Register) Size() int { return len(r.buckets) }

// BitWidth returns the configured bucket width in bits.
func (r *Register) BitWidth() int { return r.bitWidth }

// MemoryBytes returns the stateful memory footprint (bit-packed).
func (r *Register) MemoryBytes() int { return len(r.buckets) * r.bitWidth / 8 }

// SRAMBlocks returns the SRAM blocks this register occupies.
func (r *Register) SRAMBlocks() int { return SRAMBlocksFor(len(r.buckets), r.bitWidth) }

// Accesses returns the number of plain-path update calls served
// (Execute/ApplySeq plus every shard's ShardApply ops), folding the
// per-stripe counters on read — stats collection pays the fan-in, not the
// packet path. The concurrent Apply path does not count: a second
// interlocked operation per update would double the cost of the packet hot
// path for a number the atomic pipeline packet counters already provide in
// aggregate. Like the plain update paths themselves, the fold is exact
// only once the writers have been quiesced (e.g. after a batch returns).
func (r *Register) Accesses() uint64 {
	n := atomic.LoadUint64(&r.accesses)
	for i := range r.shards {
		n += atomic.LoadUint64(&r.shards[i].accesses)
	}
	return n
}

// Execute performs one stateful operation on bucket index with parameters
// p1, p2, returning the operation's result. The index is wrapped into the
// bucket range; values saturate at the bucket width. Single-writer only —
// see ApplySeq.
func (r *Register) Execute(op StatefulOp, index uint32, p1, p2 uint32) uint32 {
	result, _ := r.ApplySeq(op, index, p1, p2)
	return result
}

// ApplySeq performs one stateful operation with plain (non-atomic) bucket
// access, returning the result and the value read before updating. It is
// the single-writer fast path: correct and cheapest when exactly one
// goroutine updates the register, as on the interpretive pipeline path.
// Never mix concurrently with Apply or with control-plane readout.
func (r *Register) ApplySeq(op StatefulOp, index uint32, p1, p2 uint32) (result, old uint32) {
	r.accesses++
	return r.applyPlain(r.buckets, op, index, p1, p2)
}

// applyPlain is the shared plain (non-atomic) read-modify-write kernel
// behind ApplySeq and ShardApply; buckets selects the base array or a lane.
func (r *Register) applyPlain(buckets []uint32, op StatefulOp, index, p1, p2 uint32) (result, old uint32) {
	mask := r.mask
	i := index & uint32(len(buckets)-1)
	cur := buckets[i]
	switch op {
	case OpCondAdd:
		if cur >= (p2 & mask) {
			return 0, cur
		}
		next := cur + (p1 & mask)
		if next > mask || next < cur {
			next = mask
			atomic.AddUint64(&r.clamps, 1)
		}
		buckets[i] = next
		return next, cur
	case OpMax:
		v := p1 & mask
		if cur >= v {
			return 0, cur
		}
		buckets[i] = v
		return v, cur
	case OpAndOr:
		next := cur
		if p2 == 0 {
			next &= p1 & mask
		} else {
			next |= p1 & mask
		}
		buckets[i] = next
		return next, cur
	case OpXor:
		next := cur ^ (p1 & mask)
		buckets[i] = next
		return next, cur
	case OpNone:
		return 0, cur
	default:
		panic(fmt.Sprintf("dataplane: unknown stateful op %d", op))
	}
}

// Apply performs one stateful operation like ApplySeq but with a CAS loop
// per op, making it safe for concurrent writers. The (result, old) pair is
// consistent — it is the witnessed read-modify-write, even under
// concurrency, which is what DetectNew-style predicates depend on. Apply
// does not bump the Accesses counter (see Accesses).
func (r *Register) Apply(op StatefulOp, index uint32, p1, p2 uint32) (result, old uint32) {
	b := &r.buckets[index&uint32(len(r.buckets)-1)]
	switch op {
	case OpCondAdd:
		p1m, p2m := p1&r.mask, p2&r.mask
		for {
			cur := atomic.LoadUint32(b)
			if cur >= p2m {
				return 0, cur
			}
			next := cur + p1m
			clamped := false
			if next > r.mask || next < cur {
				next = r.mask
				clamped = true
			}
			if atomic.CompareAndSwapUint32(b, cur, next) {
				if clamped {
					atomic.AddUint64(&r.clamps, 1)
				}
				return next, cur
			}
		}
	case OpMax:
		v := p1 & r.mask
		for {
			cur := atomic.LoadUint32(b)
			if cur >= v {
				return 0, cur
			}
			if atomic.CompareAndSwapUint32(b, cur, v) {
				return v, cur
			}
		}
	case OpAndOr:
		for {
			cur := atomic.LoadUint32(b)
			next := cur
			if p2 == 0 {
				next &= p1 & r.mask
			} else {
				next |= p1 & r.mask
			}
			if atomic.CompareAndSwapUint32(b, cur, next) {
				return next, cur
			}
		}
	case OpXor:
		for {
			cur := atomic.LoadUint32(b)
			next := cur ^ (p1 & r.mask)
			if atomic.CompareAndSwapUint32(b, cur, next) {
				return next, cur
			}
		}
	case OpNone:
		return 0, atomic.LoadUint32(b)
	default:
		panic(fmt.Sprintf("dataplane: unknown stateful op %d", op))
	}
}

// Clamps returns the number of Cond-ADD saturation clamp events observed on
// either update path (lane drains fold through Apply, so drain-induced
// saturation counts too).
func (r *Register) Clamps() uint64 { return atomic.LoadUint64(&r.clamps) }

// Occupancy returns the number of non-zero base buckets — the register's
// fill gauge. Lane state is not scanned: drain the lanes first for an exact
// figure on a sharded register (the controller's telemetry fold does).
// Bucket loads are atomic, so Occupancy may overlap concurrent writers; the
// result is then a point-in-time approximation, as with any live gauge.
func (r *Register) Occupancy() int {
	n := 0
	for i := range r.buckets {
		if atomic.LoadUint32(&r.buckets[i]) != 0 {
			n++
		}
	}
	return n
}

// Read returns bucket i without counting a data-plane access (control-plane
// register readout).
func (r *Register) Read(i uint32) uint32 {
	return atomic.LoadUint32(&r.buckets[i&uint32(len(r.buckets)-1)])
}

// ReadRange copies buckets [lo, lo+n) into a fresh slice (control-plane
// readout of one task's partition).
func (r *Register) ReadRange(lo, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = atomic.LoadUint32(&r.buckets[lo+i])
	}
	return out
}

// ClearRange zeroes buckets [lo, lo+n) — used when a partition is recycled
// for a new task. Shard lanes are cleared too (a recycled partition must
// not resurrect a removed task's undrained lane state); lane stores are
// plain, so on a sharded register the caller must hold whatever gate
// excludes concurrent ShardApply writers.
func (r *Register) ClearRange(lo, n int) {
	for i := lo; i < lo+n; i++ {
		atomic.StoreUint32(&r.buckets[i], 0)
	}
	for s := range r.shards {
		lane := r.shards[s].lane
		for i := lo; i < lo+n; i++ {
			lane[i] = 0
		}
	}
}

// Reset zeroes the whole register.
func (r *Register) Reset() { r.ClearRange(0, len(r.buckets)) }

// --- Sharded state: private per-worker lanes + mergeable-op reduction ---
//
// FlyMon's reduced operation set is not just expressive — it is mergeable:
// saturating sums add, maxes max, OR-bitmaps OR, XOR parities XOR. That
// property lets a register split its write traffic across private
// per-worker lanes (no CAS, no shared cache lines) and reduce them back on
// the query path, exactly like the per-pipe SALU copies of a multi-pipe
// switch ASIC whose control plane folds the pipes at readout.
//
// Exactness. For each mergeable op, folding per-lane results with
// MergeValues is bit-identical to having applied the whole update stream
// sequentially against one bucket, for any partition of the stream:
//
//   - Cond-ADD with its threshold at the saturation bound min(mask, Σpᵢ):
//     if no lane saturates the fold sums exactly; if any lane saturates
//     then Σ lanes ≥ mask and the saturating fold clamps to mask, which is
//     also the sequential result. (A threshold *below* the bound is a real
//     condition on global state and is NOT mergeable — callers must keep
//     such rules on the CAS path.)
//   - MAX: max over lane maxima = max over the stream; 0 is the identity.
//   - AND-OR, OR branch: OR over lane bitmaps = OR over the stream; 0 is
//     the identity. (The AND branch starts from the bucket's current
//     value, so it is not mergeable.)
//   - XOR: XOR is an abelian group; lanes fold exactly, 0 is the identity.
//
// Synchronization contract. A lane is single-writer (the owning worker)
// with plain loads/stores. DrainRange/ClearRange read and write lanes with
// plain access too, so the caller must exclude sharded writers around them
// (the control plane holds a gate that ProcessParallel batches take in
// shared mode). The fold into the base buckets goes through the CAS path,
// so it may safely overlap single-packet CAS writers and atomic readers.

// EnableSharding allocates n private bucket lanes (one per worker). It is
// idempotent for the same n; changing the lane count discards the current
// lanes, so callers must drain first. n <= 1 disables sharding. Lanes are
// padded so neighboring allocations never share the first/last cache line.
func (r *Register) EnableSharding(n int) {
	if n <= 1 {
		r.shards = nil
		r.drainedSeq = 0
		return
	}
	if len(r.shards) == n {
		return
	}
	r.shards = make([]regShard, n)
	r.drainedSeq = 0
	size := len(r.buckets)
	for i := range r.shards {
		arr := make([]uint32, size+2*lanePadBuckets)
		r.shards[i].lane = arr[lanePadBuckets : lanePadBuckets+size : lanePadBuckets+size]
	}
}

// Shards returns the number of private lanes (0 = sharding disabled).
func (r *Register) Shards() int { return len(r.shards) }

// Mask returns the bucket-width mask (the saturation bound).
func (r *Register) Mask() uint32 { return r.mask }

// ShardApply performs one stateful operation on the given worker's private
// lane with plain bucket access — the contention-free fast path for
// mergeable ops. Each lane tolerates exactly one writer; distinct shards
// never synchronize. The (result, old) pair is lane-local: callers must
// not feed it into cross-worker predicates (the compiler only routes rules
// here when nothing consumes the result bus).
func (r *Register) ShardApply(shard int, op StatefulOp, index, p1, p2 uint32) (result, old uint32) {
	sh := &r.shards[shard]
	sh.accesses++
	return r.applyPlain(sh.lane, op, index, p1, p2)
}

// MergeValues folds two bucket values under a mergeable op's reduction:
// saturating sum for Cond-ADD, max for MAX, OR for AND-OR, XOR for XOR.
// OpNone returns a unchanged.
func MergeValues(op StatefulOp, mask, a, b uint32) uint32 {
	switch op {
	case OpCondAdd:
		s := (a & mask) + (b & mask)
		if s > mask || s < a&mask {
			s = mask
		}
		return s
	case OpMax:
		if b&mask > a&mask {
			return b & mask
		}
		return a & mask
	case OpAndOr:
		return (a | b) & mask
	case OpXor:
		return (a ^ b) & mask
	case OpNone:
		return a
	default:
		panic(fmt.Sprintf("dataplane: unknown stateful op %d", op))
	}
}

// ReadMerged returns bucket i reduced across the shared buckets and every
// lane under op's merge function, without draining. Lane loads are plain:
// quiesce sharded writers first.
func (r *Register) ReadMerged(op StatefulOp, i uint32) uint32 {
	i &= uint32(len(r.buckets) - 1)
	v := atomic.LoadUint32(&r.buckets[i])
	for s := range r.shards {
		v = MergeValues(op, r.mask, v, r.shards[s].lane[i])
	}
	return v
}

// ReadRangeMerged is ReadRange reduced across lanes under op.
func (r *Register) ReadRangeMerged(op StatefulOp, lo, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.ReadMerged(op, uint32(lo+i))
	}
	return out
}

// DrainRange folds every lane's buckets in [lo, lo+n) into the shared
// buckets under op's merge function and zeroes the drained lane entries,
// returning the number of nonzero lane buckets folded. The fold lands
// through the CAS path (Apply), so concurrent CAS writers and atomic
// readers stay safe; lane access is plain, so sharded writers must be
// quiesced. Zero is every merge's identity, which makes draining a range
// whose rules never sharded a no-op.
func (r *Register) DrainRange(op StatefulOp, lo, n int) int {
	merged := 0
	for s := range r.shards {
		lane := r.shards[s].lane
		for i := lo; i < lo+n; i++ {
			v := lane[i]
			if v == 0 {
				continue
			}
			lane[i] = 0
			merged++
			switch op {
			case OpCondAdd:
				r.Apply(OpCondAdd, uint32(i), v, ^uint32(0))
			case OpMax:
				r.Apply(OpMax, uint32(i), v, 0)
			case OpAndOr:
				r.Apply(OpAndOr, uint32(i), v, 1)
			case OpXor:
				r.Apply(OpXor, uint32(i), v, 0)
			}
		}
	}
	return merged
}

// ShardSeq returns the total sharded ops applied so far — a cheap
// dirtiness cursor: a register whose ShardSeq has not moved since its last
// drain has nothing new to fold, letting query paths skip the lane scan.
// Exact only with sharded writers quiesced, like every lane read.
func (r *Register) ShardSeq() uint64 {
	var n uint64
	for i := range r.shards {
		n += atomic.LoadUint64(&r.shards[i].accesses)
	}
	return n
}

// ShardsDirty reports whether sharded ops have landed since MarkDrained.
func (r *Register) ShardsDirty() bool {
	return len(r.shards) > 0 && r.ShardSeq() != atomic.LoadUint64(&r.drainedSeq)
}

// MarkDrained records the current ShardSeq as fully folded. Call after
// draining every partition of the register.
func (r *Register) MarkDrained() { atomic.StoreUint64(&r.drainedSeq, r.ShardSeq()) }
