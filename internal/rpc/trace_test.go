package rpc

import (
	"errors"
	"strings"
	"testing"
	"time"

	"flymon/internal/controlplane"
	"flymon/internal/tracing"
)

// startTracedServer is startServer with tracers on both ends.
func startTracedServer(t *testing.T) (*Server, *Client, *tracing.Tracer, *tracing.Tracer) {
	t.Helper()
	ctrl := controlplane.NewController(controlplane.Config{Groups: 3, Buckets: 65536, BitWidth: 32})
	srv := NewServer(ctrl, nil)
	srvTracer := tracing.New(256)
	srv.SetTracer(srvTracer)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cliTracer := tracing.New(256)
	client, err := DialOptions(addr, Options{Tracer: cliTracer})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return srv, client, cliTracer, srvTracer
}

func spansByName(spans []tracing.Span) map[string][]tracing.Span {
	m := make(map[string][]tracing.Span)
	for _, sp := range spans {
		m[sp.Name] = append(m[sp.Name], sp)
	}
	return m
}

func TestTracePropagatesAcrossRPC(t *testing.T) {
	_, c, cliTr, srvTr := startTracedServer(t)

	root := cliTr.StartRoot("deploy")
	if _, err := c.AddTask(freqSpec("traced"), root.Context()); err != nil {
		t.Fatal(err)
	}
	root.Finish(nil)

	cliSpans, _, _ := cliTr.Dump()
	cm := spansByName(cliSpans)
	rpcSpans := cm["rpc:add_task"]
	if len(rpcSpans) != 1 {
		t.Fatalf("client rpc spans = %d, want 1 (%+v)", len(rpcSpans), cliSpans)
	}
	if rpcSpans[0].Parent != cm["deploy"][0].ID {
		t.Fatalf("rpc span not parented to root")
	}
	if rpcSpans[0].Attempt != 1 {
		t.Fatalf("attempt = %d", rpcSpans[0].Attempt)
	}

	srvSpans, _, _ := srvTr.Dump()
	sm := spansByName(srvSpans)
	disp := sm["dispatch:add_task"]
	ctl := sm["controlplane:add_task"]
	if len(disp) != 1 || len(ctl) != 1 {
		t.Fatalf("daemon spans: dispatch=%d controlplane=%d (%+v)", len(disp), len(ctl), srvSpans)
	}
	// Causality: client rpc span → daemon dispatch → controlplane mutation,
	// all inside the root's trace.
	if disp[0].Trace != rpcSpans[0].Trace || disp[0].Trace != tracing.TraceID(root.Context().Trace) {
		t.Fatalf("trace ID did not propagate: %x vs %x", disp[0].Trace, rpcSpans[0].Trace)
	}
	if disp[0].Parent != rpcSpans[0].ID {
		t.Fatalf("dispatch parent = %x, want client rpc span %x", disp[0].Parent, rpcSpans[0].ID)
	}
	if ctl[0].Parent != disp[0].ID {
		t.Fatalf("controlplane parent = %x, want dispatch %x", ctl[0].Parent, disp[0].ID)
	}
}

func TestUntracedCallsRecordNothing(t *testing.T) {
	_, c, cliTr, srvTr := startTracedServer(t)
	// No parent context: liveness probes and plain calls must not flood
	// either buffer.
	if _, err := c.AddTask(freqSpec("plain")); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, total, _ := cliTr.Dump(); total != 0 {
		t.Fatalf("client recorded %d spans for untraced calls", total)
	}
	if _, total, _ := srvTr.Dump(); total != 0 {
		t.Fatalf("daemon recorded %d spans for untraced calls", total)
	}
}

func TestTraceAgainstUntracedDaemon(t *testing.T) {
	// Wire compatibility: a daemon without a tracer ignores the trace
	// field and the call succeeds; the client half of the trace survives.
	ctrl := controlplane.NewController(controlplane.Config{Groups: 3, Buckets: 65536, BitWidth: 32})
	srv := NewServer(ctrl, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cliTr := tracing.New(64)
	c, err := DialOptions(addr, Options{Tracer: cliTr})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	root := cliTr.StartRoot("deploy")
	if _, err := c.AddTask(freqSpec("old-peer"), root.Context()); err != nil {
		t.Fatal(err)
	}
	root.Finish(nil)
	spans, _, _ := cliTr.Dump()
	if len(spans) != 2 {
		t.Fatalf("client spans = %d, want 2", len(spans))
	}
	// And the untraced daemon's dump RPC answers empty instead of failing.
	dump, err := c.TraceDump(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Spans) != 0 || dump.Total != 0 {
		t.Fatalf("untraced daemon dump = %+v", dump)
	}
}

func TestTraceDumpRPC(t *testing.T) {
	_, c, cliTr, _ := startTracedServer(t)
	for i := 0; i < 3; i++ {
		root := cliTr.StartRoot("deploy")
		if _, err := c.ListTasks(root.Context()); err != nil {
			t.Fatal(err)
		}
		root.Finish(nil)
	}
	dump, err := c.TraceDump(0)
	if err != nil {
		t.Fatal(err)
	}
	if dump.Total != 3 || len(dump.Spans) != 3 {
		t.Fatalf("dump: total=%d spans=%d", dump.Total, len(dump.Spans))
	}
	for _, sp := range dump.Spans {
		if sp.Name != "dispatch:list_tasks" {
			t.Fatalf("unexpected daemon span %q", sp.Name)
		}
	}
	// Limit keeps the newest spans.
	dump, err = c.TraceDump(2)
	if err != nil || len(dump.Spans) != 2 {
		t.Fatalf("limited dump: %d spans, err=%v", len(dump.Spans), err)
	}
	if dump.Total != 3 {
		t.Fatalf("limited dump total = %d", dump.Total)
	}
}

func TestTraceRecordsRetriesAndBreakerRejections(t *testing.T) {
	ctrl := controlplane.NewController(controlplane.Config{Groups: 3, Buckets: 8192, BitWidth: 32})
	srv := NewServer(ctrl, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cliTr := tracing.New(64)
	c, err := DialOptions(addr, Options{
		Tracer:           cliTr,
		MaxRetries:       2,
		CallTimeout:      200 * time.Millisecond,
		DialTimeout:      200 * time.Millisecond,
		BackoffBase:      time.Millisecond,
		BackoffMax:       2 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.Close() // every attempt now fails at the transport

	root := cliTr.StartRoot("query")
	if _, err := c.ListTasks(root.Context()); err == nil {
		t.Fatal("call against a dead daemon succeeded")
	}
	root.Finish(errors.New("fleet query failed"))

	spans, _, _ := cliTr.Dump()
	attempts := spansByName(spans)["rpc:list_tasks"]
	if len(attempts) != 3 { // 1 try + MaxRetries
		t.Fatalf("attempt spans = %d, want 3 (%+v)", len(attempts), spans)
	}
	seen := map[int]bool{}
	for _, sp := range attempts {
		if sp.Err == "" {
			t.Fatalf("failed attempt span has no error: %+v", sp)
		}
		seen[sp.Attempt] = true
	}
	if !seen[1] || !seen[2] || !seen[3] {
		t.Fatalf("attempt ordinals missing: %v", seen)
	}

	// The breaker opened after 3 consecutive failures; the next attempt
	// records a breaker-rejection span.
	root2 := cliTr.StartRoot("query")
	if _, err := c.ListTasks(root2.Context()); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("expected open breaker, got %v", err)
	}
	root2.Finish(nil)
	spans, _, _ = cliTr.Dump()
	var rejected bool
	for _, sp := range spans {
		if sp.Trace == tracing.TraceID(root2.Context().Trace) && sp.Name == "rpc:list_tasks" &&
			strings.Contains(sp.Err, "circuit") {
			rejected = true
		}
	}
	if !rejected {
		t.Fatalf("no breaker-rejection span recorded: %+v", spans)
	}
}
