package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// EndpointStats counts the outcomes of one RPC method. The fields are plain
// atomics (not striped Counters): the control channel handles requests, not
// packets, so a shared cache line per method is plenty.
type EndpointStats struct {
	Requests atomic.Uint64 // attempts that reached the wire (passed the breaker)
	Failures atomic.Uint64 // attempts that returned an error
	Retries  atomic.Uint64 // extra attempts after the first (client side only)
	Timeouts atomic.Uint64 // failures classified as deadline expiry
}

// BreakerCounters counts circuit-breaker transitions *into* each state.
type BreakerCounters struct {
	Open     atomic.Uint64
	HalfOpen atomic.Uint64
	Closed   atomic.Uint64
}

// RPCStats aggregates per-endpoint counters for one side of the control
// channel (a client or a server). Endpoint lazily creates the per-method
// stats; everything after that is lock-free.
type RPCStats struct {
	Breaker BreakerCounters
	Panics  atomic.Uint64 // handler panics recovered into error responses (server side)

	mu  sync.Mutex
	eps map[string]*EndpointStats
}

// Endpoint returns the stats for a method, creating them on first use.
func (s *RPCStats) Endpoint(method string) *EndpointStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.eps == nil {
		s.eps = make(map[string]*EndpointStats)
	}
	ep := s.eps[method]
	if ep == nil {
		ep = &EndpointStats{}
		s.eps[method] = ep
	}
	return ep
}

// EndpointSnapshot is the plain-value form of one method's counters.
type EndpointSnapshot struct {
	Method   string `json:"method"`
	Requests uint64 `json:"requests"`
	Failures uint64 `json:"failures"`
	Retries  uint64 `json:"retries"`
	Timeouts uint64 `json:"timeouts"`
}

// RPCReport is the serializable form of an RPCStats.
type RPCReport struct {
	Endpoints       []EndpointSnapshot `json:"endpoints,omitempty"`
	BreakerOpen     uint64             `json:"breaker_open"`
	BreakerHalfOpen uint64             `json:"breaker_half_open"`
	BreakerClosed   uint64             `json:"breaker_closed"`
	Panics          uint64             `json:"panics,omitempty"`
}

// Snapshot folds the per-endpoint counters, sorted by method name for
// stable rendering.
func (s *RPCStats) Snapshot() RPCReport {
	r := RPCReport{
		BreakerOpen:     s.Breaker.Open.Load(),
		BreakerHalfOpen: s.Breaker.HalfOpen.Load(),
		BreakerClosed:   s.Breaker.Closed.Load(),
		Panics:          s.Panics.Load(),
	}
	s.mu.Lock()
	methods := make([]string, 0, len(s.eps))
	for m := range s.eps {
		methods = append(methods, m)
	}
	eps := make([]*EndpointStats, 0, len(methods))
	sort.Strings(methods)
	for _, m := range methods {
		eps = append(eps, s.eps[m])
	}
	s.mu.Unlock()
	for i, m := range methods {
		ep := eps[i]
		r.Endpoints = append(r.Endpoints, EndpointSnapshot{
			Method:   m,
			Requests: ep.Requests.Load(),
			Failures: ep.Failures.Load(),
			Retries:  ep.Retries.Load(),
			Timeouts: ep.Timeouts.Load(),
		})
	}
	return r
}

// SessionGauge is one switch's liveness-session state at scrape time (the
// per-switch label set of the flymon_fleet_session_state metric). State is
// the session state name ("down"/"init"/"up"); Damped marks a session that
// reached Up but is held out of service by flap damping.
type SessionGauge struct {
	Switch int    `json:"switch"`
	Addr   string `json:"addr"`
	State  string `json:"state"`
	Up     bool   `json:"up"` // reported-Up: state Up and not damped
	Damped bool   `json:"damped"`
}

// FleetStats counts network-wide fan-out health: how often RemoteFleet
// queries went out, failed per switch, merged partially, how each switch's
// health classification moved, and — once liveness sessions are attached —
// the BFD-style session machinery: state transitions, ejects/rejoins,
// detection latency, and the reconciler's anti-entropy work.
type FleetStats struct {
	FanOuts       atomic.Uint64 // fleet-wide operations issued
	OpFailures    atomic.Uint64 // per-switch operation failures inside fan-outs
	PartialMerges atomic.Uint64 // degraded-mode merges that proceeded without every switch
	ToHealthy     atomic.Uint64 // health transitions into each state
	ToDegraded    atomic.Uint64
	ToDown        atomic.Uint64

	// Liveness-session machinery.
	SessionToUp   atomic.Uint64 // session state transitions into each state
	SessionToInit atomic.Uint64
	SessionToDown atomic.Uint64
	Ejects        atomic.Uint64 // switches pulled from fan-outs/merges (reported-Up lost)
	Rejoins       atomic.Uint64 // switches readmitted (reported-Up regained)
	DetectionTime Histogram     // last good reply → Down detection latency

	// Reconciler anti-entropy work.
	ReconcileRuns   atomic.Uint64 // full desired-vs-observed passes
	Redeploys       atomic.Uint64 // missing tasks re-deployed onto a switch
	ReconcileErrors atomic.Uint64 // per-switch reconcile failures (unreachable, diverged)

	// MergeTree instruments the parallel merge-tree query engine and the
	// epoch-coherent readout path (straggler policies).
	MergeTree MergeTreeStats

	mu       sync.Mutex
	sessions map[int]SessionGauge
}

// SetSession publishes one switch's session gauge (overwriting the
// previous value for that switch index).
func (f *FleetStats) SetSession(g SessionGauge) {
	f.mu.Lock()
	if f.sessions == nil {
		f.sessions = make(map[int]SessionGauge)
	}
	f.sessions[g.Switch] = g
	f.mu.Unlock()
}

// FleetReport is the serializable form of FleetStats.
type FleetReport struct {
	FanOuts       uint64 `json:"fan_outs"`
	OpFailures    uint64 `json:"op_failures"`
	PartialMerges uint64 `json:"partial_merges"`
	ToHealthy     uint64 `json:"to_healthy"`
	ToDegraded    uint64 `json:"to_degraded"`
	ToDown        uint64 `json:"to_down"`

	SessionToUp     uint64            `json:"session_to_up"`
	SessionToInit   uint64            `json:"session_to_init"`
	SessionToDown   uint64            `json:"session_to_down"`
	Ejects          uint64            `json:"ejects"`
	Rejoins         uint64            `json:"rejoins"`
	DetectionTime   HistogramSnapshot `json:"detection_time"`
	ReconcileRuns   uint64            `json:"reconcile_runs"`
	Redeploys       uint64            `json:"redeploys"`
	ReconcileErrors uint64            `json:"reconcile_errors"`
	MergeTree       MergeTreeReport   `json:"merge_tree"`
	Sessions        []SessionGauge    `json:"sessions,omitempty"`
}

// Snapshot folds the fleet counters into a plain value.
func (f *FleetStats) Snapshot() FleetReport {
	r := FleetReport{
		FanOuts:         f.FanOuts.Load(),
		OpFailures:      f.OpFailures.Load(),
		PartialMerges:   f.PartialMerges.Load(),
		ToHealthy:       f.ToHealthy.Load(),
		ToDegraded:      f.ToDegraded.Load(),
		ToDown:          f.ToDown.Load(),
		SessionToUp:     f.SessionToUp.Load(),
		SessionToInit:   f.SessionToInit.Load(),
		SessionToDown:   f.SessionToDown.Load(),
		Ejects:          f.Ejects.Load(),
		Rejoins:         f.Rejoins.Load(),
		DetectionTime:   f.DetectionTime.Snapshot(),
		ReconcileRuns:   f.ReconcileRuns.Load(),
		Redeploys:       f.Redeploys.Load(),
		ReconcileErrors: f.ReconcileErrors.Load(),
		MergeTree:       f.MergeTree.Snapshot(),
	}
	f.mu.Lock()
	idx := make([]int, 0, len(f.sessions))
	for i := range f.sessions {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	for _, i := range idx {
		r.Sessions = append(r.Sessions, f.sessions[i])
	}
	f.mu.Unlock()
	return r
}
