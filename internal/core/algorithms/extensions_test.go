package algorithms

import (
	"testing"

	"flymon/internal/core"
	"flymon/internal/metrics"
	"flymon/internal/packet"
	"flymon/internal/sketch"
	"flymon/internal/trace"
)

// TestOddSketchSymmetricDifference exercises the §6 extension: two
// FlyMon-OddSketch tasks over disjoint traffic halves on ONE group, whose
// XOR estimates the symmetric difference of the two flow sets.
func TestOddSketchSymmetricDifference(t *testing.T) {
	pl := pipeline32(1, 1<<13)
	g := pl.Group(0)
	west := packet.Filter{SrcPrefix: packet.Prefix{Value: 0, Bits: 1}}
	east := packet.Filter{SrcPrefix: packet.Prefix{Value: 0x80000000, Bits: 1}}

	a, err := InstallOddSketch(g, 1, west, packet.KeyFiveTuple, core.MemRange{}, 0)
	if err != nil {
		t.Fatalf("InstallOddSketch A: %v", err)
	}
	b, err := InstallOddSketch(g, 2, east, packet.KeyFiveTuple, core.MemRange{}, 1)
	if err != nil {
		t.Fatalf("InstallOddSketch B: %v", err)
	}

	// Feed each flow exactly once (set semantics): one packet per flow.
	tr := trace.Generate(trace.Config{Flows: 4000, Packets: 4000, Seed: 40})
	seen := map[packet.CanonicalKey]bool{}
	westSet := map[packet.CanonicalKey]bool{}
	eastSet := map[packet.CanonicalKey]bool{}
	for i := range tr.Packets {
		p := &tr.Packets[i]
		k := packet.KeyFiveTuple.Extract(p)
		if seen[k] {
			continue
		}
		seen[k] = true
		pl.Process(p)
		if west.Matches(p) {
			westSet[k] = true
		} else {
			eastSet[k] = true
		}
	}
	// The halves are disjoint: |AΔB| = |A| + |B|.
	truth := float64(len(westSet) + len(eastSet))
	got, err := a.SymmetricDifference(b)
	if err != nil {
		t.Fatal(err)
	}
	if re := metrics.RE(truth, got); re > 0.15 {
		t.Fatalf("odd-sketch symmetric difference RE %.3f (est %.0f, truth %.0f)", re, got, truth)
	}
}

func TestOddSketchIdenticalSetsCancel(t *testing.T) {
	pl := pipeline32(1, 1<<12)
	g := pl.Group(0)
	// Two sketches over the SAME traffic (disjoint dst-port filters carry
	// the same flows via two passes) must XOR to zero. Simulate by
	// toggling the same keys into both via two disjoint-port packet
	// copies.
	a, err := InstallOddSketch(g, 1, packet.Filter{DstPort: 80}, packet.KeyIPPair, core.MemRange{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := InstallOddSketch(g, 2, packet.Filter{DstPort: 443}, packet.KeyIPPair, core.MemRange{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		p := packet.Packet{SrcIP: uint32(i), DstIP: uint32(i * 31), DstPort: 80, Proto: 6}
		pl.Process(&p)
		p.DstPort = 443
		pl.Process(&p)
	}
	diff, err := a.SymmetricDifference(b)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Fatalf("identical IP-pair sets must cancel, got %.1f", diff)
	}
}

func TestOddSketchComparabilityGuard(t *testing.T) {
	plA := pipeline32(1, 1<<10)
	plB := pipeline32(1, 1<<10)
	a, err := InstallOddSketch(plA.Group(0), 1, packet.MatchAll, packet.KeyFiveTuple, core.MemRange{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := InstallOddSketch(plB.Group(0), 1, packet.MatchAll, packet.KeyFiveTuple, core.MemRange{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.SymmetricDifference(b); err == nil {
		t.Fatal("sketches on different groups must be rejected (different hash polynomials)")
	}
}

// TestPortScanDetection covers Table 1's port-scan task: distinct DstPorts
// per IP pair, composed as FlyMon-BeauCoup.
func TestPortScanDetection(t *testing.T) {
	pl := pipeline32(1, 1<<14)
	const threshold = 200
	keyDstPort := packet.NewKeySpec(packet.FieldDstPort)
	task, err := InstallBeauCoup(pl.Group(0), 1, packet.MatchAll,
		packet.KeyIPPair, keyDstPort, threshold, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(trace.Config{Flows: 2000, Packets: 40_000, Seed: 41})
	scanner := packet.IPv4(203, 0, 113, 50)
	target := packet.IPv4(198, 51, 100, 1)
	tr.InjectPortScan(scanner, target, 4*threshold, 42)
	exact := sketch.NewExactDistinct(packet.KeyIPPair, keyDstPort)
	for i := range tr.Packets {
		pl.Process(&tr.Packets[i])
		exact.AddPacket(&tr.Packets[i])
	}
	pairKey := packet.KeyIPPair.Extract(&packet.Packet{SrcIP: scanner, DstIP: target})
	cands := make([]packet.CanonicalKey, 0)
	for k := range exact.Counts() {
		cands = append(cands, k)
	}
	reported := task.Reported(cands)
	if !reported[pairKey] {
		t.Fatalf("scanner probing %d ports not reported (coupons %d/%d)",
			exact.Count(pairKey), task.CollectedCoupons(pairKey), task.Cfg.Collect)
	}
}

// TestCMUOffsetPlacement verifies the trailing first-CMU argument: a d=1
// task on CMU 2 must count correctly and leave CMUs 0-1 untouched.
func TestCMUOffsetPlacement(t *testing.T) {
	pl := pipeline32(1, 1<<12)
	g := pl.Group(0)
	task, err := InstallCMS(g, 1, packet.MatchAll, packet.KeyFiveTuple, core.Const(1), 1, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if task.Base != 2 {
		t.Fatalf("base = %d, want 2", task.Base)
	}
	p := packet.Packet{SrcIP: 7, Proto: 6}
	for i := 0; i < 5; i++ {
		pl.Process(&p)
	}
	if got := task.EstimateKey(packet.KeyFiveTuple.Extract(&p)); got != 5 {
		t.Fatalf("offset task estimate = %d, want 5", got)
	}
	if g.CMU(0).Register().Accesses() != 0 || g.CMU(1).Register().Accesses() != 0 {
		t.Fatal("CMUs 0-1 must be untouched")
	}
	if g.CMU(2).Register().Accesses() == 0 {
		t.Fatal("CMU 2 must have served the accesses")
	}
	// Out-of-range offsets are rejected.
	if _, err := InstallCMS(g, 2, packet.Filter{DstPort: 9}, packet.KeyFiveTuple, core.Const(1), 3, nil, 1); err == nil {
		t.Fatal("d=3 at offset 1 exceeds the group and must fail")
	}
}
