// Quickstart: boot a FlyMon switch daemon in-process, connect over the
// control channel, deploy a per-flow frequency task at runtime, replay a
// synthetic workload, and read an estimate back — the complete
// task-reconfiguration loop without touching the data-plane program.
package main

import (
	"fmt"
	"log"

	"flymon/internal/controlplane"
	"flymon/internal/packet"
	"flymon/internal/rpc"
	"flymon/internal/sketch"
	"flymon/internal/trace"
)

func main() {
	// The "switch": a full cross-stacked pipeline (9 CMU Groups, 27 CMUs).
	ctrl := controlplane.NewController(controlplane.Config{
		Groups: 9, Buckets: 65536, BitWidth: 32,
	})
	srv := rpc.NewServer(ctrl, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("flymond listening on %s\n", addr)

	// The "operator": a control-channel client.
	client, err := rpc.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Deploy a per-flow packet-count task. This installs runtime rules
	// only — no P4 reload, no traffic interruption.
	task, err := client.AddTask(controlplane.TaskSpec{
		Name:       "per-flow-size",
		Key:        packet.KeyFiveTuple,
		Attribute:  controlplane.AttrFrequency,
		MemBuckets: 16384,
		D:          3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %s (task %d) on groups %v: %d buckets/row, modeled delay %v\n",
		task.Algorithm, task.ID, task.Groups, task.Buckets, task.Delay)

	// Synthesize and replay a workload inside the daemon.
	const (
		flows, packets, zipfS = 5000, 200_000, 1.2
		seed                  = int64(7)
	)
	n, err := client.GenTrace(flows, packets, zipfS, seed)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := client.Replay(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d packets\n", n)

	// Generation is deterministic per seed, so the operator side can
	// reconstruct the trace to pick a flow worth querying: the heaviest.
	local := trace.Generate(trace.Config{Flows: flows, Packets: packets, ZipfS: zipfS, Seed: seed})
	exact := sketch.NewExactFrequency(packet.KeyFiveTuple)
	for i := range local.Packets {
		exact.AddPacket(&local.Packets[i])
	}
	var top packet.CanonicalKey
	var topCount uint64
	for k, c := range exact.Counts() {
		if c > topCount {
			top, topCount = k, c
		}
	}
	est, err := client.Estimate(task.ID, top)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimate for the heaviest flow: %.0f packets (ground truth %d)\n", est, topCount)

	// Reconfigure on the fly: double the task's memory.
	resized, err := client.ResizeTask(task.ID, 32768)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resized to %d buckets/row (delay %v) — traffic never stopped\n",
		resized.Buckets, resized.Delay)

	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("daemon processed %d packets total\n", stats.PacketsProcessed)
}
