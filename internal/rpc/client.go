package rpc

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"flymon/internal/controlplane"
	"flymon/internal/packet"
)

// Client is a synchronous control-channel client.
type Client struct {
	mu    sync.Mutex
	conn  net.Conn
	codec *codec
	next  uint64
}

// Dial connects to a FlyMon daemon.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, codec: newCodec(conn)}, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// call performs one synchronous request.
func (c *Client) call(method string, params, result any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	req := Request{ID: c.next, Method: method}
	if params != nil {
		raw, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("rpc: encoding params: %w", err)
		}
		req.Params = raw
	}
	if err := c.codec.write(&req); err != nil {
		return fmt.Errorf("rpc: sending %s: %w", method, err)
	}
	var resp Response
	if err := c.codec.read(&resp); err != nil {
		return fmt.Errorf("rpc: receiving %s: %w", method, err)
	}
	if resp.ID != req.ID {
		return fmt.Errorf("rpc: response id %d for request %d", resp.ID, req.ID)
	}
	if resp.Error != "" {
		return fmt.Errorf("rpc: %s: %s", method, resp.Error)
	}
	if result != nil {
		if err := json.Unmarshal(resp.Result, result); err != nil {
			return fmt.Errorf("rpc: decoding %s result: %w", method, err)
		}
	}
	return nil
}

// Ping checks connectivity.
func (c *Client) Ping() error {
	var r BoolResult
	return c.call(MethodPing, nil, &r)
}

// AddTask deploys a measurement task.
func (c *Client) AddTask(spec controlplane.TaskSpec) (TaskResult, error) {
	var r TaskResult
	err := c.call(MethodAddTask, AddTaskParams{Spec: spec}, &r)
	return r, err
}

// RemoveTask removes a task.
func (c *Client) RemoveTask(id int) error {
	var r BoolResult
	return c.call(MethodRemoveTask, TaskIDParams{ID: id}, &r)
}

// ResizeTask reallocates a task's memory.
func (c *Client) ResizeTask(id, newBuckets int) (TaskResult, error) {
	var r TaskResult
	err := c.call(MethodResizeTask, ResizeParams{ID: id, NewBuckets: newBuckets}, &r)
	return r, err
}

// ListTasks lists deployed tasks.
func (c *Client) ListTasks() ([]TaskResult, error) {
	var r []TaskResult
	err := c.call(MethodListTasks, nil, &r)
	return r, err
}

// Estimate returns a per-key estimate.
func (c *Client) Estimate(id int, key packet.CanonicalKey) (float64, error) {
	var r EstimateResult
	err := c.call(MethodEstimate, KeyParams{ID: id, Key: key[:]}, &r)
	return r.Value, err
}

// Cardinality returns a cardinality task's estimate.
func (c *Client) Cardinality(id int) (float64, error) {
	var r EstimateResult
	err := c.call(MethodCardinality, TaskIDParams{ID: id}, &r)
	return r.Value, err
}

// Contains reports Bloom-filter membership.
func (c *Client) Contains(id int, key packet.CanonicalKey) (bool, error) {
	var r BoolResult
	err := c.call(MethodContains, KeyParams{ID: id, Key: key[:]}, &r)
	return r.Value, err
}

// Reported returns detected keys among candidates.
func (c *Client) Reported(id int, candidates []packet.CanonicalKey) ([]packet.CanonicalKey, error) {
	p := CandidatesParams{ID: id}
	for _, k := range candidates {
		kk := k
		p.Candidates = append(p.Candidates, kk[:])
	}
	var r ReportedResult
	if err := c.call(MethodReported, p, &r); err != nil {
		return nil, err
	}
	out := make([]packet.CanonicalKey, len(r.Keys))
	for i, b := range r.Keys {
		out[i] = keyFromBytes(b)
	}
	return out, nil
}

// Distribution returns an MRAC task's flow-size distribution and entropy.
func (c *Client) Distribution(id int) (DistributionResult, error) {
	var r DistributionResult
	err := c.call(MethodDistribution, TaskIDParams{ID: id}, &r)
	return r, err
}

// ReadRegisters reads a task's raw register partitions.
func (c *Client) ReadRegisters(id int) ([][]uint32, error) {
	var r RegistersResult
	err := c.call(MethodReadRegisters, TaskIDParams{ID: id}, &r)
	return r.Rows, err
}

// Resources reports free memory and task counts.
func (c *Client) Resources() (ResourcesResult, error) {
	var r ResourcesResult
	err := c.call(MethodResources, nil, &r)
	return r, err
}

// ResourceReport returns the per-group occupancy report.
func (c *Client) ResourceReport() ([]controlplane.GroupReport, error) {
	var r ReportResult
	err := c.call(MethodReport, nil, &r)
	return r.Groups, err
}

// SplitTask splits a task into two filter-disjoint subtasks (§3.1.1).
func (c *Client) SplitTask(id int) (lo, hi TaskResult, err error) {
	var r SplitResult
	err = c.call(MethodSplitTask, TaskIDParams{ID: id}, &r)
	return r.Lo, r.Hi, err
}

// LoadTrace loads a binary trace file from the daemon's filesystem.
func (c *Client) LoadTrace(path string) (int, error) {
	var r ReplayResult
	err := c.call(MethodLoadTrace, LoadTraceParams{Path: path}, &r)
	return r.Processed, err
}

// GenTrace synthesizes a workload inside the daemon.
func (c *Client) GenTrace(flows, packets int, zipfS float64, seed int64) (int, error) {
	var r ReplayResult
	err := c.call(MethodGenTrace, GenTraceParams{Flows: flows, Packets: packets, ZipfS: zipfS, Seed: seed}, &r)
	return r.Processed, err
}

// Replay pushes n packets (0 = all) of the loaded trace through the
// pipeline.
func (c *Client) Replay(n int) (int, error) {
	var r ReplayResult
	err := c.call(MethodReplay, ReplayParams{Packets: n}, &r)
	return r.Processed, err
}

// Stats returns daemon counters.
func (c *Client) Stats() (StatsResult, error) {
	var r StatsResult
	err := c.call(MethodStats, nil, &r)
	return r, err
}
