package core

import (
	"sync"
	"testing"

	"flymon/internal/trace"
)

// TestWorkerPoolNoGoroutineChurn: the pool's reason to exist — workers are
// started exactly once at construction and reused for every Process call.
func TestWorkerPoolNoGoroutineChurn(t *testing.T) {
	pl := allocPipeline(t)
	s := pl.Compile()
	p := NewWorkerPool(4)
	defer p.Close()

	if p.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", p.Workers())
	}
	if p.Started() != 4 {
		t.Fatalf("Started() = %d after construction, want 4", p.Started())
	}
	tr := trace.Generate(trace.Config{Flows: 200, Packets: 2048, Seed: 5})
	for call := 0; call < 50; call++ {
		p.Process(s, tr.Packets, 4)
		if got := p.Started(); got != 4 {
			t.Fatalf("Started() = %d after %d Process calls, want it flat at 4 (no per-call spawning)", got, call+1)
		}
	}
}

// TestWorkerPoolMatchesSequential: sharded pool execution must preserve
// exact per-bucket counts for commuting ops, matching a sequential replay.
func TestWorkerPoolMatchesSequential(t *testing.T) {
	tr := trace.Generate(trace.Config{Flows: 300, Packets: 8192, Seed: 11})

	seqPl := allocPipeline(t)
	seqPl.Compile().ProcessBatch(tr.Packets)

	poolPl := allocPipeline(t)
	p := NewWorkerPool(4)
	defer p.Close()
	p.Process(poolPl.Compile(), tr.Packets, 4)

	// The deterministic (non-probabilistic) tasks must agree bucket for
	// bucket; the sampled task (taskID 3, Prob 0.5) is excluded by
	// comparing only group 0 and group 1's first partition.
	for ci := 0; ci < 3; ci++ {
		for i := 0; i < 4096; i++ {
			a := seqPl.Group(0).CMU(ci).Register().Read(uint32(i))
			b := poolPl.Group(0).CMU(ci).Register().Read(uint32(i))
			if a != b {
				t.Fatalf("group 0 CMU %d bucket %d: sequential %d, pool %d", ci, i, a, b)
			}
		}
	}
	for i := 0; i < 2048; i++ {
		a := seqPl.Group(1).CMU(0).Register().Read(uint32(i))
		b := poolPl.Group(1).CMU(0).Register().Read(uint32(i))
		if a != b {
			t.Fatalf("group 1 bucket %d: sequential %d, pool %d", i, a, b)
		}
	}
}

// TestWorkerPoolSingleShardIsDeterministic: shards <= 1 must degenerate to
// the sequential ProcessBatch (fresh fixed-seed context), bit-for-bit.
func TestWorkerPoolSingleShardIsDeterministic(t *testing.T) {
	tr := trace.Generate(trace.Config{Flows: 100, Packets: 1024, Seed: 13})

	a := allocPipeline(t)
	a.Compile().ProcessBatch(tr.Packets)

	b := allocPipeline(t)
	p := NewWorkerPool(4)
	defer p.Close()
	p.Process(b.Compile(), tr.Packets, 1)

	for gi := 0; gi < 2; gi++ {
		for ci := 0; ci < a.Group(gi).CMUs(); ci++ {
			for i := 0; i < 4096; i++ {
				x := a.Group(gi).CMU(ci).Register().Read(uint32(i))
				y := b.Group(gi).CMU(ci).Register().Read(uint32(i))
				if x != y {
					t.Fatalf("group %d CMU %d bucket %d: batch %d, pool(shards=1) %d — single-shard path must be bit-identical", gi, ci, i, x, y)
				}
			}
		}
	}
}

// TestWorkerPoolConcurrentCallers: the pool must serve overlapping Process
// calls (the controller is shared); total packet mass must be exact.
func TestWorkerPoolConcurrentCallers(t *testing.T) {
	pl := allocPipeline(t)
	s := pl.Compile()
	p := NewWorkerPool(4)
	defer p.Close()

	tr := trace.Generate(trace.Config{Flows: 100, Packets: 1024, Seed: 17})
	const callers = 4
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Process(s, tr.Packets, 2)
		}()
	}
	wg.Wait()
	if got, want := pl.Packets(), uint64(callers*1024); got != want {
		t.Fatalf("processed %d packets, want %d", got, want)
	}
}

// TestWorkerPoolCloseIdempotent: double Close must not panic.
func TestWorkerPoolCloseIdempotent(t *testing.T) {
	p := NewWorkerPool(2)
	p.Close()
	p.Close()
}
