package rpc

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// gateGoroutines returns a check that fails the test if goroutines leaked
// relative to the call point. Register it with t.Cleanup BEFORE creating
// servers/clients so it runs after their cleanups have torn everything
// down (cleanups run LIFO).
func gateGoroutines(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			now := runtime.NumGoroutine()
			if now <= before+2 { // tolerate runtime/test harness jitter
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d before, %d after\n%s", before, now, buf[:n])
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
}

func TestCodecReadMalformedFrames(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  string // substring of the error
	}{
		{"empty stream", "", "EOF"},
		{"truncated frame no newline", `{"id":1,"method":"pi`, "decoding message"},
		{"garbage json", "not json at all\n", "decoding message"},
		{"binary garbage", "\x00\x01\x02\xff\xfe\n", "decoding message"},
		{"half object", `{"id":1,` + "\n", "decoding message"},
		{"wrong json type", `[1,2,3]` + "\n", "decoding message"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := &codec{r: bufio.NewReader(strings.NewReader(tc.input)), w: bufio.NewWriter(io.Discard)}
			var req Request
			err := c.read(&req)
			if err == nil {
				t.Fatal("malformed frame must error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// repeatReader yields b forever — an oversized line without allocating it.
type repeatReader struct{ b []byte }

func (r *repeatReader) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		n += copy(p[n:], r.b)
	}
	return n, nil
}

func TestCodecReadOversizedLine(t *testing.T) {
	c := &codec{r: bufio.NewReader(&repeatReader{b: []byte("xxxxxxxxxxxxxxxx")}), w: bufio.NewWriter(io.Discard)}
	var req Request
	err := c.read(&req)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized line error = %v", err)
	}
}

func FuzzCodecRead(f *testing.F) {
	f.Add([]byte(`{"id":1,"method":"ping"}` + "\n"))
	f.Add([]byte(`{"id":9,"error":"x"}` + "\n"))
	f.Add([]byte("\n"))
	f.Add([]byte{0x00, 0xff, '\n'})
	f.Add([]byte(`{"id":1` + "\n" + `}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c := &codec{r: bufio.NewReader(bytes.NewReader(data)), w: bufio.NewWriter(io.Discard)}
		var req Request
		// Must never panic; errors are fine.
		_ = c.read(&req)
	})
}

// scriptedServer accepts connections and hands each to script.
func scriptedServer(t *testing.T, script func(conn net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				script(conn)
			}()
		}
	}()
	return ln.Addr().String()
}

func testOpts() Options {
	return Options{
		DialTimeout:      2 * time.Second,
		CallTimeout:      time.Second,
		MaxRetries:       -1, // no automatic retries unless a test wants them
		BackoffBase:      5 * time.Millisecond,
		BackoffMax:       50 * time.Millisecond,
		BreakerThreshold: 100,
		BreakerCooldown:  50 * time.Millisecond,
		Seed:             1,
	}
}

func TestClientDrainsStaleResponses(t *testing.T) {
	check := gateGoroutines(t)
	t.Cleanup(check)
	addr := scriptedServer(t, func(conn net.Conn) {
		c := newCodec(conn)
		for {
			var req Request
			if err := c.read(&req); err != nil {
				return
			}
			// A response abandoned by a previous (timed-out) call arrives
			// first; the real answer follows. The client must drain.
			if req.ID > 1 {
				c.write(&Response{ID: req.ID - 1, Result: []byte(`{"value":false}`)})
			}
			c.write(&Response{ID: req.ID, Result: []byte(`{"value":true}`)})
		}
	})
	c, err := DialOptions(addr, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if err := c.Ping(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestClientReconnectsAfterFutureIDDesync(t *testing.T) {
	check := gateGoroutines(t)
	t.Cleanup(check)
	var first atomic.Bool
	first.Store(true)
	addr := scriptedServer(t, func(conn net.Conn) {
		c := newCodec(conn)
		for {
			var req Request
			if err := c.read(&req); err != nil {
				return
			}
			if first.CompareAndSwap(true, false) {
				// A from-the-future ID is unrecoverable on this stream.
				c.write(&Response{ID: req.ID + 100, Result: []byte(`{"value":true}`)})
				continue
			}
			c.write(&Response{ID: req.ID, Result: []byte(`{"value":true}`)})
		}
	})
	c, err := DialOptions(addr, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Ping()
	if err == nil || !strings.Contains(err.Error(), "desynced") {
		t.Fatalf("desync error = %v", err)
	}
	// The poisoned stream was torn down: the next call reconnects cleanly.
	if err := c.Ping(); err != nil {
		t.Fatalf("call after desync: %v", err)
	}
}

func TestClientSurvivesGarbageResponse(t *testing.T) {
	check := gateGoroutines(t)
	t.Cleanup(check)
	var n atomic.Int32
	addr := scriptedServer(t, func(conn net.Conn) {
		c := newCodec(conn)
		for {
			var req Request
			if err := c.read(&req); err != nil {
				return
			}
			if n.Add(1) == 1 {
				conn.Write([]byte("%%% this is not json %%%\n"))
				continue
			}
			c.write(&Response{ID: req.ID, Result: []byte(`{"value":true}`)})
		}
	})
	opts := testOpts()
	opts.MaxRetries = 2 // Ping is idempotent: the retry must recover
	c, err := DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping through garbage response = %v", err)
	}
}
