package controlplane

import (
	"testing"

	"flymon/internal/packet"
	"flymon/internal/trace"
)

// Per-algorithm property test for the sharded execution mode: deploy every
// installable algorithm on a sharded controller and on a plain one, replay
// the same trace (sequentially on the plain controller — the ApplySeq
// ground truth — and through the sharded worker pool on the other), then
// compare.
//
// Where the algorithm's updates are exactly mergeable and deterministic,
// the drained register state must be bit-identical to the sequential
// replay — the merge-equivalence acceptance criterion. Algorithms whose
// rules consume the result bus (SuMax's min chain, Counter Braids'
// PrevResult key, max-interval's old-timestamp subtraction) must compile
// to zero sharded rules: the engine's safety is the fallback verdict
// itself, and their parallel execution is interleaving-dependent by
// nature, so only the verdict — not bit equality — is asserted.

type algCase struct {
	name string
	spec TaskSpec
	// sharded: the compiled snapshot must route at least one rule to lanes
	// (false: must route none — the conservative fallback).
	sharded bool
	// exact: drained sharded state must equal the sequential replay
	// bit-for-bit.
	exact bool
}

func shardAlgCases() []algCase {
	key := packet.KeyFiveTuple
	return []algCase{
		{"cms", TaskSpec{Name: "cms", Key: key, Attribute: AttrFrequency,
			MemBuckets: 4096, D: 3}, true, true},
		{"mrac", TaskSpec{Name: "mrac", Key: key, Attribute: AttrFrequency,
			Algorithm: AlgMRAC, MemBuckets: 4096}, true, true},
		{"bloom", TaskSpec{Name: "bloom", Attribute: AttrExistence,
			Param: ParamSpec{Kind: ParamFlowKey, Key: key}, MemBuckets: 2048, D: 3}, true, true},
		{"linearcounting", TaskSpec{Name: "lc", Attribute: AttrDistinct,
			Algorithm: AlgLinearCounting, Param: ParamSpec{Kind: ParamFlowKey, Key: key},
			MemBuckets: 2048}, true, true},
		{"hll", TaskSpec{Name: "hll", Attribute: AttrDistinct,
			Param: ParamSpec{Kind: ParamFlowKey, Key: key}, MemBuckets: 1024}, true, true},
		{"beaucoup", TaskSpec{Name: "bc", Key: packet.KeyDstIP, Attribute: AttrDistinct,
			Param: ParamSpec{Kind: ParamFlowKey, Key: packet.KeySrcIP},
			Threshold: 16, MemBuckets: 2048, D: 2}, true, true},
		{"sumaxmax", TaskSpec{Name: "smm", Key: key, Attribute: AttrMax,
			Param: ParamSpec{Kind: ParamQueueLength}, MemBuckets: 4096, D: 3}, true, true},
		// Tower's per-level saturation thresholds sit below the register
		// mask — a real global-state condition — so it must fall back; its
		// uniform increments still make the CAS path order-independent.
		{"tower", TaskSpec{Name: "tower", Key: key, Attribute: AttrFrequency,
			Algorithm: AlgTower, MemBuckets: 4096, D: 3}, false, true},
		// Result-bus consumers: fallback verdict only.
		{"sumaxsum", TaskSpec{Name: "sms", Key: key, Attribute: AttrFrequency,
			Algorithm: AlgSuMaxSum, MemBuckets: 4096, D: 3}, false, false},
		{"counterbraids", TaskSpec{Name: "cb", Key: key, Attribute: AttrFrequency,
			Algorithm: AlgCounterBraids, MemBuckets: 4096}, false, false},
		{"maxinterval", TaskSpec{Name: "mi", Key: key, Attribute: AttrMax,
			Param: ParamSpec{Kind: ParamPacketInterval}, MemBuckets: 2048}, false, false},
	}
}

func TestShardedAlgorithmEquivalence(t *testing.T) {
	const workers = 4
	tr := trace.Generate(trace.Config{Flows: 800, Packets: 30_000, Seed: 17, ZipfS: 1.3})
	for _, c := range shardAlgCases() {
		t.Run(c.name, func(t *testing.T) {
			cfg := Config{Groups: 3, Buckets: 8192, BitWidth: 32}
			seq := NewController(cfg)
			cfg.ShardedState, cfg.Workers = true, workers
			sh := NewController(cfg)
			defer seq.Close()
			defer sh.Close()

			seqTask, err := seq.AddTask(c.spec)
			if err != nil {
				t.Fatalf("sequential deploy: %v", err)
			}
			shTask, err := sh.AddTask(c.spec)
			if err != nil {
				t.Fatalf("sharded deploy: %v", err)
			}

			stats := sh.ShardStats()
			if c.sharded && stats.ShardedRules == 0 {
				t.Fatalf("expected sharded rules, got verdicts (%d, %d)",
					stats.ShardedRules, stats.FallbackRules)
			}
			if !c.sharded && stats.ShardedRules != 0 {
				t.Fatalf("expected full fallback, got %d sharded rules", stats.ShardedRules)
			}
			if stats.Workers != workers {
				t.Fatalf("ShardStats.Workers = %d, want %d", stats.Workers, workers)
			}

			seq.ProcessBatch(tr.Packets)
			// Split the sharded replay into batches with a query in the
			// middle: the drain-then-continue path must stay exact.
			half := len(tr.Packets) / 2
			sh.ProcessParallel(tr.Packets[:half], workers)
			if _, err := sh.ReadRegisters(shTask.ID); err != nil {
				t.Fatalf("mid-run readout: %v", err)
			}
			sh.ProcessParallel(tr.Packets[half:], workers)

			got, err := sh.ReadRegisters(shTask.ID)
			if err != nil {
				t.Fatal(err)
			}
			want, err := seq.ReadRegisters(seqTask.ID)
			if err != nil {
				t.Fatal(err)
			}
			if !c.exact {
				// Interleaving-dependent algorithms: just confirm both
				// replays produced state and queries work.
				if len(got) != len(want) {
					t.Fatalf("row count %d != %d", len(got), len(want))
				}
				return
			}
			if len(got) != len(want) {
				t.Fatalf("row count %d != %d", len(got), len(want))
			}
			for r := range want {
				for i := range want[r] {
					if got[r][i] != want[r][i] {
						t.Fatalf("row %d bucket %d: sharded %d, sequential %d",
							r, i, got[r][i], want[r][i])
					}
				}
			}
		})
	}
}

// TestShardedQueryEquivalence drives the high-level query surface (the
// analysis paths operators actually use) on both modes and compares
// numeric results for the exactly-mergeable algorithms.
func TestShardedQueryEquivalence(t *testing.T) {
	const workers = 4
	tr := trace.Generate(trace.Config{Flows: 500, Packets: 20_000, Seed: 29, ZipfS: 1.3})
	cfg := Config{Groups: 2, Buckets: 8192, BitWidth: 32}
	seq := NewController(cfg)
	cfg.ShardedState, cfg.Workers = true, workers
	sh := NewController(cfg)
	defer seq.Close()
	defer sh.Close()

	freq := TaskSpec{Name: "hh", Key: packet.KeyFiveTuple, Attribute: AttrFrequency,
		MemBuckets: 8192, D: 3}
	card := TaskSpec{Name: "card", Attribute: AttrDistinct,
		Param: ParamSpec{Kind: ParamFlowKey, Key: packet.KeyFiveTuple}, MemBuckets: 1024}
	var ids [2][2]int // [controller][task]
	for ci, ctrl := range []*Controller{seq, sh} {
		for ti, spec := range []TaskSpec{freq, card} {
			task, err := ctrl.AddTask(spec)
			if err != nil {
				t.Fatal(err)
			}
			ids[ci][ti] = task.ID
		}
	}
	seq.ProcessBatch(tr.Packets)
	sh.ProcessParallel(tr.Packets, workers)

	k := packet.KeyFiveTuple.Extract(&tr.Packets[0])
	seqEst, err := seq.EstimateKey(ids[0][0], k)
	if err != nil {
		t.Fatal(err)
	}
	shEst, err := sh.EstimateKey(ids[1][0], k)
	if err != nil {
		t.Fatal(err)
	}
	if seqEst != shEst {
		t.Fatalf("EstimateKey: sharded %v, sequential %v", shEst, seqEst)
	}
	seqCard, err := seq.Cardinality(ids[0][1])
	if err != nil {
		t.Fatal(err)
	}
	shCard, err := sh.Cardinality(ids[1][1])
	if err != nil {
		t.Fatal(err)
	}
	if seqCard != shCard {
		t.Fatalf("Cardinality: sharded %v, sequential %v", shCard, seqCard)
	}
	// The drain counters must show the query path actually folded lanes.
	stats := sh.ShardStats()
	if stats.Drains == 0 {
		t.Fatalf("no drains recorded after queries: %+v", stats)
	}
}

// TestShardedMutationsDrainLanes exercises the mutation paths that clear or
// move register memory under sharded mode: resize reads complete merged
// state, removal and reset must not resurrect stale lane values.
func TestShardedMutationsDrainLanes(t *testing.T) {
	const workers = 4
	tr := trace.Generate(trace.Config{Flows: 300, Packets: 10_000, Seed: 31})
	cfg := Config{Groups: 2, Buckets: 8192, BitWidth: 32, ShardedState: true, Workers: workers}
	c := NewController(cfg)
	defer c.Close()
	task, err := c.AddTask(TaskSpec{Name: "t", Key: packet.KeyFiveTuple,
		Attribute: AttrFrequency, MemBuckets: 4096, D: 3})
	if err != nil {
		t.Fatal(err)
	}
	c.ProcessParallel(tr.Packets, workers)

	// Resize must return the complete (drained) old state: its total count
	// equals the packets each row absorbed.
	old, err := c.ResizeTask(task.ID, 2048)
	if err != nil {
		t.Fatal(err)
	}
	for r := range old {
		var sum uint64
		for _, v := range old[r] {
			sum += uint64(v)
		}
		if sum != uint64(len(tr.Packets)) {
			t.Fatalf("row %d pre-resize sum %d, want %d (drain incomplete)", r, sum, len(tr.Packets))
		}
	}

	// After the resize the fresh deployment starts at zero even though the
	// old lanes were written — stale lane state must not leak in.
	got, err := c.ReadRegisters(task.ID)
	if err != nil {
		t.Fatal(err)
	}
	for r := range got {
		for i, v := range got[r] {
			if v != 0 {
				t.Fatalf("row %d bucket %d = %d after resize, want 0", r, i, v)
			}
		}
	}

	// Write lanes again, reset, and confirm a following drain folds nothing
	// back into the cleared partition.
	c.ProcessParallel(tr.Packets, workers)
	if err := c.ResetTaskCounters(task.ID); err != nil {
		t.Fatal(err)
	}
	got, err = c.ReadRegisters(task.ID)
	if err != nil {
		t.Fatal(err)
	}
	for r := range got {
		for i, v := range got[r] {
			if v != 0 {
				t.Fatalf("row %d bucket %d = %d after reset, want 0 (lane resurrected)", r, i, v)
			}
		}
	}
}
