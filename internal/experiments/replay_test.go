package experiments

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"flymon/internal/trace"
)

func writeReplayTrace(t *testing.T, packets int, seed int64) string {
	t.Helper()
	tr := trace.Generate(trace.Config{Flows: 200, Packets: packets, Seed: seed})
	path := filepath.Join(t.TempDir(), "replay-"+strconv.FormatInt(seed, 10)+".fmt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTrace(tr); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReplayEnginesEquivalent runs every ingestion engine over the same
// trace with Verify on: each engine's register readouts must be
// bit-identical to the sequential ProcessBatch replay. This is the
// end-to-end acceptance check for the zero-copy path.
func TestReplayEnginesEquivalent(t *testing.T) {
	path := writeReplayTrace(t, 30_000, 41)
	for _, tc := range []struct {
		name    string
		engine  ReplayEngine
		sharded bool
	}{
		{"mmap", EngineMmap, false},
		{"mmap-sharded", EngineMmap, true},
		{"frames", EngineFrames, false},
		{"frames-sharded", EngineFrames, true},
		{"reader", EngineReader, false},
		{"readbatch", EngineReadBatch, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tbl, err := Replay(ReplayOptions{
				Paths:   []string{path},
				Engine:  tc.engine,
				Workers: 2,
				Sharded: tc.sharded,
				Tasks:   3,
				Verify:  true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) != 1 || tbl.Rows[0][1] != "30000" {
				t.Fatalf("replay table reports %v, want 30000 packets", tbl.Rows)
			}
		})
	}
}

// TestReplayMultiTraceAndLoop covers the multi-producer path (two files on
// one ring) and the steady-state loop mode's deadline handling.
func TestReplayMultiTraceAndLoop(t *testing.T) {
	a := writeReplayTrace(t, 10_000, 42)
	b := writeReplayTrace(t, 5_000, 43)
	tbl, err := Replay(ReplayOptions{
		Paths: []string{a, b}, Workers: 2, Tasks: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows[0][1] != "15000" {
		t.Fatalf("multi-trace replay delivered %s packets, want 15000", tbl.Rows[0][1])
	}

	start := time.Now()
	tbl, err = Replay(ReplayOptions{
		Paths: []string{a}, Workers: 2, Tasks: 0, Loop: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 150*time.Millisecond {
		t.Fatal("loop mode returned before its deadline")
	}
	n, err := strconv.Atoi(tbl.Rows[0][1])
	if err != nil || n < 10_000 {
		t.Fatalf("loop mode replayed %s packets, want at least one full pass", tbl.Rows[0][1])
	}
}

func TestReplayRejectsBadInput(t *testing.T) {
	if _, err := Replay(ReplayOptions{}); err == nil {
		t.Fatal("no paths accepted")
	}
	if _, err := Replay(ReplayOptions{Paths: []string{"nope.fmt"}, Tasks: 0}); err == nil {
		t.Fatal("missing file accepted")
	}
	path := writeReplayTrace(t, 100, 44)
	if _, err := Replay(ReplayOptions{Paths: []string{path}, Engine: "warp", Tasks: 0}); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, err := Replay(ReplayOptions{Paths: []string{path}, Tasks: 0, Loop: time.Millisecond, Verify: true}); err == nil {
		t.Fatal("loop+verify accepted; pass counts are not reproducible")
	}
}
