package netwide

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"flymon/internal/controlplane"
	"flymon/internal/core/algorithms"
	"flymon/internal/epoch"
	"flymon/internal/packet"
	"flymon/internal/rpc"
	"flymon/internal/telemetry"
	"flymon/internal/tracing"
)

// Epoch-coherent fleet readouts: "everyone's state for epoch E".
//
// A live fleet query merges registers captured at slightly different
// instants — each switch keeps counting while the fan-out is in flight,
// so the merged answer corresponds to no single cut of the traffic. The
// epoch plane fixes that: every switch runs the same epoch.Rotator
// (freeze-and-divert double buffering), the fleet controller decrees
// rotations with an explicit target epoch (idempotent, so retries and
// catch-ups converge), and queries read the per-epoch register snapshots
// the daemons froze — the merge tree then combines only same-epoch rows.
// A switch that missed a rotation is a STRAGGLER: reachable, healthy,
// but behind. The straggler policy decides what a query does about it.

// StragglerPolicy selects how an epoch query treats a reachable switch
// that has not completed the requested epoch.
type StragglerPolicy int

const (
	// StragglerWait polls behind switches until the wait bound; if any is
	// still behind at the bound, the query FAILS (coherent or nothing).
	StragglerWait StragglerPolicy = iota
	// StragglerSkip merges immediately without behind switches (k-of-n).
	StragglerSkip
	// StragglerPartial polls like Wait, but a switch still behind at the
	// bound is dropped from the merge and reported instead of failing the
	// query.
	StragglerPartial
)

func (p StragglerPolicy) String() string {
	switch p {
	case StragglerWait:
		return "wait"
	case StragglerSkip:
		return "skip"
	case StragglerPartial:
		return "partial"
	default:
		return fmt.Sprintf("StragglerPolicy(%d)", int(p))
	}
}

// ParseStragglerPolicy resolves a CLI-facing policy name.
func ParseStragglerPolicy(s string) (StragglerPolicy, error) {
	switch s {
	case "wait", "":
		return StragglerWait, nil
	case "skip":
		return StragglerSkip, nil
	case "partial":
		return StragglerPartial, nil
	default:
		return 0, fmt.Errorf("netwide: unknown straggler policy %q (want wait|skip|partial)", s)
	}
}

// DefaultEpochWait bounds straggler polling when EpochQuery.Wait is zero.
const DefaultEpochWait = 2 * time.Second

// EpochQuery parameterizes one epoch-coherent readout.
type EpochQuery struct {
	// Policy is the straggler policy (default wait).
	Policy StragglerPolicy
	// Wait bounds straggler polling for the wait/partial policies
	// (default DefaultEpochWait).
	Wait time.Duration
	// Op is the merge operation (default add).
	Op MergeOp
}

func (q EpochQuery) withDefaults() EpochQuery {
	if q.Wait <= 0 {
		q.Wait = DefaultEpochWait
	}
	return q
}

// fleetEpoch is the controller-side handle of one fleet-wide epoch task:
// the mirror rotator (kept in lockstep with every daemon's) plus the
// spec. Epoch tasks live outside taskIDs/specs deliberately — the
// reconciler must never treat a daemon's rotating #k copies as drift.
type fleetEpoch struct {
	rot  *epoch.Rotator
	spec controlplane.TaskSpec
}

// stragglerError marks "reachable but behind" inside a fan-out, so the
// report can separate stragglers from failures.
type stragglerError struct {
	want, have int
}

func (e *stragglerError) Error() string {
	return fmt.Sprintf("netwide: straggler: wants epoch %d, has %d", e.want, e.have)
}

// StragglerEpoch reports whether err classifies a switch as a straggler
// (reachable but behind the requested epoch) and, if so, the epoch it has
// completed — the hook CLI callers of FetchEpochRows use to render
// "behind @ E" instead of a failure.
func StragglerEpoch(err error) (int, bool) {
	var se *stragglerError
	if errors.As(err, &se) {
		return se.have, true
	}
	return -1, false
}

// DeployEpoch installs an epoch task (a rotator) on every daemon and on
// the mirror, all-or-nothing with rollback like Deploy. The task's name
// must be unused by both planes.
func (f *RemoteFleet) DeployEpoch(spec controlplane.TaskSpec) (err error) {
	root := f.startRoot("epoch_deploy", spec.Name)
	defer func() { root.Finish(err) }()
	f.mu.Lock()
	if _, ok := f.taskIDs[spec.Name]; ok {
		f.mu.Unlock()
		return fmt.Errorf("netwide: task %q already deployed", spec.Name)
	}
	if _, ok := f.epochs[spec.Name]; ok {
		f.mu.Unlock()
		return fmt.Errorf("netwide: epoch task %q already deployed", spec.Name)
	}
	rot, err := epoch.NewRotator(f.mirror, spec)
	if err != nil {
		f.mu.Unlock()
		return fmt.Errorf("netwide: mirror epoch deploy of %q: %w", spec.Name, err)
	}
	f.mu.Unlock()

	var dmu sync.Mutex
	deployed := make(map[int]bool)
	var diverged error
	errs := f.fanOut(root.Context(), func(i int, c *rpc.Client, sc tracing.SpanContext) error {
		et, err := c.EpochDeploy(spec, sc)
		if err != nil {
			return fmt.Errorf("netwide: epoch deploy of %q on daemon %d: %w", spec.Name, i, err)
		}
		dmu.Lock()
		deployed[i] = true
		if et.Task.ID != rot.ActiveID() && diverged == nil {
			diverged = fmt.Errorf("netwide: daemon %d assigned epoch task ID %d, mirror expected %d — configurations diverged",
				i, et.Task.ID, rot.ActiveID())
		}
		dmu.Unlock()
		return nil
	})
	dmu.Lock()
	defer dmu.Unlock()
	if len(errs) > 0 || diverged != nil {
		var wg sync.WaitGroup
		for i := range deployed {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_ = f.clients[i].EpochRemove(spec.Name)
			}(i)
		}
		wg.Wait()
		_ = rot.Close()
		if diverged != nil {
			return diverged
		}
		for _, i := range sortedKeys(errs) {
			return errs[i]
		}
	}
	f.mu.Lock()
	f.epochs[spec.Name] = &fleetEpoch{rot: rot, spec: spec}
	f.mu.Unlock()
	f.journal("epoch_deploy", rot.ActiveID(), spec.Name, nil)
	return nil
}

// RemoveEpochTask reclaims an epoch task everywhere. Like Remove, a
// partial failure keeps the handle so a retry only needs the stragglers
// ("no epoch task" answers are treated as already removed).
func (f *RemoteFleet) RemoveEpochTask(name string) (err error) {
	root := f.startRoot("epoch_remove", name)
	defer func() { root.Finish(err) }()
	f.mu.Lock()
	et := f.epochs[name]
	f.mu.Unlock()
	if et == nil {
		return fmt.Errorf("netwide: no epoch task %q", name)
	}
	errs := f.fanOut(root.Context(), func(i int, c *rpc.Client, sc tracing.SpanContext) error {
		err := c.EpochRemove(name, sc)
		if err != nil && rpc.IsNoEpochTask(err) {
			return nil
		}
		return err
	})
	if len(errs) > 0 {
		return &PartialFailureError{Op: "epoch_remove", Task: name, Failed: errs, Total: len(f.clients)}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.epochs, name)
	return et.rot.Close()
}

// EpochOf returns the fleet's current completed epoch for an epoch task
// (the mirror's rotation count — the epoch queries default to).
func (f *RemoteFleet) EpochOf(name string) (int, error) {
	f.mu.Lock()
	et := f.epochs[name]
	f.mu.Unlock()
	if et == nil {
		return 0, fmt.Errorf("netwide: no epoch task %q", name)
	}
	f.epochMu.Lock()
	defer f.epochMu.Unlock()
	return et.rot.Epoch(), nil
}

// RotateEpoch ends the current epoch fleet-wide: the mirror rotates
// first (establishing the new target epoch), then every daemon is told
// to advance to that explicit target. The daemon-side advance is
// idempotent, so transport failures are retried once, and a switch that
// misses this rotation entirely catches up — snapshotting the epochs it
// missed — on the next one. Failed switches become stragglers for
// queries in the meantime; with AllowPartial unset they also fail this
// call (the rotation itself, and the mirror, remain advanced either
// way — rotation is a decree, not a transaction).
func (f *RemoteFleet) RotateEpoch(name string) (target int, err error) {
	root := f.startRoot("epoch_rotate", name)
	defer func() { root.Finish(err) }()
	f.mu.Lock()
	et := f.epochs[name]
	f.mu.Unlock()
	if et == nil {
		return 0, fmt.Errorf("netwide: no epoch task %q", name)
	}
	f.epochMu.Lock()
	defer f.epochMu.Unlock()
	if _, err := et.rot.Rotate(); err != nil {
		return 0, fmt.Errorf("netwide: mirror rotate of %q: %w", name, err)
	}
	target = et.rot.Epoch()
	root.SetDetail(fmt.Sprintf("%s to epoch %d", name, target))
	errs := f.fanOut(root.Context(), func(i int, c *rpc.Client, sc tracing.SpanContext) error {
		_, err := c.EpochRotate(name, target, sc)
		var te *rpc.TransportError
		if errors.As(err, &te) {
			// Explicit-target rotation is idempotent: one immediate retry
			// covers the applied-but-unacknowledged case.
			_, err = c.EpochRotate(name, target, sc)
		}
		if err != nil {
			return fmt.Errorf("netwide: rotating %q to epoch %d on daemon %d: %w", name, target, i, err)
		}
		return nil
	})
	f.journal("epoch_rotate", 0, fmt.Sprintf("%s to epoch %d (%d/%d switches)",
		name, target, len(f.clients)-len(errs), len(f.clients)), nil)
	if len(errs) > 0 && !f.opts.AllowPartial {
		return target, &PartialFailureError{Op: "epoch_rotate", Task: name, Failed: errs, Total: len(f.clients)}
	}
	return target, nil
}

// pollInterval picks the straggler poll cadence from the wait bound.
func pollInterval(wait time.Duration) time.Duration {
	p := wait / 20
	if p < 5*time.Millisecond {
		p = 5 * time.Millisecond
	}
	if p > 100*time.Millisecond {
		p = 100 * time.Millisecond
	}
	return p
}

// FetchEpochRows reads one daemon's epoch-E snapshot with the straggler
// policy applied locally: a behind daemon is polled until the wait bound
// (wait/partial) or surfaced immediately (skip). It returns the rows and
// the frozen task ID the snapshot came from — the handle key_indices
// needs. This is the mirror-less building block flymonctl query feeds
// into MergeStream.
func FetchEpochRows(c *rpc.Client, name string, epochN int, q EpochQuery, parent ...tracing.SpanContext) ([][]uint32, int, error) {
	q = q.withDefaults()
	var sc tracing.SpanContext
	if len(parent) > 0 {
		sc = parent[0]
	}
	res, err := pollEpoch(c, name, epochN, q, nil, nil, c.Tracer(), sc)
	if err != nil {
		return nil, 0, err
	}
	return res.FrameRows(nil), res.FrozenID, nil
}

// pollEpoch is the per-switch epoch fetch: read, classify, and — under
// the wait/partial policies — poll while the daemon is behind. stats
// (when set) receives the straggler outcome counters. tr + parent (when
// both live) record the straggler decision: a "straggler_wait" span
// covering the whole poll (error = still behind at the bound) or an
// instant "straggler_skip" span under the skip policy.
func pollEpoch(c *rpc.Client, name string, epochN int, q EpochQuery, stats statsSink, clock func() time.Time, tr *tracing.Tracer, parent tracing.SpanContext) (rpc.EpochRegistersResult, error) {
	if clock == nil {
		clock = time.Now
	}
	start := clock()
	deadline := start.Add(q.Wait)
	poll := pollInterval(q.Wait)
	polled := false
	var waitSp *tracing.ActiveSpan
	for {
		res, err := c.ReadEpoch(name, epochN, parent)
		if err == nil {
			if polled {
				if stats != nil {
					stats.stragglerCaughtUp(clock().Sub(start))
				}
				waitSp.SetDetail(fmt.Sprintf("epoch=%d caught up", epochN))
				waitSp.Finish(nil)
			}
			return res, nil
		}
		if !rpc.IsEpochUnavailable(err) {
			waitSp.Finish(err)
			return rpc.EpochRegistersResult{}, err
		}
		have := rpc.EpochUnavailableHave(err)
		if have > epochN {
			// Not behind — ahead: the snapshot was already evicted by
			// retention. Waiting cannot bring it back.
			err = fmt.Errorf("netwide: epoch %d of %q evicted on this daemon (retention window passed): %w", epochN, name, err)
			waitSp.Finish(err)
			return rpc.EpochRegistersResult{}, err
		}
		if q.Policy == StragglerSkip {
			if stats != nil {
				stats.stragglerSkipped()
			}
			serr := &stragglerError{want: epochN, have: have}
			sp := traceSpan(tr, parent, "straggler_skip")
			sp.SetDetail(fmt.Sprintf("want=%d have=%d", epochN, have))
			sp.Finish(serr)
			return rpc.EpochRegistersResult{}, serr
		}
		if !clock().Before(deadline) {
			if stats != nil {
				stats.stragglerTimedOut(clock().Sub(start))
			}
			serr := &stragglerError{want: epochN, have: have}
			waitSp.SetDetail(fmt.Sprintf("want=%d have=%d", epochN, have))
			waitSp.Finish(serr)
			return rpc.EpochRegistersResult{}, serr
		}
		if waitSp == nil {
			waitSp = traceSpan(tr, parent, "straggler_wait")
		}
		polled = true
		time.Sleep(poll)
	}
}

// statsSink decouples pollEpoch from telemetry so the CLI path can run
// uninstrumented.
type statsSink interface {
	stragglerCaughtUp(waited time.Duration)
	stragglerSkipped()
	stragglerTimedOut(waited time.Duration)
}

// mergeTreeSink adapts telemetry.MergeTreeStats to statsSink.
type mergeTreeSink struct{ st *telemetry.MergeTreeStats }

func (s mergeTreeSink) stragglerCaughtUp(waited time.Duration) {
	s.st.StragglerWaits.Add(1)
	s.st.StragglerWait.Observe(waited)
}

func (s mergeTreeSink) stragglerSkipped() { s.st.StragglersSkipped.Add(1) }

func (s mergeTreeSink) stragglerTimedOut(waited time.Duration) {
	s.st.StragglersTimedOut.Add(1)
	s.st.StragglerWait.Observe(waited)
}

// fleetSink wraps the fleet's merge-tree stats as a statsSink (nil-safe:
// a nil stats pointer yields a nil interface, not a typed-nil trap).
func fleetSink(st *telemetry.MergeTreeStats) statsSink {
	if st == nil {
		return nil
	}
	return mergeTreeSink{st}
}

// QueryEpochRows merges the fleet's registers for one completed epoch
// (epochN <= 0 = the fleet's latest) under the straggler policy, through
// the merge tree. The report pins the epoch and separates stragglers
// (reachable, behind) from failures (unreachable); transport failures
// still honor AllowPartial, and under the wait policy any switch still
// behind at the bound fails the whole query.
func (f *RemoteFleet) QueryEpochRows(name string, epochN int, q EpochQuery) (_ [][]uint32, _ QueryReport, err error) {
	q = q.withDefaults()
	f.mu.Lock()
	et := f.epochs[name]
	f.mu.Unlock()
	var report QueryReport
	if et == nil {
		return nil, report, fmt.Errorf("netwide: no epoch task %q", name)
	}
	if epochN <= 0 {
		f.epochMu.Lock()
		epochN = et.rot.Epoch()
		f.epochMu.Unlock()
	}
	if epochN == 0 {
		return nil, report, fmt.Errorf("netwide: epoch task %q has no completed epoch yet (rotate first)", name)
	}
	root := f.startRoot("epoch_query", fmt.Sprintf("%s epoch=%d policy=%s", name, epochN, q.Policy))
	defer func() { root.Finish(err) }()
	report.Epoch = epochN
	st := f.mergeStats()
	if st != nil {
		st.EpochQueries.Add(1)
	}
	// The fan-out deadline must leave room for straggler polling on top
	// of the usual per-op budget.
	timeout := f.opts.OpTimeout
	if timeout > 0 && q.Policy != StragglerSkip {
		timeout += q.Wait
	}
	stream := f.fanOutRows(root.Context(), timeout, func(i int, c *rpc.Client, sc tracing.SpanContext) ([][]uint32, error) {
		res, err := pollEpoch(c, name, epochN, q, fleetSink(st), nil, f.opts.Tracer, sc)
		if err != nil {
			return nil, err
		}
		if res.Epoch != epochN {
			return nil, fmt.Errorf("netwide: daemon %d answered epoch %d for requested epoch %d", i, res.Epoch, epochN)
		}
		return res.FrameRows(f.getRowBuf()), nil
	})
	errs := make(map[int]error)
	leaves := make(chan Leaf, len(f.clients))
	go func() {
		defer close(leaves)
		for r := range stream {
			if r.err != nil {
				errs[r.i] = r.err
				continue
			}
			leaves <- Leaf{Switch: r.i, Rows: r.rows}
		}
	}()
	res, mergeErr := MergeStream(leaves, q.Op, TreeOptions{
		Task:    name,
		Arity:   f.opts.MergeArity,
		Stats:   st,
		Recycle: f.putRowBuf,
		Tracer:  f.opts.Tracer,
		Parent:  root.Context(),
	})
	report.Contributed = res.Contributed
	report.Failed = make(map[int]string)
	report.Stragglers = make(map[int]int)
	var stragglerErrs []int
	for i, err := range errs {
		var se *stragglerError
		if errors.As(err, &se) {
			report.Stragglers[i] = se.have
			stragglerErrs = append(stragglerErrs, i)
			continue
		}
		report.Failed[i] = err.Error()
	}
	if mergeErr != nil {
		return nil, report, mergeErr
	}
	if q.Policy == StragglerWait && len(stragglerErrs) > 0 {
		failed := make(map[int]error, len(stragglerErrs))
		for _, i := range stragglerErrs {
			failed[i] = errs[i]
		}
		return nil, report, &PartialFailureError{Op: "read_epoch", Task: name, Failed: failed, Total: len(f.clients)}
	}
	if len(report.Failed) > 0 && !f.opts.AllowPartial {
		for _, i := range sortedKeys(errs) {
			if _, isStraggler := report.Stragglers[i]; !isStraggler {
				return nil, report, errs[i]
			}
		}
	}
	if res.Rows == nil {
		return nil, report, &PartialFailureError{Op: "read_epoch", Task: name, Failed: errs, Total: len(f.clients)}
	}
	if report.Partial() && f.opts.Telemetry != nil {
		f.opts.Telemetry.PartialMerges.Add(1)
	}
	return res.Rows, report, nil
}

// EstimateKeyEpoch is EstimateKeyPartial pinned to an epoch boundary:
// the fleet-wide frequency of key k in exactly epoch E's traffic. Only
// the latest completed epoch can be estimated through the mirror (older
// frozen copies are reclaimed two rotations later; flymonctl query
// covers the retention window via the daemons' key_indices).
func (f *RemoteFleet) EstimateKeyEpoch(name string, epochN int, k packet.CanonicalKey, q EpochQuery) (uint64, QueryReport, error) {
	f.mu.Lock()
	et := f.epochs[name]
	f.mu.Unlock()
	if et == nil {
		return 0, QueryReport{}, fmt.Errorf("netwide: no epoch task %q", name)
	}
	f.epochMu.Lock()
	current := et.rot.Epoch()
	frozenID := et.rot.FrozenID()
	f.epochMu.Unlock()
	if epochN <= 0 {
		epochN = current
	}
	if epochN != current {
		return 0, QueryReport{}, fmt.Errorf("netwide: epoch %d of %q is no longer index-mapped by the mirror (current epoch %d)", epochN, name, current)
	}
	q.Op = MergeAdd
	merged, report, err := f.QueryEpochRows(name, epochN, q)
	if err != nil {
		return 0, report, err
	}
	h, err := f.mirror.TaskHandle(frozenID)
	if err != nil {
		return 0, report, err
	}
	cms, ok := h.(*algorithms.CMSTask)
	if !ok {
		return 0, report, fmt.Errorf("netwide: epoch task %q is not a counter task", name)
	}
	min := ^uint32(0)
	for i := 0; i < cms.D; i++ {
		idx := cms.RowIndexFor(i, k) - uint32(cms.Rows[i].Base)
		if v := merged[i][idx]; v < min {
			min = v
		}
	}
	return uint64(min), report, nil
}
