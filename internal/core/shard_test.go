package core

import (
	"testing"

	"flymon/internal/dataplane"
	"flymon/internal/packet"
	"flymon/internal/trace"
)

// Tests for the compiled engine's sharded execution mode: compile-time
// routing verdicts, lane-partition equivalence through the worker pool, and
// the zero-alloc contract of the sharded hot path.

func TestShardedRoutingVerdicts(t *testing.T) {
	g := NewGroup(GroupConfig{ID: 0, Buckets: 1024, BitWidth: 32})
	g2 := NewGroup(GroupConfig{ID: 1, Buckets: 1024, BitWidth: 32})
	buildCMS(t, g, 1, 3, 512)
	if err := g2.ConfigureUnit(0, packet.KeyFiveTuple); err != nil {
		t.Fatal(err)
	}
	pl := NewPipelineWith(g, g2)

	// Without lanes nothing can shard.
	sharded, fallback := pl.Compile().ShardedRules()
	if sharded != 0 || fallback != 3 {
		t.Fatalf("unsharded pipeline: verdicts (%d, %d), want (0, 3)", sharded, fallback)
	}

	pl.EnableSharding(4)
	sharded, fallback = pl.Compile().ShardedRules()
	if sharded != 3 || fallback != 0 {
		t.Fatalf("CMS rules are exactly mergeable: verdicts (%d, %d), want (3, 0)", sharded, fallback)
	}

	// One result-bus consumer anywhere pins the whole snapshot to the CAS
	// path — lane-local bus values would be wrong.
	busRule := &Rule{
		TaskID: 2, Filter: packet.MatchAll, Key: FullKey(0),
		P1: Const(1), P2: MaxValue(),
		Mem: MemRange{Base: 512, Buckets: 512}, Op: dataplane.OpMax,
		ChainMin: true,
	}
	if err := g2.CMU(0).InstallRule(busRule); err != nil {
		t.Fatal(err)
	}
	sharded, fallback = pl.Compile().ShardedRules()
	if sharded != 0 || fallback != 4 {
		t.Fatalf("bus consumer present: verdicts (%d, %d), want (0, 4)", sharded, fallback)
	}
}

func TestShardedVerdictPerOpShape(t *testing.T) {
	// Each rule shape's expected verdict, mirroring shardEligible's cases.
	cases := []struct {
		name string
		rule Rule
		want bool
	}{
		{"condadd-at-saturation", Rule{P1: Const(1), P2: MaxValue(), Op: dataplane.OpCondAdd}, true},
		{"condadd-threshold", Rule{P1: Const(1), P2: Const(100), Op: dataplane.OpCondAdd}, false},
		{"condadd-dynamic-p2", Rule{P1: Const(1), P2: PacketSize(), Op: dataplane.OpCondAdd}, false},
		{"max", Rule{P1: PacketSize(), P2: Const(0), Op: dataplane.OpMax}, true},
		{"xor-bitselect", Rule{P1: CompressedKey(FullKey(0)), P2: Const(0), Op: dataplane.OpXor,
			Prep: Transform{Kind: TransformBitSelect, Width: 32}}, true},
		{"andor-or-const", Rule{P1: Const(1), P2: Const(1), Op: dataplane.OpAndOr}, true},
		{"andor-and-branch", Rule{P1: Const(1), P2: Const(0), Op: dataplane.OpAndOr}, false},
		{"andor-coupon", Rule{P1: CompressedKey(FullKey(0)), P2: Const(1), Op: dataplane.OpAndOr,
			Prep: Transform{Kind: TransformCoupon, Coupons: 8, ProbLog2: 1}}, true},
		{"detectnew-producer", Rule{P1: Const(1), P2: Const(1), Op: dataplane.OpAndOr,
			DetectNew: true}, false},
		{"prevresult-consumer", Rule{P1: PrevResult(), P2: MaxValue(), Op: dataplane.OpCondAdd}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := c.rule
			r.TaskID, r.Filter, r.Key = 1, packet.MatchAll, FullKey(0)
			r.Mem = MemRange{Base: 0, Buckets: 1024}
			if got := shardEligible(&r, ^uint32(0)); got != c.want {
				t.Fatalf("shardEligible = %v, want %v", got, c.want)
			}
		})
	}
}

// TestShardedPoolEquivalence runs the same trace through (a) a sequential
// snapshot replay and (b) a sharded worker pool with private lanes, then
// drains and compares every register bucket. CMS counts are exactly
// mergeable, so the states must be bit-identical regardless of how the pool
// partitioned the batch.
func TestShardedPoolEquivalence(t *testing.T) {
	const workers = 4
	build := func() (*Pipeline, *Group) {
		g := NewGroup(GroupConfig{ID: 0, Buckets: 4096, BitWidth: 32})
		buildCMS(t, g, 1, 3, 4096)
		return NewPipelineWith(g), g
	}
	tr := trace.Generate(trace.Config{Flows: 500, Packets: 20_000, Seed: 11})

	seqPl, seqG := build()
	seqPl.Compile().ProcessBatch(tr.Packets)

	shPl, shG := build()
	shPl.EnableSharding(workers)
	snap := shPl.Compile()
	if s, _ := snap.ShardedRules(); s == 0 {
		t.Fatal("no rules sharded; test would not exercise lanes")
	}
	pool := NewShardedWorkerPool(workers)
	defer pool.Close()
	// Several batches, with a drain in the middle: post-drain lane reuse
	// must keep folding exactly.
	third := len(tr.Packets) / 3
	pool.Process(snap, tr.Packets[:third], workers)
	if shPl.DrainShards() == 0 {
		t.Fatal("first drain folded nothing; lanes were not written")
	}
	pool.Process(snap, tr.Packets[third:2*third], workers)
	pool.Process(snap, tr.Packets[2*third:], workers)
	shPl.DrainShards()

	reg, want := shG.CMU(0).Register(), seqG.CMU(0).Register()
	for ci := 0; ci < 3; ci++ {
		got := shG.CMU(ci).Register().ReadRange(0, reg.Size())
		exp := seqG.CMU(ci).Register().ReadRange(0, want.Size())
		for i := range exp {
			if got[i] != exp[i] {
				t.Fatalf("CMU %d bucket %d: sharded %d, sequential %d", ci, i, got[i], exp[i])
			}
		}
	}
}

// TestDrainShardsCursor verifies the pipeline-level drain skips clean
// registers via the dirtiness cursor.
func TestDrainShardsCursor(t *testing.T) {
	g := NewGroup(GroupConfig{ID: 0, Buckets: 256, BitWidth: 32})
	buildCMS(t, g, 1, 1, 256)
	pl := NewPipelineWith(g)
	pl.EnableSharding(2)
	if n := pl.DrainShards(); n != 0 {
		t.Fatalf("drain of a clean pipeline folded %d, want 0", n)
	}
	g.CMU(0).Register().ShardApply(1, dataplane.OpCondAdd, 7, 3, ^uint32(0))
	if n := pl.DrainShards(); n != 1 {
		t.Fatalf("drain folded %d buckets, want 1", n)
	}
	if n := pl.DrainShards(); n != 0 {
		t.Fatalf("re-drain folded %d, want 0 (cursor should skip)", n)
	}
}

// TestShardedProcessZeroAlloc gates the sharded hot path at zero heap
// allocations per packet, same contract as the CAS path.
func TestShardedProcessZeroAlloc(t *testing.T) {
	g := NewGroup(GroupConfig{ID: 0, Buckets: 4096, BitWidth: 32})
	buildCMS(t, g, 1, 3, 4096)
	pl := NewPipelineWith(g)
	pl.EnableSharding(4)
	s := pl.Compile()
	if sh, _ := s.ShardedRules(); sh == 0 {
		t.Fatal("no sharded rules; gate would test the wrong path")
	}
	pc := NewProcCtxUnique()
	pc.Ctx.Shard = 2 // a lane-owning worker's context
	tr := trace.Generate(trace.Config{Flows: 100, Packets: 256, Seed: 5})
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		s.Process(pc, &tr.Packets[i&255])
		i++
	})
	if allocs != 0 {
		t.Fatalf("sharded Snapshot.Process allocates %.1f times per packet, want 0", allocs)
	}
}
