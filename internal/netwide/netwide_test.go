package netwide

import (
	"testing"

	"flymon/internal/controlplane"
	"flymon/internal/metrics"
	"flymon/internal/packet"
	"flymon/internal/sketch"
	"flymon/internal/trace"
)

func fleetConfig() controlplane.Config {
	return controlplane.Config{Groups: 3, Buckets: 65536, BitWidth: 32}
}

func cmsSpec(name string) controlplane.TaskSpec {
	return controlplane.TaskSpec{
		Name: name, Key: packet.KeyFiveTuple,
		Attribute: controlplane.AttrFrequency, MemBuckets: 16384, D: 3,
	}
}

// spread replays tr across the fleet, each packet at one ingress.
func spread(f *Fleet, tr *trace.Trace) {
	for i := range tr.Packets {
		f.Process(i%f.Size(), &tr.Packets[i])
	}
}

func TestFleetMergedCountsEqualSingleSwitch(t *testing.T) {
	// The core merge identity: a fleet's merged estimate must equal a
	// single switch observing the whole stream (same deterministic hash
	// configuration).
	fleet := NewFleet(3, fleetConfig())
	single := NewFleet(1, fleetConfig())
	if err := fleet.Deploy(cmsSpec("freq")); err != nil {
		t.Fatal(err)
	}
	if err := single.Deploy(cmsSpec("freq")); err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(trace.Config{Flows: 2000, Packets: 60_000, Seed: 60})
	spread(fleet, tr)
	spread(single, tr)

	exact := sketch.NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		exact.AddPacket(&tr.Packets[i])
	}
	checked := 0
	for k, truth := range exact.Counts() {
		got, err := fleet.EstimateKey("freq", k)
		if err != nil {
			t.Fatal(err)
		}
		want, err := single.EstimateKey("freq", k)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("merged estimate %d != single-switch estimate %d", got, want)
		}
		if got < truth {
			t.Fatalf("merged estimate %d underestimates truth %d", got, truth)
		}
		checked++
		if checked >= 500 {
			break
		}
	}
}

func TestFleetHeavyHitters(t *testing.T) {
	fleet := NewFleet(4, fleetConfig())
	if err := fleet.Deploy(cmsSpec("hh")); err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(trace.Config{Flows: 4000, Packets: 200_000, ZipfS: 1.3, Seed: 61})
	spread(fleet, tr)

	exact := sketch.NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		exact.AddPacket(&tr.Packets[i])
	}
	const threshold = 1024
	truth := exact.HeavyHitters(threshold)
	if len(truth) == 0 {
		t.Fatal("no heavy hitters in workload")
	}
	cands := make([]packet.CanonicalKey, 0, exact.Flows())
	universe := make(map[packet.CanonicalKey]bool)
	for k := range exact.Counts() {
		cands = append(cands, k)
		universe[k] = true
	}
	reported, err := fleet.HeavyHitters("hh", cands, threshold)
	if err != nil {
		t.Fatal(err)
	}
	if f1 := metrics.Classify(universe, truth, reported).F1(); f1 < 0.95 {
		t.Fatalf("network-wide HH F1 = %.3f", f1)
	}
	// Per-switch views must miss hitters whose traffic is spread: check at
	// least one truth flow is NOT a hitter on switch 0 alone.
	sw0 := fleet.Switch(0)
	ids := fleet.taskIDs["hh"]
	missed := false
	for k := range truth {
		v, err := sw0.EstimateKey(ids[0], k)
		if err != nil {
			t.Fatal(err)
		}
		if v < threshold {
			missed = true
			break
		}
	}
	if !missed {
		t.Fatal("every heavy hitter visible at one switch; workload does not exercise merging")
	}
}

func TestFleetCardinality(t *testing.T) {
	fleet := NewFleet(3, fleetConfig())
	spec := controlplane.TaskSpec{
		Name: "card", Attribute: controlplane.AttrDistinct,
		Param:      controlplane.ParamSpec{Kind: controlplane.ParamFlowKey, Key: packet.KeyFiveTuple},
		MemBuckets: 4096,
	}
	if err := fleet.Deploy(spec); err != nil {
		t.Fatal(err)
	}
	const flows = 30_000
	tr := trace.Generate(trace.Config{Flows: flows, Packets: flows * 2, Seed: 62})
	spread(fleet, tr)
	exact := sketch.NewExactCardinality(packet.KeyFiveTuple)
	for i := range tr.Packets {
		exact.AddPacket(&tr.Packets[i])
	}
	got, err := fleet.Cardinality("card")
	if err != nil {
		t.Fatal(err)
	}
	if re := metrics.RE(float64(exact.Cardinality()), got); re > 0.1 {
		t.Fatalf("network-wide cardinality RE %.3f (est %.0f, truth %d)", re, got, exact.Cardinality())
	}
}

func TestFleetContains(t *testing.T) {
	fleet := NewFleet(2, fleetConfig())
	spec := controlplane.TaskSpec{
		Name: "exists", Attribute: controlplane.AttrExistence,
		Param:      controlplane.ParamSpec{Kind: controlplane.ParamFlowKey, Key: packet.KeyFiveTuple},
		MemBuckets: 16384, D: 3,
	}
	if err := fleet.Deploy(spec); err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(trace.Config{Flows: 1000, Packets: 3000, Seed: 63})
	spread(fleet, tr)
	// Every inserted key must be found network-wide even though each
	// switch saw only half the stream.
	for i := 0; i < 200; i++ {
		k := packet.KeyFiveTuple.Extract(&tr.Packets[i])
		ok, err := fleet.Contains("exists", k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("packet %d's flow missing from merged filter", i)
		}
	}
}

func TestFleetDDoSReported(t *testing.T) {
	fleet := NewFleet(3, fleetConfig())
	const threshold = 384
	spec := controlplane.TaskSpec{
		Name: "ddos", Key: packet.KeyDstIP, Attribute: controlplane.AttrDistinct,
		Param:     controlplane.ParamSpec{Kind: controlplane.ParamFlowKey, Key: packet.KeySrcIP},
		Threshold: threshold, MemBuckets: 16384, D: 3,
	}
	if err := fleet.Deploy(spec); err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(trace.Config{Flows: 2000, Packets: 40_000, Seed: 64})
	victim := packet.IPv4(100, 64, 0, 1)
	tr.InjectDDoS(victim, 4*threshold, 1, 65)
	spread(fleet, tr)

	exact := sketch.NewExactDistinct(packet.KeyDstIP, packet.KeySrcIP)
	for i := range tr.Packets {
		exact.AddPacket(&tr.Packets[i])
	}
	cands := make([]packet.CanonicalKey, 0)
	for k := range exact.Counts() {
		cands = append(cands, k)
	}
	reported, err := fleet.Reported("ddos", cands)
	if err != nil {
		t.Fatal(err)
	}
	vk := packet.KeyDstIP.Extract(&packet.Packet{DstIP: victim})
	if !reported[vk] {
		t.Fatalf("victim (attack spread over 3 ingresses) not reported network-wide")
	}
}

func TestFleetLifecycleErrors(t *testing.T) {
	fleet := NewFleet(2, fleetConfig())
	if err := fleet.Deploy(cmsSpec("x")); err != nil {
		t.Fatal(err)
	}
	if err := fleet.Deploy(cmsSpec("x")); err == nil {
		t.Fatal("duplicate deploy must fail")
	}
	if _, err := fleet.EstimateKey("nope", packet.CanonicalKey{}); err == nil {
		t.Fatal("unknown task must fail")
	}
	if _, err := fleet.Cardinality("x"); err == nil {
		t.Fatal("cardinality on a counter task must fail")
	}
	if err := fleet.Remove("x"); err != nil {
		t.Fatal(err)
	}
	if err := fleet.Remove("x"); err == nil {
		t.Fatal("double remove must fail")
	}
}

func TestFleetDeployRollsBackOnFailure(t *testing.T) {
	// Fill switch 1 so a fleet-wide deploy fails there; switch 0 must be
	// rolled back.
	fleet := NewFleet(2, controlplane.Config{Groups: 1, Buckets: 65536, BitWidth: 32})
	full := controlplane.TaskSpec{
		Name: "hog", Key: packet.KeyFiveTuple, Attribute: controlplane.AttrFrequency,
		MemBuckets: 65536, D: 3,
	}
	if _, err := fleet.Switch(1).AddTask(full); err != nil {
		t.Fatal(err)
	}
	if err := fleet.Deploy(cmsSpec("doomed")); err == nil {
		t.Fatal("deploy must fail on the full switch")
	}
	if n := len(fleet.Switch(0).Tasks()); n != 0 {
		t.Fatalf("switch 0 kept %d tasks after rollback", n)
	}
}
