// Congestion detection (Table 1): Max(QueueLength) per flow with
// FlyMon-SuMax(Max), plus the combinatorial maximum inter-arrival-time
// task (§4) that chains three CMUs across three CMU Groups.
package main

import (
	"fmt"
	"log"
	"sort"

	"flymon/internal/controlplane"
	"flymon/internal/packet"
	"flymon/internal/sketch"
	"flymon/internal/trace"
)

func main() {
	ctrl := controlplane.NewController(controlplane.Config{
		Groups: 4, Buckets: 65536, BitWidth: 32,
	})

	congestion, err := ctrl.AddTask(controlplane.TaskSpec{
		Name: "congestion", Key: packet.KeyIPPair,
		Attribute:  controlplane.AttrMax,
		Param:      controlplane.ParamSpec{Kind: controlplane.ParamQueueLength},
		MemBuckets: 16384, D: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	hol, err := ctrl.AddTask(controlplane.TaskSpec{
		Name: "max-interarrival", Key: packet.KeyFiveTuple,
		Attribute:  controlplane.AttrMax,
		Param:      controlplane.ParamSpec{Kind: controlplane.ParamPacketInterval},
		MemBuckets: 16384,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %s (groups %v) and %s (groups %v)\n",
		congestion.Algorithm, congestion.Groups, hol.Algorithm, hol.Groups)

	tr := trace.Generate(trace.Config{Flows: 4000, Packets: 200_000, Seed: 31})
	exactQ := sketch.NewExactMax(packet.KeyIPPair)
	exactIv := sketch.NewExactMaxInterval(packet.KeyFiveTuple)
	for i := range tr.Packets {
		ctrl.Process(&tr.Packets[i])
		exactQ.Add(&tr.Packets[i], tr.Packets[i].QueueLength)
		exactIv.AddPacket(&tr.Packets[i])
	}

	// Report the 5 most congested IP pairs.
	type entry struct {
		k packet.CanonicalKey
		v uint64
	}
	var worst []entry
	for k, v := range exactQ.Values() {
		worst = append(worst, entry{k, v})
	}
	sort.Slice(worst, func(i, j int) bool { return worst[i].v > worst[j].v })
	fmt.Println("most congested IP pairs (estimate vs truth, queue depth):")
	for i := 0; i < 5 && i < len(worst); i++ {
		est, err := ctrl.EstimateKey(congestion.ID, worst[i].k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  est %3.0f  truth %3d\n", est, worst[i].v)
	}

	// Spot-check the inter-arrival task on the flows with the largest
	// true gaps.
	var gaps []entry
	for k, v := range exactIv.Values() {
		if v > 0 {
			gaps = append(gaps, entry{k, v})
		}
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i].v > gaps[j].v })
	fmt.Println("largest inter-arrival gaps (estimate vs truth, ms):")
	for i := 0; i < 5 && i < len(gaps); i++ {
		est, err := ctrl.EstimateKey(hol.ID, gaps[i].k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  est %8.1f  truth %8.1f\n", est/1000, float64(gaps[i].v)/1e6)
	}
}
