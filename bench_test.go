package flymon

// One benchmark per table and figure of the paper's evaluation (§5), each
// delegating to the shared experiment harness at Small scale, plus
// micro-benchmarks of the per-packet data-plane path. Run the full-scale
// versions with: go run ./cmd/flymon-bench -scale full
import (
	"io"
	"runtime"
	"testing"

	"flymon/internal/controlplane"
	"flymon/internal/core"
	"flymon/internal/core/algorithms"
	"flymon/internal/dataplane"
	"flymon/internal/experiments"
	"flymon/internal/hashing"
	"flymon/internal/netwide"
	"flymon/internal/packet"
	"flymon/internal/sdm"
	"flymon/internal/sketch"
	"flymon/internal/telemetry"
	"flymon/internal/trace"
)

func benchTables(b *testing.B, run func() *experiments.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t := run()
		t.Render(io.Discard)
	}
}

func BenchmarkFig2StaticFootprint(b *testing.B) {
	benchTables(b, experiments.Fig2)
}

func BenchmarkTable3DeploymentDelay(b *testing.B) {
	benchTables(b, experiments.Table3)
}

func BenchmarkFig11AddressTranslation(b *testing.B) {
	benchTables(b, experiments.Fig11)
}

func BenchmarkFig12aForwarding(b *testing.B) {
	benchTables(b, func() *experiments.Table { return experiments.Fig12a(42).Table })
}

func BenchmarkFig12bAccuracyUnderReconfig(b *testing.B) {
	benchTables(b, func() *experiments.Table { return experiments.Fig12b(experiments.Small, 42) })
}

func BenchmarkFig13aOverhead(b *testing.B) {
	benchTables(b, experiments.Fig13a)
}

func BenchmarkFig13bCrossStacking(b *testing.B) {
	benchTables(b, experiments.Fig13b)
}

func BenchmarkFig13cKeyScalability(b *testing.B) {
	benchTables(b, experiments.Fig13c)
}

func BenchmarkFig14aHeavyHitter(b *testing.B) {
	benchTables(b, func() *experiments.Table { return experiments.Fig14a(experiments.Small, 42) })
}

func BenchmarkFig14bProbabilistic(b *testing.B) {
	benchTables(b, func() *experiments.Table { return experiments.Fig14b(experiments.Small, 42) })
}

func BenchmarkFig14cDDoS(b *testing.B) {
	benchTables(b, func() *experiments.Table { return experiments.Fig14c(experiments.Small, 42) })
}

func BenchmarkFig14dCardinality(b *testing.B) {
	benchTables(b, func() *experiments.Table { return experiments.Fig14d(experiments.Small, 42) })
}

func BenchmarkFig14eEntropy(b *testing.B) {
	benchTables(b, func() *experiments.Table { return experiments.Fig14e(experiments.Small, 42) })
}

func BenchmarkFig14fMaxInterval(b *testing.B) {
	benchTables(b, func() *experiments.Table { return experiments.Fig14f(experiments.Small, 42) })
}

func BenchmarkFig14gExistence(b *testing.B) {
	benchTables(b, func() *experiments.Table { return experiments.Fig14g(experiments.Small, 42) })
}

func BenchmarkAblationSubParts(b *testing.B) {
	benchTables(b, func() *experiments.Table { return experiments.AblationSubParts(experiments.Small, 42) })
}

func BenchmarkAblationTranslation(b *testing.B) {
	benchTables(b, func() *experiments.Table { return experiments.AblationTranslation(experiments.Small, 42) })
}

// --- Micro-benchmarks of the data-plane hot path ---

// BenchmarkPipelinePerPacket measures one packet through a fully loaded
// 9-group pipeline (27 CMUs, one task per CMU triple).
func BenchmarkPipelinePerPacket(b *testing.B) {
	ctrl := controlplane.NewController(controlplane.Config{Groups: 9, Buckets: 65536, BitWidth: 32})
	for g := 0; g < 9; g++ {
		_, err := ctrl.AddTask(controlplane.TaskSpec{
			Name: "t", Key: packet.KeyFiveTuple,
			Attribute: controlplane.AttrFrequency, MemBuckets: 16384, D: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	tr := trace.Generate(trace.Config{Flows: 1000, Packets: 4096, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Process(&tr.Packets[i&4095])
	}
}

// BenchmarkPipelineTelemetry measures the telemetry plane's tax on the
// per-packet fast path: the identical loaded pipeline and trace as
// BenchmarkPipelinePerPacket, once without a registry and once with one
// attached. The telemetry=on variant must stay at 0 allocs/op and within
// 3% of telemetry=off (compare with cmd/benchcmp -pair, see
// `make bench-telemetry`).
func BenchmarkPipelineTelemetry(b *testing.B) {
	for _, tele := range []bool{false, true} {
		name := "telemetry=off"
		cfg := controlplane.Config{Groups: 9, Buckets: 65536, BitWidth: 32}
		if tele {
			name = "telemetry=on"
			cfg.Telemetry = telemetry.NewRegistry()
		}
		b.Run(name, func(b *testing.B) {
			ctrl := controlplane.NewController(cfg)
			for g := 0; g < 9; g++ {
				_, err := ctrl.AddTask(controlplane.TaskSpec{
					Name: "t", Key: packet.KeyFiveTuple,
					Attribute: controlplane.AttrFrequency, MemBuckets: 16384, D: 3,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			tr := trace.Generate(trace.Config{Flows: 1000, Packets: 4096, Seed: 1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctrl.Process(&tr.Packets[i&4095])
			}
		})
	}
}

// BenchmarkProcessBatch measures the snapshot fast path replaying a 4096-
// packet batch sequentially through the same loaded pipeline as
// BenchmarkPipelinePerPacket. Reported per packet.
func BenchmarkProcessBatch(b *testing.B) {
	ctrl := controlplane.NewController(controlplane.Config{Groups: 9, Buckets: 65536, BitWidth: 32})
	for g := 0; g < 9; g++ {
		_, err := ctrl.AddTask(controlplane.TaskSpec{
			Name: "t", Key: packet.KeyFiveTuple,
			Attribute: controlplane.AttrFrequency, MemBuckets: 16384, D: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	tr := trace.Generate(trace.Config{Flows: 1000, Packets: 4096, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i += len(tr.Packets) {
		ctrl.ProcessBatch(tr.Packets)
	}
}

// BenchmarkProcessParallel measures the lock-free parallel fast path:
// GOMAXPROCS workers sharing one RCU snapshot and CAS-updated registers.
// Reported per packet; compare -cpu 1 vs -cpu 4 for scaling.
func BenchmarkProcessParallel(b *testing.B) {
	ctrl := controlplane.NewController(controlplane.Config{Groups: 9, Buckets: 65536, BitWidth: 32})
	for g := 0; g < 9; g++ {
		_, err := ctrl.AddTask(controlplane.TaskSpec{
			Name: "t", Key: packet.KeyFiveTuple,
			Attribute: controlplane.AttrFrequency, MemBuckets: 16384, D: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	tr := trace.Generate(trace.Config{Flows: 1000, Packets: 65536, Seed: 1})
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i += len(tr.Packets) {
		ctrl.ProcessParallel(tr.Packets, workers)
	}
}

// benchLoadedController builds the standard loaded 9-group pipeline (27
// CMUs, 9 three-row CMS tasks) in either register mode. workers sets the
// lane count in sharded mode (0 = GOMAXPROCS; note a single lane disables
// sharding — one worker has nothing to contend with).
func benchLoadedController(b *testing.B, sharded bool, workers int) *controlplane.Controller {
	b.Helper()
	ctrl := controlplane.NewController(controlplane.Config{
		Groups: 9, Buckets: 65536, BitWidth: 32, ShardedState: sharded, Workers: workers,
	})
	for g := 0; g < 9; g++ {
		_, err := ctrl.AddTask(controlplane.TaskSpec{
			Name: "t", Key: packet.KeyFiveTuple,
			Attribute: controlplane.AttrFrequency, MemBuckets: 16384, D: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return ctrl
}

// BenchmarkProcessParallelModes compares the two parallel register modes on
// a heavy-hitter workload (16 flows, Zipf s=2.0: the top flow alone is
// ~60% of packets, so the shared-CAS mode hammers a few hot buckets with
// LOCK-prefixed read-modify-writes while the sharded mode's plain lane
// stores never interlock and the tiny duplicated hot set stays
// cache-resident). Reported per packet; run with -cpu 1,2,4 for the
// scaling table, and compare mode=shared-cas against mode=sharded at
// equal -cpu.
func BenchmarkProcessParallelModes(b *testing.B) {
	for _, mode := range []struct {
		name    string
		sharded bool
	}{
		{"shared-cas", false},
		{"sharded", true},
	} {
		b.Run("mode="+mode.name, func(b *testing.B) {
			ctrl := benchLoadedController(b, mode.sharded, 0)
			defer ctrl.Close()
			tr := trace.Generate(trace.Config{Flows: 16, Packets: 65536, Seed: 7, ZipfS: 2.0})
			workers := runtime.GOMAXPROCS(0)
			// Warm: start the pool, grow worker scratch, fault in the
			// lanes, so the timed region measures steady state.
			ctrl.ProcessParallel(tr.Packets, workers)
			b.ResetTimer()
			for i := 0; i < b.N; i += len(tr.Packets) {
				ctrl.ProcessParallel(tr.Packets, workers)
			}
			b.StopTimer()
			// Fold lanes so both modes end with comparable shared state and
			// the drain cost is visible in its own benchmark, not here.
			ctrl.DrainShards()
		})
	}
}

// BenchmarkShardDrain measures the query-path reduction: folding every
// dirty lane of the loaded pipeline back into shared state (the readout
// tax sharded mode pays once per query burst). The controller is pinned
// to 4 lanes so every -cpu value folds identical state — at GOMAXPROCS=1
// a 0-worker config would collapse to a single lane, which disables
// sharding and leaves nothing to drain. A small untimed batch re-dirties
// the lanes between drains — skewed, so it touches the same hot buckets a
// real burst would. The cursor makes a drain with no intervening batch
// free; that path is covered by the dirtiness-cursor tests.
func BenchmarkShardDrain(b *testing.B) {
	const workers = 4
	ctrl := benchLoadedController(b, true, workers)
	defer ctrl.Close()
	tr := trace.Generate(trace.Config{Flows: 16, Packets: 4096, Seed: 7, ZipfS: 2.0})
	ctrl.ProcessParallel(tr.Packets, workers)
	ctrl.DrainShards()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ctrl.ProcessParallel(tr.Packets, workers)
		b.StartTimer()
		ctrl.DrainShards()
	}
}

// BenchmarkCMUProcess measures one CMU Group processing one packet.
func BenchmarkCMUProcess(b *testing.B) {
	g := core.NewGroup(core.GroupConfig{Buckets: 65536, BitWidth: 32})
	if _, err := algorithms.InstallCMS(g, 1, packet.MatchAll, packet.KeyFiveTuple, core.Const(1), 3, nil); err != nil {
		b.Fatal(err)
	}
	pl := core.NewPipelineWith(g)
	p := packet.Packet{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SrcIP = uint32(i)
		pl.Process(&p)
	}
}

// BenchmarkHashUnit measures one dynamic-hash digest of the candidate key
// set.
func BenchmarkHashUnit(b *testing.B) {
	u := hashing.NewUnit(0)
	u.Configure(packet.KeyFiveTuple)
	p := packet.Packet{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SrcIP = uint32(i)
		_ = u.Hash(&p)
	}
}

// BenchmarkRegisterExecute measures one stateful operation.
func BenchmarkRegisterExecute(b *testing.B) {
	r := dataplane.NewRegister(65536, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Execute(dataplane.OpCondAdd, uint32(i), 1, ^uint32(0))
	}
}

// BenchmarkTraceGeneration measures synthetic workload generation.
func BenchmarkTraceGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = trace.Generate(trace.Config{Flows: 1000, Packets: 10_000, Seed: int64(i)})
	}
}

// BenchmarkNetworkWideEstimate measures a fleet-wide merged estimate (3
// switches, 3×16K-bucket rows merged per query).
func BenchmarkNetworkWideEstimate(b *testing.B) {
	fleet := netwide.NewFleet(3, controlplane.Config{Groups: 1, Buckets: 16384, BitWidth: 32})
	if err := fleet.Deploy(controlplane.TaskSpec{
		Name: "hh", Key: packet.KeyFiveTuple,
		Attribute: controlplane.AttrFrequency, MemBuckets: 16384, D: 3,
	}); err != nil {
		b.Fatal(err)
	}
	tr := trace.Generate(trace.Config{Flows: 1000, Packets: 10_000, Seed: 1})
	for i := range tr.Packets {
		fleet.Process(i%3, &tr.Packets[i])
	}
	k := packet.KeyFiveTuple.Extract(&tr.Packets[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fleet.EstimateKey("hh", k); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSDMEpoch measures one adaptive-allocation epoch decision over
// four managed tasks.
func BenchmarkSDMEpoch(b *testing.B) {
	ctrl := controlplane.NewController(controlplane.Config{Groups: 2, Buckets: 65536, BitWidth: 32})
	alloc := sdm.NewAllocator(ctrl, sdm.DefaultPolicy())
	for i := 0; i < 4; i++ {
		task, err := ctrl.AddTask(controlplane.TaskSpec{
			Name: "t", Key: packet.KeyFiveTuple, Attribute: controlplane.AttrFrequency,
			MemBuckets: 8192, D: 1, Filter: packet.Filter{DstPort: uint16(i + 1)},
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = alloc.Manage(task.ID)
	}
	tr := trace.Generate(trace.Config{Flows: 3000, Packets: 20_000, Seed: 2})
	for i := range tr.Packets {
		tr.Packets[i].DstPort = uint16(i%4 + 1)
		ctrl.Process(&tr.Packets[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = alloc.EpochEnd()
	}
}

// BenchmarkSketchMerge measures merging two 3×16K CMS sketches.
func BenchmarkSketchMerge(b *testing.B) {
	a := sketch.NewCMS(packet.KeyFiveTuple, 3, 16384)
	c := sketch.NewCMS(packet.KeyFiveTuple, 3, 16384)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Merge(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendixERecirculation(b *testing.B) {
	benchTables(b, func() *experiments.Table { return experiments.AppendixE(experiments.Small, 42) })
}

func BenchmarkMultitasking96(b *testing.B) {
	benchTables(b, func() *experiments.Table { return experiments.Multitasking(experiments.Small, 42) })
}
