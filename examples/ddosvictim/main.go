// DDoS-victim detection (Table 1 / §4): a multi-key distinct-counting task
// — count distinct source IPs per destination IP and report destinations
// over a threshold — deployed at runtime as FlyMon-BeauCoup on one CMU
// Group's three coupon tables.
package main

import (
	"fmt"
	"log"

	"flymon/internal/controlplane"
	"flymon/internal/packet"
	"flymon/internal/sketch"
	"flymon/internal/trace"
)

func main() {
	const threshold = 512

	ctrl := controlplane.NewController(controlplane.Config{
		Groups: 1, Buckets: 65536, BitWidth: 32,
	})

	task, err := ctrl.AddTask(controlplane.TaskSpec{
		Name:      "ddos-victims",
		Key:       packet.KeyDstIP,
		Attribute: controlplane.AttrDistinct,
		Param: controlplane.ParamSpec{
			Kind: controlplane.ParamFlowKey, Key: packet.KeySrcIP,
		},
		Threshold:  threshold,
		MemBuckets: 16384,
		D:          3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %s (task %d): Distinct(SrcIP) per DstIP, threshold %d\n",
		task.Algorithm, task.ID, threshold)

	// Background traffic plus two attacks: one real victim (4096 sources)
	// and one below-threshold scare (128 sources).
	tr := trace.Generate(trace.Config{Flows: 6000, Packets: 250_000, Seed: 11})
	victim := packet.IPv4(192, 0, 2, 80)
	decoy := packet.IPv4(192, 0, 2, 81)
	tr.InjectDDoS(victim, 4096, 2, 12)
	tr.InjectDDoS(decoy, 128, 2, 13)

	exact := sketch.NewExactDistinct(packet.KeyDstIP, packet.KeySrcIP)
	for i := range tr.Packets {
		ctrl.Process(&tr.Packets[i])
		exact.AddPacket(&tr.Packets[i])
	}

	candidates := make([]packet.CanonicalKey, 0)
	for k := range exact.Counts() {
		candidates = append(candidates, k)
	}
	reported, err := ctrl.Reported(task.ID, candidates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reported %d victim(s)\n", len(reported))

	for name, ip := range map[string]uint32{"victim": victim, "decoy": decoy} {
		k := packet.KeyDstIP.Extract(&packet.Packet{DstIP: ip})
		est, err := ctrl.EstimateKey(task.ID, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %s: reported=%v, coupon estimate ≈ %.0f distinct sources (truth %d)\n",
			name, packet.FormatIPv4(ip), reported[k], est, exact.Count(k))
	}
}
