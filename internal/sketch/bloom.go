package sketch

import (
	"fmt"
	"math"
	"math/bits"

	"flymon/internal/hashing"
	"flymon/internal/packet"
)

// Bloom is a classic Bloom filter over flow keys: m bits, k hash probes.
// It has no false negatives; the false-positive rate after n insertions is
// ≈ (1 − e^{−kn/m})^k.
type Bloom struct {
	spec  packet.KeySpec
	mBits int
	k     int
	words []uint64
	hash  *hashing.Family
}

// NewBloom builds a Bloom filter with mBits bits (rounded up to a power of
// two) and k probe hashes keyed by spec.
func NewBloom(spec packet.KeySpec, mBits, k int) *Bloom {
	if mBits <= 0 || k <= 0 {
		panic(fmt.Sprintf("sketch: invalid Bloom parameters m=%d k=%d", mBits, k))
	}
	mBits = ceilPow2(mBits)
	return &Bloom{
		spec:  spec,
		mBits: mBits,
		k:     k,
		words: make([]uint64, mBits/64+1),
		hash:  hashing.NewFamily(k, spec),
	}
}

// OptimalK returns the false-positive-minimizing probe count for m bits and
// n expected insertions: k = (m/n) ln 2, at least 1.
func OptimalK(mBits, n int) int {
	if n <= 0 {
		return 1
	}
	k := int(math.Round(float64(mBits) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > hashing.MaxUnits() {
		k = hashing.MaxUnits()
	}
	return k
}

// Insert adds p's flow key to the set.
func (b *Bloom) Insert(p *packet.Packet) {
	for j := 0; j < b.k; j++ {
		b.set(b.hash.Hash(j, p))
	}
}

// InsertKey adds a canonical key directly.
func (b *Bloom) InsertKey(k packet.CanonicalKey) {
	for j := 0; j < b.k; j++ {
		b.set(b.hash.HashBytes(j, k[:]))
	}
}

// Contains reports (possibly falsely) whether p's flow key was inserted.
func (b *Bloom) Contains(p *packet.Packet) bool {
	for j := 0; j < b.k; j++ {
		if !b.get(b.hash.Hash(j, p)) {
			return false
		}
	}
	return true
}

// ContainsKey is Contains for a canonical key.
func (b *Bloom) ContainsKey(k packet.CanonicalKey) bool {
	for j := 0; j < b.k; j++ {
		if !b.get(b.hash.HashBytes(j, k[:])) {
			return false
		}
	}
	return true
}

func (b *Bloom) set(h uint32) {
	bit := h & uint32(b.mBits-1)
	b.words[bit/64] |= 1 << (bit % 64)
}

func (b *Bloom) get(h uint32) bool {
	bit := h & uint32(b.mBits-1)
	return b.words[bit/64]&(1<<(bit%64)) != 0
}

// OnesCount returns the number of set bits (used by Linear Counting and by
// FP-rate diagnostics).
func (b *Bloom) OnesCount() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Bits returns the filter size in bits.
func (b *Bloom) Bits() int { return b.mBits }

// MemoryBytes returns the stateful memory footprint.
func (b *Bloom) MemoryBytes() int { return b.mBits / 8 }

// Reset clears the filter.
func (b *Bloom) Reset() { clear(b.words) }

// LinearCounting estimates set cardinality from a 1-probe bit array (Whang
// et al.): n̂ = −m · ln(V) with V the fraction of zero bits. The data-plane
// state is identical to a k=1 Bloom filter — in FlyMon they share the same
// CMU configuration and differ only in control-plane analysis (Appendix D).
type LinearCounting struct {
	*Bloom
}

// NewLinearCounting builds a Linear Counting estimator with mBits bits.
func NewLinearCounting(spec packet.KeySpec, mBits int) *LinearCounting {
	return &LinearCounting{Bloom: NewBloom(spec, mBits, 1)}
}

// Estimate returns the cardinality estimate.
func (lc *LinearCounting) Estimate() float64 {
	zeros := lc.mBits - lc.OnesCount()
	if zeros == 0 {
		// Saturated: Linear Counting's estimate diverges; report the
		// coupon-collector upper bound m·H_m ≈ m ln m.
		m := float64(lc.mBits)
		return m * math.Log(m)
	}
	v := float64(zeros) / float64(lc.mBits)
	return -float64(lc.mBits) * math.Log(v)
}
