package hashing

import (
	"testing"
	"testing/quick"

	"flymon/internal/packet"
)

func TestUnitsAreIndependent(t *testing.T) {
	// Distinct polynomials must produce distinct digests for almost all
	// inputs: count agreement across many keys.
	u0, u1 := NewUnit(0), NewUnit(1)
	u0.Configure(packet.KeyFiveTuple)
	u1.Configure(packet.KeyFiveTuple)
	same := 0
	for i := 0; i < 10_000; i++ {
		p := packet.Packet{SrcIP: uint32(i), DstIP: uint32(i * 7), SrcPort: uint16(i), Proto: 6}
		if u0.Hash(&p) == u1.Hash(&p) {
			same++
		}
	}
	if same > 3 {
		t.Fatalf("units 0 and 1 agreed on %d/10000 keys; polynomials not independent", same)
	}
}

func TestUnitMaskSensitivity(t *testing.T) {
	u := NewUnit(0)
	u.Configure(packet.KeySrcIP)
	a := packet.Packet{SrcIP: 1, DstIP: 100}
	b := packet.Packet{SrcIP: 1, DstIP: 999} // differs only outside the mask
	if u.Hash(&a) != u.Hash(&b) {
		t.Error("digest must ignore fields outside the installed mask")
	}
	c := packet.Packet{SrcIP: 2, DstIP: 100}
	if u.Hash(&a) == u.Hash(&c) {
		t.Error("digest must depend on masked-in fields")
	}
}

func TestUnitReconfiguration(t *testing.T) {
	u := NewUnit(2)
	p := packet.Packet{SrcIP: 10, DstIP: 20}
	if u.Live() {
		t.Error("fresh unit must be idle")
	}
	if u.Hash(&p) != 0 {
		t.Error("idle unit must digest to zero")
	}
	u.Configure(packet.KeySrcIP)
	h1 := u.Hash(&p)
	u.Configure(packet.KeyDstIP) // runtime re-mask
	h2 := u.Hash(&p)
	if h1 == h2 {
		t.Error("re-masking must change the digest for differing fields")
	}
	u.ConfigureMask([packet.NumFields]uint32{})
	if u.Live() {
		t.Error("empty mask must make the unit idle")
	}
}

func TestUnitPrefixMasking(t *testing.T) {
	u := NewUnit(0)
	u.Configure(packet.KeySpec{Parts: []packet.KeyPart{{Field: packet.FieldSrcIP, PrefixBits: 24}}})
	a := packet.Packet{SrcIP: packet.IPv4(10, 1, 2, 3)}
	b := packet.Packet{SrcIP: packet.IPv4(10, 1, 2, 200)}
	c := packet.Packet{SrcIP: packet.IPv4(10, 1, 3, 3)}
	if u.Hash(&a) != u.Hash(&b) {
		t.Error("same /24 must digest identically under a /24 mask")
	}
	if u.Hash(&a) == u.Hash(&c) {
		t.Error("different /24 must digest differently")
	}
}

func TestUnitIndexBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range unit index must panic")
		}
	}()
	NewUnit(MaxUnits())
}

func TestSubKeyFullWidthIdentity(t *testing.T) {
	if got := SubKey(0xDEADBEEF, 0, 32); got != 0xDEADBEEF {
		t.Errorf("identity subkey = %#x", got)
	}
}

func TestSubKeyRotation(t *testing.T) {
	k := uint32(0x80000001)
	if got := SubKey(k, 1, 32); got != 0xC0000000 {
		t.Errorf("rotate by 1 = %#x, want 0xC0000000", got)
	}
	if got := SubKey(k, 0, 4); got != 0x1 {
		t.Errorf("low nibble = %#x, want 1", got)
	}
	if got := SubKey(k, 31, 4); got != 0x3 {
		t.Errorf("wrap-around nibble = %#x, want 3", got)
	}
}

func TestSubKeyWidthBoundProperty(t *testing.T) {
	f := func(key uint32, lo, width uint8) bool {
		w := int(width%32) + 1
		v := SubKey(key, int(lo), w)
		if w == 32 {
			return true
		}
		return v < 1<<uint(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubKeyDisjointWindowsCoverAllBits(t *testing.T) {
	// Reassembling a key from four disjoint byte windows must reproduce it
	// — SubKey loses no information.
	f := func(key uint32) bool {
		var re uint32
		for i := 0; i < 4; i++ {
			re |= SubKey(key, 8*i, 8) << uint(8*i)
		}
		return re == key
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubKeyInvalidWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("width 0 must panic")
		}
	}()
	SubKey(1, 0, 0)
}

func TestCombineIsXor(t *testing.T) {
	if Combine(0xF0F0, 0x0FF0) != 0xFF00 {
		t.Error("Combine must be XOR")
	}
	f := func(a, b uint32) bool {
		return Combine(a, b) == Combine(b, a) && Combine(a, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFamily(t *testing.T) {
	fam := NewFamily(4, packet.KeyFiveTuple)
	if fam.Size() != 4 {
		t.Fatalf("family size = %d", fam.Size())
	}
	p := packet.Packet{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	seen := map[uint32]bool{}
	for i := 0; i < 4; i++ {
		seen[fam.Hash(i, &p)] = true
	}
	if len(seen) != 4 {
		t.Errorf("family digests collide: %d distinct of 4", len(seen))
	}
	k := packet.KeyFiveTuple.Extract(&p)
	for i := 0; i < 4; i++ {
		if fam.Hash(i, &p) != fam.HashBytes(i, k[:]) {
			t.Errorf("unit %d: packet and canonical-key digests disagree", i)
		}
	}
}

func TestFamilyTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized family must panic")
		}
	}()
	NewFamily(MaxUnits()+1, packet.KeyFiveTuple)
}

func TestHashMatchesCanonicalExtraction(t *testing.T) {
	// The control plane recomputes bucket indices from canonical keys:
	// Unit.Hash(p) must equal Unit.HashBytes(spec.Extract(p)).
	for _, spec := range []packet.KeySpec{packet.KeySrcIP, packet.KeyIPPair, packet.KeyFiveTuple} {
		u := NewUnit(1)
		u.Configure(spec)
		p := packet.Packet{SrcIP: 0xABCD, DstIP: 0x1234, SrcPort: 80, DstPort: 443, Proto: 17}
		k := spec.Extract(&p)
		if u.Hash(&p) != u.HashBytes(k[:]) {
			t.Errorf("spec %s: hash mismatch between packet and canonical key", spec)
		}
	}
}

func TestHashUniformity(t *testing.T) {
	// Chi-squared-ish sanity: digests into 64 buckets should be roughly
	// uniform over 64K sequential keys.
	u := NewUnit(0)
	u.Configure(packet.KeySrcIP)
	var buckets [64]int
	const n = 1 << 16
	for i := 0; i < n; i++ {
		p := packet.Packet{SrcIP: uint32(i)}
		buckets[u.Hash(&p)%64]++
	}
	want := n / 64
	for i, c := range buckets {
		if c < want*8/10 || c > want*12/10 {
			t.Fatalf("bucket %d has %d of expected %d (±20%%); digest not uniform", i, c, want)
		}
	}
}
