package core

import "flymon/internal/telemetry"

// This file is the data plane's half of the telemetry plane: how per-rule
// hit counts, packet totals, and preparation-stage drops get from the
// zero-allocation compiled hot path into the shared telemetry.Registry
// without adding contended atomics (or any allocation) to Process.
//
// The design stacks three write paths by decreasing frequency:
//
//  1. Derived counters (zero per-packet cost). A rule that is first in its
//     CMU program, match-all, and unsampled executes for every packet that
//     reaches its pass — which is most rules in practice (whole-traffic
//     sketches). The compiler proves this and gives such rules teleSlot -1;
//     their hits are reconstructed as the snapshot's packet count, settled
//     into the durable counters when the snapshot retires and folded live
//     at scrape time. The same argument derives the compression-stage
//     digest count (digests-per-packet is a compile-time constant).
//
//  2. Context-local accumulation (one plain add per filtered/sampled rule
//     execution). Rules the proof does not cover get a slot in the worker's
//     ProcCtx.tele array; exec bumps a plain uint64. Every teleFlushEvery
//     packets — and at batch boundaries, and whenever the worker observes a
//     new snapshot — the pending counts flush into the striped
//     telemetry.Counter objects, amortizing the atomics to ~1/64 per rule.
//
//  3. Striped shared counters (the flush target). telemetry.Counter spreads
//     flushes over cache-line-padded stripes keyed by the context's stripe
//     id, mirroring the register-lane pattern, so concurrent workers don't
//     serialize on a counter line; scrapes fold the stripes.
//
// Consistency contract: counts are exact once writers quiesce at a batch
// boundary (ProcessBatch, WorkerPool jobs, and ProcessParallel chunks all
// flush before returning). A long-idle pooled context can hold at most
// teleFlushEvery-1 packets of pending counts, so live scrapes undercount by
// a bounded, eventually-flushed amount. Snapshot retirement settles through
// the controller's retired-snapshot ring: a straggler still flushing into a
// just-retired snapshot is folded by the next settle pass over the ring.

// teleFlushEvery is the context-local flush cadence in packets. 64 keeps
// the striped-counter atomics off the per-packet path (two atomic adds per
// 64 packets) while bounding a live scrape's undercount per worker.
const teleFlushEvery = 64

// teleTick accounts one packet entering the snapshot fast path and flushes
// on cadence. Called by Snapshot.Process only when the snapshot carries
// telemetry.
func (pc *ProcCtx) teleTick(s *Snapshot) {
	if pc.teleSnap != s {
		pc.teleArm(s)
	}
	pc.telePend++
	if pc.telePend >= teleFlushEvery {
		pc.teleFlush()
	}
}

// teleTickBatch accounts n packets at once — the batch engine's fold of n
// teleTicks. The pending count crosses the flush cadence at most once per
// call, so totals (the only thing the consistency contract promises) match
// the per-packet path exactly once the worker quiesces at a batch
// boundary.
func (pc *ProcCtx) teleTickBatch(s *Snapshot, n int) {
	if pc.teleSnap != s {
		pc.teleArm(s)
	}
	pc.telePend += uint32(n)
	if pc.telePend >= teleFlushEvery {
		pc.teleFlush()
	}
}

// teleArm flushes whatever the context owed the previous snapshot, then
// sizes the pending-hit accumulators for s and aliases them into the PHV
// context. The make only runs when a snapshot with more live-counted rules
// appears — after the first packet of a configuration the path is
// allocation-free (the alloc gate covers this).
func (pc *ProcCtx) teleArm(s *Snapshot) {
	pc.teleFlush()
	pc.teleSnap = s
	n := len(s.teleSlots)
	if cap(pc.tele) < n {
		pc.tele = make([]uint64, n)
	}
	pc.tele = pc.tele[:n]
	for i := range pc.tele {
		pc.tele[i] = 0
	}
	pc.Ctx.Tele = pc.tele
}

// teleFlush moves the context's pending counts into the shared state of the
// snapshot it is armed for: packet/recirculation totals into the snapshot's
// unsettled counters, per-rule hits and prep drops into the striped
// registry counters on the context's stripe. No-op when never armed.
func (pc *ProcCtx) teleFlush() {
	s := pc.teleSnap
	if s == nil {
		return
	}
	if pc.telePend != 0 {
		s.telePkts.Add(uint64(pc.telePend))
		pc.telePend = 0
	}
	if pc.teleRecPend != 0 {
		s.teleRec.Add(uint64(pc.teleRecPend))
		pc.teleRecPend = 0
	}
	for i, n := range pc.tele {
		if n != 0 {
			s.teleSlots[i].Add(pc.stripe, n)
			pc.tele[i] = 0
		}
	}
	if pc.Ctx.PrepDrops != 0 {
		s.teleReg.PrepDrops().Add(pc.stripe, pc.Ctx.PrepDrops)
		pc.Ctx.PrepDrops = 0
	}
}

// TeleFlush flushes pending telemetry counts immediately. Exported for
// callers that hold a context across batches (the controller's context
// pool) and want scrape-exact counts at a known quiesce point.
func (pc *ProcCtx) TeleFlush() { pc.teleFlush() }

// TelemetrySettle drains the snapshot's unsettled packet counts into the
// durable registry state: derived rule counters receive their packet-count
// hits and the registry absorbs the implied compression digests. Safe to
// call repeatedly (counts swap to zero), including while stragglers still
// flush — whatever lands after one settle is caught by the next. The
// controller settles every snapshot it retires, keeping a short ring so
// late flushes from pooled contexts are eventually folded too.
func (s *Snapshot) TelemetrySettle() {
	if !s.teleOn {
		return
	}
	p := s.telePkts.Swap(0)
	r := s.teleRec.Swap(0)
	for _, rc := range s.teleMain {
		rc.Settle(p)
	}
	for _, rc := range s.teleSpl {
		rc.Settle(r)
	}
	s.teleReg.SettleDigests(p*uint64(s.teleDigMain) + r*uint64(s.teleDigSpl))
}

// TelemetryLive returns the snapshot's not-yet-settled contribution — its
// unsettled packet counts and the derived-counter lists they stand in for —
// for scrape-time folding without retiring the snapshot.
func (s *Snapshot) TelemetryLive() telemetry.LiveSample {
	if !s.teleOn {
		return telemetry.LiveSample{}
	}
	p := s.telePkts.Load()
	r := s.teleRec.Load()
	return telemetry.LiveSample{
		Packets:        p,
		Recirculated:   r,
		Digests:        p*uint64(s.teleDigMain) + r*uint64(s.teleDigSpl),
		Derived:        s.teleMain,
		DerivedSpliced: s.teleSpl,
	}
}
