package rpc

import (
	"encoding/json"
	"net"
	"os"
	"strings"
	"sync"
	"testing"

	"flymon/internal/controlplane"
	"flymon/internal/packet"
	"flymon/internal/trace"
)

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	ctrl := controlplane.NewController(controlplane.Config{Groups: 3, Buckets: 65536, BitWidth: 32})
	srv := NewServer(ctrl, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return srv, client
}

func freqSpec(name string) controlplane.TaskSpec {
	return controlplane.TaskSpec{
		Name: name, Key: packet.KeyFiveTuple,
		Attribute: controlplane.AttrFrequency, MemBuckets: 4096, D: 3,
	}
}

func TestPing(t *testing.T) {
	_, c := startServer(t)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestTaskLifecycleOverRPC(t *testing.T) {
	_, c := startServer(t)
	task, err := c.AddTask(freqSpec("rpc-task"))
	if err != nil {
		t.Fatal(err)
	}
	if task.ID != 1 || task.Algorithm != "FlyMon-CMS" || task.Buckets != 4096 {
		t.Fatalf("task = %+v", task)
	}
	if task.Delay <= 0 {
		t.Fatal("deploy delay must cross the wire")
	}
	tasks, err := c.ListTasks()
	if err != nil || len(tasks) != 1 {
		t.Fatalf("ListTasks = %v, %v", tasks, err)
	}
	resized, err := c.ResizeTask(task.ID, 8192)
	if err != nil || resized.Buckets != 8192 {
		t.Fatalf("resize = %+v, %v", resized, err)
	}
	if err := c.RemoveTask(task.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveTask(task.ID); err == nil || !strings.Contains(err.Error(), "no task") {
		t.Fatalf("second remove error = %v", err)
	}
}

func TestWorkloadAndEstimateOverRPC(t *testing.T) {
	_, c := startServer(t)
	task, err := c.AddTask(freqSpec("est"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.GenTrace(500, 20_000, 1.2, 5)
	if err != nil || n != 20_000 {
		t.Fatalf("GenTrace = %d, %v", n, err)
	}
	done, err := c.Replay(0)
	if err != nil || done != 20_000 {
		t.Fatalf("Replay = %d, %v", done, err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.PacketsProcessed != 20_000 || stats.TracePackets != 20_000 || stats.Tasks != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// An arbitrary key estimates without error (value may be zero).
	if _, err := c.Estimate(task.ID, packet.CanonicalKey{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	rows, err := c.ReadRegisters(task.ID)
	if err != nil || len(rows) != 3 {
		t.Fatalf("ReadRegisters rows = %d, %v", len(rows), err)
	}
	res, err := c.Resources()
	if err != nil || res.Tasks != 1 {
		t.Fatalf("Resources = %+v, %v", res, err)
	}
}

func TestReplayWithoutTraceFails(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.Replay(0); err == nil || !strings.Contains(err.Error(), "no trace") {
		t.Fatalf("replay without trace error = %v", err)
	}
}

func TestCardinalityAndContainsOverRPC(t *testing.T) {
	_, c := startServer(t)
	hll, err := c.AddTask(controlplane.TaskSpec{
		Name: "card", Attribute: controlplane.AttrDistinct,
		Param:      controlplane.ParamSpec{Kind: controlplane.ParamFlowKey, Key: packet.KeyFiveTuple},
		MemBuckets: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	bloom, err := c.AddTask(controlplane.TaskSpec{
		Name: "exists", Attribute: controlplane.AttrExistence,
		Param:      controlplane.ParamSpec{Kind: controlplane.ParamFlowKey, Key: packet.KeyFiveTuple},
		MemBuckets: 4096, D: 3,
		Filter: packet.Filter{DstPort: 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.GenTrace(2000, 10_000, 1.2, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Replay(0); err != nil {
		t.Fatal(err)
	}
	card, err := c.Cardinality(hll.ID)
	if err != nil {
		t.Fatal(err)
	}
	if card < 500 || card > 4000 {
		t.Fatalf("cardinality = %.0f, implausible for ~2000 flows", card)
	}
	// Type mismatch errors propagate.
	if _, err := c.Cardinality(bloom.ID); err == nil {
		t.Fatal("cardinality on a bloom task must fail")
	}
	if _, err := c.Contains(hll.ID, packet.CanonicalKey{}); err == nil {
		t.Fatal("contains on an HLL task must fail")
	}
}

func TestDistributionOverRPC(t *testing.T) {
	_, c := startServer(t)
	task, err := c.AddTask(controlplane.TaskSpec{
		Name: "mrac", Key: packet.KeyFiveTuple,
		Attribute: controlplane.AttrFrequency, MemBuckets: 8192,
		Algorithm: controlplane.AlgMRAC,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.GenTrace(1000, 30_000, 1.2, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Replay(0); err != nil {
		t.Fatal(err)
	}
	dist, err := c.Distribution(task.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist.Sizes) == 0 || dist.Entropy <= 0 {
		t.Fatalf("distribution = %d sizes, entropy %.3f", len(dist.Sizes), dist.Entropy)
	}
	if len(dist.Sizes) != len(dist.Counts) {
		t.Fatal("sizes/counts length mismatch")
	}
}

func TestReportedOverRPC(t *testing.T) {
	_, c := startServer(t)
	task, err := c.AddTask(controlplane.TaskSpec{
		Name: "hh", Key: packet.KeyFiveTuple,
		Attribute: controlplane.AttrFrequency, Threshold: 100, MemBuckets: 8192, D: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.GenTrace(200, 50_000, 1.4, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Replay(0); err != nil {
		t.Fatal(err)
	}
	// Candidate set: synthesize packets covering the trace's flows is the
	// caller's job; use a couple of random keys plus verify no error.
	cands := []packet.CanonicalKey{{1}, {2}, {3}}
	if _, err := c.Reported(task.ID, cands); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownMethodAndErrors(t *testing.T) {
	srv, _ := startServer(t)
	resp, _ := srv.dispatch(&Request{ID: 7, Method: "bogus"})
	if resp.Error == "" || !strings.Contains(resp.Error, "unknown method") {
		t.Fatalf("unknown method response = %+v", resp)
	}
	if resp.ID != 7 {
		t.Fatal("response must echo the request id")
	}
	// Malformed params.
	resp, _ = srv.dispatch(&Request{ID: 8, Method: MethodAddTask, Params: json.RawMessage(`{"spec": 42}`)})
	if resp.Error == "" {
		t.Fatal("malformed params must error")
	}
}

func TestConcurrentClients(t *testing.T) {
	ctrl := controlplane.NewController(controlplane.Config{Groups: 9, Buckets: 65536, BitWidth: 32})
	srv := NewServer(ctrl, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				if err := c.Ping(); err != nil {
					errs <- err
					return
				}
				if _, err := c.ListTasks(); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestDialFailure(t *testing.T) {
	// Grab a port and close it so nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Dial(addr); err == nil {
		t.Fatal("dialing a closed port must fail")
	}
}

func TestLargeRegisterReadout(t *testing.T) {
	// A 64K-bucket × 3-row readout is a multi-megabyte JSON payload: the
	// framing must survive it.
	_, c := startServer(t)
	task, err := c.AddTask(controlplane.TaskSpec{
		Name: "big", Key: packet.KeyFiveTuple,
		Attribute: controlplane.AttrFrequency, MemBuckets: 65536, D: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.ReadRegisters(task.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || len(rows[0]) != 65536 {
		t.Fatalf("readout shape = %d rows × %d", len(rows), len(rows[0]))
	}
}

func TestSplitTaskOverRPC(t *testing.T) {
	_, c := startServer(t)
	spec := freqSpec("splitme")
	spec.Filter = packet.Filter{SrcPrefix: packet.Prefix{Value: packet.IPv4(10, 0, 0, 0), Bits: 8}}
	task, err := c.AddTask(spec)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := c.SplitTask(task.ID)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Name != "splitme-a" || hi.Name != "splitme-b" {
		t.Fatalf("subtask names = %q, %q", lo.Name, hi.Name)
	}
	tasks, _ := c.ListTasks()
	if len(tasks) != 2 {
		t.Fatalf("task count after split = %d", len(tasks))
	}
}

func TestLoadTraceOverRPC(t *testing.T) {
	_, c := startServer(t)
	// Write a trace with trafficgen's format and load it by path.
	dir := t.TempDir()
	path := dir + "/t.fmt"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(trace.Config{Flows: 50, Packets: 500, Seed: 9})
	if err := w.WriteTrace(tr); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	n, err := c.LoadTrace(path)
	if err != nil || n != 500 {
		t.Fatalf("LoadTrace = %d, %v", n, err)
	}
	done, err := c.Replay(0)
	if err != nil || done != 500 {
		t.Fatalf("Replay = %d, %v", done, err)
	}
	if _, err := c.LoadTrace(dir + "/missing.fmt"); err == nil {
		t.Fatal("loading a missing file must fail")
	}
}

func TestResourceReportOverRPC(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.AddTask(freqSpec("rep")); err != nil {
		t.Fatal(err)
	}
	groups, err := c.ResourceReport()
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0].Rules != 3 || len(groups[0].Tasks) != 1 {
		t.Fatalf("group 0 report = %+v", groups[0])
	}
}

func TestConcurrentReplayAndReadout(t *testing.T) {
	// One client replays traffic while another reads registers and lists
	// tasks — the daemon must serialize data-plane and control-plane
	// access (run under -race to verify).
	ctrl := controlplane.NewController(controlplane.Config{Groups: 3, Buckets: 65536, BitWidth: 32})
	srv := NewServer(ctrl, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	writer, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	reader, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()

	task, err := writer.AddTask(freqSpec("contended"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writer.GenTrace(500, 5_000, 1.2, 3); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 2)
	go func() {
		for i := 0; i < 10; i++ {
			if _, err := writer.Replay(0); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		for i := 0; i < 50; i++ {
			if _, err := reader.ReadRegisters(task.ID); err != nil {
				done <- err
				return
			}
			if _, err := reader.Estimate(task.ID, packet.CanonicalKey{1}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
