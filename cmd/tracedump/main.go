// Command tracedump summarizes a binary trace file (the trafficgen output
// format): packet/flow counts, duration, and heavy-tail statistics — the
// quick look an operator takes before sizing measurement tasks.
//
// Usage:
//
//	tracedump trace.fmt [more.fmt ...]
package main

import (
	"fmt"
	"log"
	"os"

	"flymon/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracedump <trace.fmt> [...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			log.Fatalf("tracedump: %v", err)
		}
		r, err := trace.NewReader(f)
		if err != nil {
			f.Close()
			log.Fatalf("tracedump: %s: %v", path, err)
		}
		tr, err := r.ReadAll()
		f.Close()
		if err != nil {
			log.Fatalf("tracedump: %s: %v", path, err)
		}
		fmt.Printf("== %s ==\n", path)
		trace.Summarize(tr).Render(os.Stdout)
		fmt.Println()
	}
}
