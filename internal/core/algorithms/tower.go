package algorithms

import (
	"fmt"

	"flymon/internal/core"
	"flymon/internal/dataplane"
	"flymon/internal/packet"
)

// TowerTask is FlyMon-TowerSketch (Appendix D): each CMU level implements a
// flexible-width counter in the most-significant bits of the uniform-width
// buckets. Level i adds p1 = 1 << (B − wᵢ) under the overflow guard
// p2 = (2^wᵢ − 1) << (B − wᵢ), so narrow counters saturate instead of
// corrupting neighbours; different level lengths come from address
// translation. The query is the minimum over non-saturated levels.
type TowerTask struct {
	Group  *core.Group
	TaskID int
	Unit   int
	Base   int   // first CMU index
	Widths []int // counter bit width per level (CMU)
	Rows   []core.MemRange
	Method core.TranslationMethod
}

// InstallTower installs a FlyMon-TowerSketch with one level per width on
// group g. rows may be nil (whole registers — equal level lengths) or give
// per-level partitions (canonically: narrower counters get longer arrays).
func InstallTower(g *core.Group, taskID int, filter packet.Filter, key packet.KeySpec,
	widths []int, rows []core.MemRange, at ...int) (*TowerTask, error) {
	base := baseCMU(at)
	d := len(widths)
	if d < 1 || d > g.CMUs() {
		return nil, fmt.Errorf("algorithms: tower with %d levels exceeds group's %d CMUs", d, g.CMUs())
	}
	rows, err := checkRows(g, rows, base, d)
	if err != nil {
		return nil, err
	}
	unit, err := EnsureUnit(g, key)
	if err != nil {
		return nil, err
	}
	t := &TowerTask{Group: g, TaskID: taskID, Unit: unit, Base: base, Widths: widths,
		Rows: rows, Method: core.TCAMBased}
	for i := 0; i < d; i++ {
		B := g.CMU(base + i).Register().BitWidth()
		w := widths[i]
		if w <= 0 || w > B {
			t.Uninstall()
			return nil, fmt.Errorf("algorithms: tower level %d width %d exceeds bucket width %d", i, w, B)
		}
		shift := uint(B - w)
		rule := &core.Rule{
			TaskID:      taskID,
			Filter:      filter,
			Key:         rowSelector(unit, base+i),
			P1:          core.Const(1 << shift),
			P2:          core.Const(((1 << uint(w)) - 1) << shift),
			Mem:         rows[i],
			Translation: t.Method,
			Op:          dataplane.OpCondAdd,
		}
		if err := g.CMU(base + i).InstallRule(rule); err != nil {
			t.Uninstall()
			return nil, err
		}
	}
	return t, nil
}

// EstimateKey returns the tower estimate for canonical key k: the minimum
// over non-saturated level counters (the widest level's saturation value
// when all levels are saturated).
func (t *TowerTask) EstimateKey(k packet.CanonicalKey) uint32 {
	best := ^uint32(0)
	live := false
	var widestSat uint32
	for i, w := range t.Widths {
		B := t.Group.CMU(t.Base + i).Register().BitWidth()
		idx := rowIndex(t.Group, t.Unit, t.Base+i, k, t.Rows[i], t.Method)
		bucket := t.Group.CMU(t.Base + i).Register().Read(idx)
		cnt := bucket >> uint(B-w)
		sat := uint32(1<<uint(w)) - 1
		if sat > widestSat {
			widestSat = sat
		}
		if cnt >= sat {
			continue
		}
		live = true
		if cnt < best {
			best = cnt
		}
	}
	if !live {
		return widestSat
	}
	return best
}

// MemoryBytes returns the task's register memory footprint (full uniform
// buckets; unused low bits remain available to co-located tasks).
func (t *TowerTask) MemoryBytes() int {
	total := 0
	for i, r := range t.Rows {
		total += r.Buckets * t.Group.CMU(t.Base+i).Register().BitWidth() / 8
	}
	return total
}

// Uninstall removes the task's rules.
func (t *TowerTask) Uninstall() {
	for i := 0; i < t.Group.CMUs(); i++ {
		t.Group.CMU(i).RemoveRule(t.TaskID)
	}
}

// CounterBraidsTask is FlyMon-CounterBraids (L=2, Appendix D): CMU 1 runs a
// narrow counter in its buckets' top bits; once it saturates, its Cond-ADD
// returns 0 and CMU 2's preparation-stage zero-gate converts that into an
// increment of the wide layer-2 counter. The recovered count is
// layer1 + layer2 (exact absent collisions).
type CounterBraidsTask struct {
	Group  *core.Group
	TaskID int
	Unit   int
	Base   int // first CMU index
	W1, W2 int
	Rows   []core.MemRange
	Method core.TranslationMethod
}

// InstallCounterBraids installs a FlyMon-CounterBraids task on group g with
// layer widths w1 (narrow) and w2 (wide).
func InstallCounterBraids(g *core.Group, taskID int, filter packet.Filter,
	key packet.KeySpec, w1, w2 int, rows []core.MemRange, at ...int) (*CounterBraidsTask, error) {
	base := baseCMU(at)
	if g.CMUs() < 2 {
		return nil, fmt.Errorf("algorithms: counter braids needs 2 CMUs, group has %d", g.CMUs())
	}
	rows, err := checkRows(g, rows, base, 2)
	if err != nil {
		return nil, err
	}
	unit, err := EnsureUnit(g, key)
	if err != nil {
		return nil, err
	}
	B1 := g.CMU(base).Register().BitWidth()
	B2 := g.CMU(base + 1).Register().BitWidth()
	if w1 <= 0 || w1 > B1 || w2 <= 0 || w2 > B2 {
		return nil, fmt.Errorf("algorithms: counter braids widths (%d,%d) exceed buckets (%d,%d)", w1, w2, B1, B2)
	}
	t := &CounterBraidsTask{Group: g, TaskID: taskID, Unit: unit, Base: base, W1: w1, W2: w2,
		Rows: rows, Method: core.TCAMBased}

	s1 := uint(B1 - w1)
	layer1 := &core.Rule{
		TaskID:      taskID,
		Filter:      filter,
		Key:         rowSelector(unit, base),
		P1:          core.Const(1 << s1),
		P2:          core.Const(((1 << uint(w1)) - 1) << s1),
		Mem:         rows[0],
		Translation: t.Method,
		Op:          dataplane.OpCondAdd,
	}
	if err := g.CMU(base).InstallRule(layer1); err != nil {
		return nil, err
	}
	s2 := uint(B2 - w2)
	layer2 := &core.Rule{
		TaskID: taskID,
		Filter: filter,
		Key:    rowSelector(unit, base+1),
		P1:     core.PrevResult(),
		P2:     core.Const(((1 << uint(w2)) - 1) << s2),
		Prep: core.Transform{
			Kind:   core.TransformZeroGate,
			IfZero: 1 << s2, // layer 1 saturated: count here
			Else:   0,       // layer 1 took the packet: add nothing
		},
		Mem:         rows[1],
		Translation: t.Method,
		Op:          dataplane.OpCondAdd,
	}
	if err := g.CMU(base + 1).InstallRule(layer2); err != nil {
		t.Uninstall()
		return nil, err
	}
	return t, nil
}

// EstimateKey returns layer1 + layer2 for canonical key k.
func (t *CounterBraidsTask) EstimateKey(k packet.CanonicalKey) uint64 {
	B1 := t.Group.CMU(t.Base).Register().BitWidth()
	B2 := t.Group.CMU(t.Base + 1).Register().BitWidth()
	i1 := rowIndex(t.Group, t.Unit, t.Base, k, t.Rows[0], t.Method)
	i2 := rowIndex(t.Group, t.Unit, t.Base+1, k, t.Rows[1], t.Method)
	v1 := uint64(t.Group.CMU(t.Base).Register().Read(i1) >> uint(B1-t.W1))
	v2 := uint64(t.Group.CMU(t.Base+1).Register().Read(i2) >> uint(B2-t.W2))
	return v1 + v2
}

// MemoryBytes returns the task's register memory footprint.
func (t *CounterBraidsTask) MemoryBytes() int {
	total := 0
	for i, r := range t.Rows {
		total += r.Buckets * t.Group.CMU(t.Base+i).Register().BitWidth() / 8
	}
	return total
}

// Uninstall removes the task's rules.
func (t *CounterBraidsTask) Uninstall() {
	for i := 0; i < t.Group.CMUs(); i++ {
		t.Group.CMU(i).RemoveRule(t.TaskID)
	}
}
