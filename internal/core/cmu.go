// Package core implements FlyMon's contribution: Composable Measurement
// Units (CMUs) and CMU Groups mapped onto the simulated RMT data plane,
// with runtime-reconfigurable key selection (compression + initialization
// stages), attribute operations from the reduced stateful operation set
// (preparation + operation stages), dynamic memory management via address
// translation, and the cross-stacked pipeline layout.
package core

import (
	"fmt"
	"math/bits"

	"flymon/internal/dataplane"
	"flymon/internal/packet"
)

// Selector picks a 32-bit value from the compression stage's compressed
// keys: unit A, optionally XORed with unit B (the k(k+1)/2 key-combination
// trick, §3.1.1), then narrowed to a bit sub-range so the CMUs of a group
// can simulate independent hash functions from shared compressed keys
// (§3.2).
type Selector struct {
	UnitA int // index of the first compressed key
	UnitB int // second compressed key for XOR, or -1 for none
	Lo    int // low bit of the sub-range (0 = full)
	Width int // sub-range width in bits (0 = full 32)
}

// FullKey selects compressed key `unit` at full width.
func FullKey(unit int) Selector { return Selector{UnitA: unit, UnitB: -1, Width: 32} }

// XorKey selects the XOR of two compressed keys at full width.
func XorKey(a, b int) Selector { return Selector{UnitA: a, UnitB: b, Width: 32} }

// SubRange narrows the selector to bits [lo, lo+width).
func (s Selector) SubRange(lo, width int) Selector {
	s.Lo, s.Width = lo, width
	return s
}

// Resolve extracts the selected value from the compressed key vector.
func (s Selector) Resolve(keys []uint32) uint32 {
	var v uint32
	if s.UnitA >= 0 && s.UnitA < len(keys) {
		v = keys[s.UnitA]
	}
	if s.UnitB >= 0 && s.UnitB < len(keys) {
		v ^= keys[s.UnitB]
	}
	width := s.Width
	if width <= 0 || width > 32 {
		width = 32
	}
	lo := s.Lo % 32
	if lo < 0 {
		lo += 32
	}
	if lo != 0 {
		v = v>>uint(lo) | v<<uint(32-lo)
	}
	if width < 32 {
		v &= 1<<uint(width) - 1
	}
	return v
}

// ParamKind enumerates the sources a CMU's initialization stage can bind to
// a parameter: constants, standard metadata, compressed keys, and the
// result bus of an upstream CMU (§3.2: "The parameters can be constant
// values or standard metadata such as packet size, timestamp, queue length,
// and delay"; cross-CMU results enable SuMax, Counter Braids, and the
// max-interval task, §4/Appendix D).
type ParamKind uint8

// Parameter sources.
const (
	ParamConst    ParamKind = iota
	ParamMaxValue           // +∞: turns Cond-ADD into an unconditional ADD
	ParamPacketSize
	ParamTimestampUs
	ParamQueueLength
	ParamQueueDelay
	ParamCompressedKey // Sel picks which compressed key / sub-range
	ParamPrevResult    // result of the previous CMU in pipeline order
	ParamPrevOld       // pre-update value read by the previous CMU's SALU
)

// ParamSource describes one parameter binding.
type ParamSource struct {
	Kind  ParamKind
	Value uint32   // for ParamConst
	Sel   Selector // for ParamCompressedKey
}

// Convenience constructors.
func Const(v uint32) ParamSource { return ParamSource{Kind: ParamConst, Value: v} }
func MaxValue() ParamSource      { return ParamSource{Kind: ParamMaxValue} }
func PacketSize() ParamSource    { return ParamSource{Kind: ParamPacketSize} }
func TimestampUs() ParamSource   { return ParamSource{Kind: ParamTimestampUs} }
func QueueLength() ParamSource   { return ParamSource{Kind: ParamQueueLength} }
func QueueDelay() ParamSource    { return ParamSource{Kind: ParamQueueDelay} }
func CompressedKey(s Selector) ParamSource {
	return ParamSource{Kind: ParamCompressedKey, Sel: s}
}
func PrevResult() ParamSource { return ParamSource{Kind: ParamPrevResult} }
func PrevOld() ParamSource    { return ParamSource{Kind: ParamPrevOld} }

func (ps ParamSource) resolve(ctx *Context, keys []uint32) uint32 {
	switch ps.Kind {
	case ParamConst:
		return ps.Value
	case ParamMaxValue:
		return ^uint32(0)
	case ParamPacketSize:
		return ctx.Pkt.Size
	case ParamTimestampUs:
		return uint32(ctx.Pkt.TimestampNs / 1000)
	case ParamQueueLength:
		return ctx.Pkt.QueueLength
	case ParamQueueDelay:
		return ctx.Pkt.QueueDelayNs
	case ParamCompressedKey:
		return ps.Sel.Resolve(keys)
	case ParamPrevResult:
		return ctx.PrevResult
	case ParamPrevOld:
		return ctx.PrevOld
	default:
		return 0
	}
}

// TransformKind enumerates the preparation-stage parameter mappings FlyMon
// installs as TCAM entries (§3.2): "a CMU can dynamically establish a
// mapping function between the input and output parameters".
type TransformKind uint8

// Preparation-stage transforms.
const (
	// TransformNone passes parameters through.
	TransformNone TransformKind = iota
	// TransformCoupon maps p1 to a one-hot coupon bit per BeauCoup's draw
	// rule, dropping the update when no coupon is drawn. p2 is forced to 1
	// so AND-OR takes its OR branch.
	TransformCoupon
	// TransformBitSelect maps p1 to a one-hot bit (1 << (p1 mod width)) —
	// the Bloom-filter bit-packing optimization (§4, Existence Check).
	TransformBitSelect
	// TransformLZRank maps p1 to its HyperLogLog rank ρ: the 1-based
	// position of the leftmost 1-bit in the low (32 − Discard) bits.
	TransformLZRank
	// TransformIntervalSub maps p1 to saturating p1 − p2' where p2' is the
	// previous CMU's pre-update value (the max-interval subtraction, §4),
	// and drops the update when the previous CMU reported a new flow.
	TransformIntervalSub
	// TransformZeroGate maps p1 to IfZero when p1 == 0 and to Else
	// otherwise (the Counter Braids carry judgement, Appendix D).
	TransformZeroGate
)

// Transform is one preparation-stage mapping with its parameters.
type Transform struct {
	Kind TransformKind

	// Coupons and ProbLog2 parameterize TransformCoupon.
	Coupons  int
	ProbLog2 int

	// Width parameterizes TransformBitSelect (bits per bucket).
	Width int

	// Discard parameterizes TransformLZRank (top bits consumed by bucket
	// addressing and excluded from the rank).
	Discard int

	// IfZero and Else parameterize TransformZeroGate.
	IfZero uint32
	Else   uint32
}

// apply maps (p1, p2) under the transform; drop=true suppresses the
// stateful operation for this packet.
func (t Transform) apply(ctx *Context, p1, p2 uint32) (out1, out2 uint32, drop bool) {
	return t.applyVals(p1, p2, ctx.PrevOld, ctx.PrevNewFlow)
}

// applyVals is apply with the context's result-bus inputs passed by value.
// Transforms read nothing else from the Context, so the batch engine can
// resolve prevOld/prevNew from its per-frame bus arrays and share this
// kernel with the sequential path — the two stay equivalent by
// construction.
func (t Transform) applyVals(p1, p2, prevOld uint32, prevNew bool) (out1, out2 uint32, drop bool) {
	switch t.Kind {
	case TransformNone:
		return p1, p2, false
	case TransformCoupon:
		if t.ProbLog2 > 0 {
			idx := int(p1 >> uint(32-t.ProbLog2))
			if idx >= t.Coupons {
				return 0, 0, true
			}
			return 1 << uint(idx), 1, false
		}
		return 1, 1, false
	case TransformBitSelect:
		w := t.Width
		if w <= 0 {
			w = 32
		}
		return 1 << (p1 % uint32(w)), 1, false
	case TransformLZRank:
		rest := p1 << uint(t.Discard)
		rank := uint32(bits.LeadingZeros32(rest)) + 1
		if rest == 0 {
			rank = uint32(32 - t.Discard + 1)
		}
		return rank, p2, false
	case TransformIntervalSub:
		// prevOld carries the previous arrival time read by the upstream
		// CMU; prevNew reports whether the Bloom-filter CMU classified the
		// flow as new.
		if prevNew {
			return 0, p2, false // new flow: interval initialised to 0
		}
		if p1 < prevOld {
			return 0, p2, true
		}
		return p1 - prevOld, p2, false
	case TransformZeroGate:
		if p1 == 0 {
			return t.IfZero, p2, false
		}
		return t.Else, p2, false
	default:
		return p1, p2, false
	}
}

// TCAMEntries returns the TASK-SPECIFIC preparation-stage TCAM entries the
// transform installs at deployment time, for resource accounting and the
// delay model. The bit-select and leading-zero-rank mappings are
// task-independent (the same table serves every task) and are installed
// once with the data-plane program, so they cost nothing per deployment;
// coupon tables depend on the query's (c, γ, p) and are installed per task
// — which is why FlyMon-BeauCoup has the highest deployment delay
// (Table 3).
func (t Transform) TCAMEntries() int {
	switch t.Kind {
	case TransformCoupon:
		return t.Coupons + 1
	case TransformIntervalSub, TransformZeroGate:
		return 2
	default:
		return 0
	}
}

// Rule is one task's complete CMU configuration: the runtime state the
// control plane installs to bind a measurement task to this CMU. Rules are
// matched in priority (installation) order; the first filter hit wins,
// enforcing the one-access-per-packet constraint.
type Rule struct {
	TaskID int
	Filter packet.Filter

	Key Selector    // initialization: dynamic key selection
	P1  ParamSource // initialization: first parameter
	P2  ParamSource // initialization: second parameter

	Prep Transform // preparation: parameter mapping

	Mem         MemRange          // preparation: address translation target
	Translation TranslationMethod // which translation mechanism

	Op dataplane.StatefulOp // operation: selected stateful action

	// Prob enables probabilistic execution (0 < Prob ≤ 1): the rule fires
	// on a packet with this probability, the sampling workaround for tasks
	// with intersecting traffic on one CMU (§5.3, §6). Zero means 1.
	Prob float64

	// ChainMin makes the rule participate in a cross-group running-minimum
	// chain (SuMax(Sum), §4): p2 is taken from the context's running
	// minimum instead of P2, and a positive result lowers that minimum.
	ChainMin bool

	// DetectNew marks a Bloom-filter rule that classifies flows as
	// new/seen for downstream CMUs (max inter-arrival, §4): after the
	// operation, the context's new-flow flag is set when the bucket's
	// pre-update value did not yet contain the flow's bit.
	DetectNew bool

	// Disabled freezes the rule: its task-filter entry is withdrawn so it
	// matches no packets, but its register partition stays allocated and
	// readable — the paper's freeze-and-divert memory strategy (§6).
	Disabled bool
}

// Context is the per-packet PHV slice threaded through the CMU pipeline:
// the packet, the last CMU's result bus, and algorithm-level flags.
type Context struct {
	Pkt *packet.Packet

	// PrevResult and PrevOld carry the previous executed CMU's stateful
	// result and pre-update read value (the SALU output bus).
	PrevResult uint32
	PrevOld    uint32

	// PrevNewFlow is set by a Bloom-filter CMU when the current packet's
	// flow was not yet in the filter (max-interval support, §4).
	PrevNewFlow bool

	// RunningMin is the cross-CMU minimum chain used by SuMax(Sum); reset
	// to MaxUint32 per packet.
	RunningMin uint32

	// Shard is the worker's private register-lane index, or -1 when this
	// context writes through the shared CAS path. Only sharded worker-pool
	// contexts carry a lane (see WorkerPool); the compiled program routes
	// a rule to the lane only when its op is exactly mergeable.
	Shard int32

	// Tele, when the owning ProcCtx is armed for a telemetry-enabled
	// snapshot, aliases the worker's pending per-rule hit accumulators
	// (plain counts, flushed in batches into the striped registry counters;
	// see ProcCtx.teleFlush). Rules compiled with teleSlot >= 0 increment
	// Tele[teleSlot] on execution; with telemetry off every slot is -1 and
	// Tele stays nil.
	Tele []uint64

	// PrepDrops counts preparation-stage drops (coupon misses, interval
	// gates) since the last telemetry flush. It increments unconditionally —
	// one plain add on the already-rare drop path — and is only collected
	// when telemetry is armed.
	PrepDrops uint64

	// rng drives probabilistic execution, deterministic per pipeline.
	rng uint64
}

// coin returns true with probability p, advancing the context's xorshift
// state.
func (ctx *Context) coin(p float64) bool {
	if p >= 1 || p <= 0 {
		return true
	}
	ctx.rng ^= ctx.rng << 13
	ctx.rng ^= ctx.rng >> 7
	ctx.rng ^= ctx.rng << 17
	return float64(ctx.rng>>11)/(1<<53) < p
}

// CMU is one Composable Measurement Unit: a register (SALU + SRAM) plus the
// per-task rules currently installed on it.
type CMU struct {
	index    int
	register *dataplane.Register
	rules    []*Rule
}

// NewCMU builds CMU `index` of a group with the given register geometry.
func NewCMU(index, buckets, bitWidth int) *CMU {
	return &CMU{index: index, register: dataplane.NewRegister(buckets, bitWidth)}
}

// Register exposes the CMU's register for control-plane readout.
func (c *CMU) Register() *dataplane.Register { return c.register }

// Index returns the CMU's position within its group.
func (c *CMU) Index() int { return c.index }

// InstallRule appends a task rule. Returns an error when the rule's memory
// range does not fit the register or overlaps an installed rule's range,
// or when its filter intersects an installed rule's filter (the
// one-task-per-packet constraint) — unless both rules run probabilistically.
func (c *CMU) InstallRule(r *Rule) error {
	if err := c.validate(r); err != nil {
		return err
	}
	c.rules = append(c.rules, r)
	return nil
}

func (c *CMU) validate(r *Rule) error {
	if r.Mem.Buckets <= 0 || r.Mem.Base < 0 ||
		r.Mem.Base+r.Mem.Buckets > c.register.Size() {
		return fmt.Errorf("core: rule task %d memory range %+v exceeds register of %d buckets",
			r.TaskID, r.Mem, c.register.Size())
	}
	if r.Mem.Buckets&(r.Mem.Buckets-1) != 0 {
		return fmt.Errorf("core: rule task %d partition size %d is not a power of two",
			r.TaskID, r.Mem.Buckets)
	}
	if r.Mem.Base%r.Mem.Buckets != 0 {
		return fmt.Errorf("core: rule task %d base %d not aligned to partition size %d",
			r.TaskID, r.Mem.Base, r.Mem.Buckets)
	}
	for _, prev := range c.rules {
		if prev.TaskID == r.TaskID {
			return fmt.Errorf("core: task %d already installed on CMU %d", r.TaskID, c.index)
		}
		if prev.Mem.Overlaps(r.Mem) {
			return fmt.Errorf("core: task %d memory range overlaps task %d on CMU %d",
				r.TaskID, prev.TaskID, c.index)
		}
		probabilistic := (prev.Prob > 0 && prev.Prob < 1) && (r.Prob > 0 && r.Prob < 1)
		if prev.Filter.Intersects(r.Filter) && !probabilistic && !prev.Disabled && !r.Disabled {
			return fmt.Errorf("core: task %d filter %q intersects task %d on CMU %d (one access per packet)",
				r.TaskID, r.Filter, prev.TaskID, c.index)
		}
	}
	return nil
}

// RemoveRule uninstalls the rule for taskID and clears its memory
// partition. It reports whether a rule was removed.
func (c *CMU) RemoveRule(taskID int) bool {
	for i, r := range c.rules {
		if r.TaskID == taskID {
			c.register.ClearRange(r.Mem.Base, r.Mem.Buckets)
			c.rules = append(c.rules[:i], c.rules[i+1:]...)
			return true
		}
	}
	return false
}

// Rules returns the installed rules (do not mutate).
func (c *CMU) Rules() []*Rule { return c.rules }

// RuleFor returns the installed rule for taskID, or nil.
func (c *CMU) RuleFor(taskID int) *Rule {
	for _, r := range c.rules {
		if r.TaskID == taskID {
			return r
		}
	}
	return nil
}

// Process runs the CMU's four logical phases for one packet: first-match
// task selection, key/parameter initialization, preparation (address
// translation + parameter transform), and the stateful operation. It
// updates the context's result bus when a rule fires.
func (c *CMU) Process(ctx *Context, keys []uint32) {
	for _, r := range c.rules {
		if r.Disabled || !r.Filter.Matches(ctx.Pkt) {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && !ctx.coin(r.Prob) {
			return // sampled out: the packet consumed its one access slot
		}
		c.execute(ctx, r, keys)
		return // one task per packet per CMU
	}
}

func (c *CMU) execute(ctx *Context, r *Rule, keys []uint32) {
	executeRule(ctx, r, c.register, keys)
}

// executeRule runs one rule's initialization, preparation, and stateful
// operation against reg — the interpretive path's executor. The compiled
// snapshot fast path runs the same phases in the same order through
// compiledRule.exec (program.go), but against the CAS register variant
// (Register.Apply) because it serves many workers; the interpretive path
// is single-threaded and takes the plain ops (Register.ApplySeq). Keep the
// two in lockstep: the snapshot-equivalence tests require bit-identical
// register state.
func executeRule(ctx *Context, r *Rule, reg *dataplane.Register, keys []uint32) {
	addr := r.Key.Resolve(keys)
	index := Translate(addr, r.Mem, r.Translation)
	p1 := r.P1.resolve(ctx, keys)
	p2 := r.P2.resolve(ctx, keys)
	if r.ChainMin {
		p2 = ctx.RunningMin
	}
	p1, p2, drop := r.Prep.apply(ctx, p1, p2)
	if drop {
		return
	}
	result, old := reg.ApplySeq(r.Op, index, p1, p2)
	ctx.PrevResult = result
	ctx.PrevOld = old
	if r.ChainMin && result > 0 && result < ctx.RunningMin {
		ctx.RunningMin = result
	}
	if r.DetectNew {
		ctx.PrevNewFlow = old&p1 == 0
	}
}

// ReadTask returns a copy of the register partition assigned to taskID.
func (c *CMU) ReadTask(taskID int) ([]uint32, error) {
	r := c.RuleFor(taskID)
	if r == nil {
		return nil, fmt.Errorf("core: task %d not installed on CMU %d", taskID, c.index)
	}
	return c.register.ReadRange(r.Mem.Base, r.Mem.Buckets), nil
}
