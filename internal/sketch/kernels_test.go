package sketch

import (
	"fmt"
	"math/rand"
	"testing"
)

// kernelCases pairs each unrolled kernel with its scalar reference.
var kernelCases = []struct {
	name     string
	unrolled func(dst, src []uint32)
	scalar   func(dst, src []uint32)
}{
	{"add", mergeAddKernel, mergeAddScalar},
	{"max", mergeMaxKernel, mergeMaxScalar},
	{"or", mergeOrKernel, mergeOrScalar},
	{"xor", mergeXorKernel, mergeXorScalar},
}

// boundary values that stress the saturating-add carry path and the
// sign-ish top bit the other ops must not mishandle.
var kernelBoundaries = []uint32{
	0, 1, 2,
	1<<31 - 1, 1 << 31, 1<<31 + 1,
	^uint32(0) - 2, ^uint32(0) - 1, ^uint32(0),
}

// TestMergeKernelsMatchScalar is the property test: for random pairs at
// lengths that cover every unroll remainder (0..7 tail elements), the
// unrolled kernel must be bit-identical to the scalar reference.
func TestMergeKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lengths := []int{0, 1, 2, 7, 8, 9, 15, 16, 17, 63, 64, 65, 100, 1024, 1027}
	for _, kc := range kernelCases {
		for _, n := range lengths {
			for trial := 0; trial < 20; trial++ {
				a := make([]uint32, n)
				b := make([]uint32, n)
				for i := range a {
					// Mix uniform randomness with boundary values so
					// saturation actually fires.
					if rng.Intn(4) == 0 {
						a[i] = kernelBoundaries[rng.Intn(len(kernelBoundaries))]
					} else {
						a[i] = rng.Uint32()
					}
					if rng.Intn(4) == 0 {
						b[i] = kernelBoundaries[rng.Intn(len(kernelBoundaries))]
					} else {
						b[i] = rng.Uint32()
					}
				}
				want := append([]uint32(nil), a...)
				got := append([]uint32(nil), a...)
				kc.scalar(want, b)
				kc.unrolled(got, b)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("kernel %s n=%d trial=%d: index %d: unrolled %d != scalar %d (a=%d b=%d)",
							kc.name, n, trial, i, got[i], want[i], a[i], b[i])
					}
				}
			}
		}
	}
}

// TestMergeKernelsSaturationBoundary pins the exact saturation semantics:
// every boundary pair, cross product, in a single vector.
func TestMergeKernelsSaturationBoundary(t *testing.T) {
	var a, b []uint32
	for _, x := range kernelBoundaries {
		for _, y := range kernelBoundaries {
			a = append(a, x)
			b = append(b, y)
		}
	}
	got := append([]uint32(nil), a...)
	mergeAddKernel(got, b)
	for i := range a {
		want := a[i] + b[i]
		if want < a[i] {
			want = ^uint32(0)
		}
		if got[i] != want {
			t.Fatalf("satAdd(%d, %d) = %d, want %d", a[i], b[i], got[i], want)
		}
	}
}

// TestMergeXorRegisters covers the new exported XOR merge (length check +
// odd-sketch semantics: xor-ing a state with itself cancels).
func TestMergeXorRegisters(t *testing.T) {
	a := []uint32{1, 2, 0xffffffff, 0}
	b := append([]uint32(nil), a...)
	if err := MergeXorRegisters(b, a); err != nil {
		t.Fatalf("MergeXorRegisters: %v", err)
	}
	for i, v := range b {
		if v != 0 {
			t.Fatalf("self-xor index %d = %d, want 0", i, v)
		}
	}
	if err := MergeXorRegisters(a, []uint32{1}); err == nil {
		t.Fatal("length mismatch not rejected")
	}
}

// BenchmarkMergeRegisters measures the kernels against their scalar
// references over a register row sized like one CMU row in the fleet
// bench (16K buckets). The Makefile's bench-fleet target compares
// kernel=scalar vs kernel=unrolled medians via cmd/benchcmp.
func BenchmarkMergeRegisters(b *testing.B) {
	const n = 16384
	src := make([]uint32, n)
	rng := rand.New(rand.NewSource(7))
	for i := range src {
		src[i] = rng.Uint32() >> 8 // keep adds below saturation most of the time
	}
	dst := make([]uint32, n)
	for _, kc := range kernelCases {
		for _, k := range []struct {
			name string
			fn   func(dst, src []uint32)
		}{{"scalar", kc.scalar}, {"unrolled", kc.unrolled}} {
			b.Run(fmt.Sprintf("op=%s/kernel=%s", kc.name, k.name), func(b *testing.B) {
				b.SetBytes(n * 4)
				for i := 0; i < b.N; i++ {
					k.fn(dst, src)
				}
			})
		}
	}
}
