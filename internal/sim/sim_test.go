package sim

import "testing"

func TestBareAndFlyMonNeverDip(t *testing.T) {
	cfg := ForwardingConfig{Seed: 1}
	for _, kind := range []DeploymentKind{Bare, FlyMon} {
		series := SimulateForwarding(kind, cfg)
		if OutageSeconds(series, 10) != 0 {
			t.Fatalf("%s must never dip below 10 Gbps", kind)
		}
		mean := MeanGbps(series)
		if mean < 80 || mean > 93 {
			t.Fatalf("%s mean %.1f Gbps outside the paper's 80–93 band", kind, mean)
		}
	}
}

func TestStaticOutagesMatchCriticalEvents(t *testing.T) {
	cfg := ForwardingConfig{Seed: 2}
	cfg.Defaults()
	critical := 0
	for _, ev := range cfg.Events {
		if ev.Kind != EventRemoveTask {
			critical++
		}
	}
	series := SimulateForwarding(Static, ForwardingConfig{Seed: 2})
	outage := OutageSeconds(series, 10)
	// Each critical event interrupts 4–8 s (+ ramp).
	lo := float64(critical) * 4
	hi := float64(critical) * 9
	if outage < lo || outage > hi {
		t.Fatalf("static outage %.1f s for %d critical events, want [%.0f, %.0f]",
			outage, critical, lo, hi)
	}
}

func TestDeletionEventsAreFree(t *testing.T) {
	// A schedule of only deletion events must not interrupt Static at all
	// (the paper's optimization (i)).
	cfg := ForwardingConfig{
		Seed:   3,
		Events: []Event{{AtSecond: 20, Kind: EventRemoveTask}, {AtSecond: 40, Kind: EventRemoveTask}},
	}
	series := SimulateForwarding(Static, cfg)
	if OutageSeconds(series, 10) != 0 {
		t.Fatal("deletion-only schedule must not interrupt traffic")
	}
}

func TestSeriesShape(t *testing.T) {
	series := SimulateForwarding(Bare, ForwardingConfig{Seed: 4})
	if len(series) < 100 {
		t.Fatalf("series too short: %d samples", len(series))
	}
	if series[0].AtSecond != 0 {
		t.Fatal("series must start at t=0")
	}
	for i := 1; i < len(series); i++ {
		if series[i].AtSecond <= series[i-1].AtSecond {
			t.Fatal("sample times must increase")
		}
		if series[i].Gbps < 0 {
			t.Fatal("throughput cannot be negative")
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := SimulateForwarding(Static, ForwardingConfig{Seed: 5})
	b := SimulateForwarding(Static, ForwardingConfig{Seed: 5})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the series")
		}
	}
}

func TestHelpers(t *testing.T) {
	if MeanGbps(nil) != 0 || OutageSeconds(nil, 1) != 0 {
		t.Fatal("empty-series helpers must return 0")
	}
	if Bare.String() != "Bare" || FlyMon.String() != "FlyMon" || Static.String() != "Static" {
		t.Fatal("kind names wrong")
	}
}
