package controlplane

import (
	"sync"
	"testing"

	"flymon/internal/packet"
	"flymon/internal/telemetry"
	"flymon/internal/trace"
)

func telemetryController(t *testing.T, cfg Config) (*Controller, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	return NewController(cfg), reg
}

// TestTelemetryJournalRecordsMutations: every reconfiguration kind lands in
// the journal, in order, with a snapshot-version transition and a latency
// histogram sample; failed mutations are recorded with their error.
func TestTelemetryJournalRecordsMutations(t *testing.T) {
	c, reg := telemetryController(t, Config{Groups: 3, Buckets: 65536, BitWidth: 32})
	task, err := c.AddTask(freqSpec("hh", packet.Filter{}, 4096))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FreezeTask(task.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.ThawTask(task.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ResizeTask(task.ID, 8192); err != nil {
		t.Fatal(err)
	}
	if err := c.ResetTaskCounters(task.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.RekeyUnit(1, 0, packet.KeySrcIP); err != nil {
		t.Fatal(err)
	}
	c.Republish()
	if err := c.RemoveTask(task.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveTask(9999); err == nil {
		t.Fatal("removing an unknown task must fail")
	}

	evs := reg.Journal.Events()
	wantKinds := []string{"deploy", "freeze", "thaw", "resize", "reset", "rekey", "republish", "remove", "remove"}
	if len(evs) != len(wantKinds) {
		t.Fatalf("journal holds %d events, want %d: %+v", len(evs), len(wantKinds), evs)
	}
	for i, e := range evs {
		if e.Kind != wantKinds[i] {
			t.Errorf("event %d kind %q, want %q", i, e.Kind, wantKinds[i])
		}
	}
	// The failed remove is journaled with outcome and error text.
	last := evs[len(evs)-1]
	if last.OK || last.Err == "" || last.Task != 9999 {
		t.Errorf("failed remove recorded as %+v, want OK=false with error text and task 9999", last)
	}
	// Mutations that publish must move the version forward; the deploy goes
	// from the constructor's v1.
	if evs[0].VersionBefore != 1 || evs[0].VersionAfter != 2 {
		t.Errorf("deploy versions %d→%d, want 1→2", evs[0].VersionBefore, evs[0].VersionAfter)
	}
	for _, kind := range []string{"freeze", "thaw", "resize", "rekey", "republish"} {
		for _, e := range evs {
			if e.Kind == kind && e.VersionAfter <= e.VersionBefore {
				t.Errorf("%s versions %d→%d, want an advance", kind, e.VersionBefore, e.VersionAfter)
			}
		}
	}
	if reg.Version() != evs[len(evs)-1].VersionAfter {
		t.Errorf("registry version %d, journal ends at %d", reg.Version(), last.VersionAfter)
	}
	if got := reg.MutationLatency.Count(); got != uint64(len(wantKinds)) {
		t.Errorf("mutation latency histogram has %d samples, want %d", got, len(wantKinds))
	}
	// The removed task's counters are gone from reports.
	for _, r := range reg.Report().DataPlane.Rules {
		if r.Task == task.ID {
			t.Errorf("removed task %d still reported: %+v", task.ID, r)
		}
	}
}

// TestTelemetryReportEndToEnd: a scrape through Registry.Report (which
// folds via the controller) carries exact per-rule hits, stage activity,
// register occupancy, and the packet totals.
func TestTelemetryReportEndToEnd(t *testing.T) {
	c, reg := telemetryController(t, Config{Groups: 2, Buckets: 16384, BitWidth: 32})
	task, err := c.AddTask(freqSpec("hh", packet.Filter{}, 4096))
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(trace.Config{Flows: 500, Packets: 10_000, Seed: 7})
	c.ProcessBatch(tr.Packets)

	rep := reg.Report()
	dp := rep.DataPlane
	if dp.Packets != uint64(len(tr.Packets)) {
		t.Errorf("packets = %d, want %d", dp.Packets, len(tr.Packets))
	}
	var hits uint64
	rows := 0
	for _, r := range dp.Rules {
		if r.Task == task.ID {
			hits += r.Hits
			rows++
		}
	}
	if rows != task.D {
		t.Errorf("task reported on %d rows, want %d", rows, task.D)
	}
	if want := uint64(task.D) * uint64(len(tr.Packets)); hits != want {
		t.Errorf("task hits = %d, want %d (D × packets, whole-traffic task)", hits, want)
	}
	if dp.Stages.Initialization != hits || dp.Stages.Operation != hits {
		t.Errorf("stages I=%d O=%d, want both %d", dp.Stages.Initialization, dp.Stages.Operation, hits)
	}
	if dp.Stages.Compression == 0 {
		t.Error("stage C = 0, want > 0")
	}
	if len(dp.Registers) != 2*3 {
		t.Fatalf("%d register gauges, want 6 (2 groups × 3 CMUs)", len(dp.Registers))
	}
	occupied := 0
	for _, g := range dp.Registers {
		occupied += g.Occupied
		if g.Buckets != 16384 || g.BitWidth != 32 {
			t.Errorf("gauge geometry %+v, want 16384×32-bit", g)
		}
	}
	if occupied == 0 {
		t.Error("no occupied buckets reported after 10k packets")
	}
	if rep.ControlPlane.SnapshotVersion != 2 {
		t.Errorf("snapshot version %d, want 2 (constructor + deploy)", rep.ControlPlane.SnapshotVersion)
	}
}

// TestTelemetryRekeyUnit: on-the-fly key reconfiguration republishes and is
// bounds-checked.
func TestTelemetryRekeyUnit(t *testing.T) {
	c, reg := telemetryController(t, Config{Groups: 1, Buckets: 65536, BitWidth: 32})
	v0 := c.SnapshotVersion()
	if err := c.RekeyUnit(0, 0, packet.KeySrcIP); err != nil {
		t.Fatal(err)
	}
	if got := c.Pipeline().Group(0).UnitSpec(0).String(); got != packet.KeySrcIP.String() {
		t.Errorf("unit 0 keyed on %s after rekey, want %s", got, packet.KeySrcIP)
	}
	if c.SnapshotVersion() != v0+1 {
		t.Errorf("version %d after rekey, want %d (must republish)", c.SnapshotVersion(), v0+1)
	}
	if err := c.RekeyUnit(5, 0, packet.KeySrcIP); err == nil {
		t.Fatal("rekey of a nonexistent group must fail")
	}
	evs := reg.Journal.Events()
	if len(evs) != 2 || evs[0].Kind != "rekey" || !evs[0].OK || evs[1].OK {
		t.Fatalf("journal = %+v, want one ok rekey and one failed rekey", evs)
	}
}

// TestTelemetryFoldDuringProcessParallel: scraping full reports while the
// parallel packet path runs must be race-free (the -race build is the
// point of this test) and end exact once the writers quiesce.
func TestTelemetryFoldDuringProcessParallel(t *testing.T) {
	for _, shardedCfg := range []bool{false, true} {
		name := "shared"
		if shardedCfg {
			name = "sharded"
		}
		t.Run(name, func(t *testing.T) {
			c, reg := telemetryController(t, Config{
				Groups: 2, Buckets: 16384, BitWidth: 32, Workers: 4, ShardedState: shardedCfg,
			})
			defer c.Close()
			task, err := c.AddTask(freqSpec("hh", packet.Filter{}, 4096))
			if err != nil {
				t.Fatal(err)
			}
			tr := trace.Generate(trace.Config{Flows: 400, Packets: 8_000, Seed: 9})

			const rounds = 8
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						_ = reg.Report()
					}
				}
			}()
			for r := 0; r < rounds; r++ {
				c.ProcessParallel(tr.Packets, 4)
			}
			close(stop)
			wg.Wait()

			var hits uint64
			for _, row := range reg.Report().DataPlane.Rules {
				if row.Task == task.ID {
					hits += row.Hits
				}
			}
			want := uint64(task.D) * uint64(rounds*len(tr.Packets))
			if hits != want {
				t.Fatalf("task hits = %d after quiesce, want %d exactly", hits, want)
			}
			if shardedCfg {
				// The sharded packet path uses the plain per-lane update
				// kernel, which is the one Accesses counts (the shared
				// concurrent Apply path deliberately does not).
				var accesses uint64
				for _, g := range reg.Report().DataPlane.Registers {
					accesses += g.Accesses
				}
				if accesses == 0 {
					t.Error("sharded run reported 0 register accesses")
				}
			}
		})
	}
}
