package mmtrace

import (
	"encoding/binary"

	"flymon/internal/packet"
	"flymon/internal/trace"
)

// FrameView is a lazy view of one trace record: a window into the mapped
// buffer that decodes individual fields only when asked. Tools that touch a
// couple of fields per record (filters, samplers, tracedump's summary pass)
// skip the cost of decoding the other seven; paths that need the whole
// packet call Decode, which uses the exact codec trace.Reader uses, so both
// ingestion paths are bit-identical by construction.
//
// A FrameView aliases its Trace's mapping and is invalid after Close.
type FrameView []byte

// SrcIP returns the record's source address.
func (v FrameView) SrcIP() uint32 { return binary.LittleEndian.Uint32(v[0:]) }

// DstIP returns the record's destination address.
func (v FrameView) DstIP() uint32 { return binary.LittleEndian.Uint32(v[4:]) }

// SrcPort returns the record's source port.
func (v FrameView) SrcPort() uint16 { return binary.LittleEndian.Uint16(v[8:]) }

// DstPort returns the record's destination port.
func (v FrameView) DstPort() uint16 { return binary.LittleEndian.Uint16(v[10:]) }

// Proto returns the record's IP protocol number.
func (v FrameView) Proto() uint8 { return v[12] }

// Size returns the record's packet length in bytes.
func (v FrameView) Size() uint32 { return binary.LittleEndian.Uint32(v[16:]) }

// TimestampNs returns the record's capture timestamp.
func (v FrameView) TimestampNs() uint64 { return binary.LittleEndian.Uint64(v[20:]) }

// QueueLength returns the record's switch queue depth.
func (v FrameView) QueueLength() uint32 { return binary.LittleEndian.Uint32(v[28:]) }

// QueueDelayNs returns the record's queueing delay.
func (v FrameView) QueueDelayNs() uint32 { return binary.LittleEndian.Uint32(v[32:]) }

// Decode materializes the full packet into p.
func (v FrameView) Decode(p *packet.Packet) { trace.DecodeRecord(v, p) }

// ExtractMasked fills k with the record's masked canonical key — the
// FrameView counterpart of packet.ExtractMasked, producing the identical
// byte encoding straight from the record bytes with no packet.Packet in
// between. k is caller-owned scratch and is fully overwritten, padding
// included, so reuse across frames is safe. This is the batch digest
// kernel's per-frame primitive (core.Snapshot.ProcessFrames).
func (v FrameView) ExtractMasked(mask *[packet.NumFields]uint32, k *packet.CanonicalKey) {
	_ = v[35] // one bounds check for every field read below
	be32(k[0:4], v.SrcIP()&mask[packet.FieldSrcIP])
	be32(k[4:8], v.DstIP()&mask[packet.FieldDstIP])
	be16(k[8:10], uint16(uint32(v.SrcPort())&mask[packet.FieldSrcPort]))
	be16(k[10:12], uint16(uint32(v.DstPort())&mask[packet.FieldDstPort]))
	k[12] = uint8(uint32(v.Proto()) & mask[packet.FieldProto])
	be32(k[13:17], uint32(v.TimestampNs()/1000)&mask[packet.FieldTimestamp])
	k[17], k[18], k[19] = 0, 0, 0
}

// be32/be16 write the canonical key's big-endian field encoding (the same
// layout packet.ExtractMasked emits).
func be32(b []byte, x uint32) {
	b[0] = byte(x >> 24)
	b[1] = byte(x >> 16)
	b[2] = byte(x >> 8)
	b[3] = byte(x)
}

func be16(b []byte, x uint16) {
	b[0] = byte(x >> 8)
	b[1] = byte(x)
}
