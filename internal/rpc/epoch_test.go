package rpc

import (
	"testing"

	"flymon/internal/packet"
	"flymon/internal/trace"
)

// feed pushes a deterministic workload through the server's controller.
func feed(t *testing.T, s *Server, seed int64) *trace.Trace {
	t.Helper()
	tr := trace.Generate(trace.Config{Flows: 64, Packets: 2000, ZipfS: 1.1, Seed: seed})
	s.ctrl.ProcessBatch(tr.Packets)
	return tr
}

func TestPackedRegistersMatchPlain(t *testing.T) {
	s, c := startServer(t)
	task, err := c.AddTask(freqSpec("packed"))
	if err != nil {
		t.Fatal(err)
	}
	feed(t, s, 1)
	plain, err := c.ReadRegisters(task.ID)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := c.ReadRegistersPacked(task.ID)
	if err != nil {
		t.Fatal(err)
	}
	if packed.Rows != nil {
		t.Fatal("packed readout must not also carry JSON rows")
	}
	rows := packed.RegisterRows()
	if len(rows) != len(plain) {
		t.Fatalf("row count %d != %d", len(rows), len(plain))
	}
	for i := range rows {
		if len(rows[i]) != len(plain[i]) {
			t.Fatalf("row %d length %d != %d", i, len(rows[i]), len(plain[i]))
		}
		for j := range rows[i] {
			if rows[i][j] != plain[i][j] {
				t.Fatalf("row %d index %d: packed %d != plain %d", i, j, rows[i][j], plain[i][j])
			}
		}
	}
}

func TestUnpackRowsReusesBuffers(t *testing.T) {
	rows := [][]uint32{{1, 2, 3}, {4, 5}}
	packed := PackRows(rows)
	dst := [][]uint32{make([]uint32, 3), make([]uint32, 2)}
	keep0 := &dst[0][0]
	out := UnpackRows(packed, dst)
	if &out[0][0] != keep0 {
		t.Fatal("matching-geometry unpack must reuse the destination buffer")
	}
	for i := range rows {
		for j := range rows[i] {
			if out[i][j] != rows[i][j] {
				t.Fatalf("row %d index %d: %d != %d", i, j, out[i][j], rows[i][j])
			}
		}
	}
	// Mismatched geometry falls back to allocation, never panics.
	out = UnpackRows(packed, [][]uint32{make([]uint32, 1)})
	if len(out) != 2 || len(out[0]) != 3 {
		t.Fatalf("fallback shape = %d rows", len(out))
	}
}

func TestFrameRoundTripReusesBuffers(t *testing.T) {
	rows := [][]uint32{{1, 2, 3}, {4, 5}, {}}
	frame, lens := PackFrame(rows)
	if len(frame) != 4*5 || len(lens) != 3 || lens[0] != 3 || lens[2] != 0 {
		t.Fatalf("frame %d bytes lens %v", len(frame), lens)
	}
	dst := [][]uint32{make([]uint32, 3), make([]uint32, 2), nil}
	keep0 := &dst[0][0]
	out := UnpackFrame(frame, lens, dst)
	if &out[0][0] != keep0 {
		t.Fatal("matching-geometry unpack must reuse the destination buffer")
	}
	for i := range rows {
		for j := range rows[i] {
			if out[i][j] != rows[i][j] {
				t.Fatalf("row %d index %d: %d != %d", i, j, out[i][j], rows[i][j])
			}
		}
	}
	// Mismatched geometry falls back to allocation; a short frame truncates
	// instead of reading out of range.
	out = UnpackFrame(frame[:8], lens, nil)
	if len(out) != 3 || len(out[0]) != 2 || len(out[1]) != 0 {
		t.Fatalf("short-frame shape = %v", out)
	}
}

func TestEpochLifecycleOverRPC(t *testing.T) {
	s, c := startServer(t)
	et, err := c.EpochDeploy(freqSpec("ep"))
	if err != nil {
		t.Fatal(err)
	}
	if et.Epoch != 0 {
		t.Fatalf("fresh epoch task at epoch %d", et.Epoch)
	}

	// Nothing completed yet: read_epoch must answer with the classified
	// straggler signal, not a generic error.
	if _, err := c.ReadEpoch("ep", 0); !IsEpochUnavailable(err) {
		t.Fatalf("pre-rotation read = %v, want epoch-unavailable", err)
	}

	feed(t, s, 2)
	r1, err := c.EpochRotate("ep", 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Epoch != 1 {
		t.Fatalf("epoch after first rotate = %d", r1.Epoch)
	}
	// Idempotency: re-sending the same target must not advance again.
	r1b, err := c.EpochRotate("ep", 1)
	if err != nil || r1b.Epoch != 1 {
		t.Fatalf("re-sent rotate: epoch %d err %v", r1b.Epoch, err)
	}

	snap1, err := c.ReadEpoch("ep", 1)
	if err != nil {
		t.Fatal(err)
	}
	rows1 := snap1.FrameRows(nil)
	if snap1.Epoch != 1 || snap1.Current != 1 || len(rows1) == 0 {
		t.Fatalf("snapshot = epoch %d current %d rows %d", snap1.Epoch, snap1.Current, len(rows1))
	}
	sum := uint64(0)
	for _, row := range rows1 {
		for _, v := range row {
			sum += uint64(v)
		}
	}
	if sum == 0 {
		t.Fatal("epoch-1 snapshot is empty despite traffic")
	}

	// Traffic after the rotation lands in epoch 2; the epoch-1 snapshot
	// must stay frozen (coherence at the boundary).
	feed(t, s, 3)
	again, err := c.ReadEpoch("ep", 1)
	if err != nil {
		t.Fatal(err)
	}
	rowsAgain := again.FrameRows(nil)
	for i := range rows1 {
		for j := range rows1[i] {
			if rowsAgain[i][j] != rows1[i][j] {
				t.Fatalf("epoch-1 snapshot changed at row %d index %d", i, j)
			}
		}
	}

	// A daemon that missed rotations catches up in one idempotent call,
	// snapshotting every intermediate epoch.
	r4, err := c.EpochRotate("ep", 4)
	if err != nil || r4.Epoch != 4 {
		t.Fatalf("catch-up rotate: epoch %d err %v", r4.Epoch, err)
	}
	for e := 1; e <= 4; e++ {
		if _, err := c.ReadEpoch("ep", e); err != nil {
			t.Fatalf("epoch %d unreadable after catch-up: %v", e, err)
		}
	}

	// Epoch 5 rotated: retention (epochRetain=4) evicts epoch 1.
	if _, err := c.EpochRotate("ep", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadEpoch("ep", 1); !IsEpochUnavailable(err) {
		t.Fatalf("evicted epoch read = %v, want epoch-unavailable", err)
	}
	if snap, err := c.ReadEpoch("ep", 0); err != nil || snap.Epoch != 5 {
		t.Fatalf("latest-epoch read = %+v err %v", snap, err)
	}

	if err := c.EpochRemove("ep"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadEpoch("ep", 0); err == nil {
		t.Fatal("read after remove must fail")
	}
	if len(s.ctrl.Tasks()) != 0 {
		t.Fatalf("epoch remove leaked %d tasks", len(s.ctrl.Tasks()))
	}
}

func TestKeyIndicesMatchDaemonEstimate(t *testing.T) {
	s, c := startServer(t)
	task, err := c.AddTask(freqSpec("ki"))
	if err != nil {
		t.Fatal(err)
	}
	tr := feed(t, s, 4)
	key := packet.KeyFiveTuple.Extract(&tr.Packets[0])
	idx, err := c.KeyIndices(task.ID, key)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.ReadRegisters(task.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != len(rows) {
		t.Fatalf("%d indices for %d rows", len(idx), len(rows))
	}
	min := ^uint32(0)
	for i, ix := range idx {
		if int(ix) >= len(rows[i]) {
			t.Fatalf("row %d index %d out of range (%d buckets)", i, ix, len(rows[i]))
		}
		if v := rows[i][ix]; v < min {
			min = v
		}
	}
	est, err := c.Estimate(task.ID, key)
	if err != nil {
		t.Fatal(err)
	}
	if float64(min) != est {
		t.Fatalf("key-indices estimate %d != daemon estimate %v", min, est)
	}
}
