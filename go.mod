module flymon

go 1.22
