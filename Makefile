GO ?= go
BENCH_OUT ?= bench_results.txt
SCALING_OUT ?= bench_scaling.txt
TELEMETRY_OUT ?= bench_telemetry.txt
REPLAY_OUT ?= bench_replay.txt
FRAMES_OUT ?= bench_frames.txt
FLEET_OUT ?= bench_fleet.txt
KERNEL_OUT ?= bench_kernels.txt
TRACE_OUT ?= bench_trace.txt
FLEET_SIZES ?= 4,32,128,256
FLEET_COUNT ?= 5

# Hot-path benchmarks whose numbers back the concurrency claims in
# DESIGN.md. -cpu 1,4 shows the parallel path's scaling; -count=5 gives
# benchstat enough samples.
HOT_BENCH = BenchmarkPipelinePerPacket|BenchmarkProcessBatch|BenchmarkProcessParallel$$|BenchmarkCMUProcess|BenchmarkRegisterExecute

# The register-mode scaling suite: shared-CAS vs sharded-lane ProcessParallel
# on the heavy-hitter workload, plus the lane-drain cost.
SCALING_BENCH = BenchmarkProcessParallelModes|BenchmarkShardDrain

.PHONY: all check vet build test race race-concurrency chaos chaos-liveness bench bench-allocs \
	bench-full bench-scaling bench-smoke bench-telemetry bench-telemetry-smoke \
	bench-replay bench-replay-smoke bench-frames bench-frames-smoke bench-fleet \
	bench-fleet-smoke bench-trace bench-trace-smoke vet-merge bench-compare clean

all: check

check: vet build race chaos chaos-liveness vet-merge bench-smoke bench-telemetry-smoke \
	bench-replay-smoke bench-frames-smoke bench-fleet-smoke bench-trace-smoke bench-allocs

# chaos runs the control-channel fault-injection suite under -race: the
# faultnet transport tests, the resilient-client recovery paths (timeouts,
# resets, corrupt frames, desync, breaker), codec framing robustness, and
# the degraded-mode fleet tests. The fault plans use a fixed seed matrix
# (seeds 1..3 inside TestChaosSeedMatrix plus per-test seeds), so failures
# reproduce deterministically.
chaos:
	$(GO) test -race -count=1 -timeout 300s \
		-run 'Chaos|Fault|Breaker|Hung|Panic|Dispatch|Codec|Client|Reset|Corrupt|Truncat|Partial|Deterministic|Listener|Delays|ZeroPlan|TestFleet(Partial|Strict|Remove|OpTimeout|Deploy)' \
		./internal/faultnet/ ./internal/rpc/ ./internal/netwide/

# chaos-liveness runs the fast-failure fleet drills under -race: the pure
# BFD-style session state machine, the liveness + reconciler end-to-end
# drills (kill / restart / redeploy), the seeded fault matrix
# (partition / asymmetric one-way partition / restart storm / flapping
# link, seeds 1..3 via faultnet.Gate), the rpc client-vs-restarted-server
# breaker path, and the directional-blackhole Gate semantics. Every drill
# ends behind a goroutine-leak gate.
chaos-liveness:
	$(GO) test -race -count=1 -timeout 600s \
		-run 'SessionSM|Liveness|Reconcil|Hello|Restart|Gate|Incarnation' \
		./internal/faultnet/ ./internal/rpc/ ./internal/netwide/

# race-concurrency is the focused -race run over the parallel-path tests
# (snapshot fan-out, worker pool, controller reconfiguration under load);
# `race` runs everything, this one is the quick pre-commit gate.
race-concurrency:
	$(GO) test -race -count=1 -run 'Parallel|Pool|Concurrent|Snapshot|Reconfig' ./internal/core/ ./internal/controlplane/

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the hot-path microbenchmarks at 1 and 4 cores and saves the
# output for benchstat comparison against a previous run:
#   make bench BENCH_OUT=old.txt   # before a change
#   make bench BENCH_OUT=new.txt   # after
#   benchstat old.txt new.txt
bench:
	$(GO) test -run '^$$' -bench '$(HOT_BENCH)' -count=5 -cpu 1,4 -benchmem . | tee $(BENCH_OUT)

# bench-allocs runs the alloc-regression gates: the compiled hot path must
# stay at zero heap allocations per packet, and the mmap replay path must
# stay at zero allocations per batch once steady (TestReplayerNextZeroAlloc).
bench-allocs:
	$(GO) test -count=1 -run 'ZeroAlloc' -v ./internal/core/ ./internal/hashing/ \
		./internal/mmtrace/ ./internal/controlplane/

# bench-scaling runs the register-mode scaling suite across core counts
# with the fixed trace seed baked into bench_test.go: 5 samples per mode
# per -cpu so the benchcmp medians are robust to scheduler noise. The
# trailing benchcmp pass prints the shared-CAS → sharded delta per cpu
# count (negative = sharded faster); bench_scaling.txt is the committed
# artifact backing the scaling table in README.md.
bench-scaling:
	$(GO) test -run '^$$' -bench '$(SCALING_BENCH)' -count=5 -cpu 1,2,4 -benchmem -timeout 0 . | tee $(SCALING_OUT)
	$(GO) run ./cmd/benchcmp -pair 'mode=shared-cas:mode=sharded' $(SCALING_OUT)

# bench-smoke is the check-gate pass over the scaling suite: one short run
# to catch bit-rot in the mode benchmarks (a sharded-routing regression
# shows up here as a compile error or a panic, not a slow number).
bench-smoke:
	$(GO) test -run '^$$' -bench '$(SCALING_BENCH)' -benchtime 64x -cpu 2 .

# bench-telemetry proves the telemetry plane's hot-path overhead budget:
# the telemetry=on pipeline must stay at 0 allocs/op and within 3% of
# telemetry=off by median ns/op. bench_telemetry.txt is the committed
# artifact; the benchcmp pass prints the off → on delta.
bench-telemetry:
	$(GO) test -run '^$$' -bench 'BenchmarkPipelineTelemetry' -count=5 -cpu 1 -benchmem . | tee $(TELEMETRY_OUT)
	$(GO) run ./cmd/benchcmp -pair 'telemetry=off:telemetry=on' $(TELEMETRY_OUT)

# bench-telemetry-smoke is the check-gate pass: a short run that fails on
# any allocation in the telemetry=on hot path (bit-rot catches, not
# timing), plus the same benchcmp plumbing.
bench-telemetry-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkPipelineTelemetry' -benchtime 4096x -cpu 1 -benchmem . | \
		awk '/telemetry=on/ && $$(NF-1) != 0 { print "telemetry=on allocates:", $$0; bad = 1 } { print } END { exit bad }'

# bench-replay measures sustained trace-ingestion throughput on a
# 10M-packet trace: the seed reader path vs streaming ReadBatch vs the
# zero-copy mmap+ring path, at pure ingest and under the 9-task load.
# 5 samples per variant; the benchcmp pass prints the reader → mmap delta
# per task load (negative = mmap faster). bench_replay.txt is the committed
# artifact backing the ingestion numbers in DESIGN.md §14.
bench-replay:
	FLYMON_REPLAY_PACKETS=10000000 FLYMON_REPLAY_WARM=1 $(GO) test -run '^$$' \
		-bench 'BenchmarkReplayIngest' -count=5 -cpu 1 -benchmem -timeout 0 . | tee $(REPLAY_OUT)
	$(GO) run ./cmd/benchcmp -pair 'engine=reader:engine=mmap' $(REPLAY_OUT)

# bench-replay-smoke is the check-gate pass: one pass over a 50k-packet
# trace per engine to catch bit-rot in the replay harness (a broken engine
# shows up as an error or a packet-count mismatch, not a slow number).
bench-replay-smoke:
	FLYMON_REPLAY_PACKETS=50000 $(GO) test -run '^$$' -bench 'BenchmarkReplayIngest' \
		-benchtime 1x -cpu 1 .

# bench-frames measures the FrameView-native compiled engine against the
# packet-decoding mmap path on the 10M-packet trace: 5 samples per variant,
# page cache pre-warmed (FLYMON_REPLAY_WARM). The benchcmp pass prints the
# mmap → frames delta per task load (negative = frames faster);
# bench_frames.txt is the committed artifact backing DESIGN.md §15 and the
# tentpole's >= 2x tasks=9 claim.
bench-frames:
	FLYMON_REPLAY_PACKETS=10000000 FLYMON_REPLAY_WARM=1 $(GO) test -run '^$$' \
		-bench 'BenchmarkReplayIngest/engine=(mmap|frames)' -count=5 -cpu 1 -benchmem \
		-timeout 0 . | tee $(FRAMES_OUT)
	$(GO) run ./cmd/benchcmp -pair 'engine=mmap:engine=frames' $(FRAMES_OUT)

# bench-frames-smoke is the check-gate pass: one short frames-engine run to
# catch bit-rot in the vectorized path (a broken engine shows up as an
# error or packet-count mismatch, not a slow number).
bench-frames-smoke:
	FLYMON_REPLAY_PACKETS=50000 $(GO) test -run '^$$' \
		-bench 'BenchmarkReplayIngest/engine=frames' -benchtime 1x -cpu 1 .

# vet-merge is the merge-tree correctness gate: go vet plus the -race
# stress pass over the streaming k-ary reduction and the epoch-coherent
# query plane (bit-identity vs the flat fold, straggler chaos matrix,
# goroutine-leak gates).
vet-merge:
	$(GO) vet ./internal/netwide/ ./internal/sketch/ ./internal/rpc/ ./internal/tracing/
	$(GO) test -race -count=1 -timeout 600s -run 'MergeStream|Epoch|EnginesBitIdentical' \
		./internal/netwide/

# bench-fleet runs the network-wide query scaling sweep: in-process daemon
# fleets on loopback, flat sequential fold vs the parallel sketch-merge
# tree (packed binary frames) over identical register state, verified
# bit-identical before timing. 5 samples per engine per size; the benchcmp
# passes print the flat → tree delta (negative = tree faster) and the
# scalar → unrolled kernel delta. bench_fleet.txt is the committed artifact
# backing DESIGN.md §17.
bench-fleet:
	$(GO) run ./cmd/flymon-bench -fleet $(FLEET_SIZES) -fleet-count $(FLEET_COUNT) | tee $(FLEET_OUT)
	$(GO) run ./cmd/benchcmp -pair 'engine=flat:engine=tree' $(FLEET_OUT)
	$(GO) test -run '^$$' -bench 'BenchmarkMergeRegisters' -count=5 -cpu 1 ./internal/sketch/ | tee $(KERNEL_OUT)
	$(GO) run ./cmd/benchcmp -pair 'kernel=scalar:kernel=unrolled' $(KERNEL_OUT)

# bench-fleet-smoke is the check-gate pass: one tiny fleet per engine to
# catch bit-rot in the fleet bench harness (an engine divergence or a
# partial report fails the run outright, not just a slow number).
bench-fleet-smoke:
	$(GO) run ./cmd/flymon-bench -fleet 4 -fleet-count 1 > /dev/null

# bench-trace proves the tracing plane's control-op overhead budget: a
# traced control op (root span + client rpc span + daemon dispatch span)
# must stay within 3% of the untraced baseline by median ns/op, enforced
# on the benchcmp delta; tracing=armed (tracers attached, op untraced)
# shows the cost of the nil/validity checks alone. bench_trace.txt is the
# committed artifact. The data-plane hot path needs no pair here: nothing
# under internal/core or internal/controlplane imports tracing, so the
# per-packet path is structurally unchanged (bench-telemetry covers it).
bench-trace:
	$(GO) test -run '^$$' -bench 'BenchmarkControlOpTrace' -count=5 -cpu 1 -benchmem . | tee $(TRACE_OUT)
	$(GO) run ./cmd/benchcmp -pair 'tracing=off:tracing=armed' $(TRACE_OUT)
	$(GO) run ./cmd/benchcmp -pair 'tracing=off:tracing=on' $(TRACE_OUT) | \
		awk 'NR>1 { d=$$NF; sub(/%/,"",d); if (d+0 > 3) { print "traced control op over 3% budget:", $$0; bad=1 } } { print } END { exit bad }'

# bench-trace-smoke is the check-gate pass: a short run over all three
# variants to catch bit-rot in the traced control-op path (a broken span
# plumbing change shows up as an error, not a slow number).
bench-trace-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkControlOpTrace' -benchtime 64x -cpu 1 .

# bench-compare diffs two saved benchmark outputs by median ns/op:
#   make bench OLD=...        # or bench-scaling, with BENCH_OUT/SCALING_OUT
#   make bench-compare OLD=old.txt NEW=new.txt
bench-compare:
	$(GO) run ./cmd/benchcmp $(OLD) $(NEW)

# bench-full runs every benchmark once (figures + microbenchmarks).
bench-full:
	$(GO) test -run '^$$' -bench . -benchmem .

clean:
	$(GO) clean
