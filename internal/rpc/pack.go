package rpc

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Packed register encoding: each row of uint32 registers is serialized as
// little-endian bytes and travels as one base64 string inside the JSON
// frame. Against the legacy per-element JSON arrays this shrinks a 16K-
// bucket row from ~170 KB of digits to ~88 KB of base64 — and, far more
// importantly, replaces per-element number parsing with one base64 decode
// plus a byte-order copy. At 256 switches the codec stops being the fleet
// query's critical path.

// PackRow serializes one register row as little-endian uint32 bytes.
func PackRow(row []uint32) []byte {
	out := make([]byte, 4*len(row))
	for i, v := range row {
		binary.LittleEndian.PutUint32(out[4*i:], v)
	}
	return out
}

// PackRows serializes a register readout row by row.
func PackRows(rows [][]uint32) [][]byte {
	out := make([][]byte, len(rows))
	for i, row := range rows {
		out[i] = PackRow(row)
	}
	return out
}

// UnpackRows decodes packed rows. When dst has the same geometry (row
// count and per-row lengths) it is filled and returned without
// allocating — the fleet merge tree recycles leaf buffers through this
// path. Any shape mismatch falls back to fresh allocation for the
// offending row.
func UnpackRows(packed [][]byte, dst [][]uint32) [][]uint32 {
	if len(dst) != len(packed) {
		dst = make([][]uint32, len(packed))
	}
	for i, p := range packed {
		n := len(p) / 4
		row := dst[i]
		if len(row) != n {
			row = make([]uint32, n)
			dst[i] = row
		}
		for j := 0; j < n; j++ {
			row[j] = binary.LittleEndian.Uint32(p[4*j:])
		}
	}
	return dst
}

// PackFrame serializes a whole readout as one contiguous little-endian
// buffer — the binary frame side-channel's payload — plus the per-row
// register counts the receiver needs to slice it back apart. One
// contiguous buffer means the server transmits a stored epoch snapshot
// with zero per-request encoding work.
func PackFrame(rows [][]uint32) ([]byte, []int) {
	total := 0
	lens := make([]int, len(rows))
	for i, row := range rows {
		lens[i] = len(row)
		total += len(row)
	}
	frame := make([]byte, 4*total)
	off := 0
	for _, row := range rows {
		for _, v := range row {
			binary.LittleEndian.PutUint32(frame[off:], v)
			off += 4
		}
	}
	return frame, lens
}

// UnpackFrame decodes a contiguous frame back into rows. Like UnpackRows,
// a dst with matching geometry is filled in place (the merge tree recycles
// leaf buffers through here); mismatched rows are allocated fresh. A frame
// shorter than the announced geometry truncates the trailing rows to what
// is actually present rather than reading out of range.
func UnpackFrame(frame []byte, lens []int, dst [][]uint32) [][]uint32 {
	if len(dst) != len(lens) {
		dst = make([][]uint32, len(lens))
	}
	off := 0
	for i, n := range lens {
		if remain := (len(frame) - off) / 4; n > remain {
			n = remain
		}
		row := dst[i]
		if len(row) != n {
			row = make([]uint32, n)
			dst[i] = row
		}
		for j := 0; j < n; j++ {
			row[j] = binary.LittleEndian.Uint32(frame[off:])
			off += 4
		}
	}
	return dst
}

// epochUnavailableToken marks "this daemon cannot serve that epoch (yet)"
// errors on the wire, so the fleet query plane can tell a straggling
// switch (poll again / skip per policy) from a broken one (fail). The
// control channel transports errors as strings, so classification is by
// token — the same idiom the repo uses for "no task".
const epochUnavailableToken = "epoch-unavailable"

// IsEpochUnavailable reports whether err is a daemon-side "epoch not
// readable here (yet)" rejection — the straggler signal.
func IsEpochUnavailable(err error) bool {
	return err != nil && strings.Contains(err.Error(), epochUnavailableToken)
}

// EpochUnavailableHave extracts the daemon's latest completed epoch from
// an epoch-unavailable error (-1 when absent), so straggler reports can
// say how far behind a switch is. Both sides of the format live in this
// package (see epochUnavailable in epoch.go).
func EpochUnavailableHave(err error) int {
	if err == nil {
		return -1
	}
	msg := err.Error()
	i := strings.LastIndex(msg, "latest completed epoch ")
	if i < 0 {
		return -1
	}
	have := -1
	if _, serr := fmt.Sscanf(msg[i:], "latest completed epoch %d", &have); serr != nil {
		return -1
	}
	return have
}

// IsNoEpochTask reports whether err is a daemon-side "no epoch task by
// that name" rejection — which an idempotent fleet-wide remove treats as
// already removed.
func IsNoEpochTask(err error) bool {
	return err != nil && strings.Contains(err.Error(), "no epoch task")
}
