package sketch

import (
	"math"
	"testing"
	"testing/quick"

	"flymon/internal/metrics"
	"flymon/internal/packet"
	"flymon/internal/trace"
)

func genTrace(flows, packets int, seed int64) *trace.Trace {
	return trace.Generate(trace.Config{Flows: flows, Packets: packets, Seed: seed})
}

// --- CMS ---

func TestCMSNeverUnderestimatesProperty(t *testing.T) {
	s := NewCMS(packet.KeyFiveTuple, 3, 256)
	truth := map[packet.CanonicalKey]uint32{}
	f := func(src uint32, sp uint16) bool {
		p := packet.Packet{SrcIP: src, SrcPort: sp, Proto: 6}
		s.AddPacket(&p)
		k := packet.KeyFiveTuple.Extract(&p)
		truth[k]++
		return s.EstimateKey(k) >= truth[k]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCMSAccuracy(t *testing.T) {
	s := NewCMS(packet.KeyFiveTuple, 3, 1<<14)
	tr := genTrace(2000, 100_000, 1)
	exact := NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		s.AddPacket(&tr.Packets[i])
		exact.AddPacket(&tr.Packets[i])
	}
	est := map[packet.CanonicalKey]uint64{}
	for k := range exact.Counts() {
		est[k] = uint64(s.EstimateKey(k))
	}
	if are := metrics.ARE(exact.Counts(), est); are > 0.1 {
		t.Fatalf("CMS ARE %.3f with ample memory", are)
	}
}

func TestCMSGeometry(t *testing.T) {
	s := NewCMS(packet.KeySrcIP, 2, 1000)
	if s.Width() != 1024 {
		t.Fatalf("width must round to a power of two, got %d", s.Width())
	}
	if s.Depth() != 2 || s.MemoryBytes() != 2*1024*4 {
		t.Fatalf("geometry wrong: d=%d mem=%d", s.Depth(), s.MemoryBytes())
	}
	if len(s.Row(0)) != 1024 {
		t.Fatal("row accessor wrong")
	}
	s.Add(&packet.Packet{SrcIP: 1}, 5)
	s.Reset()
	if s.Estimate(&packet.Packet{SrcIP: 1}) != 0 {
		t.Fatal("reset must clear counters")
	}
}

func TestCMSSaturatingAdd(t *testing.T) {
	if satAdd32(^uint32(0)-1, 5) != ^uint32(0) {
		t.Fatal("satAdd32 must clamp at max")
	}
	if satAdd32(1, 2) != 3 {
		t.Fatal("satAdd32 must add normally")
	}
}

// --- Bloom / Linear Counting ---

func TestBloomNoFalseNegativesProperty(t *testing.T) {
	b := NewBloom(packet.KeyFiveTuple, 1<<12, 3)
	f := func(src, dst uint32) bool {
		p := packet.Packet{SrcIP: src, DstIP: dst, Proto: 6}
		b.Insert(&p)
		return b.Contains(&p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	const n = 1000
	b := NewBloom(packet.KeyFiveTuple, 1<<14, OptimalK(1<<14, n))
	ins := genTrace(n, n*2, 2)
	member := NewExactMembership(packet.KeyFiveTuple)
	for i := range ins.Packets {
		b.Insert(&ins.Packets[i])
		member.Insert(&ins.Packets[i])
	}
	probe := genTrace(5000, 5000, 3)
	fp, neg := 0, 0
	for i := range probe.Packets {
		if member.Contains(&probe.Packets[i]) {
			continue
		}
		neg++
		if b.Contains(&probe.Packets[i]) {
			fp++
		}
	}
	// Theory: (1 − e^{−kn/m})^k ≈ 0.2% for these parameters; allow slack.
	if rate := float64(fp) / float64(neg); rate > 0.02 {
		t.Fatalf("FP rate %.4f too high", rate)
	}
}

func TestOptimalK(t *testing.T) {
	if OptimalK(1<<14, 1000) < 2 {
		t.Fatal("optimal k for 16:1 bits:keys should exceed 1")
	}
	if OptimalK(64, 10_000) != 1 {
		t.Fatal("overloaded filter should use k=1")
	}
	if OptimalK(1024, 0) != 1 {
		t.Fatal("zero keys defaults to 1")
	}
}

func TestLinearCountingAccuracy(t *testing.T) {
	lc := NewLinearCounting(packet.KeyFiveTuple, 1<<16)
	const flows = 8000
	tr := genTrace(flows, flows*2, 4)
	exact := NewExactCardinality(packet.KeyFiveTuple)
	for i := range tr.Packets {
		lc.Insert(&tr.Packets[i])
		exact.AddPacket(&tr.Packets[i])
	}
	if re := metrics.RE(float64(exact.Cardinality()), lc.Estimate()); re > 0.05 {
		t.Fatalf("LC RE %.3f", re)
	}
}

func TestLinearCountingSaturated(t *testing.T) {
	lc := NewLinearCounting(packet.KeySrcIP, 64)
	for i := 0; i < 10_000; i++ {
		lc.Insert(&packet.Packet{SrcIP: uint32(i)})
	}
	est := lc.Estimate()
	if math.IsInf(est, 1) || math.IsNaN(est) || est <= 0 {
		t.Fatalf("saturated LC must degrade gracefully, got %v", est)
	}
}

// --- HLL ---

func TestHLLAccuracyAcrossScales(t *testing.T) {
	for _, flows := range []int{1000, 20_000, 100_000} {
		h := NewHLL(packet.KeyFiveTuple, 12) // 4096 registers
		exact := NewExactCardinality(packet.KeyFiveTuple)
		tr := genTrace(flows, flows, int64(flows))
		for i := range tr.Packets {
			h.AddPacket(&tr.Packets[i])
			exact.AddPacket(&tr.Packets[i])
		}
		re := metrics.RE(float64(exact.Cardinality()), h.Estimate())
		// Standard error ≈ 1.04/√4096 ≈ 1.6%; allow 4 sigma.
		if re > 0.07 {
			t.Fatalf("HLL RE %.3f at %d flows", re, flows)
		}
	}
}

func TestHLLForBytes(t *testing.T) {
	h := NewHLLForBytes(packet.KeyFiveTuple, 4096)
	if h.MemoryBytes() > 4096 {
		t.Fatalf("HLL exceeded budget: %d", h.MemoryBytes())
	}
	if h.Precision() != 12 {
		t.Fatalf("precision = %d, want 12", h.Precision())
	}
}

func TestHLLEstimateFromRanksMatchesNative(t *testing.T) {
	h := NewHLL(packet.KeyFiveTuple, 10)
	tr := genTrace(5000, 10_000, 5)
	for i := range tr.Packets {
		h.AddPacket(&tr.Packets[i])
	}
	native := h.Estimate()
	fromRanks := HLLEstimateFromRanks(h.Registers(), 32-h.Precision())
	if math.Abs(native-fromRanks)/native > 0.02 {
		t.Fatalf("estimates diverge: native %.0f, from-ranks %.0f", native, fromRanks)
	}
}

func TestHLLInvalidPrecisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("precision 0 must panic")
		}
	}()
	NewHLL(packet.KeySrcIP, 0)
}

// --- SuMax ---

func TestSuMaxNeverWorseThanTruth(t *testing.T) {
	s := NewSuMax(packet.KeyFiveTuple, 3, 1<<12)
	tr := genTrace(1000, 50_000, 6)
	exact := NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		s.AddPacket(&tr.Packets[i])
		exact.AddPacket(&tr.Packets[i])
	}
	for k, truth := range exact.Counts() {
		if est := uint64(s.EstimateKey(k)); est < truth {
			t.Fatalf("SuMax underestimated %d < %d", est, truth)
		}
	}
}

func TestSuMaxTighterThanCMSUnderPressure(t *testing.T) {
	cms := NewCMS(packet.KeyFiveTuple, 3, 1<<10)
	sm := NewSuMax(packet.KeyFiveTuple, 3, 1<<10)
	tr := genTrace(4000, 150_000, 7)
	exact := NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		cms.AddPacket(&tr.Packets[i])
		sm.AddPacket(&tr.Packets[i])
		exact.AddPacket(&tr.Packets[i])
	}
	var cmsTot, smTot float64
	for k, truth := range exact.Counts() {
		cmsTot += float64(cms.EstimateKey(k)-uint32(truth)) / float64(truth)
		smTot += float64(sm.EstimateKey(k)-uint32(truth)) / float64(truth)
	}
	if smTot > cmsTot {
		t.Fatalf("SuMax total overestimate %.1f exceeds CMS %.1f", smTot, cmsTot)
	}
}

func TestSuMaxMaxMode(t *testing.T) {
	s := NewSuMax(packet.KeyIPPair, 3, 1<<12)
	tr := genTrace(500, 20_000, 8)
	exact := NewExactMax(packet.KeyIPPair)
	for i := range tr.Packets {
		s.UpdateMax(&tr.Packets[i], tr.Packets[i].QueueLength)
		exact.Add(&tr.Packets[i], tr.Packets[i].QueueLength)
	}
	for k, truth := range exact.Values() {
		if est := uint64(s.EstimateKey(k)); est < truth {
			t.Fatalf("SuMax(Max) lost a maximum: %d < %d", est, truth)
		}
	}
}

// --- Tower ---

func TestTowerAccuracyAndSaturation(t *testing.T) {
	tw := NewTower(packet.KeyFiveTuple, []TowerLevelSpec{
		{Bits: 4, Counters: 1 << 14}, {Bits: 8, Counters: 1 << 13}, {Bits: 16, Counters: 1 << 12},
	})
	tr := genTrace(2000, 100_000, 9)
	exact := NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		tw.AddPacket(&tr.Packets[i])
		exact.AddPacket(&tr.Packets[i])
	}
	est := map[packet.CanonicalKey]uint64{}
	for k := range exact.Counts() {
		est[k] = uint64(tw.EstimateKey(k))
	}
	if are := metrics.ARE(exact.Counts(), est); are > 0.25 {
		t.Fatalf("Tower ARE %.3f", are)
	}
}

func TestTowerAllSaturatedReturnsWidest(t *testing.T) {
	tw := NewTower(packet.KeySrcIP, []TowerLevelSpec{{Bits: 2, Counters: 4}, {Bits: 4, Counters: 4}})
	p := packet.Packet{SrcIP: 1}
	for i := 0; i < 100; i++ {
		tw.AddPacket(&p)
	}
	if got := tw.Estimate(&p); got != 15 {
		t.Fatalf("fully saturated estimate = %d, want widest level's max 15", got)
	}
}

func TestTowerForBytes(t *testing.T) {
	tw := NewTowerForBytes(packet.KeyFiveTuple, 64*1024)
	if tw.MemoryBytes() > 96*1024 {
		t.Fatalf("tower memory %d far above budget", tw.MemoryBytes())
	}
}

func TestTowerInvalidLevelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid level must panic")
		}
	}()
	NewTower(packet.KeySrcIP, []TowerLevelSpec{{Bits: 40, Counters: 8}})
}

// --- Counter Braids ---

func TestCounterBraidsDecode(t *testing.T) {
	cb := NewCounterBraids(packet.KeyFiveTuple, 3, 1<<12, 8, 2, 1<<9)
	tr := genTrace(500, 60_000, 10)
	exact := NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		cb.AddPacket(&tr.Packets[i])
		exact.AddPacket(&tr.Packets[i])
	}
	flows := make([]packet.CanonicalKey, 0, exact.Flows())
	for k := range exact.Counts() {
		flows = append(flows, k)
	}
	decoded := cb.Decode(flows, 10)
	exactCount := 0
	for k, truth := range exact.Counts() {
		if decoded[k] == truth {
			exactCount++
		}
	}
	if frac := float64(exactCount) / float64(len(flows)); frac < 0.85 {
		t.Fatalf("CB decoded only %.1f%% of flows exactly", frac*100)
	}
}

func TestCounterBraidsForBytes(t *testing.T) {
	cb := NewCounterBraidsForBytes(packet.KeyFiveTuple, 64*1024)
	if cb.MemoryBytes() > 2*64*1024 {
		t.Fatalf("CB memory %d far above budget", cb.MemoryBytes())
	}
	cb.AddPacket(&packet.Packet{SrcIP: 1})
	cb.Reset()
}

func TestCounterBraidsInvalidWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("layer-1 width 32 must panic")
		}
	}()
	NewCounterBraids(packet.KeySrcIP, 3, 64, 32, 2, 16)
}

// --- Count Sketch / UnivMon ---

func TestCountSketchUnbiasedness(t *testing.T) {
	cs := NewCountSketch(packet.KeyFiveTuple, 3, 1<<12)
	tr := genTrace(2000, 100_000, 11)
	exact := NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		cs.Add(&tr.Packets[i], 1)
		exact.AddPacket(&tr.Packets[i])
	}
	// Signed errors should roughly cancel (unlike CMS).
	var signed float64
	n := 0
	for k, truth := range exact.Counts() {
		signed += float64(cs.EstimateKey(k)) - float64(truth)
		n++
	}
	mean := signed / float64(n)
	if math.Abs(mean) > 3 {
		t.Fatalf("CountSketch mean signed error %.2f; estimator is biased", mean)
	}
}

func TestCountSketchHeavyFlowsAccurate(t *testing.T) {
	cs := NewCountSketch(packet.KeyFiveTuple, 3, 1<<12)
	tr := genTrace(2000, 100_000, 12)
	exact := NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		cs.Add(&tr.Packets[i], 1)
		exact.AddPacket(&tr.Packets[i])
	}
	for k, truth := range exact.Counts() {
		if truth < 2000 {
			continue
		}
		est := float64(cs.EstimateKey(k))
		if metrics.RE(float64(truth), est) > 0.1 {
			t.Fatalf("heavy flow (%d) estimated %v", truth, est)
		}
	}
}

func TestUnivMonHeavyHitters(t *testing.T) {
	u := NewUnivMon(packet.KeyFiveTuple, 8, 3, 1<<12, 128)
	tr := genTrace(3000, 200_000, 13)
	exact := NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		u.AddPacket(&tr.Packets[i])
		exact.AddPacket(&tr.Packets[i])
	}
	const threshold = 1024
	truth := exact.HeavyHitters(threshold)
	reported := u.HeavyHitters(threshold)
	universe := map[packet.CanonicalKey]bool{}
	for k := range exact.Counts() {
		universe[k] = true
	}
	f1 := metrics.Classify(universe, truth, reported).F1()
	if f1 < 0.85 {
		t.Fatalf("UnivMon HH F1 %.3f", f1)
	}
}

func TestUnivMonEntropyAndCardinality(t *testing.T) {
	u := NewUnivMon(packet.KeyFiveTuple, 8, 3, 1<<13, 256)
	tr := genTrace(4000, 150_000, 14)
	exact := NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		u.AddPacket(&tr.Packets[i])
		exact.AddPacket(&tr.Packets[i])
	}
	counts := make([]uint64, 0, exact.Flows())
	for _, c := range exact.Counts() {
		counts = append(counts, c)
	}
	trueH := metrics.Entropy(counts)
	if re := metrics.RE(trueH, u.Entropy()); re > 0.25 {
		t.Fatalf("UnivMon entropy RE %.3f (true %.3f, est %.3f)", re, trueH, u.Entropy())
	}
	if card := u.Cardinality(); card <= 0 {
		t.Fatalf("UnivMon cardinality %.0f must be positive", card)
	}
}

func TestUnivMonSamplingIsNested(t *testing.T) {
	u := NewUnivMon(packet.KeyFiveTuple, 6, 3, 256, 16)
	k := packet.KeyFiveTuple.Extract(&packet.Packet{SrcIP: 77, Proto: 6})
	// sampledAt(ℓ) true ⇒ sampledAt(ℓ′) true for all ℓ′ < ℓ.
	deepest := 0
	for l := 1; l < 6; l++ {
		if u.sampledAt(k, l) {
			if deepest != l-1 {
				t.Fatalf("sampling not nested: level %d sampled but %d not", l, deepest+1)
			}
			deepest = l
		}
	}
}

// --- BeauCoup ---

func TestCouponConfigValidate(t *testing.T) {
	good := CouponConfig{Coupons: 8, Collect: 4, ProbLog2: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []CouponConfig{
		{Coupons: 0, Collect: 1, ProbLog2: 1},
		{Coupons: 33, Collect: 1, ProbLog2: 6},
		{Coupons: 8, Collect: 9, ProbLog2: 4},
		{Coupons: 8, Collect: 0, ProbLog2: 4},
		{Coupons: 8, Collect: 4, ProbLog2: 2}, // 8 coupons at 1/4 overflows unit mass
		{Coupons: 8, Collect: 4, ProbLog2: 30},
	}
	for i, cc := range bad {
		if cc.Validate() == nil {
			t.Errorf("case %d (%+v) must fail validation", i, cc)
		}
	}
}

func TestSolveCouponConfigHitsThreshold(t *testing.T) {
	for _, threshold := range []int{10, 100, 512, 1024, 10_000} {
		cc := SolveCouponConfig(threshold)
		if err := cc.Validate(); err != nil {
			t.Fatalf("threshold %d: invalid config: %v", threshold, err)
		}
		e := cc.ExpectedDraws()
		if e < float64(threshold)/2 || e > float64(threshold)*2 {
			t.Fatalf("threshold %d: expected draws %.1f off target", threshold, e)
		}
	}
}

func TestCouponDrawDistribution(t *testing.T) {
	cc := CouponConfig{Coupons: 8, Collect: 8, ProbLog2: 4}
	counts := make([]int, 9)
	const n = 1 << 16
	for i := 0; i < n; i++ {
		h := uint32(i) * 2654435761
		c := cc.Draw(h)
		if c < -1 || c >= 8 {
			t.Fatalf("draw out of range: %d", c)
		}
		counts[c+1]++
	}
	// Each coupon drawn with p = 1/16; half the draws miss.
	for i := 1; i <= 8; i++ {
		want := n / 16
		if counts[i] < want*8/10 || counts[i] > want*12/10 {
			t.Fatalf("coupon %d drawn %d times, want ≈ %d", i-1, counts[i], want)
		}
	}
	if counts[0] < n*4/10 {
		t.Fatalf("no-draw rate %d too low", counts[0])
	}
}

func TestBeauCoupDetection(t *testing.T) {
	const threshold = 256
	b := NewBeauCoup(packet.KeyDstIP, packet.KeySrcIP, SolveCouponConfig(threshold), 3, 1<<12)
	tr := genTrace(2000, 40_000, 15)
	victim := packet.IPv4(8, 8, 8, 8)
	tr.InjectDDoS(victim, 4*threshold, 1, 16)
	exact := NewExactDistinct(packet.KeyDstIP, packet.KeySrcIP)
	for i := range tr.Packets {
		b.AddPacket(&tr.Packets[i])
		exact.AddPacket(&tr.Packets[i])
	}
	vk := packet.KeyDstIP.Extract(&packet.Packet{DstIP: victim})
	if !b.Reported()[vk] {
		t.Fatalf("victim with %d distinct sources not reported (coupons %d/%d)",
			exact.Count(vk), b.CollectedCoupons(vk), b.Config().Collect)
	}
	// A quiet key far below threshold must not be reported.
	falseAlarms := 0
	for k, c := range exact.Counts() {
		if c < uint64(threshold)/8 && b.Reported()[k] {
			falseAlarms++
		}
	}
	if falseAlarms > len(exact.Counts())/50 {
		t.Fatalf("%d false alarms among quiet keys", falseAlarms)
	}
}

func TestBeauCoupEstimateMonotone(t *testing.T) {
	cc := CouponConfig{Coupons: 32, Collect: 32, ProbLog2: 6}
	prev := 0.0
	for j := 1; j <= 32; j++ {
		c := cc
		c.Collect = j
		e := c.ExpectedDraws()
		if e <= prev {
			t.Fatalf("expected draws not monotone at %d coupons", j)
		}
		prev = e
	}
}

func TestBeauCoupCardinalityEstimator(t *testing.T) {
	bc := NewBeauCoupCardinalityForBytes(packet.KeyFiveTuple, 16)
	tr := genTrace(5000, 10_000, 17)
	exact := NewExactCardinality(packet.KeyFiveTuple)
	for i := range tr.Packets {
		bc.AddPacket(&tr.Packets[i])
		exact.AddPacket(&tr.Packets[i])
	}
	re := metrics.RE(float64(exact.Cardinality()), bc.Estimate())
	if re > 0.5 {
		t.Fatalf("coupon cardinality RE %.3f with 16 bytes", re)
	}
	if bc.MemoryBytes() > 16 {
		t.Fatalf("memory %d exceeds budget", bc.MemoryBytes())
	}
}

// --- Exact accumulators ---

func TestExactFrequencyHelpers(t *testing.T) {
	e := NewExactFrequency(packet.KeySrcIP)
	p1 := packet.Packet{SrcIP: 1, Size: 100}
	p2 := packet.Packet{SrcIP: 2, Size: 200}
	e.AddPacket(&p1)
	e.AddPacket(&p1)
	e.AddBytes(&p2)
	if e.Flows() != 2 {
		t.Fatalf("flows = %d", e.Flows())
	}
	hh := e.HeavyHitters(2)
	if len(hh) != 2 { // flow1 has 2 packets; flow2 has 200 bytes
		t.Fatalf("heavy hitters = %d", len(hh))
	}
	dist := e.SizeDistribution()
	if dist[2] != 1 || dist[200] != 1 {
		t.Fatalf("size distribution = %v", dist)
	}
}

func TestExactDistinct(t *testing.T) {
	e := NewExactDistinct(packet.KeyDstIP, packet.KeySrcIP)
	for i := 0; i < 10; i++ {
		e.AddPacket(&packet.Packet{DstIP: 1, SrcIP: uint32(i % 5)})
	}
	k := packet.KeyDstIP.Extract(&packet.Packet{DstIP: 1})
	if e.Count(k) != 5 {
		t.Fatalf("distinct = %d, want 5", e.Count(k))
	}
	if len(e.Over(5)) != 1 || len(e.Over(6)) != 0 {
		t.Fatal("Over threshold wrong")
	}
}

func TestExactMaxInterval(t *testing.T) {
	e := NewExactMaxInterval(packet.KeyFiveTuple)
	base := packet.Packet{SrcIP: 1, Proto: 6}
	for _, ts := range []uint64{100, 200, 500, 600} {
		p := base
		p.TimestampNs = ts
		e.AddPacket(&p)
	}
	k := packet.KeyFiveTuple.Extract(&base)
	if e.Values()[k] != 300 {
		t.Fatalf("max interval = %d, want 300", e.Values()[k])
	}
	// Single-packet flow has interval 0.
	solo := packet.Packet{SrcIP: 99, Proto: 6, TimestampNs: 42}
	e.AddPacket(&solo)
	if e.Values()[packet.KeyFiveTuple.Extract(&solo)] != 0 {
		t.Fatal("single-packet interval must be 0")
	}
}
