package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair returns two ends of a real TCP connection on loopback.
func pipePair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- c
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestZeroPlanIsTransparent(t *testing.T) {
	c, s := pipePair(t)
	wc := WrapConn(c, Plan{}, 0)
	msg := []byte("hello control channel\n")
	go func() { wc.Write(msg) }()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("got %q", buf)
	}
}

func TestPartialWritesDeliverAllBytes(t *testing.T) {
	c, s := pipePair(t)
	wc := WrapConn(c, Plan{Seed: 7, PartialWrites: true}, 0)
	msg := bytes.Repeat([]byte("abcdefgh"), 512)
	go func() {
		if _, err := wc.Write(msg); err != nil {
			t.Error(err)
		}
		wc.Close()
	}()
	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("partial writes corrupted the stream: %d bytes vs %d", len(got), len(msg))
	}
}

func TestResetEveryInjectsDeterministically(t *testing.T) {
	c, _ := pipePair(t)
	wc := WrapConn(c, Plan{Seed: 1, ResetEvery: 3}, 0)
	// Ops 1 and 2 succeed, op 3 resets.
	if _, err := wc.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := wc.Write([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := wc.Write([]byte("c")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("3rd op error = %v, want injected reset", err)
	}
	// After a reset the underlying conn is closed for good.
	if _, err := wc.Write([]byte("d")); err == nil {
		t.Fatal("write after reset must fail")
	}
}

func TestResetVisibleToPeer(t *testing.T) {
	c, s := pipePair(t)
	wc := WrapConn(c, Plan{Seed: 2, ResetEvery: 1}, 0)
	if _, err := wc.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("err = %v", err)
	}
	s.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 8)
	if _, err := s.Read(buf); err == nil {
		t.Fatal("peer must observe the reset")
	}
}

func TestCorruptEveryFlipsAByte(t *testing.T) {
	c, s := pipePair(t)
	wc := WrapConn(c, Plan{Seed: 3, CorruptEvery: 1}, 0)
	msg := []byte(`{"id":1,"method":"ping"}` + "\n")
	orig := append([]byte(nil), msg...)
	go func() { wc.Write(msg); wc.Close() }()
	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msg, orig) {
		t.Fatal("caller's buffer must not be mutated")
	}
	if bytes.Equal(got, orig) {
		t.Fatal("frame crossed uncorrupted")
	}
	if len(got) != len(orig) {
		t.Fatalf("corruption changed length: %d vs %d", len(got), len(orig))
	}
	if bytes.Count(got, []byte("\n")) != 1 {
		t.Fatal("corruption must not add or remove newlines")
	}
}

func TestTruncatedWriteResets(t *testing.T) {
	c, s := pipePair(t)
	wc := WrapConn(c, Plan{Seed: 5, TruncateProb: 1}, 0)
	msg := bytes.Repeat([]byte("z"), 256)
	errc := make(chan error, 1)
	go func() {
		_, err := wc.Write(msg)
		errc <- err
	}()
	got, _ := io.ReadAll(s)
	if err := <-errc; !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("err = %v", err)
	}
	if len(got) >= len(msg) {
		t.Fatalf("peer read %d bytes of a truncated %d-byte frame", len(got), len(msg))
	}
}

func TestDelaysAreBounded(t *testing.T) {
	c, s := pipePair(t)
	wc := WrapConn(c, Plan{Seed: 9, WriteDelay: 10 * time.Millisecond}, 0)
	start := time.Now()
	go func() { wc.Write([]byte("slow")); wc.Close() }()
	io.ReadAll(s)
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("delay wildly out of bounds: %v", el)
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wln := WrapListener(ln, Plan{Seed: 4, ResetEvery: 1})
	defer wln.Close()
	go func() {
		conn, err := wln.Accept()
		if err != nil {
			return
		}
		// First server-side op resets immediately.
		conn.Write([]byte("welcome"))
		conn.Close()
	}()
	c, err := net.Dial("tcp", wln.Addr().String())
	if err != nil {
		return // the injected RST raced the handshake: fault observed
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if n, err := c.Read(buf); err == nil {
		t.Fatalf("client read %d bytes, want reset", n)
	}
}

func TestDeterministicFaultSequence(t *testing.T) {
	// Two conns wrapped with the same plan+ordinal make identical decisions.
	seq := func() []bool {
		c, _ := pipePair(t)
		wc := WrapConn(c, Plan{Seed: 11, ResetProb: 0.3}, 42)
		var out []bool
		for i := 0; i < 10; i++ {
			wc.mu.Lock()
			_, reset, _, _ := wc.decide(true, 8)
			wc.mu.Unlock()
			out = append(out, reset)
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequences diverge at op %d: %v vs %v", i, a, b)
		}
	}
}

func TestGateDropWritesIsOneWayBlackhole(t *testing.T) {
	c, s := pipePair(t)
	gate := &Gate{}
	wc := WrapConn(c, Plan{Gate: gate}, 0)

	// Healed gate: bytes flow.
	if _, err := wc.Write([]byte("one\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	s.SetReadDeadline(time.Now().Add(2 * time.Second))
	if n, err := s.Read(buf); err != nil || string(buf[:n]) != "one\n" {
		t.Fatalf("healed read = %q, %v", buf[:n], err)
	}

	// Dropped writes: the writer sees SUCCESS (a true blackhole, not a
	// reset) but the peer sees silence until its deadline fires.
	gate.SetDropWrites(true)
	if n, err := wc.Write([]byte("two\n")); err != nil || n != 4 {
		t.Fatalf("blackholed write = %d, %v; want reported success", n, err)
	}
	s.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if n, err := s.Read(buf); err == nil {
		t.Fatalf("peer read %q through a blackholed direction", buf[:n])
	} else if !errors.Is(err, io.EOF) && !isTimeout(err) {
		t.Fatalf("peer read error = %v, want deadline", err)
	}

	// Healing restores delivery; the blackholed bytes stay lost.
	gate.SetDropWrites(false)
	if _, err := wc.Write([]byte("three\n")); err != nil {
		t.Fatal(err)
	}
	s.SetReadDeadline(time.Now().Add(2 * time.Second))
	if n, err := s.Read(buf); err != nil || string(buf[:n]) != "three\n" {
		t.Fatalf("post-heal read = %q, %v", buf[:n], err)
	}
}

func TestGateDropReadsDiscardsUntilDeadline(t *testing.T) {
	c, s := pipePair(t)
	gate := &Gate{}
	gate.SetDropReads(true)
	wc := WrapConn(c, Plan{Gate: gate}, 0)

	// The peer sends, but the blackholed reader discards and keeps
	// waiting: its own deadline is what ends the wait.
	if _, err := s.Write([]byte("lost\n")); err != nil {
		t.Fatal(err)
	}
	wc.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	buf := make([]byte, 16)
	if n, err := wc.Read(buf); err == nil {
		t.Fatalf("read %q through a blackholed direction", buf[:n])
	} else if !isTimeout(err) {
		t.Fatalf("read error = %v, want deadline", err)
	}

	// Heal: the NEXT frame is delivered (the earlier one is gone).
	gate.SetDropReads(false)
	if _, err := s.Write([]byte("found\n")); err != nil {
		t.Fatal(err)
	}
	wc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if n, err := wc.Read(buf); err != nil || string(buf[:n]) != "found\n" {
		t.Fatalf("post-heal read = %q, %v", buf[:n], err)
	}
}

func TestGatePartitionAndHeal(t *testing.T) {
	gate := &Gate{}
	gate.Partition()
	if r, w := gate.Dropped(); !r || !w {
		t.Fatalf("partition: dropped = %v %v, want true true", r, w)
	}
	gate.Heal()
	if r, w := gate.Dropped(); r || w {
		t.Fatalf("heal: dropped = %v %v, want false false", r, w)
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
