// Package netwide implements network-wide measurement over a fleet of
// FlyMon switches — the SDM-controller use case the paper positions FlyMon
// underneath (§3.4). The same task spec is deployed on every switch;
// because controller construction, compressed-key configuration, and
// placement are deterministic, every switch computes identical hash
// mappings, so the central controller can merge per-switch register
// readouts element-wise (add for counters, max for MAX/rank registers, OR
// for bitmaps) and answer queries about the union of all ingress traffic.
//
// The deployment model follows the standard network-wide measurement
// assumption: each packet is measured at exactly one switch (its ingress),
// so counter merges see disjoint streams; HLL/Bloom merges tolerate
// duplicates anyway.
package netwide

import (
	"fmt"
	"math/bits"
	"sync"

	"flymon/internal/controlplane"
	"flymon/internal/core/algorithms"
	"flymon/internal/packet"
	"flymon/internal/sketch"
)

// Fleet is a set of identically configured FlyMon switches plus the task
// registry that keeps their deployments in lockstep.
type Fleet struct {
	switches []*controlplane.Controller
	// taskIDs[name][i] is the task's ID on switch i (identical across
	// switches by construction, but tracked defensively).
	taskIDs map[string][]int
}

// NewFleet builds n switches from one configuration. Determinism of
// controller construction guarantees identical hash polynomials, unit
// configurations, and placements across the fleet.
func NewFleet(n int, cfg controlplane.Config) *Fleet {
	if n < 1 {
		n = 1
	}
	f := &Fleet{taskIDs: make(map[string][]int)}
	for i := 0; i < n; i++ {
		f.switches = append(f.switches, controlplane.NewController(cfg))
	}
	return f
}

// Size returns the number of switches.
func (f *Fleet) Size() int { return len(f.switches) }

// Switch returns switch i's controller (for direct inspection).
func (f *Fleet) Switch(i int) *controlplane.Controller { return f.switches[i] }

// Deploy installs the spec on every switch. Name must be unique per fleet.
func (f *Fleet) Deploy(spec controlplane.TaskSpec) error {
	if _, ok := f.taskIDs[spec.Name]; ok {
		return fmt.Errorf("netwide: task %q already deployed", spec.Name)
	}
	ids := make([]int, 0, len(f.switches))
	for i, sw := range f.switches {
		t, err := sw.AddTask(spec)
		if err != nil {
			// Roll back switches already configured.
			for j, id := range ids {
				_ = f.switches[j].RemoveTask(id)
			}
			return fmt.Errorf("netwide: deploying %q on switch %d: %w", spec.Name, i, err)
		}
		ids = append(ids, t.ID)
	}
	f.taskIDs[spec.Name] = ids
	return nil
}

// Remove uninstalls the named task fleet-wide.
func (f *Fleet) Remove(name string) error {
	ids, ok := f.taskIDs[name]
	if !ok {
		return fmt.Errorf("netwide: no task %q", name)
	}
	var firstErr error
	for i, id := range ids {
		if err := f.switches[i].RemoveTask(id); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	delete(f.taskIDs, name)
	return firstErr
}

// Process measures packet p at its ingress switch.
func (f *Fleet) Process(ingress int, p *packet.Packet) {
	f.switches[ingress%len(f.switches)].Process(p)
}

// ProcessBatch measures a packet batch at one ingress switch through the
// sequential fast path.
func (f *Fleet) ProcessBatch(ingress int, ps []packet.Packet) {
	f.switches[ingress%len(f.switches)].ProcessBatch(ps)
}

// ProcessParallel fans a batch out across the fleet concurrently: packet i
// enters switch i mod Size (the round-robin ingress model the tests use),
// and every switch runs its own worker over its shard — switches are
// independent data planes, so the shards proceed without coordination.
func (f *Fleet) ProcessParallel(ps []packet.Packet) {
	n := len(f.switches)
	if n == 1 || len(ps) < 2 {
		f.ProcessBatch(0, ps)
		return
	}
	var wg sync.WaitGroup
	for si := 0; si < n; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			sw := f.switches[si]
			for i := si; i < len(ps); i += n {
				sw.Process(&ps[i])
			}
		}(si)
	}
	wg.Wait()
}

// mergedRows reads the named task's registers on every switch and merges
// them with the supplied combiner into fresh slices.
func (f *Fleet) mergedRows(name string, combine func(dst, src []uint32) error) ([][]uint32, []int, error) {
	ids, ok := f.taskIDs[name]
	if !ok {
		return nil, nil, fmt.Errorf("netwide: no task %q", name)
	}
	var merged [][]uint32
	for i, id := range ids {
		rows, err := f.switches[i].ReadRegisters(id)
		if err != nil {
			return nil, nil, fmt.Errorf("netwide: reading %q on switch %d: %w", name, i, err)
		}
		if merged == nil {
			merged = make([][]uint32, len(rows))
			for r := range rows {
				merged[r] = make([]uint32, len(rows[r]))
				copy(merged[r], rows[r])
			}
			continue
		}
		if len(rows) != len(merged) {
			return nil, nil, fmt.Errorf("netwide: switch %d has %d rows for %q, expected %d", i, len(rows), name, len(merged))
		}
		for r := range rows {
			if err := combine(merged[r], rows[r]); err != nil {
				return nil, nil, err
			}
		}
	}
	return merged, ids, nil
}

// EstimateKey returns the network-wide frequency estimate for key k on a
// counter task (FlyMon-CMS): per-row sums across switches, min across rows.
// Requires each packet to be measured at exactly one switch.
func (f *Fleet) EstimateKey(name string, k packet.CanonicalKey) (uint64, error) {
	merged, ids, err := f.mergedRows(name, sketch.MergeAddRegisters)
	if err != nil {
		return 0, err
	}
	h, err := f.switches[0].TaskHandle(ids[0])
	if err != nil {
		return 0, err
	}
	cms, ok := h.(*algorithms.CMSTask)
	if !ok {
		return 0, fmt.Errorf("netwide: task %q is not a counter task", name)
	}
	min := ^uint32(0)
	for i := 0; i < cms.D; i++ {
		idx := cms.RowIndexFor(i, k) - uint32(cms.Rows[i].Base)
		if v := merged[i][idx]; v < min {
			min = v
		}
	}
	return uint64(min), nil
}

// Cardinality returns the network-wide distinct-flow estimate of an HLL
// task: element-wise max of rank registers, then the harmonic-mean
// estimator. Duplicate observation across switches is harmless.
func (f *Fleet) Cardinality(name string) (float64, error) {
	merged, ids, err := f.mergedRows(name, sketch.MergeMaxRegisters)
	if err != nil {
		return 0, err
	}
	h, err := f.switches[0].TaskHandle(ids[0])
	if err != nil {
		return 0, err
	}
	hll, ok := h.(*algorithms.HLLTask)
	if !ok {
		return 0, fmt.Errorf("netwide: task %q is not an HLL task", name)
	}
	ranks := make([]uint8, len(merged[0]))
	for i, v := range merged[0] {
		if v > 255 {
			v = 255
		}
		ranks[i] = uint8(v)
	}
	return sketch.HLLEstimateFromRanks(ranks, 32-hll.B), nil
}

// Contains reports network-wide Bloom membership for key k: bitmap OR
// across switches, then the usual probes.
func (f *Fleet) Contains(name string, k packet.CanonicalKey) (bool, error) {
	merged, ids, err := f.mergedRows(name, sketch.MergeOrRegisters)
	if err != nil {
		return false, err
	}
	h, err := f.switches[0].TaskHandle(ids[0])
	if err != nil {
		return false, err
	}
	bloom, ok := h.(*algorithms.BloomTask)
	if !ok {
		return false, fmt.Errorf("netwide: task %q is not an existence task", name)
	}
	indices, masks := bloom.ProbeKey(k)
	for i := range indices {
		idx := indices[i] - uint32(bloom.Rows[i].Base)
		if merged[i][idx]&masks[i] == 0 {
			return false, nil
		}
	}
	return true, nil
}

// HeavyHitters returns the candidates whose network-wide estimate meets
// the threshold.
func (f *Fleet) HeavyHitters(name string, candidates []packet.CanonicalKey, threshold uint64) (map[packet.CanonicalKey]bool, error) {
	out := make(map[packet.CanonicalKey]bool)
	for _, k := range candidates {
		v, err := f.EstimateKey(name, k)
		if err != nil {
			return nil, err
		}
		if v >= threshold {
			out[k] = true
		}
	}
	return out, nil
}

// Reported returns the candidates a network-wide BeauCoup task reports:
// coupon bitmaps OR-merge across switches (a coupon collected anywhere is
// collected), then the usual min-across-tables popcount test.
func (f *Fleet) Reported(name string, candidates []packet.CanonicalKey) (map[packet.CanonicalKey]bool, error) {
	merged, ids, err := f.mergedRows(name, sketch.MergeOrRegisters)
	if err != nil {
		return nil, err
	}
	h, err := f.switches[0].TaskHandle(ids[0])
	if err != nil {
		return nil, err
	}
	bc, ok := h.(*algorithms.BeauCoupTask)
	if !ok {
		return nil, fmt.Errorf("netwide: task %q is not a BeauCoup task", name)
	}
	out := make(map[packet.CanonicalKey]bool)
	for _, k := range candidates {
		min := 64
		for i := 0; i < bc.D; i++ {
			idx := bc.RowIndexFor(i, k) - uint32(bc.Rows[i].Base)
			if n := bits.OnesCount32(merged[i][idx]); n < min {
				min = n
			}
		}
		if min >= bc.Cfg.Collect {
			out[k] = true
		}
	}
	return out, nil
}
