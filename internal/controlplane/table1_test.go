package controlplane

import (
	"testing"

	"flymon/internal/packet"
	"flymon/internal/trace"
)

// TestTable1Catalog deploys every measurement task of the paper's Table 1
// through the controller and verifies each produces sane answers on a
// shared workload — the task-abstraction conformance suite.
func TestTable1Catalog(t *testing.T) {
	keyDstPort := packet.NewKeySpec(packet.FieldDstPort)

	catalog := []struct {
		name string
		spec TaskSpec
	}{
		// DDoS victim: DstIP × Distinct(SrcIP).
		{"ddos-victim", TaskSpec{Key: packet.KeyDstIP, Attribute: AttrDistinct,
			Param:     ParamSpec{Kind: ParamFlowKey, Key: packet.KeySrcIP},
			Threshold: 100, MemBuckets: 8192, D: 3}},
		// Worm / super-spreader: SrcIP × Distinct(DstIP).
		{"worm", TaskSpec{Key: packet.KeySrcIP, Attribute: AttrDistinct,
			Param:     ParamSpec{Kind: ParamFlowKey, Key: packet.KeyDstIP},
			Threshold: 50, MemBuckets: 8192, D: 3}},
		// Port scan: IP pair × Distinct(DstPort).
		{"port-scan", TaskSpec{Key: packet.KeyIPPair, Attribute: AttrDistinct,
			Param:     ParamSpec{Kind: ParamFlowKey, Key: keyDstPort},
			Threshold: 50, MemBuckets: 8192, D: 3}},
		// Cardinality: no key × Distinct(FlowID).
		{"cardinality", TaskSpec{Attribute: AttrDistinct,
			Param:      ParamSpec{Kind: ParamFlowKey, Key: packet.KeyFiveTuple},
			MemBuckets: 4096}},
		// Per-flow size in packets: FlowID × Frequency(1).
		{"flow-size-pkts", TaskSpec{Key: packet.KeyFiveTuple, Attribute: AttrFrequency,
			MemBuckets: 8192, D: 3}},
		// Per-flow size in bytes: FlowID × Frequency(bytes).
		{"flow-size-bytes", TaskSpec{Key: packet.KeyFiveTuple, Attribute: AttrFrequency,
			Param: ParamSpec{Kind: ParamPacketBytes}, MemBuckets: 8192, D: 3}},
		// Black list: Existence(FlowID).
		{"black-list", TaskSpec{Attribute: AttrExistence,
			Param:      ParamSpec{Kind: ParamFlowKey, Key: packet.KeyFiveTuple},
			MemBuckets: 8192, D: 3}},
		// Congestion: FlowID × Max(queue length).
		{"congestion", TaskSpec{Key: packet.KeyFiveTuple, Attribute: AttrMax,
			Param: ParamSpec{Kind: ParamQueueLength}, MemBuckets: 8192, D: 3}},
		// Head-of-line blocking: FlowID × Max(queue delay).
		{"hol", TaskSpec{Key: packet.KeyFiveTuple, Attribute: AttrMax,
			Param: ParamSpec{Kind: ParamQueueDelay}, MemBuckets: 8192, D: 3}},
		// Max packet interval: FlowID × Max(interval) — 3 CMUs, 3 groups.
		{"interval", TaskSpec{Key: packet.KeyFiveTuple, Attribute: AttrMax,
			Param: ParamSpec{Kind: ParamPacketInterval}, MemBuckets: 8192}},
	}
	// Heavy hitters and heavy changers reuse the frequency task's counters
	// (threshold query / epoch diff) and are covered by the experiments
	// and epoch tests.

	tr := trace.Generate(trace.Config{Flows: 1500, Packets: 40_000, Seed: 99})

	for _, entry := range catalog {
		t.Run(entry.name, func(t *testing.T) {
			// A fresh full pipeline per task: Table 1 is about coverage,
			// not co-residency (that's the multitasking experiment).
			c := NewController(Config{Groups: 3, Buckets: 65536, BitWidth: 32})
			spec := entry.spec
			spec.Name = entry.name
			task, err := c.AddTask(spec)
			if err != nil {
				t.Fatalf("deploy: %v", err)
			}
			for i := range tr.Packets {
				c.Process(&tr.Packets[i])
			}
			probe := &tr.Packets[0]
			switch entry.name {
			case "cardinality":
				v, err := c.Cardinality(task.ID)
				if err != nil || v < 100 {
					t.Fatalf("cardinality = %v, %v", v, err)
				}
			case "black-list":
				ok, err := c.Contains(task.ID, packet.KeyFiveTuple.Extract(probe))
				if err != nil || !ok {
					t.Fatalf("membership of an observed flow = %v, %v", ok, err)
				}
			default:
				key := spec.Key
				if len(key.Parts) == 0 {
					key = spec.Param.Key
				}
				v, err := c.EstimateKey(task.ID, key.Extract(probe))
				if err != nil {
					t.Fatalf("estimate: %v", err)
				}
				if entry.name == "flow-size-pkts" || entry.name == "flow-size-bytes" {
					if v <= 0 {
						t.Fatalf("frequency estimate %v for an observed flow", v)
					}
				}
			}
			if err := c.RemoveTask(task.ID); err != nil {
				t.Fatalf("remove: %v", err)
			}
		})
	}
}
