package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"flymon/internal/netwide"
	"flymon/internal/rpc"
	"flymon/internal/telemetry"
	"flymon/internal/tracing"
)

// splitAddrs parses a comma-separated address list, dropping blanks.
func splitAddrs(addrsFlag string) []string {
	var addrs []string
	for _, a := range strings.Split(addrsFlag, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// cmdTrace collects every daemon's span buffer (the trace_dump RPC),
// assembles the spans into per-operation trace trees, and prints the
// newest N with their critical-path breakdowns. Spans from different
// daemons knit together by trace ID; controller-side spans appear when
// the operation ran in a process whose buffer is among the dumps (e.g.
// `flymonctl query -trace` prints its own end-to-end tree directly).
func cmdTrace(defaultAddr string, opts rpc.Options, args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	addrsFlag := fs.String("addrs", defaultAddr, "comma-separated daemon control-channel addresses")
	n := fs.Int("n", 5, "newest operations (trace trees) to print")
	opFilter := fs.String("op", "", "only print traces whose root operation has this name (deploy, epoch_rotate, ...)")
	_ = fs.Parse(args)
	addrs := splitAddrs(*addrsFlag)
	if len(addrs) == 0 {
		fatal(fmt.Errorf("trace: no addresses"))
	}

	var all []tracing.Span
	reached := 0
	for _, a := range addrs {
		c, err := rpc.DialOptions(a, opts)
		if err != nil {
			logger.Warnf("trace: %s: %v", a, err)
			continue
		}
		dump, err := c.TraceDump(0)
		c.Close()
		if err != nil {
			logger.Warnf("trace: %s: %v", a, err)
			continue
		}
		reached++
		if dump.Dropped > 0 {
			logger.Warnf("trace: %s: span buffer lapped, %d span(s) lost", a, dump.Dropped)
		}
		all = append(all, dump.Spans...)
	}
	if reached == 0 {
		fatal(fmt.Errorf("trace: no daemon reachable"))
	}
	trees := tracing.Assemble(all)
	printed := 0
	for _, tree := range trees {
		if *opFilter != "" {
			if tree.Root == nil || tree.Root.Span.Name != *opFilter {
				continue
			}
		}
		if printed >= *n {
			break
		}
		tree.Render(os.Stdout)
		printed++
	}
	if printed == 0 {
		fmt.Printf("no traces collected from %d daemon(s) — daemon-side spans exist only for traced operations\n", reached)
	}
}

// watchRow is one switch's scrape for a dashboard frame.
type watchRow struct {
	addr    string
	session string
	detect  time.Duration
	fails   int
	tasks   string
	epoch   string
	packets string
	reconf  string
	drain   string // register-drain (query-serving) latency p50/p99
	mut     string // control-plane mutation latency p50/p99
}

// cmdWatch is the live fleet dashboard: BFD-style liveness sessions give
// per-switch health, short-lived scrape connections add task counts,
// packet totals, query/mutation latency percentiles and (with
// -epoch-task) each switch's completed epoch, and the newest
// reconfiguration journal entries stream along the bottom. The screen
// redraws in place every interval until interrupted.
func cmdWatch(defaultAddr string, opts rpc.Options, args []string) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	addrsFlag := fs.String("addrs", defaultAddr, "comma-separated daemon control-channel addresses")
	interval := fs.Duration("interval", time.Second, "refresh interval")
	events := fs.Int("events", 6, "reconfiguration journal entries to show")
	epochTask := fs.String("epoch-task", "", "epoch task whose per-switch completed epoch to show")
	tx := fs.Duration("tx", 100*time.Millisecond, "liveness hello tx interval")
	mult := fs.Int("mult", 3, "detection-time multiplier (detect = mult × tx)")
	count := fs.Int("count", 0, "frames to draw before exiting (0 = until interrupted)")
	_ = fs.Parse(args)
	addrs := splitAddrs(*addrsFlag)
	if len(addrs) == 0 {
		fatal(fmt.Errorf("watch: no addresses"))
	}
	if opts.CallTimeout == 0 {
		opts.CallTimeout = 2 * time.Second
	}
	opts.MaxRetries = -1 // sessions own failure handling; scrapes are best-effort

	m := netwide.NewLivenessManager(addrs, netwide.LivenessOptions{
		TxInterval: *tx,
		DetectMult: *mult,
	})
	m.Start()
	defer m.Stop()
	// Let the three-way handshakes complete plus one detect interval so the
	// first frame already classifies a dead daemon as down.
	time.Sleep(time.Duration(*mult+2) * *tx)

	for frame := 1; ; frame++ {
		fmt.Print("\x1b[H\x1b[2J") // home + clear: redraw in place
		drawWatchFrame(m, opts, *events, *epochTask)
		if *count > 0 && frame >= *count {
			return
		}
		time.Sleep(*interval)
	}
}

// drawWatchFrame scrapes every Up switch and prints one dashboard frame.
func drawWatchFrame(m *netwide.LivenessManager, opts rpc.Options, events int, epochTask string) {
	snaps := m.Snapshot()
	rows := make([]watchRow, len(snaps))
	var journal []telemetry.Event
	up := 0
	for i, s := range snaps {
		r := watchRow{addr: s.Addr, session: s.State.String(), detect: s.DetectTime,
			fails: s.ConsecutiveFailures, tasks: "?", epoch: "-", packets: "-",
			reconf: "-", drain: "-", mut: "-"}
		if s.Damped {
			r.session += "*"
		}
		if s.State == netwide.SessionUp {
			up++
			scrapeSwitch(s.Addr, opts, epochTask, &r, &journal)
		}
		rows[i] = r
	}

	fmt.Printf("flymon watch · %s · %d/%d switches up\n\n",
		time.Now().Format("15:04:05"), up, len(snaps))
	fmt.Printf("%-22s %-8s %-7s %-5s %-7s %-8s %-9s %-7s %-17s %s\n",
		"ADDR", "SESSION", "DETECT", "FAILS", "TASKS", "EPOCH", "PACKETS", "RECONF", "DRAIN p50/p99", "MUTATION p50/p99")
	for _, r := range rows {
		fmt.Printf("%-22s %-8s %-7s %-5d %-7s %-8s %-9s %-7s %-17s %s\n",
			r.addr, r.session, r.detect, r.fails, r.tasks, r.epoch, r.packets, r.reconf, r.drain, r.mut)
	}
	if len(journal) > 0 {
		fmt.Printf("\nrecent reconfigurations:\n")
		if len(journal) > events {
			journal = journal[len(journal)-events:]
		}
		for _, e := range journal {
			status := "ok"
			if !e.OK {
				status = "FAILED: " + e.Err
			}
			detail := e.Detail
			if detail != "" {
				detail = " " + detail
			}
			fmt.Printf("  #%-4d %-14s task=%-3d%s %v %s\n",
				e.Seq, e.Kind, e.Task, detail,
				time.Duration(e.LatencyNs).Round(time.Microsecond), status)
		}
	}
	fmt.Printf("\n(ctrl-c to exit)\n")
}

// scrapeSwitch fills one dashboard row over a short-lived connection.
// Every fetch is best-effort: a failure leaves the placeholder dashes.
func scrapeSwitch(addr string, opts rpc.Options, epochTask string, r *watchRow, journal *[]telemetry.Event) {
	c, err := rpc.DialOptions(addr, opts)
	if err != nil {
		return
	}
	defer c.Close()
	if st, err := c.Stats(); err == nil {
		r.tasks = fmt.Sprintf("%d", st.Tasks)
		r.packets = fmt.Sprintf("%d", st.PacketsProcessed)
	}
	if rep, err := c.Telemetry(); err == nil {
		cp := rep.ControlPlane
		r.reconf = fmt.Sprintf("%d", cp.EventsTotal)
		r.drain = fmtPctls(cp.DrainLatency)
		r.mut = fmtPctls(cp.MutationLatency)
		// The journal shown is the first Up switch's: every daemon records
		// the same fleet-driven mutations, so one tail is representative.
		if len(*journal) == 0 && len(cp.Events) > 0 {
			*journal = append(*journal, cp.Events...)
			sort.Slice(*journal, func(i, j int) bool { return (*journal)[i].Seq < (*journal)[j].Seq })
		}
	}
	if epochTask != "" {
		if res, err := c.ReadEpoch(epochTask, 0); err == nil {
			r.epoch = fmt.Sprintf("%d", res.Epoch)
		} else if have := rpc.EpochUnavailableHave(err); have >= 0 && rpc.IsEpochUnavailable(err) {
			r.epoch = fmt.Sprintf("%d!", have) // behind: completed epoch with a straggler mark
		}
	}
}

// histPctl reads quantile q out of a log2-bucket latency histogram,
// reporting the matched bucket's upper bound (conservative by at most 2×,
// which is all a dashboard needs).
func histPctl(h telemetry.HistogramSnapshot, q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	target := uint64(q * float64(h.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		if cum >= target {
			return time.Duration(telemetry.BucketUpperNs(i))
		}
	}
	return time.Duration(telemetry.BucketUpperNs(telemetry.HistogramBuckets - 1))
}

// fmtPctls renders a histogram's p50/p99 pair compactly ("4µs/33µs").
func fmtPctls(h telemetry.HistogramSnapshot) string {
	if h.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("%s/%s", fmtShortDur(histPctl(h, 0.50)), fmtShortDur(histPctl(h, 0.99)))
}

func fmtShortDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%dms", d.Milliseconds())
	case d >= time.Microsecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	default:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	}
}
