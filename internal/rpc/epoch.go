package rpc

import (
	"fmt"

	"flymon/internal/core/algorithms"
	"flymon/internal/epoch"
)

// epochRetain is how many completed epochs' packed snapshots a daemon
// keeps per epoch task. The rotator itself only holds the last frozen
// copy's registers; snapshots are what let a slow query plane read epoch
// E-2 after the fleet has moved on. Four epochs comfortably covers a
// query racing one rotation plus a straggler catching up.
const epochRetain = 4

// frameSnap is one completed epoch's register snapshot, pre-encoded as a
// binary frame (contiguous little-endian registers plus row lengths).
// Snapshots are immutable once stored, so read_epoch hands the frame
// straight to the codec: serving an epoch costs zero encoding work.
type frameSnap struct {
	frame []byte
	lens  []int
}

// epochTask is the daemon-side state of one epoch task: the rotator that
// owns the double-buffered deployments, plus a frame snapshot per recent
// completed epoch.
type epochTask struct {
	rot   *epoch.Rotator
	snaps map[int]frameSnap // completed epoch → frame snapshot
	ids   map[int]int       // completed epoch → task ID the snapshot was read from
}

// epochUnavailable builds the classified "cannot serve that epoch (yet)"
// error — IsEpochUnavailable on the client side recognizes it, which is
// how the fleet's straggler policies tell "behind, poll again" from
// "broken, fail".
func epochUnavailable(name string, want, have int) error {
	return fmt.Errorf("rpc: %s: task %q epoch %d not readable here (latest completed epoch %d)",
		epochUnavailableToken, name, want, have)
}

func (s *Server) epochTaskLocked(name string) (*epochTask, error) {
	et := s.epochs[name]
	if et == nil {
		return nil, fmt.Errorf("rpc: no epoch task %q", name)
	}
	return et, nil
}

// handleEpochDeploy creates the rotator for an epoch task (the active
// copy deploys immediately; epoch 0 = nothing completed yet).
func (s *Server) handleEpochDeploy(p AddTaskParams) (EpochTaskResult, error) {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	if _, ok := s.epochs[p.Spec.Name]; ok {
		return EpochTaskResult{}, fmt.Errorf("rpc: epoch task %q already deployed", p.Spec.Name)
	}
	rot, err := epoch.NewRotator(s.ctrl, p.Spec)
	if err != nil {
		return EpochTaskResult{}, err
	}
	s.epochs[p.Spec.Name] = &epochTask{
		rot:   rot,
		snaps: make(map[int]frameSnap),
		ids:   make(map[int]int),
	}
	t, err := s.ctrl.Task(rot.ActiveID())
	if err != nil {
		return EpochTaskResult{}, err
	}
	return EpochTaskResult{Task: taskResult(t), Epoch: 0}, nil
}

// handleEpochRotate advances an epoch task to the target epoch, caching a
// packed snapshot of each epoch's registers as it is frozen. Sending the
// same target twice is a no-op (AdvanceTo is idempotent), so fleet
// controllers can retry after transport failures, and a daemon that
// missed rotations catches up — snapshotting every intermediate epoch —
// in one call.
func (s *Server) handleEpochRotate(p EpochRotateParams) (EpochTaskResult, error) {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	et, err := s.epochTaskLocked(p.Name)
	if err != nil {
		return EpochTaskResult{}, err
	}
	target := p.ToEpoch
	if target <= 0 {
		target = et.rot.Epoch() + 1
	}
	err = et.rot.AdvanceTo(target, func(ep, frozenID int) error {
		rows, err := s.ctrl.ReadRegisters(frozenID)
		if err != nil {
			return fmt.Errorf("rpc: snapshotting %q epoch %d: %w", p.Name, ep, err)
		}
		frame, lens := PackFrame(rows)
		et.snaps[ep] = frameSnap{frame: frame, lens: lens}
		et.ids[ep] = frozenID
		delete(et.snaps, ep-epochRetain)
		delete(et.ids, ep-epochRetain)
		return nil
	})
	if err != nil {
		return EpochTaskResult{}, err
	}
	t, err := s.ctrl.Task(et.rot.ActiveID())
	if err != nil {
		return EpochTaskResult{}, err
	}
	return EpochTaskResult{Task: taskResult(t), Epoch: et.rot.Epoch(), FrozenID: et.rot.FrozenID()}, nil
}

// handleReadEpoch serves one completed epoch's packed snapshot. Epoch 0
// asks for the latest completed epoch. A missing epoch — not rotated to
// yet, or already evicted — answers with the classified unavailable
// error plus the daemon's current epoch, so the query plane knows whether
// this switch is behind (straggler) or the request is stale.
func (s *Server) handleReadEpoch(p ReadEpochParams) (EpochRegistersResult, error) {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	et, err := s.epochTaskLocked(p.Name)
	if err != nil {
		return EpochRegistersResult{}, err
	}
	cur := et.rot.Epoch()
	e := p.Epoch
	if e <= 0 {
		e = cur
	}
	snap, ok := et.snaps[e]
	if e == 0 || !ok {
		return EpochRegistersResult{}, epochUnavailable(p.Name, e, cur)
	}
	return EpochRegistersResult{
		Epoch: e, Current: cur, FrozenID: et.ids[e],
		RowLens: snap.lens, frame: snap.frame,
	}, nil
}

// handleEpochRemove reclaims an epoch task's two deployments and its
// snapshots.
func (s *Server) handleEpochRemove(p EpochTaskParams) error {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	et, err := s.epochTaskLocked(p.Name)
	if err != nil {
		return err
	}
	delete(s.epochs, p.Name)
	return et.rot.Close()
}

// handleKeyIndices answers a flow key's per-row register indices on a
// frequency task — computed here from the daemon's own deterministic
// placement, so a query client without a mirror controller can probe
// merged fleet rows at exactly the right offsets.
func (s *Server) handleKeyIndices(p KeyParams) (KeyIndicesResult, error) {
	h, err := s.ctrl.TaskHandle(p.ID)
	if err != nil {
		return KeyIndicesResult{}, err
	}
	cms, ok := h.(*algorithms.CMSTask)
	if !ok {
		return KeyIndicesResult{}, fmt.Errorf("rpc: task %d is not a counter task", p.ID)
	}
	k := keyFromBytes(p.Key)
	out := KeyIndicesResult{Indices: make([]uint32, cms.D)}
	for i := 0; i < cms.D; i++ {
		out.Indices[i] = cms.RowIndexFor(i, k) - uint32(cms.Rows[i].Base)
	}
	return out, nil
}
