// Package cli holds the flag-value parsers shared by the flymonctl and
// trafficgen command-line tools: key specs ("srcip-dstport", "5tuple",
// "srcip/24"), IPv4 addresses, and CIDR prefixes.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"flymon/internal/packet"
)

// ParseKeySpec parses a flow-key spec: a dash-joined list of fields, each
// optionally narrowed by a /prefix, plus the aliases "5tuple" and "ippair".
// The empty string parses to the empty spec (used for single-key distinct
// tasks, where the key is implicit).
func ParseKeySpec(s string) (packet.KeySpec, error) {
	switch strings.ToLower(s) {
	case "5tuple", "five-tuple", "flow":
		return packet.KeyFiveTuple, nil
	case "ippair", "ip-pair":
		return packet.KeyIPPair, nil
	case "":
		return packet.KeySpec{}, nil
	}
	var spec packet.KeySpec
	for _, part := range strings.Split(s, "-") {
		name, prefix := part, 0
		if i := strings.IndexByte(part, '/'); i >= 0 {
			name = part[:i]
			p, err := strconv.Atoi(part[i+1:])
			if err != nil || p < 0 {
				return packet.KeySpec{}, fmt.Errorf("cli: bad prefix in %q", part)
			}
			prefix = p
		}
		f, err := parseField(name)
		if err != nil {
			return packet.KeySpec{}, err
		}
		if prefix > f.Bits() {
			return packet.KeySpec{}, fmt.Errorf("cli: prefix /%d exceeds %s's %d bits", prefix, f, f.Bits())
		}
		spec.Parts = append(spec.Parts, packet.KeyPart{Field: f, PrefixBits: prefix})
	}
	return spec, nil
}

func parseField(name string) (packet.Field, error) {
	switch strings.ToLower(name) {
	case "srcip":
		return packet.FieldSrcIP, nil
	case "dstip":
		return packet.FieldDstIP, nil
	case "srcport":
		return packet.FieldSrcPort, nil
	case "dstport":
		return packet.FieldDstPort, nil
	case "proto":
		return packet.FieldProto, nil
	case "timestamp", "ts":
		return packet.FieldTimestamp, nil
	default:
		return 0, fmt.Errorf("cli: unknown key field %q", name)
	}
}

// ParseIPv4 parses a dotted-quad IPv4 address into host byte order.
func ParseIPv4(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("cli: bad IPv4 address %q", s)
	}
	var ip uint32
	for _, p := range parts {
		if p == "" || len(p) > 3 {
			return 0, fmt.Errorf("cli: bad IPv4 address %q", s)
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("cli: bad IPv4 address %q", s)
		}
		ip = ip<<8 | uint32(v)
	}
	return ip, nil
}

// ParseCIDR parses "a.b.c.d/len" (or a bare address, meaning /32) into a
// Prefix. The empty string parses to the match-all prefix.
func ParseCIDR(s string) (packet.Prefix, error) {
	if s == "" {
		return packet.Prefix{}, nil
	}
	ipStr, bits := s, 32
	if i := strings.IndexByte(s, '/'); i >= 0 {
		ipStr = s[:i]
		b, err := strconv.Atoi(s[i+1:])
		if err != nil || b < 0 || b > 32 {
			return packet.Prefix{}, fmt.Errorf("cli: bad prefix length in %q", s)
		}
		bits = b
	}
	ip, err := ParseIPv4(ipStr)
	if err != nil {
		return packet.Prefix{}, err
	}
	return packet.Prefix{Value: ip, Bits: bits}, nil
}
