package mmtrace

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flymon/internal/packet"
)

func openTestTrace(t *testing.T, n int) (*Trace, []packet.Packet) {
	t.Helper()
	ps := genPackets(n)
	path, _ := writeTraceFile(t, ps)
	tr, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr, ps
}

// TestReplayerDeliversEveryFrame drains a replayer with several concurrent
// consumers and checks that every frame of every pass arrives exactly once
// (tallied per frame index).
func TestReplayerDeliversEveryFrame(t *testing.T) {
	const frames, passes, workers = 10_000, 3, 4
	tr, ps := openTestTrace(t, frames)
	rep, err := NewReplayer(ReplayConfig{
		Traces:  []*Trace{tr},
		Workers: workers,
		Batch:   64,
		Passes:  passes,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]atomic.Int32, frames)
	rep.Start()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Spans are Batch-aligned and whole, so every delivered batch
			// must be a span-aligned window of the reference slice; locate
			// it by content and tally its frames.
			for {
				batch := rep.Next(w)
				if batch == nil {
					return
				}
				lo := findAlignedWindow(ps, batch, 64)
				if lo < 0 {
					t.Error("batch does not match any span-aligned window of the trace")
					return
				}
				for i := range batch {
					counts[lo+i].Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := rep.Packets(); got != frames*passes {
		t.Fatalf("delivered %d packets, want %d", got, frames*passes)
	}
	for i := range counts {
		if c := counts[i].Load(); c != passes {
			t.Fatalf("frame %d delivered %d times, want %d", i, c, passes)
		}
	}
	if st := rep.Stats(); st.Producers != 0 {
		t.Fatalf("producers still live: %d", st.Producers)
	}
}

// findAlignedWindow locates batch within ps at a batch-size-aligned offset
// (the only offsets the replayer emits).
func findAlignedWindow(ps, batch []packet.Packet, align int) int {
	for lo := 0; lo+len(batch) <= len(ps); lo += align {
		match := true
		for i := range batch {
			if ps[lo+i] != batch[i] {
				match = false
				break
			}
		}
		if match {
			return lo
		}
	}
	return -1
}

// TestReplayerMultiTrace replays two traces (two ring producers) and
// checks the combined delivery count.
func TestReplayerMultiTrace(t *testing.T) {
	trA, _ := openTestTrace(t, 3000)
	trB, _ := openTestTrace(t, 2000)
	rep, err := NewReplayer(ReplayConfig{
		Traces:  []*Trace{trA, trB},
		Workers: 2,
		Batch:   128,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Start()
	var total atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				b := rep.Next(w)
				if b == nil {
					return
				}
				total.Add(uint64(len(b)))
			}
		}(w)
	}
	wg.Wait()
	if total.Load() != 5000 {
		t.Fatalf("delivered %d packets, want 5000", total.Load())
	}
}

// TestReplayerStop ends a loop-mode replay: after Stop the consumers must
// drain and Next must return nil on every worker — the goroutine-leak gate
// for the producer side.
func TestReplayerStop(t *testing.T) {
	before := runtime.NumGoroutine()
	tr, _ := openTestTrace(t, 1000)
	rep, err := NewReplayer(ReplayConfig{
		Traces:  []*Trace{tr},
		Workers: 2,
		Batch:   64,
		Passes:  -1, // loop forever
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Start()
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep.Next(w) != nil {
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond) // let it loop a few passes
	rep.Stop()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("consumers did not drain after Stop")
	}
	if rep.Packets() < 1000 {
		t.Fatalf("loop mode delivered only %d packets", rep.Packets())
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after Stop: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReplayerNextZeroAlloc is the steady-state allocation gate: once the
// replay is running, Next must not allocate.
func TestReplayerNextZeroAlloc(t *testing.T) {
	tr, _ := openTestTrace(t, 100_000)
	rep, err := NewReplayer(ReplayConfig{
		Traces:  []*Trace{tr},
		Workers: 1,
		Batch:   256,
		Passes:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Start()
	defer func() {
		rep.Stop()
		for rep.Next(0) != nil {
		}
	}()
	for i := 0; i < 16; i++ { // warm up
		if rep.Next(0) == nil {
			t.Fatal("replay ended during warmup")
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if rep.Next(0) == nil {
			t.Fatal("replay ended mid-measurement")
		}
	})
	if allocs != 0 {
		t.Fatalf("Next allocates %.1f objects per call in steady state, want 0", allocs)
	}
}

func TestReplayerConfigValidation(t *testing.T) {
	tr, _ := openTestTrace(t, 10)
	if _, err := NewReplayer(ReplayConfig{Workers: 1}); err == nil {
		t.Fatal("no traces accepted")
	}
	if _, err := NewReplayer(ReplayConfig{Traces: []*Trace{tr}}); err == nil {
		t.Fatal("zero workers accepted")
	}
	rep, err := NewReplayer(ReplayConfig{Traces: []*Trace{tr}, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start must panic")
		}
		for rep.Next(0) != nil {
		}
	}()
	rep.Start()
}
