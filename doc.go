// Package flymon is a from-scratch Go reproduction of "FlyMon: Enabling
// On-the-Fly Task Reconfiguration for Network Measurement" (Zheng et al.,
// SIGCOMM 2022): Composable Measurement Units on a simulated RMT data
// plane, a runtime-reconfiguration control plane with dynamic memory
// management, reference sketch baselines, and a benchmark harness that
// regenerates every table and figure of the paper's evaluation.
//
// See README.md for the layout and DESIGN.md for the system inventory.
package flymon
