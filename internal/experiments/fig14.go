package experiments

import (
	"fmt"
	"math"

	"flymon/internal/analysis"
	"flymon/internal/core"
	"flymon/internal/core/algorithms"
	"flymon/internal/metrics"
	"flymon/internal/packet"
	"flymon/internal/sketch"
	"flymon/internal/trace"
)

var keyTimestamp = packet.NewKeySpec(packet.FieldTimestamp)

// memSweepKB returns the memory sweep (KB) for a scale.
func memSweepKB(scale Scale) []int {
	if scale == Full {
		return []int{10, 50, 100, 500, 1000}
	}
	return []int{5, 10, 20, 50, 100}
}

// bucketsFor converts a per-algorithm memory budget into buckets per row
// for 32-bit registers.
func bucketsFor(memBytes, d int) int {
	b := memBytes / (d * 4)
	if b < 4 {
		b = 4
	}
	return b
}

// Fig14a reproduces Figure 14a: heavy-hitter F1 vs memory for
// FlyMon-BeauCoup/CMS/SuMax, UnivMon, and original BeauCoup (d=1, d=3).
func Fig14a(scale Scale, seed int64) *Table {
	tr := baseTrace(scale, seed)
	threshold := scale.heavyThreshold()

	exact := sketch.NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		exact.AddPacket(&tr.Packets[i])
	}
	truth := exact.HeavyHitters(uint64(threshold))
	candidates, universe := flowUniverse(exact.Counts())

	score := func(reported map[packet.CanonicalKey]bool) string {
		return f3(metrics.Classify(universe, truth, reported).F1())
	}

	t := &Table{
		Title: fmt.Sprintf("Fig. 14a — Heavy-hitter detection F1 vs memory (threshold %d)", threshold),
		Header: []string{"Mem (KB)", "FlyMon-BeauCoup(d=3)", "FlyMon-CMS(d=3)", "FlyMon-SuMax(d=3)",
			"UnivMon", "BeauCoup(d=1)", "BeauCoup(d=3)"},
	}
	for _, kb := range memSweepKB(scale) {
		mem := kb * 1024
		row := []string{itoa(kb)}

		// FlyMon-BeauCoup (d=3): heavy hitters as distinct-timestamp
		// counting (every packet's µs timestamp is distinct within a flow).
		{
			g := groups32(1, bucketsFor(mem, 3))[0]
			task, err := algorithms.InstallBeauCoup(g, 1, packet.MatchAll,
				packet.KeyFiveTuple, keyTimestamp, threshold, 3, nil)
			if err != nil {
				panic(err)
			}
			pl := core.NewPipelineWith(g)
			replay(pl, tr)
			row = append(row, score(task.Reported(candidates)))
		}
		// FlyMon-CMS (d=3).
		{
			g := groups32(1, bucketsFor(mem, 3))[0]
			task, err := algorithms.InstallCMS(g, 1, packet.MatchAll,
				packet.KeyFiveTuple, core.Const(1), 3, nil)
			if err != nil {
				panic(err)
			}
			pl := core.NewPipelineWith(g)
			replay(pl, tr)
			row = append(row, score(task.HeavyHitters(candidates, uint32(threshold))))
		}
		// FlyMon-SuMax(Sum) (d=3, three groups).
		{
			gs := groups32(3, bucketsFor(mem, 3))
			task, err := algorithms.InstallSuMaxSum(gs, 1, packet.MatchAll,
				packet.KeyFiveTuple, core.Const(1), nil)
			if err != nil {
				panic(err)
			}
			pl := core.NewPipelineWith(gs...)
			replay(pl, tr)
			row = append(row, score(task.HeavyHitters(candidates, uint32(threshold))))
		}
		// UnivMon.
		{
			u := sketch.NewUnivMonForBytes(packet.KeyFiveTuple, mem)
			for i := range tr.Packets {
				u.AddPacket(&tr.Packets[i])
			}
			row = append(row, score(u.HeavyHitters(uint64(threshold))))
		}
		// Original BeauCoup d=1 and d=3.
		for _, d := range []int{1, 3} {
			b := sketch.NewBeauCoupForBytes(packet.KeyFiveTuple, keyTimestamp, threshold, d, mem)
			for i := range tr.Packets {
				b.AddPacket(&tr.Packets[i])
			}
			row = append(row, score(b.Reported()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"counter-based algorithms reach F1≈1 around 100 KB; FlyMon-SuMax is the most memory-efficient; coupon-based algorithms trail (matches paper)")
	return t
}

// Fig14b reproduces Figure 14b: heavy-hitter F1 under probabilistic
// execution (p = 1, 0.5, 0.25, 0.125) — the sampling workaround for task
// intersection on one CMU.
func Fig14b(scale Scale, seed int64) *Table {
	tr := baseTrace(scale, seed)
	threshold := scale.heavyThreshold()
	probs := []float64{1.0, 0.5, 0.25, 0.125}

	exact := sketch.NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		exact.AddPacket(&tr.Packets[i])
	}
	truth := exact.HeavyHitters(uint64(threshold))
	candidates, universe := flowUniverse(exact.Counts())

	t := &Table{
		Title:  fmt.Sprintf("Fig. 14b — Heavy-hitter F1 under probabilistic execution (threshold %d)", threshold),
		Header: []string{"Mem (KB)", "p=1.0", "p=0.5", "p=0.25", "p=0.125"},
	}
	var kbs []int
	if scale == Full {
		kbs = []int{40, 80, 120, 160, 200}
	} else {
		kbs = []int{10, 20, 40, 80}
	}
	for _, kb := range kbs {
		mem := kb * 1024
		row := []string{itoa(kb)}
		for _, p := range probs {
			g := groups32(1, bucketsFor(mem, 3))[0]
			task, err := algorithms.InstallCMS(g, 1, packet.MatchAll,
				packet.KeyFiveTuple, core.Const(1), 3, nil)
			if err != nil {
				panic(err)
			}
			pl := core.NewPipelineWith(g)
			for _, loc := range pl.Locate(1) {
				loc.Rule.Prob = p
			}
			replay(pl, tr)
			// Sampling scales counts by p: threshold scales with it.
			scaled := uint32(float64(threshold) * p)
			if scaled < 1 {
				scaled = 1
			}
			reported := task.HeavyHitters(candidates, scaled)
			row = append(row, f3(metrics.Classify(universe, truth, reported).F1()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "sampling has little effect on heavy hitters: their counts dominate the scaled threshold")
	return t
}

// Fig14c reproduces Figure 14c: DDoS-victim detection F1 vs memory for
// FlyMon-BeauCoup and original BeauCoup at d=1 and d=3.
func Fig14c(scale Scale, seed int64) *Table {
	flows, packets := scale.workload()
	tr := trace.Generate(trace.Config{Flows: flows, Packets: packets, Seed: seed})
	threshold := 512
	if scale == Small {
		threshold = 128
	}
	// Victims well above and below the threshold (×¼ … ×4, geometric)
	// make classification meaningful without being dominated by the coupon
	// collector's variance at the boundary.
	for v := 0; v < 24; v++ {
		factor := 0.25 * math.Pow(4/0.25, float64(v)/23)
		attackers := int(float64(threshold) * factor)
		tr.InjectDDoS(packet.IPv4(203, 0, 113, byte(v)), attackers, 2, seed+int64(v))
	}

	exact := sketch.NewExactDistinct(packet.KeyDstIP, packet.KeySrcIP)
	for i := range tr.Packets {
		exact.AddPacket(&tr.Packets[i])
	}
	truth := exact.Over(threshold)
	candidates, universe := flowUniverse(exact.Counts())

	t := &Table{
		Title: fmt.Sprintf("Fig. 14c — DDoS-victim detection F1 vs memory (threshold %d distinct SrcIPs)", threshold),
		Header: []string{"Mem (KB)", "FlyMon-BeauCoup(d=1)", "FlyMon-BeauCoup(d=3)",
			"BeauCoup(d=1)", "BeauCoup(d=3)"},
	}
	for _, kb := range memSweepKB(scale) {
		mem := kb * 1024
		row := []string{itoa(kb)}
		for _, d := range []int{1, 3} {
			g := groups32(1, bucketsFor(mem, d))[0]
			task, err := algorithms.InstallBeauCoup(g, 1, packet.MatchAll,
				packet.KeyDstIP, packet.KeySrcIP, threshold, d, nil)
			if err != nil {
				panic(err)
			}
			pl := core.NewPipelineWith(g)
			replay(pl, tr)
			row = append(row, f3(metrics.Classify(universe, truth, task.Reported(candidates)).F1()))
		}
		for _, d := range []int{1, 3} {
			b := sketch.NewBeauCoupForBytes(packet.KeyDstIP, packet.KeySrcIP, threshold, d, mem)
			for i := range tr.Packets {
				b.AddPacket(&tr.Packets[i])
			}
			row = append(row, f3(metrics.Classify(universe, truth, b.Reported()).F1()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"FlyMon-BeauCoup's CMS-style multi-table collision hardening overtakes the original once memory passes ~100 KB (paper's finding)")
	return t
}

// Fig14d reproduces Figure 14d: flow-cardinality relative error vs memory
// for BeauCoup's coupon estimator and FlyMon-HLL.
func Fig14d(scale Scale, seed int64) *Table {
	tr := baseTrace(scale, seed)
	exact := sketch.NewExactCardinality(packet.KeyFiveTuple)
	for i := range tr.Packets {
		exact.AddPacket(&tr.Packets[i])
	}
	truth := float64(exact.Cardinality())

	t := &Table{
		Title:  fmt.Sprintf("Fig. 14d — Flow-cardinality RE vs memory (true cardinality %d)", exact.Cardinality()),
		Header: []string{"Mem (bytes)", "BeauCoup RE", "FlyMon-HLL RE"},
	}
	for _, mem := range []int{16, 64, 256, 1024, 8192} {
		row := []string{itoa(mem)}
		// BeauCoup multi-resolution coupon bank.
		{
			b := sketch.NewBeauCoupCardinalityForBytes(packet.KeyFiveTuple, mem)
			for i := range tr.Packets {
				b.AddPacket(&tr.Packets[i])
			}
			row = append(row, f3(metrics.RE(truth, b.Estimate())))
		}
		// FlyMon-HLL on a CMU (32-bit buckets: 4 bytes per register).
		{
			buckets := mem / 4
			if buckets < 4 {
				buckets = 4
			}
			g := groups32(1, buckets)[0]
			task, err := algorithms.InstallHLL(g, 1, packet.MatchAll, packet.KeyFiveTuple, core.MemRange{})
			if err != nil {
				panic(err)
			}
			pl := core.NewPipelineWith(g)
			replay(pl, tr)
			est, err := task.Estimate()
			if err != nil {
				panic(err)
			}
			row = append(row, f3(metrics.RE(truth, est)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"BeauCoup reaches RE<0.2 with tens of bytes; HLL needs KBs but then wins on precision (paper's crossover)")
	return t
}

// Fig14e reproduces Figure 14e: flow-entropy relative error vs memory for
// UnivMon and FlyMon-MRAC (+EM).
func Fig14e(scale Scale, seed int64) *Table {
	tr := baseTrace(scale, seed)
	exact := sketch.NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		exact.AddPacket(&tr.Packets[i])
	}
	counts := make([]uint64, 0, exact.Flows())
	for _, c := range exact.Counts() {
		counts = append(counts, c)
	}
	truth := metrics.Entropy(counts)

	var kbs []int
	if scale == Full {
		kbs = []int{200, 300, 400, 500}
	} else {
		kbs = []int{20, 50, 100, 200}
	}
	t := &Table{
		Title:  fmt.Sprintf("Fig. 14e — Flow-entropy RE vs memory (true entropy %.3f bits)", truth),
		Header: []string{"Mem (KB)", "UnivMon RE", "FlyMon-MRAC RE"},
	}
	for _, kb := range kbs {
		mem := kb * 1024
		row := []string{itoa(kb)}
		{
			u := sketch.NewUnivMonForBytes(packet.KeyFiveTuple, mem)
			for i := range tr.Packets {
				u.AddPacket(&tr.Packets[i])
			}
			row = append(row, f3(metrics.RE(truth, u.Entropy())))
		}
		{
			g := groups32(1, bucketsFor(mem, 1))[0]
			task, err := algorithms.InstallMRAC(g, 1, packet.MatchAll, packet.KeyFiveTuple, nil)
			if err != nil {
				panic(err)
			}
			pl := core.NewPipelineWith(g)
			replay(pl, tr)
			counters, err := task.Counters()
			if err != nil {
				panic(err)
			}
			dist := analysis.MRACDistribution(counters, 2048, 8)
			row = append(row, f3(metrics.RE(truth, metrics.EntropyFromDistribution(dist))))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "MRAC's EM inversion reaches low RE with less memory than UnivMon (paper: 200 KB vs 340 KB)")
	return t
}

// Fig14f reproduces Figure 14f: maximum inter-arrival-time ARE vs memory
// for d=2 and d=3 ensembles of the three-CMU combinatorial task.
func Fig14f(scale Scale, seed int64) *Table {
	flows, packets := scale.workload()
	tr := trace.Generate(trace.Config{Flows: flows, Packets: packets, Seed: seed})
	exact := sketch.NewExactMaxInterval(packet.KeyFiveTuple)
	for i := range tr.Packets {
		exact.AddPacket(&tr.Packets[i])
	}

	var memsMB []float64
	if scale == Full {
		memsMB = []float64{4, 6, 8, 10}
	} else {
		memsMB = []float64{0.1, 0.25, 0.5, 1}
	}
	t := &Table{
		Title:  "Fig. 14f — Max inter-arrival time ARE vs memory",
		Header: []string{"Mem (MB)", "d=2 ARE", "d=3 ARE"},
	}
	for _, mb := range memsMB {
		mem := int(mb * 1024 * 1024)
		row := []string{f2(mb)}
		for _, d := range []int{2, 3} {
			buckets := mem / (d * 3 * 4)
			gs := groups32(3*d, buckets)
			ens, err := algorithms.InstallMaxIntervalEnsemble(gs, 1, packet.MatchAll, packet.KeyFiveTuple, d)
			if err != nil {
				panic(err)
			}
			pl := core.NewPipelineWith(gs...)
			replay(pl, tr)
			var areSum float64
			n := 0
			for k, truth := range exact.Values() {
				if truth == 0 {
					continue
				}
				est := uint64(ens.EstimateKey(k)) * 1000 // µs → ns
				areSum += metrics.RE(float64(truth), float64(est))
				n++
			}
			if n == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, f3(areSum/float64(n)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "taking the minimum across d instances trims collision-inflated intervals; d=3 dominates d=2")
	return t
}

// Fig14g reproduces Figure 14g: existence-check false-positive rate vs
// memory, with and without the bucket-bit-packing optimization.
func Fig14g(scale Scale, seed int64) *Table {
	inserted, probes := 20_000, 95_000
	if scale == Small {
		inserted, probes = 4_000, 20_000
	}
	insTrace := trace.Generate(trace.Config{Flows: inserted, Packets: inserted * 2, Seed: seed})
	probeTrace := trace.Generate(trace.Config{Flows: probes, Packets: probes, Seed: seed + 7})

	member := sketch.NewExactMembership(packet.KeyFiveTuple)
	for i := range insTrace.Packets {
		member.Insert(&insTrace.Packets[i])
	}

	t := &Table{
		Title:  fmt.Sprintf("Fig. 14g — Existence-check false positives vs memory (%d inserted keys)", member.Size()),
		Header: []string{"Mem (KB)", "FP w/o opt", "FP w/ opt"},
	}
	for _, kb := range []int{2, 4, 6, 8, 10, 20, 40} {
		mem := kb * 1024
		row := []string{itoa(kb)}
		for _, packed := range []bool{false, true} {
			g := groups32(1, bucketsFor(mem, 3))[0]
			task, err := algorithms.InstallBloom(g, 1, packet.MatchAll, packet.KeyFiveTuple, 3, packed, nil)
			if err != nil {
				panic(err)
			}
			pl := core.NewPipelineWith(g)
			replay(pl, insTrace)
			fp, neg := 0, 0
			for i := range probeTrace.Packets {
				p := &probeTrace.Packets[i]
				if member.Contains(p) {
					continue
				}
				neg++
				if task.ContainsKey(packet.KeyFiveTuple.Extract(p)) {
					fp++
				}
			}
			row = append(row, f4(float64(fp)/float64(neg)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"bit packing multiplies usable membership bits by the bucket width (32×), collapsing the FP rate (paper: <0.1% at 40 KB)")
	return t
}

// replay pushes every packet of tr through pl's compiled fast path: one
// snapshot compilation, then a sequential batch on a fresh worker context
// — the same code path the concurrent controller API uses, kept
// single-worker here so every figure is deterministic.
func replay(pl *core.Pipeline, tr *trace.Trace) {
	pl.Compile().ProcessBatch(tr.Packets)
}
