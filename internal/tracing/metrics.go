package tracing

import (
	"fmt"
	"io"
	"sort"

	"flymon/internal/telemetry"
)

// WriteMetrics renders the tracer's Prometheus series: total/dropped span
// counters plus one span-latency histogram per operation name. flymond
// registers this on the telemetry registry's /metrics exposition via
// Registry.AddMetricsWriter, so the trace plane shows up next to the
// telemetry plane without the two packages depending on each other's
// internals. Safe on a nil tracer (writes nothing but the zero counters'
// headers are skipped too — a daemon without tracing exposes no trace
// series).
func (t *Tracer) WriteMetrics(w io.Writer) {
	if t == nil {
		return
	}
	_, total, droppedN := t.buf.snapshot()
	fmt.Fprintf(w, "# HELP flymon_trace_spans_total Control-plane spans recorded by the tracer.\n")
	fmt.Fprintf(w, "# TYPE flymon_trace_spans_total counter\n")
	fmt.Fprintf(w, "flymon_trace_spans_total %d\n", total)
	fmt.Fprintf(w, "# HELP flymon_trace_dropped_total Spans overwritten by the bounded span buffer.\n")
	fmt.Fprintf(w, "# TYPE flymon_trace_dropped_total counter\n")
	fmt.Fprintf(w, "flymon_trace_dropped_total %d\n", droppedN)

	t.mu.Lock()
	ops := make([]string, 0, len(t.hists))
	snaps := make(map[string]telemetry.HistogramSnapshot, len(t.hists))
	for op, h := range t.hists {
		ops = append(ops, op)
		snaps[op] = h.Snapshot()
	}
	t.mu.Unlock()
	if len(ops) == 0 {
		return
	}
	sort.Strings(ops)

	const name = "flymon_trace_span_latency_seconds"
	fmt.Fprintf(w, "# HELP %s Span latency by operation name.\n", name)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	for _, op := range ops {
		h := snaps[op]
		var cum uint64
		for i, n := range h.Buckets {
			cum += n
			if i == telemetry.HistogramBuckets-1 {
				break // the open-ended bucket is the +Inf line below
			}
			if cum == 0 {
				continue // skip the empty prefix, like the telemetry writer
			}
			fmt.Fprintf(w, "%s_bucket{op=%q,le=\"%g\"} %d\n",
				name, op, float64(telemetry.BucketUpperNs(i))/1e9, cum)
		}
		fmt.Fprintf(w, "%s_bucket{op=%q,le=\"+Inf\"} %d\n", name, op, h.Count)
		fmt.Fprintf(w, "%s_sum{op=%q} %g\n", name, op, float64(h.SumNs)/1e9)
		fmt.Fprintf(w, "%s_count{op=%q} %d\n", name, op, h.Count)
	}
}
