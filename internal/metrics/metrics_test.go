package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRE(t *testing.T) {
	if got := RE(100, 110); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RE(100,110) = %v, want 0.1", got)
	}
	if got := RE(100, 90); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RE(100,90) = %v, want 0.1", got)
	}
	if RE(0, 0) != 0 {
		t.Error("RE(0,0) must be 0")
	}
	if !math.IsInf(RE(0, 5), 1) {
		t.Error("RE(0,5) must be +Inf")
	}
	if RE(50, 50) != 0 {
		t.Error("exact estimate must have zero RE")
	}
}

func TestARE(t *testing.T) {
	truth := map[string]uint64{"a": 100, "b": 200}
	est := map[string]uint64{"a": 110, "b": 180}
	want := (0.1 + 0.1) / 2
	if got := ARE(truth, est); math.Abs(got-want) > 1e-12 {
		t.Errorf("ARE = %v, want %v", got, want)
	}
	// Missing estimates count as zero.
	if got := ARE(map[string]uint64{"a": 10}, map[string]uint64{}); got != 1 {
		t.Errorf("missing estimate ARE = %v, want 1", got)
	}
	// Extra estimates are ignored (truth defines the flow set).
	if got := ARE(map[string]uint64{"a": 10}, map[string]uint64{"a": 10, "zzz": 5}); got != 0 {
		t.Errorf("extra-flow ARE = %v, want 0", got)
	}
	if ARE(map[string]uint64{}, nil) != 0 {
		t.Error("empty truth ARE must be 0")
	}
}

func classification() Classification {
	return Classification{TP: 8, FP: 2, FN: 4, TN: 86}
}

func TestPrecisionRecallF1(t *testing.T) {
	c := classification()
	if p := c.Precision(); math.Abs(p-0.8) > 1e-12 {
		t.Errorf("precision = %v, want 0.8", p)
	}
	if r := c.Recall(); math.Abs(r-8.0/12) > 1e-12 {
		t.Errorf("recall = %v", r)
	}
	wantF1 := 2 * 0.8 * (8.0 / 12) / (0.8 + 8.0/12)
	if f := c.F1(); math.Abs(f-wantF1) > 1e-12 {
		t.Errorf("F1 = %v, want %v", f, wantF1)
	}
}

func TestClassificationEdgeCases(t *testing.T) {
	empty := Classification{}
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Error("no reports and no truth: precision and recall are vacuously 1")
	}
	if empty.FalsePositiveRate() != 0 {
		t.Error("no negatives: FP rate 0")
	}
	allWrong := Classification{FP: 5, FN: 5}
	if allWrong.F1() != 0 {
		t.Error("all-wrong F1 must be 0")
	}
}

func TestClassify(t *testing.T) {
	universe := map[int]bool{1: true, 2: true, 3: true, 4: true}
	truth := map[int]bool{1: true, 2: true}
	reported := map[int]bool{2: true, 3: true}
	c := Classify(universe, truth, reported)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Errorf("Classify = %+v, want 1/1/1/1", c)
	}
}

func TestF1BoundsProperty(t *testing.T) {
	f := func(tp, fp, fn, tn uint8) bool {
		c := Classification{TP: int(tp), FP: int(fp), FN: int(fn), TN: int(tn)}
		f1 := c.F1()
		return f1 >= 0 && f1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFalsePositiveRate(t *testing.T) {
	c := Classification{FP: 1, TN: 99}
	if got := c.FalsePositiveRate(); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("FP rate = %v, want 0.01", got)
	}
}

func TestEntropyKnownValues(t *testing.T) {
	// Uniform over 4 symbols → 2 bits.
	if h := Entropy([]uint64{5, 5, 5, 5}); math.Abs(h-2) > 1e-12 {
		t.Errorf("uniform-4 entropy = %v, want 2", h)
	}
	// Single symbol → 0 bits.
	if h := Entropy([]uint64{42}); h != 0 {
		t.Errorf("degenerate entropy = %v, want 0", h)
	}
	if h := Entropy(nil); h != 0 {
		t.Errorf("empty entropy = %v, want 0", h)
	}
	// Zeros are skipped.
	if h := Entropy([]uint64{5, 0, 5, 0}); math.Abs(h-1) > 1e-12 {
		t.Errorf("entropy with zeros = %v, want 1", h)
	}
}

func TestEntropyFromDistributionMatchesEntropy(t *testing.T) {
	// counts = {1,1,2,4} ⇒ dist = {1:2, 2:1, 4:1}.
	counts := []uint64{1, 1, 2, 4}
	dist := map[uint64]float64{1: 2, 2: 1, 4: 1}
	if d := math.Abs(Entropy(counts) - EntropyFromDistribution(dist)); d > 1e-9 {
		t.Errorf("entropy forms disagree by %v", d)
	}
}

func TestEntropyNonNegativeProperty(t *testing.T) {
	f := func(xs []uint16) bool {
		counts := make([]uint64, len(xs))
		for i, x := range xs {
			counts[i] = uint64(x)
		}
		return Entropy(counts) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanFloat(t *testing.T) {
	if m := MeanFloat([]float64{1, 2, 3}); math.Abs(m-2) > 1e-12 {
		t.Errorf("mean = %v", m)
	}
	if MeanFloat(nil) != 0 {
		t.Error("empty mean must be 0")
	}
}
