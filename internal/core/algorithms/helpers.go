// Package algorithms composes FlyMon's built-in measurement algorithms
// (Table 3, §4, Appendix D) from CMU rules: FlyMon-CMS, FlyMon-BloomFilter,
// FlyMon-HLL, FlyMon-BeauCoup, FlyMon-MRAC, FlyMon-SuMax (Sum and Max),
// FlyMon-LinearCounting, FlyMon-TowerSketch, FlyMon-CounterBraids, and the
// combinatorial max-inter-arrival task. Each Install function emits exactly
// the runtime rules the control plane would install; each query helper
// performs the corresponding control-plane register readout and analysis.
package algorithms

import (
	"fmt"

	"flymon/internal/core"
	"flymon/internal/packet"
)

// rowRotation is the bit offset between the compressed-key sub-parts given
// to consecutive CMUs of a group, mirroring the paper's example of 0–15,
// 8–23, 16–31 (§3.2).
const rowRotation = 8

// EnsureUnit returns the index of a compression unit in g configured for
// spec, configuring a free unit when none matches (the control plane's
// greedy reuse of compressed keys, §3.4).
func EnsureUnit(g *core.Group, spec packet.KeySpec) (int, error) {
	if i := g.FindUnit(spec); i >= 0 {
		return i, nil
	}
	i := g.FreeUnit()
	if i < 0 {
		return -1, fmt.Errorf("algorithms: group %d has no free compression unit for key %s", g.ID(), spec)
	}
	if err := g.ConfigureUnit(i, spec); err != nil {
		return -1, err
	}
	return i, nil
}

// rowSelector returns the key selector for row `row` of a d-row algorithm:
// the shared compressed key from `unit`, rotated by row·8 bits so each CMU
// consumes a different sub-part.
func rowSelector(unit, row int) core.Selector {
	return core.FullKey(unit).SubRange(rowRotation*row, 32)
}

// rowIndex recomputes the register index row `row` used for canonical key
// k — the control-plane readout path shared by all query helpers.
func rowIndex(g *core.Group, unit, row int, k packet.CanonicalKey, mem core.MemRange, tr core.TranslationMethod) uint32 {
	keys := make([]uint32, g.Units())
	keys[unit] = g.HashKey(unit, k)
	addr := rowSelector(unit, row).Resolve(keys)
	return core.Translate(addr, mem, tr)
}

// wholeRegisterRows returns d MemRanges each covering CMU row's whole
// register — the standalone (single-task) placement.
func wholeRegisterRows(g *core.Group, base, d int) []core.MemRange {
	rows := make([]core.MemRange, d)
	for i := range rows {
		rows[i] = core.MemRange{Base: 0, Buckets: g.CMU(base + i).Register().Size()}
	}
	return rows
}

// checkRows validates a placement of d rows against a group starting at CMU
// `base`.
func checkRows(g *core.Group, rows []core.MemRange, base, d int) ([]core.MemRange, error) {
	if base < 0 || base+d > g.CMUs() {
		return nil, fmt.Errorf("algorithms: rows [%d,%d) exceed group's %d CMUs", base, base+d, g.CMUs())
	}
	if rows == nil {
		return wholeRegisterRows(g, base, d), nil
	}
	if len(rows) != d {
		return nil, fmt.Errorf("algorithms: placement has %d rows, algorithm needs %d", len(rows), d)
	}
	return rows, nil
}

// baseCMU interprets the optional trailing first-CMU index every
// single-group installer accepts (default 0: row i on CMU i).
func baseCMU(at []int) int {
	if len(at) > 0 {
		return at[0]
	}
	return 0
}
