package netwide

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"flymon/internal/controlplane"
	"flymon/internal/core/algorithms"
	"flymon/internal/packet"
	"flymon/internal/rpc"
	"flymon/internal/sketch"
	"flymon/internal/telemetry"
)

// FleetOptions tunes the remote fleet's failure behavior.
type FleetOptions struct {
	// AllowPartial lets fleet-wide queries return a merged result over the
	// reachable subset of switches (annotated in a QueryReport) instead of
	// failing the whole query when one daemon is down. A sketch merged
	// over k of n switches is still a valid (under)estimate.
	AllowPartial bool
	// OpTimeout bounds one fleet-wide fan-out (deploy, remove, query).
	// Switches that have not answered by then are counted as failed for
	// this operation; their in-flight calls still complete in the
	// background and update health. 0 = wait for every per-call timeout.
	OpTimeout time.Duration
	// DownAfter consecutive failures mark a switch Down (default 3; the
	// first failure already marks it Degraded).
	DownAfter int
	// Telemetry, when set, counts fan-outs, per-switch operation failures,
	// partial merges, and health-state transitions (normally a Registry's
	// Fleet section). nil = uninstrumented.
	Telemetry *telemetry.FleetStats
	// Journal, when set, records fleet lifecycle events — switch ejects and
	// rejoins, reconciler re-deploys — next to the controller's own
	// reconfiguration journal. nil = unjournaled.
	Journal *telemetry.Journal
	// Clock overrides time.Now for health timestamps and liveness state
	// machines (tests drive time without sleeping). nil = time.Now.
	Clock func() time.Time
}

func (o FleetOptions) withDefaults() FleetOptions {
	if o.DownAfter <= 0 {
		o.DownAfter = 3
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// RemoteFleet is the deployed form of Fleet: the switches are flymond
// daemons reached over the control channel. The central controller keeps a
// local MIRROR controller built from the same configuration and fed the
// same task sequence — controller construction and placement are
// deterministic, so the mirror computes the exact hash mappings and
// register indices the remote switches use, while the remote daemons
// provide the actual register contents.
//
// All fleet operations fan out concurrently and track per-switch health;
// with AllowPartial set, queries degrade gracefully when daemons are
// unreachable instead of wedging the whole fleet on one dead switch.
type RemoteFleet struct {
	clients []*rpc.Client
	mirror  *controlplane.Controller
	opts    FleetOptions
	health  *healthTracker

	mu      sync.Mutex
	taskIDs map[string]int                   // mirror task ID (== remote IDs by construction)
	specs   map[string]controlplane.TaskSpec // desired spec per task, for reconciler re-deploys
	// tombstones marks tasks whose Remove partially failed: the handle is
	// kept (so manual retries work) but the reconciler must finish the
	// removal instead of re-deploying the task. name → task ID.
	tombstones map[string]int

	liveness *LivenessManager
	recon    *reconciler
	reconMu  sync.Mutex // serializes Reconcile passes
	stopOnce sync.Once
}

// NewRemoteFleet wraps daemon connections with default options (strict
// all-or-nothing queries). cfg MUST equal the configuration every daemon
// was started with (flymond's -groups/-buckets/-bitwidth flags); a
// mismatch silently corrupts index computation, so deployments should
// verify with a known-key probe (see VerifyAlignment).
func NewRemoteFleet(clients []*rpc.Client, cfg controlplane.Config) *RemoteFleet {
	return NewRemoteFleetOptions(clients, cfg, FleetOptions{})
}

// NewRemoteFleetOptions wraps daemon connections with explicit failure
// options.
func NewRemoteFleetOptions(clients []*rpc.Client, cfg controlplane.Config, opts FleetOptions) *RemoteFleet {
	opts = opts.withDefaults()
	addrs := make([]string, len(clients))
	for i, c := range clients {
		addrs[i] = c.Addr()
	}
	h := newHealthTracker(len(clients), opts.DownAfter, addrs)
	h.tele = opts.Telemetry
	h.now = opts.Clock
	return &RemoteFleet{
		clients:    clients,
		mirror:     controlplane.NewController(cfg),
		opts:       opts,
		health:     h,
		taskIDs:    make(map[string]int),
		specs:      make(map[string]controlplane.TaskSpec),
		tombstones: make(map[string]int),
	}
}

// Size returns the number of remote switches.
func (f *RemoteFleet) Size() int { return len(f.clients) }

// Health returns the per-switch health table (state, consecutive and
// total failures, last error, liveness session) built from every fleet
// operation and hello round so far.
func (f *RemoteFleet) Health() []SwitchHealth { return f.health.snapshot() }

// journal records one fleet lifecycle event, if a journal is attached
// (task 0 = fleet-level event not tied to one task).
func (f *RemoteFleet) journal(kind string, task int, detail string, err error) {
	if f.opts.Journal == nil {
		return
	}
	ev := telemetry.Event{
		Kind:   kind,
		Task:   task,
		Detail: detail,
		OK:     err == nil,
	}
	if err != nil {
		ev.Err = err.Error()
	}
	f.opts.Journal.Record(ev)
}

// StartLiveness attaches BFD-style keepalive sessions to every switch and
// makes them the fleet's primary health signal: a switch whose session is
// not reported-Up is ejected from fan-outs and merges without issuing an
// RPC, and readmitted (with its op-failure residue cleared) the moment
// the session is Up again. Call Stop to tear the sessions down.
func (f *RemoteFleet) StartLiveness(opts LivenessOptions) {
	if f.liveness != nil {
		return
	}
	if opts.Clock == nil {
		opts.Clock = f.opts.Clock
	}
	addrs := make([]string, len(f.clients))
	for i, c := range f.clients {
		addrs[i] = c.Addr()
	}
	m := NewLivenessManager(addrs, opts)
	m.onEvent = f.onSessionEvent
	f.liveness = m
	m.Start()
}

// onSessionEvent folds one hello round's outcome into health, telemetry,
// and the journal, and pokes the reconciler on rejoin.
func (f *RemoteFleet) onSessionEvent(idx int, ev sessionEvent, snap SessionSnapshot) {
	wasUp := false
	if h := f.health.snapshot(); idx < len(h) {
		wasUp = h[idx].SessionUp
	}
	f.health.setSession(idx, snap)
	if tele := f.opts.Telemetry; tele != nil {
		if ev.StateChanged {
			switch ev.To {
			case SessionUp:
				tele.SessionToUp.Add(1)
			case SessionInit:
				tele.SessionToInit.Add(1)
			case SessionDown:
				tele.SessionToDown.Add(1)
			}
		}
		if ev.DetectionTime > 0 {
			tele.DetectionTime.Observe(ev.DetectionTime)
		}
		tele.SetSession(telemetry.SessionGauge{
			Switch: idx,
			Addr:   snap.Addr,
			State:  snap.State.String(),
			Up:     snap.ReportedUp,
			Damped: snap.Damped,
		})
	}
	if wasUp && !snap.ReportedUp {
		if f.opts.Telemetry != nil {
			f.opts.Telemetry.Ejects.Add(1)
		}
		detail := fmt.Sprintf("switch %d (%s): session %s", idx, snap.Addr, snap.State)
		if ev.Restarted {
			detail += " (daemon restarted)"
		}
		if snap.Damped {
			detail += " (flap-damped)"
		}
		f.journal("eject", 0, detail, nil)
	}
	if !wasUp && snap.ReportedUp {
		if f.opts.Telemetry != nil {
			f.opts.Telemetry.Rejoins.Add(1)
		}
		f.journal("rejoin", 0, fmt.Sprintf("switch %d (%s): session up", idx, snap.Addr), nil)
		f.pokeReconciler()
	}
}

// Sessions returns the liveness sessions' current snapshots (nil when
// liveness is not running).
func (f *RemoteFleet) Sessions() []SessionSnapshot {
	if f.liveness == nil {
		return nil
	}
	return f.liveness.Snapshot()
}

// Stop tears down the liveness sessions and the reconciler, if running.
// The RPC clients are the caller's and stay open.
func (f *RemoteFleet) Stop() {
	f.stopOnce.Do(func() {
		if f.recon != nil {
			f.recon.stop()
		}
		if f.liveness != nil {
			f.liveness.Stop()
		}
	})
}

// fanOut runs op on every switch concurrently and collects per-switch
// errors, bounded by OpTimeout. Late completions still record health.
// Switches a liveness session has declared not-Up are ejected up front:
// they fail immediately with a liveness error and no RPC is issued, so a
// dead daemon costs a fleet query nothing (no timeout to wait out).
func (f *RemoteFleet) fanOut(op func(i int, c *rpc.Client) error) map[int]error {
	if f.opts.Telemetry != nil {
		f.opts.Telemetry.FanOuts.Add(1)
	}
	type result struct {
		i   int
		err error
	}
	errs := make(map[int]error)
	seen := make(map[int]bool, len(f.clients))
	ch := make(chan result, len(f.clients))
	launched := 0
	for i, c := range f.clients {
		if reason, ok := f.health.ejected(i); ok {
			errs[i] = fmt.Errorf("netwide: switch %d ejected (%s)", i, reason)
			seen[i] = true
			if f.opts.Telemetry != nil {
				f.opts.Telemetry.OpFailures.Add(1)
			}
			continue
		}
		launched++
		go func(i int, c *rpc.Client) {
			err := op(i, c)
			if err != nil && f.opts.Telemetry != nil {
				f.opts.Telemetry.OpFailures.Add(1)
			}
			f.health.record(i, err)
			ch <- result{i, err}
		}(i, c)
	}
	var timeout <-chan time.Time
	if f.opts.OpTimeout > 0 {
		t := time.NewTimer(f.opts.OpTimeout)
		defer t.Stop()
		timeout = t.C
	}
	for n := 0; n < launched; n++ {
		select {
		case r := <-ch:
			seen[r.i] = true
			if r.err != nil {
				errs[r.i] = r.err
			}
		case <-timeout:
			for i := range f.clients {
				if !seen[i] {
					errs[i] = fmt.Errorf("netwide: fleet deadline (%v) exceeded", f.opts.OpTimeout)
				}
			}
			return errs
		}
	}
	return errs
}

// Deploy installs the spec on every daemon and on the local mirror,
// fanning out concurrently. Deployment stays all-or-nothing: a task that
// exists only on part of the fleet would silently under-merge forever, so
// any failure rolls back the switches that did deploy.
func (f *RemoteFleet) Deploy(spec controlplane.TaskSpec) error {
	f.mu.Lock()
	if _, ok := f.taskIDs[spec.Name]; ok {
		f.mu.Unlock()
		return fmt.Errorf("netwide: task %q already deployed", spec.Name)
	}
	mt, err := f.mirror.AddTask(spec)
	if err != nil {
		f.mu.Unlock()
		return fmt.Errorf("netwide: mirror deploy of %q: %w", spec.Name, err)
	}
	f.mu.Unlock()

	var dmu sync.Mutex
	deployed := make(map[int]int) // switch index → remote task ID
	var diverged error
	errs := f.fanOut(func(i int, c *rpc.Client) error {
		rt, err := c.AddTask(spec)
		if err != nil {
			return fmt.Errorf("netwide: deploying %q on daemon %d: %w", spec.Name, i, err)
		}
		dmu.Lock()
		deployed[i] = rt.ID
		if rt.ID != mt.ID && diverged == nil {
			// The daemon has diverged from the mirror (other tasks were
			// deployed out of band): refuse rather than mis-index.
			diverged = fmt.Errorf("netwide: daemon %d assigned task ID %d, mirror expected %d — configurations diverged",
				i, rt.ID, mt.ID)
		}
		dmu.Unlock()
		return nil
	})
	dmu.Lock()
	defer dmu.Unlock()
	if len(errs) > 0 || diverged != nil {
		// Roll back the daemons that did install, best effort. Plain
		// goroutines, not fanOut: a no-op on an untouched daemon must not
		// be recorded as a health probe.
		var wg sync.WaitGroup
		for i, id := range deployed {
			wg.Add(1)
			go func(i, id int) {
				defer wg.Done()
				_ = f.clients[i].RemoveTask(id)
			}(i, id)
		}
		wg.Wait()
		f.mu.Lock()
		_ = f.mirror.RemoveTask(mt.ID)
		f.mu.Unlock()
		if diverged != nil {
			return diverged
		}
		for _, i := range sortedKeys(errs) {
			return errs[i] // first failure in switch order
		}
	}
	f.mu.Lock()
	f.taskIDs[spec.Name] = mt.ID
	f.specs[spec.Name] = spec
	f.mu.Unlock()
	f.pokeReconciler()
	return nil
}

// Remove uninstalls the named task everywhere. On partial failure the
// task handle is KEPT so removal can be retried: forgetting the mapping
// would strand installed tasks on the unreachable switches forever. A
// retry treats "no task" answers as already-removed (removal is
// idempotent), so it only needs the stragglers to come back.
func (f *RemoteFleet) Remove(name string) error {
	f.mu.Lock()
	id, ok := f.taskIDs[name]
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("netwide: no task %q", name)
	}
	errs := f.fanOut(func(i int, c *rpc.Client) error {
		err := c.RemoveTask(id)
		if err != nil && strings.Contains(err.Error(), "no task") {
			return nil // removed by a previous, partially-failed attempt
		}
		return err
	})
	if len(errs) > 0 {
		// Tombstone the task: the handle stays (so a manual retry works)
		// but the reconciler now knows to finish the removal on the
		// stragglers instead of re-deploying the task onto the switches
		// that did remove it.
		f.mu.Lock()
		f.tombstones[name] = id
		f.mu.Unlock()
		return &PartialFailureError{Op: "remove", Task: name, Failed: errs, Total: len(f.clients)}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.mirror.RemoveTask(id); err != nil {
		return err
	}
	delete(f.taskIDs, name)
	delete(f.specs, name)
	delete(f.tombstones, name)
	return nil
}

// mergedRemoteRows reads the named task's registers from every reachable
// daemon and merges them with the combiner. With AllowPartial set, a
// subset merge succeeds and the QueryReport says which switches
// contributed; otherwise any unreachable daemon fails the query.
func (f *RemoteFleet) mergedRemoteRows(name string, combine func(dst, src []uint32) error) ([][]uint32, int, QueryReport, error) {
	f.mu.Lock()
	id, ok := f.taskIDs[name]
	f.mu.Unlock()
	var report QueryReport
	if !ok {
		return nil, 0, report, fmt.Errorf("netwide: no task %q", name)
	}
	// Each goroutine owns rows[i] until its result is received on the
	// channel inside fanOut; timed-out slots are never read.
	rows := make([][][]uint32, len(f.clients))
	var rmu sync.Mutex
	errs := f.fanOut(func(i int, c *rpc.Client) error {
		r, err := c.ReadRegisters(id)
		if err != nil {
			return fmt.Errorf("netwide: reading %q on daemon %d: %w", name, i, err)
		}
		rmu.Lock()
		rows[i] = r
		rmu.Unlock()
		return nil
	})
	report.Failed = make(map[int]string, len(errs))
	for i, err := range errs {
		report.Failed[i] = err.Error()
	}
	if len(errs) > 0 && !f.opts.AllowPartial {
		for _, i := range sortedKeys(errs) {
			return nil, 0, report, errs[i]
		}
	}
	var merged [][]uint32
	rmu.Lock()
	defer rmu.Unlock()
	for i := range f.clients {
		if _, failed := errs[i]; failed || rows[i] == nil {
			continue
		}
		if merged == nil {
			merged = rows[i] // the RPC client already returns fresh slices
			report.Contributed = append(report.Contributed, i)
			continue
		}
		if len(rows[i]) != len(merged) {
			return nil, 0, report, fmt.Errorf("netwide: daemon %d row count %d, expected %d", i, len(rows[i]), len(merged))
		}
		for r := range rows[i] {
			if err := combine(merged[r], rows[i][r]); err != nil {
				return nil, 0, report, err
			}
		}
		report.Contributed = append(report.Contributed, i)
	}
	if merged == nil {
		return nil, 0, report, &PartialFailureError{Op: "read", Task: name, Failed: errs, Total: len(f.clients)}
	}
	if len(errs) > 0 && f.opts.Telemetry != nil {
		// A degraded-mode merge went through without every switch.
		f.opts.Telemetry.PartialMerges.Add(1)
	}
	return merged, id, report, nil
}

// EstimateKey returns the fleet-wide frequency estimate for key k (counter
// tasks; packets must be measured at exactly one daemon). With
// AllowPartial set it may be computed over a subset of switches; use
// EstimateKeyPartial to learn which.
func (f *RemoteFleet) EstimateKey(name string, k packet.CanonicalKey) (uint64, error) {
	v, _, err := f.EstimateKeyPartial(name, k)
	return v, err
}

// EstimateKeyPartial is EstimateKey plus the QueryReport: which switches
// contributed to the merge and which were skipped (with their errors).
// When report.Partial() is true the estimate is a lower bound over the
// reachable part of the fleet.
func (f *RemoteFleet) EstimateKeyPartial(name string, k packet.CanonicalKey) (uint64, QueryReport, error) {
	merged, id, report, err := f.mergedRemoteRows(name, sketch.MergeAddRegisters)
	if err != nil {
		return 0, report, err
	}
	h, err := f.mirror.TaskHandle(id)
	if err != nil {
		return 0, report, err
	}
	cms, ok := h.(*algorithms.CMSTask)
	if !ok {
		return 0, report, fmt.Errorf("netwide: task %q is not a counter task", name)
	}
	min := ^uint32(0)
	for i := 0; i < cms.D; i++ {
		idx := cms.RowIndexFor(i, k) - uint32(cms.Rows[i].Base)
		if v := merged[i][idx]; v < min {
			min = v
		}
	}
	return uint64(min), report, nil
}

// VerifyAlignment checks that a daemon computes the same register indices
// as the mirror by comparing the two deployments' placements for a named
// task (a cheap structural probe; a full check would replay a known key).
func (f *RemoteFleet) VerifyAlignment(name string) error {
	f.mu.Lock()
	id, ok := f.taskIDs[name]
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("netwide: no task %q", name)
	}
	mrows, err := f.mirror.ReadRegisters(id)
	if err != nil {
		return err
	}
	for i, c := range f.clients {
		rrows, err := c.ReadRegisters(id)
		if err != nil {
			return err
		}
		if len(rrows) != len(mrows) {
			return fmt.Errorf("netwide: daemon %d has %d rows, mirror %d", i, len(rrows), len(mrows))
		}
		for r := range rrows {
			if len(rrows[r]) != len(mrows[r]) {
				return fmt.Errorf("netwide: daemon %d row %d has %d buckets, mirror %d",
					i, r, len(rrows[r]), len(mrows[r]))
			}
		}
	}
	return nil
}

// sortedKeys returns the map's switch indices in ascending order, so
// error selection and reports are deterministic.
func sortedKeys(m map[int]error) []int {
	out := make([]int, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}
