package metrics

import "sync/atomic"

// ShardCounters instruments the sharded register engine's reduction path:
// how often the control plane folded per-worker lanes back into shared
// state, how much it folded, and how often the dirtiness cursor let it
// skip the scan entirely. One instance lives on each controller running in
// sharded mode; all methods are safe for concurrent use.
type ShardCounters struct {
	drains        atomic.Uint64
	drainsSkipped atomic.Uint64
	bucketsMerged atomic.Uint64
}

// RecordDrain notes one drain pass that folded `buckets` nonzero lane
// buckets. A pass that found every register clean counts as skipped — the
// steady-state query path between batches.
func (c *ShardCounters) RecordDrain(buckets int) {
	if buckets == 0 {
		c.drainsSkipped.Add(1)
		return
	}
	c.drains.Add(1)
	c.bucketsMerged.Add(uint64(buckets))
}

// ShardStats is a point-in-time summary of the sharded engine, exposed to
// operators (flymond stats, CLI mode comparisons).
type ShardStats struct {
	// Workers is the lane count (0 = sharding disabled).
	Workers int
	// ShardedRules / FallbackRules are the live snapshot's compile-time
	// routing verdicts: rules on private lanes vs the shared CAS path.
	ShardedRules  int
	FallbackRules int
	// Drains counts drain passes that folded at least one bucket;
	// DrainsSkipped counts passes the dirtiness cursor elided;
	// BucketsMerged totals nonzero lane buckets folded.
	Drains        uint64
	DrainsSkipped uint64
	BucketsMerged uint64
}

// Stats snapshots the counters.
func (c *ShardCounters) Stats() ShardStats {
	return ShardStats{
		Drains:        c.drains.Load(),
		DrainsSkipped: c.drainsSkipped.Load(),
		BucketsMerged: c.bucketsMerged.Load(),
	}
}
