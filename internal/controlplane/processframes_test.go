package controlplane

import (
	"bytes"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"flymon/internal/mmtrace"
	"flymon/internal/packet"
	"flymon/internal/telemetry"
	"flymon/internal/trace"
)

// frameSpanSource is a core.FrameSource over one mmapped trace: workers
// race to claim fixed-width spans via an atomic cursor — the replay ring
// without the ring.
type frameSpanSource struct {
	t    *mmtrace.Trace
	span int
	next atomic.Int64
}

func (s *frameSpanSource) NextFrames(w int) (*mmtrace.Trace, int, int) {
	lo := int(s.next.Add(int64(s.span)) - int64(s.span))
	if lo >= s.t.Frames() {
		return nil, 0, 0
	}
	hi := lo + s.span
	if hi > s.t.Frames() {
		hi = s.t.Frames()
	}
	return s.t, lo, hi
}

func writeFramesTrace(t *testing.T, ps []packet.Packet) *mmtrace.Trace {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if err := w.WritePacket(&ps[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "frames.fmt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	mt, err := mmtrace.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mt.Close() })
	return mt
}

// richTaskSpecs is a task mix spanning every attribute the compiler knows —
// frequency (filtered and unfiltered), distinct, existence, and both max
// algorithms — so the frame engine faces the full compiled-rule surface:
// transforms, bus consumers, filters, and metadata parameters. The
// max-interval task's updates depend on packet order across buckets (the
// IntervalSub chain reads the Bloom stage's pre-update witness), so only
// single-worker replays of it are comparable against a sequential
// reference; withChains=false swaps in the order-independent mix that
// multi-worker drains must reproduce exactly.
func richTaskSpecs(withChains bool) []TaskSpec {
	specs := []TaskSpec{
		{Name: "hh", Key: packet.KeyFiveTuple, Attribute: AttrFrequency, MemBuckets: 4096, D: 3},
		{Name: "tcp-bytes", Filter: packet.Filter{Proto: 6}, Key: packet.KeySrcIP,
			Attribute: AttrFrequency, Param: ParamSpec{Kind: ParamPacketBytes}, MemBuckets: 2048, D: 2},
		{Name: "victims", Key: packet.KeyDstIP, Attribute: AttrDistinct,
			Param: ParamSpec{Kind: ParamFlowKey, Key: packet.KeySrcIP}, MemBuckets: 2048, D: 2},
		{Name: "seen", Key: packet.KeyFiveTuple, Attribute: AttrExistence,
			Param: ParamSpec{Kind: ParamFlowKey, Key: packet.KeyFiveTuple}, MemBuckets: 2048},
		{Name: "qdepth", Key: packet.KeyFiveTuple, Attribute: AttrMax,
			Param: ParamSpec{Kind: ParamQueueLength}, MemBuckets: 2048},
	}
	if withChains {
		specs = append(specs, TaskSpec{
			Name: "interval", Key: packet.KeySrcIP, Attribute: AttrMax,
			Param: ParamSpec{Kind: ParamPacketInterval}, MemBuckets: 2048,
		})
	}
	return specs
}

func newFramesController(t *testing.T, sharded bool, workers int, withChains bool, reg *telemetry.Registry) *Controller {
	t.Helper()
	ctrl := NewController(Config{
		Groups: 9, Buckets: 16384, BitWidth: 32,
		Workers: workers, ShardedState: sharded, Telemetry: reg,
	})
	t.Cleanup(ctrl.Close)
	for _, spec := range richTaskSpecs(withChains) {
		if _, err := ctrl.AddTask(spec); err != nil {
			t.Fatalf("AddTask(%s): %v", spec.Name, err)
		}
	}
	return ctrl
}

func compareTaskRegisters(t *testing.T, want, got *Controller) {
	t.Helper()
	for _, task := range got.Tasks() {
		g, err := got.ReadRegisters(task.ID)
		if err != nil {
			t.Fatal(err)
		}
		w, err := want.ReadRegisters(task.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(g) != len(w) {
			t.Fatalf("task %d (%s): %d rows vs %d", task.ID, task.Spec.Name, len(g), len(w))
		}
		for i := range g {
			for j := range g[i] {
				if g[i][j] != w[i][j] {
					t.Fatalf("task %d (%s) row %d bucket %d: frames %d, packets %d",
						task.ID, task.Spec.Name, i, j, g[i][j], w[i][j])
				}
			}
		}
	}
}

// TestProcessFrameSourceMatchesSequential drains raw frame spans through
// the pool (shared and sharded, several widths) over the full task mix and
// requires register readouts bit-identical to the sequential packet-path
// replay — the frame engine's controller-level acceptance check.
func TestProcessFrameSourceMatchesSequential(t *testing.T) {
	tr := trace.Generate(trace.Config{Flows: 300, Packets: 30_000, Seed: 15})
	mt := writeFramesTrace(t, tr.Packets)

	for _, mode := range []struct {
		name    string
		sharded bool
		workers int
	}{
		{"shared-1", false, 1},
		{"shared-4", false, 4},
		{"sharded-2", true, 2},
		{"sharded-4", true, 4},
	} {
		t.Run(mode.name, func(t *testing.T) {
			// The bus-chained max-interval task is order-dependent across
			// workers; only the single-worker drain replays it bit-exactly.
			withChains := mode.workers == 1 && !mode.sharded
			ref := newFramesController(t, false, 1, withChains, nil)
			ref.ProcessBatch(tr.Packets)
			ctrl := newFramesController(t, mode.sharded, mode.workers, withChains, nil)
			ctrl.ProcessFrameSource(&frameSpanSource{t: mt, span: 512})
			compareTaskRegisters(t, ref, ctrl)
		})
	}
}

// TestProcessFrameSourceTelemetryExact: after a frame-source drain
// quiesces, per-rule hit counts and packet totals must equal the
// sequential packet path's — the batched teleTick and per-rule batch
// counts must fold to the same totals.
func TestProcessFrameSourceTelemetryExact(t *testing.T) {
	tr := trace.Generate(trace.Config{Flows: 200, Packets: 20_000, Seed: 16})
	mt := writeFramesTrace(t, tr.Packets)

	refReg := telemetry.NewRegistry()
	ref := newFramesController(t, false, 1, false, refReg)
	ref.ProcessBatch(tr.Packets)

	gotReg := telemetry.NewRegistry()
	ctrl := newFramesController(t, false, 4, false, gotReg)
	ctrl.ProcessFrameSource(&frameSpanSource{t: mt, span: 300})

	refRep := refReg.Report().DataPlane
	gotRep := gotReg.Report().DataPlane
	if gotRep.Packets != refRep.Packets {
		t.Fatalf("packet totals differ: frames %d, packets %d", gotRep.Packets, refRep.Packets)
	}
	refHits := map[telemetry.RuleKey]uint64{}
	for _, r := range refRep.Rules {
		refHits[r.RuleKey] = r.Hits
	}
	if len(gotRep.Rules) != len(refRep.Rules) {
		t.Fatalf("rule counter sets differ: %d vs %d", len(gotRep.Rules), len(refRep.Rules))
	}
	for _, r := range gotRep.Rules {
		if r.Hits != refHits[r.RuleKey] {
			t.Fatalf("rule %+v hits %d, want %d", r.RuleKey, r.Hits, refHits[r.RuleKey])
		}
	}
	if gotRep.Stages.Preparation != refRep.Stages.Preparation {
		t.Fatalf("preparation-stage drops differ: frames %d, packets %d",
			gotRep.Stages.Preparation, refRep.Stages.Preparation)
	}
}

// deployingFrameSource deploys one extra task right before handing out the
// span that starts at frame `at` — a deterministic mid-replay
// reconfiguration when drained by a single worker.
type deployingFrameSource struct {
	frameSpanSource
	ctrl    *Controller
	at      int
	t       *testing.T
	newTask atomic.Int64
}

func (s *deployingFrameSource) NextFrames(w int) (*mmtrace.Trace, int, int) {
	tr, lo, hi := s.frameSpanSource.NextFrames(w)
	if tr != nil && lo == s.at {
		task, err := s.ctrl.AddTask(TaskSpec{
			Name: "late", Key: packet.KeyFiveTuple,
			Attribute: AttrFrequency, MemBuckets: 1024, D: 2,
		})
		if err != nil {
			s.t.Errorf("mid-drain deploy: %v", err)
		} else {
			s.newTask.Store(int64(task.ID))
		}
	}
	return tr, lo, hi
}

// TestProcessFrameSourceReconfigDeterministic: with one worker, a task
// deployed at a known span boundary must produce registers bit-identical
// to a sequential replay that deploys at exactly the same packet index —
// reconfiguration lands at batch boundaries on the frame path too.
func TestProcessFrameSourceReconfigDeterministic(t *testing.T) {
	tr := trace.Generate(trace.Config{Flows: 150, Packets: 16_000, Seed: 17})
	mt := writeFramesTrace(t, tr.Packets)
	const span, deployAt = 512, 7 * 512

	ref := newFramesController(t, false, 1, true, nil)
	ref.ProcessBatch(tr.Packets[:deployAt])
	if _, err := ref.AddTask(TaskSpec{
		Name: "late", Key: packet.KeyFiveTuple,
		Attribute: AttrFrequency, MemBuckets: 1024, D: 2,
	}); err != nil {
		t.Fatal(err)
	}
	ref.ProcessBatch(tr.Packets[deployAt:])

	ctrl := newFramesController(t, false, 1, true, nil)
	src := &deployingFrameSource{
		frameSpanSource: frameSpanSource{t: mt, span: span},
		ctrl:            ctrl, at: deployAt, t: t,
	}
	ctrl.ProcessFrameSource(src)
	if src.newTask.Load() == 0 {
		t.Fatal("mid-drain deploy never ran")
	}
	compareTaskRegisters(t, ref, ctrl)
}

// TestControllerBatchPathZeroAlloc gates the pooled-context sequential
// path: after warmup, ProcessBatch and the single-worker ProcessParallel
// arm (the readbatch replay engine's per-batch call on one-core hosts)
// must not allocate.
func TestControllerBatchPathZeroAlloc(t *testing.T) {
	ctrl := newFramesController(t, false, 1, true, nil)
	tr := trace.Generate(trace.Config{Flows: 100, Packets: 512, Seed: 18})
	ctrl.ProcessBatch(tr.Packets) // warm the pooled context
	if n := testing.AllocsPerRun(50, func() {
		ctrl.ProcessBatch(tr.Packets)
	}); n != 0 {
		t.Fatalf("ProcessBatch allocates %.1f times per batch, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		ctrl.ProcessParallel(tr.Packets, 1)
	}); n != 0 {
		t.Fatalf("ProcessParallel(·, 1) allocates %.1f times per batch, want 0", n)
	}
}
