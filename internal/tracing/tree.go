package tracing

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Node is one span plus its children, assembled controller-side from the
// span buffers of every process that participated in the trace.
type Node struct {
	Span     Span
	Children []*Node
}

// EndNs returns the node's wall-clock end in unix nanoseconds.
func (n *Node) EndNs() int64 { return n.Span.End() }

// Tree is one assembled trace. Root is nil when the root span was not
// among the collected spans (e.g. the originating process's buffer
// lapped); Orphans holds spans whose parent span is missing — under a
// complete collection both stay empty/non-nil respectively.
type Tree struct {
	ID      TraceID
	Root    *Node
	Orphans []*Node
	Spans   int
}

// Duration is the root span's duration (0 without a root).
func (t *Tree) Duration() time.Duration {
	if t.Root == nil {
		return 0
	}
	return time.Duration(t.Root.Span.DurNs)
}

// Assemble groups spans by trace ID and links parents to children. Spans
// from different processes mix freely — the IDs carry the causality.
// Trees come back newest-root-first (the order `flymonctl trace` prints).
func Assemble(spans []Span) []*Tree {
	byTrace := make(map[TraceID]map[SpanID]*Node)
	for _, sp := range spans {
		m := byTrace[sp.Trace]
		if m == nil {
			m = make(map[SpanID]*Node)
			byTrace[sp.Trace] = m
		}
		// Duplicate IDs (a span collected from two dumps) keep the first.
		if _, ok := m[sp.ID]; !ok {
			m[sp.ID] = &Node{Span: sp}
		}
	}
	trees := make([]*Tree, 0, len(byTrace))
	for id, m := range byTrace {
		tr := &Tree{ID: id, Spans: len(m)}
		for _, n := range m {
			if n.Span.Parent == 0 {
				if tr.Root == nil {
					tr.Root = n
				} else {
					tr.Orphans = append(tr.Orphans, n)
				}
				continue
			}
			if p := m[n.Span.Parent]; p != nil {
				p.Children = append(p.Children, n)
			} else {
				tr.Orphans = append(tr.Orphans, n)
			}
		}
		for _, n := range m {
			sort.Slice(n.Children, func(i, j int) bool {
				return n.Children[i].Span.StartNs < n.Children[j].Span.StartNs
			})
		}
		sort.Slice(tr.Orphans, func(i, j int) bool {
			return tr.Orphans[i].Span.StartNs < tr.Orphans[j].Span.StartNs
		})
		trees = append(trees, tr)
	}
	sort.Slice(trees, func(i, j int) bool {
		return treeStart(trees[i]) > treeStart(trees[j])
	})
	return trees
}

func treeStart(t *Tree) int64 {
	if t.Root != nil {
		return t.Root.Span.StartNs
	}
	if len(t.Orphans) > 0 {
		return t.Orphans[0].Span.StartNs
	}
	return 0
}

// PathStep is one node on a trace's critical path with its exclusive
// contribution: the node's duration minus the part covered by the next
// step down the path.
type PathStep struct {
	Node   *Node
	SelfNs int64
}

// CriticalPath walks from the root, at each node descending into the
// child that finishes last (the one the parent was still waiting on),
// and reports each step's exclusive time. An empty path means no root.
func (t *Tree) CriticalPath() []PathStep {
	if t == nil || t.Root == nil {
		return nil
	}
	var path []PathStep
	n := t.Root
	for {
		var next *Node
		for _, c := range n.Children {
			if next == nil || c.EndNs() > next.EndNs() {
				next = c
			}
		}
		self := n.Span.DurNs
		if next != nil {
			self -= next.Span.DurNs
			if self < 0 {
				self = 0
			}
		}
		path = append(path, PathStep{Node: n, SelfNs: self})
		if next == nil {
			return path
		}
		n = next
	}
}

// Dominant returns the critical-path step with the largest exclusive
// time below the root — the single place this operation's wall clock
// actually went. ok is false for rootless trees.
func (t *Tree) Dominant() (PathStep, bool) {
	path := t.CriticalPath()
	if len(path) == 0 {
		return PathStep{}, false
	}
	best := path[0]
	for _, st := range path[1:] {
		if st.SelfNs >= best.SelfNs {
			best = st
		}
	}
	return best, true
}

// Breakdown renders the one-line critical-path summary, e.g.
//
//	epoch_rotate 40.2ms: 31.0ms rpc:epoch_rotate on sw-17 (77%)
func (t *Tree) Breakdown() string {
	if t == nil || t.Root == nil {
		return fmt.Sprintf("trace %016x: %d span(s), root span missing", uint64(t.ID), t.Spans)
	}
	root := t.Root.Span
	dom, _ := t.Dominant()
	if dom.Node == t.Root && len(t.Root.Children) == 0 {
		return fmt.Sprintf("%s %s", root.Name, fmtDur(root.DurNs))
	}
	pct := 0.0
	if root.DurNs > 0 {
		pct = 100 * float64(dom.SelfNs) / float64(root.DurNs)
	}
	site := dom.Node.Span.Name
	if sw := t.pathSwitch(dom.Node); sw >= 0 {
		site += fmt.Sprintf(" on sw-%d", sw)
	}
	return fmt.Sprintf("%s %s: %s %s (%.0f%%)",
		root.Name, fmtDur(root.DurNs), fmtDur(dom.SelfNs), site, pct)
}

// pathSwitch finds the switch tag nearest to target along the critical
// path: target's own, else the closest tagged ancestor on the path.
func (t *Tree) pathSwitch(target *Node) int {
	sw := -1
	for _, st := range t.CriticalPath() {
		if st.Node.Span.Switch >= 0 {
			sw = st.Node.Span.Switch
		}
		if st.Node == target {
			return sw
		}
	}
	return sw
}

// Render prints the span tree with durations, switch/attempt/detail tags
// and error outcomes — the body of `flymonctl trace`.
func (t *Tree) Render(w io.Writer) {
	fmt.Fprintf(w, "trace %016x · %d span(s) · %s\n", uint64(t.ID), t.Spans, t.Breakdown())
	if t.Root != nil {
		renderNode(w, t.Root, 1)
	}
	for _, o := range t.Orphans {
		fmt.Fprintf(w, "  (orphan)\n")
		renderNode(w, o, 2)
	}
}

func renderNode(w io.Writer, n *Node, depth int) {
	for i := 0; i < depth; i++ {
		io.WriteString(w, "  ")
	}
	sp := n.Span
	fmt.Fprintf(w, "%-24s %10s", sp.Name, fmtDur(sp.DurNs))
	if sp.Switch >= 0 {
		fmt.Fprintf(w, "  sw-%d", sp.Switch)
	}
	if sp.Attempt > 1 {
		fmt.Fprintf(w, "  attempt=%d", sp.Attempt)
	}
	if sp.Detail != "" {
		fmt.Fprintf(w, "  %s", sp.Detail)
	}
	if sp.Err != "" {
		fmt.Fprintf(w, "  ERR: %s", sp.Err)
	}
	io.WriteString(w, "\n")
	for _, c := range n.Children {
		renderNode(w, c, depth+1)
	}
}

func fmtDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
