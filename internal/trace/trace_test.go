package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"flymon/internal/packet"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Flows: 100, Packets: 5000, Seed: 9})
	b := Generate(Config{Flows: 100, Packets: 5000, Seed: 9})
	if len(a.Packets) != len(b.Packets) {
		t.Fatal("same seed produced different lengths")
	}
	for i := range a.Packets {
		if a.Packets[i] != b.Packets[i] {
			t.Fatalf("same seed diverged at packet %d", i)
		}
	}
	c := Generate(Config{Flows: 100, Packets: 5000, Seed: 10})
	same := 0
	for i := range a.Packets {
		if a.Packets[i] == c.Packets[i] {
			same++
		}
	}
	if same == len(a.Packets) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGeneratePopulation(t *testing.T) {
	tr := Generate(Config{Flows: 500, Packets: 50_000, Seed: 1})
	if tr.Len() != 50_000 {
		t.Fatalf("packet count = %d", tr.Len())
	}
	flows := map[packet.CanonicalKey]int{}
	for i := range tr.Packets {
		flows[packet.KeyFiveTuple.Extract(&tr.Packets[i])]++
	}
	if len(flows) < 400 || len(flows) > 500 {
		t.Fatalf("distinct flows = %d, want close to 500", len(flows))
	}
	// Zipf skew: the top flow should dominate the median flow.
	max, total := 0, 0
	for _, c := range flows {
		if c > max {
			max = c
		}
		total += c
	}
	if max < total/20 {
		t.Fatalf("top flow carries %d of %d packets; distribution not heavy-tailed", max, total)
	}
}

func TestGenerateTimestampsSortedAndBounded(t *testing.T) {
	cfg := Config{Flows: 50, Packets: 5000, Seed: 2, DurationNs: 1e9}
	tr := Generate(cfg)
	var prev uint64
	for i := range tr.Packets {
		ts := tr.Packets[i].TimestampNs
		if ts < prev {
			t.Fatalf("timestamps not sorted at %d", i)
		}
		if ts >= cfg.DurationNs {
			t.Fatalf("timestamp %d beyond duration", ts)
		}
		prev = ts
	}
}

func TestGenerateFlowLifetimes(t *testing.T) {
	// Most flows must be short-lived (span < half the trace): stale-state
	// effects depend on it.
	tr := Generate(Config{Flows: 400, Packets: 40_000, Seed: 3})
	first := map[packet.CanonicalKey]uint64{}
	last := map[packet.CanonicalKey]uint64{}
	for i := range tr.Packets {
		k := packet.KeyFiveTuple.Extract(&tr.Packets[i])
		ts := tr.Packets[i].TimestampNs
		if _, ok := first[k]; !ok {
			first[k] = ts
		}
		last[k] = ts
	}
	var dur uint64 = 15e9
	short := 0
	for k := range first {
		if last[k]-first[k] < dur/2 {
			short++
		}
	}
	if float64(short) < 0.5*float64(len(first)) {
		t.Fatalf("only %d/%d flows are short-lived", short, len(first))
	}
}

func TestInjectDDoS(t *testing.T) {
	tr := Generate(Config{Flows: 100, Packets: 5000, Seed: 4})
	victim := packet.IPv4(1, 2, 3, 4)
	tr.InjectDDoS(victim, 300, 2, 5)
	srcs := map[uint32]bool{}
	for i := range tr.Packets {
		if tr.Packets[i].DstIP == victim {
			srcs[tr.Packets[i].SrcIP] = true
		}
	}
	if len(srcs) != 300 {
		t.Fatalf("victim sees %d distinct sources, want 300", len(srcs))
	}
	// Trace must stay time-sorted after merging.
	for i := 1; i < len(tr.Packets); i++ {
		if tr.Packets[i].TimestampNs < tr.Packets[i-1].TimestampNs {
			t.Fatal("merge broke timestamp order")
		}
	}
}

func TestInjectPortScan(t *testing.T) {
	tr := Generate(Config{Flows: 100, Packets: 5000, Seed: 6})
	src := packet.IPv4(9, 9, 9, 9)
	tr.InjectPortScan(src, packet.IPv4(10, 10, 10, 10), 250, 7)
	ports := map[uint16]bool{}
	for i := range tr.Packets {
		if tr.Packets[i].SrcIP == src {
			ports[tr.Packets[i].DstPort] = true
		}
	}
	if len(ports) != 250 {
		t.Fatalf("scanner probed %d distinct ports, want 250", len(ports))
	}
}

func TestInjectSpikeWindow(t *testing.T) {
	tr := Generate(Config{Flows: 100, Packets: 10_000, Seed: 8})
	before := tr.Len()
	tr.InjectSpike(500, 3, 0.4, 0.6, 9)
	added := tr.Len() - before
	if added != 1500 {
		t.Fatalf("spike added %d packets, want 1500", added)
	}
	// Spike packets must sit inside the requested window: re-generate the
	// base trace, diff flow keys, and bound the new flows' timestamps.
	base := Generate(Config{Flows: 100, Packets: 10_000, Seed: 8})
	baseFlows := map[packet.CanonicalKey]bool{}
	for i := range base.Packets {
		baseFlows[packet.KeyFiveTuple.Extract(&base.Packets[i])] = true
	}
	var dur uint64 = 15e9
	lo, hi := uint64(0.39*float64(dur)), uint64(0.61*float64(dur))
	for i := range tr.Packets {
		k := packet.KeyFiveTuple.Extract(&tr.Packets[i])
		if baseFlows[k] {
			continue
		}
		ts := tr.Packets[i].TimestampNs
		if ts < lo || ts > hi {
			t.Fatalf("spike packet at %d ns outside window [%d,%d]", ts, lo, hi)
		}
	}
}

func TestEpochsPartitionTrace(t *testing.T) {
	tr := Generate(Config{Flows: 100, Packets: 10_000, Seed: 10})
	epochs := tr.Epochs(20)
	if len(epochs) != 20 {
		t.Fatalf("epoch count = %d", len(epochs))
	}
	total := 0
	for _, ep := range epochs {
		total += ep.Len()
	}
	if total != tr.Len() {
		t.Fatalf("epochs hold %d packets, trace has %d", total, tr.Len())
	}
	// Epoch boundaries respect time order.
	for e := 1; e < len(epochs); e++ {
		if epochs[e-1].Len() == 0 || epochs[e].Len() == 0 {
			continue
		}
		lastPrev := epochs[e-1].Packets[epochs[e-1].Len()-1].TimestampNs
		firstCur := epochs[e].Packets[0].TimestampNs
		if lastPrev > firstCur {
			t.Fatalf("epoch %d starts before epoch %d ends", e, e-1)
		}
	}
}

func TestEpochsEdgeCases(t *testing.T) {
	if got := (&Trace{}).Epochs(0); got != nil {
		t.Error("zero epochs must return nil")
	}
	empty := (&Trace{}).Epochs(3)
	if len(empty) != 3 {
		t.Fatal("empty trace must still split into n empty epochs")
	}
	for _, ep := range empty {
		if ep.Len() != 0 {
			t.Fatal("empty trace epochs must be empty")
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	tr := Generate(Config{Flows: 50, Packets: 2000, Seed: 11})
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTrace(tr); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != tr.Len() {
		t.Fatalf("writer count = %d", w.Count())
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("read %d packets, wrote %d", got.Len(), tr.Len())
	}
	for i := range tr.Packets {
		if got.Packets[i] != tr.Packets[i] {
			t.Fatalf("packet %d corrupted in round trip", i)
		}
	}
}

func TestFormatRoundTripProperty(t *testing.T) {
	f := func(src, dst, size uint32, sp, dp uint16, proto uint8, ts uint64, ql, qd uint32) bool {
		p := packet.Packet{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp,
			Proto: proto, Size: size, TimestampNs: ts, QueueLength: ql, QueueDelayNs: qd}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		if err := w.WritePacket(&p); err != nil || w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		var q packet.Packet
		if err := r.ReadPacket(&q); err != nil {
			return false
		}
		return q == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACEFILE..."))); err != ErrBadMagic {
		t.Fatalf("bad magic error = %v, want ErrBadMagic", err)
	}
}

func TestFormatTruncatedRecord(t *testing.T) {
	tr := Generate(Config{Flows: 5, Packets: 10, Seed: 12})
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.WriteTrace(tr)
	_ = w.Flush()
	trunc := buf.Bytes()[:buf.Len()-7] // cut mid-record: record 9 is damaged
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.ReadAll()
	if err == nil || err == io.EOF {
		t.Fatalf("truncated stream must fail with a non-EOF error, got %v", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncation error %v does not match io.ErrUnexpectedEOF", err)
	}
	var te *TruncatedError
	if !errors.As(err, &te) {
		t.Fatalf("truncation error %v is not a *TruncatedError", err)
	}
	if te.Record != 9 {
		t.Fatalf("truncated record index = %d, want 9", te.Record)
	}

	// The per-record path must agree with the batch path.
	r2, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	var p packet.Packet
	var perr error
	for {
		if perr = r2.ReadPacket(&p); perr != nil {
			break
		}
	}
	var te2 *TruncatedError
	if !errors.As(perr, &te2) || te2.Record != te.Record {
		t.Fatalf("ReadPacket truncation = %v, ReadBatch truncation = %v; indexes must agree", perr, err)
	}
}

func TestReadBatch(t *testing.T) {
	tr := Generate(Config{Flows: 20, Packets: 1000, Seed: 13})
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.WriteTrace(tr)
	_ = w.Flush()
	encoded := buf.Bytes()

	// Batch size that does not divide the trace: the tail batch is short
	// with a nil error, and the following call returns (0, io.EOF).
	r, err := NewReader(bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]packet.Packet, 96)
	var got []packet.Packet
	for {
		n, err := r.ReadBatch(dst)
		if n > 0 {
			got = append(got, dst[:n]...)
		}
		if err == io.EOF {
			if n != 0 {
				t.Fatalf("EOF with %d records; EOF must be bare", n)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != tr.Len() {
		t.Fatalf("ReadBatch streamed %d packets, want %d", len(got), tr.Len())
	}
	for i := range got {
		if got[i] != tr.Packets[i] {
			t.Fatalf("packet %d differs from the written trace", i)
		}
	}

	// A batch larger than the remaining stream returns everything at once.
	r2, _ := NewReader(bytes.NewReader(encoded))
	big := make([]packet.Packet, 2*tr.Len())
	n, err := r2.ReadBatch(big)
	if n != tr.Len() || err != nil {
		t.Fatalf("oversized batch = (%d, %v), want (%d, nil)", n, err, tr.Len())
	}
	if n, err := r2.ReadBatch(big); n != 0 || err != io.EOF {
		t.Fatalf("drained reader = (%d, %v), want (0, io.EOF)", n, err)
	}

	// Empty destination is a no-op.
	r3, _ := NewReader(bytes.NewReader(encoded))
	if n, err := r3.ReadBatch(nil); n != 0 || err != nil {
		t.Fatalf("nil batch = (%d, %v), want (0, nil)", n, err)
	}
}

func TestReadBatchTruncatedDeliversPrefix(t *testing.T) {
	tr := Generate(Config{Flows: 5, Packets: 7, Seed: 14})
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.WriteTrace(tr)
	_ = w.Flush()
	trunc := buf.Bytes()[:buf.Len()-5]
	r, _ := NewReader(bytes.NewReader(trunc))
	dst := make([]packet.Packet, 16)
	n, err := r.ReadBatch(dst)
	if n != 6 {
		t.Fatalf("truncated batch delivered %d records, want the 6 intact ones", n)
	}
	var te *TruncatedError
	if !errors.As(err, &te) || te.Record != 6 {
		t.Fatalf("truncation error = %v, want TruncatedError{Record: 6}", err)
	}
	for i := 0; i < n; i++ {
		if dst[i] != tr.Packets[i] {
			t.Fatalf("intact prefix record %d corrupted", i)
		}
	}
}

func TestSummarize(t *testing.T) {
	tr := Generate(Config{Flows: 500, Packets: 20_000, Seed: 20})
	s := Summarize(tr)
	if s.Packets != 20_000 {
		t.Fatalf("packets = %d", s.Packets)
	}
	if s.Flows < 400 || s.Flows > 500 {
		t.Fatalf("flows = %d", s.Flows)
	}
	if s.SrcIPs > s.Flows || s.DstIPs > s.Flows {
		t.Fatal("IP counts cannot exceed flow count for distinct random flows")
	}
	if s.TopFlowPkts == 0 || s.Top10SharePct <= 0 || s.Top10SharePct > 100 {
		t.Fatalf("heavy-tail stats implausible: top=%d share=%.1f", s.TopFlowPkts, s.Top10SharePct)
	}
	// Threshold buckets are monotone.
	if s.HeavyFlows[64] < s.HeavyFlows[256] || s.HeavyFlows[256] < s.HeavyFlows[1024] {
		t.Fatalf("heavy-flow thresholds not monotone: %v", s.HeavyFlows)
	}
	if s.Bytes == 0 || s.DurationNs == 0 {
		t.Fatal("bytes/duration missing")
	}
	// Empty trace.
	if e := Summarize(&Trace{}); e.Packets != 0 || e.Flows != 0 {
		t.Fatal("empty summary wrong")
	}
	// Render is total.
	var buf bytes.Buffer
	s.Render(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("flows (5-tuple)")) {
		t.Fatal("render missing fields")
	}
}
