package netwide

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"flymon/internal/controlplane"
	"flymon/internal/faultnet"
	"flymon/internal/packet"
	"flymon/internal/rpc"
	"flymon/internal/telemetry"
	"flymon/internal/trace"
)

// Chaos drills for the liveness + reconciler machinery: kill, partition
// (both ways and one-way), restart, and flap daemons while asserting
// bounded detection, damped flapping, reconciler convergence, and clean
// goroutine shutdown. Hellos run at tx=20ms so a full drill fits in
// seconds even under -race.

const drillTx = 20 * time.Millisecond

func drillLiveness(seed int64) LivenessOptions {
	return LivenessOptions{
		TxInterval: drillTx,
		DetectMult: 3,
		Seed:       seed,
	}
}

// waitFor polls cond every few ms until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitSessions(t *testing.T, fleet *RemoteFleet, up bool, switches ...int) {
	t.Helper()
	state := "down"
	if up {
		state = "up"
	}
	waitFor(t, 10*time.Second, fmt.Sprintf("switches %v session %s", switches, state), func() bool {
		h := fleet.Health()
		for _, i := range switches {
			if h[i].SessionUp != up {
				return false
			}
		}
		return true
	})
}

// TestLivenessDetectsKilledDaemon is the headline acceptance drill: kill a
// fleet member and it is ejected within a small multiple of the detection
// time, partial queries keep answering (with the liveness verdict in the
// report), and the eject lands in telemetry and the journal.
func TestLivenessDetectsKilledDaemon(t *testing.T) {
	check := gateFleetGoroutines(t)
	t.Cleanup(check)
	cfg := fleetConfig()
	ctrls, clients, srvs, _ := resilientDaemons(t, 3, cfg)
	tele := &telemetry.FleetStats{}
	journal := telemetry.NewJournal(64)
	fleet := NewRemoteFleetOptions(clients, cfg, FleetOptions{
		AllowPartial: true,
		Telemetry:    tele,
		Journal:      journal,
	})
	t.Cleanup(fleet.Stop)
	if err := fleet.Deploy(cmsSpec("freq")); err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(trace.Config{Flows: 200, Packets: 6_000, Seed: 33})
	for i := range tr.Packets {
		ctrls[i%3].Process(&tr.Packets[i])
	}

	fleet.StartLiveness(drillLiveness(1))
	waitSessions(t, fleet, true, 0, 1, 2)

	// Kill daemon 2 and time the eject. The configured detection time is
	// 3×tx = 60ms; allow generous scheduler/race headroom but stay an
	// order of magnitude under a plain RPC timeout.
	srvs[2].Close()
	killed := time.Now()
	waitSessions(t, fleet, false, 2)
	if detected := time.Since(killed); detected > 2*time.Second {
		t.Fatalf("detection took %v, want bounded (detect time is %v)", detected, drillLiveness(1).DetectTime())
	}

	// Partial query still answers, with the liveness verdict for switch 2.
	key := packet.KeyFiveTuple.Extract(&tr.Packets[0])
	_, report, err := fleet.EstimateKeyPartial("freq", key)
	if err != nil {
		t.Fatalf("partial query with ejected switch: %v", err)
	}
	if !report.Partial() || len(report.Contributed) != 2 {
		t.Fatalf("report = %+v", report)
	}
	if msg := report.Failed[2]; msg == "" || !strings.Contains(msg, "liveness") {
		t.Fatalf("failure for switch 2 = %q, want a liveness eject", msg)
	}

	// Health is liveness-primary: down without a single op having failed.
	h := fleet.Health()
	if h[2].State != SwitchDown || h[2].Session == SessionNone {
		t.Fatalf("switch 2 health = %+v", h[2])
	}
	if h[0].State != SwitchHealthy || h[1].State != SwitchHealthy {
		t.Fatalf("healthy switches misreported: %+v %+v", h[0], h[1])
	}

	// The eject is observable: transition counters, detection histogram,
	// session gauges, and a journal event.
	if tele.Ejects.Load() == 0 || tele.SessionToDown.Load() == 0 {
		t.Fatalf("ejects=%d to_down=%d, want both > 0", tele.Ejects.Load(), tele.SessionToDown.Load())
	}
	if tele.DetectionTime.Count() == 0 {
		t.Fatal("detection-time histogram is empty")
	}
	rep := tele.Snapshot()
	if len(rep.Sessions) != 3 || rep.Sessions[2].Up {
		t.Fatalf("session gauges = %+v", rep.Sessions)
	}
	ejects := 0
	for _, e := range journal.Events() {
		if e.Kind == "eject" {
			ejects++
		}
	}
	if ejects == 0 {
		t.Fatal("no eject event journaled")
	}
}

// TestReconcilerRedeploysAfterRestart is the full self-healing loop: a
// daemon dies, is ejected, restarts EMPTY, rejoins via its session, and
// the reconciler puts its tasks back — all with zero operator action, all
// visible in the journal.
func TestReconcilerRedeploysAfterRestart(t *testing.T) {
	check := gateFleetGoroutines(t)
	t.Cleanup(check)
	cfg := fleetConfig()
	_, clients, srvs, addrs := resilientDaemons(t, 2, cfg)
	tele := &telemetry.FleetStats{}
	journal := telemetry.NewJournal(128)
	fleet := NewRemoteFleetOptions(clients, cfg, FleetOptions{
		AllowPartial: true,
		Telemetry:    tele,
		Journal:      journal,
	})
	t.Cleanup(fleet.Stop)
	if err := fleet.Deploy(cmsSpec("freq")); err != nil {
		t.Fatal(err)
	}

	fleet.StartLiveness(drillLiveness(2))
	fleet.StartReconciler(50 * time.Millisecond)
	waitSessions(t, fleet, true, 0, 1)

	// Crash daemon 1; it must be ejected but the fleet keeps answering.
	srvs[1].Close()
	waitSessions(t, fleet, false, 1)
	if _, report, err := fleet.EstimateKeyPartial("freq", packet.CanonicalKey{1}); err != nil || !report.Partial() {
		t.Fatalf("partial query during outage: %v %+v", err, report)
	}

	// Restart it from scratch (fresh controller, same address): the rejoin
	// pokes the reconciler, which re-deploys the task at its pinned ID.
	restarted := controlplane.NewController(cfg)
	srv := rpc.NewServer(restarted, nil)
	if _, err := srv.Listen(addrs[1]); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	waitSessions(t, fleet, true, 1)
	waitFor(t, 10*time.Second, "reconciler to re-deploy the task", func() bool {
		tasks := restarted.Tasks()
		return len(tasks) == 1 && tasks[0].ID == 1 && tasks[0].Spec.Name == "freq"
	})

	// A subsequent fleet query includes the restarted switch again.
	waitFor(t, 10*time.Second, "full-fleet query", func() bool {
		_, report, err := fleet.EstimateKeyPartial("freq", packet.CanonicalKey{1})
		return err == nil && !report.Partial()
	})

	// Every stage of the loop is journaled.
	kinds := map[string]int{}
	for _, e := range journal.Events() {
		kinds[e.Kind]++
	}
	for _, k := range []string{"eject", "rejoin", "redeploy"} {
		if kinds[k] == 0 {
			t.Fatalf("journal missing %q events: %v", k, kinds)
		}
	}
	if tele.Rejoins.Load() == 0 || tele.Redeploys.Load() == 0 {
		t.Fatalf("rejoins=%d redeploys=%d, want both > 0", tele.Rejoins.Load(), tele.Redeploys.Load())
	}
	h := fleet.Health()
	if h[1].TasksDesired != 1 || h[1].TasksObserved != 1 {
		t.Fatalf("switch 1 task counts = %d/%d, want 1/1", h[1].TasksObserved, h[1].TasksDesired)
	}
}

// gatedDaemon boots one daemon whose accepted connections pass through a
// faultnet.Gate, so drills can partition/heal/flap it at runtime.
func gatedDaemon(t *testing.T, cfg controlplane.Config, seed int64) (*controlplane.Controller, *faultnet.Gate, string, func() *rpc.Server) {
	t.Helper()
	ctrl := controlplane.NewController(cfg)
	gate := &faultnet.Gate{}
	plan := faultnet.Plan{Seed: seed, Gate: gate}
	var addr string
	boot := func() *rpc.Server {
		srv := rpc.NewServer(ctrl, nil)
		listenAt := addr
		if listenAt == "" {
			listenAt = "127.0.0.1:0"
		}
		ln, err := net.Listen("tcp", listenAt)
		if err != nil {
			t.Fatalf("listen %s: %v", listenAt, err)
		}
		addr = ln.Addr().String()
		srv.Serve(faultnet.WrapListener(ln, plan))
		return srv
	}
	cur := boot()
	t.Cleanup(func() { cur.Close() })
	reboot := func() *rpc.Server {
		cur.Close() // free the address before rebinding it
		cur = boot()
		return cur
	}
	return ctrl, gate, addr, reboot
}

// TestChaosLivenessMatrix drives the fault matrix from the issue —
// symmetric partition, asymmetric (one-way) partition, restart storm,
// flapping link — across seeds, asserting detection, convergence after
// heal, an intact healthy switch, and no goroutine leaks.
func TestChaosLivenessMatrix(t *testing.T) {
	type drill struct {
		name string
		run  func(t *testing.T, fleet *RemoteFleet, gate *faultnet.Gate, reboot func() *rpc.Server)
	}
	drills := []drill{
		{"partition", func(t *testing.T, fleet *RemoteFleet, gate *faultnet.Gate, _ func() *rpc.Server) {
			gate.Partition()
			waitSessions(t, fleet, false, 1)
			gate.Heal()
		}},
		{"asymmetric", func(t *testing.T, fleet *RemoteFleet, gate *faultnet.Gate, _ func() *rpc.Server) {
			// One-way blackhole: the daemon still HEARS the controller (its
			// reads work) but its answers vanish. RPC-wise the daemon looks
			// "half-alive"; the session must still declare it down.
			gate.SetDropWrites(true)
			waitSessions(t, fleet, false, 1)
			gate.SetDropWrites(false)
		}},
		{"restart-storm", func(t *testing.T, fleet *RemoteFleet, _ *faultnet.Gate, reboot func() *rpc.Server) {
			// Three back-to-back restarts: each new process has a fresh
			// incarnation, so even a fast bounce between probes is unmasked.
			for i := 0; i < 3; i++ {
				reboot()
				time.Sleep(3 * drillTx)
			}
		}},
		{"flapping", func(t *testing.T, fleet *RemoteFleet, gate *faultnet.Gate, _ func() *rpc.Server) {
			for i := 0; i < 3; i++ {
				gate.Partition()
				waitSessions(t, fleet, false, 1)
				gate.Heal()
				waitSessions(t, fleet, true, 1)
			}
		}},
	}
	for _, d := range drills {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", d.name, seed), func(t *testing.T) {
				check := gateFleetGoroutines(t)
				t.Cleanup(check)
				cfg := fleetConfig()
				// Switch 0: plain healthy daemon. Switch 1: behind the gate.
				ctrl0 := controlplane.NewController(cfg)
				srv0 := rpc.NewServer(ctrl0, nil)
				addr0, err := srv0.Listen("127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { srv0.Close() })
				_, gate, addr1, reboot := gatedDaemon(t, cfg, seed)

				var clients []*rpc.Client
				for i, addr := range []string{addr0, addr1} {
					c, err := rpc.DialOptions(addr, rpc.Options{
						DialTimeout:      time.Second,
						CallTimeout:      time.Second,
						MaxRetries:       -1,
						BreakerThreshold: 1000,
						Seed:             seed*10 + int64(i),
					})
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(func() { c.Close() })
					clients = append(clients, c)
				}
				tele := &telemetry.FleetStats{}
				fleet := NewRemoteFleetOptions(clients, cfg, FleetOptions{
					AllowPartial: true,
					Telemetry:    tele,
					Journal:      telemetry.NewJournal(128),
				})
				t.Cleanup(fleet.Stop)
				if err := fleet.Deploy(cmsSpec("freq")); err != nil {
					t.Fatal(err)
				}
				fleet.StartLiveness(drillLiveness(seed))
				fleet.StartReconciler(50 * time.Millisecond)
				waitSessions(t, fleet, true, 0, 1)

				d.run(t, fleet, gate, reboot)

				// Convergence: both switches Up again (flap damping may hold
				// switch 1 out for its hold-down first — that wait is part of
				// the contract), the task present everywhere, full merges.
				waitSessions(t, fleet, true, 0, 1)
				waitFor(t, 10*time.Second, "post-drill full-fleet query", func() bool {
					_, report, err := fleet.EstimateKeyPartial("freq", packet.CanonicalKey{1})
					return err == nil && !report.Partial()
				})
				// The healthy switch never flapped: zero ejects of switch 0.
				h := fleet.Health()
				if !h[0].SessionUp || h[0].Session != SessionUp {
					t.Fatalf("healthy switch 0 disturbed: %+v", h[0])
				}
				if h[0].TotalFailures != 0 {
					t.Fatalf("healthy switch 0 accumulated %d op failures", h[0].TotalFailures)
				}
			})
		}
	}
}
