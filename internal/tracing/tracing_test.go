package tracing

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	sp := tr.StartRoot("deploy")
	if sp != nil {
		t.Fatalf("nil tracer minted a span")
	}
	// Every ActiveSpan method must be a no-op on nil.
	sp.SetDetail("x")
	sp.SetSwitch(3)
	sp.SetAttempt(2)
	sp.Finish(errors.New("boom"))
	if sc := sp.Context(); sc.Valid() {
		t.Fatalf("nil span produced a valid context: %+v", sc)
	}
	child := tr.StartSpan(SpanContext{Trace: 1, Span: 2}, "rpc")
	if child != nil {
		t.Fatalf("nil tracer minted a child span")
	}
	if spans, total, dropped := tr.Dump(); spans != nil || total != 0 || dropped != 0 {
		t.Fatalf("nil tracer dump = %v %d %d", spans, total, dropped)
	}
	tr.WriteMetrics(&strings.Builder{})
}

func TestSpanParentage(t *testing.T) {
	tr := New(64)
	root := tr.StartRoot("deploy")
	rc := root.Context()
	if !rc.Valid() {
		t.Fatalf("root context invalid")
	}
	child := tr.StartSpan(rc, "rpc:add_task")
	child.SetSwitch(2)
	child.SetAttempt(1)
	child.Finish(nil)
	root.Finish(nil)

	spans, total, dropped := tr.Dump()
	if total != 2 || dropped != 0 || len(spans) != 2 {
		t.Fatalf("dump: %d spans, total=%d dropped=%d", len(spans), total, dropped)
	}
	// Buffer order is finish order: child first.
	if spans[0].Name != "rpc:add_task" || spans[1].Name != "deploy" {
		t.Fatalf("unexpected order: %q %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Trace != spans[1].Trace {
		t.Fatalf("child escaped the trace: %x vs %x", spans[0].Trace, spans[1].Trace)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("child parent = %x, root id = %x", spans[0].Parent, spans[1].ID)
	}
	if spans[1].Parent != 0 {
		t.Fatalf("root has a parent: %x", spans[1].Parent)
	}
	if spans[0].Switch != 2 || spans[0].Attempt != 1 {
		t.Fatalf("tags lost: %+v", spans[0])
	}
}

func TestInvalidParentStartsFreshRoot(t *testing.T) {
	tr := New(16)
	sp := tr.StartSpan(SpanContext{}, "dispatch")
	sp.Finish(nil)
	spans, _, _ := tr.Dump()
	if len(spans) != 1 || spans[0].Parent != 0 || spans[0].Trace == 0 {
		t.Fatalf("invalid parent did not mint a root: %+v", spans)
	}
}

func TestFinishIdempotent(t *testing.T) {
	tr := New(16)
	sp := tr.StartRoot("op")
	sp.Finish(nil)
	sp.Finish(errors.New("late"))
	spans, total, _ := tr.Dump()
	if total != 1 || len(spans) != 1 {
		t.Fatalf("double Finish committed twice: total=%d", total)
	}
	if spans[0].Err != "" {
		t.Fatalf("second Finish mutated the committed span: %+v", spans[0])
	}
}

func TestBufferOverflowCountsDrops(t *testing.T) {
	tr := New(8) // rounds to 8 slots
	for i := 0; i < 20; i++ {
		tr.StartRoot("op").Finish(nil)
	}
	spans, total, dropped := tr.Dump()
	if total != 20 {
		t.Fatalf("total = %d, want 20", total)
	}
	if dropped != 12 {
		t.Fatalf("dropped = %d, want 12", dropped)
	}
	if len(spans) != 8 {
		t.Fatalf("retained %d spans, want 8", len(spans))
	}
	if got := tr.Dropped(); got != 12 {
		t.Fatalf("Dropped() = %d, want 12", got)
	}
}

func TestBufferConcurrentWriters(t *testing.T) {
	tr := New(64)
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := tr.StartRoot("op")
				sp.SetSwitch(i)
				sp.Finish(nil)
			}
		}()
	}
	// Concurrent snapshots must never tear or panic.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			spans, _, _ := tr.Dump()
			for _, sp := range spans {
				if sp.Name != "op" {
					panic("torn span: " + sp.Name)
				}
			}
		}
	}()
	wg.Wait()
	<-done
	_, total, dropped := tr.Dump()
	if total != workers*per {
		t.Fatalf("total = %d, want %d", total, workers*per)
	}
	if dropped != workers*per-64 {
		t.Fatalf("dropped = %d, want %d", dropped, workers*per-64)
	}
}

func TestIDsUniqueAndNonZero(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		id := newID()
		if id == 0 {
			t.Fatalf("zero ID at %d", i)
		}
		if seen[id] {
			t.Fatalf("duplicate ID %x at %d", id, i)
		}
		seen[id] = true
	}
}

func TestWriteMetrics(t *testing.T) {
	tr := New(16)
	sp := tr.StartRoot("deploy")
	time.Sleep(time.Millisecond)
	sp.Finish(nil)
	tr.StartRoot("query").Finish(nil)

	var b strings.Builder
	tr.WriteMetrics(&b)
	out := b.String()
	for _, want := range []string{
		"flymon_trace_spans_total 2",
		"flymon_trace_dropped_total 0",
		`flymon_trace_span_latency_seconds_count{op="deploy"} 1`,
		`flymon_trace_span_latency_seconds_count{op="query"} 1`,
		`flymon_trace_span_latency_seconds_bucket{op="deploy",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramCardinalityBounded(t *testing.T) {
	tr := New(16)
	for i := 0; i < maxHistOps+20; i++ {
		tr.StartRoot(strings.Repeat("x", 1+i%7) + "op").Finish(nil)
	}
	tr.mu.Lock()
	n := len(tr.hists)
	tr.mu.Unlock()
	if n > maxHistOps+1 { // +1 for the "other" fold-in series
		t.Fatalf("histogram map grew to %d ops", n)
	}
}
