package trace

import (
	"fmt"
	"io"
	"sort"
	"time"

	"flymon/internal/packet"
)

// Summary aggregates the headline statistics of a trace — the quick look
// an operator takes before sizing measurement tasks against it.
type Summary struct {
	Packets       int
	Bytes         uint64
	DurationNs    uint64
	Flows         int // distinct 5-tuples
	SrcIPs        int
	DstIPs        int
	TopFlowPkts   uint64 // heaviest flow's packet count
	Top10SharePct float64
	// HeavyFlows[t] = flows with ≥ t packets, for the standard thresholds.
	HeavyFlows map[uint64]int
}

// heavyThresholds are the per-flow packet counts Summarize tallies.
var heavyThresholds = []uint64{64, 256, 1024, 4096}

// Summarize scans the trace once and aggregates its Summary.
func Summarize(t *Trace) Summary {
	s := Summary{HeavyFlows: make(map[uint64]int)}
	s.Packets = t.Len()
	if s.Packets == 0 {
		return s
	}
	flows := make(map[packet.CanonicalKey]uint64)
	srcs := make(map[uint32]bool)
	dsts := make(map[uint32]bool)
	for i := range t.Packets {
		p := &t.Packets[i]
		s.Bytes += uint64(p.Size)
		flows[packet.KeyFiveTuple.Extract(p)]++
		srcs[p.SrcIP] = true
		dsts[p.DstIP] = true
	}
	s.DurationNs = t.Packets[s.Packets-1].TimestampNs - t.Packets[0].TimestampNs
	s.Flows = len(flows)
	s.SrcIPs = len(srcs)
	s.DstIPs = len(dsts)

	counts := make([]uint64, 0, len(flows))
	for _, c := range flows {
		counts = append(counts, c)
		for _, th := range heavyThresholds {
			if c >= th {
				s.HeavyFlows[th]++
			}
		}
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	s.TopFlowPkts = counts[0]
	var top10 uint64
	for i := 0; i < 10 && i < len(counts); i++ {
		top10 += counts[i]
	}
	s.Top10SharePct = 100 * float64(top10) / float64(s.Packets)
	return s
}

// Render writes the summary in human-readable form.
func (s Summary) Render(w io.Writer) {
	fmt.Fprintf(w, "packets:        %d\n", s.Packets)
	fmt.Fprintf(w, "bytes:          %d\n", s.Bytes)
	fmt.Fprintf(w, "duration:       %v\n", time.Duration(s.DurationNs))
	fmt.Fprintf(w, "flows (5-tuple): %d\n", s.Flows)
	fmt.Fprintf(w, "src IPs:        %d\n", s.SrcIPs)
	fmt.Fprintf(w, "dst IPs:        %d\n", s.DstIPs)
	fmt.Fprintf(w, "top flow:       %d packets\n", s.TopFlowPkts)
	fmt.Fprintf(w, "top-10 share:   %.1f%%\n", s.Top10SharePct)
	for _, th := range heavyThresholds {
		fmt.Fprintf(w, "flows ≥ %-5d   %d\n", th, s.HeavyFlows[th])
	}
}
