package experiments

import (
	"fmt"
	"time"

	"flymon/internal/controlplane"
	"flymon/internal/packet"
)

// Table3 reproduces Table 3: FlyMon's built-in algorithms with their
// attribute, CMU-Group usage, and deployment delay. Each algorithm is
// deployed on a fresh controller; the delay combines the paper-calibrated
// per-rule install latencies with the measured software compile time.
func Table3() *Table {
	specs := []struct {
		label string
		attr  string
		spec  controlplane.TaskSpec
	}{
		{"CMS (d=3)", "Frequency", controlplane.TaskSpec{
			Name: "cms", Key: packet.KeyFiveTuple, Attribute: controlplane.AttrFrequency,
			MemBuckets: 16384, D: 3, Algorithm: controlplane.AlgCMS,
		}},
		{"BeauCoup (d=3)", "Distinct (multi-key)", controlplane.TaskSpec{
			Name: "beaucoup", Key: packet.KeyDstIP, Attribute: controlplane.AttrDistinct,
			Param:     controlplane.ParamSpec{Kind: controlplane.ParamFlowKey, Key: packet.KeySrcIP},
			Threshold: 512, MemBuckets: 16384, D: 3, Algorithm: controlplane.AlgBeauCoup,
		}},
		{"Bloom Filter (d=3)", "Existence", controlplane.TaskSpec{
			Name: "bloom", Attribute: controlplane.AttrExistence,
			Param:      controlplane.ParamSpec{Kind: controlplane.ParamFlowKey, Key: packet.KeyFiveTuple},
			MemBuckets: 16384, D: 3, Algorithm: controlplane.AlgBloom,
		}},
		{"SuMax(Max) (d=3)", "Max", controlplane.TaskSpec{
			Name: "sumax-max", Key: packet.KeyFiveTuple, Attribute: controlplane.AttrMax,
			Param:      controlplane.ParamSpec{Kind: controlplane.ParamQueueLength},
			MemBuckets: 16384, D: 3, Algorithm: controlplane.AlgSuMaxMax,
		}},
		{"HyperLogLog", "Distinct (single-key)", controlplane.TaskSpec{
			Name: "hll", Attribute: controlplane.AttrDistinct,
			Param:      controlplane.ParamSpec{Kind: controlplane.ParamFlowKey, Key: packet.KeyFiveTuple},
			MemBuckets: 4096, D: 1, Algorithm: controlplane.AlgHLL,
		}},
		{"SuMax(Sum) (d=3)", "Frequency", controlplane.TaskSpec{
			Name: "sumax-sum", Key: packet.KeyFiveTuple, Attribute: controlplane.AttrFrequency,
			MemBuckets: 16384, D: 3, Algorithm: controlplane.AlgSuMaxSum,
		}},
		{"MRAC", "Frequency (distribution)", controlplane.TaskSpec{
			Name: "mrac", Key: packet.KeyFiveTuple, Attribute: controlplane.AttrFrequency,
			MemBuckets: 16384, D: 1, Algorithm: controlplane.AlgMRAC,
		}},
		{"TowerSketch (d=3)", "Frequency", controlplane.TaskSpec{
			Name: "tower", Key: packet.KeyFiveTuple, Attribute: controlplane.AttrFrequency,
			MemBuckets: 16384, D: 3, Algorithm: controlplane.AlgTower,
		}},
		{"CounterBraids (L=2)", "Frequency", controlplane.TaskSpec{
			Name: "cb", Key: packet.KeyFiveTuple, Attribute: controlplane.AttrFrequency,
			MemBuckets: 16384, D: 2, Algorithm: controlplane.AlgCounterBraids,
		}},
		{"LinearCounting", "Distinct (single-key)", controlplane.TaskSpec{
			Name: "lc", Attribute: controlplane.AttrDistinct,
			Param:      controlplane.ParamSpec{Kind: controlplane.ParamFlowKey, Key: packet.KeyFiveTuple},
			MemBuckets: 16384, D: 1, Algorithm: controlplane.AlgLinearCounting,
		}},
		{"MaxInterval (3 CMUs)", "Max", controlplane.TaskSpec{
			Name: "interval", Key: packet.KeyFiveTuple, Attribute: controlplane.AttrMax,
			Param:      controlplane.ParamSpec{Kind: controlplane.ParamPacketInterval},
			MemBuckets: 16384, D: 3, Algorithm: controlplane.AlgMaxInterval,
		}},
	}

	t := &Table{
		Title:  "Table 3 — Built-in algorithms: CMU-Group usage and deployment delay",
		Header: []string{"Algorithm", "Attribute", "CMUG usage", "Deploy delay (ms)", "Software (ms)"},
	}
	for _, s := range specs {
		ctrl := controlplane.NewController(controlplane.Config{Groups: 3, Buckets: 65536, BitWidth: 32})
		start := time.Now()
		task, err := ctrl.AddTask(s.spec)
		soft := time.Since(start)
		if err != nil {
			t.Rows = append(t.Rows, []string{s.label, s.attr, "-", "error: " + err.Error(), "-"})
			continue
		}
		t.Rows = append(t.Rows, []string{
			s.label,
			s.attr,
			itoa(s.spec.Algorithm.GroupsNeeded(task.D)),
			fmt.Sprintf("%.2f", float64(task.Delay.Microseconds())/1000),
			fmt.Sprintf("%.3f", float64(soft.Microseconds())/1000),
		})
	}
	t.Notes = append(t.Notes,
		"delay model: ~3 ms/common rule batch (8 rules), ~16 ms/hash-mask rule (paper §5.1); BeauCoup is the slowest because of its one-hot coupon entries")
	return t
}
