package rpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"flymon/internal/controlplane"
	"flymon/internal/packet"
	"flymon/internal/telemetry"
	"flymon/internal/tracing"
)

// Options tunes the client's resilience behavior. The zero value of any
// field selects the default; DefaultOptions lists them.
type Options struct {
	// DialTimeout bounds each TCP connect (initial and reconnect).
	DialTimeout time.Duration
	// CallTimeout bounds one request/response round trip: it is set as the
	// connection deadline for every call, so a hung daemon surfaces as an
	// i/o timeout instead of blocking the client (and every queued caller)
	// forever. Raise it for long replays over slow links.
	CallTimeout time.Duration
	// MaxRetries is the retry budget for idempotent (read-only) methods
	// after a transport failure (0 = default; negative = never retry).
	// Mutations are never retried automatically: the request may have been
	// applied before the failure.
	MaxRetries int
	// BackoffBase/BackoffMax shape the exponential backoff between retry
	// attempts (base·2^attempt, capped, with ±50% jitter).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold consecutive transport failures open the circuit;
	// while open, calls fail fast with ErrCircuitOpen until BreakerCooldown
	// elapses and a half-open probe is admitted.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Seed fixes the jitter stream (0 = derived from the clock). Tests use
	// this to make backoff schedules reproducible.
	Seed int64
	// Dialer overrides the transport dial, letting tests inject a
	// fault-wrapped connection (see internal/faultnet.Dialer). nil = TCP.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// Telemetry, when set, receives per-method request/failure/retry/
	// timeout counts and breaker-transition counts from this client
	// (normally a Registry's RPCClient side). nil = uninstrumented.
	Telemetry *telemetry.RPCStats
	// Tracer, when set, records one span per RPC attempt (retries and
	// breaker rejections included) for calls carrying a parent span
	// context, and stamps that context onto the request envelope so the
	// daemon's spans join the same trace. nil = untraced.
	Tracer *tracing.Tracer
}

// DefaultOptions are the resilience defaults applied by Dial.
var DefaultOptions = Options{
	DialTimeout:      5 * time.Second,
	CallTimeout:      30 * time.Second,
	MaxRetries:       2,
	BackoffBase:      25 * time.Millisecond,
	BackoffMax:       1 * time.Second,
	BreakerThreshold: 5,
	BreakerCooldown:  3 * time.Second,
}

func (o Options) withDefaults() Options {
	d := DefaultOptions
	if o.DialTimeout <= 0 {
		o.DialTimeout = d.DialTimeout
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = d.CallTimeout
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = d.MaxRetries
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = d.BackoffBase
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = d.BackoffMax
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = d.BreakerThreshold
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = d.BreakerCooldown
	}
	if o.Dialer == nil {
		o.Dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return o
}

// TransportError marks a failure of the channel itself (dial, deadline,
// reset, corrupt frame, desynced stream) as opposed to an error the daemon
// returned. For a mutation, a TransportError means the request may or may
// not have been applied — callers that need certainty must re-query.
type TransportError struct {
	Method string
	Err    error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("rpc: transport failure during %s (request may or may not have been applied): %v", e.Method, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// idempotentMethods lists the read-only calls the client may transparently
// retry after a transport failure: re-executing them cannot change daemon
// state.
var idempotentMethods = map[string]bool{
	MethodPing:          true,
	MethodListTasks:     true,
	MethodEstimate:      true,
	MethodCardinality:   true,
	MethodContains:      true,
	MethodReported:      true,
	MethodDistribution:  true,
	MethodReadRegisters: true,
	MethodResources:     true,
	MethodReport:        true,
	MethodStats:         true,
	MethodTelemetry:     true,
	MethodReadEpoch:     true,
	MethodKeyIndices:    true,
	MethodTraceDump:     true,
	// MethodEpochRotate is NOT here even though an explicit-target rotate
	// is idempotent: a bare "advance by one" retry would double-rotate.
	// The fleet layer retries it deliberately, always with a target.
}

// drainLimit bounds how many stale (lower-ID) responses one call will
// consume before declaring the stream poisoned and reconnecting.
const drainLimit = 8

// Client is a synchronous, self-healing control-channel client: per-call
// deadlines, automatic reconnect with jittered exponential backoff, a
// retry budget for idempotent methods, stale-response draining, and a
// circuit breaker that fails fast when the endpoint is down.
type Client struct {
	addr string
	opts Options

	mu     sync.Mutex // serializes calls; never held across unbounded I/O
	conn   net.Conn
	codec  *codec
	next   uint64
	closed bool
	rng    *rand.Rand

	brk    *breaker
	tele   *telemetry.RPCStats
	tracer *tracing.Tracer
}

// Dial connects to a FlyMon daemon with DefaultOptions.
func Dial(addr string) (*Client, error) { return DialOptions(addr, Options{}) }

// DialOptions connects with explicit resilience options. The initial dial
// must succeed (a misconfigured address should fail loudly); after that
// the client reconnects on demand.
func DialOptions(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	c := &Client{
		addr:   addr,
		opts:   opts,
		rng:    rand.New(rand.NewSource(seed)),
		brk:    newBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		tele:   opts.Telemetry,
		tracer: opts.Tracer,
	}
	if tele := opts.Telemetry; tele != nil {
		c.brk.onTransition = func(st BreakerState) {
			switch st {
			case BreakerOpen:
				tele.Breaker.Open.Add(1)
			case BreakerHalfOpen:
				tele.Breaker.HalfOpen.Add(1)
			case BreakerClosed:
				tele.Breaker.Closed.Add(1)
			}
		}
	}
	conn, err := opts.Dialer(addr, opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	c.conn = conn
	c.codec = newCodec(conn)
	return c, nil
}

// Addr returns the daemon address this client targets.
func (c *Client) Addr() string { return c.addr }

// SetTracer attaches (or replaces) the tracer recording this client's
// per-attempt spans. The fleet layer uses it to propagate its tracer to
// clients it was handed already-dialed.
func (c *Client) SetTracer(tr *tracing.Tracer) {
	c.mu.Lock()
	c.tracer = tr
	c.mu.Unlock()
}

// Tracer returns the tracer attached to this client, if any.
func (c *Client) Tracer() *tracing.Tracer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tracer
}

// BreakerState reports the circuit breaker's state and the consecutive
// transport-failure count, for health surfacing.
func (c *Client) BreakerState() (BreakerState, int) { return c.brk.snapshot() }

// Close tears down the connection. Subsequent calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	c.codec = nil
	return err
}

// teardown drops a connection whose stream state is no longer trustworthy.
func (c *Client) teardown() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.codec = nil
	}
}

// ensureConn redials if the previous connection was torn down.
func (c *Client) ensureConn() error {
	if c.conn != nil {
		return nil
	}
	conn, err := c.opts.Dialer(c.addr, c.opts.DialTimeout)
	if err != nil {
		return fmt.Errorf("rpc: reconnect %s: %w", c.addr, err)
	}
	c.conn = conn
	c.codec = newCodec(conn)
	return nil
}

// backoff sleeps base·2^attempt capped at BackoffMax, with ±50% jitter so
// a fleet of clients does not reconnect in lockstep.
func (c *Client) backoff(attempt int) {
	d := c.opts.BackoffBase << uint(attempt)
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	half := int64(d) / 2
	if half > 0 {
		d = time.Duration(half + c.rng.Int63n(2*half))
	}
	time.Sleep(d)
}

// call performs one synchronous request with retries for idempotent
// methods. Calls are serialized: the protocol is strictly one in-flight
// request per connection.
func (c *Client) call(method string, params, result any) error {
	return c.callCtx(tracing.SpanContext{}, method, params, result)
}

// callCtx is call with an optional parent span context: when the client
// has a tracer and the parent is valid, every attempt (including backoff
// retries and breaker rejections) records one rpc:<method> span under
// the parent, and the request envelope carries that span's context so
// daemon-side spans join the trace.
func (c *Client) callCtx(parent tracing.SpanContext, method string, params, result any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("rpc: %s on closed client", method)
	}
	attempts := 1
	if idempotentMethods[method] {
		attempts += c.opts.MaxRetries
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if c.tele != nil {
				c.tele.Endpoint(method).Retries.Add(1)
			}
			c.backoff(attempt - 1)
		}
		err := c.callOnce(parent, method, attempt+1, params, result)
		if err == nil {
			return nil
		}
		lastErr = err
		var te *TransportError
		if !errors.As(err, &te) {
			// Application error or open breaker: retrying cannot help.
			return err
		}
	}
	return lastErr
}

// callOnce runs a single round trip over the current (or a fresh)
// connection. Any transport failure tears the connection down so the next
// attempt starts from a clean stream.
func (c *Client) callOnce(parent tracing.SpanContext, method string, attempt int, params, result any) (err error) {
	var sp *tracing.ActiveSpan
	if c.tracer != nil && parent.Valid() {
		sp = c.tracer.StartSpan(parent, "rpc:"+method)
		sp.SetDetail(c.addr)
		sp.SetAttempt(attempt)
		defer func() { sp.Finish(err) }()
	}
	if err := c.brk.allow(); err != nil {
		// A breaker rejection is still a span: the trace shows the call
		// failed fast instead of silently missing an attempt.
		return err
	}
	if c.tele != nil {
		ep := c.tele.Endpoint(method)
		ep.Requests.Add(1)
		defer func() {
			if err == nil {
				return
			}
			ep.Failures.Add(1)
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				ep.Timeouts.Add(1)
			}
		}()
	}
	fail := func(err error) error {
		c.teardown()
		te := &TransportError{Method: method, Err: err}
		c.brk.failure(te)
		return te
	}
	if err := c.ensureConn(); err != nil {
		return fail(err)
	}
	c.next++
	req := Request{ID: c.next, Method: method}
	if sp != nil {
		sc := sp.Context()
		req.Trace = &sc
	}
	if params != nil {
		raw, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("rpc: encoding params: %w", err)
		}
		req.Params = raw
	}
	// The deadline covers the whole round trip; it is what guarantees a
	// hung daemon cannot wedge this client (satellite: no unbounded I/O
	// under c.mu).
	c.conn.SetDeadline(time.Now().Add(c.opts.CallTimeout))
	defer func() {
		if c.conn != nil {
			c.conn.SetDeadline(time.Time{})
		}
	}()
	if err := c.codec.write(&req); err != nil {
		return fail(fmt.Errorf("sending: %w", err))
	}
	var resp Response
	var frame []byte
	for drained := 0; ; drained++ {
		resp = Response{}
		if err := c.codec.read(&resp); err != nil {
			return fail(fmt.Errorf("receiving: %w", err))
		}
		if resp.ID == req.ID {
			// A response may announce a binary frame: consume it before
			// anything else — unconsumed frame bytes poison the stream for
			// every later call. Consuming even on a decode error below keeps
			// the connection reusable.
			if resp.Frame > 0 {
				var err error
				if frame, err = c.codec.readFrame(resp.Frame); err != nil {
					return fail(err)
				}
			}
			break
		}
		if resp.ID < req.ID && drained < drainLimit {
			// A stale response from an abandoned call: drain it (frame
			// included) and keep reading rather than poisoning the stream
			// for every later caller.
			if resp.Frame > 0 {
				if err := c.codec.discardFrame(resp.Frame); err != nil {
					return fail(err)
				}
			}
			continue
		}
		return fail(fmt.Errorf("response id %d for request %d: stream desynced", resp.ID, req.ID))
	}
	if resp.Error != "" {
		// The daemon answered: the channel is healthy even if the request
		// was rejected.
		c.brk.success()
		return fmt.Errorf("rpc: %s: %s", method, resp.Error)
	}
	if result != nil {
		if err := json.Unmarshal(resp.Result, result); err != nil {
			return fail(fmt.Errorf("decoding result: %w", err))
		}
		if fr, ok := result.(frameReceiver); ok && frame != nil {
			fr.setFrameBytes(frame)
		}
	}
	c.brk.success()
	return nil
}

// firstCtx unwraps the optional trailing span-context parameter the
// traced methods accept: absent means "untraced call" (the invalid zero
// context), which keeps every pre-tracing call site source-compatible.
func firstCtx(parent []tracing.SpanContext) tracing.SpanContext {
	if len(parent) > 0 {
		return parent[0]
	}
	return tracing.SpanContext{}
}

// Ping checks connectivity.
func (c *Client) Ping() error {
	var r BoolResult
	return c.call(MethodPing, nil, &r)
}

// TraceDump fetches the daemon's span-buffer snapshot (limit <= 0 means
// every retained span). Collectors fetch dumps fleet-wide and assemble
// them with tracing.Assemble.
func (c *Client) TraceDump(limit int) (TraceDumpResult, error) {
	var r TraceDumpResult
	err := c.call(MethodTraceDump, TraceDumpParams{Limit: limit}, &r)
	return r, err
}

// Hello sends one liveness probe carrying the local session's state and
// returns the daemon's answer (its session state plus its process
// incarnation). Hello is deliberately NOT in the idempotent-retry set:
// the liveness state machine owns failure handling, and transparent
// retries would distort its detection timing.
func (c *Client) Hello(session string, state int, txInterval time.Duration) (HelloResult, error) {
	var r HelloResult
	err := c.call(MethodHello, HelloParams{
		Session: session, State: state, TxIntervalNs: txInterval.Nanoseconds(),
	}, &r)
	return r, err
}

// AddTask deploys a measurement task. The optional trailing span context
// parents this call's RPC spans (likewise on the other traced methods).
func (c *Client) AddTask(spec controlplane.TaskSpec, parent ...tracing.SpanContext) (TaskResult, error) {
	var r TaskResult
	err := c.callCtx(firstCtx(parent), MethodAddTask, AddTaskParams{Spec: spec}, &r)
	return r, err
}

// AddTaskAt deploys a measurement task pinned to a specific task ID — the
// reconciler's re-deploy primitive (the daemon refuses if the ID is taken).
func (c *Client) AddTaskAt(id int, spec controlplane.TaskSpec, parent ...tracing.SpanContext) (TaskResult, error) {
	var r TaskResult
	err := c.callCtx(firstCtx(parent), MethodAddTask, AddTaskParams{Spec: spec, WantID: id}, &r)
	return r, err
}

// RemoveTask removes a task.
func (c *Client) RemoveTask(id int, parent ...tracing.SpanContext) error {
	var r BoolResult
	return c.callCtx(firstCtx(parent), MethodRemoveTask, TaskIDParams{ID: id}, &r)
}

// ResizeTask reallocates a task's memory.
func (c *Client) ResizeTask(id, newBuckets int, parent ...tracing.SpanContext) (TaskResult, error) {
	var r TaskResult
	err := c.callCtx(firstCtx(parent), MethodResizeTask, ResizeParams{ID: id, NewBuckets: newBuckets}, &r)
	return r, err
}

// ListTasks lists deployed tasks.
func (c *Client) ListTasks(parent ...tracing.SpanContext) ([]TaskResult, error) {
	var r []TaskResult
	err := c.callCtx(firstCtx(parent), MethodListTasks, nil, &r)
	return r, err
}

// Estimate returns a per-key estimate.
func (c *Client) Estimate(id int, key packet.CanonicalKey) (float64, error) {
	var r EstimateResult
	err := c.call(MethodEstimate, KeyParams{ID: id, Key: key[:]}, &r)
	return r.Value, err
}

// Cardinality returns a cardinality task's estimate.
func (c *Client) Cardinality(id int) (float64, error) {
	var r EstimateResult
	err := c.call(MethodCardinality, TaskIDParams{ID: id}, &r)
	return r.Value, err
}

// Contains reports Bloom-filter membership.
func (c *Client) Contains(id int, key packet.CanonicalKey) (bool, error) {
	var r BoolResult
	err := c.call(MethodContains, KeyParams{ID: id, Key: key[:]}, &r)
	return r.Value, err
}

// Reported returns detected keys among candidates.
func (c *Client) Reported(id int, candidates []packet.CanonicalKey) ([]packet.CanonicalKey, error) {
	p := CandidatesParams{ID: id}
	for _, k := range candidates {
		kk := k
		p.Candidates = append(p.Candidates, kk[:])
	}
	var r ReportedResult
	if err := c.call(MethodReported, p, &r); err != nil {
		return nil, err
	}
	out := make([]packet.CanonicalKey, len(r.Keys))
	for i, b := range r.Keys {
		out[i] = keyFromBytes(b)
	}
	return out, nil
}

// Distribution returns an MRAC task's flow-size distribution and entropy.
func (c *Client) Distribution(id int) (DistributionResult, error) {
	var r DistributionResult
	err := c.call(MethodDistribution, TaskIDParams{ID: id}, &r)
	return r, err
}

// ReadRegisters reads a task's raw register partitions.
func (c *Client) ReadRegisters(id int, parent ...tracing.SpanContext) ([][]uint32, error) {
	var r RegistersResult
	err := c.callCtx(firstCtx(parent), MethodReadRegisters, TaskIDParams{ID: id}, &r)
	return r.Rows, err
}

// ReadRegistersPacked reads a task's raw register partitions using the
// packed binary row encoding and returns the undecoded result, letting
// callers (the fleet merge tree) unpack into recycled buffers via
// UnpackRows.
func (c *Client) ReadRegistersPacked(id int, parent ...tracing.SpanContext) (RegistersResult, error) {
	var r RegistersResult
	err := c.callCtx(firstCtx(parent), MethodReadRegisters, ReadRegistersParams{ID: id, Packed: true}, &r)
	return r, err
}

// EpochDeploy creates an epoch task (a daemon-side rotator) for spec.
func (c *Client) EpochDeploy(spec controlplane.TaskSpec, parent ...tracing.SpanContext) (EpochTaskResult, error) {
	var r EpochTaskResult
	err := c.callCtx(firstCtx(parent), MethodEpochDeploy, AddTaskParams{Spec: spec}, &r)
	return r, err
}

// EpochRotate advances an epoch task to toEpoch (0 = advance by one).
// With an explicit target the call is idempotent and safe to re-send.
func (c *Client) EpochRotate(name string, toEpoch int, parent ...tracing.SpanContext) (EpochTaskResult, error) {
	var r EpochTaskResult
	err := c.callCtx(firstCtx(parent), MethodEpochRotate, EpochRotateParams{Name: name, ToEpoch: toEpoch}, &r)
	return r, err
}

// ReadEpoch fetches one completed epoch's packed register snapshot
// (epoch 0 = the daemon's latest completed epoch). A daemon that has not
// reached the epoch answers with an error IsEpochUnavailable recognizes,
// carrying its current epoch in Current of a successful retry.
func (c *Client) ReadEpoch(name string, epoch int, parent ...tracing.SpanContext) (EpochRegistersResult, error) {
	var r EpochRegistersResult
	err := c.callCtx(firstCtx(parent), MethodReadEpoch, ReadEpochParams{Name: name, Epoch: epoch}, &r)
	return r, err
}

// EpochRemove reclaims an epoch task's deployments and snapshots.
func (c *Client) EpochRemove(name string, parent ...tracing.SpanContext) error {
	var r BoolResult
	return c.callCtx(firstCtx(parent), MethodEpochRemove, EpochTaskParams{Name: name}, &r)
}

// KeyIndices returns a flow key's per-row register indices on a frequency
// task, computed by the daemon's own placement.
func (c *Client) KeyIndices(id int, key packet.CanonicalKey) ([]uint32, error) {
	var r KeyIndicesResult
	err := c.call(MethodKeyIndices, KeyParams{ID: id, Key: key[:]}, &r)
	return r.Indices, err
}

// Resources reports free memory and task counts.
func (c *Client) Resources() (ResourcesResult, error) {
	var r ResourcesResult
	err := c.call(MethodResources, nil, &r)
	return r, err
}

// ResourceReport returns the per-group occupancy report.
func (c *Client) ResourceReport() ([]controlplane.GroupReport, error) {
	var r ReportResult
	err := c.call(MethodReport, nil, &r)
	return r.Groups, err
}

// SplitTask splits a task into two filter-disjoint subtasks (§3.1.1).
func (c *Client) SplitTask(id int) (lo, hi TaskResult, err error) {
	var r SplitResult
	err = c.call(MethodSplitTask, TaskIDParams{ID: id}, &r)
	return r.Lo, r.Hi, err
}

// LoadTrace loads a binary trace file from the daemon's filesystem.
func (c *Client) LoadTrace(path string) (int, error) {
	var r ReplayResult
	err := c.call(MethodLoadTrace, LoadTraceParams{Path: path}, &r)
	return r.Processed, err
}

// GenTrace synthesizes a workload inside the daemon.
func (c *Client) GenTrace(flows, packets int, zipfS float64, seed int64) (int, error) {
	var r ReplayResult
	err := c.call(MethodGenTrace, GenTraceParams{Flows: flows, Packets: packets, ZipfS: zipfS, Seed: seed}, &r)
	return r.Processed, err
}

// Replay pushes n packets (0 = all) of the loaded trace through the
// pipeline.
func (c *Client) Replay(n int) (int, error) {
	var r ReplayResult
	err := c.call(MethodReplay, ReplayParams{Packets: n}, &r)
	return r.Processed, err
}

// Stats returns daemon counters.
func (c *Client) Stats() (StatsResult, error) {
	var r StatsResult
	err := c.call(MethodStats, nil, &r)
	return r, err
}

// Telemetry fetches the daemon's full telemetry report (errors if the
// daemon runs without a telemetry registry).
func (c *Client) Telemetry(parent ...tracing.SpanContext) (telemetry.Report, error) {
	var r telemetry.Report
	err := c.callCtx(firstCtx(parent), MethodTelemetry, nil, &r)
	return r, err
}
