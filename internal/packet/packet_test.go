package packet

import (
	"testing"
	"testing/quick"
)

func TestFieldBits(t *testing.T) {
	cases := []struct {
		f    Field
		want int
	}{
		{FieldSrcIP, 32}, {FieldDstIP, 32}, {FieldSrcPort, 16},
		{FieldDstPort, 16}, {FieldProto, 8}, {FieldTimestamp, 32},
	}
	for _, c := range cases {
		if got := c.f.Bits(); got != c.want {
			t.Errorf("%s.Bits() = %d, want %d", c.f, got, c.want)
		}
	}
	if Field(250).Bits() != 0 {
		t.Error("unknown field should have zero width")
	}
}

func TestFieldString(t *testing.T) {
	names := map[Field]string{
		FieldSrcIP: "SrcIP", FieldDstIP: "DstIP", FieldSrcPort: "SrcPort",
		FieldDstPort: "DstPort", FieldProto: "Proto", FieldTimestamp: "Timestamp",
	}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("Field(%d).String() = %q, want %q", f, f.String(), want)
		}
	}
}

func TestKeyPartEffectiveBits(t *testing.T) {
	if got := (KeyPart{Field: FieldSrcIP}).EffectiveBits(); got != 32 {
		t.Errorf("full SrcIP = %d bits, want 32", got)
	}
	if got := (KeyPart{Field: FieldSrcIP, PrefixBits: 24}).EffectiveBits(); got != 24 {
		t.Errorf("SrcIP/24 = %d bits, want 24", got)
	}
	if got := (KeyPart{Field: FieldSrcPort, PrefixBits: 99}).EffectiveBits(); got != 16 {
		t.Errorf("over-wide prefix should clamp to field width, got %d", got)
	}
}

func TestKeySpecBits(t *testing.T) {
	if got := KeyFiveTuple.Bits(); got != 104 {
		t.Errorf("5-tuple = %d bits, want 104", got)
	}
	if got := KeyIPPair.Bits(); got != 64 {
		t.Errorf("IP pair = %d bits, want 64", got)
	}
	spec := KeySpec{Parts: []KeyPart{{Field: FieldSrcIP, PrefixBits: 24}}}
	if got := spec.Bits(); got != 24 {
		t.Errorf("SrcIP/24 = %d bits, want 24", got)
	}
}

func TestKeySpecString(t *testing.T) {
	if s := KeyFiveTuple.String(); s != "SrcIP-DstIP-SrcPort-DstPort-Proto" {
		t.Errorf("5-tuple string = %q", s)
	}
	spec := KeySpec{Parts: []KeyPart{{Field: FieldSrcIP, PrefixBits: 16}}}
	if s := spec.String(); s != "SrcIP/16" {
		t.Errorf("prefix string = %q", s)
	}
	if s := (KeySpec{}).String(); s != "<empty>" {
		t.Errorf("empty spec string = %q", s)
	}
}

func TestKeySpecEqual(t *testing.T) {
	a := NewKeySpec(FieldSrcIP, FieldDstIP)
	b := KeyIPPair
	if !a.Equal(b) {
		t.Error("identical specs must be equal")
	}
	if a.Equal(KeySrcIP) {
		t.Error("different-length specs must differ")
	}
	c := KeySpec{Parts: []KeyPart{{Field: FieldSrcIP, PrefixBits: 24}}}
	if c.Equal(KeySrcIP) {
		t.Error("prefix-narrowed spec must differ from full field")
	}
	// PrefixBits 0 and 32 are the same effective width for a 32-bit field.
	d := KeySpec{Parts: []KeyPart{{Field: FieldSrcIP, PrefixBits: 32}}}
	if !d.Equal(KeySrcIP) {
		t.Error("explicit full prefix must equal implicit full width")
	}
}

func TestExtractSelectsOnlySpecFields(t *testing.T) {
	p := Packet{SrcIP: 0xAABBCCDD, DstIP: 0x11223344, SrcPort: 0x5566,
		DstPort: 0x7788, Proto: 17, TimestampNs: 12345678000}
	k := KeySrcIP.Extract(&p)
	want := CanonicalKey{0xAA, 0xBB, 0xCC, 0xDD}
	if k != want {
		t.Errorf("SrcIP extract = %v, want %v", k[:8], want[:8])
	}
	// Changing non-key fields must not change the canonical key.
	p2 := p
	p2.DstIP, p2.SrcPort, p2.Proto = 0, 0, 0
	if KeySrcIP.Extract(&p2) != k {
		t.Error("non-key fields leaked into the canonical key")
	}
}

func TestExtractPrefixZeroesHostBits(t *testing.T) {
	p := Packet{SrcIP: IPv4(10, 20, 30, 40)}
	spec := KeySpec{Parts: []KeyPart{{Field: FieldSrcIP, PrefixBits: 24}}}
	k := spec.Extract(&p)
	if k[3] != 0 {
		t.Errorf("host byte should be masked, got %#x", k[3])
	}
	if k[0] != 10 || k[1] != 20 || k[2] != 30 {
		t.Errorf("network bytes wrong: %v", k[:4])
	}
	// Two hosts in the same /24 must extract identically.
	q := Packet{SrcIP: IPv4(10, 20, 30, 99)}
	if spec.Extract(&q) != k {
		t.Error("same /24 must produce the same key")
	}
	r := Packet{SrcIP: IPv4(10, 20, 31, 40)}
	if spec.Extract(&r) == k {
		t.Error("different /24 must produce a different key")
	}
}

func TestExtractDeterministicProperty(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, proto uint8) bool {
		p := Packet{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: proto}
		return KeyFiveTuple.Extract(&p) == KeyFiveTuple.Extract(&p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExtractInjectiveOnFiveTupleProperty(t *testing.T) {
	// Distinct 5-tuples must produce distinct canonical keys (the encoding
	// is lossless at full width).
	f := func(a, b uint32, sp uint16) bool {
		p := Packet{SrcIP: a, DstIP: b, SrcPort: sp, Proto: 6}
		q := Packet{SrcIP: a + 1, DstIP: b, SrcPort: sp, Proto: 6}
		return KeyFiveTuple.Extract(&p) != KeyFiveTuple.Extract(&q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFieldMaskMatchesExtract(t *testing.T) {
	// Extract via spec and via the raw field-mask API must agree — the
	// hash units rely on this equivalence.
	p := Packet{SrcIP: 0xDEADBEEF, DstIP: 0xCAFEBABE, SrcPort: 80, DstPort: 443, Proto: 6}
	for _, spec := range []KeySpec{KeySrcIP, KeyDstIP, KeyIPPair, KeyFiveTuple} {
		if spec.Extract(&p) != ExtractMasked(&p, spec.FieldMask()) {
			t.Errorf("spec %s: Extract != ExtractMasked", spec)
		}
	}
}

func TestIPv4Format(t *testing.T) {
	ip := IPv4(192, 168, 1, 200)
	if ip != 0xC0A801C8 {
		t.Errorf("IPv4 = %#x", ip)
	}
	if s := FormatIPv4(ip); s != "192.168.1.200" {
		t.Errorf("FormatIPv4 = %q", s)
	}
}

func TestFieldValue(t *testing.T) {
	p := Packet{SrcIP: 7, DstIP: 8, SrcPort: 9, DstPort: 10, Proto: 11, TimestampNs: 5000}
	cases := map[Field]uint32{
		FieldSrcIP: 7, FieldDstIP: 8, FieldSrcPort: 9,
		FieldDstPort: 10, FieldProto: 11, FieldTimestamp: 5,
	}
	for f, want := range cases {
		if got := p.FieldValue(f); got != want {
			t.Errorf("FieldValue(%s) = %d, want %d", f, got, want)
		}
	}
}
