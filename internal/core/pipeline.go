package core

import (
	"fmt"
	"sync/atomic"

	"flymon/internal/packet"
	"flymon/internal/telemetry"
)

// rngSeed is the xorshift seed every fresh per-worker context starts from,
// keeping single-context replays deterministic across runs.
const rngSeed = 0x9E3779B97F4A7C15

// ProcCtx is the per-worker scratch a packet needs on its way through the
// data plane: the PHV Context plus the compressed-key buffers the
// compression stage fills. One ProcCtx serves one worker; concurrent
// workers each own their own, which is what makes the packet path safe to
// run on many cores (the registers themselves are atomic).
type ProcCtx struct {
	Ctx Context

	// keyBuf holds one group's compressed keys (interpretive path) or the
	// per-group remap of deduplicated hashes (snapshot path).
	keyBuf []uint32
	// masked caches the distinct masked canonical keys of the current
	// packet, indexed by the snapshot's mask table.
	masked []packet.CanonicalKey
	// hashes caches the distinct (mask, polynomial) digests of the current
	// packet, indexed by the snapshot's hash table.
	hashes []uint32

	// Telemetry scratch (telemetry.go): the snapshot the accumulators are
	// armed for, the pending per-rule hit counts Ctx.Tele aliases, pending
	// packet/recirculation counts, and the worker's counter stripe. All
	// context-local; teleFlush moves them into the shared striped counters.
	teleSnap    *Snapshot
	tele        []uint64
	telePend    uint32
	teleRecPend uint32
	stripe      uint32

	// frames is the FrameView-native engine's stage-at-a-time scratch
	// (frames.go); framePkt is the decode target of its per-packet fallback
	// path. Both are cold until the first ProcessFrames call.
	frames   frameScratch
	framePkt packet.Packet
}

// NewProcCtx returns a fresh worker context with the deterministic seed.
func NewProcCtx() *ProcCtx {
	return &ProcCtx{Ctx: Context{rng: rngSeed, Shard: -1}}
}

// ctxSeq numbers unique-stream contexts so no two share an rng stream.
var ctxSeq atomic.Uint64

// NewProcCtxUnique returns a worker context whose rng stream differs from
// every other context's (splitmix64 of a global counter). Pools that may
// drop and recreate contexts at arbitrary times must use this: restarting
// the fixed-seed stream mid-replay would re-deal the same coin-flip prefix
// and bias probabilistic rules. Batch replays that need reproducibility
// use NewProcCtx instead.
func NewProcCtxUnique() *ProcCtx {
	z := ctxSeq.Add(1) * 0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = rngSeed
	}
	// The same splitmix output spreads unique contexts over the telemetry
	// counter stripes, so pool workers rarely share a counter cache line.
	return &ProcCtx{Ctx: Context{rng: z, Shard: -1}, stripe: uint32(z)}
}

// Reseed rewinds the context's rng to the fixed deterministic seed. A
// pooled context then behaves bit-identically to a fresh NewProcCtx — the
// coin-flip stream restarts from the same point — while its grown scratch
// buffers are retained, which is what makes the controller's sequential
// batch path both deterministic and allocation-free.
func (pc *ProcCtx) Reseed() { pc.Ctx.rng = rngSeed }

// reset re-arms the context for a new packet (or a recirculated copy: a
// fresh PHV), preserving the rng state.
func (pc *ProcCtx) reset(p *packet.Packet) {
	pc.Ctx.Pkt = p
	pc.Ctx.PrevResult = 0
	pc.Ctx.PrevOld = 0
	pc.Ctx.PrevNewFlow = false
	pc.Ctx.RunningMin = ^uint32(0)
}

// unitKeys returns a scratch slice for n compressed keys.
func (pc *ProcCtx) unitKeys(n int) []uint32 {
	if cap(pc.keyBuf) < n {
		pc.keyBuf = make([]uint32, n)
	}
	return pc.keyBuf[:n]
}

// Pipeline is an ordered set of CMU Groups sharing one RMT pipeline.
// Packets traverse groups in order; the per-packet Context threads the CMU
// result bus between them, which is what lets SuMax(Sum), Counter Braids,
// and the max-interval task span CMUs in different groups (§4).
//
// Spliced groups model the Appendix-E optimization: the triangle areas at
// the pipeline's ends form up to three additional CMU Groups reachable
// only by mirroring and recirculating a packet — measurement capacity
// bought with bandwidth. A packet is recirculated only when some spliced
// group has an enabled task matching it.
//
// Process interprets the mutable group/rule structures directly and is
// single-threaded (one internal ProcCtx). For the concurrent fast path,
// Compile the pipeline into an immutable Snapshot and process through
// that; the packet counters are atomic and shared by both paths.
type Pipeline struct {
	groups  []*Group
	spliced []*Group

	packets      atomic.Uint64
	recirculated atomic.Uint64
	pc           *ProcCtx

	// tele, when set, makes Compile attach telemetry to every snapshot:
	// durable per-rule hit counters, derived-counter lists, and digest
	// multipliers. Nil keeps the compiled path telemetry-free (teleSlot -1
	// everywhere). Set before the first Compile; the interpretive
	// Process/ProcessCtx path is not instrumented — the controller always
	// processes through snapshots.
	tele *telemetry.Registry
}

// NewPipeline builds a pipeline of n default-geometry CMU Groups.
func NewPipeline(n int) *Pipeline {
	p := &Pipeline{pc: NewProcCtx()}
	for i := 0; i < n; i++ {
		p.groups = append(p.groups, NewGroup(GroupConfig{ID: i}))
	}
	return p
}

// NewPipelineWith builds a pipeline from explicit groups.
func NewPipelineWith(groups ...*Group) *Pipeline {
	return &Pipeline{groups: groups, pc: NewProcCtx()}
}

// SetTelemetry attaches a telemetry registry: every subsequent Compile
// wires per-rule hit counters and packet/digest accounting into the
// snapshot it produces. Passing nil detaches.
func (pl *Pipeline) SetTelemetry(reg *telemetry.Registry) { pl.tele = reg }

// Telemetry returns the attached registry (nil when telemetry is off).
func (pl *Pipeline) Telemetry() *telemetry.Registry { return pl.tele }

// Groups returns the number of groups.
func (pl *Pipeline) Groups() int { return len(pl.groups) }

// Group returns group i.
func (pl *Pipeline) Group(i int) *Group { return pl.groups[i] }

// AddSpliced registers a spliced (mirror+recirculate) group. The number of
// spliced groups is bounded by the pipeline's triangle areas
// (PlanWithRecirculation's Mirrored count).
func (pl *Pipeline) AddSpliced(g *Group) error {
	if len(pl.spliced) >= StagesPerGroup-1 {
		return fmt.Errorf("core: pipeline already has %d spliced groups (Appendix E bound)", len(pl.spliced))
	}
	pl.spliced = append(pl.spliced, g)
	return nil
}

// SplicedGroups returns the number of spliced groups.
func (pl *Pipeline) SplicedGroups() int { return len(pl.spliced) }

// Process pushes one packet through every group in pipeline order, and —
// when a spliced group has an enabled task for it — mirrors and
// recirculates it through the spliced groups. Process uses the pipeline's
// own scratch context and must not be called concurrently; use
// ProcessCtx with per-worker contexts (or a compiled Snapshot) for that.
func (pl *Pipeline) Process(p *packet.Packet) {
	pl.ProcessCtx(pl.pc, p)
}

// ProcessCtx is Process with a caller-owned worker context.
func (pl *Pipeline) ProcessCtx(pc *ProcCtx, p *packet.Packet) {
	pl.packets.Add(1)
	pc.reset(p)
	for _, g := range pl.groups {
		g.Process(pc)
	}
	if len(pl.spliced) == 0 || !pl.splicedWants(p) {
		return
	}
	// The mirrored copy re-enters the pipeline: a fresh PHV.
	pl.recirculated.Add(1)
	pc.reset(p)
	for _, g := range pl.spliced {
		g.Process(pc)
	}
}

// splicedWants reports whether any enabled spliced-group task matches p —
// the mirror decision the first pass takes. Disabled (frozen) rules match
// no traffic, so they must not trigger a mirror either: a frozen spliced
// task costs no recirculation bandwidth.
func (pl *Pipeline) splicedWants(p *packet.Packet) bool {
	for _, g := range pl.spliced {
		for i := 0; i < g.CMUs(); i++ {
			for _, r := range g.CMU(i).Rules() {
				if !r.Disabled && r.Filter.Matches(p) {
					return true
				}
			}
		}
	}
	return false
}

// Packets returns the number of packets processed.
func (pl *Pipeline) Packets() uint64 { return pl.packets.Load() }

// Recirculated returns the number of packets mirrored through the spliced
// groups; Recirculated/Packets is the Appendix-E bandwidth overhead.
func (pl *Pipeline) Recirculated() uint64 { return pl.recirculated.Load() }

// FindTask locates a task's rule: it returns the group, CMU index and rule
// for every CMU carrying taskID.
type TaskLocation struct {
	Group *Group
	CMU   int
	Rule  *Rule
}

// Locate returns every CMU location where taskID is installed, in pipeline
// order (spliced groups last).
func (pl *Pipeline) Locate(taskID int) []TaskLocation {
	var out []TaskLocation
	for _, g := range pl.allGroups() {
		for i := 0; i < g.CMUs(); i++ {
			if r := g.CMU(i).RuleFor(taskID); r != nil {
				out = append(out, TaskLocation{Group: g, CMU: i, Rule: r})
			}
		}
	}
	return out
}

func (pl *Pipeline) allGroups() []*Group {
	if len(pl.spliced) == 0 {
		return pl.groups
	}
	all := make([]*Group, 0, len(pl.groups)+len(pl.spliced))
	all = append(all, pl.groups...)
	return append(all, pl.spliced...)
}

// ReadTask reads the register partitions of every CMU carrying taskID, in
// pipeline order (the control plane's register readout).
func (pl *Pipeline) ReadTask(taskID int) ([][]uint32, error) {
	locs := pl.Locate(taskID)
	if len(locs) == 0 {
		return nil, fmt.Errorf("core: task %d not installed", taskID)
	}
	out := make([][]uint32, 0, len(locs))
	for _, l := range locs {
		data, err := l.Group.CMU(l.CMU).ReadTask(taskID)
		if err != nil {
			return nil, err
		}
		out = append(out, data)
	}
	return out, nil
}

// RemoveTask uninstalls taskID from every CMU (spliced groups included).
// It reports how many rules were removed.
func (pl *Pipeline) RemoveTask(taskID int) int {
	n := 0
	for _, g := range pl.allGroups() {
		for i := 0; i < g.CMUs(); i++ {
			if g.CMU(i).RemoveRule(taskID) {
				n++
			}
		}
	}
	return n
}
