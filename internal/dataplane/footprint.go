package dataplane

import "fmt"

// SketchKind identifies a statically deployed sketch for footprint
// accounting (Fig. 2: the conventional one-task-one-implementation way).
type SketchKind uint8

// Static sketch kinds evaluated in Fig. 2.
const (
	KindBloomFilter SketchKind = iota
	KindCMS
	KindHLL
	KindMRAC
)

// String implements fmt.Stringer.
func (k SketchKind) String() string {
	switch k {
	case KindBloomFilter:
		return "BloomFilter"
	case KindCMS:
		return "CMS"
	case KindHLL:
		return "HLL"
	case KindMRAC:
		return "MRAC"
	default:
		return fmt.Sprintf("SketchKind(%d)", uint8(k))
	}
}

// StaticFootprint returns the hardware resources a conventional static
// deployment of the sketch consumes: one hash unit, one SALU, and one
// logical table per row, SRAM blocks for its counters, a PHV key copy, and
// the VLIW slots of its apply block. This models the O(m·n) cost FlyMon
// eliminates (§1, §2.2).
func StaticFootprint(kind SketchKind, d, buckets, keyBits int) Resources {
	var bitWidth int
	switch kind {
	case KindBloomFilter:
		bitWidth = 1
	case KindCMS, KindMRAC:
		bitWidth = 32
		if kind == KindMRAC {
			d = 1 // MRAC is a single array
		}
	case KindHLL:
		bitWidth = 8
		d = 1
	}
	sram := 0
	for i := 0; i < d; i++ {
		sram += SRAMBlocksFor(buckets, bitWidth)
	}
	return Resources{
		HashUnits:     d * 2, // one for index computation + the SALU addressing tax
		SALUs:         d,
		SRAMBlocks:    sram,
		VLIWSlots:     d + 2,
		LogicalTables: d + 1,
		PHVBits:       keyBits + 32, // static key copy + result field
	}
}

// BaselineSwitchProfile returns the resource usage of Tofino's baseline
// switch project (switch.p4: L2/L3 forwarding, ACLs, multicast, QoS, ...),
// the substrate Fig. 13a integrates CMU Groups into. Fractions are
// calibrated to the paper's reported bars.
func BaselineSwitchProfile() Resources {
	cap_ := PipelineCapacity(NumStages)
	frac := func(c int, f float64) int { return int(float64(c) * f) }
	return Resources{
		HashUnits:     frac(cap_.HashUnits, 0.38),
		SALUs:         frac(cap_.SALUs, 0.17),
		SRAMBlocks:    frac(cap_.SRAMBlocks, 0.34),
		TCAMBlocks:    frac(cap_.TCAMBlocks, 0.31),
		VLIWSlots:     frac(cap_.VLIWSlots, 0.36),
		LogicalTables: frac(cap_.LogicalTables, 0.47),
		PHVBits:       frac(cap_.PHVBits, 0.42),
	}
}

// TranslationTCAMEntries returns the worst-case TCAM entry count the
// TCAM-based address translation needs in one CMU's preparation stage to
// support `partitions` memory partitions with a full complement of
// concurrent tasks: each of the `partitions` tasks needs (partitions − 1)
// range-remap entries plus one shared default (§3.3).
func TranslationTCAMEntries(partitions int) int {
	if partitions <= 1 {
		return 0
	}
	return partitions*(partitions-1) + 1
}

// TranslationTCAMUsage returns the fraction of one MAU stage's TCAM
// entries that TCAM-based address translation consumes for `cmus` CMUs
// supporting the given partition count (Fig. 11a): the paper reports 12.5%
// for 32 partitions on one CMU, which matches the P·(P−1)+1 worst-case
// entry count against the stage's 24 × 512 entries.
func TranslationTCAMUsage(partitions, cmus int) float64 {
	stageEntries := TCAMBlocksPerStage * TCAMBlockEntries
	return float64(cmus*TranslationTCAMEntries(partitions)) / float64(stageEntries)
}

// TranslationPHVBits returns the extra PHV bits the single-stage variant of
// shift-based address translation costs for the given partition count
// (Fig. 11b): one pre-shifted 32-bit address per possible shift amount
// (0..log2(partitions)), computed in the initialization stage.
func TranslationPHVBits(partitions int) int {
	if partitions < 1 {
		return 0
	}
	levels := 0
	for p := 1; p < partitions; p <<= 1 {
		levels++
	}
	return (levels + 1) * 32
}
