package hashing

import (
	"hash/crc32"
	"math/rand"
	"testing"

	"flymon/internal/packet"
)

// TestTable8MatchesStdlib: slicing-by-8 must be bit-identical to the
// stdlib byte-at-a-time CRC for every unit polynomial, at every length —
// bucket locations computed before and after this change must agree.
func TestTable8MatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for pi, poly := range polynomials {
		ref := crc32.MakeTable(poly)
		t8 := MakeTable8(poly)
		buf := make([]byte, 64)
		rng.Read(buf)
		for n := 0; n <= len(buf); n++ {
			want := crc32.Checksum(buf[:n], ref)
			if got := t8.Checksum(buf[:n]); got != want {
				t.Fatalf("poly %d len %d: Checksum %#x, want %#x", pi, n, got, want)
			}
		}
		var k packet.CanonicalKey
		for trial := 0; trial < 100; trial++ {
			rng.Read(k[:])
			want := crc32.Checksum(k[:], ref)
			if got := t8.ChecksumKey(&k); got != want {
				t.Fatalf("poly %d: ChecksumKey %#x, want %#x on %x", pi, got, want, k)
			}
		}
	}
}

// TestHasherSumMatchesUnitHash: the snapshot-held Hasher and the live unit
// must agree on every packet (they share the table; Sum takes the
// pre-masked key).
func TestHasherSumMatchesUnitHash(t *testing.T) {
	for i := 0; i < MaxUnits(); i++ {
		u := NewUnit(i)
		u.Configure(packet.KeyFiveTuple)
		h := u.Hasher()
		p := packet.Packet{SrcIP: 0xC0A80000 + uint32(i), DstIP: 7, SrcPort: 80, DstPort: 443, Proto: 6}
		k := packet.ExtractMasked(&p, u.Mask())
		if u.Hash(&p) != h.Sum(k) {
			t.Fatalf("unit %d: Hash and Hasher.Sum disagree", i)
		}
	}
}

// TestHashZeroAlloc: the per-packet digest primitives must not allocate —
// the canonical key has to stay on the stack.
func TestHashZeroAlloc(t *testing.T) {
	u := NewUnit(3) // custom polynomial: no stdlib fast path to lean on
	u.Configure(packet.KeyFiveTuple)
	h := u.Hasher()
	p := packet.Packet{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	k := packet.ExtractMasked(&p, u.Mask())

	if avg := testing.AllocsPerRun(200, func() {
		p.SrcIP++
		_ = u.Hash(&p)
	}); avg != 0 {
		t.Fatalf("Unit.Hash allocates %.1f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		k[0]++
		_ = h.Sum(k)
	}); avg != 0 {
		t.Fatalf("Hasher.Sum allocates %.1f allocs/op, want 0", avg)
	}
}

// BenchmarkChecksumKey measures the word-chunked canonical-key digest.
func BenchmarkChecksumKey(b *testing.B) {
	t8 := tableFor(3)
	var k packet.CanonicalKey
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k[0] = byte(i)
		_ = t8.ChecksumKey(&k)
	}
}
