package netwide

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"flymon/internal/controlplane"
	"flymon/internal/core/algorithms"
	"flymon/internal/packet"
	"flymon/internal/rpc"
	"flymon/internal/telemetry"
	"flymon/internal/tracing"
)

// Engine selects how fleet-wide register merges are executed.
type Engine int

const (
	// EngineAuto picks the default engine (currently the merge tree).
	EngineAuto Engine = iota
	// EngineFlat is the original sequential pairwise fold in switch-index
	// order — kept selectable as the bench baseline and escape hatch.
	EngineFlat
	// EngineTree is the streaming parallel k-ary merge tree: packed
	// binary register reads, merged as responses arrive (see mergetree.go).
	EngineTree
)

func (e Engine) String() string {
	switch e {
	case EngineFlat:
		return "flat"
	case EngineTree, EngineAuto:
		return "tree"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// FleetOptions tunes the remote fleet's failure behavior.
type FleetOptions struct {
	// AllowPartial lets fleet-wide queries return a merged result over the
	// reachable subset of switches (annotated in a QueryReport) instead of
	// failing the whole query when one daemon is down. A sketch merged
	// over k of n switches is still a valid (under)estimate.
	AllowPartial bool
	// OpTimeout bounds one fleet-wide fan-out (deploy, remove, query).
	// Switches that have not answered by then are counted as failed for
	// this operation; their in-flight calls still complete in the
	// background and update health. 0 = wait for every per-call timeout.
	OpTimeout time.Duration
	// DownAfter consecutive failures mark a switch Down (default 3; the
	// first failure already marks it Degraded).
	DownAfter int
	// Telemetry, when set, counts fan-outs, per-switch operation failures,
	// partial merges, and health-state transitions (normally a Registry's
	// Fleet section). nil = uninstrumented.
	Telemetry *telemetry.FleetStats
	// Journal, when set, records fleet lifecycle events — switch ejects and
	// rejoins, reconciler re-deploys — next to the controller's own
	// reconfiguration journal. nil = unjournaled.
	Journal *telemetry.Journal
	// Clock overrides time.Now for health timestamps and liveness state
	// machines (tests drive time without sleeping). nil = time.Now.
	Clock func() time.Time
	// Engine selects the merge engine for fleet-wide queries (default:
	// the parallel merge tree). Results are bit-identical across engines;
	// only latency differs.
	Engine Engine
	// MergeArity overrides the merge tree's fan-in (default 4).
	MergeArity int
	// Tracer, when set, records a root span per fleet operation plus
	// per-switch, straggler, and merge-tree child spans, and is attached
	// to every RPC client so per-attempt transport spans parent under the
	// fleet's spans. nil = untraced (zero overhead).
	Tracer *tracing.Tracer
}

func (o FleetOptions) withDefaults() FleetOptions {
	if o.DownAfter <= 0 {
		o.DownAfter = 3
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// RemoteFleet is the deployed form of Fleet: the switches are flymond
// daemons reached over the control channel. The central controller keeps a
// local MIRROR controller built from the same configuration and fed the
// same task sequence — controller construction and placement are
// deterministic, so the mirror computes the exact hash mappings and
// register indices the remote switches use, while the remote daemons
// provide the actual register contents.
//
// All fleet operations fan out concurrently and track per-switch health;
// with AllowPartial set, queries degrade gracefully when daemons are
// unreachable instead of wedging the whole fleet on one dead switch.
type RemoteFleet struct {
	clients []*rpc.Client
	mirror  *controlplane.Controller
	opts    FleetOptions
	health  *healthTracker

	mu      sync.Mutex
	taskIDs map[string]int                   // mirror task ID (== remote IDs by construction)
	specs   map[string]controlplane.TaskSpec // desired spec per task, for reconciler re-deploys
	// tombstones marks tasks whose Remove partially failed: the handle is
	// kept (so manual retries work) but the reconciler must finish the
	// removal instead of re-deploying the task. name → task ID.
	tombstones map[string]int

	liveness *LivenessManager
	recon    *reconciler
	reconMu  sync.Mutex // serializes Reconcile passes
	stopOnce sync.Once

	// Epoch tasks (see epoch.go): fleet-level rotators living outside
	// taskIDs/specs so the reconciler never mistakes a daemon-side epoch
	// copy for drift.
	epochs  map[string]*fleetEpoch
	epochMu sync.Mutex // serializes rotations across the fleet

	// rowPool recycles leaf row buffers between merge-tree queries: a
	// steady query load unpacks register readouts into reused slices
	// instead of reallocating ~rows×buckets×4 bytes per switch per query.
	rowPool sync.Pool
}

// NewRemoteFleet wraps daemon connections with default options (strict
// all-or-nothing queries). cfg MUST equal the configuration every daemon
// was started with (flymond's -groups/-buckets/-bitwidth flags); a
// mismatch silently corrupts index computation, so deployments should
// verify with a known-key probe (see VerifyAlignment).
func NewRemoteFleet(clients []*rpc.Client, cfg controlplane.Config) *RemoteFleet {
	return NewRemoteFleetOptions(clients, cfg, FleetOptions{})
}

// NewRemoteFleetOptions wraps daemon connections with explicit failure
// options.
func NewRemoteFleetOptions(clients []*rpc.Client, cfg controlplane.Config, opts FleetOptions) *RemoteFleet {
	opts = opts.withDefaults()
	addrs := make([]string, len(clients))
	for i, c := range clients {
		addrs[i] = c.Addr()
	}
	h := newHealthTracker(len(clients), opts.DownAfter, addrs)
	h.tele = opts.Telemetry
	h.now = opts.Clock
	if opts.Tracer != nil {
		// Per-attempt transport spans (retries, breaker rejections) come
		// from the clients themselves; they need the fleet's tracer.
		for _, c := range clients {
			c.SetTracer(opts.Tracer)
		}
	}
	return &RemoteFleet{
		clients:    clients,
		mirror:     controlplane.NewController(cfg),
		opts:       opts,
		health:     h,
		taskIDs:    make(map[string]int),
		specs:      make(map[string]controlplane.TaskSpec),
		tombstones: make(map[string]int),
		epochs:     make(map[string]*fleetEpoch),
	}
}

// Size returns the number of remote switches.
func (f *RemoteFleet) Size() int { return len(f.clients) }

// Health returns the per-switch health table (state, consecutive and
// total failures, last error, liveness session) built from every fleet
// operation and hello round so far.
func (f *RemoteFleet) Health() []SwitchHealth { return f.health.snapshot() }

// journal records one fleet lifecycle event, if a journal is attached
// (task 0 = fleet-level event not tied to one task).
func (f *RemoteFleet) journal(kind string, task int, detail string, err error) {
	if f.opts.Journal == nil {
		return
	}
	ev := telemetry.Event{
		Kind:   kind,
		Task:   task,
		Detail: detail,
		OK:     err == nil,
	}
	if err != nil {
		ev.Err = err.Error()
	}
	f.opts.Journal.Record(ev)
}

// startRoot mints a fleet-operation root span (nil when untraced).
func (f *RemoteFleet) startRoot(op, detail string) *tracing.ActiveSpan {
	sp := f.opts.Tracer.StartRoot(op)
	sp.SetDetail(detail)
	return sp
}

// traceSpan opens a child span iff a tracer is attached AND the caller's
// operation is itself traced — an invalid parent means "untraced call",
// not "start a fresh trace", so background probes never flood the buffer.
func traceSpan(tr *tracing.Tracer, parent tracing.SpanContext, name string) *tracing.ActiveSpan {
	if tr == nil || !parent.Valid() {
		return nil
	}
	return tr.StartSpan(parent, name)
}

// StartLiveness attaches BFD-style keepalive sessions to every switch and
// makes them the fleet's primary health signal: a switch whose session is
// not reported-Up is ejected from fan-outs and merges without issuing an
// RPC, and readmitted (with its op-failure residue cleared) the moment
// the session is Up again. Call Stop to tear the sessions down.
func (f *RemoteFleet) StartLiveness(opts LivenessOptions) {
	if f.liveness != nil {
		return
	}
	if opts.Clock == nil {
		opts.Clock = f.opts.Clock
	}
	addrs := make([]string, len(f.clients))
	for i, c := range f.clients {
		addrs[i] = c.Addr()
	}
	m := NewLivenessManager(addrs, opts)
	m.onEvent = f.onSessionEvent
	f.liveness = m
	m.Start()
}

// onSessionEvent folds one hello round's outcome into health, telemetry,
// and the journal, and pokes the reconciler on rejoin.
func (f *RemoteFleet) onSessionEvent(idx int, ev sessionEvent, snap SessionSnapshot) {
	wasUp := false
	if h := f.health.snapshot(); idx < len(h) {
		wasUp = h[idx].SessionUp
	}
	f.health.setSession(idx, snap)
	if tele := f.opts.Telemetry; tele != nil {
		if ev.StateChanged {
			switch ev.To {
			case SessionUp:
				tele.SessionToUp.Add(1)
			case SessionInit:
				tele.SessionToInit.Add(1)
			case SessionDown:
				tele.SessionToDown.Add(1)
			}
		}
		if ev.DetectionTime > 0 {
			tele.DetectionTime.Observe(ev.DetectionTime)
		}
		tele.SetSession(telemetry.SessionGauge{
			Switch: idx,
			Addr:   snap.Addr,
			State:  snap.State.String(),
			Up:     snap.ReportedUp,
			Damped: snap.Damped,
		})
	}
	if wasUp && !snap.ReportedUp {
		if f.opts.Telemetry != nil {
			f.opts.Telemetry.Ejects.Add(1)
		}
		detail := fmt.Sprintf("switch %d (%s): session %s", idx, snap.Addr, snap.State)
		if ev.Restarted {
			detail += " (daemon restarted)"
		}
		if snap.Damped {
			detail += " (flap-damped)"
		}
		f.journal("eject", 0, detail, nil)
	}
	if !wasUp && snap.ReportedUp {
		if f.opts.Telemetry != nil {
			f.opts.Telemetry.Rejoins.Add(1)
		}
		f.journal("rejoin", 0, fmt.Sprintf("switch %d (%s): session up", idx, snap.Addr), nil)
		f.pokeReconciler()
	}
}

// Sessions returns the liveness sessions' current snapshots (nil when
// liveness is not running).
func (f *RemoteFleet) Sessions() []SessionSnapshot {
	if f.liveness == nil {
		return nil
	}
	return f.liveness.Snapshot()
}

// Stop tears down the liveness sessions and the reconciler, if running.
// The RPC clients are the caller's and stay open.
func (f *RemoteFleet) Stop() {
	f.stopOnce.Do(func() {
		if f.recon != nil {
			f.recon.stop()
		}
		if f.liveness != nil {
			f.liveness.Stop()
		}
	})
}

// fanResult is one switch's outcome inside a streaming fan-out: either a
// fetched row set (query fan-outs) or just an error slot (mutations).
type fanResult struct {
	i    int
	rows [][]uint32
	err  error
}

// fanOutRows runs op on every switch concurrently and streams per-switch
// results as they complete, bounded by timeout (0 = wait for every
// per-call deadline). The returned channel closes once every launched op
// answered or the deadline fired; at the deadline, unanswered switches
// get a synthesized deadline error while their in-flight calls finish in
// the background and still record health. Switches a liveness session has
// declared not-Up are ejected up front: they fail immediately with a
// liveness error and no RPC is issued, so a dead daemon costs a fleet
// query nothing. Streaming is what lets the merge tree start folding the
// fastest switches' rows while the slowest are still on the wire.
//
// When the fleet is traced and parent names a live operation, every
// launched switch gets a "switch" child span (tagged with its index and
// address) whose context the op threads into its RPCs, and every ejected
// switch gets an instant "eject" span recording why no RPC was issued.
func (f *RemoteFleet) fanOutRows(parent tracing.SpanContext, timeout time.Duration, op func(i int, c *rpc.Client, sc tracing.SpanContext) ([][]uint32, error)) <-chan fanResult {
	if f.opts.Telemetry != nil {
		f.opts.Telemetry.FanOuts.Add(1)
	}
	// Buffered to fleet size: a late completion after the deadline must
	// never block on a channel nobody reads anymore.
	ch := make(chan fanResult, len(f.clients))
	out := make(chan fanResult, len(f.clients))
	launched := 0
	skipped := make(map[int]bool)
	for i, c := range f.clients {
		if reason, ok := f.health.ejected(i); ok {
			skipped[i] = true
			err := fmt.Errorf("netwide: switch %d ejected (%s)", i, reason)
			esp := traceSpan(f.opts.Tracer, parent, "eject")
			esp.SetSwitch(i)
			esp.SetDetail(reason)
			esp.Finish(err)
			out <- fanResult{i: i, err: err}
			if f.opts.Telemetry != nil {
				f.opts.Telemetry.OpFailures.Add(1)
			}
			continue
		}
		launched++
		go func(i int, c *rpc.Client) {
			sp := traceSpan(f.opts.Tracer, parent, "switch")
			sp.SetSwitch(i)
			sp.SetDetail(c.Addr())
			rows, err := op(i, c, sp.Context())
			sp.Finish(err)
			if err != nil && f.opts.Telemetry != nil {
				f.opts.Telemetry.OpFailures.Add(1)
			}
			f.health.record(i, err)
			ch <- fanResult{i: i, rows: rows, err: err}
		}(i, c)
	}
	go func() {
		defer close(out)
		var timer <-chan time.Time
		if timeout > 0 {
			t := time.NewTimer(timeout)
			defer t.Stop()
			timer = t.C
		}
		seen := make(map[int]bool, launched)
		for n := 0; n < launched; n++ {
			select {
			case r := <-ch:
				seen[r.i] = true
				out <- r
			case <-timer:
				for i := range f.clients {
					if !seen[i] && !skipped[i] {
						out <- fanResult{i: i, err: fmt.Errorf("netwide: fleet deadline (%v) exceeded", timeout)}
					}
				}
				return
			}
		}
	}()
	return out
}

// fanOut runs op on every switch concurrently and collects per-switch
// errors, bounded by OpTimeout — the barrier form of fanOutRows, used by
// mutations (deploy/remove/rotate) that need the full outcome map.
func (f *RemoteFleet) fanOut(parent tracing.SpanContext, op func(i int, c *rpc.Client, sc tracing.SpanContext) error) map[int]error {
	errs := make(map[int]error)
	for r := range f.fanOutRows(parent, f.opts.OpTimeout, func(i int, c *rpc.Client, sc tracing.SpanContext) ([][]uint32, error) {
		return nil, op(i, c, sc)
	}) {
		if r.err != nil {
			errs[r.i] = r.err
		}
	}
	return errs
}

// Deploy installs the spec on every daemon and on the local mirror,
// fanning out concurrently. Deployment stays all-or-nothing: a task that
// exists only on part of the fleet would silently under-merge forever, so
// any failure rolls back the switches that did deploy.
func (f *RemoteFleet) Deploy(spec controlplane.TaskSpec) (err error) {
	root := f.startRoot("deploy", spec.Name)
	defer func() { root.Finish(err) }()
	f.mu.Lock()
	if _, ok := f.taskIDs[spec.Name]; ok {
		f.mu.Unlock()
		return fmt.Errorf("netwide: task %q already deployed", spec.Name)
	}
	if _, ok := f.epochs[spec.Name]; ok {
		f.mu.Unlock()
		return fmt.Errorf("netwide: name %q is an epoch task", spec.Name)
	}
	mt, err := f.mirror.AddTask(spec)
	if err != nil {
		f.mu.Unlock()
		return fmt.Errorf("netwide: mirror deploy of %q: %w", spec.Name, err)
	}
	f.mu.Unlock()

	var dmu sync.Mutex
	deployed := make(map[int]int) // switch index → remote task ID
	var diverged error
	errs := f.fanOut(root.Context(), func(i int, c *rpc.Client, sc tracing.SpanContext) error {
		rt, err := c.AddTask(spec, sc)
		if err != nil {
			return fmt.Errorf("netwide: deploying %q on daemon %d: %w", spec.Name, i, err)
		}
		dmu.Lock()
		deployed[i] = rt.ID
		if rt.ID != mt.ID && diverged == nil {
			// The daemon has diverged from the mirror (other tasks were
			// deployed out of band): refuse rather than mis-index.
			diverged = fmt.Errorf("netwide: daemon %d assigned task ID %d, mirror expected %d — configurations diverged",
				i, rt.ID, mt.ID)
		}
		dmu.Unlock()
		return nil
	})
	dmu.Lock()
	defer dmu.Unlock()
	if len(errs) > 0 || diverged != nil {
		// Roll back the daemons that did install, best effort. Plain
		// goroutines, not fanOut: a no-op on an untouched daemon must not
		// be recorded as a health probe.
		var wg sync.WaitGroup
		for i, id := range deployed {
			wg.Add(1)
			go func(i, id int) {
				defer wg.Done()
				_ = f.clients[i].RemoveTask(id)
			}(i, id)
		}
		wg.Wait()
		f.mu.Lock()
		_ = f.mirror.RemoveTask(mt.ID)
		f.mu.Unlock()
		if diverged != nil {
			return diverged
		}
		for _, i := range sortedKeys(errs) {
			return errs[i] // first failure in switch order
		}
	}
	f.mu.Lock()
	f.taskIDs[spec.Name] = mt.ID
	f.specs[spec.Name] = spec
	f.mu.Unlock()
	f.pokeReconciler()
	return nil
}

// Remove uninstalls the named task everywhere. On partial failure the
// task handle is KEPT so removal can be retried: forgetting the mapping
// would strand installed tasks on the unreachable switches forever. A
// retry treats "no task" answers as already-removed (removal is
// idempotent), so it only needs the stragglers to come back.
func (f *RemoteFleet) Remove(name string) (err error) {
	root := f.startRoot("remove", name)
	defer func() { root.Finish(err) }()
	f.mu.Lock()
	id, ok := f.taskIDs[name]
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("netwide: no task %q", name)
	}
	errs := f.fanOut(root.Context(), func(i int, c *rpc.Client, sc tracing.SpanContext) error {
		err := c.RemoveTask(id, sc)
		if err != nil && strings.Contains(err.Error(), "no task") {
			return nil // removed by a previous, partially-failed attempt
		}
		return err
	})
	if len(errs) > 0 {
		// Tombstone the task: the handle stays (so a manual retry works)
		// but the reconciler now knows to finish the removal on the
		// stragglers instead of re-deploying the task onto the switches
		// that did remove it.
		f.mu.Lock()
		f.tombstones[name] = id
		f.mu.Unlock()
		return &PartialFailureError{Op: "remove", Task: name, Failed: errs, Total: len(f.clients)}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.mirror.RemoveTask(id); err != nil {
		return err
	}
	delete(f.taskIDs, name)
	delete(f.specs, name)
	delete(f.tombstones, name)
	return nil
}

// mergeStats returns the fleet's merge-tree telemetry section, if any.
func (f *RemoteFleet) mergeStats() *telemetry.MergeTreeStats {
	if f.opts.Telemetry == nil {
		return nil
	}
	return &f.opts.Telemetry.MergeTree
}

// getRowBuf pulls a recycled leaf buffer from the pool (nil when empty —
// rpc.UnpackRows then allocates fresh).
func (f *RemoteFleet) getRowBuf() [][]uint32 {
	if v := f.rowPool.Get(); v != nil {
		return v.([][]uint32)
	}
	return nil
}

// putRowBuf returns a consumed leaf buffer to the pool. Safe for
// concurrent use (merge workers recycle sources as they fold).
func (f *RemoteFleet) putRowBuf(rows [][]uint32) {
	if rows != nil {
		f.rowPool.Put(rows)
	}
}

// engine resolves the effective merge engine.
func (f *RemoteFleet) engine() Engine {
	if f.opts.Engine == EngineFlat {
		return EngineFlat
	}
	return EngineTree
}

// MergedRows runs a fleet-wide register merge of the named task under op
// with an explicit engine (EngineAuto = the fleet's configured default) —
// the raw-readout query primitive, and the hook the scaling bench uses to
// compare flat vs tree over identical daemon state. Both engines produce
// bit-identical rows; only the critical path differs.
func (f *RemoteFleet) MergedRows(name string, op MergeOp, engine Engine) ([][]uint32, QueryReport, error) {
	rows, _, report, err := f.mergedRows(name, op, engine)
	return rows, report, err
}

// mergedRows resolves the task and dispatches to the selected engine.
func (f *RemoteFleet) mergedRows(name string, op MergeOp, engine Engine) ([][]uint32, int, QueryReport, error) {
	f.mu.Lock()
	id, ok := f.taskIDs[name]
	f.mu.Unlock()
	if !ok {
		return nil, 0, QueryReport{}, fmt.Errorf("netwide: no task %q", name)
	}
	if engine == EngineAuto {
		engine = f.engine()
	}
	root := f.startRoot("query", fmt.Sprintf("%s op=%s engine=%s", name, op, engine))
	var (
		rows   [][]uint32
		report QueryReport
		err    error
	)
	if engine == EngineFlat {
		rows, report, err = f.flatMergedRows(root.Context(), name, id, op)
	} else {
		rows, report, err = f.treeMergedRows(root.Context(), name, id, op)
	}
	root.Finish(err)
	return rows, id, report, err
}

// mergedRemoteRows is the default-engine query path.
func (f *RemoteFleet) mergedRemoteRows(name string, op MergeOp) ([][]uint32, int, QueryReport, error) {
	return f.mergedRows(name, op, EngineAuto)
}

// flatMergedRows is the sequential baseline: fetch every switch's rows
// (JSON encoding), then fold pairwise in switch-index order. With
// AllowPartial set, a subset merge succeeds and the QueryReport says
// which switches contributed; otherwise any unreachable daemon fails the
// query.
func (f *RemoteFleet) flatMergedRows(parent tracing.SpanContext, name string, id int, op MergeOp) ([][]uint32, QueryReport, error) {
	var report QueryReport
	// Each slot is owned by its fetch goroutine until the fan-out yields
	// its result; timed-out slots are never read.
	rows := make([][][]uint32, len(f.clients))
	errs := make(map[int]error)
	for r := range f.fanOutRows(parent, f.opts.OpTimeout, func(i int, c *rpc.Client, sc tracing.SpanContext) ([][]uint32, error) {
		rr, err := c.ReadRegisters(id, sc)
		if err != nil {
			return nil, fmt.Errorf("netwide: reading %q on daemon %d: %w", name, i, err)
		}
		return rr, nil
	}) {
		if r.err != nil {
			errs[r.i] = r.err
			continue
		}
		rows[r.i] = r.rows
	}
	if st := f.mergeStats(); st != nil {
		st.FlatFolds.Add(1)
	}
	report.Failed = make(map[int]string, len(errs))
	for i, err := range errs {
		report.Failed[i] = err.Error()
	}
	if len(errs) > 0 && !f.opts.AllowPartial {
		for _, i := range sortedKeys(errs) {
			return nil, report, errs[i]
		}
	}
	var merged [][]uint32
	first := -1
	for i := range f.clients {
		if _, failed := errs[i]; failed || rows[i] == nil {
			continue
		}
		if merged == nil {
			merged = rows[i] // the RPC client already returns fresh slices
			first = i
			report.Contributed = append(report.Contributed, i)
			continue
		}
		// Geometry mismatches are typed and name both switches: "which
		// pair of daemons disagrees" is the actionable part.
		var refLens []int
		for _, row := range merged {
			refLens = append(refLens, len(row))
		}
		if err := checkGeometry(name, first, refLens, i, rows[i]); err != nil {
			return nil, report, err
		}
		for r := range rows[i] {
			if err := op.Combine(merged[r], rows[i][r]); err != nil {
				return nil, report, err
			}
		}
		report.Contributed = append(report.Contributed, i)
	}
	if merged == nil {
		return nil, report, &PartialFailureError{Op: "read", Task: name, Failed: errs, Total: len(f.clients)}
	}
	if len(errs) > 0 && f.opts.Telemetry != nil {
		// A degraded-mode merge went through without every switch.
		f.opts.Telemetry.PartialMerges.Add(1)
	}
	return merged, report, nil
}

// treeMergedRows is the parallel path: packed binary register reads
// streamed straight into the k-ary merge tree, leaf buffers recycled
// through the fleet's pool. Failure semantics match the flat engine
// exactly (AllowPartial, OpTimeout, report shape).
func (f *RemoteFleet) treeMergedRows(parent tracing.SpanContext, name string, id int, op MergeOp) ([][]uint32, QueryReport, error) {
	var report QueryReport
	stream := f.fanOutRows(parent, f.opts.OpTimeout, func(i int, c *rpc.Client, sc tracing.SpanContext) ([][]uint32, error) {
		res, err := c.ReadRegistersPacked(id, sc)
		if err != nil {
			return nil, fmt.Errorf("netwide: reading %q on daemon %d: %w", name, i, err)
		}
		return res.FrameRows(f.getRowBuf()), nil
	})
	// The converter goroutine finishes all errs writes before closing
	// leaves, and MergeStream returns only after observing that close, so
	// reading errs afterwards is race-free.
	errs := make(map[int]error)
	leaves := make(chan Leaf, len(f.clients))
	go func() {
		defer close(leaves)
		for r := range stream {
			if r.err != nil {
				errs[r.i] = r.err
				continue
			}
			leaves <- Leaf{Switch: r.i, Rows: r.rows}
		}
	}()
	res, mergeErr := MergeStream(leaves, op, TreeOptions{
		Task:    name,
		Arity:   f.opts.MergeArity,
		Stats:   f.mergeStats(),
		Recycle: f.putRowBuf,
		Tracer:  f.opts.Tracer,
		Parent:  parent,
	})
	report.Contributed = res.Contributed
	report.Failed = make(map[int]string, len(errs))
	for i, err := range errs {
		report.Failed[i] = err.Error()
	}
	if mergeErr != nil {
		return nil, report, mergeErr
	}
	if len(errs) > 0 && !f.opts.AllowPartial {
		for _, i := range sortedKeys(errs) {
			return nil, report, errs[i]
		}
	}
	if res.Rows == nil {
		return nil, report, &PartialFailureError{Op: "read", Task: name, Failed: errs, Total: len(f.clients)}
	}
	if len(errs) > 0 && f.opts.Telemetry != nil {
		f.opts.Telemetry.PartialMerges.Add(1)
	}
	return res.Rows, report, nil
}

// EstimateKey returns the fleet-wide frequency estimate for key k (counter
// tasks; packets must be measured at exactly one daemon). With
// AllowPartial set it may be computed over a subset of switches; use
// EstimateKeyPartial to learn which.
func (f *RemoteFleet) EstimateKey(name string, k packet.CanonicalKey) (uint64, error) {
	v, _, err := f.EstimateKeyPartial(name, k)
	return v, err
}

// EstimateKeyPartial is EstimateKey plus the QueryReport: which switches
// contributed to the merge and which were skipped (with their errors).
// When report.Partial() is true the estimate is a lower bound over the
// reachable part of the fleet.
func (f *RemoteFleet) EstimateKeyPartial(name string, k packet.CanonicalKey) (uint64, QueryReport, error) {
	merged, id, report, err := f.mergedRemoteRows(name, MergeAdd)
	if err != nil {
		return 0, report, err
	}
	h, err := f.mirror.TaskHandle(id)
	if err != nil {
		return 0, report, err
	}
	cms, ok := h.(*algorithms.CMSTask)
	if !ok {
		return 0, report, fmt.Errorf("netwide: task %q is not a counter task", name)
	}
	min := ^uint32(0)
	for i := 0; i < cms.D; i++ {
		idx := cms.RowIndexFor(i, k) - uint32(cms.Rows[i].Base)
		if v := merged[i][idx]; v < min {
			min = v
		}
	}
	return uint64(min), report, nil
}

// VerifyAlignment checks that a daemon computes the same register indices
// as the mirror by comparing the two deployments' placements for a named
// task (a cheap structural probe; a full check would replay a known key).
func (f *RemoteFleet) VerifyAlignment(name string) error {
	f.mu.Lock()
	id, ok := f.taskIDs[name]
	f.mu.Unlock()
	if !ok {
		return fmt.Errorf("netwide: no task %q", name)
	}
	mrows, err := f.mirror.ReadRegisters(id)
	if err != nil {
		return err
	}
	for i, c := range f.clients {
		rrows, err := c.ReadRegisters(id)
		if err != nil {
			return err
		}
		if len(rrows) != len(mrows) {
			return fmt.Errorf("netwide: daemon %d has %d rows, mirror %d", i, len(rrows), len(mrows))
		}
		for r := range rrows {
			if len(rrows[r]) != len(mrows[r]) {
				return fmt.Errorf("netwide: daemon %d row %d has %d buckets, mirror %d",
					i, r, len(rrows[r]), len(mrows[r]))
			}
		}
	}
	return nil
}

// CollectTrace gathers the fleet's distributed spans: every reachable
// daemon's trace_dump plus the controller's own buffer, assembled into
// per-trace trees (newest root first). Collection is best-effort — an
// unreachable or untraced daemon just contributes nothing (its error is
// reported per switch), so the controller half of a trace always renders.
// Ejected switches are skipped without an RPC, and the dump itself is not
// a health probe: debugging a sick fleet must not perturb its health.
func (f *RemoteFleet) CollectTrace(perSwitchLimit int) ([]*tracing.Tree, map[int]error) {
	spans := make([][]tracing.Span, len(f.clients))
	errs := make(map[int]error)
	var emu sync.Mutex
	var wg sync.WaitGroup
	for i, c := range f.clients {
		if reason, ok := f.health.ejected(i); ok {
			errs[i] = fmt.Errorf("netwide: switch %d ejected (%s)", i, reason)
			continue
		}
		wg.Add(1)
		go func(i int, c *rpc.Client) {
			defer wg.Done()
			dump, err := c.TraceDump(perSwitchLimit)
			if err != nil {
				emu.Lock()
				errs[i] = err
				emu.Unlock()
				return
			}
			spans[i] = dump.Spans
		}(i, c)
	}
	wg.Wait()
	local, _, _ := f.opts.Tracer.Dump()
	all := local
	for _, s := range spans {
		all = append(all, s...)
	}
	return tracing.Assemble(all), errs
}

// sortedKeys returns the map's switch indices in ascending order, so
// error selection and reports are deterministic.
func sortedKeys(m map[int]error) []int {
	out := make([]int, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}
