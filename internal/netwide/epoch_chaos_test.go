package netwide

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"flymon/internal/controlplane"
	"flymon/internal/packet"
	"flymon/internal/rpc"
	"flymon/internal/telemetry"
	"flymon/internal/trace"
)

// TestChaosEpochStragglerMatrix drives the straggler drill from the
// issue across seeds: a partitioned switch misses a fleet rotation, the
// partition heals, and the now reachable-but-behind switch must be
// classified as a straggler (not a failure) by every policy — wait
// blocks bounded and fails coherently, skip/partial answer k-of-n with
// the straggler named in the QueryReport and the merged estimate a valid
// lower bound, and a mid-wait catch-up turns a blocked wait query into a
// full-fleet answer. No goroutine leaks under any seed.
func TestChaosEpochStragglerMatrix(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			check := gateFleetGoroutines(t)
			t.Cleanup(check)
			cfg := fleetConfig()
			// Switches 0 and 1: plain daemons. Switch 2: behind the gate.
			var (
				ctrls []*controlplane.Controller
				addrs []string
			)
			for i := 0; i < 2; i++ {
				ctrl := controlplane.NewController(cfg)
				srv := rpc.NewServer(ctrl, nil)
				addr, err := srv.Listen("127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { srv.Close() })
				ctrls = append(ctrls, ctrl)
				addrs = append(addrs, addr)
			}
			ctrl2, gate, addr2, _ := gatedDaemon(t, cfg, seed)
			ctrls = append(ctrls, ctrl2)
			addrs = append(addrs, addr2)

			var clients []*rpc.Client
			for i, addr := range addrs {
				c, err := rpc.DialOptions(addr, rpc.Options{
					DialTimeout:      500 * time.Millisecond,
					CallTimeout:      500 * time.Millisecond,
					MaxRetries:       -1,
					BreakerThreshold: 1000,
					Seed:             seed*100 + int64(i),
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { c.Close() })
				clients = append(clients, c)
			}
			tele := &telemetry.FleetStats{}
			fleet := NewRemoteFleetOptions(clients, cfg, FleetOptions{
				AllowPartial: true,
				Telemetry:    tele,
			})
			t.Cleanup(fleet.Stop)

			if err := fleet.DeployEpoch(cmsSpec("ep")); err != nil {
				t.Fatal(err)
			}
			tr1 := trace.Generate(trace.Config{Flows: 200, Packets: 6_000, ZipfS: 1.1, Seed: seed})
			for i := range tr1.Packets {
				ctrls[i%3].Process(&tr1.Packets[i])
			}
			if ep, err := fleet.RotateEpoch("ep"); err != nil || ep != 1 {
				t.Fatalf("healthy rotation: epoch %d err %v", ep, err)
			}
			key := packet.KeyFiveTuple.Extract(&tr1.Packets[0])
			if _, report, err := fleet.EstimateKeyEpoch("ep", 1, key, EpochQuery{}); err != nil || report.Partial() {
				t.Fatalf("healthy epoch query: report %+v err %v", report, err)
			}

			// Partition switch 2, then rotate: the decree reaches only 2/3
			// switches (AllowPartial lets the fleet move on), so switch 2 is
			// now one epoch behind.
			gate.Partition()
			// The daemon's connection handler parked in a Read() from before
			// the flip still delivers the FIRST post-partition request (the
			// gate is checked at Read entry). Flush it with a benign read-only
			// probe — its response is blackholed, the client tears the
			// connection down, and every later request meets a fully gated
			// connection, so the rotation decree below is guaranteed lost.
			if _, err := clients[2].ReadEpoch("ep", 1); err == nil {
				t.Fatal("probe through a partitioned gate must fail")
			}
			tr2 := trace.Generate(trace.Config{Flows: 200, Packets: 6_000, ZipfS: 1.1, Seed: seed + 50})
			for i := range tr2.Packets {
				ctrls[i%3].Process(&tr2.Packets[i])
			}
			if ep, err := fleet.RotateEpoch("ep"); err != nil || ep != 2 {
				t.Fatalf("partitioned rotation: epoch %d err %v", ep, err)
			}

			// While partitioned the switch is UNREACHABLE: a query reports it
			// failed, not straggling.
			_, report, err := fleet.QueryEpochRows("ep", 2, EpochQuery{Policy: StragglerSkip})
			if err != nil {
				t.Fatalf("k-of-n query during partition: %v", err)
			}
			if _, ok := report.Failed[2]; !ok || len(report.Stragglers) != 0 {
				t.Fatalf("partitioned report = %v", report)
			}

			// Heal: now it is reachable but BEHIND — a straggler.
			gate.Heal()

			// skip: immediate k-of-n answer naming the straggler and its epoch.
			pk, report, err := fleet.EstimateKeyEpoch("ep", 2, key, EpochQuery{Policy: StragglerSkip})
			if err != nil {
				t.Fatalf("skip-policy estimate: %v", err)
			}
			if got := report.Stragglers[2]; got != 1 || len(report.Failed) != 0 {
				t.Fatalf("skip report = %v (straggler epoch %d, want 1)", report, got)
			}
			if len(report.Contributed) != 2 || !report.Partial() {
				t.Fatalf("skip contributed = %v", report.Contributed)
			}

			// wait: blocks at most ~Wait, then fails coherently — a wait-policy
			// caller asked for all-or-nothing.
			start := time.Now()
			_, report, err = fleet.QueryEpochRows("ep", 2, EpochQuery{Wait: 300 * time.Millisecond})
			elapsed := time.Since(start)
			var pf *PartialFailureError
			if !errors.As(err, &pf) {
				t.Fatalf("wait on straggler = %v (%T), want PartialFailureError", err, err)
			}
			if got := pf.Stragglers(); len(got) != 1 || got[0] != 2 {
				t.Fatalf("wait failure names %v, want [2]", got)
			}
			if report.Stragglers[2] != 1 {
				t.Fatalf("wait report = %v", report)
			}
			if elapsed < 250*time.Millisecond || elapsed > 3*time.Second {
				t.Fatalf("wait blocked %v, want bounded near 300ms", elapsed)
			}

			// partial: same bounded poll, but answers k-of-n instead of failing.
			rowsPartial, report, err := fleet.QueryEpochRows("ep", 2, EpochQuery{Policy: StragglerPartial, Wait: 200 * time.Millisecond})
			if err != nil {
				t.Fatalf("partial-policy query: %v", err)
			}
			if report.Stragglers[2] != 1 || len(report.Contributed) != 2 {
				t.Fatalf("partial report = %v", report)
			}

			// Mid-wait catch-up: a wait query blocks, the straggler is rotated
			// to the target, and the same query completes with the full fleet.
			type res struct {
				est    uint64
				report QueryReport
				err    error
			}
			done := make(chan res, 1)
			go func() {
				est, report, err := fleet.EstimateKeyEpoch("ep", 2, key, EpochQuery{Wait: 8 * time.Second})
				done <- res{est, report, err}
			}()
			time.Sleep(100 * time.Millisecond)
			if _, err := clients[2].EpochRotate("ep", 2); err != nil {
				t.Fatalf("manual straggler catch-up: %v", err)
			}
			r := <-done
			if r.err != nil {
				t.Fatalf("wait query after catch-up: %v", r.err)
			}
			if len(r.report.Contributed) != 3 || r.report.Partial() {
				t.Fatalf("caught-up report = %v", r.report)
			}
			// k-of-n bound: the earlier 2-of-3 estimate cannot exceed the full
			// 3-of-3 merge (additive registers, non-negative contributions).
			if pk > r.est {
				t.Fatalf("partial estimate %d exceeds full estimate %d", pk, r.est)
			}
			for ri := range rowsPartial {
				_ = ri // rowsPartial retained: the merge produced usable rows
			}

			// The fleet keeps rotating and the recovered switch stays in step.
			if ep, err := fleet.RotateEpoch("ep"); err != nil || ep != 3 {
				t.Fatalf("post-heal rotation: epoch %d err %v", ep, err)
			}
			if _, report, err := fleet.QueryEpochRows("ep", 3, EpochQuery{}); err != nil || report.Partial() {
				t.Fatalf("post-heal full query: report %v err %v", report, err)
			}

			// Straggler outcomes landed in telemetry.
			mt := tele.MergeTree.Snapshot()
			if mt.StragglersSkipped == 0 || mt.StragglersTimedOut == 0 || mt.StragglerWaits == 0 {
				t.Fatalf("straggler telemetry = %+v", mt)
			}
		})
	}
}
