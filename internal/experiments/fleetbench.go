package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"flymon/internal/controlplane"
	"flymon/internal/netwide"
	"flymon/internal/packet"
	"flymon/internal/rpc"
	"flymon/internal/telemetry"
	"flymon/internal/trace"
)

// FleetBench measures the network-wide query plane at fleet scale: N
// in-process daemons (real rpc.Server instances on loopback, not stubs)
// holding one frequency task each, queried with the flat sequential fold
// and the parallel merge tree over identical register state. It verifies
// bit-identical results across both engines on every mergeable op before
// timing anything, then emits Go-benchmark-format lines so cmd/benchcmp
// can compare medians (`-pair 'engine=flat:engine=tree'`).

// FleetBenchOptions parameterizes one scaling sweep.
type FleetBenchOptions struct {
	// Sizes are the fleet sizes to sweep (default 4, 32, 128, 256).
	Sizes []int
	// Count is the number of timed samples per engine per size — one
	// bench line each, for median-of-Count comparison (default 5).
	Count int
	// Seed drives the workload.
	Seed int64
	// Out receives the benchmark lines as they are produced (nil = only
	// the returned table).
	Out io.Writer
}

// benchFleet is one booted loopback fleet.
type benchFleet struct {
	fleet   *netwide.RemoteFleet
	ctrls   []*controlplane.Controller
	servers []*rpc.Server
	clients []*rpc.Client
	tele    *telemetry.FleetStats
}

func (b *benchFleet) close() {
	b.fleet.Stop()
	for _, c := range b.clients {
		c.Close()
	}
	for _, s := range b.servers {
		s.Close()
	}
}

// bootBenchFleet starts n daemons on loopback and deploys one frequency
// task fed with a spread workload. The geometry is kept modest so a
// 256-daemon fleet fits comfortably in memory while rows stay large
// enough that codec and merge cost dominate, as they do at real scale.
func bootBenchFleet(n int, seed int64) (*benchFleet, error) {
	cfg := controlplane.Config{Groups: 1, Buckets: 65536, BitWidth: 32}
	b := &benchFleet{tele: &telemetry.FleetStats{}}
	fail := func(err error) (*benchFleet, error) {
		b.close()
		return nil, err
	}
	for i := 0; i < n; i++ {
		ctrl := controlplane.NewController(cfg)
		srv := rpc.NewServer(ctrl, nil)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		b.ctrls = append(b.ctrls, ctrl)
		b.servers = append(b.servers, srv)
		c, err := rpc.DialOptions(addr, rpc.Options{
			DialTimeout: 5 * time.Second,
			CallTimeout: 30 * time.Second,
			MaxRetries:  -1,
		})
		if err != nil {
			return fail(err)
		}
		b.clients = append(b.clients, c)
	}
	b.fleet = netwide.NewRemoteFleetOptions(b.clients, cfg, netwide.FleetOptions{
		Telemetry: b.tele,
	})
	spec := controlplane.TaskSpec{
		Name: "freq", Key: packet.KeyFiveTuple,
		Attribute: controlplane.AttrFrequency, MemBuckets: 16384, D: 3,
	}
	if err := b.fleet.Deploy(spec); err != nil {
		return fail(err)
	}
	// Every daemon sees a distinct slice of one workload — disjoint
	// sub-streams, the paper's network-wide measurement model.
	tr := trace.Generate(trace.Config{Flows: 2_000, Packets: 40_000, ZipfS: 1.1, Seed: seed})
	for i := range tr.Packets {
		b.ctrls[i%n].Process(&tr.Packets[i])
	}
	return b, nil
}

// verifyEngines asserts flat and tree produce bit-identical rows for
// every op in the merge algebra over the live fleet.
func (b *benchFleet) verifyEngines() error {
	for _, op := range []netwide.MergeOp{netwide.MergeAdd, netwide.MergeMax, netwide.MergeOr, netwide.MergeXor} {
		flat, report, err := b.fleet.MergedRows("freq", op, netwide.EngineFlat)
		if err != nil {
			return fmt.Errorf("flat %s: %w", op, err)
		}
		if report.Partial() {
			return fmt.Errorf("flat %s: partial report %s", op, report)
		}
		tree, report, err := b.fleet.MergedRows("freq", op, netwide.EngineTree)
		if err != nil {
			return fmt.Errorf("tree %s: %w", op, err)
		}
		if report.Partial() {
			return fmt.Errorf("tree %s: partial report %s", op, report)
		}
		if len(flat) != len(tree) {
			return fmt.Errorf("%s: row counts differ (%d vs %d)", op, len(flat), len(tree))
		}
		for r := range flat {
			for j := range flat[r] {
				if flat[r][j] != tree[r][j] {
					return fmt.Errorf("%s: engines diverge at row %d bucket %d (flat %d, tree %d)",
						op, r, j, flat[r][j], tree[r][j])
				}
			}
		}
	}
	return nil
}

// timeQuery runs one fleet-wide MergeAdd query under the engine and
// returns its wall time.
func (b *benchFleet) timeQuery(engine netwide.Engine) (time.Duration, error) {
	start := time.Now()
	_, report, err := b.fleet.MergedRows("freq", netwide.MergeAdd, engine)
	if err != nil {
		return 0, err
	}
	if report.Partial() {
		return 0, fmt.Errorf("partial report %s", report)
	}
	return time.Since(start), nil
}

func medianDuration(v []time.Duration) time.Duration {
	s := append([]time.Duration(nil), v...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// FleetBench runs the scaling sweep and returns the summary table.
func FleetBench(opt FleetBenchOptions) (*Table, error) {
	sizes := opt.Sizes
	if len(sizes) == 0 {
		sizes = []int{4, 32, 128, 256}
	}
	count := opt.Count
	if count <= 0 {
		count = 5
	}
	out := opt.Out
	if out == nil {
		out = io.Discard
	}
	tbl := &Table{
		Title:  "Fleet query scaling: flat fold vs parallel merge tree (MergeAdd, median of samples)",
		Header: []string{"switches", "flat ms", "tree ms", "speedup", "tree depth"},
		Notes: []string{
			"engines verified bit-identical on add/max/or/xor before timing",
			fmt.Sprintf("%d samples per engine per size; compare medians with benchcmp -pair 'engine=flat:engine=tree'", count),
		},
	}
	for _, n := range sizes {
		b, err := bootBenchFleet(n, opt.Seed)
		if err != nil {
			return nil, fmt.Errorf("fleet of %d: %w", n, err)
		}
		if err := b.verifyEngines(); err != nil {
			b.close()
			return nil, fmt.Errorf("fleet of %d: %w", n, err)
		}
		samples := map[netwide.Engine][]time.Duration{}
		for _, engine := range []netwide.Engine{netwide.EngineFlat, netwide.EngineTree} {
			if _, err := b.timeQuery(engine); err != nil { // warm-up: fills pools, JITs paths
				b.close()
				return nil, fmt.Errorf("fleet of %d, engine %s: %w", n, engine, err)
			}
			for s := 0; s < count; s++ {
				el, err := b.timeQuery(engine)
				if err != nil {
					b.close()
					return nil, fmt.Errorf("fleet of %d, engine %s: %w", n, engine, err)
				}
				samples[engine] = append(samples[engine], el)
				fmt.Fprintf(out, "BenchmarkFleetQuery/engine=%s/switches=%d \t       1\t%12d ns/op\n",
					engine, n, el.Nanoseconds())
			}
		}
		depth := b.tele.MergeTree.LastDepth.Load()
		b.close()
		flat := medianDuration(samples[netwide.EngineFlat])
		tree := medianDuration(samples[netwide.EngineTree])
		speedup := float64(flat) / float64(tree)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", float64(flat)/1e6),
			fmt.Sprintf("%.2f", float64(tree)/1e6),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%d", depth),
		})
	}
	return tbl, nil
}
