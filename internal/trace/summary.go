package trace

import (
	"fmt"
	"io"
	"sort"
	"time"

	"flymon/internal/packet"
)

// Summary aggregates the headline statistics of a trace — the quick look
// an operator takes before sizing measurement tasks against it.
type Summary struct {
	Packets       int
	Bytes         uint64
	DurationNs    uint64
	Flows         int // distinct 5-tuples
	SrcIPs        int
	DstIPs        int
	TopFlowPkts   uint64 // heaviest flow's packet count
	Top10SharePct float64
	// HeavyFlows[t] = flows with ≥ t packets, for the standard thresholds.
	HeavyFlows map[uint64]int
}

// heavyThresholds are the per-flow packet counts Summarize tallies.
var heavyThresholds = []uint64{64, 256, 1024, 4096}

// Summarizer accumulates a Summary incrementally, so streaming ingestion
// paths (Reader.ReadBatch, the mmap decoder) can summarize a trace batch by
// batch without materializing it in memory.
type Summarizer struct {
	packets int
	bytes   uint64
	flows   map[packet.CanonicalKey]uint64
	srcs    map[uint32]bool
	dsts    map[uint32]bool
	minTS   uint64
	maxTS   uint64
}

// NewSummarizer returns an empty accumulator.
func NewSummarizer() *Summarizer {
	return &Summarizer{
		flows: make(map[packet.CanonicalKey]uint64),
		srcs:  make(map[uint32]bool),
		dsts:  make(map[uint32]bool),
		minTS: ^uint64(0),
	}
}

// Add folds a batch of packets into the accumulator.
func (a *Summarizer) Add(ps []packet.Packet) {
	for i := range ps {
		p := &ps[i]
		a.packets++
		a.bytes += uint64(p.Size)
		a.flows[packet.KeyFiveTuple.Extract(p)]++
		a.srcs[p.SrcIP] = true
		a.dsts[p.DstIP] = true
		if p.TimestampNs < a.minTS {
			a.minTS = p.TimestampNs
		}
		if p.TimestampNs > a.maxTS {
			a.maxTS = p.TimestampNs
		}
	}
}

// Summary finalizes and returns the accumulated statistics. The accumulator
// stays usable: more batches may be added and Summary called again.
func (a *Summarizer) Summary() Summary {
	s := Summary{Packets: a.packets, HeavyFlows: make(map[uint64]int)}
	if a.packets == 0 {
		return s
	}
	s.Bytes = a.bytes
	s.DurationNs = a.maxTS - a.minTS
	s.Flows = len(a.flows)
	s.SrcIPs = len(a.srcs)
	s.DstIPs = len(a.dsts)

	counts := make([]uint64, 0, len(a.flows))
	for _, c := range a.flows {
		counts = append(counts, c)
		for _, th := range heavyThresholds {
			if c >= th {
				s.HeavyFlows[th]++
			}
		}
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	s.TopFlowPkts = counts[0]
	var top10 uint64
	for i := 0; i < 10 && i < len(counts); i++ {
		top10 += counts[i]
	}
	s.Top10SharePct = 100 * float64(top10) / float64(s.Packets)
	return s
}

// Summarize scans the trace once and aggregates its Summary.
func Summarize(t *Trace) Summary {
	a := NewSummarizer()
	a.Add(t.Packets)
	return a.Summary()
}

// Render writes the summary in human-readable form.
func (s Summary) Render(w io.Writer) {
	fmt.Fprintf(w, "packets:        %d\n", s.Packets)
	fmt.Fprintf(w, "bytes:          %d\n", s.Bytes)
	fmt.Fprintf(w, "duration:       %v\n", time.Duration(s.DurationNs))
	fmt.Fprintf(w, "flows (5-tuple): %d\n", s.Flows)
	fmt.Fprintf(w, "src IPs:        %d\n", s.SrcIPs)
	fmt.Fprintf(w, "dst IPs:        %d\n", s.DstIPs)
	fmt.Fprintf(w, "top flow:       %d packets\n", s.TopFlowPkts)
	fmt.Fprintf(w, "top-10 share:   %.1f%%\n", s.Top10SharePct)
	for _, th := range heavyThresholds {
		fmt.Fprintf(w, "flows ≥ %-5d   %d\n", th, s.HeavyFlows[th])
	}
}
