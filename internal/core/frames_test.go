package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"flymon/internal/dataplane"
	"flymon/internal/mmtrace"
	"flymon/internal/packet"
	"flymon/internal/trace"
)

// writeFrameTrace serializes ps into a FLYMTRC file and mmaps it back, so
// the frame engine runs over exactly the records the packet path sees.
func writeFrameTrace(t *testing.T, ps []packet.Packet) *mmtrace.Trace {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if err := w.WritePacket(&ps[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "frames.fmt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	mt, err := mmtrace.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mt.Close() })
	return mt
}

// buildFramesPipeline assembles a pipeline that exercises every feature the
// frame engine vectorizes: match-all CMS rows, filtered multi-rule CMUs
// (first-match selection), metadata and bus parameters, Max/AndOr/Xor ops,
// BitSelect/Coupon/IntervalSub/ZeroGate preparations, DetectNew, a
// cross-group ChainMin chain, and XOR key selectors.
func buildFramesPipeline(t *testing.T) *Pipeline {
	t.Helper()
	g0 := NewGroup(GroupConfig{ID: 0, Buckets: 4096, BitWidth: 32})
	buildCMS(t, g0, 1, 3, 4096)

	g1 := NewGroup(GroupConfig{ID: 1, Buckets: 4096, BitWidth: 32})
	for u, k := range []packet.KeySpec{packet.KeyFiveTuple, packet.KeySrcIP, packet.KeyDstIP} {
		if err := g1.ConfigureUnit(u, k); err != nil {
			t.Fatal(err)
		}
	}
	// CMU 0: two filtered rules, disjoint traffic — first-match selection.
	if err := g1.CMU(0).InstallRule(&Rule{
		TaskID: 10, Filter: packet.Filter{Proto: 6},
		Key: FullKey(0), P1: PacketSize(), P2: MaxValue(),
		Mem: MemRange{Base: 0, Buckets: 2048}, Op: dataplane.OpCondAdd,
	}); err != nil {
		t.Fatal(err)
	}
	if err := g1.CMU(0).InstallRule(&Rule{
		TaskID: 11, Filter: packet.Filter{Proto: 17},
		Key: XorKey(1, 2), P1: Const(1), P2: MaxValue(),
		Mem: MemRange{Base: 2048, Buckets: 2048}, Op: dataplane.OpCondAdd,
	}); err != nil {
		t.Fatal(err)
	}
	// CMU 1: queue-depth maximum over metadata.
	if err := g1.CMU(1).InstallRule(&Rule{
		TaskID: 12, Filter: packet.MatchAll,
		Key: FullKey(1).SubRange(3, 32), P1: QueueLength(), P2: Const(0),
		Mem: MemRange{Base: 0, Buckets: 4096}, Op: dataplane.OpMax,
	}); err != nil {
		t.Fatal(err)
	}
	// CMU 2: bit-packed Bloom filter classifying new flows for g2's chain.
	if err := g1.CMU(2).InstallRule(&Rule{
		TaskID: 13, Filter: packet.MatchAll,
		Key: FullKey(0).SubRange(5, 32), P1: CompressedKey(FullKey(0).SubRange(17, 5)),
		P2: Const(1), Prep: Transform{Kind: TransformBitSelect, Width: 32},
		Mem: MemRange{Base: 0, Buckets: 4096}, Op: dataplane.OpAndOr,
		DetectNew: true,
	}); err != nil {
		t.Fatal(err)
	}

	g2 := NewGroup(GroupConfig{ID: 2, Buckets: 4096, BitWidth: 32})
	for u, k := range []packet.KeySpec{packet.KeyFiveTuple, packet.KeySrcIP} {
		if err := g2.ConfigureUnit(u, k); err != nil {
			t.Fatal(err)
		}
	}
	// CMU 0: ChainMin CMS row — lowers the running minimum.
	if err := g2.CMU(0).InstallRule(&Rule{
		TaskID: 20, Filter: packet.MatchAll,
		Key: FullKey(0).SubRange(7, 32), P1: Const(1), P2: MaxValue(),
		Mem: MemRange{Base: 0, Buckets: 4096}, Op: dataplane.OpCondAdd,
		ChainMin: true,
	}); err != nil {
		t.Fatal(err)
	}
	// CMU 1: max inter-arrival — IntervalSub consumes the bus (PrevOld,
	// PrevNewFlow) and can drop the update.
	if err := g2.CMU(1).InstallRule(&Rule{
		TaskID: 21, Filter: packet.MatchAll,
		Key: FullKey(1), P1: TimestampUs(), P2: Const(0),
		Prep: Transform{Kind: TransformIntervalSub},
		Mem:  MemRange{Base: 0, Buckets: 4096}, Op: dataplane.OpMax,
	}); err != nil {
		t.Fatal(err)
	}
	// CMU 2: Coupon draw (pure hash-bit draw, no rng) XORed under a
	// PrevResult parameter feed.
	if err := g2.CMU(2).InstallRule(&Rule{
		TaskID: 22, Filter: packet.MatchAll,
		Key: FullKey(0).SubRange(11, 32), P1: CompressedKey(FullKey(1).SubRange(2, 32)),
		P2: PrevResult(), Prep: Transform{Kind: TransformCoupon, Coupons: 8, ProbLog2: 2},
		Mem: MemRange{Base: 0, Buckets: 2048}, Op: dataplane.OpAndOr,
	}); err != nil {
		t.Fatal(err)
	}

	g3 := NewGroup(GroupConfig{ID: 3, Buckets: 4096, BitWidth: 32})
	if err := g3.ConfigureUnit(0, packet.KeyFiveTuple); err != nil {
		t.Fatal(err)
	}
	// ZeroGate carry judgement over the bus, XOR op.
	if err := g3.CMU(0).InstallRule(&Rule{
		TaskID: 30, Filter: packet.MatchAll,
		Key: FullKey(0).SubRange(13, 32), P1: PrevOld(), P2: Const(0),
		Prep: Transform{Kind: TransformZeroGate, IfZero: 7, Else: 3},
		Mem:  MemRange{Base: 0, Buckets: 4096}, Op: dataplane.OpXor,
	}); err != nil {
		t.Fatal(err)
	}

	return NewPipelineWith(g0, g1, g2, g3)
}

// compareAllRegisters fails on the first bucket where the two pipelines'
// register state differs.
func compareAllRegisters(t *testing.T, want, got *Pipeline) {
	t.Helper()
	for gi := 0; gi < want.Groups(); gi++ {
		for ci := 0; ci < want.Group(gi).CMUs(); ci++ {
			rw := want.Group(gi).CMU(ci).Register()
			rg := got.Group(gi).CMU(ci).Register()
			for b := uint32(0); b < uint32(rw.Size()); b++ {
				if rw.Read(b) != rg.Read(b) {
					t.Fatalf("group %d CMU %d bucket %d: frame engine %d, packet path %d",
						gi, ci, b, rg.Read(b), rw.Read(b))
				}
			}
		}
	}
}

// TestProcessFramesMatchesProcessBatch is the frame engine's core
// differential guarantee: over the full feature matrix, ProcessFrames on
// raw records is bit-identical to decoding and processing the same packets
// sequentially — including when the span boundaries fall at awkward
// offsets relative to the engine's internal chunking.
func TestProcessFramesMatchesProcessBatch(t *testing.T) {
	tr := trace.Generate(trace.Config{Flows: 400, Packets: 20_000, Seed: 11})
	mt := writeFrameTrace(t, tr.Packets)

	want := buildFramesPipeline(t)
	want.Compile().ProcessBatch(tr.Packets)

	got := buildFramesPipeline(t)
	s := got.Compile()
	if !s.FrameVectorized() {
		t.Fatal("feature-matrix pipeline must be frame-vectorizable")
	}
	// Uneven spans: smaller than, straddling, and larger than frameChunk.
	pc := NewProcCtx()
	spans := []int{1, 3, 100, frameChunk - 1, frameChunk, frameChunk + 1, 1000, 1 << 30}
	lo := 0
	for _, n := range spans {
		hi := lo + n
		if hi > mt.Frames() {
			hi = mt.Frames()
		}
		s.ProcessFrames(pc, mt, lo, hi)
		lo = hi
	}
	if lo != mt.Frames() {
		t.Fatalf("span schedule covered %d of %d frames", lo, mt.Frames())
	}

	compareAllRegisters(t, want, got)
	if want.Packets() != got.Packets() {
		t.Fatalf("packet counters differ: %d vs %d", want.Packets(), got.Packets())
	}
}

// TestProcessFramesShardedMatchesSequential: the frame engine through a
// lane-owning context, drained, must equal the sequential packet path. Uses
// the mergeable CMS pipeline (bus consumers would pin rules to CAS).
func TestProcessFramesShardedMatchesSequential(t *testing.T) {
	tr := trace.Generate(trace.Config{Flows: 300, Packets: 12_000, Seed: 12})
	mt := writeFrameTrace(t, tr.Packets)

	build := func() *Pipeline {
		g := NewGroup(GroupConfig{ID: 0, Buckets: 4096, BitWidth: 32})
		buildCMS(t, g, 1, 3, 4096)
		return NewPipelineWith(g)
	}

	want := build()
	want.Compile().ProcessBatch(tr.Packets)

	const shards = 2
	got := build()
	got.EnableSharding(shards)
	s := got.Compile()
	half := mt.Frames() / 2
	for w := 0; w < shards; w++ {
		pc := NewProcCtxUnique()
		pc.Ctx.Shard = int32(w)
		lo, hi := 0, half
		if w == 1 {
			lo, hi = half, mt.Frames()
		}
		s.ProcessFrames(pc, mt, lo, hi)
	}
	got.DrainShards()
	compareAllRegisters(t, want, got)
}

// TestProcessFramesFallbacks: snapshots the vectorizer rejects —
// probabilistic rules (rng coin order) and live spliced groups
// (recirculation) — must take the per-frame decode path and still match the
// packet path bit for bit, rng stream included.
func TestProcessFramesFallbacks(t *testing.T) {
	tr := trace.Generate(trace.Config{Flows: 200, Packets: 8_000, Seed: 13})
	mt := writeFrameTrace(t, tr.Packets)

	t.Run("probabilistic", func(t *testing.T) {
		build := func() *Pipeline {
			g := NewGroup(GroupConfig{ID: 0, Buckets: 2048, BitWidth: 32})
			if err := g.ConfigureUnit(0, packet.KeyFiveTuple); err != nil {
				t.Fatal(err)
			}
			if err := g.CMU(0).InstallRule(&Rule{
				TaskID: 1, Filter: packet.MatchAll,
				Key: FullKey(0), P1: Const(1), P2: MaxValue(),
				Mem: MemRange{Base: 0, Buckets: 2048}, Op: dataplane.OpCondAdd,
				Prob: 0.5,
			}); err != nil {
				t.Fatal(err)
			}
			return NewPipelineWith(g)
		}
		want := build()
		want.Compile().ProcessBatch(tr.Packets)

		got := build()
		s := got.Compile()
		if s.FrameVectorized() {
			t.Fatal("probabilistic rule must disable vectorization")
		}
		s.ProcessFrames(NewProcCtx(), mt, 0, mt.Frames())
		compareAllRegisters(t, want, got)
	})

	t.Run("spliced", func(t *testing.T) {
		build := func() *Pipeline {
			pl := NewPipeline(0)
			g := NewGroup(GroupConfig{ID: 0, Buckets: 2048, BitWidth: 32})
			buildCMS(t, g, 1, 1, 2048)
			pl.groups = append(pl.groups, g)
			sp := NewGroup(GroupConfig{ID: 100, Buckets: 2048, BitWidth: 32})
			buildCMS(t, sp, 2, 1, 2048)
			if err := pl.AddSpliced(sp); err != nil {
				t.Fatal(err)
			}
			return pl
		}
		want := build()
		want.Compile().ProcessBatch(tr.Packets)

		got := build()
		s := got.Compile()
		if s.FrameVectorized() {
			t.Fatal("live spliced group must disable vectorization")
		}
		s.ProcessFrames(NewProcCtx(), mt, 0, mt.Frames())
		compareAllRegisters(t, want, got)
		if want.Recirculated() != got.Recirculated() {
			t.Fatalf("recirculation counters differ: %d vs %d", want.Recirculated(), got.Recirculated())
		}
	})
}

// TestProcessFramesZeroAlloc: after the first span of a configuration, the
// frame engine allocates nothing (matched by `make bench-allocs`).
func TestProcessFramesZeroAlloc(t *testing.T) {
	tr := trace.Generate(trace.Config{Flows: 100, Packets: 4_096, Seed: 14})
	mt := writeFrameTrace(t, tr.Packets)
	s := buildFramesPipeline(t).Compile()
	pc := NewProcCtx()
	s.ProcessFrames(pc, mt, 0, mt.Frames()) // warm scratch
	if n := testing.AllocsPerRun(20, func() {
		s.ProcessFrames(pc, mt, 0, mt.Frames())
	}); n != 0 {
		t.Fatalf("ProcessFrames allocates %.1f times per span, want 0", n)
	}
}

// TestProcessFramesQuietAddPath pins the frequency-sketch fast path: in a
// bus-quiet snapshot the engine routes constant saturating adds through the
// witness-free fetch-and-add (full-width registers) or falls back to the
// generic batch loop (narrow registers, where saturation and clamp
// accounting are live). Both must stay bit-identical to the sequential
// packet path, clamp counters included.
func TestProcessFramesQuietAddPath(t *testing.T) {
	tr := trace.Generate(trace.Config{Flows: 300, Packets: 12_000, Seed: 19})
	mt := writeFrameTrace(t, tr.Packets)

	for _, tc := range []struct {
		name    string
		width   int
		buckets int
	}{
		{"full-width", 32, 4096}, // ApplyAddBatch: one XADD per update
		{"narrow", 8, 256},       // generic fallback: clamps and saturation live
	} {
		t.Run(tc.name, func(t *testing.T) {
			build := func() *Pipeline {
				g := NewGroup(GroupConfig{ID: 0, Buckets: tc.buckets, BitWidth: tc.width})
				buildCMS(t, g, 1, 3, tc.buckets)
				return NewPipelineWith(g)
			}
			want := build()
			want.Compile().ProcessBatch(tr.Packets)

			got := build()
			s := got.Compile()
			if !s.busQuiet {
				t.Fatal("CMS pipeline must compile bus-quiet")
			}
			if !s.groups[0].cmus[0].prog[0].fastAdd {
				t.Fatal("CMS row must compile as fastAdd")
			}
			if full := s.groups[0].cmus[0].prog[0].fastAddFull; full != (tc.width == 32) {
				t.Fatalf("fastAddFull = %v for %d-bit register", full, tc.width)
			}
			s.ProcessFrames(NewProcCtx(), mt, 0, mt.Frames())

			compareAllRegisters(t, want, got)
			rw := want.Group(0).CMU(0).Register()
			rg := got.Group(0).CMU(0).Register()
			if rg.Clamps() != rw.Clamps() {
				t.Fatalf("clamp counters differ: frame engine %d, packet path %d",
					rg.Clamps(), rw.Clamps())
			}
		})
	}

	// Narrow sharded lanes: ShardApplyAddBatch must reproduce ShardApply's
	// saturation and clamp accounting through the drain.
	t.Run("narrow-sharded", func(t *testing.T) {
		build := func() *Pipeline {
			g := NewGroup(GroupConfig{ID: 0, Buckets: 256, BitWidth: 8})
			buildCMS(t, g, 1, 3, 256)
			return NewPipelineWith(g)
		}
		want := build()
		want.Compile().ProcessBatch(tr.Packets)

		got := build()
		got.EnableSharding(2)
		s := got.Compile()
		half := mt.Frames() / 2
		for w := 0; w < 2; w++ {
			pc := NewProcCtxUnique()
			pc.Ctx.Shard = int32(w)
			lo, hi := 0, half
			if w == 1 {
				lo, hi = half, mt.Frames()
			}
			s.ProcessFrames(pc, mt, lo, hi)
		}
		got.DrainShards()
		compareAllRegisters(t, want, got)
	})
}
