package netwide

import (
	"strings"
	"testing"

	"flymon/internal/controlplane"
	"flymon/internal/packet"
	"flymon/internal/rpc"
	"flymon/internal/sketch"
	"flymon/internal/trace"
)

// startDaemons boots n flymond-equivalent servers and returns their
// controllers (the test's ingress handles) and connected clients.
func startDaemons(t *testing.T, n int, cfg controlplane.Config) ([]*controlplane.Controller, []*rpc.Client) {
	t.Helper()
	ctrls := make([]*controlplane.Controller, n)
	clients := make([]*rpc.Client, n)
	for i := 0; i < n; i++ {
		ctrls[i] = controlplane.NewController(cfg)
		srv := rpc.NewServer(ctrls[i], nil)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		c, err := rpc.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		clients[i] = c
	}
	return ctrls, clients
}

func TestRemoteFleetMergedEstimates(t *testing.T) {
	cfg := fleetConfig()
	ctrls, clients := startDaemons(t, 3, cfg)
	fleet := NewRemoteFleet(clients, cfg)
	if err := fleet.Deploy(cmsSpec("freq")); err != nil {
		t.Fatal(err)
	}
	if err := fleet.VerifyAlignment("freq"); err != nil {
		t.Fatal(err)
	}

	tr := trace.Generate(trace.Config{Flows: 1500, Packets: 45_000, Seed: 66})
	exact := sketch.NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		ctrls[i%3].Process(&tr.Packets[i]) // each packet at one ingress
		exact.AddPacket(&tr.Packets[i])
	}

	checked := 0
	for k, truth := range exact.Counts() {
		got, err := fleet.EstimateKey("freq", k)
		if err != nil {
			t.Fatal(err)
		}
		if got < truth {
			t.Fatalf("remote merged estimate %d underestimates truth %d", got, truth)
		}
		checked++
		if checked >= 40 {
			break
		}
	}
	if err := fleet.Remove("freq"); err != nil {
		t.Fatal(err)
	}
	for i, c := range ctrls {
		if len(c.Tasks()) != 0 {
			t.Fatalf("daemon %d kept tasks after fleet removal", i)
		}
	}
	_ = clients
}

func TestRemoteFleetRefusesDivergedDaemon(t *testing.T) {
	cfg := fleetConfig()
	ctrls, clients := startDaemons(t, 2, cfg)
	// Daemon 1 has an out-of-band task: its next ID diverges from the
	// mirror's, which the fleet must detect instead of mis-indexing.
	if _, err := ctrls[1].AddTask(cmsSpec("rogue")); err != nil {
		t.Fatal(err)
	}
	fleet := NewRemoteFleet(clients, cfg)
	spec := cmsSpec("freq")
	spec.Filter = packet.Filter{DstPort: 53}
	err := fleet.Deploy(spec)
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("deploy onto a diverged daemon must fail, got %v", err)
	}
	// The rollback must leave daemon 0 clean.
	if len(ctrls[0].Tasks()) != 0 {
		t.Fatal("daemon 0 kept tasks after failed fleet deploy")
	}
}

func TestRemoteFleetLifecycleErrors(t *testing.T) {
	cfg := fleetConfig()
	_, clients := startDaemons(t, 1, cfg)
	fleet := NewRemoteFleet(clients, cfg)
	if _, err := fleet.EstimateKey("none", packet.CanonicalKey{}); err == nil {
		t.Fatal("unknown task must fail")
	}
	if err := fleet.Remove("none"); err == nil {
		t.Fatal("removing unknown task must fail")
	}
	if err := fleet.Deploy(cmsSpec("x")); err != nil {
		t.Fatal(err)
	}
	if err := fleet.Deploy(cmsSpec("x")); err == nil {
		t.Fatal("duplicate deploy must fail")
	}
}
