package core

import (
	"testing"

	"flymon/internal/packet"
	"flymon/internal/telemetry"
	"flymon/internal/trace"
)

// The telemetry plane's core contract: attaching a registry must not break
// the zero-allocation gate, and the counts it produces must be exact at
// batch boundaries.

func TestSnapshotProcessZeroAllocTelemetry(t *testing.T) {
	// Same fixture and gate as TestSnapshotProcessZeroAlloc, with telemetry
	// attached. The fixture deliberately has live-counted rules (filtered +
	// probability-gated), so this exercises the ctx-local accumulator path,
	// not just the derived-counter fast case. AllocsPerRun's warm-up call
	// covers teleArm's one-time accumulator growth.
	pl := allocPipeline(t)
	pl.SetTelemetry(telemetry.NewRegistry())
	s := pl.Compile()
	pc := NewProcCtx()
	tr := trace.Generate(trace.Config{Flows: 100, Packets: 256, Seed: 3})
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		s.Process(pc, &tr.Packets[i&255])
		i++
	})
	if allocs != 0 {
		t.Fatalf("Snapshot.Process with telemetry allocates %.1f times per packet, want 0", allocs)
	}
}

func TestTelemetryExactCounts(t *testing.T) {
	reg := telemetry.NewRegistry()
	pl := allocPipeline(t)
	pl.SetTelemetry(reg)
	s := pl.Compile()

	// 10 TCP packets hit the filtered task (proto 6), 5 UDP packets offer
	// themselves to the sampled task (proto 17, prob 0.5). The CMS task is
	// derived: 3 rows × 15 packets.
	var ps []packet.Packet
	for i := 0; i < 10; i++ {
		ps = append(ps, packet.Packet{SrcIP: uint32(i + 1), DstIP: 1, Proto: 6})
	}
	for i := 0; i < 5; i++ {
		ps = append(ps, packet.Packet{SrcIP: uint32(i + 1), DstIP: 2, Proto: 17})
	}
	s.ProcessBatch(ps)

	fold := func() map[int]uint64 {
		dp := reg.FoldDataPlane(s.TelemetryLive())
		byTask := make(map[int]uint64)
		for _, r := range dp.Rules {
			byTask[r.Task] += r.Hits
		}
		return byTask
	}

	byTask := fold()
	if byTask[1] != 3*15 {
		t.Errorf("derived CMS task: %d hits, want %d (3 rows × 15 packets)", byTask[1], 3*15)
	}
	if byTask[2] != 10 {
		t.Errorf("filtered task: %d hits, want 10 (proto-6 packets)", byTask[2])
	}
	if byTask[3] > 5 {
		t.Errorf("sampled task: %d hits, want <= 5 (probability-gated)", byTask[3])
	}

	dp := reg.FoldDataPlane(s.TelemetryLive())
	wantI := byTask[1] + byTask[2] + byTask[3]
	if dp.Stages.Initialization != wantI {
		t.Errorf("stage I = %d, want %d (sum of rule hits)", dp.Stages.Initialization, wantI)
	}
	if dp.Stages.Operation != wantI {
		t.Errorf("stage O = %d, want %d (no prep rules, no drops)", dp.Stages.Operation, wantI)
	}
	if dp.Stages.Compression == 0 {
		t.Error("stage C = 0, want > 0 (digests are computed per packet)")
	}

	// Settling moves the derived counts from the snapshot's unsettled
	// counters into the durable ones — totals must not change, and settling
	// again must be a no-op.
	s.TelemetrySettle()
	after := fold()
	for task, hits := range byTask {
		if after[task] != hits {
			t.Errorf("task %d: %d hits after settle, want %d (settle must not change totals)", task, after[task], hits)
		}
	}
	s.TelemetrySettle()
	if again := fold(); again[1] != byTask[1] {
		t.Errorf("task 1: %d hits after double settle, want %d (settle must be idempotent)", again[1], byTask[1])
	}
}

func TestTelemetryDerivedDetection(t *testing.T) {
	reg := telemetry.NewRegistry()
	pl := allocPipeline(t)
	pl.SetTelemetry(reg)
	s := pl.Compile()
	s.ProcessBatch([]packet.Packet{{SrcIP: 1, DstIP: 2, Proto: 6}})
	// The whole-traffic CMS rules are derived: the snapshot reconstructs
	// their hits from its packet counter, so it must carry exactly those
	// three in its derived list and give the filtered/sampled rules live
	// accumulator slots instead.
	live := s.TelemetryLive()
	if len(live.Derived) != 3 {
		t.Fatalf("snapshot derives %d rules, want 3 (the CMS rows)", len(live.Derived))
	}
	for _, rc := range live.Derived {
		if rc.Key.Task != 1 {
			t.Errorf("derived rule belongs to task %d, want 1 (only match-all unsampled rules derive)", rc.Key.Task)
		}
		if !rc.Meta.Derived {
			t.Errorf("rule %+v in the derived list but not flagged Derived", rc.Key)
		}
	}
	dp := reg.FoldDataPlane(live)
	byCMU := make(map[[2]int]int)
	for _, r := range dp.Rules {
		byCMU[[2]int{r.Group, r.CMU}]++
	}
	// Placement: task 1 spans group 0's three CMUs; tasks 2 and 3 share
	// group 1 CMU 0. The coordinates must be real pipeline positions.
	for _, want := range [][2]int{{0, 0}, {0, 1}, {0, 2}} {
		if byCMU[want] != 1 {
			t.Errorf("group %d CMU %d holds %d counters, want 1", want[0], want[1], byCMU[want])
		}
	}
	if byCMU[[2]int{1, 0}] != 2 {
		t.Errorf("group 1 CMU 0 holds %d counters, want 2 (filtered + sampled)", byCMU[[2]int{1, 0}])
	}
}
