package flymon

import (
	"testing"

	"flymon/internal/controlplane"
	"flymon/internal/packet"
	"flymon/internal/rpc"
	"flymon/internal/tracing"
)

// BenchmarkControlOpTrace measures the tracing plane's tax on a control
// operation: one loopback daemon serving read_registers round trips.
// Three variants:
//
//	tracing=off    no tracer anywhere — the seed baseline
//	tracing=armed  tracers attached on both ends but the op untraced —
//	               the cost of the nil/validity checks alone, which must
//	               be indistinguishable from off
//	tracing=on     a root span per op, spans recorded on both ends
//	               (client rpc attempt span + daemon dispatch span)
//
// The gate (`make bench-trace`) requires tracing=on within 3% of
// tracing=off by median ns/op; bench_trace.txt is the committed artifact.
func BenchmarkControlOpTrace(b *testing.B) {
	for _, variant := range []string{"tracing=off", "tracing=armed", "tracing=on"} {
		b.Run(variant, func(b *testing.B) {
			ctrl := controlplane.NewController(controlplane.Config{Groups: 9, Buckets: 65536, BitWidth: 32})
			srv := rpc.NewServer(ctrl, nil)
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			client, err := rpc.Dial(addr)
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()
			var tr *tracing.Tracer
			if variant != "tracing=off" {
				tr = tracing.New(0)
				srv.SetTracer(tracing.New(0))
				client.SetTracer(tr)
			}
			traced := variant == "tracing=on"
			t, err := client.AddTask(controlplane.TaskSpec{
				Name: "t", Key: packet.KeyFiveTuple,
				Attribute: controlplane.AttrFrequency, MemBuckets: 4096, D: 3,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var root *tracing.ActiveSpan
				if traced {
					root = tr.StartRoot("query")
				}
				_, err := client.ReadRegisters(t.ID, root.Context())
				root.Finish(err)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
