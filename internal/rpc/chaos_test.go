package rpc

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"flymon/internal/controlplane"
	"flymon/internal/faultnet"
	"flymon/internal/packet"
)

// chaosServer boots a real daemon whose accepted connections run under the
// fault plan, and returns its address.
func chaosServer(t *testing.T, plan faultnet.Plan) string {
	t.Helper()
	ctrl := controlplane.NewController(controlplane.Config{Groups: 3, Buckets: 8192, BitWidth: 32})
	srv := NewServer(ctrl, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Serve(faultnet.WrapListener(ln, plan))
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

func TestCallTimeoutOnHungDaemon(t *testing.T) {
	check := gateGoroutines(t)
	t.Cleanup(check)
	// A daemon that accepts and then never answers: the archetypal wedge.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold the conn open, read nothing
		}
	}()
	opts := testOpts()
	opts.CallTimeout = 200 * time.Millisecond
	c, err := DialOptions(ln.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	err = c.Ping()
	if err == nil {
		t.Fatal("ping against a hung daemon must fail")
	}
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("error type = %T (%v), want TransportError", err, err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("timeout took %v — deadline not applied", el)
	}
	// The client mutex must not be wedged: an immediate second call also
	// completes (it reconnects, hangs, and times out again).
	start = time.Now()
	if err := c.Ping(); err == nil {
		t.Fatal("second ping must also fail")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("second call took %v — client wedged", el)
	}
}

func TestBreakerFailsFastAndRecovers(t *testing.T) {
	check := gateGoroutines(t)
	t.Cleanup(check)
	ctrl := controlplane.NewController(controlplane.Config{Groups: 3, Buckets: 8192, BitWidth: 32})
	srv := NewServer(ctrl, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	opts := testOpts()
	opts.BreakerThreshold = 2
	opts.BreakerCooldown = 150 * time.Millisecond
	c, err := DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	// Kill the daemon: two failures open the circuit.
	srv.Close()
	for i := 0; i < 2; i++ {
		if err := c.Ping(); err == nil {
			t.Fatal("ping against a dead daemon must fail")
		}
	}
	if st, n := c.BreakerState(); st != BreakerOpen || n < 2 {
		t.Fatalf("breaker = %v after %d failures", st, n)
	}
	// While open, calls fail fast without touching the network.
	start := time.Now()
	err = c.Ping()
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open-circuit error = %v", err)
	}
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Fatalf("open-circuit call took %v, want instant", el)
	}

	// Daemon comes back; after the cooldown a half-open probe reconnects.
	srv2 := NewServer(ctrl, nil)
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	t.Cleanup(func() { srv2.Close() })
	time.Sleep(opts.BreakerCooldown + 50*time.Millisecond)
	if err := c.Ping(); err != nil {
		t.Fatalf("probe after cooldown = %v", err)
	}
	if st, _ := c.BreakerState(); st != BreakerClosed {
		t.Fatalf("breaker = %v after recovery", st)
	}
}

func TestServerSurvivesPanicAndGarbage(t *testing.T) {
	check := gateGoroutines(t)
	t.Cleanup(check)
	_, c := startServer(t)
	// A panicking handler becomes an error Response on the same conn...
	var r BoolResult
	err := c.call(MethodDebugPanic, nil, &r)
	if err == nil || !strings.Contains(err.Error(), "internal error") {
		t.Fatalf("debug_panic error = %v", err)
	}
	// ...and the daemon (and even this connection) keeps serving.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after panic: %v", err)
	}
	// Raw garbage on a fresh connection must not take the daemon down.
	conn, err := net.Dial("tcp", c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("\x00\xff garbage that is not a frame\n{]\n"))
	conn.Close()
	time.Sleep(20 * time.Millisecond)
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after garbage conn: %v", err)
	}
}

func TestDispatchRecoversPanicResponse(t *testing.T) {
	srv := NewServer(controlplane.NewController(controlplane.Config{Groups: 3, Buckets: 8192, BitWidth: 32}), nil)
	resp, _ := srv.dispatch(&Request{ID: 11, Method: MethodDebugPanic})
	if resp.ID != 11 {
		t.Fatalf("response ID = %d", resp.ID)
	}
	if !strings.Contains(resp.Error, "internal error") || !strings.Contains(resp.Error, "fault drill") {
		t.Fatalf("panic response = %+v", resp)
	}
	if resp.Result != nil {
		t.Fatal("panic response must carry no result")
	}
}

// TestChaosSeedMatrix is the headline chaos run: a real daemon behind a
// transport injecting delays, resets, and corrupt frames, driven through a
// realistic workload. Every idempotent path must recover via
// reconnect+retry; mutations may fail but only with a TransportError the
// caller can reconcile (which the test does, the way RemoteFleet would).
func TestChaosSeedMatrix(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			check := gateGoroutines(t)
			t.Cleanup(check)
			addr := chaosServer(t, faultnet.Plan{
				Seed:          seed,
				ReadDelay:     2 * time.Millisecond,
				WriteDelay:    2 * time.Millisecond,
				ResetEvery:    13,
				CorruptEvery:  17,
				PartialWrites: true,
			})
			opts := testOpts()
			opts.CallTimeout = 2 * time.Second
			opts.MaxRetries = 6
			opts.Seed = seed
			c, err := DialOptions(addr, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			// Install one task, reconciling ambiguous transport failures
			// by re-reading state (the documented contract for mutations).
			var taskID int
			for attempt := 0; ; attempt++ {
				if attempt > 20 {
					t.Fatal("could not install task in 20 attempts")
				}
				res, err := c.AddTask(freqSpec("chaos"))
				if err == nil {
					taskID = res.ID
					break
				}
				var te *TransportError
				if !errors.As(err, &te) {
					t.Fatalf("AddTask application error: %v", err)
				}
				tasks, lerr := c.ListTasks() // idempotent: auto-retried
				if lerr != nil {
					t.Fatalf("ListTasks while reconciling: %v", lerr)
				}
				if len(tasks) == 1 {
					taskID = tasks[0].ID
					break
				}
			}

			// Every idempotent call must succeed despite injected faults.
			for i := 0; i < 40; i++ {
				switch i % 4 {
				case 0:
					if err := c.Ping(); err != nil {
						t.Fatalf("op %d ping: %v", i, err)
					}
				case 1:
					if _, err := c.ReadRegisters(taskID); err != nil {
						t.Fatalf("op %d read_registers: %v", i, err)
					}
				case 2:
					if _, err := c.Estimate(taskID, packet.CanonicalKey{byte(i)}); err != nil {
						t.Fatalf("op %d estimate: %v", i, err)
					}
				case 3:
					if _, err := c.Stats(); err != nil {
						t.Fatalf("op %d stats: %v", i, err)
					}
				}
			}
			if st, _ := c.BreakerState(); st == BreakerOpen {
				t.Fatal("breaker left open after a fully recovered run")
			}
		})
	}
}

// TestChaosConcurrentCallers hammers one resilient client from several
// goroutines through a faulty transport: calls serialize on the client
// mutex, and none may wedge or leak.
func TestChaosConcurrentCallers(t *testing.T) {
	check := gateGoroutines(t)
	t.Cleanup(check)
	addr := chaosServer(t, faultnet.Plan{Seed: 4, ResetEvery: 19, WriteDelay: time.Millisecond})
	opts := testOpts()
	opts.MaxRetries = 6
	c, err := DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	errc := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 15; i++ {
				if err := c.Ping(); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		select {
		case err := <-errc:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("concurrent callers wedged")
		}
	}
}
