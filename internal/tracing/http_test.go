package tracing

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestTraceHandlerJSON(t *testing.T) {
	tr := New(16)
	root := tr.StartRoot("deploy")
	root.SetDetail("hh")
	child := tr.StartSpan(root.Context(), "rpc:add_task")
	child.SetSwitch(1)
	child.Finish(nil)
	root.Finish(nil)

	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var dump TraceDump
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if dump.Total != 2 || dump.Dropped != 0 || len(dump.Spans) != 2 {
		t.Fatalf("dump = total %d dropped %d spans %d", dump.Total, dump.Dropped, len(dump.Spans))
	}
	// Oldest first: the child finished before the root.
	if dump.Spans[0].Name != "rpc:add_task" || dump.Spans[1].Name != "deploy" {
		t.Fatalf("span order = %q, %q", dump.Spans[0].Name, dump.Spans[1].Name)
	}
}

func TestTraceHandlerLimit(t *testing.T) {
	tr := New(16)
	for i := 0; i < 5; i++ {
		tr.StartRoot("op").Finish(nil)
	}
	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?limit=2", nil))
	var dump TraceDump
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Spans) != 2 || dump.Total != 5 {
		t.Fatalf("limit=2 kept %d spans (total %d)", len(dump.Spans), dump.Total)
	}
}

func TestTraceHandlerTreeFormat(t *testing.T) {
	tr := New(16)
	root := tr.StartRoot("epoch_rotate")
	sw := tr.StartSpan(root.Context(), "switch")
	sw.SetSwitch(2)
	sw.Finish(nil)
	root.Finish(nil)

	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?format=tree", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{"epoch_rotate", "switch", "sw-2", "2 span(s)"} {
		if !strings.Contains(body, want) {
			t.Fatalf("tree output missing %q:\n%s", want, body)
		}
	}
}

func TestTraceHandlerNilTracer(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	var dump TraceDump
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("nil tracer served bad JSON: %v", err)
	}
	if dump.Total != 0 || len(dump.Spans) != 0 {
		t.Fatalf("nil tracer dump = %+v", dump)
	}
}
