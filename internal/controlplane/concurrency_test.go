package controlplane

import (
	"sync"
	"sync/atomic"
	"testing"

	"flymon/internal/packet"
	"flymon/internal/trace"
)

func freqSpec(name string, filter packet.Filter, buckets int) TaskSpec {
	return TaskSpec{
		Name: name, Filter: filter, Key: packet.KeyFiveTuple,
		Attribute: AttrFrequency, MemBuckets: buckets, D: 3,
	}
}

// readAll reads every register row of a task, failing the test on error.
func readAll(t *testing.T, c *Controller, id int) [][]uint32 {
	t.Helper()
	rows, err := c.ReadRegisters(id)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestBatchMatchesSequential: the batch fast path and the per-packet path
// produce identical register state for deterministic (non-probabilistic)
// tasks.
func TestBatchMatchesSequential(t *testing.T) {
	tr := trace.Generate(trace.Config{Flows: 800, Packets: 30_000, Seed: 11})
	build := func() (*Controller, int) {
		c := NewController(Config{Groups: 2, Buckets: 16384, BitWidth: 32})
		task, err := c.AddTask(freqSpec("hh", packet.MatchAll, 4096))
		if err != nil {
			t.Fatal(err)
		}
		return c, task.ID
	}

	cSeq, idSeq := build()
	for i := range tr.Packets {
		cSeq.Process(&tr.Packets[i])
	}
	cBatch, idBatch := build()
	cBatch.ProcessBatch(tr.Packets)

	a, b := readAll(t, cSeq, idSeq), readAll(t, cBatch, idBatch)
	for r := range a {
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatalf("row %d bucket %d: sequential %d != batch %d", r, i, a[r][i], b[r][i])
			}
		}
	}
}

// TestParallelSingleWorkerMatchesBatch: ProcessParallel with one worker is
// bit-for-bit the sequential batch path.
func TestParallelSingleWorkerMatchesBatch(t *testing.T) {
	tr := trace.Generate(trace.Config{Flows: 800, Packets: 30_000, Seed: 12})
	build := func() (*Controller, int) {
		c := NewController(Config{Groups: 2, Buckets: 16384, BitWidth: 32})
		task, err := c.AddTask(freqSpec("hh", packet.MatchAll, 4096))
		if err != nil {
			t.Fatal(err)
		}
		return c, task.ID
	}

	cBatch, idBatch := build()
	cBatch.ProcessBatch(tr.Packets)
	cPar, idPar := build()
	cPar.ProcessParallel(tr.Packets, 1)

	a, b := readAll(t, cBatch, idBatch), readAll(t, cPar, idPar)
	for r := range a {
		for i := range a[r] {
			if a[r][i] != b[r][i] {
				t.Fatalf("row %d bucket %d: batch %d != 1-worker parallel %d", r, i, a[r][i], b[r][i])
			}
		}
	}
}

// TestParallelExactMass: frequency counting is per-bucket commutative, so
// a many-worker replay keeps every row's total mass exact.
func TestParallelExactMass(t *testing.T) {
	tr := trace.Generate(trace.Config{Flows: 500, Packets: 40_000, Seed: 13})
	c := NewController(Config{Groups: 1, Buckets: 16384, BitWidth: 32})
	task, err := c.AddTask(freqSpec("hh", packet.MatchAll, 4096))
	if err != nil {
		t.Fatal(err)
	}
	c.ProcessParallel(tr.Packets, 8)
	for r, row := range readAll(t, c, task.ID) {
		var mass uint64
		for _, v := range row {
			mass += uint64(v)
		}
		if mass != uint64(len(tr.Packets)) {
			t.Fatalf("row %d mass %d, want %d", r, mass, len(tr.Packets))
		}
	}
}

// TestConcurrentReconfigStress hammers the parallel packet path while the
// control plane adds, freezes, thaws, resizes, and removes tasks — the
// paper's on-the-fly reconfiguration claim, verified under -race. A stable
// task owns a disjoint traffic slice throughout; its counters must stay
// exact no matter how many snapshots were swapped mid-flight.
func TestConcurrentReconfigStress(t *testing.T) {
	const (
		batches   = 40
		batchSize = 2_000
	)
	c := NewController(Config{Groups: 4, Buckets: 16384, BitWidth: 32})

	// The stable task measures DstPort=9 traffic only.
	stable, err := c.AddTask(freqSpec("stable", packet.Filter{DstPort: 9}, 2048))
	if err != nil {
		t.Fatal(err)
	}

	tr := trace.Generate(trace.Config{Flows: 400, Packets: batches * batchSize, Seed: 14})
	for i := range tr.Packets {
		tr.Packets[i].DstPort = 9
	}

	var processed atomic.Uint64
	var wg sync.WaitGroup

	// Data-plane workers: replay the trace in parallel batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < batches; b++ {
			seg := tr.Packets[b*batchSize : (b+1)*batchSize]
			c.ProcessParallel(seg, 4)
			processed.Add(uint64(len(seg)))
		}
	}()

	// Control plane: churn tasks on a disjoint traffic slice (DstPort=7).
	wg.Add(1)
	go func() {
		defer wg.Done()
		churn := freqSpec("churn", packet.Filter{DstPort: 7}, 1024)
		for i := 0; i < 60; i++ {
			task, err := c.AddTask(churn)
			if err != nil {
				continue // transiently out of resources: keep churning
			}
			switch i % 4 {
			case 0:
				_ = c.FreezeTask(task.ID)
				_ = c.ThawTask(task.ID)
			case 1:
				_, _ = c.ResizeTask(task.ID, 2048)
			case 2:
				_, _ = c.ReadRegisters(task.ID)
			}
			if err := c.RemoveTask(task.ID); err != nil {
				t.Errorf("remove churn task: %v", err)
				return
			}
		}
	}()

	// Control-plane reader: queries must never crash mid-swap.
	wg.Add(1)
	go func() {
		defer wg.Done()
		k := packet.KeyFiveTuple.Extract(&tr.Packets[0])
		for i := 0; i < 200; i++ {
			_, _ = c.EstimateKey(stable.ID, k)
			_ = c.Tasks()
			_ = c.FreeBuckets()
		}
	}()

	wg.Wait()

	// Every packet went through exactly one snapshot, and every snapshot
	// contained the stable task: its register mass must be exact.
	for r, row := range readAll(t, c, stable.ID) {
		var mass uint64
		for _, v := range row {
			mass += uint64(v)
		}
		if mass != processed.Load() {
			t.Fatalf("stable task row %d mass %d, want %d: reconfiguration must not disturb co-resident tasks",
				r, mass, processed.Load())
		}
	}
}

// TestSnapshotPublishedOnMutation: a packet processed after AddTask must
// hit the new task without any explicit refresh, and stop hitting it after
// RemoveTask — the RCU swap is part of the mutation.
func TestSnapshotPublishedOnMutation(t *testing.T) {
	c := NewController(Config{Groups: 1, Buckets: 4096, BitWidth: 32})
	task, err := c.AddTask(freqSpec("t", packet.MatchAll, 1024))
	if err != nil {
		t.Fatal(err)
	}
	p := packet.Packet{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	c.Process(&p)
	k := packet.KeyFiveTuple.Extract(&p)
	if v, _ := c.EstimateKey(task.ID, k); v != 1 {
		t.Fatalf("estimate after install = %v, want 1", v)
	}

	if err := c.FreezeTask(task.ID); err != nil {
		t.Fatal(err)
	}
	c.Process(&p) // frozen: must not count
	if v, _ := c.EstimateKey(task.ID, k); v != 1 {
		t.Fatalf("estimate after freeze = %v, want 1 (frozen rules match no traffic)", v)
	}

	if err := c.ThawTask(task.ID); err != nil {
		t.Fatal(err)
	}
	c.Process(&p)
	if v, _ := c.EstimateKey(task.ID, k); v != 2 {
		t.Fatalf("estimate after thaw = %v, want 2", v)
	}
}

// TestProcessParallelReusesWorkerPool: the controller's ProcessParallel
// must route batches through one persistent worker pool instead of
// spawning goroutines per call. The pool starts lazily on the first
// multi-worker call, and its started-worker count stays flat over any
// number of subsequent batches.
func TestProcessParallelReusesWorkerPool(t *testing.T) {
	c := NewController(Config{Groups: 2, Buckets: 16384, BitWidth: 32})
	defer c.Close()
	if _, err := c.AddTask(freqSpec("hh", packet.MatchAll, 4096)); err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(trace.Config{Flows: 200, Packets: 4096, Seed: 21})

	// workers == 1 is the deterministic sequential path: no pool.
	c.ProcessParallel(tr.Packets, 1)
	if c.workers.Load() != nil {
		t.Fatal("single-worker ProcessParallel must not start the pool")
	}

	c.ProcessParallel(tr.Packets, 4)
	pool := c.workers.Load()
	if pool == nil {
		t.Fatal("multi-worker ProcessParallel must start the persistent pool")
	}
	started := pool.Started()
	if started != int64(pool.Workers()) {
		t.Fatalf("pool started %d workers, want %d", started, pool.Workers())
	}
	for call := 0; call < 20; call++ {
		c.ProcessParallel(tr.Packets, 4)
	}
	if got := c.workers.Load(); got != pool {
		t.Fatal("ProcessParallel rebuilt the pool between calls")
	}
	if got := pool.Started(); got != started {
		t.Fatalf("pool started-worker count moved from %d to %d across calls: goroutines are being spawned per call", started, got)
	}
}

// TestControllerCloseShutsPool: Close releases the pool; a double Close is
// harmless.
func TestControllerCloseShutsPool(t *testing.T) {
	c := NewController(Config{Groups: 1, Buckets: 4096, BitWidth: 32})
	if _, err := c.AddTask(freqSpec("hh", packet.MatchAll, 1024)); err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(trace.Config{Flows: 50, Packets: 512, Seed: 23})
	c.ProcessParallel(tr.Packets, 2)
	if c.workers.Load() == nil {
		t.Fatal("pool should be running before Close")
	}
	c.Close()
	if c.workers.Load() != nil {
		t.Fatal("Close must release the pool")
	}
	c.Close()
}
