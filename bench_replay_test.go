package flymon

// BenchmarkReplayIngest backs the trace-ingestion numbers in DESIGN.md
// §14–15: the seed reader path (ReadAll → ProcessParallel) against the
// streaming ReadBatch path, the zero-copy mmap+ring path, and the
// FrameView-native frames engine, at pure ingest (tasks=0, isolating the
// ingestion machinery) and under the 9-task measurement load used by the
// throughput experiment. One op = one full pass over the shared trace; the
// pkts/s metric is the sustained ingest rate.
//
// The trace size defaults to 1M packets so `go test -bench ReplayIngest`
// stays quick; `make bench-replay` sets FLYMON_REPLAY_PACKETS=10000000 for
// the committed bench_replay.txt artifact (the ISSUE's ≥10M-packet run).
// FLYMON_REPLAY_WARM=1 runs one untimed replay per sub-benchmark before the
// timer starts, taking the cold-start page-cache and pool-spin-up variance
// out of the committed medians (the generated trace is also slurped once at
// write time, so even the first sub-benchmark sees a warm cache).

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"flymon/internal/experiments"
	"flymon/internal/trace"
)

var replayTrace struct {
	once    sync.Once
	path    string
	packets int
	err     error
}

// replayTracePath writes the benchmark trace once per process and returns
// its path and frame count. Size comes from FLYMON_REPLAY_PACKETS.
func replayTracePath(b *testing.B) (string, int) {
	b.Helper()
	replayTrace.once.Do(func() {
		n := 1_000_000
		if s := os.Getenv("FLYMON_REPLAY_PACKETS"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				replayTrace.err = fmt.Errorf("bad FLYMON_REPLAY_PACKETS %q", s)
				return
			}
			n = v
		}
		dir, err := os.MkdirTemp("", "flymon-bench-replay-")
		if err != nil {
			replayTrace.err = err
			return
		}
		path := filepath.Join(dir, "replay.fmt")
		tr := trace.Generate(trace.Config{Flows: 10_000, Packets: n, Seed: 42})
		f, err := os.Create(path)
		if err != nil {
			replayTrace.err = err
			return
		}
		w, err := trace.NewWriter(f)
		if err == nil {
			err = w.WriteTrace(tr)
		}
		if err == nil {
			err = w.Flush()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			// Pull the fresh trace through the page cache so the first
			// timed engine doesn't pay the cold-read penalty the rest
			// never see.
			_, err = os.ReadFile(path)
		}
		replayTrace.path, replayTrace.packets, replayTrace.err = path, n, err
	})
	if replayTrace.err != nil {
		b.Fatal(replayTrace.err)
	}
	return replayTrace.path, replayTrace.packets
}

func BenchmarkReplayIngest(b *testing.B) {
	path, packets := replayTracePath(b)
	warm := os.Getenv("FLYMON_REPLAY_WARM") == "1"
	for _, engine := range []experiments.ReplayEngine{
		experiments.EngineReader, experiments.EngineReadBatch,
		experiments.EngineMmap, experiments.EngineFrames,
	} {
		for _, tasks := range []int{0, 9} {
			b.Run(fmt.Sprintf("engine=%s/tasks=%d", engine, tasks), func(b *testing.B) {
				opt := experiments.ReplayOptions{
					Paths:  []string{path},
					Engine: engine,
					Tasks:  tasks,
				}
				if warm {
					if _, err := experiments.Replay(opt); err != nil {
						b.Fatal(err)
					}
				}
				b.SetBytes(int64(packets) * trace.RecordSize)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := experiments.Replay(opt); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(packets)*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
			})
		}
	}
}
