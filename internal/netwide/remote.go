package netwide

import (
	"fmt"

	"flymon/internal/controlplane"
	"flymon/internal/core/algorithms"
	"flymon/internal/packet"
	"flymon/internal/rpc"
	"flymon/internal/sketch"
)

// RemoteFleet is the deployed form of Fleet: the switches are flymond
// daemons reached over the control channel. The central controller keeps a
// local MIRROR controller built from the same configuration and fed the
// same task sequence — controller construction and placement are
// deterministic, so the mirror computes the exact hash mappings and
// register indices the remote switches use, while the remote daemons
// provide the actual register contents.
type RemoteFleet struct {
	clients []*rpc.Client
	mirror  *controlplane.Controller
	taskIDs map[string]int // mirror task ID (== remote IDs by construction)
}

// NewRemoteFleet wraps daemon connections. cfg MUST equal the configuration
// every daemon was started with (flymond's -groups/-buckets/-bitwidth
// flags); a mismatch silently corrupts index computation, so deployments
// should verify with a known-key probe (see VerifyAlignment).
func NewRemoteFleet(clients []*rpc.Client, cfg controlplane.Config) *RemoteFleet {
	return &RemoteFleet{
		clients: clients,
		mirror:  controlplane.NewController(cfg),
		taskIDs: make(map[string]int),
	}
}

// Size returns the number of remote switches.
func (f *RemoteFleet) Size() int { return len(f.clients) }

// Deploy installs the spec on every daemon and on the local mirror.
func (f *RemoteFleet) Deploy(spec controlplane.TaskSpec) error {
	if _, ok := f.taskIDs[spec.Name]; ok {
		return fmt.Errorf("netwide: task %q already deployed", spec.Name)
	}
	mt, err := f.mirror.AddTask(spec)
	if err != nil {
		return fmt.Errorf("netwide: mirror deploy of %q: %w", spec.Name, err)
	}
	deployed := make([]int, 0, len(f.clients))
	for i, c := range f.clients {
		rt, err := c.AddTask(spec)
		if err != nil {
			for j, id := range deployed {
				_ = f.clients[j].RemoveTask(id)
			}
			_ = f.mirror.RemoveTask(mt.ID)
			return fmt.Errorf("netwide: deploying %q on daemon %d: %w", spec.Name, i, err)
		}
		if rt.ID != mt.ID {
			// The daemon has diverged from the mirror (other tasks were
			// deployed out of band): refuse rather than mis-index.
			for j, id := range deployed {
				_ = f.clients[j].RemoveTask(id)
			}
			_ = c.RemoveTask(rt.ID)
			_ = f.mirror.RemoveTask(mt.ID)
			return fmt.Errorf("netwide: daemon %d assigned task ID %d, mirror expected %d — configurations diverged",
				i, rt.ID, mt.ID)
		}
		deployed = append(deployed, rt.ID)
	}
	f.taskIDs[spec.Name] = mt.ID
	return nil
}

// Remove uninstalls the named task everywhere.
func (f *RemoteFleet) Remove(name string) error {
	id, ok := f.taskIDs[name]
	if !ok {
		return fmt.Errorf("netwide: no task %q", name)
	}
	var firstErr error
	for _, c := range f.clients {
		if err := c.RemoveTask(id); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := f.mirror.RemoveTask(id); err != nil && firstErr == nil {
		firstErr = err
	}
	delete(f.taskIDs, name)
	return firstErr
}

// mergedRemoteRows reads the named task's registers from every daemon and
// merges them with the combiner.
func (f *RemoteFleet) mergedRemoteRows(name string, combine func(dst, src []uint32) error) ([][]uint32, int, error) {
	id, ok := f.taskIDs[name]
	if !ok {
		return nil, 0, fmt.Errorf("netwide: no task %q", name)
	}
	var merged [][]uint32
	for i, c := range f.clients {
		rows, err := c.ReadRegisters(id)
		if err != nil {
			return nil, 0, fmt.Errorf("netwide: reading %q on daemon %d: %w", name, i, err)
		}
		if merged == nil {
			merged = rows // the RPC client already returns fresh slices
			continue
		}
		if len(rows) != len(merged) {
			return nil, 0, fmt.Errorf("netwide: daemon %d row count %d, expected %d", i, len(rows), len(merged))
		}
		for r := range rows {
			if err := combine(merged[r], rows[r]); err != nil {
				return nil, 0, err
			}
		}
	}
	return merged, id, nil
}

// EstimateKey returns the fleet-wide frequency estimate for key k (counter
// tasks; packets must be measured at exactly one daemon).
func (f *RemoteFleet) EstimateKey(name string, k packet.CanonicalKey) (uint64, error) {
	merged, id, err := f.mergedRemoteRows(name, sketch.MergeAddRegisters)
	if err != nil {
		return 0, err
	}
	h, err := f.mirror.TaskHandle(id)
	if err != nil {
		return 0, err
	}
	cms, ok := h.(*algorithms.CMSTask)
	if !ok {
		return 0, fmt.Errorf("netwide: task %q is not a counter task", name)
	}
	min := ^uint32(0)
	for i := 0; i < cms.D; i++ {
		idx := cms.RowIndexFor(i, k) - uint32(cms.Rows[i].Base)
		if v := merged[i][idx]; v < min {
			min = v
		}
	}
	return uint64(min), nil
}

// VerifyAlignment checks that a daemon computes the same register indices
// as the mirror by comparing the two deployments' placements for a named
// task (a cheap structural probe; a full check would replay a known key).
func (f *RemoteFleet) VerifyAlignment(name string) error {
	id, ok := f.taskIDs[name]
	if !ok {
		return fmt.Errorf("netwide: no task %q", name)
	}
	mrows, err := f.mirror.ReadRegisters(id)
	if err != nil {
		return err
	}
	for i, c := range f.clients {
		rrows, err := c.ReadRegisters(id)
		if err != nil {
			return err
		}
		if len(rrows) != len(mrows) {
			return fmt.Errorf("netwide: daemon %d has %d rows, mirror %d", i, len(rrows), len(mrows))
		}
		for r := range rrows {
			if len(rrows[r]) != len(mrows[r]) {
				return fmt.Errorf("netwide: daemon %d row %d has %d buckets, mirror %d",
					i, r, len(rrows[r]), len(mrows[r]))
			}
		}
	}
	return nil
}
