package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// parse pulls a numeric cell out of a rendered table row.
func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(tbl.Rows[row][col], "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:  "demo",
		Header: []string{"A", "B"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "A", "1", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	tbl := Fig2()
	if len(tbl.Rows) != 5 { // four sketches + Sum
		t.Fatalf("Fig2 rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[4][0] != "Sum" {
		t.Fatal("last row must be the coexistence Sum")
	}
	// Sum must exceed each individual sketch on every resource.
	for col := 1; col <= 4; col++ {
		sum := cell(t, tbl, 4, col)
		for row := 0; row < 4; row++ {
			if cell(t, tbl, row, col) > sum {
				t.Fatalf("row %d column %d exceeds the Sum", row, col)
			}
		}
	}
}

func TestTable3Shape(t *testing.T) {
	tbl := Table3()
	if len(tbl.Rows) != 11 {
		t.Fatalf("Table3 rows = %d, want 11 algorithms", len(tbl.Rows))
	}
	var beaucoup, maxOther float64
	for _, row := range tbl.Rows {
		d, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("row %v delay not numeric", row)
		}
		if strings.HasPrefix(row[0], "BeauCoup") {
			beaucoup = d
		} else if d > maxOther {
			maxOther = d
		}
	}
	// The paper's qualitative finding: BeauCoup deploys slowest (coupon
	// entries).
	if beaucoup <= maxOther {
		t.Fatalf("BeauCoup delay %.1f must exceed all others (max %.1f)", beaucoup, maxOther)
	}
	// SuMax(Sum) and MaxInterval must report multi-group usage.
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row[0], "SuMax(Sum)") && row[2] != "3" {
			t.Fatal("SuMax(Sum) CMUG usage must be 3")
		}
	}
}

func TestFig11Monotone(t *testing.T) {
	tbl := Fig11()
	if len(tbl.Rows) != 4 {
		t.Fatalf("Fig11 rows = %d", len(tbl.Rows))
	}
	for i := 1; i < len(tbl.Rows); i++ {
		if cell(t, tbl, i, 1) <= cell(t, tbl, i-1, 1) {
			t.Fatal("TCAM usage must grow with partitions")
		}
		if cell(t, tbl, i, 2) <= cell(t, tbl, i-1, 2) {
			t.Fatal("PHV bits must grow with partitions")
		}
	}
}

func TestFig12aShape(t *testing.T) {
	res := Fig12a(42)
	tbl := res.Table
	if len(tbl.Rows) != 3 {
		t.Fatalf("Fig12a rows = %d", len(tbl.Rows))
	}
	bareOutage := cell(t, tbl, 0, 2)
	flymonOutage := cell(t, tbl, 1, 2)
	staticOutage := cell(t, tbl, 2, 2)
	if bareOutage != 0 || flymonOutage != 0 {
		t.Fatal("Bare and FlyMon must have zero outage")
	}
	if staticOutage < 20 {
		t.Fatalf("Static outage %.1f s too small for 6 critical events", staticOutage)
	}
	if len(res.Series["FlyMon"]) == 0 {
		t.Fatal("series must be exported for plotting")
	}
}

func TestFig12bStaticDegradesDuringSpike(t *testing.T) {
	tbl := Fig12b(Small, 42)
	if len(tbl.Rows) != 20 {
		t.Fatalf("Fig12b rows = %d, want 20 epochs", len(tbl.Rows))
	}
	// During the spike (epochs 7..14 to be safe), static ARE must be an
	// order of magnitude above FlyMon's.
	var flySpike, staticSpike float64
	n := 0
	for e := 7; e <= 14; e++ {
		flySpike += cell(t, tbl, e, 2)
		staticSpike += cell(t, tbl, e, 3)
		n++
	}
	flySpike /= float64(n)
	staticSpike /= float64(n)
	if staticSpike < 10*flySpike {
		t.Fatalf("spike AREs: static %.3f vs FlyMon %.3f — want ≥10x separation (paper: 15x)",
			staticSpike, flySpike)
	}
}

func TestFig13aGroupOverheadBounded(t *testing.T) {
	tbl := Fig13a()
	if len(tbl.Rows) != 3 {
		t.Fatalf("Fig13a rows = %d", len(tbl.Rows))
	}
	// +1 CMUG over baseline must cost ≤ 9% on every resource (paper:
	// <8.3% average, hash-bound).
	for col := 1; col <= 6; col++ {
		delta := cell(t, tbl, 1, col) - cell(t, tbl, 0, col)
		if delta > 9 {
			t.Fatalf("column %d: one group costs %.1f%%", col, delta)
		}
	}
	// 3 groups must still fit the pipeline.
	for col := 1; col <= 6; col++ {
		if cell(t, tbl, 2, col) > 100 {
			t.Fatalf("3 CMUGs overflow resource column %d", col)
		}
	}
}

func TestFig13bHeadline(t *testing.T) {
	tbl := Fig13b()
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "12" || last[1] != "9" || last[2] != "27" {
		t.Fatalf("12-stage row = %v, want 9 groups / 27 CMUs", last)
	}
	if last[3] != "75.0%" || last[4] != "56.2%" {
		t.Fatalf("12-stage utilization = %v/%v, want 75%%/56.25%%", last[3], last[4])
	}
}

func TestFig13cCompressionFlat(t *testing.T) {
	tbl := Fig13c()
	first := cell(t, tbl, 0, 2)
	for i := range tbl.Rows {
		if cell(t, tbl, i, 2) != first {
			t.Fatal("compressed CMU count must not vary with key size")
		}
	}
	// ≥3x advantage at 360 bits.
	if cell(t, tbl, 3, 2) < 3*cell(t, tbl, 3, 1) {
		t.Fatalf("compression advantage too small: %v vs %v", tbl.Rows[3][2], tbl.Rows[3][1])
	}
}

func TestFig14aShape(t *testing.T) {
	tbl := Fig14a(Small, 42)
	last := len(tbl.Rows) - 1
	// Counter-based FlyMon variants reach high F1 at the top of the sweep.
	if cell(t, tbl, last, 2) < 0.95 || cell(t, tbl, last, 3) < 0.95 {
		t.Fatalf("FlyMon-CMS/SuMax final F1 = %v/%v, want ≥0.95",
			tbl.Rows[last][2], tbl.Rows[last][3])
	}
	// SuMax must dominate CMS at the smallest memory (memory efficiency).
	if cell(t, tbl, 0, 3) < cell(t, tbl, 0, 2) {
		t.Fatalf("SuMax F1 %v below CMS %v at smallest memory", tbl.Rows[0][3], tbl.Rows[0][2])
	}
	// F1 must be non-degrading (within noise) as memory grows for CMS.
	if cell(t, tbl, last, 2) < cell(t, tbl, 0, 2) {
		t.Fatal("CMS F1 must improve with memory")
	}
}

func TestFig14bProbabilisticTolerable(t *testing.T) {
	tbl := Fig14b(Small, 42)
	last := len(tbl.Rows) - 1
	full := cell(t, tbl, last, 1)
	eighth := cell(t, tbl, last, 4)
	if full-eighth > 0.15 {
		t.Fatalf("p=0.125 costs %.3f F1; paper reports little effect", full-eighth)
	}
}

func TestFig14cFlyMonWinsAtHighMemory(t *testing.T) {
	tbl := Fig14c(Small, 42)
	last := len(tbl.Rows) - 1
	fly3 := cell(t, tbl, last, 2)
	orig3 := cell(t, tbl, last, 4)
	if fly3 < orig3-0.05 {
		t.Fatalf("FlyMon-BeauCoup(d=3) %.3f below original %.3f at top memory", fly3, orig3)
	}
	if fly3 < 0.9 {
		t.Fatalf("FlyMon-BeauCoup(d=3) final F1 = %.3f, want ≥0.9", fly3)
	}
}

func TestFig14dCrossover(t *testing.T) {
	tbl := Fig14d(Small, 42)
	// BeauCoup must already be decent at 16 bytes.
	if cell(t, tbl, 0, 1) > 0.3 {
		t.Fatalf("BeauCoup RE at 16 B = %v, want ≤ 0.3", tbl.Rows[0][1])
	}
	// HLL must win at the largest memory.
	last := len(tbl.Rows) - 1
	if cell(t, tbl, last, 2) > 0.1 {
		t.Fatalf("HLL RE at 8 KB = %v, want ≤ 0.1", tbl.Rows[last][2])
	}
}

func TestFig14eMRACBeatsUnivMon(t *testing.T) {
	tbl := Fig14e(Small, 42)
	// At every memory point MRAC's RE must not exceed UnivMon's by more
	// than noise, and at the top both are small.
	last := len(tbl.Rows) - 1
	if cell(t, tbl, last, 2) > 0.1 {
		t.Fatalf("MRAC final RE = %v", tbl.Rows[last][2])
	}
	if cell(t, tbl, last, 2) > cell(t, tbl, last, 1)+0.02 {
		t.Fatalf("MRAC %v worse than UnivMon %v at top memory", tbl.Rows[last][2], tbl.Rows[last][1])
	}
}

func TestFig14fMemoryHelps(t *testing.T) {
	tbl := Fig14f(Small, 42)
	first2 := cell(t, tbl, 0, 1)
	last2 := cell(t, tbl, len(tbl.Rows)-1, 1)
	if last2 >= first2 {
		t.Fatalf("d=2 ARE must fall with memory: %.3f → %.3f", first2, last2)
	}
}

func TestFig14gPackingWins(t *testing.T) {
	tbl := Fig14g(Small, 42)
	for i := range tbl.Rows {
		unpacked := cell(t, tbl, i, 1)
		packed := cell(t, tbl, i, 2)
		if packed > unpacked {
			t.Fatalf("row %d: packed FP %.4f above unpacked %.4f", i, packed, unpacked)
		}
	}
	// Final packed FP must be tiny (paper: <0.1% at 40 KB).
	if cell(t, tbl, len(tbl.Rows)-1, 2) > 0.001 {
		t.Fatalf("packed FP at 40 KB = %v", tbl.Rows[len(tbl.Rows)-1][2])
	}
}

func TestAblationSubPartsNearParity(t *testing.T) {
	tbl := AblationSubParts(Small, 42)
	for i := range tbl.Rows {
		fly := cell(t, tbl, i, 1)
		ind := cell(t, tbl, i, 2)
		// The paper claims negligible impact: allow 2x either way plus an
		// absolute floor for tiny AREs.
		if fly > 2*ind+0.05 {
			t.Fatalf("row %d: sub-part ARE %.3f far above independent %.3f", i, fly, ind)
		}
	}
}

func TestAblationTranslationParity(t *testing.T) {
	tbl := AblationTranslation(Small, 42)
	for i := range tbl.Rows {
		shift := cell(t, tbl, i, 1)
		tcam := cell(t, tbl, i, 2)
		diff := shift - tcam
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.15*(shift+tcam)/2+0.02 {
			t.Fatalf("row %d: translation methods diverge: %.3f vs %.3f", i, shift, tcam)
		}
	}
}

func TestAblationMemoryModes(t *testing.T) {
	tbl := AblationMemoryModes()
	for i := range tbl.Rows {
		req := cell(t, tbl, i, 0)
		acc := cell(t, tbl, i, 1)
		if acc < req {
			t.Fatalf("accurate mode under-allocated: %v < %v", acc, req)
		}
	}
}

func TestAblationXORKeysParity(t *testing.T) {
	tbl := AblationXORKeys(Small, 42)
	direct := cell(t, tbl, 0, 1)
	xor := cell(t, tbl, 1, 1)
	if xor > 2*direct+0.05 {
		t.Fatalf("XOR-key ARE %.3f far above direct %.3f", xor, direct)
	}
}

func TestAppendixEOverheadTracksShare(t *testing.T) {
	tbl := AppendixE(Small, 42)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Overhead must increase with the spliced task's traffic share and
	// reach ~100% for a match-all task.
	prev := -1.0
	for i := range tbl.Rows {
		o := cell(t, tbl, i, 3)
		if o <= prev {
			t.Fatalf("overhead not increasing at row %d", i)
		}
		prev = o
	}
	if prev < 99.9 {
		t.Fatalf("match-all spliced task overhead = %.1f%%, want 100%%", prev)
	}
	// The 1/2 row must be near 50%.
	if half := cell(t, tbl, 2, 3); half < 40 || half > 60 {
		t.Fatalf("1/2-share overhead = %.1f%%", half)
	}
}

func TestMultitaskingIsolationPerfect(t *testing.T) {
	tbl := Multitasking(Small, 42)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "96" {
		t.Fatalf("top load = %s tasks, want 96", last[0])
	}
	for i := range tbl.Rows {
		if cell(t, tbl, i, 4) != 0 {
			t.Fatalf("row %d reports isolation errors", i)
		}
		// Deployment stays millisecond-scale per task.
		if mean := cell(t, tbl, i, 3); mean > 100 {
			t.Fatalf("mean deploy delay %.1f ms implausible", mean)
		}
	}
}

func TestFig12aWriteSeries(t *testing.T) {
	res := Fig12a(42)
	dir := t.TempDir()
	if err := res.WriteSeries(dir); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"bare", "flymon", "static"} {
		data, err := os.ReadFile(filepath.Join(dir, "fig12a_"+kind+".dat"))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "# seconds gbps\n") || len(data) < 1000 {
			t.Fatalf("%s series malformed (%d bytes)", kind, len(data))
		}
	}
}
