package sketch

import (
	"fmt"
	"math"

	"flymon/internal/hashing"
	"flymon/internal/packet"
)

// CouponConfig parameterizes a BeauCoup coupon-collector query (Chen et
// al., SIGCOMM '20): c coupons, each drawn with probability 2^−ProbLog2 per
// attribute value, and a key is reported once Collect distinct coupons have
// been gathered.
type CouponConfig struct {
	Coupons  int // c ≤ 32 (a bucket's bitmap is one 32-bit word)
	Collect  int // γ: coupons required to report
	ProbLog2 int // q: per-coupon draw probability is 2^−q; requires c ≤ 2^q
}

// ExpectedDraws returns the expected number of distinct attribute values
// needed to collect γ of c coupons at probability 2^−q:
// E = 2^q · (H_c − H_{c−γ}).
func (cc CouponConfig) ExpectedDraws() float64 {
	return math.Exp2(float64(cc.ProbLog2)) * (harmonic(cc.Coupons) - harmonic(cc.Coupons-cc.Collect))
}

// Validate checks structural invariants.
func (cc CouponConfig) Validate() error {
	if cc.Coupons < 1 || cc.Coupons > 32 {
		return fmt.Errorf("sketch: coupon count %d out of range [1,32]", cc.Coupons)
	}
	if cc.Collect < 1 || cc.Collect > cc.Coupons {
		return fmt.Errorf("sketch: collect target %d out of range [1,%d]", cc.Collect, cc.Coupons)
	}
	if cc.ProbLog2 < 0 || cc.ProbLog2 > 28 {
		return fmt.Errorf("sketch: prob exponent %d out of range [0,28]", cc.ProbLog2)
	}
	if cc.Coupons > 1<<uint(cc.ProbLog2) {
		return fmt.Errorf("sketch: %d coupons at probability 2^-%d exceed unit mass", cc.Coupons, cc.ProbLog2)
	}
	return nil
}

// RelativeStdDev returns σ/E of the number of distinct draws needed to
// collect γ of c coupons: the collection is a sum of independent geometric
// stages with success probability p·i (i = c…c−γ+1), so
// Var = Σ (1−pi)/(pi)². Lower relative deviation means a sharper
// threshold classifier.
func (cc CouponConfig) RelativeStdDev() float64 {
	p := math.Exp2(-float64(cc.ProbLog2))
	var varSum float64
	for i := cc.Coupons; i > cc.Coupons-cc.Collect; i-- {
		pi := p * float64(i)
		if pi >= 1 {
			continue
		}
		varSum += (1 - pi) / (pi * pi)
	}
	e := cc.ExpectedDraws()
	if e <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(varSum) / e
}

// SolveCouponConfig picks the coupon configuration whose expected
// collection time matches the query threshold, preferring the sharpest
// (lowest relative variance) among near-matching configurations —
// BeauCoup's offline query-compilation step.
func SolveCouponConfig(threshold int) CouponConfig {
	if threshold < 1 {
		threshold = 1
	}
	best := CouponConfig{Coupons: 1, Collect: 1, ProbLog2: 0}
	bestErr := math.Inf(1)
	bestStd := math.Inf(1)
	const tolerance = 0.15 // configs within ±15% (log) compete on variance
	for _, c := range []int{1, 2, 4, 8, 16, 32} {
		minQ := 0
		for 1<<uint(minQ) < c {
			minQ++
		}
		for q := minQ; q <= 24; q++ {
			for gamma := 1; gamma <= c; gamma++ {
				cc := CouponConfig{Coupons: c, Collect: gamma, ProbLog2: q}
				err := math.Abs(math.Log(cc.ExpectedDraws() / float64(threshold)))
				std := cc.RelativeStdDev()
				better := false
				switch {
				case err <= tolerance && bestErr <= tolerance:
					better = std < bestStd
				case err <= tolerance && bestErr > tolerance:
					better = true
				case err > tolerance && bestErr > tolerance:
					better = err < bestErr
				}
				if better {
					bestErr, bestStd, best = err, std, cc
				}
			}
		}
	}
	return best
}

func harmonic(n int) float64 {
	var h float64
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

// Draw maps an attribute-value hash to a coupon index, or -1 when no coupon
// is drawn. Coupon i is drawn when the hash falls in slot i of width
// 2^(32−q); slots beyond the first c draw nothing.
func (cc CouponConfig) Draw(h uint32) int {
	idx := int(h >> uint(32-cc.ProbLog2))
	if cc.ProbLog2 == 0 {
		idx = 0
	}
	if idx >= cc.Coupons {
		return -1
	}
	return idx
}

// BeauCoup answers a multi-key distinct-counting query ("which keys saw ≥ t
// distinct attribute values?") with one memory update per packet. Each of d
// independent tables has m buckets of {checksum, coupon bitmap}; a key is
// reported when all d tables have collected γ coupons for it (d > 1 is the
// CMS-style collision hardening the paper compares as "BeauCoup (d=3)").
type BeauCoup struct {
	keySpec   packet.KeySpec
	paramSpec packet.KeySpec
	cfg       CouponConfig
	d, m      int

	checksums [][]uint32
	bitmaps   [][]uint32
	reported  []map[packet.CanonicalKey]bool

	keyHash   *hashing.Family
	paramHash *hashing.Family
	ckHash    *hashing.Unit
}

// NewBeauCoup builds a BeauCoup query instance: d tables × m buckets,
// counting distinct paramSpec values per keySpec value under cfg.
func NewBeauCoup(keySpec, paramSpec packet.KeySpec, cfg CouponConfig, d, m int) *BeauCoup {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m = ceilPow2(m)
	b := &BeauCoup{
		keySpec: keySpec, paramSpec: paramSpec, cfg: cfg, d: d, m: m,
		keyHash:   hashing.NewFamily(d, keySpec),
		paramHash: hashing.NewFamily(d, paramSpec),
		ckHash:    hashing.NewUnit(hashing.MaxUnits() - 1),
	}
	b.ckHash.Configure(keySpec)
	for j := 0; j < d; j++ {
		b.checksums = append(b.checksums, make([]uint32, m))
		b.bitmaps = append(b.bitmaps, make([]uint32, m))
		b.reported = append(b.reported, make(map[packet.CanonicalKey]bool))
	}
	return b
}

// NewBeauCoupForBytes sizes d tables to a total memory budget (8 bytes per
// bucket: 4 checksum + 4 bitmap).
func NewBeauCoupForBytes(keySpec, paramSpec packet.KeySpec, threshold, d, memBytes int) *BeauCoup {
	m := memBytes / (8 * d)
	if m < 1 {
		m = 1
	}
	return NewBeauCoup(keySpec, paramSpec, SolveCouponConfig(threshold), d, m)
}

// AddPacket performs at most one coupon draw per table for packet p.
func (b *BeauCoup) AddPacket(p *packet.Packet) {
	key := b.keySpec.Extract(p)
	ck := b.ckHash.Hash(p)
	if ck == 0 {
		ck = 1 // zero marks an empty bucket
	}
	for j := 0; j < b.d; j++ {
		coupon := b.cfg.Draw(b.paramHash.Hash(j, p))
		if coupon < 0 {
			continue
		}
		idx := b.keyHash.Hash(j, p) & uint32(b.m-1)
		switch b.checksums[j][idx] {
		case 0:
			b.checksums[j][idx] = ck // claim the empty bucket
		case ck:
			// ours
		default:
			continue // occupied by another key: BeauCoup skips the draw
		}
		b.bitmaps[j][idx] |= 1 << uint(coupon)
		if popcount(b.bitmaps[j][idx]) >= b.cfg.Collect {
			b.reported[j][key] = true
		}
	}
}

// Reported returns the keys reported by all d tables.
func (b *BeauCoup) Reported() map[packet.CanonicalKey]bool {
	out := make(map[packet.CanonicalKey]bool)
	for k := range b.reported[0] {
		all := true
		for j := 1; j < b.d; j++ {
			if !b.reported[j][k] {
				all = false
				break
			}
		}
		if all {
			out[k] = true
		}
	}
	return out
}

// CollectedCoupons returns, for key k, the minimum number of coupons
// collected across tables — the basis for distinct-count estimation.
func (b *BeauCoup) CollectedCoupons(k packet.CanonicalKey) int {
	ck := b.ckHash.HashBytes(k[:])
	if ck == 0 {
		ck = 1
	}
	min := 32
	for j := 0; j < b.d; j++ {
		idx := b.keyHash.HashBytes(j, k[:]) & uint32(b.m-1)
		n := 0
		if b.checksums[j][idx] == ck {
			n = popcount(b.bitmaps[j][idx])
		}
		if n < min {
			min = n
		}
	}
	return min
}

// EstimateDistinct inverts the coupon count for key k into a distinct-value
// estimate via the coupon-collector expectation.
func (b *BeauCoup) EstimateDistinct(k packet.CanonicalKey) float64 {
	j := b.CollectedCoupons(k)
	if j == 0 {
		return 0
	}
	cc := b.cfg
	return math.Exp2(float64(cc.ProbLog2)) * (harmonic(cc.Coupons) - harmonic(cc.Coupons-j))
}

// Config returns the coupon configuration in use.
func (b *BeauCoup) Config() CouponConfig { return b.cfg }

// MemoryBytes returns the table memory footprint.
func (b *BeauCoup) MemoryBytes() int { return b.d * b.m * 8 }

// Reset clears tables and reports.
func (b *BeauCoup) Reset() {
	for j := 0; j < b.d; j++ {
		clear(b.checksums[j])
		clear(b.bitmaps[j])
		b.reported[j] = make(map[packet.CanonicalKey]bool)
	}
}

func popcount(x uint32) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// BeauCoupCardinality estimates whole-traffic cardinality with a bank of
// coupon rows at geometrically spaced probabilities — the multi-resolution
// use of coupons the paper evaluates in Fig. 14d with as little as 16 bytes
// of state. Each row is a c-coupon collector at probability 2^−q; the
// estimate comes from the most informative (least saturated, non-empty)
// row.
type BeauCoupCardinality struct {
	spec packet.KeySpec
	rows []cardRow
	hash *hashing.Unit
}

type cardRow struct {
	cfg    CouponConfig
	bitmap uint32
}

// NewBeauCoupCardinalityForBytes builds ⌊memBytes/4⌋ coupon rows (4 bytes
// each) at geometrically spaced probabilities, spread so that even a
// 16-byte bank covers cardinalities from tens to hundreds of thousands.
func NewBeauCoupCardinalityForBytes(spec packet.KeySpec, memBytes int) *BeauCoupCardinality {
	rows := memBytes / 4
	if rows < 1 {
		rows = 1
	}
	if rows > 16 {
		rows = 16
	}
	h := hashing.NewUnit(0)
	h.Configure(spec)
	bc := &BeauCoupCardinality{spec: spec, hash: h}
	// Few rows must span a wide range (coarse steps); many rows can
	// overlap for variance reduction (fine steps).
	step := 3
	if rows >= 8 {
		step = 2
	}
	for r := 0; r < rows; r++ {
		q := 5 + step*r
		if q > 24 {
			q = 24
		}
		bc.rows = append(bc.rows, cardRow{cfg: CouponConfig{Coupons: 32, Collect: 32, ProbLog2: q}})
	}
	return bc
}

// AddPacket draws coupons for p's flow key in every row.
func (bc *BeauCoupCardinality) AddPacket(p *packet.Packet) {
	h := bc.hash.Hash(p)
	for r := range bc.rows {
		// Re-randomize per row by mixing the row index into the hash.
		hr := h*2654435761 + uint32(r)*0x9E3779B9
		hr ^= hr >> 15
		if c := bc.rows[r].cfg.Draw(hr); c >= 0 {
			bc.rows[r].bitmap |= 1 << uint(c)
		}
	}
}

// Estimate combines the informative (non-empty, non-saturated) rows by
// inverse-variance weighting; saturated rows contribute only a lower
// bound when nothing better exists.
func (bc *BeauCoupCardinality) Estimate() float64 {
	var wSum, wEst float64
	var saturatedFloor float64
	for r := range bc.rows {
		j := popcount(bc.rows[r].bitmap)
		cfg := bc.rows[r].cfg
		if j == 0 {
			continue
		}
		est := math.Exp2(float64(cfg.ProbLog2)) * (harmonic(cfg.Coupons) - harmonic(cfg.Coupons-j))
		if j >= cfg.Coupons {
			if est > saturatedFloor {
				saturatedFloor = est
			}
			continue
		}
		c := cfg
		c.Collect = j
		rel := c.RelativeStdDev()
		if rel <= 0 || math.IsInf(rel, 1) {
			continue
		}
		w := 1 / (rel * rel * est * est) // inverse absolute variance
		wSum += w
		wEst += w * est
	}
	if wSum > 0 {
		est := wEst / wSum
		if est < saturatedFloor {
			est = saturatedFloor
		}
		return est
	}
	return saturatedFloor
}

// MemoryBytes returns the bitmap memory footprint.
func (bc *BeauCoupCardinality) MemoryBytes() int { return len(bc.rows) * 4 }
