package algorithms

import (
	"math"
	"testing"

	"flymon/internal/core"
	"flymon/internal/metrics"
	"flymon/internal/packet"
	"flymon/internal/sketch"
	"flymon/internal/trace"
)

// pipeline32 builds a pipeline of n groups with 32-bit, `buckets`-bucket
// registers (accuracy experiments use 32-bit counters).
func pipeline32(n, buckets int) *core.Pipeline {
	groups := make([]*core.Group, n)
	for i := range groups {
		groups[i] = core.NewGroup(core.GroupConfig{ID: i, Buckets: buckets, BitWidth: 32})
	}
	return core.NewPipelineWith(groups...)
}

func genTrace(t *testing.T, flows, packets int, seed int64) *trace.Trace {
	t.Helper()
	return trace.Generate(trace.Config{Flows: flows, Packets: packets, Seed: seed})
}

func TestCMSOverestimatesAndTracksTruth(t *testing.T) {
	pl := pipeline32(1, 1<<14)
	task, err := InstallCMS(pl.Group(0), 1, packet.MatchAll, packet.KeyFiveTuple, core.Const(1), 3, nil)
	if err != nil {
		t.Fatalf("InstallCMS: %v", err)
	}
	tr := genTrace(t, 2000, 100_000, 1)
	exact := sketch.NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		pl.Process(&tr.Packets[i])
		exact.AddPacket(&tr.Packets[i])
	}
	var are float64
	n := 0
	for k, truth := range exact.Counts() {
		est := uint64(task.EstimateKey(k))
		if est < truth {
			t.Fatalf("CMS underestimated flow: est %d < truth %d", est, truth)
		}
		are += float64(est-truth) / float64(truth)
		n++
	}
	are /= float64(n)
	if are > 0.5 {
		t.Fatalf("CMS ARE %.3f too high for 2000 flows in 3x16K counters", are)
	}
}

func TestCMSByteCounting(t *testing.T) {
	pl := pipeline32(1, 1<<14)
	task, err := InstallCMS(pl.Group(0), 1, packet.MatchAll, packet.KeySrcIP, core.PacketSize(), 3, nil)
	if err != nil {
		t.Fatalf("InstallCMS: %v", err)
	}
	tr := genTrace(t, 500, 20_000, 2)
	exact := sketch.NewExactFrequency(packet.KeySrcIP)
	for i := range tr.Packets {
		pl.Process(&tr.Packets[i])
		exact.Add(&tr.Packets[i], uint64(tr.Packets[i].Size))
	}
	for k, truth := range exact.Counts() {
		if est := uint64(task.EstimateKey(k)); est < truth {
			t.Fatalf("byte CMS underestimated: est %d < truth %d", est, truth)
		}
	}
}

func TestCMSFilterScopesTraffic(t *testing.T) {
	pl := pipeline32(1, 1<<12)
	filter := packet.Filter{DstPort: 80}
	task, err := InstallCMS(pl.Group(0), 7, filter, packet.KeyFiveTuple, core.Const(1), 3, nil)
	if err != nil {
		t.Fatalf("InstallCMS: %v", err)
	}
	in := packet.Packet{SrcIP: 1, DstIP: 2, SrcPort: 9999, DstPort: 80, Proto: 6}
	out := packet.Packet{SrcIP: 1, DstIP: 2, SrcPort: 9999, DstPort: 443, Proto: 6}
	for i := 0; i < 10; i++ {
		pl.Process(&in)
		pl.Process(&out)
	}
	if got := task.EstimateKey(packet.KeyFiveTuple.Extract(&in)); got != 10 {
		t.Fatalf("in-filter flow estimate = %d, want 10", got)
	}
	if got := task.EstimateKey(packet.KeyFiveTuple.Extract(&out)); got != 0 {
		t.Fatalf("out-of-filter flow estimate = %d, want 0", got)
	}
}

func TestHeavyHitterF1HighWithAdequateMemory(t *testing.T) {
	pl := pipeline32(1, 1<<14)
	task, err := InstallCMS(pl.Group(0), 1, packet.MatchAll, packet.KeyFiveTuple, core.Const(1), 3, nil)
	if err != nil {
		t.Fatalf("InstallCMS: %v", err)
	}
	tr := genTrace(t, 5000, 300_000, 3)
	exact := sketch.NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		pl.Process(&tr.Packets[i])
		exact.AddPacket(&tr.Packets[i])
	}
	const threshold = 1024
	truth := exact.HeavyHitters(threshold)
	if len(truth) == 0 {
		t.Fatal("trace produced no heavy hitters; adjust workload")
	}
	candidates := make([]packet.CanonicalKey, 0, exact.Flows())
	universe := make(map[packet.CanonicalKey]bool)
	for k := range exact.Counts() {
		candidates = append(candidates, k)
		universe[k] = true
	}
	reported := task.HeavyHitters(candidates, threshold)
	f1 := metrics.Classify(universe, truth, reported).F1()
	if f1 < 0.95 {
		t.Fatalf("heavy-hitter F1 = %.3f, want ≥ 0.95 (truth %d, reported %d)", f1, len(truth), len(reported))
	}
}

func TestSuMaxSumTighterThanCMS(t *testing.T) {
	plCMS := pipeline32(1, 1<<10)
	cms, err := InstallCMS(plCMS.Group(0), 1, packet.MatchAll, packet.KeyFiveTuple, core.Const(1), 3, nil)
	if err != nil {
		t.Fatalf("InstallCMS: %v", err)
	}
	plSM := pipeline32(3, 1<<10)
	sm, err := InstallSuMaxSum([]*core.Group{plSM.Group(0), plSM.Group(1), plSM.Group(2)},
		1, packet.MatchAll, packet.KeyFiveTuple, core.Const(1), nil)
	if err != nil {
		t.Fatalf("InstallSuMaxSum: %v", err)
	}
	tr := genTrace(t, 4000, 150_000, 4)
	exact := sketch.NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		plCMS.Process(&tr.Packets[i])
		plSM.Process(&tr.Packets[i])
		exact.AddPacket(&tr.Packets[i])
	}
	var cmsErr, smErr float64
	for k, truth := range exact.Counts() {
		cmsErr += math.Abs(float64(cms.EstimateKey(k))-float64(truth)) / float64(truth)
		smErr += math.Abs(float64(sm.EstimateKey(k))-float64(truth)) / float64(truth)
	}
	if smErr > cmsErr {
		t.Fatalf("SuMax(Sum) total RE %.1f should not exceed CMS %.1f under heavy collision load", smErr, cmsErr)
	}
}

func TestSuMaxSumNeverUnderestimatesWhenAlone(t *testing.T) {
	pl := pipeline32(3, 1<<14)
	sm, err := InstallSuMaxSum([]*core.Group{pl.Group(0), pl.Group(1), pl.Group(2)},
		1, packet.MatchAll, packet.KeyFiveTuple, core.Const(1), nil)
	if err != nil {
		t.Fatalf("InstallSuMaxSum: %v", err)
	}
	tr := genTrace(t, 1000, 50_000, 5)
	exact := sketch.NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		pl.Process(&tr.Packets[i])
		exact.AddPacket(&tr.Packets[i])
	}
	for k, truth := range exact.Counts() {
		if est := uint64(sm.EstimateKey(k)); est < truth {
			t.Fatalf("SuMax(Sum) underestimated: est %d < truth %d", est, truth)
		}
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	for _, packed := range []bool{false, true} {
		pl := pipeline32(1, 1<<12)
		task, err := InstallBloom(pl.Group(0), 1, packet.MatchAll, packet.KeyFiveTuple, 3, packed, nil)
		if err != nil {
			t.Fatalf("InstallBloom(packed=%v): %v", packed, err)
		}
		tr := genTrace(t, 800, 5_000, 6)
		seen := sketch.NewExactMembership(packet.KeyFiveTuple)
		for i := range tr.Packets {
			pl.Process(&tr.Packets[i])
			seen.Insert(&tr.Packets[i])
		}
		for i := range tr.Packets {
			k := packet.KeyFiveTuple.Extract(&tr.Packets[i])
			if !task.ContainsKey(k) {
				t.Fatalf("packed=%v: false negative for inserted key", packed)
			}
		}
	}
}

func TestBloomPackingReducesFalsePositives(t *testing.T) {
	run := func(packed bool) float64 {
		pl := pipeline32(1, 1<<11)
		task, err := InstallBloom(pl.Group(0), 1, packet.MatchAll, packet.KeyFiveTuple, 3, packed, nil)
		if err != nil {
			t.Fatalf("InstallBloom: %v", err)
		}
		ins := genTrace(t, 3000, 3000*3, 7)
		for i := range ins.Packets {
			pl.Process(&ins.Packets[i])
		}
		inserted := sketch.NewExactMembership(packet.KeyFiveTuple)
		for i := range ins.Packets {
			inserted.Insert(&ins.Packets[i])
		}
		probe := genTrace(t, 5000, 5000, 99)
		fp, neg := 0, 0
		for i := range probe.Packets {
			k := packet.KeyFiveTuple.Extract(&probe.Packets[i])
			if inserted.Contains(&probe.Packets[i]) {
				continue
			}
			neg++
			if task.ContainsKey(k) {
				fp++
			}
		}
		if neg == 0 {
			t.Fatal("no negative probes")
		}
		return float64(fp) / float64(neg)
	}
	unpacked := run(false)
	packed := run(true)
	if packed >= unpacked {
		t.Fatalf("bit packing should cut FP rate: packed %.4f vs unpacked %.4f", packed, unpacked)
	}
}

func TestHLLCardinalityEstimate(t *testing.T) {
	pl := pipeline32(1, 1<<12) // 4096 buckets
	task, err := InstallHLL(pl.Group(0), 1, packet.MatchAll, packet.KeyFiveTuple, core.MemRange{})
	if err != nil {
		t.Fatalf("InstallHLL: %v", err)
	}
	const flows = 20_000
	tr := genTrace(t, flows, flows*2, 8)
	exact := sketch.NewExactCardinality(packet.KeyFiveTuple)
	for i := range tr.Packets {
		pl.Process(&tr.Packets[i])
		exact.AddPacket(&tr.Packets[i])
	}
	est, err := task.Estimate()
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	re := metrics.RE(float64(exact.Cardinality()), est)
	if re > 0.1 {
		t.Fatalf("HLL RE = %.3f for %d flows over 4096 buckets, want ≤ 0.1 (est %.0f, truth %d)",
			re, flows, est, exact.Cardinality())
	}
}

func TestLinearCountingEstimate(t *testing.T) {
	pl := pipeline32(1, 1<<12)
	task, err := InstallLinearCounting(pl.Group(0), 1, packet.MatchAll, packet.KeyFiveTuple, nil)
	if err != nil {
		t.Fatalf("InstallLinearCounting: %v", err)
	}
	const flows = 10_000
	tr := genTrace(t, flows, flows*2, 9)
	exact := sketch.NewExactCardinality(packet.KeyFiveTuple)
	for i := range tr.Packets {
		pl.Process(&tr.Packets[i])
		exact.AddPacket(&tr.Packets[i])
	}
	est, err := task.Estimate()
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if re := metrics.RE(float64(exact.Cardinality()), est); re > 0.1 {
		t.Fatalf("LinearCounting RE = %.3f, want ≤ 0.1 (est %.0f, truth %d)", re, est, exact.Cardinality())
	}
}

func TestBeauCoupDDoSVictimDetection(t *testing.T) {
	pl := pipeline32(1, 1<<14)
	const threshold = 512
	task, err := InstallBeauCoup(pl.Group(0), 1, packet.MatchAll,
		packet.KeyDstIP, packet.KeySrcIP, threshold, 3, nil)
	if err != nil {
		t.Fatalf("InstallBeauCoup: %v", err)
	}
	tr := genTrace(t, 3000, 60_000, 10)
	victim := packet.IPv4(10, 0, 0, 99)
	tr.InjectDDoS(victim, 2000, 2, 11)
	exact := sketch.NewExactDistinct(packet.KeyDstIP, packet.KeySrcIP)
	for i := range tr.Packets {
		pl.Process(&tr.Packets[i])
		exact.AddPacket(&tr.Packets[i])
	}
	truth := exact.Over(threshold)
	if len(truth) == 0 {
		t.Fatal("no ground-truth victims; workload broken")
	}
	universe := make(map[packet.CanonicalKey]bool)
	candidates := make([]packet.CanonicalKey, 0)
	for k := range exact.Counts() {
		universe[k] = true
		candidates = append(candidates, k)
	}
	reported := task.Reported(candidates)
	cls := metrics.Classify(universe, truth, reported)
	if f1 := cls.F1(); f1 < 0.6 {
		t.Fatalf("BeauCoup DDoS F1 = %.3f (tp=%d fp=%d fn=%d), want ≥ 0.6", f1, cls.TP, cls.FP, cls.FN)
	}
	// The injected victim must be detected.
	vk := packet.KeyDstIP.Extract(&packet.Packet{DstIP: victim})
	if !reported[vk] {
		t.Fatalf("injected victim (distinct=%d) not reported; coupons=%d/%d",
			exact.Count(vk), task.CollectedCoupons(vk), task.Cfg.Collect)
	}
}

func TestSuMaxMaxTracksQueueMaxima(t *testing.T) {
	pl := pipeline32(1, 1<<12)
	task, err := InstallSuMaxMax(pl.Group(0), 1, packet.MatchAll, packet.KeyIPPair,
		core.QueueLength(), 3, nil)
	if err != nil {
		t.Fatalf("InstallSuMaxMax: %v", err)
	}
	tr := genTrace(t, 1000, 40_000, 12)
	exact := sketch.NewExactMax(packet.KeyIPPair)
	for i := range tr.Packets {
		pl.Process(&tr.Packets[i])
		exact.Add(&tr.Packets[i], tr.Packets[i].QueueLength)
	}
	under := 0
	for k, truth := range exact.Values() {
		est := uint64(task.EstimateKey(k))
		if est < truth {
			under++
		}
	}
	if under > 0 {
		t.Fatalf("SuMax(Max) underestimated %d flows; the row minimum must still dominate each flow's own max", under)
	}
}

func TestTowerEstimatesSmallFlowsExactly(t *testing.T) {
	pl := pipeline32(1, 1<<14)
	task, err := InstallTower(pl.Group(0), 1, packet.MatchAll, packet.KeyFiveTuple,
		[]int{16, 8, 4}, nil)
	if err != nil {
		t.Fatalf("InstallTower: %v", err)
	}
	tr := genTrace(t, 1500, 30_000, 13)
	exact := sketch.NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		pl.Process(&tr.Packets[i])
		exact.AddPacket(&tr.Packets[i])
	}
	var are float64
	n := 0
	for k, truth := range exact.Counts() {
		est := uint64(task.EstimateKey(k))
		are += math.Abs(float64(est)-float64(truth)) / float64(truth)
		n++
	}
	if are/float64(n) > 0.3 {
		t.Fatalf("Tower ARE %.3f too high", are/float64(n))
	}
}

func TestCounterBraidsRecoversCounts(t *testing.T) {
	pl := pipeline32(1, 1<<14)
	task, err := InstallCounterBraids(pl.Group(0), 1, packet.MatchAll, packet.KeyFiveTuple,
		8, 32, nil)
	if err != nil {
		t.Fatalf("InstallCounterBraids: %v", err)
	}
	tr := genTrace(t, 300, 60_000, 14)
	exact := sketch.NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		pl.Process(&tr.Packets[i])
		exact.AddPacket(&tr.Packets[i])
	}
	exactCount, n := 0, 0
	for k, truth := range exact.Counts() {
		est := task.EstimateKey(k)
		// Saturating layers can only inflate on collision, never lose
		// counts: the braid must not underestimate.
		if est < truth {
			t.Fatalf("CounterBraids underestimated: est %d < truth %d", est, truth)
		}
		if est == truth {
			exactCount++
		}
		n++
	}
	// The braid is exact for every non-colliding flow; at 300 flows in
	// 16K buckets collisions touch only a handful.
	if frac := float64(exactCount) / float64(n); frac < 0.9 {
		t.Fatalf("CounterBraids exact for only %.1f%% of flows, want ≥ 90%%", frac*100)
	}
}

func TestMaxIntervalTracksInterArrivals(t *testing.T) {
	pl := pipeline32(3, 1<<14)
	task, err := InstallMaxInterval([3]*core.Group{pl.Group(0), pl.Group(1), pl.Group(2)},
		1, packet.MatchAll, packet.KeyFiveTuple, nil)
	if err != nil {
		t.Fatalf("InstallMaxInterval: %v", err)
	}
	tr := genTrace(t, 300, 30_000, 15)
	exact := sketch.NewExactMaxInterval(packet.KeyFiveTuple)
	for i := range tr.Packets {
		pl.Process(&tr.Packets[i])
		exact.AddPacket(&tr.Packets[i])
	}
	// With generous memory the estimate should be close for most flows.
	var errSum float64
	n := 0
	for k, truth := range exact.Values() {
		if truth == 0 {
			continue
		}
		est := uint64(task.EstimateKey(k)) * 1000 // µs → ns
		errSum += math.Abs(float64(est)-float64(truth)) / float64(truth)
		n++
	}
	if n == 0 {
		t.Fatal("no multi-packet flows")
	}
	if are := errSum / float64(n); are > 0.2 {
		t.Fatalf("max-interval ARE %.3f too high with 16K buckets for 300 flows", are)
	}
}

func TestProbabilisticExecutionScalesCounts(t *testing.T) {
	pl := pipeline32(1, 1<<14)
	task, err := InstallCMS(pl.Group(0), 1, packet.MatchAll, packet.KeyFiveTuple, core.Const(1), 3, nil)
	if err != nil {
		t.Fatalf("InstallCMS: %v", err)
	}
	for _, loc := range pl.Locate(1) {
		loc.Rule.Prob = 0.5
	}
	p := packet.Packet{SrcIP: 42, DstIP: 43, SrcPort: 1, DstPort: 2, Proto: 6}
	const total = 20_000
	for i := 0; i < total; i++ {
		pl.Process(&p)
	}
	got := float64(task.EstimateKey(packet.KeyFiveTuple.Extract(&p)))
	if got < total*0.45 || got > total*0.55 {
		t.Fatalf("p=0.5 sampling counted %.0f of %d, want ≈ half", got, total)
	}
}

func TestSubPartRotationDecorrelatesRows(t *testing.T) {
	// Ablation guard: rows using different sub-parts of one compressed key
	// must index different buckets for most keys.
	pl := pipeline32(1, 1<<14)
	task, err := InstallCMS(pl.Group(0), 1, packet.MatchAll, packet.KeyFiveTuple, core.Const(1), 3, nil)
	if err != nil {
		t.Fatalf("InstallCMS: %v", err)
	}
	tr := genTrace(t, 2000, 2000, 16)
	same := 0
	for i := range tr.Packets {
		k := packet.KeyFiveTuple.Extract(&tr.Packets[i])
		i0 := rowIndex(task.Group, task.Unit, 0, k, task.Rows[0], task.Method)
		i1 := rowIndex(task.Group, task.Unit, 1, k, task.Rows[1], task.Method)
		if i0 == i1 {
			same++
		}
	}
	if float64(same)/float64(len(tr.Packets)) > 0.01 {
		t.Fatalf("rows 0 and 1 collide on %d/%d keys; sub-part selection broken", same, len(tr.Packets))
	}
}
