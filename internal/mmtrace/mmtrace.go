// Package mmtrace is FlyMon's zero-copy trace-ingestion layer: it maps
// FLYMTRC trace files into memory and hands the compiled engine views into
// the mapped buffer instead of materializing every packet up front.
//
// The legacy path (trace.Reader → ReadAll → []packet.Packet →
// ProcessParallel) touches every byte three times — a bufio copy, a decode
// into a freshly grown slice the size of the whole trace, and the engine's
// walk over that slice — and its allocation of hundreds of megabytes per
// replay is pure ingest overhead. Here a trace is mmapped (with a portable
// io.ReaderAt fallback when mapping is unavailable), records are exposed as
// lazy FrameViews over the mapped bytes, and batch decoding goes straight
// from the page cache into small per-worker scratch slabs that stay
// cache-resident — no intermediate buffer, no per-replay allocation, no GC
// pressure proportional to trace size.
//
// On top of the mapping, a multi-producer/multi-consumer Ring (ring.go)
// distributes frame ranges to the engine's persistent worker pool, and a
// Replayer (replay.go) wires the two together as a core.BatchSource so
// replay saturates the pool without per-batch channel or allocation
// overhead.
package mmtrace

import (
	"fmt"
	"io"
	"os"

	"flymon/internal/packet"
	"flymon/internal/trace"
)

// Trace is an immutable, random-access view of one FLYMTRC trace: the
// record region of an mmapped file (or of a buffer the fallback path read).
// All methods are safe for concurrent readers.
type Trace struct {
	// recs is the record region: whole records only, directly aliasing the
	// mapped file when mapped is true.
	recs   []byte
	frames int
	// raw is the full mapping handed back to munmap (nil when not mapped).
	raw    []byte
	mapped bool
	// truncErr records a file that ends mid-record: the complete frames
	// remain readable; DecodeBatch surfaces the error at the end of the
	// stream, mirroring trace.Reader.
	truncErr error
}

// Open maps the trace file at path. On platforms (or filesystems) where
// mmap fails it falls back to reading the file through io.ReaderAt into
// memory, so callers never need to care which path they got — Mapped
// reports it for diagnostics.
//
// A file that ends in the middle of a record still opens: Open returns the
// Trace over the complete frames together with a *trace.TruncatedError
// (matching io.ErrUnexpectedEOF) naming the truncated record. Callers that
// demand integrity treat the error as fatal; tools like tracedump warn and
// keep the readable prefix.
func Open(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mmtrace: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("mmtrace: %w", err)
	}
	size := st.Size()
	if data, err := mapFile(f, size); err == nil {
		// The mapping outlives the descriptor; the file can be closed now.
		f.Close()
		t, terr := newTrace(data, true)
		if t == nil {
			unmapFile(data)
			return nil, terr
		}
		return t, terr
	}
	defer f.Close()
	return OpenReaderAt(f, size)
}

// OpenReaderAt is the portable fallback: it reads a trace of the given size
// from r into memory and serves frames from that buffer. It costs one
// allocation the size of the trace — the price of not having mmap — but
// every downstream path (FrameView, DecodeBatch, the Ring) behaves
// identically to the mapped case.
func OpenReaderAt(r io.ReaderAt, size int64) (*Trace, error) {
	if size < 0 || size > int64(maxMapBytes) {
		return nil, fmt.Errorf("mmtrace: trace size %d out of range", size)
	}
	data := make([]byte, size)
	if _, err := readFullAt(r, data); err != nil {
		return nil, fmt.Errorf("mmtrace: reading trace: %w", err)
	}
	return NewFromBytes(data)
}

// NewFromBytes builds a Trace over an in-memory encoding (header included).
// The buffer must not be mutated while the Trace is in use.
func NewFromBytes(data []byte) (*Trace, error) {
	return newTrace(data, false)
}

func newTrace(data []byte, mapped bool) (*Trace, error) {
	if err := trace.ValidateHeader(data); err != nil {
		return nil, err
	}
	body := data[trace.HeaderSize:]
	frames := len(body) / trace.RecordSize
	t := &Trace{
		recs:   body[:frames*trace.RecordSize],
		frames: frames,
		raw:    data,
		mapped: mapped,
	}
	if len(body)%trace.RecordSize != 0 {
		t.truncErr = &trace.TruncatedError{Record: frames}
		return t, t.truncErr
	}
	return t, nil
}

// maxMapBytes bounds a single trace mapping; far above any real trace, it
// only guards against corrupt sizes on 32-bit builds.
const maxMapBytes = 1 << 46

// readFullAt fills b from r starting at offset 0, tolerating short reads.
func readFullAt(r io.ReaderAt, b []byte) (int, error) {
	n := 0
	for n < len(b) {
		m, err := r.ReadAt(b[n:], int64(n))
		n += m
		if err == io.EOF && n == len(b) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Frames returns the number of complete records in the trace.
func (t *Trace) Frames() int { return t.frames }

// Mapped reports whether the trace is served by an mmap (false = the
// io.ReaderAt fallback buffered it in memory).
func (t *Trace) Mapped() bool { return t.mapped }

// Bytes returns the size of the record region in bytes.
func (t *Trace) Bytes() int { return len(t.recs) }

// Err returns the deferred truncation error (nil for a well-formed trace).
func (t *Trace) Err() error { return t.truncErr }

// At returns a lazy view of frame i. It aliases the mapped buffer: no
// bytes are copied or decoded until a field accessor runs.
func (t *Trace) At(i int) FrameView {
	return FrameView(t.recs[i*trace.RecordSize : (i+1)*trace.RecordSize])
}

// Span returns the raw record bytes of frames [lo, hi) — hi-lo contiguous
// RecordSize windows aliasing the mapped buffer. The FrameView-native
// engine walks spans directly (core.Snapshot.ProcessFrames), so the only
// per-frame memory traffic is the fields the compiled rules actually load.
func (t *Trace) Span(lo, hi int) []byte {
	return t.recs[lo*trace.RecordSize : hi*trace.RecordSize]
}

// DecodeBatch decodes up to len(dst) frames starting at frame `start` into
// dst, reusing the caller-owned scratch, and returns the count. At the end
// of the trace it returns io.EOF — or the *trace.TruncatedError when the
// file ended mid-record — matching trace.Reader's streaming contract so the
// two paths are drop-in interchangeable.
func (t *Trace) DecodeBatch(start int, dst []packet.Packet) (int, error) {
	if start >= t.frames {
		return 0, t.eof()
	}
	n := t.frames - start
	if n > len(dst) {
		n = len(dst)
	}
	t.DecodeRange(start, dst[:n])
	if n < len(dst) {
		// The caller asked past the end: surface the stream end now, with
		// the complete frames (mirrors Reader.ReadBatch's truncation case).
		if t.truncErr != nil {
			return n, t.truncErr
		}
		return n, nil
	}
	return n, nil
}

// DecodeRange decodes exactly len(dst) frames starting at `start` — the
// replay hot path, with bounds established once per span rather than per
// record. start and len(dst) must lie within Frames.
func (t *Trace) DecodeRange(start int, dst []packet.Packet) {
	b := t.recs[start*trace.RecordSize:]
	for i := range dst {
		trace.DecodeRecord(b[i*trace.RecordSize:], &dst[i])
	}
}

func (t *Trace) eof() error {
	if t.truncErr != nil {
		return t.truncErr
	}
	return io.EOF
}

// Close releases the mapping (a no-op for in-memory traces). The Trace and
// every FrameView derived from it are invalid afterwards.
func (t *Trace) Close() error {
	if !t.mapped || t.raw == nil {
		t.raw, t.recs = nil, nil
		return nil
	}
	raw := t.raw
	t.raw, t.recs, t.mapped = nil, nil, false
	return unmapFile(raw)
}
