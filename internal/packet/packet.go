// Package packet defines the packet and flow-key model shared by the FlyMon
// data plane, the sketch baselines, and the traffic generators.
//
// A Packet carries the candidate key set FlyMon operates on — the 5-tuple
// plus an ingress timestamp — together with the standard metadata the paper
// uses as attribute parameters (packet size, queue length, queue delay).
//
// Flow keys are value types (inspired by gopacket's Endpoint/Flow): a KeySpec
// describes which header fields, and which prefix of each, form the key of a
// measurement task; Extract produces a fixed-size canonical byte encoding
// suitable for hashing and for use as a map key.
package packet

import (
	"fmt"
	"strings"
)

// Packet is a single observed packet. All fields are plain values so packets
// can be generated, copied, and replayed without allocation.
type Packet struct {
	SrcIP   uint32 // IPv4 source address, host byte order
	DstIP   uint32 // IPv4 destination address, host byte order
	SrcPort uint16
	DstPort uint16
	Proto   uint8

	// Size is the wire length of the packet in bytes.
	Size uint32

	// TimestampNs is the ingress timestamp in nanoseconds since the start
	// of the trace.
	TimestampNs uint64

	// QueueLength and QueueDelayNs are standard metadata exposed by the
	// switch ingress/egress pipeline; FlyMon tasks may use them as
	// attribute parameters (e.g. Max(QueueLength) for congestion).
	QueueLength  uint32
	QueueDelayNs uint32
}

// Field identifies one header field of the candidate key set.
type Field uint8

// Candidate key fields. The paper's prototype sets the candidate key set to
// the 5-tuple together with a timestamp (§5, Setting).
const (
	FieldSrcIP Field = iota
	FieldDstIP
	FieldSrcPort
	FieldDstPort
	FieldProto
	FieldTimestamp

	numFields
)

// NumFields is the number of distinct candidate key fields.
const NumFields = int(numFields)

// Bits returns the width of the field in bits.
func (f Field) Bits() int {
	switch f {
	case FieldSrcIP, FieldDstIP, FieldTimestamp:
		return 32
	case FieldSrcPort, FieldDstPort:
		return 16
	case FieldProto:
		return 8
	default:
		return 0
	}
}

// String implements fmt.Stringer.
func (f Field) String() string {
	switch f {
	case FieldSrcIP:
		return "SrcIP"
	case FieldDstIP:
		return "DstIP"
	case FieldSrcPort:
		return "SrcPort"
	case FieldDstPort:
		return "DstPort"
	case FieldProto:
		return "Proto"
	case FieldTimestamp:
		return "Timestamp"
	default:
		return fmt.Sprintf("Field(%d)", uint8(f))
	}
}

// value returns the field value of p, left-aligned in a uint32.
func (p *Packet) value(f Field) uint32 {
	switch f {
	case FieldSrcIP:
		return p.SrcIP
	case FieldDstIP:
		return p.DstIP
	case FieldSrcPort:
		return uint32(p.SrcPort)
	case FieldDstPort:
		return uint32(p.DstPort)
	case FieldProto:
		return uint32(p.Proto)
	case FieldTimestamp:
		return uint32(p.TimestampNs / 1000) // microsecond granularity
	default:
		return 0
	}
}

// FieldValue returns the raw value of field f in packet p.
func (p *Packet) FieldValue(f Field) uint32 { return p.value(f) }

// KeyPart selects a field and an optional prefix length. PrefixBits of zero
// means the full field width; for example {FieldSrcIP, 24} is SrcIP/24.
type KeyPart struct {
	Field      Field
	PrefixBits int
}

// EffectiveBits returns the number of significant bits the part contributes.
func (kp KeyPart) EffectiveBits() int {
	w := kp.Field.Bits()
	if kp.PrefixBits <= 0 || kp.PrefixBits > w {
		return w
	}
	return kp.PrefixBits
}

// mask returns the value mask implied by the prefix, aligned to the field's
// most-significant bits (CIDR-style).
func (kp KeyPart) mask() uint32 {
	w := kp.Field.Bits()
	eff := kp.EffectiveBits()
	if eff >= 32 {
		return ^uint32(0)
	}
	return (^uint32(0) << (w - eff)) & widthMask(w)
}

func widthMask(bits int) uint32 {
	if bits >= 32 {
		return ^uint32(0)
	}
	return (1 << bits) - 1
}

// String implements fmt.Stringer.
func (kp KeyPart) String() string {
	if kp.PrefixBits > 0 && kp.PrefixBits < kp.Field.Bits() {
		return fmt.Sprintf("%s/%d", kp.Field, kp.PrefixBits)
	}
	return kp.Field.String()
}

// KeySpec describes the flow key of a measurement task as an ordered list of
// key parts. The canonical encodings of two KeySpecs are comparable only if
// the specs are equal.
type KeySpec struct {
	Parts []KeyPart
}

// Common key specs.
var (
	KeySrcIP     = KeySpec{Parts: []KeyPart{{Field: FieldSrcIP}}}
	KeyDstIP     = KeySpec{Parts: []KeyPart{{Field: FieldDstIP}}}
	KeyIPPair    = KeySpec{Parts: []KeyPart{{Field: FieldSrcIP}, {Field: FieldDstIP}}}
	KeyFiveTuple = KeySpec{Parts: []KeyPart{
		{Field: FieldSrcIP}, {Field: FieldDstIP},
		{Field: FieldSrcPort}, {Field: FieldDstPort},
		{Field: FieldProto},
	}}
)

// NewKeySpec builds a KeySpec from full-width fields.
func NewKeySpec(fields ...Field) KeySpec {
	parts := make([]KeyPart, len(fields))
	for i, f := range fields {
		parts[i] = KeyPart{Field: f}
	}
	return KeySpec{Parts: parts}
}

// Bits returns the total significant bits of the key.
func (ks KeySpec) Bits() int {
	total := 0
	for _, p := range ks.Parts {
		total += p.EffectiveBits()
	}
	return total
}

// String implements fmt.Stringer.
func (ks KeySpec) String() string {
	if len(ks.Parts) == 0 {
		return "<empty>"
	}
	names := make([]string, len(ks.Parts))
	for i, p := range ks.Parts {
		names[i] = p.String()
	}
	return strings.Join(names, "-")
}

// Equal reports whether two key specs select the same key.
func (ks KeySpec) Equal(other KeySpec) bool {
	if len(ks.Parts) != len(other.Parts) {
		return false
	}
	for i := range ks.Parts {
		if ks.Parts[i].Field != other.Parts[i].Field ||
			ks.Parts[i].EffectiveBits() != other.Parts[i].EffectiveBits() {
			return false
		}
	}
	return true
}

// FieldMask returns, per candidate field, the value mask this spec applies
// (zero when the field is not part of the key). This is the representation
// dynamic hash units consume.
func (ks KeySpec) FieldMask() [NumFields]uint32 {
	var m [NumFields]uint32
	for _, p := range ks.Parts {
		m[p.Field] |= p.mask()
	}
	return m
}

// MaxKeyBytes is the canonical encoding size: every candidate field at full
// width (32+32+16+16+8+32 bits = 17 bytes), padded to 20 for alignment.
const MaxKeyBytes = 20

// CanonicalKey is the fixed-size canonical byte encoding of an extracted
// flow key, usable directly as a map key and as hash-unit input.
type CanonicalKey [MaxKeyBytes]byte

// Extract encodes the masked candidate fields of p into a CanonicalKey.
// Fields absent from the spec encode as zero; prefixes zero the low bits.
// The layout is fixed (SrcIP, DstIP, SrcPort, DstPort, Proto, Timestamp) so
// that the same bytes feed every hash unit, mirroring the data plane where
// the whole candidate key set is wired into the hash units and masks select
// the live portion.
func (ks KeySpec) Extract(p *Packet) CanonicalKey {
	return ExtractMasked(p, ks.FieldMask())
}

// ExtractMasked encodes the candidate fields of p under a per-field value
// mask into a CanonicalKey. This is the primitive the dynamic hashing layer
// uses: the mask is the runtime-installed hash-mask rule.
func ExtractMasked(p *Packet, mask [NumFields]uint32) CanonicalKey {
	var k CanonicalKey
	put32(k[0:4], p.SrcIP&mask[FieldSrcIP])
	put32(k[4:8], p.DstIP&mask[FieldDstIP])
	put16(k[8:10], uint16(uint32(p.SrcPort)&mask[FieldSrcPort]))
	put16(k[10:12], uint16(uint32(p.DstPort)&mask[FieldDstPort]))
	k[12] = uint8(uint32(p.Proto) & mask[FieldProto])
	put32(k[13:17], p.value(FieldTimestamp)&mask[FieldTimestamp])
	return k
}

func put32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func put16(b []byte, v uint16) {
	b[0] = byte(v >> 8)
	b[1] = byte(v)
}

// IPv4 assembles a host-order IPv4 address from dotted-quad octets.
func IPv4(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}

// FormatIPv4 renders a host-order IPv4 address in dotted-quad form.
func FormatIPv4(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}
