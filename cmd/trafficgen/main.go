// Command trafficgen synthesizes packet traces in FlyMon's binary trace
// format: Zipf-distributed flow sizes over a configurable flow population,
// with optional DDoS, port-scan, and spike injections — the synthetic stand-
// in for the WIDE/MAWI trace the paper evaluates on.
//
// Usage:
//
//	trafficgen -out trace.fmt -flows 60000 -packets 2000000 \
//	           [-zipf 1.2] [-seed 1] [-duration-ms 15000] \
//	           [-ddos-victim 10.0.0.9 -ddos-attackers 2000] \
//	           [-spike-flows 30000]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"flymon/internal/cli"
	"flymon/internal/trace"
)

func main() {
	out := flag.String("out", "trace.fmt", "output file")
	flows := flag.Int("flows", 10000, "distinct flows")
	packets := flag.Int("packets", 500000, "packets")
	zipf := flag.Float64("zipf", 1.2, "Zipf skew")
	seed := flag.Int64("seed", 1, "seed")
	durationMs := flag.Int("duration-ms", 15000, "trace duration (ms)")
	ddosVictim := flag.String("ddos-victim", "", "inject DDoS toward this IPv4 victim")
	ddosAttackers := flag.Int("ddos-attackers", 2000, "distinct attacker sources")
	scanSrc := flag.String("scan-src", "", "inject a port scan from this IPv4 source")
	scanPorts := flag.Int("scan-ports", 1000, "distinct ports probed")
	spikeFlows := flag.Int("spike-flows", 0, "inject a mid-trace spike of this many flows")
	flag.Parse()

	tr := trace.Generate(trace.Config{
		Flows:      *flows,
		Packets:    *packets,
		ZipfS:      *zipf,
		Seed:       *seed,
		DurationNs: uint64(*durationMs) * 1e6,
	})
	if *ddosVictim != "" {
		ip, err := cli.ParseIPv4(*ddosVictim)
		if err != nil {
			log.Fatalf("trafficgen: %v", err)
		}
		tr.InjectDDoS(ip, *ddosAttackers, 2, *seed+1)
	}
	if *scanSrc != "" {
		ip, err := cli.ParseIPv4(*scanSrc)
		if err != nil {
			log.Fatalf("trafficgen: %v", err)
		}
		tr.InjectPortScan(ip, ip^0xFFFF, *scanPorts, *seed+2)
	}
	if *spikeFlows > 0 {
		tr.InjectSpike(*spikeFlows, 3, 0.3, 0.75, *seed+3)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("trafficgen: %v", err)
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		log.Fatalf("trafficgen: %v", err)
	}
	if err := w.WriteTrace(tr); err != nil {
		log.Fatalf("trafficgen: %v", err)
	}
	if err := w.Flush(); err != nil {
		log.Fatalf("trafficgen: %v", err)
	}
	fmt.Printf("trafficgen: wrote %d packets to %s\n", w.Count(), *out)
}
