package trace

import (
	"bytes"
	"testing"
)

// FuzzReader hardens the binary trace parser against arbitrary input: it
// must return errors, never panic or loop, and any stream it accepts must
// round-trip.
func FuzzReader(f *testing.F) {
	// Seed with a valid two-packet trace and a few corruptions.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	tr := Generate(Config{Flows: 2, Packets: 2, Seed: 1})
	_ = w.WriteTrace(tr)
	_ = w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("FLYMTRC\x01 garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected header: fine
		}
		got, err := r.ReadAll()
		if err != nil {
			return // rejected body: fine
		}
		// Accepted: re-encoding must reproduce the record bytes.
		var out bytes.Buffer
		w, err := NewWriter(&out)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteTrace(got); err != nil || w.Flush() != nil {
			t.Fatal("re-encoding an accepted trace failed")
		}
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatal("accepted trace does not round-trip")
		}
	})
}
