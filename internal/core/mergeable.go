package core

import "flymon/internal/dataplane"

// This file is the compiler's mergeability analysis: the Compile-time
// decision of whether a rule's stateful operation may run on a private
// per-worker register lane (dataplane.ShardApply, plain stores) and be
// reduced at query time, or must stay on the shared CAS path. The analysis
// is conservative — a rule shards only when lane-then-merge is provably
// bit-identical to sequential execution AND nothing in the snapshot can
// observe the lane-local result bus — so correctness never depends on the
// execution mode.

// busConsumer reports whether the rule reads the cross-CMU result bus
// (PrevResult/PrevOld/PrevNewFlow/RunningMin). Under sharding a producer's
// bus values are lane-local — a Bloom CMU would classify a flow as "new"
// once per worker — so one consumer anywhere in the snapshot pins every
// rule to the shared CAS path, where the bus carries globally-witnessed
// read-modify-writes.
func busConsumer(r *Rule) bool {
	if r.ChainMin || r.Prep.Kind == TransformIntervalSub {
		return true
	}
	switch r.P1.Kind {
	case ParamPrevResult, ParamPrevOld:
		return true
	}
	switch r.P2.Kind {
	case ParamPrevResult, ParamPrevOld:
		return true
	}
	return false
}

// constP2 resolves the rule's second parameter to a compile-time constant,
// reporting false for dynamic sources. ParamMaxValue folds to ^0 exactly
// as compileParam does.
func constP2(r *Rule) (uint32, bool) {
	switch r.P2.Kind {
	case ParamConst:
		return r.P2.Value, true
	case ParamMaxValue:
		return ^uint32(0), true
	default:
		return 0, false
	}
}

// shardEligible reports whether the rule's op+condition is exactly
// mergeable (dataplane.MergeValues' exactness argument), given the bucket
// mask of the register it targets:
//
//   - Cond-ADD merges iff its threshold is the saturation bound (p2&mask
//     == mask, i.e. the unconditional ADD every frequency sketch uses) and
//     the preparation stage cannot rewrite p2 below it. A lower threshold
//     conditions the update on global state a lane cannot see.
//   - MAX always merges: the lane maxima's max is the stream's max.
//   - AND-OR merges only when the OR branch is guaranteed — p2 a nonzero
//     constant, or a transform (coupon, bit-select) that forces p2=1. The
//     AND branch reads the bucket's current global value.
//   - XOR always merges (abelian group, identity 0).
//
// Rules that produce bus state consumed elsewhere are excluded by the
// caller's snapshot-wide busConsumer scan; DetectNew and ChainMin
// producers are rejected here as well since their semantics are defined in
// terms of globally-witnessed old values.
func shardEligible(r *Rule, mask uint32) bool {
	if r.ChainMin || r.DetectNew || busConsumer(r) {
		return false
	}
	switch r.Op {
	case dataplane.OpMax, dataplane.OpXor:
		return true
	case dataplane.OpCondAdd:
		p2, ok := constP2(r)
		if !ok || p2&mask != mask {
			return false
		}
		// The preparation stage must leave p2 at the bound: coupon and
		// bit-select rewrite p2 to 1, turning the add back into a
		// threshold condition.
		switch r.Prep.Kind {
		case TransformNone, TransformLZRank, TransformZeroGate:
			return true
		}
		return false
	case dataplane.OpAndOr:
		switch r.Prep.Kind {
		case TransformCoupon, TransformBitSelect:
			return true // both force p2 = 1: always the OR branch
		case TransformNone:
			p2, ok := constP2(r)
			return ok && p2 != 0
		}
		return false
	}
	return false
}

// EnableSharding allocates n private lanes on every register of the
// pipeline (regular and spliced groups), arming the sharded execution mode
// for the next Compile. n <= 1 disables it. Call before traffic, or
// quiesced with shards drained.
func (pl *Pipeline) EnableSharding(n int) {
	for _, g := range pl.allGroups() {
		for i := 0; i < g.CMUs(); i++ {
			g.CMU(i).Register().EnableSharding(n)
		}
	}
}

// DrainShards folds every register's per-worker lanes into the shared
// buckets, partition by partition under each rule's merge op, and returns
// the number of nonzero lane buckets folded. Registers whose shard
// cursor has not moved since their last drain are skipped, so repeated
// query-path drains between batches cost one counter load per register.
// Sharded writers must be quiesced by the caller (the controller holds its
// batch gate); the fold itself is CAS-safe against single-packet writers
// and atomic readers. Frozen rules are drained too — a frozen partition
// must expose its full pre-freeze state to readout.
func (pl *Pipeline) DrainShards() int {
	total := 0
	for _, g := range pl.allGroups() {
		for i := 0; i < g.CMUs(); i++ {
			cmu := g.CMU(i)
			reg := cmu.Register()
			if !reg.ShardsDirty() {
				continue
			}
			for _, r := range cmu.Rules() {
				total += reg.DrainRange(r.Op, r.Mem.Base, r.Mem.Buckets)
			}
			reg.MarkDrained()
		}
	}
	return total
}
