package controlplane

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"flymon/internal/packet"
)

// --- Buddy allocator ---

func TestBuddyAllocFullRegister(t *testing.T) {
	b := NewBuddyAllocator(1024, 32)
	base, got, err := b.Alloc(1024)
	if err != nil || base != 0 || got != 1024 {
		t.Fatalf("whole-register alloc = (%d,%d,%v)", base, got, err)
	}
	if _, _, err := b.Alloc(32); err == nil {
		t.Fatal("full allocator must refuse")
	}
	if err := b.Free(0); err != nil {
		t.Fatal(err)
	}
	if b.FreeBuckets() != 1024 {
		t.Fatal("free must restore capacity")
	}
}

func TestBuddyAllocRoundsUp(t *testing.T) {
	b := NewBuddyAllocator(1024, 32)
	_, got, err := b.Alloc(33)
	if err != nil || got != 64 {
		t.Fatalf("alloc(33) granted %d, want 64", got)
	}
	_, got2, _ := b.Alloc(10) // below min block
	if got2 != 32 {
		t.Fatalf("alloc(10) granted %d, want min block 32", got2)
	}
}

func TestBuddyAllocCoalesces(t *testing.T) {
	b := NewBuddyAllocator(256, 32)
	bases := make([]int, 0, 8)
	for i := 0; i < 8; i++ {
		base, _, err := b.Alloc(32)
		if err != nil {
			t.Fatal(err)
		}
		bases = append(bases, base)
	}
	if b.LargestFree() != 0 {
		t.Fatal("allocator should be exhausted")
	}
	for _, base := range bases {
		if err := b.Free(base); err != nil {
			t.Fatal(err)
		}
	}
	if b.LargestFree() != 256 {
		t.Fatalf("buddies failed to coalesce: largest free %d", b.LargestFree())
	}
}

func TestBuddyAllocFreeValidation(t *testing.T) {
	b := NewBuddyAllocator(256, 32)
	if err := b.Free(0); err == nil {
		t.Fatal("freeing unallocated base must fail")
	}
	base, _, _ := b.Alloc(64)
	if err := b.Free(base); err != nil {
		t.Fatal(err)
	}
	if err := b.Free(base); err == nil {
		t.Fatal("double free must fail")
	}
}

func TestBuddyAllocOversized(t *testing.T) {
	b := NewBuddyAllocator(256, 32)
	if _, _, err := b.Alloc(512); err == nil {
		t.Fatal("oversized request must fail")
	}
	if _, _, err := b.Alloc(0); err == nil {
		t.Fatal("zero request must fail")
	}
}

func TestBuddyAllocationsDisjointProperty(t *testing.T) {
	// Random alloc/free interleavings keep allocations aligned, in-range
	// and pairwise disjoint.
	f := func(ops []uint16) bool {
		b := NewBuddyAllocator(4096, 128)
		type alloc struct{ base, size int }
		live := map[int]alloc{}
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				for base := range live {
					if b.Free(base) != nil {
						return false
					}
					delete(live, base)
					break
				}
				continue
			}
			want := int(op%4000) + 1
			base, got, err := b.Alloc(want)
			if err != nil {
				continue // exhausted is fine
			}
			if got < want && want <= 4096 && got < 128 {
				return false
			}
			if base%got != 0 || base+got > 4096 {
				return false
			}
			for _, a := range live {
				if base < a.base+a.size && a.base < base+got {
					return false // overlap
				}
			}
			live[base] = alloc{base, got}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBuddyInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two size must panic")
		}
	}()
	NewBuddyAllocator(1000, 32)
}

// --- Memory modes ---

func TestMemoryModes(t *testing.T) {
	const min, max = 2048, 65536
	if got := Accurate.PartitionFor(5000, min, max); got != 8192 {
		t.Fatalf("accurate 5000 → %d, want 8192", got)
	}
	if got := Efficient.PartitionFor(5000, min, max); got != 4096 {
		t.Fatalf("efficient 5000 → %d, want 4096 (nearest in log space)", got)
	}
	if got := Efficient.PartitionFor(7000, min, max); got != 8192 {
		t.Fatalf("efficient 7000 → %d, want 8192", got)
	}
	if got := Accurate.PartitionFor(1, min, max); got != min {
		t.Fatal("requests clamp to the minimum partition")
	}
	if got := Accurate.PartitionFor(1<<20, min, max); got != max {
		t.Fatal("requests clamp to the register size")
	}
	if Accurate.String() != "accurate" || Efficient.String() != "efficient" {
		t.Fatal("mode names wrong")
	}
}

func TestAccurateNeverUnderallocatesProperty(t *testing.T) {
	f := func(req uint16) bool {
		got := Accurate.PartitionFor(int(req), 32, 65536)
		return got >= int(req) || got == 65536
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- Spec validation & compilation ---

func validSpec() TaskSpec {
	return TaskSpec{
		Name: "t", Key: packet.KeyFiveTuple,
		Attribute: AttrFrequency, MemBuckets: 1024,
	}
}

func TestTaskSpecValidate(t *testing.T) {
	good := validSpec()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*TaskSpec){
		func(s *TaskSpec) { s.Name = "" },
		func(s *TaskSpec) { s.MemBuckets = 0 },
		func(s *TaskSpec) { s.D = 4 },
		func(s *TaskSpec) { s.Prob = 1.5 },
		func(s *TaskSpec) { s.Attribute = AttrDistinct }, // key set but no flow-key param
		func(s *TaskSpec) {
			s.Attribute = AttrExistence // existence needs flow-key param
		},
		func(s *TaskSpec) {
			s.Param = ParamSpec{Kind: ParamFlowKey, Key: packet.KeySrcIP} // frequency can't take one
		},
	}
	for i, mutate := range bad {
		s := validSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d must fail validation", i)
		}
	}
}

func TestChooseAlgorithm(t *testing.T) {
	cases := []struct {
		spec TaskSpec
		want Algorithm
	}{
		{TaskSpec{Attribute: AttrFrequency}, AlgCMS},
		{TaskSpec{Attribute: AttrDistinct, Key: packet.KeyDstIP,
			Param: ParamSpec{Kind: ParamFlowKey, Key: packet.KeySrcIP}}, AlgBeauCoup},
		{TaskSpec{Attribute: AttrDistinct,
			Param: ParamSpec{Kind: ParamFlowKey, Key: packet.KeyFiveTuple}}, AlgHLL},
		{TaskSpec{Attribute: AttrExistence,
			Param: ParamSpec{Kind: ParamFlowKey, Key: packet.KeyFiveTuple}}, AlgBloom},
		{TaskSpec{Attribute: AttrMax, Param: ParamSpec{Kind: ParamQueueLength}}, AlgSuMaxMax},
		{TaskSpec{Attribute: AttrMax, Param: ParamSpec{Kind: ParamPacketInterval}}, AlgMaxInterval},
		{TaskSpec{Attribute: AttrFrequency, Algorithm: AlgTower}, AlgTower}, // pin wins
	}
	for i, c := range cases {
		if got := c.spec.ChooseAlgorithm(); got != c.want {
			t.Errorf("case %d: ChooseAlgorithm = %s, want %s", i, got, c.want)
		}
	}
}

func TestAlgorithmGroupsNeeded(t *testing.T) {
	if AlgCMS.GroupsNeeded(3) != 1 {
		t.Error("CMS fits one group")
	}
	if AlgSuMaxSum.GroupsNeeded(3) != 3 {
		t.Error("SuMax(Sum) needs d groups (Table 3)")
	}
	if AlgMaxInterval.GroupsNeeded(3) != 3 {
		t.Error("MaxInterval needs 3 groups")
	}
}

// --- Delay model ---

func TestDelayModel(t *testing.T) {
	m := DefaultDelayModel()
	// One hash mask alone: 16 ms.
	d := m.Delay(RuleCount{HashMasks: 1})
	if d != 16*time.Millisecond {
		t.Fatalf("mask delay = %v", d)
	}
	// 8 common rules = one batch = 3 ms.
	if d := m.Delay(RuleCount{Common: 8}); d != 3*time.Millisecond {
		t.Fatalf("one-batch delay = %v", d)
	}
	// 9 rules = two batches.
	if d := m.Delay(RuleCount{Common: 9}); d != 6*time.Millisecond {
		t.Fatalf("two-batch delay = %v", d)
	}
	if (RuleCount{Common: 2, TCAMEntries: 3, HashMasks: 1}).Total() != 6 {
		t.Fatal("Total wrong")
	}
}

// --- Controller ---

func newTestController(groups int) *Controller {
	return NewController(Config{Groups: groups, Buckets: 65536, BitWidth: 32})
}

func TestControllerAddRemoveTask(t *testing.T) {
	c := newTestController(1)
	task, err := c.AddTask(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	if task.ID != 1 || task.Algorithm != AlgCMS || task.D != 3 {
		t.Fatalf("task = %+v", task)
	}
	if len(c.Tasks()) != 1 {
		t.Fatal("task list wrong")
	}
	if task.Delay <= 0 {
		t.Fatal("deployment delay must be modeled")
	}
	if err := c.RemoveTask(task.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveTask(task.ID); err == nil {
		t.Fatal("double remove must fail")
	}
	free := c.FreeBuckets()
	for _, cmu := range free[0] {
		if cmu != 65536 {
			t.Fatal("removal must release all memory")
		}
	}
}

func TestControllerEstimatePath(t *testing.T) {
	c := newTestController(1)
	task, err := c.AddTask(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	p := packet.Packet{SrcIP: 9, DstIP: 8, SrcPort: 7, DstPort: 6, Proto: 6}
	for i := 0; i < 25; i++ {
		c.Process(&p)
	}
	got, err := c.EstimateKey(task.ID, packet.KeyFiveTuple.Extract(&p))
	if err != nil {
		t.Fatal(err)
	}
	if got != 25 {
		t.Fatalf("estimate = %v, want 25", got)
	}
}

func TestControllerResizePreservesID(t *testing.T) {
	c := newTestController(2)
	task, _ := c.AddTask(validSpec())
	p := packet.Packet{SrcIP: 1, Proto: 6}
	c.Process(&p)
	old, err := c.ResizeTask(task.ID, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if len(old) == 0 {
		t.Fatal("resize must return the frozen registers")
	}
	nt, err := c.Task(task.ID)
	if err != nil {
		t.Fatal(err)
	}
	if nt.Buckets != 8192 {
		t.Fatalf("resized buckets = %d", nt.Buckets)
	}
	// Counters restart after the move.
	if got, _ := c.EstimateKey(task.ID, packet.KeyFiveTuple.Extract(&p)); got != 0 {
		t.Fatalf("resized task should restart at 0, got %v", got)
	}
	// A second task must get ID 2, not reuse the juggled counter.
	second, err := c.AddTask(TaskSpec{Name: "second", Key: packet.KeyDstIP,
		Attribute: AttrFrequency, MemBuckets: 2048,
		Filter: packet.Filter{DstPort: 53}})
	if err != nil {
		t.Fatal(err)
	}
	if second.ID != 2 {
		t.Fatalf("second task ID = %d, want 2", second.ID)
	}
}

func TestControllerGreedyPlacementReusesKeys(t *testing.T) {
	c := newTestController(3)
	// First task keyed by DstIP lands somewhere and configures a unit.
	t1, err := c.AddTask(TaskSpec{Name: "a", Key: packet.KeyDstIP,
		Attribute: AttrFrequency, MemBuckets: 2048,
		Filter: packet.Filter{DstPort: 80}})
	if err != nil {
		t.Fatal(err)
	}
	// Second DstIP task with a disjoint filter must co-locate (greedy key
	// reuse) rather than claim a fresh group.
	t2, err := c.AddTask(TaskSpec{Name: "b", Key: packet.KeyDstIP,
		Attribute: AttrFrequency, MemBuckets: 2048,
		Filter: packet.Filter{DstPort: 443}})
	if err != nil {
		t.Fatal(err)
	}
	if t1.Groups[0] != t2.Groups[0] {
		t.Fatalf("greedy placement failed: %v vs %v", t1.Groups, t2.Groups)
	}
	// The reuse must also be visible in the delay: t1 paid for the DstIP
	// hash-mask rule, t2 did not.
	if t2.Delay >= t1.Delay {
		t.Fatalf("reusing task's delay %v should undercut the first deployment's %v", t2.Delay, t1.Delay)
	}
}

func TestControllerIntersectingTasksSpread(t *testing.T) {
	c := newTestController(2)
	if _, err := c.AddTask(validSpec()); err != nil {
		t.Fatal(err)
	}
	// Same traffic (match-all), same key: cannot share CMUs → group 1.
	t2, err := c.AddTask(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	if t2.Groups[0] != 1 {
		t.Fatalf("intersecting task placed on group %d, want 1", t2.Groups[0])
	}
	// A third match-all task has nowhere to go.
	if _, err := c.AddTask(validSpec()); err == nil {
		t.Fatal("exhausted pipeline must reject")
	}
}

func TestControllerNinetySixTasksPerGroup(t *testing.T) {
	// The paper's headline: one CMU Group runs up to 96 isolated tasks
	// (32 partitions × 3 CMUs). Give each task a disjoint dst-port filter
	// and the minimum partition.
	c := newTestController(1)
	for i := 0; i < 96; i++ {
		spec := TaskSpec{
			Name:       fmt.Sprintf("task-%d", i),
			Key:        packet.KeyFiveTuple,
			Attribute:  AttrFrequency,
			MemBuckets: 65536 / 32,
			D:          1,
			Filter:     packet.Filter{DstPort: uint16(i + 1)},
		}
		if _, err := c.AddTask(spec); err != nil {
			t.Fatalf("task %d failed: %v", i, err)
		}
	}
	if got := len(c.Tasks()); got != 96 {
		t.Fatalf("deployed %d tasks, want 96", got)
	}
	// The 97th must fail: memory exhausted.
	spec := TaskSpec{Name: "overflow", Key: packet.KeyFiveTuple,
		Attribute: AttrFrequency, MemBuckets: 2048, D: 1,
		Filter: packet.Filter{DstPort: 999}}
	if _, err := c.AddTask(spec); err == nil {
		t.Fatal("97th task must be rejected")
	}
	// Every task is isolated: feed one packet per filter and check only
	// its task counts it.
	for i := 0; i < 96; i += 13 {
		p := packet.Packet{SrcIP: 5, DstIP: 6, SrcPort: 7, DstPort: uint16(i + 1), Proto: 6}
		c.Process(&p)
		got, err := c.EstimateKey(i+1, packet.KeyFiveTuple.Extract(&p))
		if err != nil {
			t.Fatal(err)
		}
		if got != 1 {
			t.Fatalf("task %d estimate = %v, want 1", i+1, got)
		}
	}
}

func TestControllerQueryDispatchErrors(t *testing.T) {
	c := newTestController(1)
	task, _ := c.AddTask(validSpec())
	if _, err := c.Cardinality(task.ID); err == nil {
		t.Error("cardinality query on a frequency task must fail")
	}
	if _, err := c.Contains(task.ID, packet.CanonicalKey{}); err == nil {
		t.Error("contains query on a frequency task must fail")
	}
	if _, _, err := c.Distribution(task.ID); err == nil {
		t.Error("distribution query on a CMS task must fail")
	}
	if _, err := c.EstimateKey(999, packet.CanonicalKey{}); err == nil {
		t.Error("unknown task must fail")
	}
}

func TestControllerAllAlgorithmsDeployAndQuery(t *testing.T) {
	specs := map[Algorithm]TaskSpec{
		AlgCMS: {Name: "cms", Key: packet.KeyFiveTuple, Attribute: AttrFrequency, MemBuckets: 4096},
		AlgSuMaxSum: {Name: "sumax", Key: packet.KeyFiveTuple, Attribute: AttrFrequency,
			MemBuckets: 4096, Algorithm: AlgSuMaxSum},
		AlgMRAC: {Name: "mrac", Key: packet.KeyFiveTuple, Attribute: AttrFrequency,
			MemBuckets: 4096, Algorithm: AlgMRAC},
		AlgTower: {Name: "tower", Key: packet.KeyFiveTuple, Attribute: AttrFrequency,
			MemBuckets: 4096, Algorithm: AlgTower},
		AlgCounterBraids: {Name: "cb", Key: packet.KeyFiveTuple, Attribute: AttrFrequency,
			MemBuckets: 4096, Algorithm: AlgCounterBraids},
		AlgBeauCoup: {Name: "bc", Key: packet.KeyDstIP, Attribute: AttrDistinct,
			Param:     ParamSpec{Kind: ParamFlowKey, Key: packet.KeySrcIP},
			Threshold: 100, MemBuckets: 4096},
		AlgHLL: {Name: "hll", Attribute: AttrDistinct,
			Param: ParamSpec{Kind: ParamFlowKey, Key: packet.KeyFiveTuple}, MemBuckets: 4096},
		AlgLinearCounting: {Name: "lc", Attribute: AttrDistinct,
			Param:      ParamSpec{Kind: ParamFlowKey, Key: packet.KeyFiveTuple},
			MemBuckets: 4096, Algorithm: AlgLinearCounting},
		AlgBloom: {Name: "bloom", Attribute: AttrExistence,
			Param: ParamSpec{Kind: ParamFlowKey, Key: packet.KeyFiveTuple}, MemBuckets: 4096},
		AlgSuMaxMax: {Name: "smm", Key: packet.KeyIPPair, Attribute: AttrMax,
			Param: ParamSpec{Kind: ParamQueueLength}, MemBuckets: 4096},
		AlgMaxInterval: {Name: "mi", Key: packet.KeyFiveTuple, Attribute: AttrMax,
			Param: ParamSpec{Kind: ParamPacketInterval}, MemBuckets: 4096},
	}
	for alg, spec := range specs {
		c := newTestController(3)
		task, err := c.AddTask(spec)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if task.Algorithm != alg {
			t.Fatalf("spec compiled to %s, want %s", task.Algorithm, alg)
		}
		p := packet.Packet{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6, TimestampNs: 1000}
		c.Process(&p)
		p.TimestampNs = 2_000_000
		c.Process(&p)
		// Every algorithm must answer its own query kind.
		switch alg {
		case AlgHLL, AlgLinearCounting:
			if _, err := c.Cardinality(task.ID); err != nil {
				t.Fatalf("%s cardinality: %v", alg, err)
			}
		case AlgBloom:
			ok, err := c.Contains(task.ID, packet.KeyFiveTuple.Extract(&p))
			if err != nil || !ok {
				t.Fatalf("%s contains = %v, %v", alg, ok, err)
			}
		case AlgMRAC:
			if _, _, err := c.Distribution(task.ID); err != nil {
				t.Fatalf("%s distribution: %v", alg, err)
			}
		case AlgBeauCoup:
			if _, err := c.EstimateKey(task.ID, packet.KeyDstIP.Extract(&p)); err != nil {
				t.Fatalf("%s estimate: %v", alg, err)
			}
		default:
			got, err := c.EstimateKey(task.ID, taskKeyOf(spec).Extract(&p))
			if err != nil {
				t.Fatalf("%s estimate: %v", alg, err)
			}
			if alg == AlgCMS || alg == AlgSuMaxSum || alg == AlgTower || alg == AlgCounterBraids {
				if got != 2 {
					t.Fatalf("%s estimate = %v, want 2", alg, got)
				}
			}
		}
		if err := c.RemoveTask(task.ID); err != nil {
			t.Fatalf("%s remove: %v", alg, err)
		}
	}
}

func taskKeyOf(s TaskSpec) packet.KeySpec {
	if len(s.Key.Parts) > 0 {
		return s.Key
	}
	return s.Param.Key
}

func TestControllerResetTaskCounters(t *testing.T) {
	c := newTestController(1)
	task, _ := c.AddTask(validSpec())
	p := packet.Packet{SrcIP: 3, Proto: 6}
	c.Process(&p)
	if err := c.ResetTaskCounters(task.ID); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.EstimateKey(task.ID, packet.KeyFiveTuple.Extract(&p)); got != 0 {
		t.Fatalf("post-reset estimate = %v", got)
	}
	if err := c.ResetTaskCounters(999); err == nil {
		t.Fatal("reset of unknown task must fail")
	}
}

func TestControllerProbabilisticSpec(t *testing.T) {
	c := newTestController(1)
	spec := validSpec()
	spec.Prob = 0.5
	task, err := c.AddTask(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := packet.Packet{SrcIP: 4, Proto: 6}
	const n = 10_000
	for i := 0; i < n; i++ {
		c.Process(&p)
	}
	got, _ := c.EstimateKey(task.ID, packet.KeyFiveTuple.Extract(&p))
	if got < n*0.4 || got > n*0.6 {
		t.Fatalf("p=0.5 task counted %v of %d", got, n)
	}
}

func TestControllerErrorMessagesName(t *testing.T) {
	c := newTestController(1)
	spec := validSpec()
	spec.Algorithm = AlgSuMaxSum
	spec.D = 3 // needs 3 groups, pipeline has 1
	_, err := c.AddTask(spec)
	if err == nil || !strings.Contains(err.Error(), "needs 3 groups") {
		t.Fatalf("placement error unhelpful: %v", err)
	}
}

func TestControllerSplitTask(t *testing.T) {
	c := newTestController(3)
	spec := TaskSpec{
		Name: "heavy", Key: packet.KeyFiveTuple, Attribute: AttrFrequency,
		MemBuckets: 2048,
		Filter:     packet.Filter{SrcPrefix: packet.Prefix{Value: packet.IPv4(10, 0, 0, 0), Bits: 8}},
	}
	task, err := c.AddTask(spec)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := c.SplitTask(task.ID)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Spec.Filter.SrcPrefix.Bits != 9 || hi.Spec.Filter.SrcPrefix.Bits != 9 {
		t.Fatalf("subtask prefixes = /%d and /%d, want /9",
			lo.Spec.Filter.SrcPrefix.Bits, hi.Spec.Filter.SrcPrefix.Bits)
	}
	if lo.Spec.Filter.Intersects(hi.Spec.Filter) {
		t.Fatal("subtask filters must be disjoint")
	}
	if _, err := c.Task(task.ID); err == nil {
		t.Fatal("original task must be gone")
	}
	// Each half counts only its own traffic.
	pLo := packet.Packet{SrcIP: packet.IPv4(10, 1, 1, 1), Proto: 6}
	pHi := packet.Packet{SrcIP: packet.IPv4(10, 200, 1, 1), Proto: 6}
	c.Process(&pLo)
	c.Process(&pHi)
	vLo, _ := c.EstimateKey(lo.ID, packet.KeyFiveTuple.Extract(&pLo))
	vHi, _ := c.EstimateKey(hi.ID, packet.KeyFiveTuple.Extract(&pHi))
	xLo, _ := c.EstimateKey(lo.ID, packet.KeyFiveTuple.Extract(&pHi))
	if vLo != 1 || vHi != 1 || xLo != 0 {
		t.Fatalf("split accounting wrong: lo=%v hi=%v cross=%v", vLo, vHi, xLo)
	}
	// A /32 filter cannot split further.
	host, err := c.AddTask(TaskSpec{
		Name: "host", Key: packet.KeyFiveTuple, Attribute: AttrFrequency,
		MemBuckets: 2048,
		Filter:     packet.Filter{SrcPrefix: packet.Prefix{Value: 1, Bits: 32}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.SplitTask(host.ID); err == nil {
		t.Fatal("host-filter task must refuse to split")
	}
}

func TestControllerEfficientMode(t *testing.T) {
	c := NewController(Config{Groups: 1, Buckets: 65536, BitWidth: 32, Mode: Efficient})
	// 5000 requested: efficient grants the nearer 4096, not 8192.
	task, err := c.AddTask(TaskSpec{Name: "e", Key: packet.KeyFiveTuple,
		Attribute: AttrFrequency, MemBuckets: 5000, D: 3})
	if err != nil {
		t.Fatal(err)
	}
	if task.Buckets != 4096 {
		t.Fatalf("efficient mode granted %d, want 4096", task.Buckets)
	}
	c2 := NewController(Config{Groups: 1, Buckets: 65536, BitWidth: 32, Mode: Accurate})
	task2, err := c2.AddTask(TaskSpec{Name: "a", Key: packet.KeyFiveTuple,
		Attribute: AttrFrequency, MemBuckets: 5000, D: 3})
	if err != nil {
		t.Fatal(err)
	}
	if task2.Buckets != 8192 {
		t.Fatalf("accurate mode granted %d, want 8192", task2.Buckets)
	}
}

func TestControllerCrossTaskIsolation(t *testing.T) {
	// Two tasks with disjoint port filters on one group: processing one
	// task's traffic must never perturb the other's partition — the
	// isolation behind the 96-task claim.
	c := newTestController(1)
	t80, _ := c.AddTask(TaskSpec{Name: "p80", Key: packet.KeyFiveTuple,
		Attribute: AttrFrequency, MemBuckets: 2048, D: 3,
		Filter: packet.Filter{DstPort: 80}})
	t443, _ := c.AddTask(TaskSpec{Name: "p443", Key: packet.KeyFiveTuple,
		Attribute: AttrFrequency, MemBuckets: 2048, D: 3,
		Filter: packet.Filter{DstPort: 443}})
	for i := 0; i < 2000; i++ {
		p := packet.Packet{SrcIP: uint32(i), DstIP: uint32(i * 3), DstPort: 80, Proto: 6}
		c.Process(&p)
	}
	rows, err := c.ReadRegisters(t443.ID)
	if err != nil {
		t.Fatal(err)
	}
	for ri, row := range rows {
		for bi, v := range row {
			if v != 0 {
				t.Fatalf("task %d row %d bucket %d = %d; foreign traffic leaked", t443.ID, ri, bi, v)
			}
		}
	}
	// CMS may overestimate under collisions but never undercount.
	if v, _ := c.EstimateKey(t80.ID, packet.KeyFiveTuple.Extract(&packet.Packet{SrcIP: 1, DstIP: 3, DstPort: 80, Proto: 6})); v < 1 {
		t.Fatalf("t80 lost its own traffic: %v", v)
	}
}

func TestControllerResourceReport(t *testing.T) {
	c := newTestController(2)
	_, err := c.AddTask(TaskSpec{Name: "a", Key: packet.KeyDstIP,
		Attribute: AttrFrequency, MemBuckets: 2048, D: 3,
		Filter: packet.Filter{DstPort: 80}})
	if err != nil {
		t.Fatal(err)
	}
	reports := c.ResourceReport()
	if len(reports) != 2 {
		t.Fatalf("report groups = %d", len(reports))
	}
	g0 := reports[0]
	if g0.Rules != 3 {
		t.Fatalf("group 0 rules = %d, want 3", g0.Rules)
	}
	if len(g0.Tasks) != 1 || g0.Tasks[0] != 1 {
		t.Fatalf("group 0 tasks = %v", g0.Tasks)
	}
	// Unit 0 is the bootstrap 5-tuple; unit 1 was configured for DstIP.
	if g0.Keys[0] != "SrcIP-DstIP-SrcPort-DstPort-Proto" || g0.Keys[1] != "DstIP" {
		t.Fatalf("group 0 keys = %v", g0.Keys)
	}
	// 2048-bucket partitions on a 64K register = 32 partitions → 31
	// translation entries per rule.
	if g0.TCAMEntries != 3*31 {
		t.Fatalf("group 0 TCAM entries = %d, want 93", g0.TCAMEntries)
	}
	// Group 1 is untouched.
	if reports[1].Rules != 0 || reports[1].TCAMEntries != 0 {
		t.Fatalf("group 1 should be idle: %+v", reports[1])
	}
}

func TestControllerTCAMBudget(t *testing.T) {
	// With a tight TCAM budget, a deployment whose address translation
	// would overload the preparation stage is rejected cleanly.
	c := NewController(Config{Groups: 1, Buckets: 65536, BitWidth: 32,
		TCAMEntriesPerGroup: 100})
	// One 2048-bucket d=3 task: 3 × 31 = 93 entries — fits.
	if _, err := c.AddTask(TaskSpec{Name: "fits", Key: packet.KeyFiveTuple,
		Attribute: AttrFrequency, MemBuckets: 2048, D: 3,
		Filter: packet.Filter{DstPort: 1}}); err != nil {
		t.Fatal(err)
	}
	// A second such task would double the load past 100 entries.
	_, err := c.AddTask(TaskSpec{Name: "overflows", Key: packet.KeyFiveTuple,
		Attribute: AttrFrequency, MemBuckets: 2048, D: 3,
		Filter: packet.Filter{DstPort: 2}})
	if err == nil || !strings.Contains(err.Error(), "TCAM") {
		t.Fatalf("TCAM-overloading task must be rejected, got %v", err)
	}
	// Rejection must leave no residue: memory fully restored, rules gone.
	if got := len(c.Tasks()); got != 1 {
		t.Fatalf("tasks after rejection = %d", got)
	}
	reports := c.ResourceReport()
	if reports[0].Rules != 3 {
		t.Fatalf("rules after rejection = %d, want 3", reports[0].Rules)
	}
	// Half-register tasks need only one translation entry: still
	// deployable under the tight budget.
	if _, err := c.AddTask(TaskSpec{Name: "big", Key: packet.KeyDstIP,
		Attribute: AttrFrequency, MemBuckets: 32768, D: 1,
		Filter: packet.Filter{DstPort: 3}}); err != nil {
		t.Fatalf("near-translation-free task should fit: %v", err)
	}
}

func TestControllerSplicedGroupOverflow(t *testing.T) {
	// One regular group + one Appendix-E spliced group: when the regular
	// group's traffic slice is taken, a second match-all task overflows
	// onto the spliced group — and its packets recirculate.
	c := NewController(Config{Groups: 1, SplicedGroups: 1, Buckets: 65536, BitWidth: 32})
	first, err := c.AddTask(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.AddTask(validSpec())
	if err != nil {
		t.Fatalf("spliced overflow failed: %v", err)
	}
	if second.Groups[0] != 1 {
		t.Fatalf("second task on group %d, want spliced group 1", second.Groups[0])
	}
	p := packet.Packet{SrcIP: 3, Proto: 6}
	for i := 0; i < 10; i++ {
		c.Process(&p)
	}
	// Both tasks measured every packet; the spliced task's packets were
	// mirrored (100% of matching traffic, Appendix E).
	for _, id := range []int{first.ID, second.ID} {
		if v, _ := c.EstimateKey(id, packet.KeyFiveTuple.Extract(&p)); v != 10 {
			t.Fatalf("task %d counted %v, want 10", id, v)
		}
	}
	if rec := c.Pipeline().Recirculated(); rec != 10 {
		t.Fatalf("recirculated = %d, want 10", rec)
	}
	// Multi-group tasks must never be placed across the recirculation
	// boundary.
	s := validSpec()
	s.Algorithm = AlgSuMaxSum
	s.D = 2
	if _, err := c.AddTask(s); err == nil {
		t.Fatal("multi-group task must not span into spliced groups")
	}
	// Removing the spliced task stops recirculation.
	if err := c.RemoveTask(second.ID); err != nil {
		t.Fatal(err)
	}
	c.Process(&p)
	if rec := c.Pipeline().Recirculated(); rec != 10 {
		t.Fatalf("recirculation continued after removal: %d", rec)
	}
}

func TestControllerSplicedGroupsClamped(t *testing.T) {
	c := NewController(Config{Groups: 1, SplicedGroups: 99, Buckets: 65536, BitWidth: 32})
	if got := c.Pipeline().SplicedGroups(); got != 3 {
		t.Fatalf("spliced groups = %d, want clamped to 3 (Appendix E bound)", got)
	}
	if got := len(c.ResourceReport()); got != 4 {
		t.Fatalf("report groups = %d, want 1+3", got)
	}
}

func TestRandomizedTaskDeploymentNeverUndercounts(t *testing.T) {
	// System-level property: any mix of randomly parameterized frequency
	// tasks with disjoint port filters deploys cleanly (or reports a clean
	// error), counts its own traffic, and never undercounts.
	f := func(seeds []uint16) bool {
		c := NewController(Config{Groups: 3, Buckets: 65536, BitWidth: 32})
		type live struct {
			id   int
			port uint16
		}
		var tasks []live
		for i, s := range seeds {
			if i >= 12 {
				break
			}
			port := uint16(i + 1)
			spec := TaskSpec{
				Name:       fmt.Sprintf("r%d", i),
				Key:        packet.KeyFiveTuple,
				Attribute:  AttrFrequency,
				MemBuckets: 1 << (11 + int(s)%4), // 2K..16K
				D:          1 + int(s)%3,
				Filter:     packet.Filter{DstPort: port},
			}
			task, err := c.AddTask(spec)
			if err != nil {
				continue // resource exhaustion is a legal outcome
			}
			tasks = append(tasks, live{task.ID, port})
		}
		// Feed each live task a known number of packets.
		truth := map[int]uint64{}
		for i, lt := range tasks {
			n := uint64(1 + i*3)
			p := packet.Packet{SrcIP: uint32(1000 + i), DstPort: lt.port, Proto: 6}
			for j := uint64(0); j < n; j++ {
				c.Process(&p)
			}
			truth[lt.id] = n
		}
		for i, lt := range tasks {
			p := packet.Packet{SrcIP: uint32(1000 + i), DstPort: lt.port, Proto: 6}
			got, err := c.EstimateKey(lt.id, packet.KeyFiveTuple.Extract(&p))
			if err != nil {
				return false
			}
			if uint64(got) < truth[lt.id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
