package cli

import "testing"

// FuzzParseKeySpec hardens the operator-facing key-spec parser: arbitrary
// strings must parse or error, never panic, and accepted specs must have
// sane widths.
func FuzzParseKeySpec(f *testing.F) {
	for _, s := range []string{"5tuple", "srcip/24-dstport", "ippair", "x", "srcip/99", "-", "srcip-"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseKeySpec(s)
		if err != nil {
			return
		}
		if b := spec.Bits(); b < 0 || b > 200 {
			t.Fatalf("accepted spec %q has %d bits", s, b)
		}
	})
}

// FuzzParseCIDR hardens the filter parser.
func FuzzParseCIDR(f *testing.F) {
	for _, s := range []string{"10.0.0.0/8", "1.2.3.4", "", "256.0.0.1/8", "1.2.3.4/40", "a/b"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		pr, err := ParseCIDR(s)
		if err != nil {
			return
		}
		if pr.Bits < 0 || pr.Bits > 32 {
			t.Fatalf("accepted CIDR %q has %d bits", s, pr.Bits)
		}
	})
}
