package rpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"flymon/internal/controlplane"
	"flymon/internal/packet"
	"flymon/internal/telemetry"
	"flymon/internal/trace"
	"flymon/internal/tracing"
)

// helloSession is the daemon-side half of one liveness session: the state
// machine mirror of a controller's periodic Hello probes.
type helloSession struct {
	state    int
	lastSeen time.Time
	txNs     int64
}

// DefaultHelloGC is how long a daemon-side liveness session may go without
// a probe before the session table forgets it (a controller that died or
// abandoned the session). Sweeps happen lazily on incoming hellos.
const DefaultHelloGC = 2 * time.Minute

// Server exposes a controlplane.Controller over the control channel and
// owns the daemon-side workload state (a loaded trace to replay).
type Server struct {
	ctrl *controlplane.Controller

	mu      sync.Mutex
	tr      *trace.Trace
	replays int

	// Epoch tasks: per-name rotators plus their per-epoch packed register
	// snapshots (see epoch.go). epochMu also serializes rotations, which
	// is what makes epoch_rotate's read-then-advance idempotency safe
	// against concurrent retries.
	epochMu sync.Mutex
	epochs  map[string]*epochTask

	// Liveness: per-controller-session handshake state plus this process
	// instance's identity. incarnation changes across restarts, which is
	// how a controller learns its peer came back empty.
	helloMu     sync.Mutex
	hellos      map[string]*helloSession
	helloGC     time.Duration
	incarnation int64
	started     time.Time

	ln        net.Listener
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
	log       *telemetry.Logger

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// tele, when set, counts per-method requests/failures and recovered
	// handler panics (the registry's RPCServer side) and serves the
	// MethodTelemetry scrape.
	tele *telemetry.Registry

	// tracer, when set, records a dispatch span for every request that
	// arrives carrying a trace context, controlplane child spans around
	// mutations, and serves MethodTraceDump from its span buffer.
	tracer *tracing.Tracer
}

// incarnationSeq distinguishes servers created in the same process (tests
// restart daemons in-process); combined with the start time it gives every
// server instance a unique incarnation.
var incarnationSeq atomic.Int64

// NewServer wraps a controller. logf may be nil (silent); it is adapted
// into the leveled logger at debug threshold for compatibility — use
// SetLogger to install a real telemetry.Logger with level control.
func NewServer(ctrl *controlplane.Controller, logf func(string, ...any)) *Server {
	return &Server{
		ctrl:        ctrl,
		epochs:      make(map[string]*epochTask),
		closed:      make(chan struct{}),
		log:         telemetry.NewFuncLogger("rpc", telemetry.LevelDebug, logf),
		conns:       make(map[net.Conn]struct{}),
		hellos:      make(map[string]*helloSession),
		helloGC:     DefaultHelloGC,
		incarnation: time.Now().UnixNano() + incarnationSeq.Add(1),
		started:     time.Now(),
	}
}

// SetLogger replaces the server's logger (nil silences it). Call before
// Serve.
func (s *Server) SetLogger(l *telemetry.Logger) { s.log = l }

// SetTracer attaches the daemon's span tracer. Call before Serve.
func (s *Server) SetTracer(tr *tracing.Tracer) { s.tracer = tr }

// SetHelloGC overrides how long daemon-side liveness sessions survive
// without a probe (0 restores the default). Call before Serve.
func (s *Server) SetHelloGC(d time.Duration) {
	if d <= 0 {
		d = DefaultHelloGC
	}
	s.helloGC = d
}

// Incarnation returns this server instance's identity value (the one
// HelloResult reports).
func (s *Server) Incarnation() int64 { return s.incarnation }

// handleHello runs the daemon side of the BFD-style three-way handshake
// for one received probe: fold the sender's state into this session's
// state machine and answer with ours.
//
//	local Down + remote Down        → Init  (peer sees us; start coming up)
//	local Down|Init + remote Init   → Up    (peer saw our hello — three-way done)
//	local Init + remote Up          → Up
//	local Up   + remote Down        → Down  (peer reset; restart the handshake)
//	local Down + remote Up          → Down  (stale peer: it must re-init first)
func (s *Server) handleHello(p HelloParams) HelloResult {
	now := time.Now()
	s.helloMu.Lock()
	sess := s.hellos[p.Session]
	if sess == nil {
		sess = &helloSession{state: HelloStateDown}
		s.hellos[p.Session] = sess
		// Lazy GC: forget sessions whose controller stopped probing. The
		// horizon is max(helloGC, a few advertised tx intervals) so slow
		// sessions are not reaped between their own probes.
		for id, other := range s.hellos {
			horizon := s.helloGC
			if adv := time.Duration(other.txNs) * 16; adv > horizon {
				horizon = adv
			}
			if other != sess && now.Sub(other.lastSeen) > horizon {
				delete(s.hellos, id)
			}
		}
	}
	sess.lastSeen = now
	if p.TxIntervalNs > 0 {
		sess.txNs = p.TxIntervalNs
	}
	switch p.State {
	case HelloStateDown:
		switch sess.state {
		case HelloStateDown:
			sess.state = HelloStateInit
		case HelloStateUp:
			sess.state = HelloStateDown
		}
	case HelloStateInit:
		if sess.state != HelloStateUp {
			sess.state = HelloStateUp
		}
	case HelloStateUp:
		if sess.state == HelloStateInit {
			sess.state = HelloStateUp
		}
	}
	state := sess.state
	nSessions := len(s.hellos)
	s.helloMu.Unlock()
	return HelloResult{
		State:       state,
		Incarnation: s.incarnation,
		UptimeNs:    now.Sub(s.started).Nanoseconds(),
		Tasks:       len(s.ctrl.Tasks()),
		Sessions:    nSessions,
	}
}

// SetTelemetry attaches a telemetry registry: the server counts every
// dispatch into the registry's RPCServer stats and answers MethodTelemetry
// with full reports. Call before Serve.
func (s *Server) SetTelemetry(reg *telemetry.Registry) { s.tele = reg }

// Listen binds addr ("host:port"; ":0" for an ephemeral port) and starts
// serving. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rpc: listen %s: %w", addr, err)
	}
	s.Serve(ln)
	return ln.Addr().String(), nil
}

// Serve starts serving on a caller-provided listener — the hook for
// wrapping the control channel in a fault-injecting transport
// (faultnet.WrapListener) or any other net.Listener decorator.
func (s *Server) Serve(ln net.Listener) {
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
}

// Close stops the listener, closes every active connection, and waits for
// connection handlers to drain. Without the active-connection sweep a
// single idle client would wedge daemon shutdown forever. Close is
// idempotent: shutdown paths often race a signal handler against a
// defer.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		if s.ln != nil {
			err = s.ln.Close()
		}
		s.connMu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.connMu.Unlock()
		s.wg.Wait()
	})
	return err
}

// track registers a live connection; untrack(conn) removes it.
func (s *Server) track(conn net.Conn) {
	s.connMu.Lock()
	s.conns[conn] = struct{}{}
	s.connMu.Unlock()
}

func (s *Server) untrack(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			s.log.Errorf("accept: %v", err)
			return
		}
		s.wg.Add(1)
		s.track(conn)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles one connection. The top-level recover is the last
// line of defense: a panic anywhere in the codec or handler path must cost
// at most this one connection, never the daemon.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		if r := recover(); r != nil {
			s.log.Errorf("connection handler panic (connection dropped): %v", r)
		}
	}()
	c := newCodec(conn)
	for {
		var req Request
		if err := c.read(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.log.Debugf("read: %v", err)
			}
			return
		}
		resp, frame := s.dispatch(&req)
		if err := c.writeFramed(resp, frame); err != nil {
			s.log.Warnf("write: %v", err)
			return
		}
	}
}

// dispatch runs one request and returns the response envelope plus the
// optional binary frame to transmit after it (results implementing
// frameProvider ship their bulk payload out of band — see Response.Frame).
func (s *Server) dispatch(req *Request) (resp *Response, frame []byte) {
	resp = &Response{ID: req.ID}
	// A request carrying a trace context gets a daemon-side dispatch span
	// parented under the caller's span. The finish defer is registered
	// first so it runs last, after the panic-recovery defer below has
	// turned any handler panic into resp.Error.
	var sc tracing.SpanContext
	if s.tracer != nil && req.Trace != nil && req.Trace.Valid() {
		sp := s.tracer.StartSpan(*req.Trace, "dispatch:"+req.Method)
		sc = sp.Context()
		defer func() {
			var err error
			if resp.Error != "" {
				err = errors.New(resp.Error)
			}
			sp.Finish(err)
		}()
	}
	if s.tele != nil {
		ep := s.tele.RPCServer.Endpoint(req.Method)
		ep.Requests.Add(1)
		defer func() {
			if resp.Error != "" {
				ep.Failures.Add(1)
			}
		}()
	}
	// One malformed request must not crash the whole daemon: a handler
	// panic becomes an error Response on this connection and a log line.
	defer func() {
		if r := recover(); r != nil {
			s.log.Errorf("panic in %s handler: %v", req.Method, r)
			if s.tele != nil {
				s.tele.RPCServer.Panics.Add(1)
			}
			resp.Result = nil
			resp.Frame = 0
			frame = nil
			resp.Error = fmt.Sprintf("rpc: internal error handling %s: %v", req.Method, r)
		}
	}()
	result, err := s.handle(req.Method, req.Params, sc)
	if err != nil {
		resp.Error = err.Error()
		return resp, nil
	}
	raw, err := json.Marshal(result)
	if err != nil {
		resp.Error = fmt.Sprintf("rpc: encoding result: %v", err)
		return resp, nil
	}
	resp.Result = raw
	if fp, ok := result.(frameProvider); ok {
		if frame = fp.frameBytes(); len(frame) > 0 {
			resp.Frame = len(frame)
		}
	}
	return resp, frame
}

func decode[T any](params json.RawMessage) (T, error) {
	var v T
	if len(params) == 0 {
		return v, nil
	}
	err := json.Unmarshal(params, &v)
	if err != nil {
		err = fmt.Errorf("rpc: decoding params: %w", err)
	}
	return v, err
}

// ctlSpan opens a controlplane:<method> child span under the dispatch
// span — the daemon-side mutation segment of a distributed trace. It
// returns nil (safe to Finish) when the request was untraced.
func (s *Server) ctlSpan(sc tracing.SpanContext, method string) *tracing.ActiveSpan {
	if s.tracer == nil || !sc.Valid() {
		return nil
	}
	return s.tracer.StartSpan(sc, "controlplane:"+method)
}

func (s *Server) handle(method string, params json.RawMessage, sc tracing.SpanContext) (any, error) {
	switch method {
	case MethodPing:
		return BoolResult{Value: true}, nil

	case MethodHello:
		p, err := decode[HelloParams](params)
		if err != nil {
			return nil, err
		}
		return s.handleHello(p), nil

	case MethodAddTask:
		p, err := decode[AddTaskParams](params)
		if err != nil {
			return nil, err
		}
		var t *controlplane.Task
		sp := s.ctlSpan(sc, method)
		if p.WantID > 0 {
			t, err = s.ctrl.AddTaskAt(p.WantID, p.Spec)
		} else {
			t, err = s.ctrl.AddTask(p.Spec)
		}
		sp.Finish(err)
		if err != nil {
			return nil, err
		}
		return taskResult(t), nil

	case MethodRemoveTask:
		p, err := decode[TaskIDParams](params)
		if err != nil {
			return nil, err
		}
		sp := s.ctlSpan(sc, method)
		err = s.ctrl.RemoveTask(p.ID)
		sp.Finish(err)
		return BoolResult{Value: true}, err

	case MethodResizeTask:
		p, err := decode[ResizeParams](params)
		if err != nil {
			return nil, err
		}
		sp := s.ctlSpan(sc, method)
		_, err = s.ctrl.ResizeTask(p.ID, p.NewBuckets)
		sp.Finish(err)
		if err != nil {
			return nil, err
		}
		t, err := s.ctrl.Task(p.ID)
		if err != nil {
			return nil, err
		}
		return taskResult(t), nil

	case MethodListTasks:
		tasks := s.ctrl.Tasks()
		out := make([]TaskResult, 0, len(tasks))
		for _, t := range tasks {
			out = append(out, taskResult(t))
		}
		return out, nil

	case MethodEstimate:
		p, err := decode[KeyParams](params)
		if err != nil {
			return nil, err
		}
		v, err := s.ctrl.EstimateKey(p.ID, keyFromBytes(p.Key))
		if err != nil {
			return nil, err
		}
		return EstimateResult{Value: v}, nil

	case MethodCardinality:
		p, err := decode[TaskIDParams](params)
		if err != nil {
			return nil, err
		}
		v, err := s.ctrl.Cardinality(p.ID)
		if err != nil {
			return nil, err
		}
		return EstimateResult{Value: v}, nil

	case MethodContains:
		p, err := decode[KeyParams](params)
		if err != nil {
			return nil, err
		}
		v, err := s.ctrl.Contains(p.ID, keyFromBytes(p.Key))
		if err != nil {
			return nil, err
		}
		return BoolResult{Value: v}, nil

	case MethodReported:
		p, err := decode[CandidatesParams](params)
		if err != nil {
			return nil, err
		}
		cands := make([]packet.CanonicalKey, len(p.Candidates))
		for i, b := range p.Candidates {
			cands[i] = keyFromBytes(b)
		}
		rep, err := s.ctrl.Reported(p.ID, cands)
		if err != nil {
			return nil, err
		}
		var out ReportedResult
		for k := range rep {
			kk := k
			out.Keys = append(out.Keys, kk[:])
		}
		sort.Slice(out.Keys, func(i, j int) bool {
			return string(out.Keys[i]) < string(out.Keys[j])
		})
		return out, nil

	case MethodDistribution:
		p, err := decode[TaskIDParams](params)
		if err != nil {
			return nil, err
		}
		dist, entropy, err := s.ctrl.Distribution(p.ID)
		if err != nil {
			return nil, err
		}
		out := DistributionResult{Entropy: entropy}
		sizes := make([]uint64, 0, len(dist))
		for sz := range dist {
			sizes = append(sizes, sz)
		}
		sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
		for _, sz := range sizes {
			out.Sizes = append(out.Sizes, sz)
			out.Counts = append(out.Counts, dist[sz])
		}
		return out, nil

	case MethodReadRegisters:
		p, err := decode[ReadRegistersParams](params)
		if err != nil {
			return nil, err
		}
		rows, err := s.ctrl.ReadRegisters(p.ID)
		if err != nil {
			return nil, err
		}
		if p.Packed {
			frame, lens := PackFrame(rows)
			return RegistersResult{RowLens: lens, frame: frame}, nil
		}
		return RegistersResult{Rows: rows}, nil

	case MethodEpochDeploy:
		p, err := decode[AddTaskParams](params)
		if err != nil {
			return nil, err
		}
		sp := s.ctlSpan(sc, method)
		r, err := s.handleEpochDeploy(p)
		sp.Finish(err)
		return r, err

	case MethodEpochRotate:
		p, err := decode[EpochRotateParams](params)
		if err != nil {
			return nil, err
		}
		sp := s.ctlSpan(sc, method)
		r, err := s.handleEpochRotate(p)
		sp.Finish(err)
		return r, err

	case MethodReadEpoch:
		p, err := decode[ReadEpochParams](params)
		if err != nil {
			return nil, err
		}
		return s.handleReadEpoch(p)

	case MethodEpochRemove:
		p, err := decode[EpochTaskParams](params)
		if err != nil {
			return nil, err
		}
		sp := s.ctlSpan(sc, method)
		err = s.handleEpochRemove(p)
		sp.Finish(err)
		return BoolResult{Value: true}, err

	case MethodKeyIndices:
		p, err := decode[KeyParams](params)
		if err != nil {
			return nil, err
		}
		return s.handleKeyIndices(p)

	case MethodResources:
		return ResourcesResult{
			FreeBuckets: s.ctrl.FreeBuckets(),
			Tasks:       len(s.ctrl.Tasks()),
		}, nil

	case MethodReport:
		return ReportResult{Groups: s.ctrl.ResourceReport()}, nil

	case MethodSplitTask:
		p, err := decode[TaskIDParams](params)
		if err != nil {
			return nil, err
		}
		sp := s.ctlSpan(sc, method)
		lo, hi, err := s.ctrl.SplitTask(p.ID)
		sp.Finish(err)
		if err != nil {
			return nil, err
		}
		return SplitResult{Lo: taskResult(lo), Hi: taskResult(hi)}, nil

	case MethodLoadTrace:
		p, err := decode[LoadTraceParams](params)
		if err != nil {
			return nil, err
		}
		f, err := os.Open(p.Path)
		if err != nil {
			return nil, fmt.Errorf("rpc: opening trace: %w", err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			return nil, err
		}
		tr, err := r.ReadAll()
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.tr = tr
		s.mu.Unlock()
		return ReplayResult{Processed: tr.Len()}, nil

	case MethodGenTrace:
		p, err := decode[GenTraceParams](params)
		if err != nil {
			return nil, err
		}
		tr := trace.Generate(trace.Config{
			Flows: p.Flows, Packets: p.Packets, ZipfS: p.ZipfS, Seed: p.Seed,
		})
		s.mu.Lock()
		s.tr = tr
		s.mu.Unlock()
		return ReplayResult{Processed: tr.Len()}, nil

	case MethodReplay:
		p, err := decode[ReplayParams](params)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		tr := s.tr
		s.mu.Unlock()
		if tr == nil {
			return nil, fmt.Errorf("rpc: no trace loaded (call %s first)", MethodGenTrace)
		}
		n := p.Packets
		if n <= 0 || n > tr.Len() {
			n = tr.Len()
		}
		s.ctrl.ProcessBatch(tr.Packets[:n])
		return ReplayResult{Processed: n}, nil

	case MethodStats:
		s.mu.Lock()
		tl := 0
		if s.tr != nil {
			tl = s.tr.Len()
		}
		s.mu.Unlock()
		return StatsResult{
			PacketsProcessed: s.ctrl.Pipeline().Packets(),
			TracePackets:     tl,
			Tasks:            len(s.ctrl.Tasks()),
		}, nil

	case MethodTelemetry:
		if s.tele == nil {
			return nil, fmt.Errorf("rpc: daemon runs without telemetry (start it with a registry)")
		}
		return s.tele.Report(), nil

	case MethodTraceDump:
		p, err := decode[TraceDumpParams](params)
		if err != nil {
			return nil, err
		}
		// A daemon without a tracer answers with an empty dump rather than
		// an error: fleet-wide collection should degrade, not fail, when
		// some daemons run untraced.
		spans, total, dropped := s.tracer.Dump()
		if p.Limit > 0 && len(spans) > p.Limit {
			spans = spans[len(spans)-p.Limit:]
		}
		return TraceDumpResult{Spans: spans, Total: total, Dropped: dropped}, nil

	case MethodDebugPanic:
		panic("operator-requested fault drill")

	default:
		return nil, fmt.Errorf("rpc: unknown method %q", method)
	}
}

func taskResult(t *controlplane.Task) TaskResult {
	return TaskResult{
		ID:          t.ID,
		Name:        t.Spec.Name,
		Algorithm:   t.Algorithm.String(),
		D:           t.D,
		Groups:      t.Groups,
		Buckets:     t.Buckets,
		MemoryBytes: t.MemoryBytes(),
		Delay:       t.Delay,
	}
}
