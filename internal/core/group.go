package core

import (
	"fmt"

	"flymon/internal/dataplane"
	"flymon/internal/hashing"
	"flymon/internal/packet"
)

// Default CMU Group geometry, matching the paper's prototype setting (§5):
// 6 hash distribution units per group — half in the compression stage, half
// consumed by SALU addressing in the operation stage — and 3 CMUs.
const (
	// CompressionUnits is the number of hash units generating compressed
	// keys per group.
	CompressionUnits = 3
	// CMUsPerGroup is the number of CMUs sharing one compression stage.
	CMUsPerGroup = 3
	// StagesPerGroup is the MAU-stage length of one group's four logical
	// stages (compression, initialization, preparation, operation).
	StagesPerGroup = 4
	// DefaultBuckets is the per-CMU register size used by the prototype
	// (16-bit buckets; 64K buckets = 128 KB per CMU).
	DefaultBuckets = 65536
	// DefaultBitWidth is the uniform register bucket width. CMUs need a
	// uniform memory configuration for generality (§3.2); 16 bits matches
	// the paper's examples.
	DefaultBitWidth = 16
)

// MaxSelectableKeys returns the number of distinct keys k hash units offer:
// k single keys plus k(k−1)/2 XOR pairs = k(k+1)/2 (§3.1.1).
func MaxSelectableKeys(k int) int { return k * (k + 1) / 2 }

// Group is a CMU Group: a shared compression stage of hash units feeding
// several CMUs, mapped across four MAU stages.
type Group struct {
	id    int
	units []*hashing.Unit
	cmus  []*CMU

	// keyUse tracks which KeySpec each compression unit currently digests
	// (control-plane bookkeeping for greedy placement, §3.4).
	keyUse []packet.KeySpec
}

// GroupConfig parameterizes group construction; zero values take the
// prototype defaults.
type GroupConfig struct {
	ID               int
	CompressionUnits int
	CMUs             int
	Buckets          int
	BitWidth         int
}

func (c *GroupConfig) defaults() {
	if c.CompressionUnits == 0 {
		c.CompressionUnits = CompressionUnits
	}
	if c.CMUs == 0 {
		c.CMUs = CMUsPerGroup
	}
	if c.Buckets == 0 {
		c.Buckets = DefaultBuckets
	}
	if c.BitWidth == 0 {
		c.BitWidth = DefaultBitWidth
	}
}

// NewGroup builds a CMU Group.
func NewGroup(cfg GroupConfig) *Group {
	cfg.defaults()
	g := &Group{
		id:     cfg.ID,
		keyUse: make([]packet.KeySpec, cfg.CompressionUnits),
	}
	for i := 0; i < cfg.CompressionUnits; i++ {
		// Different groups get different polynomial offsets so their
		// compressed keys are independent.
		g.units = append(g.units, hashing.NewUnit((cfg.ID*cfg.CompressionUnits+i)%hashing.MaxUnits()))
	}
	for i := 0; i < cfg.CMUs; i++ {
		g.cmus = append(g.cmus, NewCMU(i, cfg.Buckets, cfg.BitWidth))
	}
	return g
}

// ID returns the group's identifier.
func (g *Group) ID() int { return g.id }

// CMU returns CMU i of the group.
func (g *Group) CMU(i int) *CMU { return g.cmus[i] }

// CMUs returns the group's CMU count.
func (g *Group) CMUs() int { return len(g.cmus) }

// Units returns the group's compression-unit count.
func (g *Group) Units() int { return len(g.units) }

// ConfigureUnit installs a hash-mask rule on compression unit i so it
// produces C(spec). This is a runtime-rule installation; it does not
// disturb other units or running tasks.
func (g *Group) ConfigureUnit(i int, spec packet.KeySpec) error {
	if i < 0 || i >= len(g.units) {
		return fmt.Errorf("core: group %d has no compression unit %d", g.id, i)
	}
	g.units[i].Configure(spec)
	g.keyUse[i] = spec
	return nil
}

// UnitSpec returns the KeySpec compression unit i currently digests
// (zero-value KeySpec when idle).
func (g *Group) UnitSpec(i int) packet.KeySpec { return g.keyUse[i] }

// FindUnit returns the index of a compression unit already configured for
// spec, or -1.
func (g *Group) FindUnit(spec packet.KeySpec) int {
	for i, u := range g.units {
		if u.Live() && g.keyUse[i].Equal(spec) {
			return i
		}
	}
	return -1
}

// FreeUnit returns the index of an unconfigured compression unit, or -1.
func (g *Group) FreeUnit() int {
	for i, u := range g.units {
		if !u.Live() {
			return i
		}
	}
	return -1
}

// Process pushes one packet through the group: the compression stage
// digests the candidate key set under every live hash mask, then each CMU
// runs its matched task. The compressed keys land in the caller's ProcCtx
// scratch, so concurrent workers each carry their own buffer.
func (g *Group) Process(pc *ProcCtx) {
	buf := pc.unitKeys(len(g.units))
	for i, u := range g.units {
		buf[i] = u.Hash(pc.Ctx.Pkt)
	}
	for _, c := range g.cmus {
		c.Process(&pc.Ctx, buf)
	}
}

// HashKey digests a canonical key with compression unit i's polynomial.
// For a key extracted under the same KeySpec the unit is configured with,
// the digest equals the unit's per-packet compressed key — this is how the
// control plane recomputes bucket locations at readout time.
func (g *Group) HashKey(i int, k packet.CanonicalKey) uint32 {
	return g.units[i].HashBytes(k[:])
}

// CompressedKeys computes the group's current compressed keys for a packet
// without executing CMUs (diagnostics and tests).
func (g *Group) CompressedKeys(p *packet.Packet) []uint32 {
	out := make([]uint32, len(g.units))
	for i, u := range g.units {
		out[i] = u.Hash(p)
	}
	return out
}

// Footprint returns the hardware resources one CMU Group occupies across
// its four stages (the Fig. 8 usage table): the compression stage takes
// half a stage's hash units, the operation stage the other half (the SALU
// addressing tax) plus the SALUs and register SRAM, initialization takes
// VLIW, preparation takes TCAM.
func (g *Group) Footprint() dataplane.Resources {
	sram := 0
	for _, c := range g.cmus {
		sram += c.register.SRAMBlocks()
	}
	return dataplane.Resources{
		HashUnits:     len(g.units) + len(g.cmus), // compression + SALU addressing
		SALUs:         len(g.cmus),
		SRAMBlocks:    sram,
		TCAMBlocks:    dataplane.TCAMBlocksPerStage*125/1000 + dataplane.TCAMBlocksPerStage/2, // I: 12.5%, P: 50%
		VLIWSlots:     vliwPerGroup(),
		LogicalTables: 2 + 2*len(g.cmus), // task filter, key select + per-CMU prep & op tables
		PHVBits:       GroupPHVBits(len(g.units), len(g.cmus)),
	}
}

func vliwPerGroup() int {
	// C: 6.25%, I: 25%, P: 6.25%, O: 25% of a stage's 32 slots (Fig. 8).
	s := dataplane.VLIWSlotsPerStage
	return s*625/10000 + s*25/100 + s*625/10000 + s*25/100
}

// GroupPHVBits returns the PHV bits a group occupies with the less-copy
// strategy: one 32-bit compressed key per compression unit, shared by the
// group, plus two 32-bit parameters per CMU (the address rides the hash
// distribution path, not the PHV).
func GroupPHVBits(units, cmus int) int {
	return units*32 + cmus*2*32
}

// UncompressedPHVBits returns the PHV bits per CMU without the less-copy
// strategy: a full candidate-key copy per CMU plus its parameters — the
// O(keyBits) cost compression removes (§3.1.1, Fig. 13c).
func UncompressedPHVBits(keyBits int) int {
	return keyBits + 2*32
}
