package algorithms

import (
	"fmt"
	"math/bits"

	"flymon/internal/core"
	"flymon/internal/dataplane"
	"flymon/internal/packet"
	"flymon/internal/sketch"
)

// HLLTask is FlyMon-HLL (§4, Flow Cardinality): one CMU splitting a single
// compressed key the way HyperLogLog does — the low b bits locate a
// register bucket (stochastic averaging, via TCAM-based address
// translation) while the remaining 32−b bits are mapped to their rank ρ by
// the preparation stage's leading-zero table; the MAX operation keeps the
// largest rank per bucket. The paper prefers this MAX-based tracking over
// prior RMT HLLs' per-rank TCAM entries to save TCAM.
type HLLTask struct {
	Group  *core.Group
	TaskID int

	Unit   int
	CMU    int // CMU index hosting the register
	B      int // log2(bucket count)
	Mem    core.MemRange
	Method core.TranslationMethod
}

// InstallHLL installs a FlyMon-HLL task on group g counting distinct `key`
// values. mem selects the register partition (bucket count = 2^b of the
// HLL); a zero mem takes CMU 0's whole register.
func InstallHLL(g *core.Group, taskID int, filter packet.Filter, key packet.KeySpec,
	mem core.MemRange, at ...int) (*HLLTask, error) {
	cmu := baseCMU(at)
	if cmu < 0 || cmu >= g.CMUs() {
		return nil, fmt.Errorf("algorithms: HLL CMU index %d out of range", cmu)
	}
	if mem.Buckets == 0 {
		mem = core.MemRange{Base: 0, Buckets: g.CMU(cmu).Register().Size()}
	}
	b := bits.TrailingZeros32(uint32(mem.Buckets))
	if 1<<b != mem.Buckets {
		return nil, fmt.Errorf("algorithms: HLL needs a power-of-two partition, got %d", mem.Buckets)
	}
	unit, err := EnsureUnit(g, key)
	if err != nil {
		return nil, err
	}
	t := &HLLTask{Group: g, TaskID: taskID, Unit: unit, CMU: cmu, B: b, Mem: mem, Method: core.TCAMBased}
	rule := &core.Rule{
		TaskID: taskID,
		Filter: filter,
		Key:    core.FullKey(unit), // TCAM translation keeps the low b bits
		// The rank input is the key's remaining 32−b bits, left-aligned by
		// the LZRank transform's Discard.
		P1:          core.CompressedKey(core.FullKey(unit).SubRange(b, 32-b)),
		P2:          core.Const(0),
		Prep:        core.Transform{Kind: core.TransformLZRank, Discard: b},
		Mem:         mem,
		Translation: t.Method,
		Op:          dataplane.OpMax,
	}
	if err := g.CMU(cmu).InstallRule(rule); err != nil {
		return nil, err
	}
	return t, nil
}

// Estimate reads the rank registers and computes the HyperLogLog estimate.
func (t *HLLTask) Estimate() (float64, error) {
	buckets, err := t.Group.CMU(t.CMU).ReadTask(t.TaskID)
	if err != nil {
		return 0, err
	}
	ranks := make([]uint8, len(buckets))
	for i, b := range buckets {
		if b > 255 {
			b = 255
		}
		ranks[i] = uint8(b)
	}
	return sketch.HLLEstimateFromRanks(ranks, 32-t.B), nil
}

// MemoryBytes returns the register memory the task occupies.
func (t *HLLTask) MemoryBytes() int {
	return t.Mem.Buckets * t.Group.CMU(t.CMU).Register().BitWidth() / 8
}

// Uninstall removes the task's rule.
func (t *HLLTask) Uninstall() { t.Group.CMU(t.CMU).RemoveRule(t.TaskID) }
