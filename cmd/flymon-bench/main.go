// Command flymon-bench regenerates the tables and figures of the FlyMon
// paper's evaluation (§5) on the simulated RMT data plane.
//
// Usage:
//
//	flymon-bench [-scale small|full] [-seed N] [-workers N] [-sharded] [experiment ...]
//	flymon-bench -replay trace.fmt[,trace2.fmt ...] [-replay-engine frames|mmap|reader|readbatch]
//	             [-replay-loop 10s] [-replay-batch N] [-replay-ring N]
//	             [-replay-tasks N] [-replay-verify] [-workers N] [-sharded]
//	flymon-bench -fleet 4,32,128,256 [-fleet-count 5] [-seed N]
//
// With no experiment arguments it runs everything. Experiments: fig2,
// table3, fig11, fig12a, fig12b, fig13a, fig13b, fig13c, fig14a, fig14b,
// fig14c, fig14d, fig14e, fig14f, fig14g, appendixe, multitasking,
// throughput, ablations.
//
// With -replay, the tool instead replays the given FLYMTRC trace files
// through a fully loaded 9-group pipeline and reports sustained pkts/s.
// The default engine mmaps the traces and feeds the worker pool through
// the zero-copy span ring (internal/mmtrace); -replay-engine frames runs
// the spans through the FrameView-native compiled engine (batched digests
// and grouped register updates, no packet materialization); reader and
// readbatch select the legacy materialize-then-process and streaming
// paths for comparison. -replay-loop keeps replaying for at least the
// given duration (steady-state measurement); -replay-verify afterwards
// replays sequentially and asserts bit-identical register readouts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"flymon/internal/experiments"
	"flymon/internal/telemetry"
)

func main() {
	scaleFlag := flag.String("scale", "small", "workload scale: small or full")
	seed := flag.Int64("seed", 42, "workload seed")
	workers := flag.Int("workers", 0, "worker-count cap for the throughput experiment (0 = GOMAXPROCS)")
	sharded := flag.Bool("sharded", false, "throughput experiment uses sharded register lanes (per-worker plain stores) instead of shared CAS")
	jsonOut := flag.Bool("json", false, "emit results as a JSON array instead of text tables")
	seriesDir := flag.String("series-dir", "", "also write fig12a's raw time series as .dat files into this directory")
	replay := flag.String("replay", "", "replay these comma-separated FLYMTRC trace files instead of running experiments")
	replayEngine := flag.String("replay-engine", "mmap", "replay ingestion engine: frames, mmap, reader, or readbatch")
	replayLoop := flag.Duration("replay-loop", 0, "loop the replay for at least this long (steady-state mode)")
	replayBatch := flag.Int("replay-batch", 0, "replay span/batch size in packets (0 = 512)")
	replayRing := flag.Int("replay-ring", 0, "replay ring capacity in spans (0 = 1024)")
	replayTasks := flag.Int("replay-tasks", 9, "CMS tasks deployed for the replay (0 = none: measures pure ingest)")
	replayVerify := flag.Bool("replay-verify", false, "after the replay, verify register readouts against a sequential ProcessBatch replay")
	fleet := flag.String("fleet", "", "run the network-wide query scaling bench over these comma-separated fleet sizes (e.g. 4,32,128,256) instead of experiments")
	fleetCount := flag.Int("fleet-count", 5, "timed samples per engine per fleet size (median-of-N via cmd/benchcmp)")
	version := flag.Bool("version", false, "print version and build info, then exit")
	flag.Usage = usage
	flag.Parse()

	if *version {
		fmt.Printf("flymon-bench %s\n", telemetry.ReadBuildInfo())
		return
	}

	if *fleet != "" {
		var sizes []int
		for _, s := range strings.Split(*fleet, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "flymon-bench: bad fleet size %q\n", s)
				os.Exit(2)
			}
			sizes = append(sizes, n)
		}
		tbl, err := experiments.FleetBench(experiments.FleetBenchOptions{
			Sizes: sizes, Count: *fleetCount, Seed: *seed, Out: os.Stdout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "flymon-bench: %v\n", err)
			os.Exit(1)
		}
		tbl.Render(os.Stderr)
		return
	}

	if *replay != "" {
		opt := experiments.ReplayOptions{
			Paths:   strings.Split(*replay, ","),
			Engine:  experiments.ReplayEngine(strings.ToLower(*replayEngine)),
			Workers: *workers,
			Sharded: *sharded,
			Tasks:   *replayTasks,
			Batch:   *replayBatch,
			Ring:    *replayRing,
			Loop:    *replayLoop,
			Verify:  *replayVerify,
		}
		tbl, err := experiments.Replay(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flymon-bench: %v\n", err)
			os.Exit(1)
		}
		tbl.Render(os.Stdout)
		return
	}

	var scale experiments.Scale
	switch strings.ToLower(*scaleFlag) {
	case "small":
		scale = experiments.Small
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "flymon-bench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	runners := map[string]func() []*experiments.Table{
		"fig2":   func() []*experiments.Table { return []*experiments.Table{experiments.Fig2()} },
		"table3": func() []*experiments.Table { return []*experiments.Table{experiments.Table3()} },
		"fig11":  func() []*experiments.Table { return []*experiments.Table{experiments.Fig11()} },
		"fig12a": func() []*experiments.Table {
			res := experiments.Fig12a(*seed)
			if *seriesDir != "" {
				if err := res.WriteSeries(*seriesDir); err != nil {
					fmt.Fprintf(os.Stderr, "flymon-bench: %v\n", err)
					os.Exit(1)
				}
			}
			return []*experiments.Table{res.Table}
		},
		"fig12b":       func() []*experiments.Table { return []*experiments.Table{experiments.Fig12b(scale, *seed)} },
		"fig13a":       func() []*experiments.Table { return []*experiments.Table{experiments.Fig13a()} },
		"fig13b":       func() []*experiments.Table { return []*experiments.Table{experiments.Fig13b()} },
		"fig13c":       func() []*experiments.Table { return []*experiments.Table{experiments.Fig13c()} },
		"fig14a":       func() []*experiments.Table { return []*experiments.Table{experiments.Fig14a(scale, *seed)} },
		"fig14b":       func() []*experiments.Table { return []*experiments.Table{experiments.Fig14b(scale, *seed)} },
		"fig14c":       func() []*experiments.Table { return []*experiments.Table{experiments.Fig14c(scale, *seed)} },
		"fig14d":       func() []*experiments.Table { return []*experiments.Table{experiments.Fig14d(scale, *seed)} },
		"fig14e":       func() []*experiments.Table { return []*experiments.Table{experiments.Fig14e(scale, *seed)} },
		"fig14f":       func() []*experiments.Table { return []*experiments.Table{experiments.Fig14f(scale, *seed)} },
		"fig14g":       func() []*experiments.Table { return []*experiments.Table{experiments.Fig14g(scale, *seed)} },
		"appendixe":    func() []*experiments.Table { return []*experiments.Table{experiments.AppendixE(scale, *seed)} },
		"multitasking": func() []*experiments.Table { return []*experiments.Table{experiments.Multitasking(scale, *seed)} },
		"throughput": func() []*experiments.Table {
			return []*experiments.Table{experiments.Throughput(scale, *seed, *workers, *sharded)}
		},
		"ablations": func() []*experiments.Table {
			return []*experiments.Table{
				experiments.AblationSubParts(scale, *seed),
				experiments.AblationTranslation(scale, *seed),
				experiments.AblationMemoryModes(),
				experiments.AblationXORKeys(scale, *seed),
			}
		},
	}

	names := flag.Args()
	if len(names) == 0 {
		names = make([]string, 0, len(runners))
		for n := range runners {
			names = append(names, n)
		}
		sort.Strings(names)
	}

	type jsonTable struct {
		Experiment string     `json:"experiment"`
		Title      string     `json:"title"`
		Header     []string   `json:"header"`
		Rows       [][]string `json:"rows"`
		Notes      []string   `json:"notes,omitempty"`
		ElapsedMs  int64      `json:"elapsed_ms"`
	}
	var jsonTables []jsonTable

	for _, name := range names {
		run, ok := runners[strings.ToLower(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "flymon-bench: unknown experiment %q\n", name)
			usage()
			os.Exit(2)
		}
		start := time.Now()
		tables := run()
		elapsed := time.Since(start)
		if *jsonOut {
			for _, tbl := range tables {
				jsonTables = append(jsonTables, jsonTable{
					Experiment: name, Title: tbl.Title, Header: tbl.Header,
					Rows: tbl.Rows, Notes: tbl.Notes,
					ElapsedMs: elapsed.Milliseconds(),
				})
			}
			continue
		}
		for _, tbl := range tables {
			tbl.Render(os.Stdout)
		}
		fmt.Printf("  [%s completed in %v]\n\n", name, elapsed.Round(time.Millisecond))
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonTables); err != nil {
			fmt.Fprintf(os.Stderr, "flymon-bench: encoding JSON: %v\n", err)
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: flymon-bench [-scale small|full] [-seed N] [-workers N] [-sharded] [experiment ...]

experiments:
  fig2     resource footprint of statically deployed sketches
  table3   built-in algorithms: CMU-Group usage and deployment delay
  fig11    address-translation overhead vs partitions
  fig12a   reconfiguration impact on traffic forwarding
  fig12b   accuracy under reconfiguration and traffic spike
  fig13a   CMU-Group overhead on switch.p4 baseline
  fig13b   cross-stacking utilization vs MAU stages
  fig13c   scalability to candidate key size
  fig14a   heavy-hitter detection F1 vs memory
  fig14b   heavy hitters under probabilistic execution
  fig14c   DDoS-victim detection F1 vs memory
  fig14d   flow-cardinality RE vs memory
  fig14e   flow-entropy RE vs memory
  fig14f   max inter-arrival-time ARE vs memory
  fig14g   existence-check false positives vs memory
  appendixe  recirculation splicing: capacity vs bandwidth overhead
  multitasking  96 isolated tasks on one CMU Group (§5.1)
  throughput  lock-free batch/parallel packet rate vs worker count
              (-workers caps the sweep; -sharded switches the register
              state from shared CAS to per-worker plain-store lanes)
  ablations  design-choice ablations (sub-parts, translation, memory modes, XOR keys)

replay mode:
  flymon-bench -replay trace.fmt[,more.fmt]   replay traces through a loaded
    pipeline and report sustained pkts/s. -replay-engine picks the ingestion
    path (frames = FrameView-native compiled engine over the span ring, no
    packet materialization; mmap = zero-copy span ring with per-worker
    decode; reader = materialize then process; readbatch = streaming
    batches); -replay-loop runs steady-state for a
    duration; -replay-verify asserts bit-identical registers vs a
    sequential replay. -workers and -sharded apply.

fleet mode:
  flymon-bench -fleet 4,32,128,256 [-fleet-count 5]   boot in-process daemon
    fleets on loopback and benchmark the network-wide query plane: the flat
    sequential fold vs the parallel sketch-merge tree (packed binary frames)
    over identical register state. Engines are verified bit-identical on
    every mergeable op before timing. Bench lines go to stdout (pipe into
    benchcmp -pair 'engine=flat:engine=tree'), the summary table to stderr.
`)
}
