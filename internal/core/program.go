package core

import (
	"math/bits"

	"flymon/internal/dataplane"
	"flymon/internal/packet"
)

// This file is the snapshot compiler's back end: it flattens a Rule — an
// interpretive structure full of wildcard conventions and method dispatch —
// into a compiledRule, the dense, branch-poor program the data-plane fast
// path executes. Everything resolvable at Compile time is resolved here:
// filter matchers are specialized by shape, key selectors are rewritten
// against the snapshot's deduplicated hash slots, address translation is
// reduced to one shift or one mask, and constant parameters are folded.
// The per-packet work that remains is an indexed dispatch over flat struct
// fields, which is what lets Snapshot.Process run allocation-free and is as
// close as software gets to the fixed per-packet work of the Tofino
// pipeline the paper measures.

// matchKind classifies a compiled filter by the checks it actually needs.
type matchKind uint8

const (
	// matchAll matches every packet (the zero Filter) — the dominant case
	// for whole-traffic tasks; costs one switch arm, no field reads.
	matchAll matchKind = iota
	// matchExact checks only exact 5-tuple fields (ports/protocol).
	matchExact
	// matchPrefix checks only IP prefixes (mask-and-compare).
	matchPrefix
	// matchGeneric checks both prefixes and exact fields.
	matchGeneric
)

// compiledMatch is a pre-resolved packet.Filter: prefixes are lowered to
// mask/value pairs and the filter's shape is classified so the hot path
// runs only the comparisons the task's filter actually uses.
type compiledMatch struct {
	kind             matchKind
	srcMask, srcVal  uint32
	dstMask, dstVal  uint32
	srcPort, dstPort uint16 // 0 = wildcard
	proto            uint8  // 0 = wildcard
}

// prefixMaskVal lowers a CIDR prefix to (mask, value); a zero prefix
// becomes (0, 0), which matches everything under mask-and-compare.
func prefixMaskVal(pr packet.Prefix) (mask, val uint32) {
	if pr.Bits <= 0 {
		return 0, 0
	}
	bits := pr.Bits
	if bits > 32 {
		bits = 32
	}
	mask = ^uint32(0) << (32 - bits)
	return mask, pr.Value & mask
}

// compileMatch specializes a filter into its minimal matcher.
func compileMatch(f packet.Filter) compiledMatch {
	cm := compiledMatch{srcPort: f.SrcPort, dstPort: f.DstPort, proto: f.Proto}
	cm.srcMask, cm.srcVal = prefixMaskVal(f.SrcPrefix)
	cm.dstMask, cm.dstVal = prefixMaskVal(f.DstPrefix)
	hasExact := f.SrcPort != 0 || f.DstPort != 0 || f.Proto != 0
	hasPrefix := cm.srcMask != 0 || cm.dstMask != 0
	switch {
	case !hasExact && !hasPrefix:
		cm.kind = matchAll
	case !hasPrefix:
		cm.kind = matchExact
	case !hasExact:
		cm.kind = matchPrefix
	default:
		cm.kind = matchGeneric
	}
	return cm
}

// matches reports whether p belongs to the compiled filter's traffic
// slice; semantics are identical to packet.Filter.Matches.
func (cm *compiledMatch) matches(p *packet.Packet) bool {
	switch cm.kind {
	case matchAll:
		return true
	case matchExact:
		return (cm.srcPort == 0 || cm.srcPort == p.SrcPort) &&
			(cm.dstPort == 0 || cm.dstPort == p.DstPort) &&
			(cm.proto == 0 || cm.proto == p.Proto)
	case matchPrefix:
		return p.SrcIP&cm.srcMask == cm.srcVal &&
			p.DstIP&cm.dstMask == cm.dstVal
	default:
		return p.SrcIP&cm.srcMask == cm.srcVal &&
			p.DstIP&cm.dstMask == cm.dstVal &&
			(cm.srcPort == 0 || cm.srcPort == p.SrcPort) &&
			(cm.dstPort == 0 || cm.dstPort == p.DstPort) &&
			(cm.proto == 0 || cm.proto == p.Proto)
	}
}

// compiledSel is a Selector rewritten against the snapshot's deduplicated
// digest slots: the group-local unit indices are resolved to indices into
// ProcCtx.hashes (so the per-group key-copy loop disappears), and the
// rotation/width arithmetic is folded to one rotate and one mask.
type compiledSel struct {
	a, b int32  // ProcCtx.hashes slots; -1 contributes 0
	rot  uint32 // right rotation, in [0, 32)
	mask uint32 // width mask (^0 = full 32 bits)
}

// compileSel resolves s against a group's unit→hash-slot map.
func compileSel(s Selector, unitHash []int) compiledSel {
	cs := compiledSel{a: -1, b: -1, mask: ^uint32(0)}
	if s.UnitA >= 0 && s.UnitA < len(unitHash) && unitHash[s.UnitA] >= 0 {
		cs.a = int32(unitHash[s.UnitA])
	}
	if s.UnitB >= 0 && s.UnitB < len(unitHash) && unitHash[s.UnitB] >= 0 {
		cs.b = int32(unitHash[s.UnitB])
	}
	lo := s.Lo % 32
	if lo < 0 {
		lo += 32
	}
	cs.rot = uint32(lo)
	if s.Width > 0 && s.Width < 32 {
		cs.mask = 1<<uint(s.Width) - 1
	}
	return cs
}

// resolve extracts the selected value from the packet's digest cache.
func (cs *compiledSel) resolve(hashes []uint32) uint32 {
	var v uint32
	if cs.a >= 0 {
		v = hashes[cs.a]
	}
	if cs.b >= 0 {
		v ^= hashes[cs.b]
	}
	if cs.rot != 0 {
		v = v>>cs.rot | v<<(32-cs.rot)
	}
	return v & cs.mask
}

// compiledParam is a ParamSource with its constants folded (ParamMaxValue
// becomes a ParamConst of ^0) and its selector compiled.
type compiledParam struct {
	kind  ParamKind
	value uint32
	sel   compiledSel
}

func compileParam(ps ParamSource, unitHash []int) compiledParam {
	switch ps.Kind {
	case ParamMaxValue:
		return compiledParam{kind: ParamConst, value: ^uint32(0)}
	case ParamConst:
		return compiledParam{kind: ParamConst, value: ps.Value}
	case ParamCompressedKey:
		return compiledParam{kind: ParamCompressedKey, sel: compileSel(ps.Sel, unitHash)}
	default:
		return compiledParam{kind: ps.Kind}
	}
}

func (cp *compiledParam) resolve(ctx *Context, hashes []uint32) uint32 {
	switch cp.kind {
	case ParamConst:
		return cp.value
	case ParamPacketSize:
		return ctx.Pkt.Size
	case ParamTimestampUs:
		return uint32(ctx.Pkt.TimestampNs / 1000)
	case ParamQueueLength:
		return ctx.Pkt.QueueLength
	case ParamQueueDelay:
		return ctx.Pkt.QueueDelayNs
	case ParamCompressedKey:
		return cp.sel.resolve(hashes)
	case ParamPrevResult:
		return ctx.PrevResult
	case ParamPrevOld:
		return ctx.PrevOld
	default:
		return 0
	}
}

// compiledRule is one rule of a snapCMU's program: every field the packet
// loop touches, flat and pre-resolved. Execution order matches
// executeRule's exactly, so the compiled and interpretive paths stay
// bit-for-bit equivalent.
type compiledRule struct {
	match compiledMatch
	key   compiledSel
	p1    compiledParam
	p2    compiledParam
	prep  Transform
	op    dataplane.StatefulOp
	reg   *dataplane.Register

	// Address translation, reduced to `base + addr>>shift` (shift-based:
	// high bits) or `base + addr&mask` (TCAM-based: low bits).
	base      uint32
	addrShift uint32
	addrMask  uint32
	shifted   bool

	prob      float64
	probGated bool // 0 < prob < 1
	hasPrep   bool // prep.Kind != TransformNone
	chainMin  bool
	detectNew bool

	// sharded routes the stateful op to the worker's private register lane
	// (plain stores, merged at readout) instead of the shared CAS bucket.
	// Set only when the op is exactly mergeable, the register has lanes,
	// and no rule in the snapshot consumes the result bus — see
	// mergeable.go.
	sharded bool

	// teleSlot indexes the worker's pending-hit accumulator (Context.Tele)
	// for this rule, or -1 when the rule needs no per-execution count:
	// telemetry is off, or the compiler proved the rule executes for every
	// packet reaching its pass (first in program, match-all, unsampled) and
	// derives its hits from the snapshot packet counter instead.
	teleSlot int32

	// fastAdd marks the frequency-sketch shape — an unconditional saturating
	// add of a constant (OpCondAdd, constant p1, constant p2 at the
	// saturation bound, no preparation stage and no bus production) — which
	// the frame engine can run as one fetch-and-add per update with no
	// witness traffic, provided nothing in the snapshot reads the result bus
	// (Snapshot.busQuiet). fastAddFull additionally records a full-width
	// register, the precondition for the shared-path ApplyAddBatch.
	fastAdd     bool
	fastAddFull bool
}

// compileRule flattens one enabled rule against its CMU's register and its
// group's unit→hash-slot map. allowShard is the snapshot-wide verdict of
// the bus-consumer scan: false pins every rule to the shared CAS path.
func compileRule(r *Rule, reg *dataplane.Register, unitHash []int, allowShard bool) compiledRule {
	cr := compiledRule{
		teleSlot:  -1,
		match:     compileMatch(r.Filter),
		key:       compileSel(r.Key, unitHash),
		p1:        compileParam(r.P1, unitHash),
		p2:        compileParam(r.P2, unitHash),
		prep:      r.Prep,
		op:        r.Op,
		reg:       reg,
		base:      uint32(r.Mem.Base),
		prob:      r.Prob,
		probGated: r.Prob > 0 && r.Prob < 1,
		hasPrep:   r.Prep.Kind != TransformNone,
		chainMin:  r.ChainMin,
		detectNew: r.DetectNew,
		sharded:   allowShard && reg.Shards() > 0 && shardEligible(r, reg.Mask()),
	}
	n := uint32(r.Mem.Buckets)
	switch {
	case n == 0:
		// Degenerate range: both methods collapse to the base address.
		cr.shifted = true
		cr.addrShift = 32 // addr >> 32 == 0 for uint32 in Go
	case r.Translation == ShiftBased:
		cr.shifted = true
		cr.addrShift = uint32(32 - bits.TrailingZeros32(n))
	default:
		cr.addrMask = n - 1
	}
	cr.fastAdd = cr.op == dataplane.OpCondAdd &&
		!cr.hasPrep && !cr.probGated && !cr.chainMin && !cr.detectNew &&
		cr.p1.kind == ParamConst && cr.p2.kind == ParamConst &&
		cr.p2.value&reg.Mask() == reg.Mask()
	cr.fastAddFull = cr.fastAdd && reg.Mask() == ^uint32(0)
	return cr
}

// exec runs the rule's initialization, preparation, and stateful operation
// — the compiled counterpart of executeRule. The register update goes
// through the CAS path (the snapshot engine runs many workers), except for
// mergeable rules executed by a lane-owning worker, which take the plain
// sharded path and are reduced at readout.
func (r *compiledRule) exec(ctx *Context, hashes []uint32) {
	if r.teleSlot >= 0 {
		ctx.Tele[r.teleSlot]++
	}
	addr := r.key.resolve(hashes)
	var index uint32
	if r.shifted {
		index = r.base + addr>>r.addrShift
	} else {
		index = r.base + addr&r.addrMask
	}
	p1 := r.p1.resolve(ctx, hashes)
	p2 := r.p2.resolve(ctx, hashes)
	if r.chainMin {
		p2 = ctx.RunningMin
	}
	if r.hasPrep {
		var drop bool
		p1, p2, drop = r.prep.apply(ctx, p1, p2)
		if drop {
			ctx.PrepDrops++
			return
		}
	}
	var result, old uint32
	if r.sharded && ctx.Shard >= 0 {
		result, old = r.reg.ShardApply(int(ctx.Shard), r.op, index, p1, p2)
	} else {
		result, old = r.reg.Apply(r.op, index, p1, p2)
	}
	ctx.PrevResult = result
	ctx.PrevOld = old
	if r.chainMin && result > 0 && result < ctx.RunningMin {
		ctx.RunningMin = result
	}
	if r.detectNew {
		ctx.PrevNewFlow = old&p1 == 0
	}
}
