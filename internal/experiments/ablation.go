package experiments

import (
	"flymon/internal/controlplane"
	"flymon/internal/core"
	"flymon/internal/core/algorithms"
	"flymon/internal/dataplane"
	"flymon/internal/metrics"
	"flymon/internal/packet"
	"flymon/internal/sketch"
)

// AblationSubParts quantifies the accuracy cost of FlyMon's compressed-key
// sub-part selection (§3.2): a FlyMon-CMS whose rows consume rotated
// sub-parts of ONE compressed key versus a native CMS with d fully
// independent hash functions, at equal geometry.
func AblationSubParts(scale Scale, seed int64) *Table {
	tr := baseTrace(scale, seed)
	exact := sketch.NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		exact.AddPacket(&tr.Packets[i])
	}

	t := &Table{
		Title:  "Ablation — compressed-key sub-parts vs independent hashes (CMS d=3)",
		Header: []string{"Buckets/row", "FlyMon sub-part ARE", "Independent-hash ARE", "Ratio"},
	}
	for _, buckets := range []int{1 << 10, 1 << 12, 1 << 14} {
		g := groups32(1, buckets)[0]
		task, err := algorithms.InstallCMS(g, 1, packet.MatchAll, packet.KeyFiveTuple, core.Const(1), 3, nil)
		if err != nil {
			panic(err)
		}
		pl := core.NewPipelineWith(g)
		replay(pl, tr)

		native := sketch.NewCMS(packet.KeyFiveTuple, 3, buckets)
		for i := range tr.Packets {
			native.AddPacket(&tr.Packets[i])
		}

		fly := make(map[packet.CanonicalKey]uint64, exact.Flows())
		ind := make(map[packet.CanonicalKey]uint64, exact.Flows())
		for k := range exact.Counts() {
			fly[k] = uint64(task.EstimateKey(k))
			ind[k] = uint64(native.EstimateKey(k))
		}
		a1 := metrics.ARE(exact.Counts(), fly)
		a2 := metrics.ARE(exact.Counts(), ind)
		ratio := "-"
		if a2 > 0 {
			ratio = f2(a1 / a2)
		}
		t.Rows = append(t.Rows, []string{itoa(buckets), f3(a1), f3(a2), ratio})
	}
	t.Notes = append(t.Notes, "the paper claims negligible impact; the ratio should stay near 1")
	return t
}

// AblationTranslation verifies the two address-translation mechanisms are
// functionally interchangeable (§3.3): identical tasks using shift-based
// and TCAM-based translation must produce statistically equal accuracy
// (they use different key bits, so estimates differ per flow but not in
// aggregate).
func AblationTranslation(scale Scale, seed int64) *Table {
	tr := baseTrace(scale, seed)
	exact := sketch.NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		exact.AddPacket(&tr.Packets[i])
	}

	t := &Table{
		Title:  "Ablation — shift-based vs TCAM-based address translation (CMS d=3, quarter partition)",
		Header: []string{"Partition buckets", "Shift ARE", "TCAM ARE"},
	}
	for _, buckets := range []int{1 << 10, 1 << 12} {
		row := []string{itoa(buckets)}
		for _, method := range []core.TranslationMethod{core.ShiftBased, core.TCAMBased} {
			g := groups32(1, buckets*4)[0] // task confined to 1/4 of the register
			rows := make([]core.MemRange, 3)
			for i := range rows {
				rows[i] = core.MemRange{Base: buckets, Buckets: buckets} // second quarter
			}
			task, err := algorithms.InstallCMS(g, 1, packet.MatchAll, packet.KeyFiveTuple, core.Const(1), 3, rows)
			if err != nil {
				panic(err)
			}
			task.Method = method
			for _, loc := range core.NewPipelineWith(g).Locate(1) {
				loc.Rule.Translation = method
			}
			pl := core.NewPipelineWith(g)
			replay(pl, tr)
			est := make(map[packet.CanonicalKey]uint64, exact.Flows())
			for k := range exact.Counts() {
				est[k] = uint64(task.EstimateKey(k))
			}
			row = append(row, f3(metrics.ARE(exact.Counts(), est)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "both methods map uniformly into the partition; accuracy matches")
	return t
}

// AblationMemoryModes compares the accurate and efficient allocation modes
// (§3.4): granted partition sizes for a sweep of requests.
func AblationMemoryModes() *Table {
	t := &Table{
		Title:  "Ablation — accurate vs efficient memory allocation (64K-bucket register, 32 partitions)",
		Header: []string{"Requested buckets", "Accurate grant", "Efficient grant"},
	}
	const minBlock, max = 2048, 65536
	for _, req := range []int{1500, 2500, 3000, 5000, 9000, 20000, 40000} {
		t.Rows = append(t.Rows, []string{
			itoa(req),
			itoa(controlplane.Accurate.PartitionFor(req, minBlock, max)),
			itoa(controlplane.Efficient.PartitionFor(req, minBlock, max)),
		})
	}
	t.Notes = append(t.Notes, "accurate never under-allocates; efficient picks the nearest power of two")
	return t
}

// AblationXORKeys validates the compressed-key XOR combination (§3.1.1):
// an IP-pair task built as C(SrcIP)⊕C(DstIP) must match the accuracy of a
// task hashing the pair directly.
func AblationXORKeys(scale Scale, seed int64) *Table {
	tr := baseTrace(scale, seed)
	exact := sketch.NewExactFrequency(packet.KeyIPPair)
	for i := range tr.Packets {
		exact.AddPacket(&tr.Packets[i])
	}

	buckets := 1 << 12
	t := &Table{
		Title:  "Ablation — XOR-combined keys vs direct pair hashing (CMS d=1)",
		Header: []string{"Variant", "ARE"},
	}

	// Direct: one unit configured for the IP pair.
	{
		g := groups32(1, buckets)[0]
		task, err := algorithms.InstallCMS(g, 1, packet.MatchAll, packet.KeyIPPair, core.Const(1), 1, nil)
		if err != nil {
			panic(err)
		}
		pl := core.NewPipelineWith(g)
		replay(pl, tr)
		est := make(map[packet.CanonicalKey]uint64, exact.Flows())
		for k := range exact.Counts() {
			est[k] = uint64(task.EstimateKey(k))
		}
		t.Rows = append(t.Rows, []string{"direct C(SrcIP-DstIP)", f3(metrics.ARE(exact.Counts(), est))})
	}

	// XOR: units for SrcIP and DstIP, key = C(SrcIP) ⊕ C(DstIP). Install
	// manually since the helper path uses a single unit.
	{
		g := groups32(1, buckets)[0]
		if err := g.ConfigureUnit(0, packet.KeySrcIP); err != nil {
			panic(err)
		}
		if err := g.ConfigureUnit(1, packet.KeyDstIP); err != nil {
			panic(err)
		}
		rule := &core.Rule{
			TaskID: 1,
			Filter: packet.MatchAll,
			Key:    core.XorKey(0, 1),
			P1:     core.Const(1),
			P2:     core.MaxValue(),
			Mem:    core.MemRange{Base: 0, Buckets: buckets},
			Op:     dataplane.OpCondAdd,
		}
		if err := g.CMU(0).InstallRule(rule); err != nil {
			panic(err)
		}
		pl := core.NewPipelineWith(g)
		replay(pl, tr)
		est := make(map[packet.CanonicalKey]uint64, exact.Flows())
		for k := range exact.Counts() {
			// Recompute the XOR key from the pair's halves.
			var p packet.Packet
			p.SrcIP = uint32(k[0])<<24 | uint32(k[1])<<16 | uint32(k[2])<<8 | uint32(k[3])
			p.DstIP = uint32(k[4])<<24 | uint32(k[5])<<16 | uint32(k[6])<<8 | uint32(k[7])
			keys := g.CompressedKeys(&p)
			idx := core.Translate(core.XorKey(0, 1).Resolve(keys), rule.Mem, rule.Translation)
			est[k] = uint64(g.CMU(0).Register().Read(idx))
		}
		t.Rows = append(t.Rows, []string{"XOR C(SrcIP)⊕C(DstIP)", f3(metrics.ARE(exact.Counts(), est))})
	}
	t.Notes = append(t.Notes, "XOR widens the selectable key set to k(k+1)/2 without extra hash units")
	return t
}
