package epoch

import (
	"strings"
	"testing"

	"flymon/internal/analysis"
	"flymon/internal/controlplane"
	"flymon/internal/packet"
)

func newCtrl() *controlplane.Controller {
	return controlplane.NewController(controlplane.Config{Groups: 2, Buckets: 65536, BitWidth: 32})
}

func spec() controlplane.TaskSpec {
	return controlplane.TaskSpec{
		Name: "freq", Key: packet.KeyFiveTuple,
		Attribute: controlplane.AttrFrequency, MemBuckets: 4096, D: 3,
	}
}

func TestRotatorEpochIsolation(t *testing.T) {
	ctrl := newCtrl()
	r, err := NewRotator(ctrl, spec())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	p := packet.Packet{SrcIP: 1, DstIP: 2, Proto: 6}
	k := packet.KeyFiveTuple.Extract(&p)

	// Epoch 0: 10 packets.
	for i := 0; i < 10; i++ {
		ctrl.Process(&p)
	}
	if _, err := r.ReadFrozen(k); err == nil {
		t.Fatal("reading before any rotation must fail")
	}
	if _, err := r.Rotate(); err != nil {
		t.Fatal(err)
	}

	// Epoch 1: 3 packets — they must land ONLY in the new active copy.
	for i := 0; i < 3; i++ {
		ctrl.Process(&p)
	}
	frozen, err := r.ReadFrozen(k)
	if err != nil {
		t.Fatal(err)
	}
	if frozen != 10 {
		t.Fatalf("frozen epoch-0 count = %v, want 10 (frozen copy must stop counting)", frozen)
	}
	active, err := ctrl.EstimateKey(r.ActiveID(), k)
	if err != nil {
		t.Fatal(err)
	}
	if active != 3 {
		t.Fatalf("active epoch-1 count = %v, want 3", active)
	}

	// Second rotation reclaims epoch 0 and freezes epoch 1.
	if _, err := r.Rotate(); err != nil {
		t.Fatal(err)
	}
	frozen, _ = r.ReadFrozen(k)
	if frozen != 3 {
		t.Fatalf("frozen epoch-1 count = %v, want 3", frozen)
	}
	if r.Epoch() != 2 {
		t.Fatalf("epoch = %d", r.Epoch())
	}
	// Exactly two copies live at any time.
	if n := len(ctrl.Tasks()); n != 2 {
		t.Fatalf("live copies = %d, want 2", n)
	}
}

func TestRotatorClose(t *testing.T) {
	ctrl := newCtrl()
	r, err := NewRotator(ctrl, spec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if n := len(ctrl.Tasks()); n != 0 {
		t.Fatalf("close left %d tasks", n)
	}
}

func TestFreezeThawDirect(t *testing.T) {
	ctrl := newCtrl()
	task, err := ctrl.AddTask(spec())
	if err != nil {
		t.Fatal(err)
	}
	p := packet.Packet{SrcIP: 7, Proto: 6}
	k := packet.KeyFiveTuple.Extract(&p)
	ctrl.Process(&p)
	if err := ctrl.FreezeTask(task.ID); err != nil {
		t.Fatal(err)
	}
	ctrl.Process(&p) // not counted
	if v, _ := ctrl.EstimateKey(task.ID, k); v != 1 {
		t.Fatalf("frozen task counted: %v", v)
	}
	if err := ctrl.ThawTask(task.ID); err != nil {
		t.Fatal(err)
	}
	ctrl.Process(&p)
	if v, _ := ctrl.EstimateKey(task.ID, k); v != 2 {
		t.Fatalf("thawed task not counting: %v", v)
	}
	if err := ctrl.FreezeTask(999); err == nil || ctrl.ThawTask(999) == nil {
		t.Fatal("freeze/thaw of unknown task must fail")
	}
}

func TestThawRefusesWhenTrafficTaken(t *testing.T) {
	// Freeze a task, deploy a successor over the same traffic on the same
	// CMUs, then thawing must refuse (one access per packet).
	ctrl := controlplane.NewController(controlplane.Config{Groups: 1, Buckets: 65536, BitWidth: 32})
	old, err := ctrl.AddTask(spec())
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.FreezeTask(old.ID); err != nil {
		t.Fatal(err)
	}
	s := spec()
	s.Name = "successor"
	if _, err := ctrl.AddTask(s); err != nil {
		t.Fatalf("deploying into a frozen task's slice must work: %v", err)
	}
	err = ctrl.ThawTask(old.ID)
	if err == nil || !strings.Contains(err.Error(), "cannot thaw") {
		t.Fatalf("thaw must refuse, got %v", err)
	}
}

func TestHeavyChangerDetectionAcrossEpochs(t *testing.T) {
	// The Table-1 heavy-changer task end to end: two rotated epochs of a
	// frequency task, diffed in the control plane.
	ctrl := newCtrl()
	r, err := NewRotator(ctrl, spec())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	flowA := packet.Packet{SrcIP: 1, Proto: 6} // steady
	flowB := packet.Packet{SrcIP: 2, Proto: 6} // surges in epoch 1
	flowC := packet.Packet{SrcIP: 3, Proto: 6} // disappears in epoch 1

	// Epoch 0.
	for i := 0; i < 100; i++ {
		ctrl.Process(&flowA)
		ctrl.Process(&flowC)
	}
	ctrl.Process(&flowB)
	e0, err := r.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 1.
	for i := 0; i < 100; i++ {
		ctrl.Process(&flowA)
		ctrl.Process(&flowB)
	}
	e1, err := r.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	_ = e0 // e0's copy was reclaimed by the second rotation

	// Read epoch 1 (now frozen) and compare with recorded epoch-0 counts.
	read := func(id int, p *packet.Packet) uint64 {
		v, err := ctrl.EstimateKey(id, packet.KeyFiveTuple.Extract(p))
		if err != nil {
			t.Fatal(err)
		}
		return uint64(v)
	}
	epoch0 := map[string]uint64{"A": 100, "B": 1, "C": 100}
	epoch1 := map[string]uint64{
		"A": read(e1, &flowA), "B": read(e1, &flowB), "C": read(e1, &flowC),
	}
	changers := analysis.HeavyChangers(epoch0, epoch1, 50)
	if changers["A"] {
		t.Fatal("steady flow flagged as changer")
	}
	if !changers["B"] || !changers["C"] {
		t.Fatalf("surge/disappearance not flagged: %v", changers)
	}
}
