package controlplane

import (
	"time"
)

// DelayModel converts a deployment's rule counts into the rule-install
// latency a hardware control plane would incur. Calibrated to the paper's
// measurements (§5.1): ≈3 ms per common table rule, ≈16 ms per hash-mask
// rule; the control plane batches common rules so a burst of entries does
// not grow the delay linearly.
type DelayModel struct {
	CommonRule time.Duration
	HashMask   time.Duration
	BatchSize  int
}

// DefaultDelayModel returns the paper-calibrated model.
func DefaultDelayModel() DelayModel {
	return DelayModel{
		CommonRule: 3 * time.Millisecond,
		HashMask:   16 * time.Millisecond,
		BatchSize:  8,
	}
}

// RuleCount tallies the runtime rules a deployment installs.
type RuleCount struct {
	// Common is the number of ordinary table entries: task filter, key and
	// parameter selection, operation selection, and address translation.
	Common int
	// TCAMEntries counts preparation-stage mapping entries (one-hot
	// coupons, rank tables); they install at common-rule cost but in
	// bursts, so batching matters for them most.
	TCAMEntries int
	// HashMasks is the number of dynamic hash-mask reconfigurations.
	HashMasks int
}

// Total returns the total rule count.
func (rc RuleCount) Total() int { return rc.Common + rc.TCAMEntries + rc.HashMasks }

// Delay returns the modeled deployment delay for the rule counts.
func (m DelayModel) Delay(rc RuleCount) time.Duration {
	batch := m.BatchSize
	if batch < 1 {
		batch = 1
	}
	batches := (rc.Common + rc.TCAMEntries + batch - 1) / batch
	return time.Duration(rc.HashMasks)*m.HashMask + time.Duration(batches)*m.CommonRule
}
