// Package sdm implements a software-defined-measurement controller in the
// style of DREAM/SCREAM (Moshref et al.), the control-plane layer the paper
// positions FlyMon underneath (§3.4): per-epoch accuracy feedback drives
// on-the-fly memory reallocation across tasks, using exactly the runtime
// reconfiguration primitives FlyMon exposes (ResizeTask) — no traffic
// interruption, no P4 reload.
package sdm

import (
	"fmt"
	"sort"

	"flymon/internal/controlplane"
)

// Policy parameterizes the adaptive allocator.
type Policy struct {
	// HighWater and LowWater bound the target register-occupancy band: a
	// task whose occupancy (fraction of non-zero buckets) exceeds
	// HighWater is starved (collisions likely) and wants more memory; one
	// below LowWater is over-provisioned.
	HighWater float64
	LowWater  float64
	// MinBuckets and MaxBuckets clamp per-task grants.
	MinBuckets int
	MaxBuckets int
}

// DefaultPolicy returns the band used by the Fig. 12b-style scenarios.
func DefaultPolicy() Policy {
	return Policy{HighWater: 0.5, LowWater: 0.05, MinBuckets: 2048, MaxBuckets: 65536}
}

// Allocator adapts managed tasks' memory between epochs.
type Allocator struct {
	ctrl   *controlplane.Controller
	policy Policy
	tasks  map[int]bool
}

// NewAllocator wraps a controller with an adaptive policy.
func NewAllocator(ctrl *controlplane.Controller, policy Policy) *Allocator {
	if policy.HighWater <= policy.LowWater {
		panic(fmt.Sprintf("sdm: inverted occupancy band [%v, %v]", policy.LowWater, policy.HighWater))
	}
	return &Allocator{ctrl: ctrl, policy: policy, tasks: make(map[int]bool)}
}

// Manage registers a deployed task for adaptation.
func (a *Allocator) Manage(taskID int) error {
	if _, err := a.ctrl.Task(taskID); err != nil {
		return err
	}
	a.tasks[taskID] = true
	return nil
}

// Unmanage stops adapting a task.
func (a *Allocator) Unmanage(taskID int) { delete(a.tasks, taskID) }

// Occupancy returns the fraction of non-zero buckets across a task's
// register partitions — the accuracy proxy (a loaded CMS row's collision
// probability grows directly with it).
func (a *Allocator) Occupancy(taskID int) (float64, error) {
	rows, err := a.ctrl.ReadRegisters(taskID)
	if err != nil {
		return 0, err
	}
	total, nonzero := 0, 0
	for _, row := range rows {
		total += len(row)
		for _, v := range row {
			if v != 0 {
				nonzero++
			}
		}
	}
	if total == 0 {
		return 0, nil
	}
	return float64(nonzero) / float64(total), nil
}

// Decision records one epoch's action on a task.
type Decision struct {
	TaskID    int
	Occupancy float64
	// OldBuckets and NewBuckets differ when the allocator resized the task
	// (NewBuckets == OldBuckets means no action).
	OldBuckets int
	NewBuckets int
	// Err reports a resize that could not be honored (e.g. no memory).
	Err error
}

// EpochEnd inspects every managed task and reallocates memory: starved
// tasks double, over-provisioned tasks halve. When a grow request cannot
// be satisfied, the allocator first shrinks the most over-provisioned
// donor — DREAM's "rich give to the poor" step. It returns the decisions
// taken, sorted by task ID. Counters restart on resized tasks (FlyMon's
// freeze-and-divert strategy, §6).
func (a *Allocator) EpochEnd() []Decision {
	ids := make([]int, 0, len(a.tasks))
	for id := range a.tasks {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	states := make([]taskState, 0, len(ids))
	for _, id := range ids {
		occ, err := a.Occupancy(id)
		if err != nil {
			continue
		}
		t, err := a.ctrl.Task(id)
		if err != nil {
			continue
		}
		states = append(states, taskState{id: id, occupancy: occ, buckets: t.Buckets})
	}

	var decisions []Decision
	for _, s := range states {
		d := Decision{TaskID: s.id, Occupancy: s.occupancy, OldBuckets: s.buckets, NewBuckets: s.buckets}
		switch {
		case s.occupancy > a.policy.HighWater && s.buckets < a.policy.MaxBuckets:
			want := s.buckets * 2
			if want > a.policy.MaxBuckets {
				want = a.policy.MaxBuckets
			}
			_, err := a.ctrl.ResizeTask(s.id, want)
			if err != nil {
				// Find a donor: the managed task with the lowest
				// occupancy that can still shrink.
				if donor, ok := a.pickDonor(states, s.id); ok {
					if _, derr := a.ctrl.ResizeTask(donor.id, donor.buckets/2); derr == nil {
						decisions = append(decisions, Decision{
							TaskID: donor.id, Occupancy: donor.occupancy,
							OldBuckets: donor.buckets, NewBuckets: donor.buckets / 2,
						})
						_, err = a.ctrl.ResizeTask(s.id, want)
					}
				}
			}
			if err != nil {
				d.Err = err
			} else {
				d.NewBuckets = want
			}
		case s.occupancy < a.policy.LowWater && s.buckets > a.policy.MinBuckets:
			want := s.buckets / 2
			if want < a.policy.MinBuckets {
				want = a.policy.MinBuckets
			}
			if _, err := a.ctrl.ResizeTask(s.id, want); err != nil {
				d.Err = err
			} else {
				d.NewBuckets = want
			}
		}
		decisions = append(decisions, d)
	}
	sort.Slice(decisions, func(i, j int) bool { return decisions[i].TaskID < decisions[j].TaskID })
	return decisions
}

// taskState is one managed task's per-epoch snapshot.
type taskState struct {
	id        int
	occupancy float64
	buckets   int
}

// pickDonor selects the least-occupied shrinkable task other than exclude.
func (a *Allocator) pickDonor(states []taskState, exclude int) (taskState, bool) {
	best := -1
	for i, s := range states {
		if s.id == exclude || s.buckets <= a.policy.MinBuckets {
			continue
		}
		if best < 0 || s.occupancy < states[best].occupancy {
			best = i
		}
	}
	if best < 0 {
		return taskState{}, false
	}
	return states[best], true
}
