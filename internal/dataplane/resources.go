// Package dataplane simulates the RMT (Tofino-class) switch data plane that
// FlyMon targets: a pipeline of match-action (MAU) stages with per-stage
// budgets of hash distribution units, stateful ALUs, SRAM and TCAM blocks,
// VLIW instruction slots and logical table IDs, a pipeline-wide PHV bit
// budget, and registers limited to four preloaded stateful actions and one
// memory access per packet.
//
// The simulator enforces the constraints the paper designs around; the
// resource constants below are calibrated to Tofino 1 and drive the
// resource-usage experiments (Figs. 2, 11, 13).
package dataplane

import "fmt"

// Per-stage and pipeline-wide hardware capacities (Tofino 1 calibration).
const (
	// NumStages is the number of MAU stages in one pipeline.
	NumStages = 12

	// HashUnitsPerStage is the number of hash distribution units per stage.
	// Note that on current RMT hardware a SALU consumes one of these for
	// SRAM addressing even when the address is already computed (§5
	// Setting, footnote 4).
	HashUnitsPerStage = 6

	// SALUsPerStage is the number of stateful ALUs per stage.
	SALUsPerStage = 4

	// SRAMBlocksPerStage is the number of SRAM blocks per stage.
	SRAMBlocksPerStage = 80
	// SRAMBlockBytes is the size of one SRAM block.
	SRAMBlockBytes = 16 * 1024

	// TCAMBlocksPerStage is the number of TCAM blocks per stage.
	TCAMBlocksPerStage = 24
	// TCAMBlockEntries is the number of 44-bit entries per TCAM block.
	TCAMBlockEntries = 512

	// VLIWSlotsPerStage is the number of VLIW instruction slots per stage.
	VLIWSlotsPerStage = 32

	// LogicalTablesPerStage is the number of logical table IDs per stage.
	LogicalTablesPerStage = 16

	// PHVBits is the pipeline-wide packet header vector budget.
	PHVBits = 4096

	// RegisterActionsPerSALU is the number of stateful operations a SALU
	// can preload ("each SALU in Tofino can only pre-load four different
	// operations", §3.1.2).
	RegisterActionsPerSALU = 4
)

// Resources is a vector of hardware resource quantities. Units: hash units,
// SALUs, SRAM blocks, TCAM blocks, VLIW slots, logical table IDs, PHV bits.
type Resources struct {
	HashUnits     int
	SALUs         int
	SRAMBlocks    int
	TCAMBlocks    int
	VLIWSlots     int
	LogicalTables int
	PHVBits       int
}

// Add returns r + o component-wise.
func (r Resources) Add(o Resources) Resources {
	return Resources{
		HashUnits:     r.HashUnits + o.HashUnits,
		SALUs:         r.SALUs + o.SALUs,
		SRAMBlocks:    r.SRAMBlocks + o.SRAMBlocks,
		TCAMBlocks:    r.TCAMBlocks + o.TCAMBlocks,
		VLIWSlots:     r.VLIWSlots + o.VLIWSlots,
		LogicalTables: r.LogicalTables + o.LogicalTables,
		PHVBits:       r.PHVBits + o.PHVBits,
	}
}

// Scale returns r × n component-wise.
func (r Resources) Scale(n int) Resources {
	return Resources{
		HashUnits:     r.HashUnits * n,
		SALUs:         r.SALUs * n,
		SRAMBlocks:    r.SRAMBlocks * n,
		TCAMBlocks:    r.TCAMBlocks * n,
		VLIWSlots:     r.VLIWSlots * n,
		LogicalTables: r.LogicalTables * n,
		PHVBits:       r.PHVBits * n,
	}
}

// FitsWithin reports whether r fits inside capacity c.
func (r Resources) FitsWithin(c Resources) bool {
	return r.HashUnits <= c.HashUnits &&
		r.SALUs <= c.SALUs &&
		r.SRAMBlocks <= c.SRAMBlocks &&
		r.TCAMBlocks <= c.TCAMBlocks &&
		r.VLIWSlots <= c.VLIWSlots &&
		r.LogicalTables <= c.LogicalTables &&
		r.PHVBits <= c.PHVBits
}

// StageCapacity returns the resource capacity of one MAU stage (PHV is a
// pipeline-wide resource and is reported as zero here).
func StageCapacity() Resources {
	return Resources{
		HashUnits:     HashUnitsPerStage,
		SALUs:         SALUsPerStage,
		SRAMBlocks:    SRAMBlocksPerStage,
		TCAMBlocks:    TCAMBlocksPerStage,
		VLIWSlots:     VLIWSlotsPerStage,
		LogicalTables: LogicalTablesPerStage,
	}
}

// PipelineCapacity returns the capacity of a whole pipeline of n stages.
func PipelineCapacity(n int) Resources {
	c := StageCapacity().Scale(n)
	c.PHVBits = PHVBits
	return c
}

// Utilization is the fractional usage of each resource type.
type Utilization struct {
	HashUnits     float64
	SALUs         float64
	SRAMBlocks    float64
	TCAMBlocks    float64
	VLIWSlots     float64
	LogicalTables float64
	PHVBits       float64
}

// UtilizationOf divides used by cap component-wise (0 for zero capacity).
func UtilizationOf(used, cap_ Resources) Utilization {
	frac := func(u, c int) float64 {
		if c == 0 {
			return 0
		}
		return float64(u) / float64(c)
	}
	return Utilization{
		HashUnits:     frac(used.HashUnits, cap_.HashUnits),
		SALUs:         frac(used.SALUs, cap_.SALUs),
		SRAMBlocks:    frac(used.SRAMBlocks, cap_.SRAMBlocks),
		TCAMBlocks:    frac(used.TCAMBlocks, cap_.TCAMBlocks),
		VLIWSlots:     frac(used.VLIWSlots, cap_.VLIWSlots),
		LogicalTables: frac(used.LogicalTables, cap_.LogicalTables),
		PHVBits:       frac(used.PHVBits, cap_.PHVBits),
	}
}

// Max returns the largest component of u.
func (u Utilization) Max() float64 {
	m := u.HashUnits
	for _, v := range []float64{u.SALUs, u.SRAMBlocks, u.TCAMBlocks, u.VLIWSlots, u.LogicalTables, u.PHVBits} {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the average across the six stage-local resource types (PHV
// excluded, matching the paper's "average resource overhead" phrasing).
func (u Utilization) Mean() float64 {
	return (u.HashUnits + u.SALUs + u.SRAMBlocks + u.TCAMBlocks + u.VLIWSlots + u.LogicalTables) / 6
}

// String implements fmt.Stringer.
func (u Utilization) String() string {
	return fmt.Sprintf("hash=%.1f%% salu=%.1f%% sram=%.1f%% tcam=%.1f%% vliw=%.1f%% ltid=%.1f%% phv=%.1f%%",
		u.HashUnits*100, u.SALUs*100, u.SRAMBlocks*100, u.TCAMBlocks*100,
		u.VLIWSlots*100, u.LogicalTables*100, u.PHVBits*100)
}

// SRAMBlocksFor returns the number of SRAM blocks needed for n buckets of
// the given bit width (rounded up to whole blocks).
func SRAMBlocksFor(buckets, bitWidth int) int {
	bytes := (buckets*bitWidth + 7) / 8
	blocks := (bytes + SRAMBlockBytes - 1) / SRAMBlockBytes
	if blocks < 1 {
		blocks = 1
	}
	return blocks
}

// TCAMBlocksFor returns the number of TCAM blocks needed for n entries.
func TCAMBlocksFor(entries int) int {
	if entries <= 0 {
		return 0
	}
	return (entries + TCAMBlockEntries - 1) / TCAMBlockEntries
}
