package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
)

// Handler returns the admin-endpoint mux flymond mounts on its -admin
// listener:
//
//	/metrics       Prometheus text exposition of the full registry
//	/debug/events  the reconfiguration journal as JSON
//	/debug/pprof/  the standard Go profiler endpoints
//	/              a plain index of the above
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteMetrics(w)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Total   uint64  `json:"total"`
			Dropped uint64  `json:"dropped"`
			Events  []Event `json:"events"`
		}{r.Journal.Total(), r.Journal.Dropped(), r.Journal.Events()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "flymond admin endpoints:\n  /metrics\n  /debug/events\n  /debug/pprof/\n")
	})
	return mux
}

// WriteMetrics renders the registry as Prometheus text-format metrics,
// followed by any sections registered via AddMetricsWriter.
func (r *Registry) WriteMetrics(w io.Writer) {
	rep := r.Report()
	WriteMetricsReport(w, rep)
	r.writeExternal(w)
}

// WriteMetricsReport renders an already-assembled Report as Prometheus text.
// Split out so flymonctl can render a report fetched over the control
// channel without re-scraping.
func WriteMetricsReport(w io.Writer, rep Report) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("# HELP flymon_uptime_seconds Time since the telemetry registry was created.\n")
	p("# TYPE flymon_uptime_seconds gauge\n")
	p("flymon_uptime_seconds %g\n", float64(rep.UptimeNs)/1e9)

	dp := rep.DataPlane
	p("# HELP flymon_packets_total Packets processed by the data plane.\n")
	p("# TYPE flymon_packets_total counter\n")
	p("flymon_packets_total %d\n", dp.Packets)
	p("# HELP flymon_recirculated_total Packets recirculated into spliced groups.\n")
	p("# TYPE flymon_recirculated_total counter\n")
	p("flymon_recirculated_total %d\n", dp.Recirculated)

	p("# HELP flymon_stage_activity_total Per-stage CMU activity (C/I/P/O).\n")
	p("# TYPE flymon_stage_activity_total counter\n")
	p("flymon_stage_activity_total{stage=\"compression\"} %d\n", dp.Stages.Compression)
	p("flymon_stage_activity_total{stage=\"initialization\"} %d\n", dp.Stages.Initialization)
	p("flymon_stage_activity_total{stage=\"preparation\"} %d\n", dp.Stages.Preparation)
	p("flymon_stage_activity_total{stage=\"operation\"} %d\n", dp.Stages.Operation)

	if len(dp.Rules) > 0 {
		p("# HELP flymon_rule_hits_total Rule executions per installed CMU rule.\n")
		p("# TYPE flymon_rule_hits_total counter\n")
		for _, rs := range dp.Rules {
			p("flymon_rule_hits_total{group=\"%d\",cmu=\"%d\",task=\"%d\",op=\"%s\"} %d\n",
				rs.Group, rs.CMU, rs.Task, rs.Op, rs.Hits)
		}
	}

	if len(dp.Registers) > 0 {
		p("# HELP flymon_register_buckets Configured buckets per CMU register.\n")
		p("# TYPE flymon_register_buckets gauge\n")
		for _, rg := range dp.Registers {
			p("flymon_register_buckets{group=\"%d\",cmu=\"%d\"} %d\n", rg.Group, rg.CMU, rg.Buckets)
		}
		p("# HELP flymon_register_occupied_buckets Non-zero buckets per CMU register.\n")
		p("# TYPE flymon_register_occupied_buckets gauge\n")
		for _, rg := range dp.Registers {
			p("flymon_register_occupied_buckets{group=\"%d\",cmu=\"%d\"} %d\n", rg.Group, rg.CMU, rg.Occupied)
		}
		p("# HELP flymon_register_clamps_total CondADD saturation clamp events per CMU register.\n")
		p("# TYPE flymon_register_clamps_total counter\n")
		for _, rg := range dp.Registers {
			p("flymon_register_clamps_total{group=\"%d\",cmu=\"%d\"} %d\n", rg.Group, rg.CMU, rg.Clamps)
		}
		p("# HELP flymon_register_accesses_total Stateful operations applied per CMU register.\n")
		p("# TYPE flymon_register_accesses_total counter\n")
		for _, rg := range dp.Registers {
			p("flymon_register_accesses_total{group=\"%d\",cmu=\"%d\"} %d\n", rg.Group, rg.CMU, rg.Accesses)
		}
	}

	p("# HELP flymon_sharded_rules Rules routed to per-worker register lanes.\n")
	p("# TYPE flymon_sharded_rules gauge\n")
	p("flymon_sharded_rules %d\n", dp.ShardedRules)
	p("# HELP flymon_fallback_rules Rules pinned to the shared-CAS path.\n")
	p("# TYPE flymon_fallback_rules gauge\n")
	p("flymon_fallback_rules %d\n", dp.FallbackRules)

	if rp := rep.Replay; rp != nil {
		active := 0
		if rp.Active {
			active = 1
		}
		p("# HELP flymon_replay_active Whether a trace replay is currently attached.\n")
		p("# TYPE flymon_replay_active gauge\n")
		p("flymon_replay_active %d\n", active)
		p("# HELP flymon_replay_packets_total Packets delivered to workers by the replay ring.\n")
		p("# TYPE flymon_replay_packets_total counter\n")
		p("flymon_replay_packets_total %d\n", rp.Packets)
		p("# HELP flymon_replay_producers Producer goroutines still feeding the ring.\n")
		p("# TYPE flymon_replay_producers gauge\n")
		p("flymon_replay_producers %d\n", rp.Producers)
		p("# HELP flymon_replay_ring_capacity Span capacity of the replay ring.\n")
		p("# TYPE flymon_replay_ring_capacity gauge\n")
		p("flymon_replay_ring_capacity %d\n", rp.RingCap)
		p("# HELP flymon_replay_ring_occupancy Spans enqueued but not yet consumed.\n")
		p("# TYPE flymon_replay_ring_occupancy gauge\n")
		p("flymon_replay_ring_occupancy %d\n", rp.RingOccupancy)
		p("# HELP flymon_replay_ring_spans_total Spans ever published to the ring.\n")
		p("# TYPE flymon_replay_ring_spans_total counter\n")
		p("flymon_replay_ring_spans_total %d\n", rp.RingSpans)
		p("# HELP flymon_replay_ring_stalls_total Ring waits by side (push = ring full, pop = ring empty).\n")
		p("# TYPE flymon_replay_ring_stalls_total counter\n")
		p("flymon_replay_ring_stalls_total{side=\"push\"} %d\n", rp.PushStalls)
		p("flymon_replay_ring_stalls_total{side=\"pop\"} %d\n", rp.PopStalls)
	}

	cp := rep.ControlPlane
	p("# HELP flymon_snapshot_version Monotonic version of the published pipeline snapshot.\n")
	p("# TYPE flymon_snapshot_version gauge\n")
	p("flymon_snapshot_version %d\n", cp.SnapshotVersion)
	p("# HELP flymon_reconfig_events_total Reconfiguration events ever journaled.\n")
	p("# TYPE flymon_reconfig_events_total counter\n")
	p("flymon_reconfig_events_total %d\n", cp.EventsTotal)
	p("# HELP flymon_reconfig_events_dropped_total Journal entries evicted by the bounded ring.\n")
	p("# TYPE flymon_reconfig_events_dropped_total counter\n")
	p("flymon_reconfig_events_dropped_total %d\n", cp.EventsDropped)

	writeHistogram(p, "flymon_reconfig_latency_seconds", "Latency of control-plane mutations (deploy/remove/resize/split/rekey).", cp.MutationLatency)
	writeHistogram(p, "flymon_drain_latency_seconds", "Latency of register-lane drains on the query path.", cp.DrainLatency)

	writeRPC(p, rep.RPCClient, rep.RPCServer)

	fl := rep.Fleet
	p("# HELP flymon_fleet_fan_outs_total Fleet-wide operations issued by RemoteFleet.\n")
	p("# TYPE flymon_fleet_fan_outs_total counter\n")
	p("flymon_fleet_fan_outs_total %d\n", fl.FanOuts)
	p("# HELP flymon_fleet_op_failures_total Per-switch operation failures inside fleet fan-outs.\n")
	p("# TYPE flymon_fleet_op_failures_total counter\n")
	p("flymon_fleet_op_failures_total %d\n", fl.OpFailures)
	p("# HELP flymon_fleet_partial_merges_total Degraded-mode merges missing at least one switch.\n")
	p("# TYPE flymon_fleet_partial_merges_total counter\n")
	p("flymon_fleet_partial_merges_total %d\n", fl.PartialMerges)
	p("# HELP flymon_fleet_health_transitions_total Switch health state transitions.\n")
	p("# TYPE flymon_fleet_health_transitions_total counter\n")
	p("flymon_fleet_health_transitions_total{to=\"healthy\"} %d\n", fl.ToHealthy)
	p("flymon_fleet_health_transitions_total{to=\"degraded\"} %d\n", fl.ToDegraded)
	p("flymon_fleet_health_transitions_total{to=\"down\"} %d\n", fl.ToDown)

	p("# HELP flymon_fleet_session_transitions_total Liveness session state transitions.\n")
	p("# TYPE flymon_fleet_session_transitions_total counter\n")
	p("flymon_fleet_session_transitions_total{to=\"up\"} %d\n", fl.SessionToUp)
	p("flymon_fleet_session_transitions_total{to=\"init\"} %d\n", fl.SessionToInit)
	p("flymon_fleet_session_transitions_total{to=\"down\"} %d\n", fl.SessionToDown)
	p("# HELP flymon_fleet_ejects_total Switches pulled from fan-outs/merges by liveness.\n")
	p("# TYPE flymon_fleet_ejects_total counter\n")
	p("flymon_fleet_ejects_total %d\n", fl.Ejects)
	p("# HELP flymon_fleet_rejoins_total Switches readmitted after liveness recovery.\n")
	p("# TYPE flymon_fleet_rejoins_total counter\n")
	p("flymon_fleet_rejoins_total %d\n", fl.Rejoins)
	p("# HELP flymon_fleet_reconcile_runs_total Desired-vs-observed anti-entropy passes.\n")
	p("# TYPE flymon_fleet_reconcile_runs_total counter\n")
	p("flymon_fleet_reconcile_runs_total %d\n", fl.ReconcileRuns)
	p("# HELP flymon_fleet_redeploys_total Missing tasks re-deployed by the reconciler.\n")
	p("# TYPE flymon_fleet_redeploys_total counter\n")
	p("flymon_fleet_redeploys_total %d\n", fl.Redeploys)
	p("# HELP flymon_fleet_reconcile_errors_total Per-switch reconcile failures.\n")
	p("# TYPE flymon_fleet_reconcile_errors_total counter\n")
	p("flymon_fleet_reconcile_errors_total %d\n", fl.ReconcileErrors)

	if len(fl.Sessions) > 0 {
		p("# HELP flymon_fleet_session_state Liveness session state per switch (0=down, 1=init, 2=up).\n")
		p("# TYPE flymon_fleet_session_state gauge\n")
		for _, s := range fl.Sessions {
			v := 0
			switch s.State {
			case "init":
				v = 1
			case "up":
				v = 2
			}
			p("flymon_fleet_session_state{switch=\"%d\",addr=\"%s\"} %d\n", s.Switch, s.Addr, v)
		}
		p("# HELP flymon_fleet_session_damped Whether flap damping is holding the switch out of service.\n")
		p("# TYPE flymon_fleet_session_damped gauge\n")
		for _, s := range fl.Sessions {
			v := 0
			if s.Damped {
				v = 1
			}
			p("flymon_fleet_session_damped{switch=\"%d\",addr=\"%s\"} %d\n", s.Switch, s.Addr, v)
		}
	}

	writeHistogram(p, "flymon_fleet_detection_seconds", "Liveness failure-detection latency (last good reply to Down).", fl.DetectionTime)

	mt := fl.MergeTree
	p("# HELP flymon_fleet_merge_queries_total Merge-tree fleet queries executed, by engine.\n")
	p("# TYPE flymon_fleet_merge_queries_total counter\n")
	p("flymon_fleet_merge_queries_total{engine=\"tree\"} %d\n", mt.Queries)
	p("flymon_fleet_merge_queries_total{engine=\"flat\"} %d\n", mt.FlatFolds)
	p("# HELP flymon_fleet_merge_nodes_total Interior merge nodes executed by the merge tree.\n")
	p("# TYPE flymon_fleet_merge_nodes_total counter\n")
	p("flymon_fleet_merge_nodes_total %d\n", mt.Merges)
	p("# HELP flymon_fleet_merge_epoch_queries_total Fleet queries pinned to an epoch boundary.\n")
	p("# TYPE flymon_fleet_merge_epoch_queries_total counter\n")
	p("flymon_fleet_merge_epoch_queries_total %d\n", mt.EpochQueries)
	p("# HELP flymon_fleet_merge_depth Depth of the last completed merge tree.\n")
	p("# TYPE flymon_fleet_merge_depth gauge\n")
	p("flymon_fleet_merge_depth %d\n", mt.LastDepth)
	p("# HELP flymon_fleet_merge_fanout Leaves merged by the last completed merge tree.\n")
	p("# TYPE flymon_fleet_merge_fanout gauge\n")
	p("flymon_fleet_merge_fanout %d\n", mt.LastFanout)
	p("# HELP flymon_fleet_merge_stragglers_total Epoch-query straggler outcomes by policy result.\n")
	p("# TYPE flymon_fleet_merge_stragglers_total counter\n")
	p("flymon_fleet_merge_stragglers_total{outcome=\"caught_up\"} %d\n", mt.StragglerWaits)
	p("flymon_fleet_merge_stragglers_total{outcome=\"skipped\"} %d\n", mt.StragglersSkipped)
	p("flymon_fleet_merge_stragglers_total{outcome=\"timed_out\"} %d\n", mt.StragglersTimedOut)
	writeHistogram(p, "flymon_fleet_merge_latency_seconds", "Latency of one interior merge node.", mt.MergeLatency)
	for lvl := range mt.LevelLatency {
		h := mt.LevelLatency[lvl]
		if h.Count == 0 {
			continue
		}
		writeHistogram(p, fmt.Sprintf("flymon_fleet_merge_level%d_latency_seconds", lvl),
			fmt.Sprintf("Latency of interior merges at tree level %d.", lvl), h)
	}
	writeHistogram(p, "flymon_fleet_merge_straggler_wait_seconds", "Time spent polling epoch stragglers.", mt.StragglerWait)
}

func writeHistogram(p func(string, ...any), name, help string, h HistogramSnapshot) {
	p("# HELP %s %s\n", name, help)
	p("# TYPE %s histogram\n", name)
	var cum uint64
	for i, n := range h.Buckets {
		cum += n
		if i == HistogramBuckets-1 {
			break // the open-ended bucket is the +Inf line below
		}
		// Skip interior empty prefixes? No: Prometheus wants every bucket,
		// but 31 lines per histogram is noisy — emit only buckets up to the
		// last non-empty one, then +Inf. Cumulative values stay correct.
		if cum == 0 {
			continue
		}
		p("%s_bucket{le=\"%g\"} %d\n", name, float64(BucketUpperNs(i))/1e9, cum)
	}
	p("%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	p("%s_sum %g\n", name, float64(h.SumNs)/1e9)
	p("%s_count %d\n", name, h.Count)
}

// writeRPC renders both control-channel sides as one metric family per
// counter (a family's HELP/TYPE may appear only once in the exposition).
func writeRPC(p func(string, ...any), client, server RPCReport) {
	sides := []struct {
		name string
		r    RPCReport
	}{{"client", client}, {"server", server}}
	family := func(name, help string, field func(EndpointSnapshot) uint64) {
		p("# HELP %s %s\n", name, help)
		p("# TYPE %s counter\n", name)
		for _, s := range sides {
			for _, ep := range s.r.Endpoints {
				p("%s{side=\"%s\",method=\"%s\"} %d\n", name, s.name, ep.Method, field(ep))
			}
		}
	}
	family("flymon_rpc_requests_total", "Control-channel requests per endpoint.",
		func(ep EndpointSnapshot) uint64 { return ep.Requests })
	family("flymon_rpc_failures_total", "Control-channel request failures per endpoint.",
		func(ep EndpointSnapshot) uint64 { return ep.Failures })
	family("flymon_rpc_retries_total", "Client retry attempts per endpoint.",
		func(ep EndpointSnapshot) uint64 { return ep.Retries })
	family("flymon_rpc_timeouts_total", "Request failures classified as timeouts per endpoint.",
		func(ep EndpointSnapshot) uint64 { return ep.Timeouts })
	p("# HELP flymon_rpc_breaker_transitions_total Circuit-breaker state transitions.\n")
	p("# TYPE flymon_rpc_breaker_transitions_total counter\n")
	for _, s := range sides {
		p("flymon_rpc_breaker_transitions_total{side=\"%s\",to=\"open\"} %d\n", s.name, s.r.BreakerOpen)
		p("flymon_rpc_breaker_transitions_total{side=\"%s\",to=\"half-open\"} %d\n", s.name, s.r.BreakerHalfOpen)
		p("flymon_rpc_breaker_transitions_total{side=\"%s\",to=\"closed\"} %d\n", s.name, s.r.BreakerClosed)
	}
	p("# HELP flymon_rpc_server_panics_total Handler panics recovered into error responses.\n")
	p("# TYPE flymon_rpc_server_panics_total counter\n")
	p("flymon_rpc_server_panics_total %d\n", server.Panics)
}
