package sketch

import (
	"fmt"

	"flymon/internal/hashing"
	"flymon/internal/packet"
)

// CMS is a Count-Min Sketch (Cormode & Muthukrishnan): d rows of w 32-bit
// counters. Add adds a parameter to one counter per row; Estimate returns
// the minimum across rows, an overestimate with classic (ε, δ) guarantees.
type CMS struct {
	spec packet.KeySpec
	d, w int
	rows [][]uint32
	hash *hashing.Family
}

// NewCMS builds a d×w Count-Min Sketch keyed by spec. w is rounded up to a
// power of two so indexing is a mask (as on hardware).
func NewCMS(spec packet.KeySpec, d, w int) *CMS {
	if d <= 0 || w <= 0 {
		panic(fmt.Sprintf("sketch: invalid CMS dimensions d=%d w=%d", d, w))
	}
	w = ceilPow2(w)
	s := &CMS{spec: spec, d: d, w: w, hash: hashing.NewFamily(d, spec)}
	s.rows = make([][]uint32, d)
	backing := make([]uint32, d*w)
	for j := range s.rows {
		s.rows[j], backing = backing[:w], backing[w:]
	}
	return s
}

// Add adds v to the flow of packet p.
func (s *CMS) Add(p *packet.Packet, v uint32) {
	for j := 0; j < s.d; j++ {
		idx := s.hash.Hash(j, p) & uint32(s.w-1)
		s.rows[j][idx] = satAdd32(s.rows[j][idx], v)
	}
}

// AddPacket counts packet p (parameter = 1).
func (s *CMS) AddPacket(p *packet.Packet) { s.Add(p, 1) }

// Estimate returns the count-min estimate for p's flow.
func (s *CMS) Estimate(p *packet.Packet) uint32 {
	min := ^uint32(0)
	for j := 0; j < s.d; j++ {
		idx := s.hash.Hash(j, p) & uint32(s.w-1)
		if c := s.rows[j][idx]; c < min {
			min = c
		}
	}
	return min
}

// EstimateKey returns the estimate for a canonical key (used when scoring
// against ground truth without re-materializing packets).
func (s *CMS) EstimateKey(k packet.CanonicalKey) uint32 {
	min := ^uint32(0)
	for j := 0; j < s.d; j++ {
		idx := s.hash.HashBytes(j, k[:]) & uint32(s.w-1)
		if c := s.rows[j][idx]; c < min {
			min = c
		}
	}
	return min
}

// Depth returns d. Width returns w.
func (s *CMS) Depth() int { return s.d }

// Width returns the per-row counter count.
func (s *CMS) Width() int { return s.w }

// Row exposes row j's counters (read-only use).
func (s *CMS) Row(j int) []uint32 { return s.rows[j] }

// MemoryBytes returns the stateful memory footprint (counters only).
func (s *CMS) MemoryBytes() int { return s.d * s.w * 4 }

// Reset zeroes all counters.
func (s *CMS) Reset() {
	for _, row := range s.rows {
		clear(row)
	}
}

func satAdd32(a, b uint32) uint32 {
	c := a + b
	if c < a {
		return ^uint32(0)
	}
	return c
}

func ceilPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}
