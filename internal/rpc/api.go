package rpc

import (
	"fmt"
	"time"

	"flymon/internal/controlplane"
	"flymon/internal/packet"
	"flymon/internal/tracing"
)

// Method names of the control channel.
const (
	MethodAddTask       = "add_task"
	MethodRemoveTask    = "remove_task"
	MethodResizeTask    = "resize_task"
	MethodListTasks     = "list_tasks"
	MethodEstimate      = "estimate"
	MethodCardinality   = "cardinality"
	MethodContains      = "contains"
	MethodReported      = "reported"
	MethodDistribution  = "distribution"
	MethodReadRegisters = "read_registers"
	MethodResources     = "resources"
	MethodReport        = "resource_report"
	MethodSplitTask     = "split_task"
	MethodGenTrace      = "gen_trace"
	MethodLoadTrace     = "load_trace"
	MethodReplay        = "replay"
	MethodStats         = "stats"
	MethodTelemetry     = "telemetry"
	MethodPing          = "ping"
	// MethodHello is the BFD-style liveness probe: a controller-side
	// session sends its state at a configured tx interval and the daemon
	// answers with its own, driving the Down/Init/Up three-way handshake
	// (see internal/netwide liveness). Unlike MethodPing it carries session
	// state, so both ends learn not just "reachable" but "the peer has seen
	// my recent hellos" — and a restarted daemon is unmasked immediately by
	// its fresh session state and changed incarnation.
	MethodHello = "hello"
	// MethodDebugPanic is an operator fault drill: the handler panics on
	// purpose so deployments can verify the daemon's panic containment
	// (the panic becomes an error Response; the daemon keeps serving).
	MethodDebugPanic = "debug_panic"

	// Epoch-coherent readout protocol (the fleet merge tree's snapshot
	// plane). A daemon hosts an epoch.Rotator per epoch task: epoch_deploy
	// creates it, epoch_rotate advances it to a target epoch (idempotent —
	// safe to re-send, and a straggler catches up in one call) caching a
	// packed register snapshot per completed epoch, read_epoch serves a
	// cached snapshot, and epoch_remove reclaims both copies.
	MethodEpochDeploy = "epoch_deploy"
	MethodEpochRotate = "epoch_rotate"
	MethodReadEpoch   = "read_epoch"
	MethodEpochRemove = "epoch_remove"
	// MethodKeyIndices maps a flow key to its per-row register indices on a
	// frequency task — the piece a mirror-less query client (flymonctl
	// query) needs to turn merged fleet rows into a per-key estimate.
	MethodKeyIndices = "key_indices"
	// MethodTraceDump exports the daemon's bounded span buffer: the
	// controller (or flymonctl trace) collects dumps fleet-wide and
	// assembles them with its own spans into end-to-end trace trees.
	MethodTraceDump = "trace_dump"
)

// AddTaskParams carries a task spec. WantID, when positive, pins the
// assigned task ID (controlplane.AddTaskAt) — the reconciler's idempotent
// re-deploy path, which must reproduce the mirror's ID on a restarted
// daemon even across gaps left by removals.
type AddTaskParams struct {
	Spec   controlplane.TaskSpec `json:"spec"`
	WantID int                   `json:"want_id,omitempty"`
}

// Liveness session states on the wire (the BFD-style three-way handshake
// values; AdminDown is not modeled — a closed session simply stops
// probing).
const (
	HelloStateDown = 0
	HelloStateInit = 1
	HelloStateUp   = 2
)

// HelloStateString renders a wire-level session state.
func HelloStateString(s int) string {
	switch s {
	case HelloStateDown:
		return "down"
	case HelloStateInit:
		return "init"
	case HelloStateUp:
		return "up"
	default:
		return fmt.Sprintf("state(%d)", s)
	}
}

// HelloParams is one liveness probe. Session is the sender's discriminator
// (unique per session instance, so a restarted controller starts a fresh
// handshake instead of inheriting stale daemon-side state); State is the
// sender's current session state; TxIntervalNs advertises the sender's tx
// cadence so the daemon can garbage-collect sessions that stopped probing.
type HelloParams struct {
	Session      string `json:"session"`
	State        int    `json:"state"`
	TxIntervalNs int64  `json:"tx_interval_ns,omitempty"`
}

// HelloResult answers a probe with the daemon's session state after
// processing the received state (the other half of the three-way
// handshake). Incarnation identifies this daemon process instance: it
// changes when the daemon restarts, so a controller that sees a new
// incarnation knows the daemon's tasks are gone even if the restart fell
// between two probes. Tasks is the deployed task count — a cheap
// convergence signal for fleet status displays.
type HelloResult struct {
	State       int   `json:"state"`
	Incarnation int64 `json:"incarnation"`
	UptimeNs    int64 `json:"uptime_ns"`
	Tasks       int   `json:"tasks"`
	Sessions    int   `json:"sessions"`
}

// TaskResult describes a deployed task.
type TaskResult struct {
	ID          int           `json:"id"`
	Name        string        `json:"name"`
	Algorithm   string        `json:"algorithm"`
	D           int           `json:"d"`
	Groups      []int         `json:"groups"`
	Buckets     int           `json:"buckets"`
	MemoryBytes int           `json:"memory_bytes"`
	Delay       time.Duration `json:"deploy_delay_ns"`
}

// TaskIDParams addresses an existing task.
type TaskIDParams struct {
	ID int `json:"id"`
}

// ResizeParams changes a task's memory.
type ResizeParams struct {
	ID         int `json:"id"`
	NewBuckets int `json:"new_buckets"`
}

// KeyParams addresses a task and a canonical flow key.
type KeyParams struct {
	ID  int    `json:"id"`
	Key []byte `json:"key"` // packet.CanonicalKey bytes
}

// CandidatesParams addresses a task and candidate keys for detection.
type CandidatesParams struct {
	ID         int      `json:"id"`
	Candidates [][]byte `json:"candidates"`
}

// EstimateResult is a scalar estimate.
type EstimateResult struct {
	Value float64 `json:"value"`
}

// BoolResult is a boolean answer.
type BoolResult struct {
	Value bool `json:"value"`
}

// ReportedResult lists the detected keys.
type ReportedResult struct {
	Keys [][]byte `json:"keys"`
}

// DistributionResult is an estimated flow-size distribution plus entropy.
type DistributionResult struct {
	Sizes   []uint64  `json:"sizes"`
	Counts  []float64 `json:"counts"`
	Entropy float64   `json:"entropy"`
}

// frameProvider is implemented by result types whose bulk payload rides
// the binary frame side-channel: the server writes the returned bytes
// after the response line instead of encoding them into the JSON body.
type frameProvider interface{ frameBytes() []byte }

// frameReceiver is the client side of the side-channel: callOnce hands a
// result the raw frame bytes it consumed off the stream.
type frameReceiver interface{ setFrameBytes([]byte) }

// RegistersResult is a raw register readout (one slice per CMU row).
// Exactly one encoding is populated: Rows is the legacy JSON-array form;
// RowLens announces a binary frame of little-endian uint32 registers
// following the response line, sliced into rows of the given lengths. A
// profile of 256-switch fleet queries showed the earlier base64-in-JSON
// packing still spending most of each query inside encoding/json
// (validate + compact + unquote passes over the bulk); the frame is the
// difference between the codec dominating query latency and the merge
// kernels dominating it.
type RegistersResult struct {
	Rows    [][]uint32 `json:"rows,omitempty"`
	RowLens []int      `json:"row_lens,omitempty"`
	frame   []byte
}

func (r RegistersResult) frameBytes() []byte      { return r.frame }
func (r *RegistersResult) setFrameBytes(b []byte) { r.frame = b }

// ReadRegistersParams addresses a task readout. Packed requests the
// binary frame encoding; a legacy {"id": N} request (TaskIDParams) decodes
// with Packed=false, so old clients keep getting JSON arrays.
type ReadRegistersParams struct {
	ID     int  `json:"id"`
	Packed bool `json:"packed,omitempty"`
}

// RegisterRows decodes a RegistersResult into plain rows, whichever
// encoding the daemon used.
func (r *RegistersResult) RegisterRows() [][]uint32 { return r.FrameRows(nil) }

// FrameRows decodes the readout into dst (geometry-matched buffers are
// reused — the fleet merge tree recycles leaf buffers through this path).
// Legacy JSON-array responses return Rows directly.
func (r *RegistersResult) FrameRows(dst [][]uint32) [][]uint32 {
	if r.RowLens != nil {
		return UnpackFrame(r.frame, r.RowLens, dst)
	}
	return r.Rows
}

// ResourcesResult reports free memory per CMU and deployed task count.
type ResourcesResult struct {
	FreeBuckets [][]int `json:"free_buckets"`
	Tasks       int     `json:"tasks"`
}

// SplitResult reports the two subtasks a split produced.
type SplitResult struct {
	Lo TaskResult `json:"lo"`
	Hi TaskResult `json:"hi"`
}

// LoadTraceParams points the daemon at a binary trace file on its local
// filesystem (the trafficgen output format).
type LoadTraceParams struct {
	Path string `json:"path"`
}

// ReportResult carries the per-group occupancy report.
type ReportResult struct {
	Groups []controlplane.GroupReport `json:"groups"`
}

// GenTraceParams synthesizes a workload inside the daemon.
type GenTraceParams struct {
	Flows   int     `json:"flows"`
	Packets int     `json:"packets"`
	ZipfS   float64 `json:"zipf_s"`
	Seed    int64   `json:"seed"`
}

// ReplayParams pushes packets from the loaded trace through the pipeline.
type ReplayParams struct {
	Packets int `json:"packets"` // 0 = whole trace
}

// ReplayResult reports how many packets were processed.
type ReplayResult struct {
	Processed int `json:"processed"`
}

// StatsResult reports daemon counters.
type StatsResult struct {
	PacketsProcessed uint64 `json:"packets_processed"`
	TracePackets     int    `json:"trace_packets"`
	Tasks            int    `json:"tasks"`
}

// EpochTaskParams addresses an epoch task by its spec name (epoch tasks
// live outside the plain task-ID space: each owns two rotating task IDs).
type EpochTaskParams struct {
	Name string `json:"name"`
}

// EpochRotateParams advances an epoch task. ToEpoch is the target epoch
// number; 0 means "advance by exactly one from wherever you are" (a
// convenience for single-daemon tooling — fleet controllers always send an
// explicit target so retries and stragglers converge instead of
// double-rotating).
type EpochRotateParams struct {
	Name    string `json:"name"`
	ToEpoch int    `json:"to_epoch,omitempty"`
}

// EpochTaskResult describes an epoch task: the active copy and the
// rotation state.
type EpochTaskResult struct {
	Task     TaskResult `json:"task"`
	Epoch    int        `json:"epoch"`
	FrozenID int        `json:"frozen_id,omitempty"`
}

// ReadEpochParams requests one completed epoch's register snapshot.
// Epoch 0 means "your latest completed epoch".
type ReadEpochParams struct {
	Name  string `json:"name"`
	Epoch int    `json:"epoch,omitempty"`
}

// EpochRegistersResult is a register snapshot pinned to an epoch
// boundary, carried on the binary frame side-channel (RowLens slices the
// frame into rows). Epoch is the epoch the rows belong to; Current is the
// daemon's latest completed epoch (so a query plane can tell "behind" from
// "ahead"); FrozenID is the task ID the snapshot was read from (the handle
// key_indices needs).
type EpochRegistersResult struct {
	Epoch    int   `json:"epoch"`
	Current  int   `json:"current"`
	FrozenID int   `json:"frozen_id"`
	RowLens  []int `json:"row_lens"`
	frame    []byte
}

func (r EpochRegistersResult) frameBytes() []byte      { return r.frame }
func (r *EpochRegistersResult) setFrameBytes(b []byte) { r.frame = b }

// FrameRows decodes the snapshot into dst (geometry-matched buffers are
// reused, see UnpackFrame).
func (r *EpochRegistersResult) FrameRows(dst [][]uint32) [][]uint32 {
	return UnpackFrame(r.frame, r.RowLens, dst)
}

// KeyIndicesResult carries a flow key's per-row register indices on a
// frequency task (row i of the task's registers is probed at Indices[i]).
type KeyIndicesResult struct {
	Indices []uint32 `json:"indices"`
}

// TraceDumpParams requests the daemon's recorded spans. Limit, when
// positive, returns only the newest Limit spans (the dump is bounded by
// the daemon's span buffer regardless).
type TraceDumpParams struct {
	Limit int `json:"limit,omitempty"`
}

// TraceDumpResult carries one process's span-buffer snapshot plus its
// lifetime totals, so collectors can report drop rates alongside trees.
type TraceDumpResult struct {
	Spans   []tracing.Span `json:"spans,omitempty"`
	Total   uint64         `json:"total"`
	Dropped uint64         `json:"dropped"`
}

// keyFromBytes converts wire bytes into a canonical key.
func keyFromBytes(b []byte) packet.CanonicalKey {
	var k packet.CanonicalKey
	copy(k[:], b)
	return k
}
