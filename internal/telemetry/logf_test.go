package telemetry

import (
	"strings"
	"testing"
)

func TestLoggerLevelsAndTags(t *testing.T) {
	var b strings.Builder
	l := NewLogger("rpc", LevelInfo, &b)
	l.Debugf("hidden %d", 1)
	l.Infof("visible %d", 2)
	l.Warnf("warned")
	out := b.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("debug leaked at info level:\n%s", out)
	}
	if !strings.Contains(out, "INFO  [rpc] visible 2") {
		t.Fatalf("info line malformed:\n%s", out)
	}
	if !strings.Contains(out, "WARN  [rpc] warned") {
		t.Fatalf("warn line malformed:\n%s", out)
	}

	l.SetLevel(LevelError)
	l.Warnf("quiet now")
	if strings.Contains(b.String(), "quiet now") {
		t.Fatalf("SetLevel did not raise the threshold")
	}
}

func TestNilLoggerIsSilent(t *testing.T) {
	var l *Logger
	l.Debugf("a")
	l.Infof("b")
	l.Warnf("c")
	l.Errorf("d")
	if l.Enabled(LevelError) {
		t.Fatal("nil logger claims enabled")
	}
	if l.With("sub") != nil {
		t.Fatal("nil With minted a logger")
	}
}

func TestFuncLoggerAdaptsLegacySink(t *testing.T) {
	var got []string
	l := NewFuncLogger("rpc", LevelDebug, func(format string, args ...any) {
		var b strings.Builder
		b.WriteString(format)
		got = append(got, strings.TrimSpace(b.String()))
	})
	l.Debugf("x")
	if len(got) != 1 {
		t.Fatalf("sink calls = %d", len(got))
	}
	if NewFuncLogger("rpc", LevelInfo, nil) != nil {
		t.Fatal("nil sink should yield nil logger")
	}
}

func TestWithSharesLevel(t *testing.T) {
	var b strings.Builder
	l := NewLogger("flymond", LevelWarn, &b)
	sub := l.With("liveness")
	sub.Infof("hidden")
	sub.Errorf("shown")
	out := b.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "[liveness] shown") {
		t.Fatalf("sub-logger level/tag wrong:\n%s", out)
	}
}

func TestParseLogLevel(t *testing.T) {
	cases := map[string]LogLevel{
		"debug": LevelDebug, "info": LevelInfo, "": LevelInfo,
		"warn": LevelWarn, "warning": LevelWarn, "ERROR": LevelError, "off": LevelOff,
	}
	for in, want := range cases {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLogLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestBuildInfo(t *testing.T) {
	b := ReadBuildInfo()
	if b.GoVersion == "" {
		t.Fatal("empty go version")
	}
	if !strings.Contains(b.String(), b.GoVersion) {
		t.Fatalf("String() missing go version: %s", b.String())
	}
	var out strings.Builder
	WriteBuildInfoMetric(&out)
	if !strings.Contains(out.String(), "flymon_build_info{version=") ||
		!strings.HasSuffix(strings.TrimSpace(out.String()), "} 1") {
		t.Fatalf("build info metric malformed:\n%s", out.String())
	}
}
