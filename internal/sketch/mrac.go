package sketch

import (
	"flymon/internal/hashing"
	"flymon/internal/packet"
)

// MRAC is the data-plane half of the flow-size-distribution estimator of
// Kumar et al. (SIGMETRICS '04): a single array of counters, each flow
// hashed to exactly one counter which accumulates its packets. All the
// intelligence is in the control-plane Expectation-Maximization step
// (flymon/internal/analysis.MRACDistribution), which inverts counter-value
// collisions into a flow-size distribution — exactly the data/control split
// FlyMon exploits: on the switch, MRAC and a d=1 Count-Min Sketch are the
// same configuration (Appendix D).
type MRAC struct {
	spec     packet.KeySpec
	counters []uint32
	hash     *hashing.Unit
}

// NewMRAC builds an MRAC array with w counters (rounded up to a power of
// two) keyed by spec.
func NewMRAC(spec packet.KeySpec, w int) *MRAC {
	w = ceilPow2(w)
	h := hashing.NewUnit(0)
	h.Configure(spec)
	return &MRAC{spec: spec, counters: make([]uint32, w), hash: h}
}

// AddPacket counts packet p into its flow's counter.
func (m *MRAC) AddPacket(p *packet.Packet) {
	idx := m.hash.Hash(p) & uint32(len(m.counters)-1)
	m.counters[idx] = satAdd32(m.counters[idx], 1)
}

// Counters exposes the raw counter array for control-plane analysis.
func (m *MRAC) Counters() []uint32 { return m.counters }

// MemoryBytes returns the counter memory footprint.
func (m *MRAC) MemoryBytes() int { return len(m.counters) * 4 }

// Reset zeroes the array.
func (m *MRAC) Reset() { clear(m.counters) }
