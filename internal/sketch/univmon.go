package sketch

import (
	"container/heap"
	"math"

	"flymon/internal/hashing"
	"flymon/internal/packet"
)

// UnivMon (Liu et al., SIGCOMM '16) is a universal sketch: L levels of
// Count Sketches over recursively half-sampled substreams, each tracking
// its top-k heavy flows. Any G-sum statistic Σ g(f) — and hence heavy
// hitters, entropy, and cardinality — is recovered by the recursive
// estimator Y_ℓ = 2·Y_{ℓ+1} + Σ_{f∈Q_ℓ} (1 − 2·sampled_{ℓ+1}(f))·g(ŵ_ℓ(f)).
type UnivMon struct {
	spec    packet.KeySpec
	levels  int
	sk      []*CountSketch
	heaps   []*topK
	sampler *hashing.Family // one sampling bit per level transition
	packets uint64
}

// NewUnivMon builds a UnivMon with `levels` levels, each a d×w Count Sketch
// tracking its top-k flows.
func NewUnivMon(spec packet.KeySpec, levels, d, w, k int) *UnivMon {
	if levels < 1 {
		levels = 1
	}
	if levels > hashing.MaxUnits() {
		levels = hashing.MaxUnits()
	}
	u := &UnivMon{spec: spec, levels: levels, sampler: hashing.NewFamily(levels, spec)}
	for ℓ := 0; ℓ < levels; ℓ++ {
		u.sk = append(u.sk, NewCountSketch(spec, d, w))
		u.heaps = append(u.heaps, newTopK(k))
	}
	return u
}

// NewUnivMonForBytes splits memBytes across the standard configuration:
// 8 levels of d=3 Count Sketches, with per-level top-k heaps sized to the
// budget (the heaps are charged against the budget too).
func NewUnivMonForBytes(spec packet.KeySpec, memBytes int) *UnivMon {
	levels := 8
	k := memBytes / 1024
	if k < 32 {
		k = 32
	}
	if k > 512 {
		k = 512
	}
	heapBytes := levels * k * (packet.MaxKeyBytes + 8)
	sketchBytes := memBytes - heapBytes
	if sketchBytes < memBytes/3 {
		sketchBytes = memBytes / 3
	}
	w := sketchBytes / (levels * 3 * 4)
	if w < 8 {
		w = 8
	}
	return NewUnivMon(spec, levels, 3, w, k)
}

// AddPacket feeds packet p to every level it is sampled into.
func (u *UnivMon) AddPacket(p *packet.Packet) {
	u.packets++
	k := u.spec.Extract(p)
	for ℓ := 0; ℓ < u.levels; ℓ++ {
		if ℓ > 0 && !u.sampledAt(k, ℓ) {
			break // sampling is nested: failing level ℓ fails all deeper
		}
		u.sk[ℓ].AddKey(k, 1)
		est := u.sk[ℓ].EstimateKey(k)
		u.heaps[ℓ].offer(k, est)
	}
}

// sampledAt reports whether key k survives sampling into level ℓ (ℓ ≥ 1):
// the top bits of ℓ independent hashes must all be 1.
func (u *UnivMon) sampledAt(k packet.CanonicalKey, ℓ int) bool {
	for i := 1; i <= ℓ; i++ {
		if u.sampler.HashBytes(i%u.levels, k[:])&1 == 0 {
			return false
		}
	}
	return true
}

// HeavyHitters reports flows whose level-0 estimate meets the threshold.
func (u *UnivMon) HeavyHitters(threshold uint64) map[packet.CanonicalKey]bool {
	out := make(map[packet.CanonicalKey]bool)
	for _, it := range u.heaps[0].items {
		if uint64(it.est) >= threshold {
			out[it.key] = true
		}
	}
	return out
}

// EstimateKey returns the level-0 Count Sketch estimate for a flow.
func (u *UnivMon) EstimateKey(k packet.CanonicalKey) int64 { return u.sk[0].EstimateKey(k) }

// GSum evaluates the recursive universal estimator for statistic g.
func (u *UnivMon) GSum(g func(w float64) float64) float64 {
	var y float64
	// Bottom level: plain sum over its heavy flows.
	bottom := u.levels - 1
	for _, it := range u.heaps[bottom].items {
		y += g(float64(it.est))
	}
	for ℓ := bottom - 1; ℓ >= 0; ℓ-- {
		var yl float64 = 2 * y
		for _, it := range u.heaps[ℓ].items {
			w := float64(it.est)
			if w <= 0 {
				continue
			}
			ind := 0.0
			if u.sampledAt(it.key, ℓ+1) {
				ind = 1.0
			}
			yl += (1 - 2*ind) * g(w)
		}
		if yl < 0 {
			yl = 0
		}
		y = yl
	}
	return y
}

// Entropy estimates the Shannon entropy of the flow-size distribution:
// H = log2(N) − (1/N)·Σ f·log2(f), with the G-sum estimating Σ f·log2 f.
func (u *UnivMon) Entropy() float64 {
	if u.packets == 0 {
		return 0
	}
	s := u.GSum(func(w float64) float64 {
		if w < 1 {
			return 0
		}
		return w * math.Log2(w)
	})
	n := float64(u.packets)
	h := math.Log2(n) - s/n
	if h < 0 {
		h = 0
	}
	return h
}

// Cardinality estimates the number of distinct flows (G-sum with g ≡ 1).
func (u *UnivMon) Cardinality() float64 {
	return u.GSum(func(w float64) float64 {
		if w <= 0 {
			return 0
		}
		return 1
	})
}

// SizeDistribution approximates the flow-size distribution from the level-0
// heavy flows plus a geometric extrapolation of sampled levels — a rough
// reconstruction used only for entropy comparisons.
func (u *UnivMon) SizeDistribution() map[uint64]float64 {
	dist := make(map[uint64]float64)
	for ℓ, h := range u.heaps {
		scale := math.Pow(2, float64(ℓ))
		for _, it := range h.items {
			if it.est <= 0 {
				continue
			}
			if ℓ > 0 && u.sampledAt(it.key, ℓ+1) {
				continue // counted at a deeper level
			}
			dist[uint64(it.est)] += scale
		}
	}
	return dist
}

// MemoryBytes sums the level sketches (heaps are control-plane state but
// are charged too, matching how the paper's evaluation counts UnivMon).
func (u *UnivMon) MemoryBytes() int {
	total := 0
	for _, s := range u.sk {
		total += s.MemoryBytes()
	}
	for _, h := range u.heaps {
		total += h.cap * (packet.MaxKeyBytes + 8)
	}
	return total
}

// topK is a bounded min-heap of (key, estimate) with map-backed membership.
type topK struct {
	cap   int
	items []topItem
	pos   map[packet.CanonicalKey]int
}

type topItem struct {
	key packet.CanonicalKey
	est int64
}

func newTopK(cap_ int) *topK {
	if cap_ < 1 {
		cap_ = 1
	}
	return &topK{cap: cap_, pos: make(map[packet.CanonicalKey]int)}
}

// offer inserts or updates key with estimate est, evicting the smallest
// item when over capacity.
func (t *topK) offer(key packet.CanonicalKey, est int64) {
	if i, ok := t.pos[key]; ok {
		t.items[i].est = est
		heap.Fix(t, i)
		return
	}
	if len(t.items) < t.cap {
		heap.Push(t, topItem{key, est})
		return
	}
	if t.items[0].est >= est {
		return
	}
	delete(t.pos, t.items[0].key)
	t.items[0] = topItem{key, est}
	t.pos[key] = 0
	heap.Fix(t, 0)
}

// heap.Interface
func (t *topK) Len() int           { return len(t.items) }
func (t *topK) Less(i, j int) bool { return t.items[i].est < t.items[j].est }
func (t *topK) Swap(i, j int) {
	t.items[i], t.items[j] = t.items[j], t.items[i]
	t.pos[t.items[i].key] = i
	t.pos[t.items[j].key] = j
}
func (t *topK) Push(x any) {
	it := x.(topItem)
	t.pos[it.key] = len(t.items)
	t.items = append(t.items, it)
}
func (t *topK) Pop() any {
	old := t.items
	n := len(old)
	it := old[n-1]
	t.items = old[:n-1]
	delete(t.pos, it.key)
	return it
}
