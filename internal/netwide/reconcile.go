// Reconciler: self-healing anti-entropy for the fleet's task set.
//
// The RemoteFleet's taskIDs/specs maps ARE the desired state — every task
// the operator deployed and has not removed. A daemon that crashes and
// restarts comes back empty; a Remove that partially failed leaves a
// straggler holding a tombstoned task. The reconciler periodically (and on
// every rejoin) diffs each Up switch's observed task list against the
// desired set and repairs the difference: missing tasks are re-deployed at
// their PINNED mirror IDs (AddTaskAt), so the restarted daemon's placement
// and future ID sequence realign with the rest of the fleet, and
// tombstoned removals are driven to completion. Every repair lands in the
// reconfiguration journal.
package netwide

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"flymon/internal/controlplane"
)

// desiredTask is one entry of the desired state, ordered by pinned ID.
type desiredTask struct {
	name string
	id   int
	spec controlplane.TaskSpec
}

// ReconcileResult summarizes one anti-entropy pass.
type ReconcileResult struct {
	Switches   int // switches inspected (Up or liveness-off)
	Skipped    int // switches ejected by liveness and left alone
	Redeployed int // tasks re-installed
	Removed    int // tombstoned tasks removed from stragglers
	Finalized  int // tombstones confirmed gone fleet-wide and dropped
	Errors     []error
}

func (r ReconcileResult) Err() error {
	if len(r.Errors) == 0 {
		return nil
	}
	parts := make([]string, len(r.Errors))
	for i, e := range r.Errors {
		parts[i] = e.Error()
	}
	return fmt.Errorf("netwide: reconcile: %s", strings.Join(parts, "; "))
}

// Reconcile runs one anti-entropy pass over every non-ejected switch and
// returns what it repaired. It is safe to call concurrently with fleet
// operations and with the background reconciler (passes serialize on the
// fleet's reconcile lock so two passes never double-deploy).
func (f *RemoteFleet) Reconcile() ReconcileResult {
	f.reconMu.Lock()
	defer f.reconMu.Unlock()
	if f.opts.Telemetry != nil {
		f.opts.Telemetry.ReconcileRuns.Add(1)
	}
	root := f.startRoot("reconcile", "")

	// Snapshot the desired state. Tombstoned tasks are desired-ABSENT.
	f.mu.Lock()
	var desired []desiredTask
	tombs := make(map[string]int, len(f.tombstones))
	for name, id := range f.tombstones {
		tombs[name] = id
	}
	for name, id := range f.taskIDs {
		if _, dead := tombs[name]; dead {
			continue
		}
		desired = append(desired, desiredTask{name: name, id: id, spec: f.specs[name]})
	}
	f.mu.Unlock()
	// Pinned IDs must be replayed in ascending order so a freshly wiped
	// daemon's nextID never has to move backwards past a pinned slot.
	sort.Slice(desired, func(i, j int) bool { return desired[i].id < desired[j].id })

	var res ReconcileResult
	// Tombstone completion is fleet-wide: a tombstone may be dropped only
	// after a pass in which EVERY switch was inspected and confirmed clean.
	tombClean := make(map[string]bool, len(tombs))
	for name := range tombs {
		tombClean[name] = true
	}
	allInspected := true

	for i, c := range f.clients {
		if _, ejected := f.health.ejected(i); ejected {
			res.Skipped++
			allInspected = false
			continue
		}
		res.Switches++
		swSp := traceSpan(f.opts.Tracer, root.Context(), "switch")
		swSp.SetSwitch(i)
		swSp.SetDetail(c.Addr())
		sc := swSp.Context()
		tasks, err := c.ListTasks(sc)
		if err != nil {
			// The first call after a daemon restart fails on the stale
			// connection (and tears it down); one retry lands on a fresh
			// dial. list_tasks is idempotent, so this is always safe.
			tasks, err = c.ListTasks(sc)
		}
		if err != nil {
			res.Errors = append(res.Errors, fmt.Errorf("switch %d: list: %w", i, err))
			if f.opts.Telemetry != nil {
				f.opts.Telemetry.ReconcileErrors.Add(1)
			}
			allInspected = false
			swSp.Finish(err)
			continue
		}
		observed := make(map[int]string, len(tasks))
		for _, t := range tasks {
			observed[t.ID] = t.Name
		}

		// Complete tombstoned removals on this switch.
		for name, id := range tombs {
			if _, present := observed[id]; !present {
				continue
			}
			if err := c.RemoveTask(id, sc); err != nil && !strings.Contains(err.Error(), "no task") {
				res.Errors = append(res.Errors, fmt.Errorf("switch %d: tombstone %q: %w", i, name, err))
				if f.opts.Telemetry != nil {
					f.opts.Telemetry.ReconcileErrors.Add(1)
				}
				tombClean[name] = false
				continue
			}
			delete(observed, id)
			res.Removed++
			f.journal("redeploy", id, fmt.Sprintf("switch %d: completed tombstoned removal of %q", i, name), nil)
		}

		// Re-deploy whatever the desired set has that the switch lost.
		for _, d := range desired {
			got, present := observed[d.id]
			if present {
				if got != d.name {
					err := fmt.Errorf("switch %d: task %d is %q, fleet expects %q — diverged, not repairing",
						i, d.id, got, d.name)
					res.Errors = append(res.Errors, err)
					if f.opts.Telemetry != nil {
						f.opts.Telemetry.ReconcileErrors.Add(1)
					}
					f.journal("redeploy", d.id, err.Error(), err)
				}
				continue
			}
			rt, err := c.AddTaskAt(d.id, d.spec, sc)
			if err != nil {
				res.Errors = append(res.Errors, fmt.Errorf("switch %d: redeploy %q: %w", i, d.name, err))
				if f.opts.Telemetry != nil {
					f.opts.Telemetry.ReconcileErrors.Add(1)
				}
				f.journal("redeploy", d.id, fmt.Sprintf("switch %d: redeploy of %q at id %d failed", i, d.name, d.id), err)
				continue
			}
			observed[rt.ID] = d.name
			res.Redeployed++
			if f.opts.Telemetry != nil {
				f.opts.Telemetry.Redeploys.Add(1)
			}
			f.journal("redeploy", d.id, fmt.Sprintf("switch %d: re-deployed %q at pinned id %d", i, d.name, d.id), nil)
		}

		f.health.setTasks(i, len(desired), len(observed))
		swSp.Finish(nil)
	}

	// Finalize tombstones confirmed absent on every switch this pass.
	if allInspected {
		f.mu.Lock()
		for name, id := range tombs {
			if !tombClean[name] {
				continue
			}
			if _, still := f.tombstones[name]; !still {
				continue // a concurrent manual Remove already finalized it
			}
			_ = f.mirror.RemoveTask(id)
			delete(f.taskIDs, name)
			delete(f.specs, name)
			delete(f.tombstones, name)
			res.Finalized++
		}
		f.mu.Unlock()
	}
	root.SetDetail(fmt.Sprintf("switches=%d redeployed=%d removed=%d skipped=%d",
		res.Switches, res.Redeployed, res.Removed, res.Skipped))
	root.Finish(res.Err())
	return res
}

// reconciler drives periodic Reconcile passes plus on-demand passes when
// a switch rejoins (so a restarted daemon is repaired within one poke,
// not one interval).
type reconciler struct {
	f        *RemoteFleet
	interval time.Duration
	poke     chan struct{}
	done     chan struct{}
	once     sync.Once
	wg       sync.WaitGroup
}

// StartReconciler launches the background reconciliation loop (one pass
// every interval, plus immediately after any switch rejoins). Stop (on
// the fleet) terminates it.
func (f *RemoteFleet) StartReconciler(interval time.Duration) {
	if f.recon != nil {
		return
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	r := &reconciler{
		f:        f,
		interval: interval,
		poke:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	f.recon = r
	r.wg.Add(1)
	go r.run()
}

func (r *reconciler) run() {
	defer r.wg.Done()
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
		case <-r.poke:
		}
		res := r.f.Reconcile()
		_ = res
	}
}

func (r *reconciler) stop() {
	r.once.Do(func() { close(r.done) })
	r.wg.Wait()
}

// pokeReconciler requests an immediate pass (coalescing with any pending
// request). No-op when the background reconciler is not running.
func (f *RemoteFleet) pokeReconciler() {
	r := f.recon
	if r == nil {
		return
	}
	select {
	case r.poke <- struct{}{}:
	default:
	}
}
