// Package epoch implements measurement-epoch rotation with the paper's
// freeze-and-divert strategy (§6, Memory reallocation strategy): "allocate
// a new task and freeze the original task. We divert the original traffic
// to the new task and reclaim the old task's resources."
//
// A Rotator keeps two deployments of one task spec alive: the ACTIVE copy
// receives traffic while the FROZEN copy — last epoch's counters — stays
// readable for control-plane analysis. Rotate() atomically (from the
// traffic's perspective: one rule update) diverts traffic to the frozen
// copy's recycled partitions and freezes the active one. No packet is ever
// unmeasured and no epoch's data is lost to an in-place reset.
package epoch

import (
	"fmt"

	"flymon/internal/controlplane"
	"flymon/internal/packet"
)

// Rotator manages double-buffered deployments of one task spec.
type Rotator struct {
	ctrl *controlplane.Controller
	spec controlplane.TaskSpec

	active int // task ID currently receiving traffic
	frozen int // task ID holding last epoch's counters (0 before first rotate)
	epoch  int
}

// NewRotator deploys the first (active) copy of spec. The spec's name is
// suffixed per copy; both copies use the spec's memory size, so the
// rotator permanently holds 2× the task's memory — the cost of lossless
// epoch rotation.
func NewRotator(ctrl *controlplane.Controller, spec controlplane.TaskSpec) (*Rotator, error) {
	r := &Rotator{ctrl: ctrl, spec: spec}
	s := spec
	s.Name = fmt.Sprintf("%s#0", spec.Name)
	t, err := ctrl.AddTask(s)
	if err != nil {
		return nil, fmt.Errorf("epoch: deploying first copy: %w", err)
	}
	r.active = t.ID
	return r, nil
}

// ActiveID returns the task ID currently receiving traffic.
func (r *Rotator) ActiveID() int { return r.active }

// FrozenID returns the task ID holding the last completed epoch's counters
// (0 before the first rotation).
func (r *Rotator) FrozenID() int { return r.frozen }

// Epoch returns the number of completed rotations.
func (r *Rotator) Epoch() int { return r.epoch }

// Rotate ends the current epoch: the active copy freezes (its task-filter
// rules are withdrawn; registers stay readable), and traffic is diverted
// to a fresh deployment reusing the previous frozen copy's reclaimed
// memory. The newly frozen copy's ID is returned; read it with the
// controller's query methods before the next rotation.
func (r *Rotator) Rotate() (frozenID int, err error) {
	// Reclaim the copy frozen two epochs ago.
	if r.frozen != 0 {
		if err := r.ctrl.RemoveTask(r.frozen); err != nil {
			return 0, fmt.Errorf("epoch: reclaiming frozen copy: %w", err)
		}
	}
	// Freeze the active copy, then divert its traffic to a fresh one. On
	// hardware both steps are one task-filter entry swap; here a failed
	// redeploy thaws the old copy so measurement never stops.
	if err := r.ctrl.FreezeTask(r.active); err != nil {
		return 0, fmt.Errorf("epoch: freezing active copy: %w", err)
	}
	r.epoch++
	s := r.spec
	s.Name = fmt.Sprintf("%s#%d", r.spec.Name, r.epoch)
	t, err := r.ctrl.AddTask(s)
	if err != nil {
		if terr := r.ctrl.ThawTask(r.active); terr != nil {
			return 0, fmt.Errorf("epoch: deploying epoch-%d copy failed (%v) and thaw failed: %w", r.epoch, err, terr)
		}
		r.epoch--
		return 0, fmt.Errorf("epoch: deploying epoch-%d copy: %w", r.epoch+1, err)
	}
	r.frozen, r.active = r.active, t.ID
	return r.frozen, nil
}

// AdvanceTo rotates until Epoch() reaches target, invoking onRotate (when
// non-nil) after each completed rotation with the new epoch number and the
// newly frozen task ID — the hook daemons use to snapshot each epoch's
// registers before the copy is reclaimed two rotations later. AdvanceTo is
// idempotent: a target at or below the current epoch is a no-op, which is
// what lets a fleet controller re-send "rotate to epoch E" to a switch
// that may or may not have seen the first attempt (and lets a straggler
// that missed rotations catch up in one call).
func (r *Rotator) AdvanceTo(target int, onRotate func(epoch, frozenID int) error) error {
	for r.epoch < target {
		frozenID, err := r.Rotate()
		if err != nil {
			return err
		}
		if onRotate != nil {
			if err := onRotate(r.epoch, frozenID); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadFrozen reads the frozen copy's per-key estimate.
func (r *Rotator) ReadFrozen(k packet.CanonicalKey) (float64, error) {
	if r.frozen == 0 {
		return 0, fmt.Errorf("epoch: no completed epoch yet")
	}
	return r.ctrl.EstimateKey(r.frozen, k)
}

// Close removes both copies.
func (r *Rotator) Close() error {
	var firstErr error
	if r.frozen != 0 {
		if err := r.ctrl.RemoveTask(r.frozen); err != nil {
			firstErr = err
		}
		r.frozen = 0
	}
	if r.active != 0 {
		if err := r.ctrl.RemoveTask(r.active); err != nil && firstErr == nil {
			firstErr = err
		}
		r.active = 0
	}
	return firstErr
}
