package netwide

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"flymon/internal/sketch"
	"flymon/internal/telemetry"
	"flymon/internal/tracing"
)

// The parallel k-ary merge tree: the fleet query plane's reduction engine.
//
// A network-wide answer is a fold of per-switch register readouts under a
// mergeable operation (§3.4: identical hash configuration makes register
// state element-wise combinable). The flat fold walks switches in index
// order, so its critical path is O(n) merges *after* the slowest fetch.
// MergeStream instead treats row sets as tournament entrants: leaves are
// merged k at a time as soon as they arrive — fetch latency overlaps
// interior merges, no barrier waits for the slowest switch, and a worker
// pool spreads the merge kernels across cores. Every operation in the
// algebra (saturating add, max, or, xor) is commutative and associative —
// saturating add included, since partial sums of non-negative values
// clamp exactly when the total would — so the tree's merge order cannot
// change the result: tree output is bit-identical to the flat fold.

// MergeOp selects the element-wise combine applied at every tree node.
type MergeOp int

const (
	// MergeAdd saturating-adds registers (counter tasks over disjoint
	// streams: frequencies, heavy hitters).
	MergeAdd MergeOp = iota
	// MergeMax takes element-wise maxima (HLL ranks, per-key maxima).
	MergeMax
	// MergeOr ORs bitmaps (Bloom filters, coupon tables).
	MergeOr
	// MergeXor XORs odd sketches (symmetric-difference semantics).
	MergeXor
)

func (op MergeOp) String() string {
	switch op {
	case MergeAdd:
		return "add"
	case MergeMax:
		return "max"
	case MergeOr:
		return "or"
	case MergeXor:
		return "xor"
	default:
		return fmt.Sprintf("MergeOp(%d)", int(op))
	}
}

// ParseMergeOp resolves a CLI-facing op name.
func ParseMergeOp(s string) (MergeOp, error) {
	switch s {
	case "add", "":
		return MergeAdd, nil
	case "max":
		return MergeMax, nil
	case "or":
		return MergeOr, nil
	case "xor":
		return MergeXor, nil
	default:
		return 0, fmt.Errorf("netwide: unknown merge op %q (want add|max|or|xor)", s)
	}
}

// Combine merges one register row of src into dst under the op.
func (op MergeOp) Combine(dst, src []uint32) error {
	switch op {
	case MergeAdd:
		return sketch.MergeAddRegisters(dst, src)
	case MergeMax:
		return sketch.MergeMaxRegisters(dst, src)
	case MergeOr:
		return sketch.MergeOrRegisters(dst, src)
	case MergeXor:
		return sketch.MergeXorRegisters(dst, src)
	default:
		return fmt.Errorf("netwide: unknown merge op %d", int(op))
	}
}

// GeometryError reports a register-geometry mismatch between two switches'
// readouts of the same task — a misconfigured daemon (different
// -groups/-buckets) or a diverged deployment. It names both switches so
// the operator knows exactly which pair disagrees instead of getting a
// generic merge failure.
type GeometryError struct {
	Task             string
	SwitchA, SwitchB int // SwitchA is the reference readout, SwitchB the offender
	Row              int // -1: row-count mismatch; >= 0: length mismatch at this row
	DimA, DimB       int // row counts (Row == -1) or row lengths (Row >= 0)
}

func (e *GeometryError) Error() string {
	if e.Row < 0 {
		return fmt.Sprintf("netwide: geometry mismatch on task %q: switch %d has %d rows, switch %d has %d",
			e.Task, e.SwitchA, e.DimA, e.SwitchB, e.DimB)
	}
	return fmt.Sprintf("netwide: geometry mismatch on task %q row %d: switch %d has %d buckets, switch %d has %d",
		e.Task, e.Row, e.SwitchA, e.DimA, e.SwitchB, e.DimB)
}

// checkGeometry validates rows against the reference readout's shape.
func checkGeometry(task string, refSwitch int, refLens []int, sw int, rows [][]uint32) error {
	if len(rows) != len(refLens) {
		return &GeometryError{Task: task, SwitchA: refSwitch, SwitchB: sw, Row: -1, DimA: len(refLens), DimB: len(rows)}
	}
	for r, row := range rows {
		if len(row) != refLens[r] {
			return &GeometryError{Task: task, SwitchA: refSwitch, SwitchB: sw, Row: r, DimA: refLens[r], DimB: len(row)}
		}
	}
	return nil
}

// Leaf is one switch's fetched row set entering the merge tree.
type Leaf struct {
	Switch int
	Rows   [][]uint32
}

// TreeOptions tunes one MergeStream run.
type TreeOptions struct {
	// Task names the queried task in geometry errors.
	Task string
	// Arity is the tournament fan-in per interior node (default 4: wide
	// enough that a 256-leaf tree is depth 4, narrow enough that early
	// arrivals start merging before half the fleet has answered).
	Arity int
	// Workers sizes the merge worker pool (default GOMAXPROCS).
	Workers int
	// Stats, when set, receives tree-shape gauges and per-level merge
	// latencies. nil = uninstrumented.
	Stats *telemetry.MergeTreeStats
	// Recycle, when set, receives consumed source row sets after each
	// interior merge — the fleet layer returns them to its buffer pool so
	// a steady query load reuses leaf buffers instead of reallocating
	// every fetch. Must be safe for concurrent calls. nil = GC.
	Recycle func([][]uint32)
	// Tracer and Parent, when both set (Parent valid), record one "merge"
	// span covering the whole reduction plus a "merge:kernel" child per
	// interior node, tagged with the node's level and fan-in — the
	// critical-path view of where a slow fleet query spent its time.
	Tracer *tracing.Tracer
	Parent tracing.SpanContext
}

// TreeResult is a completed reduction.
type TreeResult struct {
	// Rows is the merged readout (nil when no leaf arrived). The caller
	// owns it; it is never recycled.
	Rows [][]uint32
	// Contributed lists the switches merged in, ascending.
	Contributed []int
	// Depth is the tree's height (0 for a single leaf).
	Depth int
	// Merges is the number of interior nodes executed.
	Merges int
}

// treeNode is a row set inside the tournament: a leaf (level 0) or the
// result of an interior merge (1 + max child level).
type treeNode struct {
	rows  [][]uint32
	level int
}

type mergeDone struct {
	node treeNode
	err  error
}

// MergeStream reduces the row sets arriving on leaves under op and
// returns the merged readout. It consumes leaves until the channel is
// closed, merging k at a time on a worker pool as entrants become
// available — callers feed it straight from their RPC fan-out so fetches
// overlap merges. The first geometry or merge error aborts the reduction
// (remaining leaves are drained and recycled) and is returned.
func MergeStream(leaves <-chan Leaf, op MergeOp, opts TreeOptions) (TreeResult, error) {
	arity := opts.Arity
	if arity < 2 {
		arity = 4
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	recycle := opts.Recycle
	if recycle == nil {
		recycle = func([][]uint32) {}
	}
	msp := traceSpan(opts.Tracer, opts.Parent, "merge")
	msc := msp.Context()

	jobs := make(chan []treeNode)
	done := make(chan mergeDone, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for nodes := range jobs {
				done <- runMerge(nodes, op, opts.Stats, recycle, opts.Tracer, msc)
			}
		}()
	}
	// The coordinator is the only goroutine touching pending/outstanding,
	// so the tree needs no locks: workers communicate purely over
	// channels, and job dispatch pumps `done` while blocked on `jobs` so
	// a full worker pool can never deadlock the reduction.
	var (
		res         TreeResult
		pending     []treeNode
		outstanding int
		firstErr    error
		refSwitch   int
		refLens     []int
		lastSwitch  = -1 // switch of the last-arriving leaf: what the merge waited on
	)
	absorb := func(d mergeDone) {
		outstanding--
		if d.err != nil {
			if firstErr == nil {
				firstErr = d.err
			}
			return
		}
		if firstErr != nil {
			recycle(d.node.rows)
			return
		}
		res.Merges++
		if d.node.level > res.Depth {
			res.Depth = d.node.level
		}
		pending = append(pending, d.node)
	}
	in := leaves
	for {
		// Dispatch while a full-arity merge is ready, or — once the input
		// is exhausted and nothing is in flight — to fold the remainder.
		for firstErr == nil && (len(pending) >= arity ||
			(in == nil && outstanding == 0 && len(pending) >= 2)) {
			k := arity
			if k > len(pending) {
				k = len(pending)
			}
			job := make([]treeNode, k)
			copy(job, pending[len(pending)-k:])
			pending = pending[:len(pending)-k]
			for sent := false; !sent; {
				select {
				case jobs <- job:
					outstanding++
					sent = true
				case d := <-done:
					absorb(d)
				}
			}
		}
		if in == nil && outstanding == 0 {
			break
		}
		select {
		case lf, ok := <-in:
			if !ok {
				in = nil
				continue
			}
			if firstErr != nil {
				recycle(lf.Rows)
				continue
			}
			if refLens == nil {
				refSwitch = lf.Switch
				refLens = make([]int, len(lf.Rows))
				for r, row := range lf.Rows {
					refLens[r] = len(row)
				}
			} else if err := checkGeometry(opts.Task, refSwitch, refLens, lf.Switch, lf.Rows); err != nil {
				firstErr = err
				recycle(lf.Rows)
				continue
			}
			res.Contributed = append(res.Contributed, lf.Switch)
			lastSwitch = lf.Switch
			pending = append(pending, treeNode{rows: lf.Rows})
		case d := <-done:
			absorb(d)
		}
	}
	close(jobs)
	if firstErr != nil {
		for _, n := range pending {
			recycle(n.rows)
		}
		msp.Finish(firstErr)
		return TreeResult{}, firstErr
	}
	if len(pending) == 1 {
		res.Rows = pending[0].rows
	}
	sort.Ints(res.Contributed)
	// The merge span's wall clock is dominated by waiting on the slowest
	// leaf, so tag it with that leaf's switch: a critical path that lands
	// on the merge then still names the switch the operation waited on.
	msp.SetSwitch(lastSwitch)
	msp.SetDetail(fmt.Sprintf("leaves=%d depth=%d merges=%d", len(res.Contributed), res.Depth, res.Merges))
	msp.Finish(nil)
	if st := opts.Stats; st != nil {
		st.Queries.Add(1)
		st.LastDepth.Store(uint64(res.Depth))
		st.LastFanout.Store(uint64(len(res.Contributed)))
	}
	return res, nil
}

// runMerge executes one interior node: fold nodes[1:] into nodes[0],
// recycling consumed sources. Geometry was validated at leaf admission,
// so combine errors here mean a bug, not bad input — still surfaced.
func runMerge(nodes []treeNode, op MergeOp, stats *telemetry.MergeTreeStats, recycle func([][]uint32), tr *tracing.Tracer, parent tracing.SpanContext) mergeDone {
	start := time.Now()
	sp := traceSpan(tr, parent, "merge:kernel")
	dst := nodes[0]
	for _, src := range nodes[1:] {
		if src.level > dst.level {
			dst.level = src.level
		}
		for r := range dst.rows {
			if err := op.Combine(dst.rows[r], src.rows[r]); err != nil {
				sp.Finish(err)
				return mergeDone{err: err}
			}
		}
		recycle(src.rows)
	}
	dst.level++
	sp.SetDetail(fmt.Sprintf("level=%d fanin=%d", dst.level-1, len(nodes)))
	sp.Finish(nil)
	if stats != nil {
		elapsed := time.Since(start)
		stats.Merges.Add(1)
		stats.MergeLatency.Observe(elapsed)
		stats.ObserveLevel(dst.level-1, elapsed)
	}
	return mergeDone{node: dst}
}
