//go:build unix

package mmtrace

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and shared. An empty file maps to
// an empty (non-nil) slice so the zero-frame trace works uniformly.
func mapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return []byte{}, nil
	}
	if size < 0 || size > int64(maxMapBytes) {
		return nil, fmt.Errorf("mmtrace: trace size %d out of range", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmtrace: mmap: %w", err)
	}
	return data, nil
}

func unmapFile(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}
