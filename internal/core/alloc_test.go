package core

import (
	"testing"

	"flymon/internal/dataplane"
	"flymon/internal/packet"
	"flymon/internal/trace"
)

// Alloc-regression gates for the data-plane hot path. The compiled engine's
// contract is zero heap allocations per packet once a worker's ProcCtx
// scratch has grown to the snapshot's sizes (testing.AllocsPerRun's warm-up
// call covers that growth). Any alloc that sneaks back in — a key escaping
// into a hash, a slice re-grown per packet, a closure capture — fails here
// long before it shows up in a benchmark.

// allocPipeline builds the same shape as the hot-path benchmarks: multiple
// groups, multi-row CMS tasks, a filtered task with a distinct mask, and a
// probabilistic rule, so every compiled-rule phase executes.
func allocPipeline(t *testing.T) *Pipeline {
	t.Helper()
	g0 := NewGroup(GroupConfig{ID: 0, Buckets: 4096, BitWidth: 32})
	g1 := NewGroup(GroupConfig{ID: 1, Buckets: 4096, BitWidth: 32})
	buildCMS(t, g0, 1, 3, 4096)
	if err := g1.ConfigureUnit(0, packet.KeyDstIP); err != nil {
		t.Fatal(err)
	}
	filtered := &Rule{
		TaskID: 2, Filter: packet.Filter{Proto: 6},
		Key: FullKey(0), P1: PacketSize(), P2: MaxValue(),
		Mem: MemRange{Base: 0, Buckets: 2048}, Op: dataplane.OpCondAdd,
	}
	sampled := &Rule{
		TaskID: 3, Filter: packet.Filter{Proto: 17},
		Key: FullKey(0), P1: Const(1), P2: MaxValue(),
		Mem: MemRange{Base: 2048, Buckets: 2048}, Op: dataplane.OpCondAdd,
		Prob: 0.5,
	}
	for _, r := range []*Rule{filtered, sampled} {
		if err := g1.CMU(0).InstallRule(r); err != nil {
			t.Fatal(err)
		}
	}
	return NewPipelineWith(g0, g1)
}

func TestSnapshotProcessZeroAlloc(t *testing.T) {
	s := allocPipeline(t).Compile()
	pc := NewProcCtx()
	tr := trace.Generate(trace.Config{Flows: 100, Packets: 256, Seed: 3})
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		s.Process(pc, &tr.Packets[i&255])
		i++
	})
	if allocs != 0 {
		t.Fatalf("Snapshot.Process allocates %.1f times per packet, want 0", allocs)
	}
}

func TestSnapshotProcessBatchZeroAllocSteadyState(t *testing.T) {
	// ProcessBatch allocates exactly one ProcCtx per call; per packet the
	// cost must amortize to ~0. Gate on a generous fraction so the test
	// catches per-packet regressions without flaking on the fixed per-call
	// overhead.
	s := allocPipeline(t).Compile()
	tr := trace.Generate(trace.Config{Flows: 100, Packets: 4096, Seed: 3})
	allocs := testing.AllocsPerRun(10, func() {
		s.ProcessBatch(tr.Packets)
	})
	perPacket := allocs / float64(len(tr.Packets))
	if perPacket > 0.01 {
		t.Fatalf("Snapshot.ProcessBatch allocates %.4f per packet, want ~0 (fixed per-call ProcCtx only)", perPacket)
	}
}

func TestCMUProcessZeroAlloc(t *testing.T) {
	// The interpretive per-CMU path must also run allocation-free: it
	// shares the hashing and register layers with the compiled path.
	g := NewGroup(GroupConfig{ID: 0, Buckets: 4096, BitWidth: 32})
	buildCMS(t, g, 1, 3, 4096)
	cmu := g.CMU(0)
	keys := g.CompressedKeys(&packet.Packet{SrcIP: 1, DstIP: 2, Proto: 6})
	ctx := Context{Pkt: &packet.Packet{SrcIP: 1, DstIP: 2, Proto: 6}, RunningMin: ^uint32(0)}
	allocs := testing.AllocsPerRun(1000, func() {
		cmu.Process(&ctx, keys)
	})
	if allocs != 0 {
		t.Fatalf("CMU.Process allocates %.1f times per packet, want 0", allocs)
	}
}

func TestInterpretivePipelineZeroAlloc(t *testing.T) {
	pl := allocPipeline(t)
	tr := trace.Generate(trace.Config{Flows: 100, Packets: 256, Seed: 3})
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		pl.Process(&tr.Packets[i&255])
		i++
	})
	if allocs != 0 {
		t.Fatalf("Pipeline.Process allocates %.1f times per packet, want 0", allocs)
	}
}
