package dataplane

import (
	"math/rand"
	"testing"
)

// Tests for the sharded-lane engine: merge-function algebra, the exactness
// of shard-then-merge against sequential ground truth (the property the
// compiled engine's routing verdicts rely on), lane hygiene on clears, and
// the dirtiness cursor.

func TestMergeValuesAlgebra(t *testing.T) {
	const mask = 0xFFFF
	cases := []struct {
		name    string
		op      StatefulOp
		a, b, w uint32
	}{
		{"condadd-sum", OpCondAdd, 3, 4, 7},
		{"condadd-saturates", OpCondAdd, 0xFFFF, 1, 0xFFFF},
		{"condadd-both-saturated", OpCondAdd, 0xFFFF, 0xFFFF, 0xFFFF},
		{"max-left", OpMax, 9, 4, 9},
		{"max-right", OpMax, 4, 9, 9},
		{"andor-or", OpAndOr, 0b0101, 0b0011, 0b0111},
		{"xor", OpXor, 0b0101, 0b0011, 0b0110},
		{"none-identity", OpNone, 42, 7, 42},
	}
	for _, c := range cases {
		if got := MergeValues(c.op, mask, c.a, c.b); got != c.w {
			t.Errorf("%s: MergeValues(%v, %#x, %#x) = %#x, want %#x", c.name, c.op, c.a, c.b, got, c.w)
		}
	}
	// Zero is the identity of every mergeable op's reduction.
	rng := rand.New(rand.NewSource(7))
	for _, op := range []StatefulOp{OpCondAdd, OpMax, OpAndOr, OpXor} {
		for trial := 0; trial < 100; trial++ {
			v := rng.Uint32() & mask
			if got := MergeValues(op, mask, v, 0); got != v {
				t.Fatalf("%v: merge(%#x, 0) = %#x, want identity", op, v, got)
			}
			if got := MergeValues(op, mask, 0, v); got != v {
				t.Fatalf("%v: merge(0, %#x) = %#x, want identity", op, v, got)
			}
		}
	}
}

// shardStream is one synthetic update: a bucket index and parameters.
type shardStream struct {
	index, p1, p2 uint32
}

// runSequential replays ops on a fresh register with ApplySeq — the ground
// truth the merged state must match bit-for-bit.
func runSequential(size, width int, op StatefulOp, stream []shardStream) []uint32 {
	r := NewRegister(size, width)
	for _, s := range stream {
		r.ApplySeq(op, s.index, s.p1, s.p2)
	}
	return r.ReadRange(0, r.Size())
}

// TestShardMergeEquivalence is the exactness proof as a property test: for
// every mergeable op shape, partitioning an update stream across lanes and
// draining is bit-identical to sequential execution, for random streams,
// random partitions, and both register widths (saturation exercised).
func TestShardMergeEquivalence(t *testing.T) {
	const size = 64
	type shape struct {
		name  string
		op    StatefulOp
		width int
		gen   func(rng *rand.Rand) shardStream
	}
	shapes := []shape{
		{"condadd-saturating-add-32", OpCondAdd, 32, func(rng *rand.Rand) shardStream {
			return shardStream{rng.Uint32(), rng.Uint32() % 100, ^uint32(0)}
		}},
		// 8-bit buckets overflow quickly: the saturating fold must still
		// match (min(mask, Σ) on both sides).
		{"condadd-saturating-add-8", OpCondAdd, 8, func(rng *rand.Rand) shardStream {
			return shardStream{rng.Uint32(), rng.Uint32() % 16, ^uint32(0)}
		}},
		{"max-32", OpMax, 32, func(rng *rand.Rand) shardStream {
			return shardStream{rng.Uint32(), rng.Uint32(), 0}
		}},
		{"max-16", OpMax, 16, func(rng *rand.Rand) shardStream {
			return shardStream{rng.Uint32(), rng.Uint32(), 0}
		}},
		{"andor-or-branch", OpAndOr, 32, func(rng *rand.Rand) shardStream {
			return shardStream{rng.Uint32(), 1 << (rng.Uint32() % 32), 1}
		}},
		{"xor-8", OpXor, 8, func(rng *rand.Rand) shardStream {
			return shardStream{rng.Uint32(), rng.Uint32(), 0}
		}},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(sh.name))))
			for trial := 0; trial < 50; trial++ {
				shards := 2 + rng.Intn(7)
				stream := make([]shardStream, 200+rng.Intn(800))
				for i := range stream {
					stream[i] = sh.gen(rng)
				}
				want := runSequential(size, sh.width, sh.op, stream)

				r := NewRegister(size, sh.width)
				r.EnableSharding(shards)
				for _, s := range stream {
					r.ShardApply(rng.Intn(shards), sh.op, s.index, s.p1, s.p2)
				}
				// Before draining, ReadRangeMerged must already see the
				// reduced view.
				merged := r.ReadRangeMerged(sh.op, 0, r.Size())
				for i := range want {
					if merged[i] != want[i] {
						t.Fatalf("trial %d: ReadRangeMerged[%d] = %#x, want %#x", trial, i, merged[i], want[i])
					}
				}
				r.DrainRange(sh.op, 0, r.Size())
				got := r.ReadRange(0, r.Size())
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d (%d shards): bucket %d = %#x after drain, want %#x",
							trial, shards, i, got[i], want[i])
					}
				}
				// Lanes must be zero after the drain; a second drain folds
				// nothing.
				if n := r.DrainRange(sh.op, 0, r.Size()); n != 0 {
					t.Fatalf("trial %d: second drain folded %d buckets, want 0", trial, n)
				}
			}
		})
	}
}

// TestShardDrainPartial checks that draining one partition leaves other
// partitions' lane state intact.
func TestShardDrainPartial(t *testing.T) {
	r := NewRegister(64, 32)
	r.EnableSharding(2)
	r.ShardApply(0, OpCondAdd, 3, 5, ^uint32(0))  // partition [0,32)
	r.ShardApply(1, OpCondAdd, 40, 7, ^uint32(0)) // partition [32,64)
	if n := r.DrainRange(OpCondAdd, 0, 32); n != 1 {
		t.Fatalf("drain of [0,32) folded %d buckets, want 1", n)
	}
	if got := r.Read(3); got != 5 {
		t.Fatalf("bucket 3 = %d after partial drain, want 5", got)
	}
	if got := r.Read(40); got != 0 {
		t.Fatalf("bucket 40 = %d before its drain, want 0 (still in lane)", got)
	}
	if got := r.ReadMerged(OpCondAdd, 40); got != 7 {
		t.Fatalf("merged bucket 40 = %d, want 7", got)
	}
	if n := r.DrainRange(OpCondAdd, 32, 32); n != 1 {
		t.Fatalf("drain of [32,64) folded %d buckets, want 1", n)
	}
	if got := r.Read(40); got != 7 {
		t.Fatalf("bucket 40 = %d after drain, want 7", got)
	}
}

// TestShardDrainMergesIntoExistingBase checks the fold composes with base
// state written by the CAS path (mixed-mode execution).
func TestShardDrainMergesIntoExistingBase(t *testing.T) {
	r := NewRegister(16, 32)
	r.EnableSharding(2)
	r.Apply(OpCondAdd, 1, 10, ^uint32(0)) // single-packet CAS path
	r.ShardApply(0, OpCondAdd, 1, 4, ^uint32(0))
	r.ShardApply(1, OpCondAdd, 1, 6, ^uint32(0))
	r.DrainRange(OpCondAdd, 0, r.Size())
	if got := r.Read(1); got != 20 {
		t.Fatalf("bucket 1 = %d, want 20 (10 base + 4 + 6 lanes)", got)
	}
}

func TestClearRangeClearsLanes(t *testing.T) {
	r := NewRegister(32, 32)
	r.EnableSharding(3)
	r.ShardApply(2, OpCondAdd, 5, 9, ^uint32(0))
	r.ClearRange(0, 32)
	if got := r.ReadMerged(OpCondAdd, 5); got != 0 {
		t.Fatalf("merged bucket 5 = %d after ClearRange, want 0 (lane must not resurrect)", got)
	}
	if n := r.DrainRange(OpCondAdd, 0, 32); n != 0 {
		t.Fatalf("drain after ClearRange folded %d buckets, want 0", n)
	}
}

func TestShardDirtinessCursor(t *testing.T) {
	r := NewRegister(16, 32)
	if r.ShardsDirty() {
		t.Fatal("unsharded register reports dirty")
	}
	r.EnableSharding(2)
	if r.ShardsDirty() {
		t.Fatal("fresh lanes report dirty")
	}
	r.ShardApply(0, OpMax, 1, 3, 0)
	if !r.ShardsDirty() {
		t.Fatal("lane write did not mark the register dirty")
	}
	r.DrainRange(OpMax, 0, r.Size())
	r.MarkDrained()
	if r.ShardsDirty() {
		t.Fatal("drained register still dirty")
	}
	r.ShardApply(1, OpMax, 1, 5, 0)
	if !r.ShardsDirty() {
		t.Fatal("post-drain lane write did not re-mark dirty")
	}
}

func TestEnableShardingLifecycle(t *testing.T) {
	r := NewRegister(16, 32)
	r.EnableSharding(4)
	if r.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", r.Shards())
	}
	r.ShardApply(3, OpCondAdd, 0, 1, ^uint32(0))
	r.EnableSharding(4) // same n: idempotent, lanes kept
	if got := r.ReadMerged(OpCondAdd, 0); got != 1 {
		t.Fatalf("re-enable with same n lost lane state: merged = %d, want 1", got)
	}
	r.EnableSharding(2) // different n: lanes discarded (caller drains first)
	if r.Shards() != 2 {
		t.Fatalf("Shards() = %d after resize, want 2", r.Shards())
	}
	if r.ShardsDirty() {
		t.Fatal("resized lanes report dirty")
	}
	r.EnableSharding(0)
	if r.Shards() != 0 {
		t.Fatalf("Shards() = %d after disable, want 0", r.Shards())
	}
}

// TestAccessesFoldsStripes is the striped-counter satellite: ApplySeq bumps
// the base stripe, each ShardApply bumps its lane's stripe, and Accesses
// folds them all on read.
func TestAccessesFoldsStripes(t *testing.T) {
	r := NewRegister(16, 32)
	r.EnableSharding(3)
	for i := 0; i < 5; i++ {
		r.ApplySeq(OpCondAdd, uint32(i), 1, ^uint32(0))
	}
	for s := 0; s < 3; s++ {
		for i := 0; i < 4; i++ {
			r.ShardApply(s, OpCondAdd, uint32(i), 1, ^uint32(0))
		}
	}
	if got := r.Accesses(); got != 5+3*4 {
		t.Fatalf("Accesses() = %d, want %d", got, 5+3*4)
	}
	// The concurrent CAS path intentionally does not count.
	r.Apply(OpCondAdd, 0, 1, ^uint32(0))
	if got := r.Accesses(); got != 5+3*4 {
		t.Fatalf("Accesses() = %d after Apply, want %d (CAS path uncounted)", got, 5+3*4)
	}
}
