// Package metrics implements the accuracy metrics used throughout the
// paper's evaluation (Appendix C): average relative error (ARE), relative
// error (RE), F1 score with precision/recall, and false-positive rate, plus
// the entropy helper needed for the flow-entropy experiment.
package metrics

import "math"

// RE returns the relative error |est - truth| / truth. A truth of zero with
// a nonzero estimate yields +Inf; zero/zero yields 0.
func RE(truth, est float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-truth) / math.Abs(truth)
}

// ARE returns the average relative error across per-flow (truth, estimate)
// pairs: (1/n) Σ |fᵢ - f̂ᵢ| / fᵢ. Flows present in truth but absent from
// est count with an estimate of zero. Flows only in est are ignored, as in
// the paper's per-flow size evaluation (truth defines the flow set).
func ARE[K comparable](truth, est map[K]uint64) float64 {
	if len(truth) == 0 {
		return 0
	}
	var sum float64
	for k, t := range truth {
		sum += RE(float64(t), float64(est[k]))
	}
	return sum / float64(len(truth))
}

// Classification summarizes a detection experiment (heavy hitters, DDoS
// victims, blacklist membership) against ground truth.
type Classification struct {
	TP, FP, FN, TN int
}

// Classify compares a reported set against a truth set drawn from a shared
// universe. Universe members absent from both sets are true negatives.
func Classify[K comparable](universe, truth, reported map[K]bool) Classification {
	var c Classification
	for k := range universe {
		t := truth[k]
		r := reported[k]
		switch {
		case t && r:
			c.TP++
		case !t && r:
			c.FP++
		case t && !r:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Precision returns TP / (TP + FP); 1 when nothing was reported.
func (c Classification) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP / (TP + FN); 1 when the truth set is empty.
func (c Classification) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Classification) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// FalsePositiveRate returns FP / (FP + TN); 0 when there are no negatives.
func (c Classification) FalsePositiveRate() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// Entropy returns the Shannon entropy (base 2) of a flow-size multiset
// described by counts: H = -Σ (fᵢ/N) log2(fᵢ/N). Zero counts are skipped.
func Entropy(counts []uint64) float64 {
	var total float64
	for _, c := range counts {
		total += float64(c)
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / total
		h -= p * math.Log2(p)
	}
	return h
}

// EntropyFromDistribution returns the entropy of a flow-size distribution
// given dist[s] = number of flows with size s (the MRAC/UnivMon output
// form): H = -Σ_s n_s · (s/N) log2(s/N), N = Σ_s n_s · s.
func EntropyFromDistribution(dist map[uint64]float64) float64 {
	var total float64
	for size, n := range dist {
		total += n * float64(size)
	}
	if total <= 0 {
		return 0
	}
	var h float64
	for size, n := range dist {
		if n <= 0 || size == 0 {
			continue
		}
		p := float64(size) / total
		h -= n * p * math.Log2(p)
	}
	return h
}

// MeanFloat returns the arithmetic mean of xs (0 for empty input).
func MeanFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
