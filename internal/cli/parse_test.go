package cli

import (
	"testing"

	"flymon/internal/packet"
)

func TestParseKeySpecAliases(t *testing.T) {
	for _, s := range []string{"5tuple", "five-tuple", "flow", "5TUPLE"} {
		spec, err := ParseKeySpec(s)
		if err != nil || !spec.Equal(packet.KeyFiveTuple) {
			t.Fatalf("%q → %v, %v", s, spec, err)
		}
	}
	spec, err := ParseKeySpec("ippair")
	if err != nil || !spec.Equal(packet.KeyIPPair) {
		t.Fatalf("ippair → %v, %v", spec, err)
	}
	empty, err := ParseKeySpec("")
	if err != nil || len(empty.Parts) != 0 {
		t.Fatalf("empty → %v, %v", empty, err)
	}
}

func TestParseKeySpecCompound(t *testing.T) {
	spec, err := ParseKeySpec("srcip/24-dstport")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Parts) != 2 {
		t.Fatalf("parts = %d", len(spec.Parts))
	}
	if spec.Parts[0].Field != packet.FieldSrcIP || spec.Parts[0].PrefixBits != 24 {
		t.Fatalf("part 0 = %+v", spec.Parts[0])
	}
	if spec.Parts[1].Field != packet.FieldDstPort {
		t.Fatalf("part 1 = %+v", spec.Parts[1])
	}
	if spec.Bits() != 24+16 {
		t.Fatalf("bits = %d", spec.Bits())
	}
}

func TestParseKeySpecErrors(t *testing.T) {
	for _, s := range []string{"bogus", "srcip/abc", "srcip/40", "srcip-", "dstport/17"} {
		if _, err := ParseKeySpec(s); err == nil {
			t.Errorf("%q must fail", s)
		}
	}
}

func TestParseIPv4(t *testing.T) {
	ip, err := ParseIPv4("192.168.1.200")
	if err != nil || ip != packet.IPv4(192, 168, 1, 200) {
		t.Fatalf("parse = %#x, %v", ip, err)
	}
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3"} {
		if _, err := ParseIPv4(s); err == nil {
			t.Errorf("%q must fail", s)
		}
	}
}

func TestParseCIDR(t *testing.T) {
	pr, err := ParseCIDR("10.0.0.0/8")
	if err != nil || pr.Bits != 8 || pr.Value != packet.IPv4(10, 0, 0, 0) {
		t.Fatalf("parse = %+v, %v", pr, err)
	}
	host, err := ParseCIDR("1.2.3.4")
	if err != nil || host.Bits != 32 {
		t.Fatalf("bare address = %+v, %v", host, err)
	}
	empty, err := ParseCIDR("")
	if err != nil || empty.Bits != 0 {
		t.Fatalf("empty = %+v, %v", empty, err)
	}
	for _, s := range []string{"10.0.0.0/33", "10.0.0.0/-1", "10.0.0/8", "x/8"} {
		if _, err := ParseCIDR(s); err == nil {
			t.Errorf("%q must fail", s)
		}
	}
}
