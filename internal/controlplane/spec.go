package controlplane

import (
	"fmt"

	"flymon/internal/packet"
)

// Attribute is the flow attribute of a measurement task (§2.1): what
// statistic is computed over each flow's packets.
type Attribute uint8

// Supported attributes (Table 1).
const (
	// AttrFrequency accumulates a parameter per key (per-flow size, heavy
	// hitters, heavy changers).
	AttrFrequency Attribute = iota
	// AttrDistinct counts distinct parameter values per key (DDoS victims,
	// super-spreaders, port scans, cardinality).
	AttrDistinct
	// AttrExistence checks set membership of the parameter (blacklists).
	AttrExistence
	// AttrMax tracks the maximum parameter per key (congestion, HoL
	// blocking, packet inter-arrival).
	AttrMax
)

// String implements fmt.Stringer.
func (a Attribute) String() string {
	switch a {
	case AttrFrequency:
		return "Frequency"
	case AttrDistinct:
		return "Distinct"
	case AttrExistence:
		return "Existence"
	case AttrMax:
		return "Max"
	default:
		return fmt.Sprintf("Attribute(%d)", uint8(a))
	}
}

// ParamKind is the attribute-parameter source of a task.
type ParamKind uint8

// Parameter kinds.
const (
	// ParamPacketCount is the constant 1 (per-flow packet counts).
	ParamPacketCount ParamKind = iota
	// ParamPacketBytes is the packet's wire size (per-flow byte counts).
	ParamPacketBytes
	// ParamQueueLength is the switch queue depth metadata.
	ParamQueueLength
	// ParamQueueDelay is the queueing-delay metadata.
	ParamQueueDelay
	// ParamPacketInterval is the packet inter-arrival time (combinatorial,
	// needs three CMUs, §4).
	ParamPacketInterval
	// ParamFlowKey is a flow-key parameter (the distinct/existence
	// attribute's "what to count": e.g. Distinct(SrcIP) per DstIP).
	ParamFlowKey
)

// String implements fmt.Stringer.
func (p ParamKind) String() string {
	switch p {
	case ParamPacketCount:
		return "Const(1)"
	case ParamPacketBytes:
		return "PktBytes"
	case ParamQueueLength:
		return "QueueLength"
	case ParamQueueDelay:
		return "QueueDelay"
	case ParamPacketInterval:
		return "PktInterval"
	case ParamFlowKey:
		return "FlowKey"
	default:
		return fmt.Sprintf("ParamKind(%d)", uint8(p))
	}
}

// ParamSpec is the attribute parameter with its optional flow-key spec.
type ParamSpec struct {
	Kind ParamKind
	Key  packet.KeySpec // for ParamFlowKey
}

// Algorithm identifies a built-in measurement algorithm (Table 3).
type Algorithm uint8

// Built-in algorithms; AlgAuto lets the compiler choose by attribute.
const (
	AlgAuto Algorithm = iota
	AlgCMS
	AlgSuMaxSum
	AlgMRAC
	AlgTower
	AlgCounterBraids
	AlgBeauCoup
	AlgHLL
	AlgLinearCounting
	AlgBloom
	AlgSuMaxMax
	AlgMaxInterval
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgAuto:
		return "auto"
	case AlgCMS:
		return "FlyMon-CMS"
	case AlgSuMaxSum:
		return "FlyMon-SuMax(Sum)"
	case AlgMRAC:
		return "FlyMon-MRAC"
	case AlgTower:
		return "FlyMon-TowerSketch"
	case AlgCounterBraids:
		return "FlyMon-CounterBraids"
	case AlgBeauCoup:
		return "FlyMon-BeauCoup"
	case AlgHLL:
		return "FlyMon-HLL"
	case AlgLinearCounting:
		return "FlyMon-LinearCounting"
	case AlgBloom:
		return "FlyMon-BloomFilter"
	case AlgSuMaxMax:
		return "FlyMon-SuMax(Max)"
	case AlgMaxInterval:
		return "FlyMon-MaxInterval"
	default:
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
}

// GroupsNeeded returns how many CMU Groups the algorithm spans for depth d
// (Table 3's "CMUG Usage").
func (a Algorithm) GroupsNeeded(d int) int {
	switch a {
	case AlgSuMaxSum:
		return d
	case AlgMaxInterval:
		return 3
	default:
		return 1
	}
}

// TaskSpec is a measurement-task definition as issued by an operator: a
// filter, a key, an attribute with parameters, and a memory size — the
// task abstraction of §2.1/§3.4.
type TaskSpec struct {
	Name      string
	Filter    packet.Filter
	Key       packet.KeySpec
	Attribute Attribute
	Param     ParamSpec

	// Threshold parameterizes detection tasks (heavy hitters, DDoS
	// victims) and BeauCoup's coupon configuration.
	Threshold int

	// MemBuckets is the requested buckets per row.
	MemBuckets int

	// D is the row count (CMUs per algorithm instance); 0 takes the
	// algorithm default.
	D int

	// Algorithm optionally pins the implementation; AlgAuto compiles by
	// attribute.
	Algorithm Algorithm

	// Prob enables probabilistic execution (§6); 0 or 1 = always.
	Prob float64
}

// Validate checks the spec's structural invariants.
func (s *TaskSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("controlplane: task needs a name")
	}
	if s.MemBuckets <= 0 {
		return fmt.Errorf("controlplane: task %q needs a positive memory size", s.Name)
	}
	if s.D < 0 || s.D > 3 {
		return fmt.Errorf("controlplane: task %q depth %d out of range [0,3]", s.Name, s.D)
	}
	if s.Prob < 0 || s.Prob > 1 {
		return fmt.Errorf("controlplane: task %q probability %v out of range [0,1]", s.Name, s.Prob)
	}
	switch s.Attribute {
	case AttrDistinct:
		if len(s.Key.Parts) > 0 && s.Param.Kind != ParamFlowKey {
			return fmt.Errorf("controlplane: task %q: Distinct needs a flow-key parameter", s.Name)
		}
	case AttrExistence:
		if s.Param.Kind != ParamFlowKey {
			return fmt.Errorf("controlplane: task %q: Existence needs a flow-key parameter", s.Name)
		}
	case AttrFrequency, AttrMax:
		if s.Param.Kind == ParamFlowKey {
			return fmt.Errorf("controlplane: task %q: %s cannot take a flow-key parameter", s.Name, s.Attribute)
		}
	default:
		return fmt.Errorf("controlplane: task %q: unknown attribute %d", s.Name, s.Attribute)
	}
	return nil
}

// ChooseAlgorithm resolves AlgAuto: the compiler's per-attribute default
// (Table 3), honoring an explicit pin.
func (s *TaskSpec) ChooseAlgorithm() Algorithm {
	if s.Algorithm != AlgAuto {
		return s.Algorithm
	}
	switch s.Attribute {
	case AttrFrequency:
		return AlgCMS
	case AttrDistinct:
		if len(s.Key.Parts) == 0 {
			return AlgHLL // single-key distinct: flow cardinality
		}
		return AlgBeauCoup
	case AttrExistence:
		return AlgBloom
	case AttrMax:
		if s.Param.Kind == ParamPacketInterval {
			return AlgMaxInterval
		}
		return AlgSuMaxMax
	default:
		return AlgCMS
	}
}

// DefaultD returns the algorithm's default row count.
func DefaultD(a Algorithm) int {
	switch a {
	case AlgMRAC, AlgHLL, AlgLinearCounting:
		return 1
	case AlgCounterBraids:
		return 2
	case AlgMaxInterval:
		return 3
	default:
		return 3
	}
}
