package dataplane

import (
	"testing"
	"testing/quick"
)

func TestResourcesAddScaleFits(t *testing.T) {
	a := Resources{HashUnits: 1, SALUs: 2, SRAMBlocks: 3}
	b := Resources{HashUnits: 4, TCAMBlocks: 5}
	sum := a.Add(b)
	if sum.HashUnits != 5 || sum.SALUs != 2 || sum.SRAMBlocks != 3 || sum.TCAMBlocks != 5 {
		t.Fatalf("Add = %+v", sum)
	}
	tripled := a.Scale(3)
	if tripled.HashUnits != 3 || tripled.SALUs != 6 {
		t.Fatalf("Scale = %+v", tripled)
	}
	cap_ := StageCapacity()
	if !a.FitsWithin(cap_) {
		t.Error("small vector must fit one stage")
	}
	huge := Resources{SALUs: SALUsPerStage + 1}
	if huge.FitsWithin(cap_) {
		t.Error("oversized vector must not fit")
	}
}

func TestPipelineCapacity(t *testing.T) {
	c := PipelineCapacity(NumStages)
	if c.HashUnits != NumStages*HashUnitsPerStage {
		t.Errorf("pipeline hash units = %d", c.HashUnits)
	}
	if c.SALUs != NumStages*SALUsPerStage {
		t.Errorf("pipeline SALUs = %d", c.SALUs)
	}
	if c.PHVBits != PHVBits {
		t.Error("PHV is pipeline-wide, not per-stage")
	}
}

func TestUtilization(t *testing.T) {
	used := Resources{HashUnits: 3, SALUs: 1}
	u := UtilizationOf(used, StageCapacity())
	if u.HashUnits != 0.5 {
		t.Errorf("hash util = %v, want 0.5", u.HashUnits)
	}
	if u.SALUs != 0.25 {
		t.Errorf("SALU util = %v, want 0.25", u.SALUs)
	}
	if u.Max() != 0.5 {
		t.Errorf("max util = %v", u.Max())
	}
	if u.Mean() <= 0 || u.Mean() >= 0.5 {
		t.Errorf("mean util = %v out of expected range", u.Mean())
	}
	// Zero capacity → zero utilization, not NaN.
	z := UtilizationOf(used, Resources{})
	if z.HashUnits != 0 {
		t.Error("zero-capacity utilization must be 0")
	}
}

func TestSRAMBlocksFor(t *testing.T) {
	// 65536 × 32-bit = 256 KB = 16 blocks of 16 KB.
	if got := SRAMBlocksFor(65536, 32); got != 16 {
		t.Errorf("blocks = %d, want 16", got)
	}
	// 65536 × 1-bit = 8 KB → still 1 block minimum.
	if got := SRAMBlocksFor(65536, 1); got != 1 {
		t.Errorf("1-bit blocks = %d, want 1", got)
	}
	if got := SRAMBlocksFor(1, 8); got != 1 {
		t.Errorf("tiny register blocks = %d, want 1", got)
	}
}

func TestTCAMBlocksFor(t *testing.T) {
	if TCAMBlocksFor(0) != 0 {
		t.Error("no entries → no blocks")
	}
	if TCAMBlocksFor(1) != 1 || TCAMBlocksFor(512) != 1 || TCAMBlocksFor(513) != 2 {
		t.Error("TCAM block rounding wrong")
	}
}

// --- Register semantics (Appendix A) ---

func TestCondAddSemantics(t *testing.T) {
	r := NewRegister(16, 32)
	// bucket < p2: add and return the updated value.
	if got := r.Execute(OpCondAdd, 3, 5, 100); got != 5 {
		t.Fatalf("first Cond-ADD = %d, want 5", got)
	}
	if got := r.Execute(OpCondAdd, 3, 5, 100); got != 10 {
		t.Fatalf("second Cond-ADD = %d, want 10", got)
	}
	// bucket ≥ p2: no update, return 0.
	if got := r.Execute(OpCondAdd, 3, 5, 10); got != 0 {
		t.Fatalf("guarded Cond-ADD = %d, want 0", got)
	}
	if r.Read(3) != 10 {
		t.Fatalf("guard must prevent the write, bucket = %d", r.Read(3))
	}
	// p2 = max turns it into an unconditional ADD.
	r.Execute(OpCondAdd, 4, 7, ^uint32(0))
	r.Execute(OpCondAdd, 4, 7, ^uint32(0))
	if r.Read(4) != 14 {
		t.Fatalf("unconditional ADD sum = %d", r.Read(4))
	}
}

func TestCondAddSaturatesAtWidth(t *testing.T) {
	r := NewRegister(4, 16)
	r.Execute(OpCondAdd, 0, 0xFFFF, ^uint32(0))
	if got := r.Execute(OpCondAdd, 0, 10, ^uint32(0)); got != 0 {
		// Bucket is at the 16-bit max: the guard p2 (clamped to width)
		// cannot exceed it, so the op returns 0.
		t.Fatalf("saturated Cond-ADD = %d, want 0", got)
	}
	if r.Read(0) != 0xFFFF {
		t.Fatalf("16-bit bucket overflowed: %#x", r.Read(0))
	}
}

func TestMaxSemantics(t *testing.T) {
	r := NewRegister(8, 32)
	if got := r.Execute(OpMax, 1, 50, 0); got != 50 {
		t.Fatalf("first MAX = %d, want 50", got)
	}
	// Smaller value: no update, return 0.
	if got := r.Execute(OpMax, 1, 20, 0); got != 0 {
		t.Fatalf("non-updating MAX = %d, want 0", got)
	}
	if r.Read(1) != 50 {
		t.Fatal("MAX must not decrease the bucket")
	}
	if got := r.Execute(OpMax, 1, 60, 0); got != 60 {
		t.Fatalf("updating MAX = %d, want 60", got)
	}
}

func TestAndOrSemantics(t *testing.T) {
	r := NewRegister(8, 32)
	// p2 ≠ 0 selects OR.
	if got := r.Execute(OpAndOr, 2, 0b0101, 1); got != 0b0101 {
		t.Fatalf("OR result = %b", got)
	}
	if got := r.Execute(OpAndOr, 2, 0b0010, 1); got != 0b0111 {
		t.Fatalf("second OR result = %b", got)
	}
	// p2 == 0 selects AND.
	if got := r.Execute(OpAndOr, 2, 0b0011, 0); got != 0b0011 {
		t.Fatalf("AND result = %b", got)
	}
	if r.Read(2) != 0b0011 {
		t.Fatal("AND must mask the bucket")
	}
}

func TestOpNone(t *testing.T) {
	r := NewRegister(4, 32)
	if r.Execute(OpNone, 0, 9, 9) != 0 {
		t.Error("OpNone must return 0")
	}
	if r.Read(0) != 0 {
		t.Error("OpNone must not write")
	}
}

func TestRegisterWidthMasking(t *testing.T) {
	r := NewRegister(4, 8)
	r.Execute(OpMax, 0, 0xABCD, 0)
	if r.Read(0) != 0xCD {
		t.Fatalf("8-bit register stored %#x, want value masked to width", r.Read(0))
	}
}

func TestRegisterIndexWrap(t *testing.T) {
	r := NewRegister(16, 32)
	r.Execute(OpCondAdd, 16+3, 1, ^uint32(0)) // wraps to 3
	if r.Read(3) != 1 {
		t.Fatal("index must wrap into the bucket range")
	}
}

func TestRegisterGeometry(t *testing.T) {
	r := NewRegister(1000, 16) // rounds up to 1024
	if r.Size() != 1024 {
		t.Fatalf("size = %d, want 1024", r.Size())
	}
	if r.BitWidth() != 16 {
		t.Fatalf("width = %d", r.BitWidth())
	}
	if r.MemoryBytes() != 1024*2 {
		t.Fatalf("memory = %d", r.MemoryBytes())
	}
	if r.SRAMBlocks() != 1 {
		t.Fatalf("SRAM blocks = %d", r.SRAMBlocks())
	}
}

func TestRegisterInvalidWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("width 33 must panic")
		}
	}()
	NewRegister(8, 33)
}

func TestRegisterRangeOps(t *testing.T) {
	r := NewRegister(16, 32)
	for i := uint32(0); i < 16; i++ {
		r.Execute(OpCondAdd, i, i+1, ^uint32(0))
	}
	got := r.ReadRange(4, 4)
	for i, v := range got {
		if v != uint32(4+i+1) {
			t.Fatalf("ReadRange[%d] = %d", i, v)
		}
	}
	r.ClearRange(4, 4)
	for i := 4; i < 8; i++ {
		if r.Read(uint32(i)) != 0 {
			t.Fatal("ClearRange left residue")
		}
	}
	if r.Read(3) == 0 || r.Read(8) == 0 {
		t.Fatal("ClearRange touched neighbours")
	}
	r.Reset()
	for i := uint32(0); i < 16; i++ {
		if r.Read(i) != 0 {
			t.Fatal("Reset left residue")
		}
	}
}

func TestRegisterAccessCount(t *testing.T) {
	r := NewRegister(4, 32)
	r.Execute(OpCondAdd, 0, 1, 1)
	r.Execute(OpMax, 1, 1, 0)
	if r.Accesses() != 2 {
		t.Fatalf("accesses = %d", r.Accesses())
	}
	r.Read(0) // control-plane read is free
	if r.Accesses() != 2 {
		t.Fatal("Read must not count as a data-plane access")
	}
}

func TestCondAddMonotoneProperty(t *testing.T) {
	// Cond-ADD never decreases a bucket.
	f := func(ops []struct{ P1, P2 uint32 }) bool {
		r := NewRegister(1, 32)
		prev := uint32(0)
		for _, op := range ops {
			r.Execute(OpCondAdd, 0, op.P1, op.P2)
			cur := r.Read(0)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxIsUpperBoundProperty(t *testing.T) {
	// After MAX updates, the bucket equals the max of all inputs (masked).
	f := func(vals []uint16) bool {
		r := NewRegister(1, 16)
		var want uint32
		for _, v := range vals {
			r.Execute(OpMax, 0, uint32(v), 0)
			if uint32(v) > want {
				want = uint32(v)
			}
		}
		return r.Read(0) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- Footprint models ---

func TestStaticFootprintShape(t *testing.T) {
	cms := StaticFootprint(KindCMS, 3, 65536, 64)
	if cms.SALUs != 3 {
		t.Errorf("CMS d=3 SALUs = %d", cms.SALUs)
	}
	if cms.HashUnits != 6 {
		t.Errorf("CMS d=3 hash units = %d (index + addressing tax)", cms.HashUnits)
	}
	bf := StaticFootprint(KindBloomFilter, 3, 65536, 64)
	if bf.SRAMBlocks >= cms.SRAMBlocks {
		t.Error("1-bit Bloom buckets must use less SRAM than 32-bit CMS")
	}
	mrac := StaticFootprint(KindMRAC, 3, 65536, 64)
	if mrac.SALUs != 1 {
		t.Error("MRAC is a single array regardless of requested d")
	}
	hll := StaticFootprint(KindHLL, 1, 4096, 64)
	if hll.SALUs != 1 {
		t.Error("HLL uses one SALU")
	}
}

func TestBaselineSwitchProfileFits(t *testing.T) {
	base := BaselineSwitchProfile()
	cap_ := PipelineCapacity(NumStages)
	if !base.FitsWithin(cap_) {
		t.Fatal("baseline must fit the pipeline")
	}
	u := UtilizationOf(base, cap_)
	if u.Max() > 0.6 || u.Mean() < 0.1 {
		t.Fatalf("baseline utilization implausible: %v", u)
	}
}

func TestTranslationCostModels(t *testing.T) {
	if TranslationTCAMEntries(1) != 0 {
		t.Error("one partition needs no translation entries")
	}
	if TranslationTCAMEntries(4) != 4*3+1 {
		t.Errorf("4 partitions = %d entries", TranslationTCAMEntries(4))
	}
	// Monotone in partitions.
	prev := 0.0
	for _, p := range []int{2, 4, 8, 16, 32, 64} {
		u := TranslationTCAMUsage(p, 1)
		if u <= prev {
			t.Fatalf("TCAM usage not increasing at %d partitions", p)
		}
		prev = u
	}
	// 32 partitions on one CMU ≈ the paper's ~12.5%-of-one-stage claim.
	if u := TranslationTCAMUsage(32, 1); u < 0.05 || u > 0.15 {
		t.Fatalf("32-partition TCAM usage = %.3f, want ~0.08–0.13", u)
	}
	// Shift-based PHV bits grow with log2(partitions).
	if TranslationPHVBits(8) != 4*32 || TranslationPHVBits(64) != 7*32 {
		t.Fatalf("PHV bits: 8→%d, 64→%d", TranslationPHVBits(8), TranslationPHVBits(64))
	}
	if TranslationPHVBits(0) != 0 {
		t.Error("zero partitions cost no PHV")
	}
}

func TestStatefulOpStrings(t *testing.T) {
	names := map[StatefulOp]string{
		OpNone: "None", OpCondAdd: "Cond-ADD", OpMax: "MAX", OpAndOr: "AND-OR",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("op %d string = %q", op, op.String())
		}
	}
	if len(ReducedOperationSet) != 3 {
		t.Error("the reduced operation set has exactly three ops, leaving one SALU slot free (§6)")
	}
}
