package dataplane

import "sync/atomic"

// Batched register application — the grouped-update half of the
// FrameView-native engine. The packet-at-a-time paths (Apply/ShardApply)
// pay an op-dispatch branch and a cold bucket line per update; here one
// rule's updates for a whole frame span arrive together, so the op switch
// is hoisted out of the loop and the target counter lines are prefetched
// a fixed distance ahead of the read-modify-write. Per-update semantics —
// result/old pairs, clamp accounting, CAS linearizability — are identical
// to issuing the same updates one at a time in slice order, which is what
// keeps the batch engine bit-identical to sequential replay.

// prefetchDist is how many updates ahead the batch loops touch the target
// bucket line. At ~1 memory-latency worth of CAS work per update, 8 keeps
// the line fill overlapped without running past typical span tails.
const prefetchDist = 8

// prefetch touches b with an atomic load. A plain blank-assigned load may
// be dead-code-eliminated; atomic loads never are, and loading a bucket
// that another writer owns is race-free by definition.
func prefetch(b *uint32) { _ = atomic.LoadUint32(b) }

// ApplyBatch performs one stateful operation per element of idx against the
// shared buckets via the CAS path, writing the per-update (result, old)
// witnesses into result/old. It is exactly equivalent to calling Apply for
// each element in order: per-bucket updates linearize, clamp events count
// once per saturating update, and the witnessed pairs are the committed
// read-modify-writes. idx, p1, p2, result, old must share a length.
func (r *Register) ApplyBatch(op StatefulOp, idx, p1, p2, result, old []uint32) {
	n := len(idx)
	if n == 0 {
		return
	}
	buckets := r.buckets
	bm := uint32(len(buckets) - 1)
	mask := r.mask
	var clamps uint64
	switch op {
	case OpCondAdd:
		for k := 0; k < n; k++ {
			if k+prefetchDist < n {
				prefetch(&buckets[idx[k+prefetchDist]&bm])
			}
			b := &buckets[idx[k]&bm]
			p1m, p2m := p1[k]&mask, p2[k]&mask
			for {
				cur := atomic.LoadUint32(b)
				if cur >= p2m {
					result[k], old[k] = 0, cur
					break
				}
				next := cur + p1m
				clamped := false
				if next > mask || next < cur {
					next = mask
					clamped = true
				}
				if atomic.CompareAndSwapUint32(b, cur, next) {
					if clamped {
						clamps++
					}
					result[k], old[k] = next, cur
					break
				}
			}
		}
	case OpMax:
		for k := 0; k < n; k++ {
			if k+prefetchDist < n {
				prefetch(&buckets[idx[k+prefetchDist]&bm])
			}
			b := &buckets[idx[k]&bm]
			v := p1[k] & mask
			for {
				cur := atomic.LoadUint32(b)
				if cur >= v {
					result[k], old[k] = 0, cur
					break
				}
				if atomic.CompareAndSwapUint32(b, cur, v) {
					result[k], old[k] = v, cur
					break
				}
			}
		}
	case OpAndOr:
		for k := 0; k < n; k++ {
			if k+prefetchDist < n {
				prefetch(&buckets[idx[k+prefetchDist]&bm])
			}
			b := &buckets[idx[k]&bm]
			for {
				cur := atomic.LoadUint32(b)
				next := cur
				if p2[k] == 0 {
					next &= p1[k] & mask
				} else {
					next |= p1[k] & mask
				}
				if atomic.CompareAndSwapUint32(b, cur, next) {
					result[k], old[k] = next, cur
					break
				}
			}
		}
	case OpXor:
		for k := 0; k < n; k++ {
			if k+prefetchDist < n {
				prefetch(&buckets[idx[k+prefetchDist]&bm])
			}
			b := &buckets[idx[k]&bm]
			for {
				cur := atomic.LoadUint32(b)
				next := cur ^ (p1[k] & mask)
				if atomic.CompareAndSwapUint32(b, cur, next) {
					result[k], old[k] = next, cur
					break
				}
			}
		}
	case OpNone:
		for k := 0; k < n; k++ {
			result[k], old[k] = 0, atomic.LoadUint32(&buckets[idx[k]&bm])
		}
	default:
		// Match Apply's contract for unknown ops.
		r.Apply(op, idx[0], p1[0], p2[0])
	}
	if clamps != 0 {
		atomic.AddUint64(&r.clamps, clamps)
	}
}

// ApplyAddBatch is the saturating-add specialization of ApplyBatch for the
// shape every frequency sketch compiles to: OpCondAdd with a constant
// increment and the threshold at the saturation bound. The caller must
// guarantee a full-width register (mask == ^0) — then the ceiling test
// `cur >= p2` can only fire at the saturated value, and the CAS loop
// collapses to one fetch-and-add per update, with a repair store on the
// (astronomically rare) 32-bit wrap that restores Apply's clamp semantics:
// first wrap clamps the bucket to ^0 and counts one clamp event; updates
// against an already-saturated bucket change nothing and count nothing.
// Single-writer streams are bit-identical to calling Apply per element;
// concurrent writers linearize per update exactly as the CAS path does
// (clamp accounting under a *concurrent* wrap may attribute events to a
// different interleaving — unreachable without 2^32 increments to one
// bucket between drains).
func (r *Register) ApplyAddBatch(idx []uint32, p1 uint32) {
	n := len(idx)
	if n == 0 {
		return
	}
	buckets := r.buckets
	bm := uint32(len(buckets) - 1)
	var clamps uint64
	for k := 0; k < n; k++ {
		if k+prefetchDist < n {
			prefetch(&buckets[idx[k+prefetchDist]&bm])
		}
		b := &buckets[idx[k]&bm]
		next := atomic.AddUint32(b, p1)
		if next < p1 && p1 != 0 { // wrapped past 2^32
			old := next - p1
			atomic.StoreUint32(b, ^uint32(0))
			if old != ^uint32(0) {
				clamps++ // first saturation; re-adds to ^0 are no-ops
			}
		}
	}
	if clamps != 0 {
		atomic.AddUint64(&r.clamps, clamps)
	}
}

// ShardApplyAddBatch is ApplyAddBatch against a private lane: a plain
// saturating-add loop with the increment hoisted, valid for any register
// width (the lane tolerates exactly one writer, so no fetch-and-add trick
// is needed). Accounting matches calling ShardApply(OpCondAdd, i, p1, ^0)
// per element: one access per update, one clamp per saturating update,
// saturated buckets untouched.
func (r *Register) ShardApplyAddBatch(shard int, idx []uint32, p1 uint32) {
	n := len(idx)
	if n == 0 {
		return
	}
	sh := &r.shards[shard]
	sh.accesses += uint64(n)
	lane := sh.lane
	bm := uint32(len(lane) - 1)
	mask := r.mask
	p1 &= mask
	var clamps uint64
	for k := 0; k < n; k++ {
		if k+prefetchDist < n {
			prefetch(&lane[idx[k+prefetchDist]&bm])
		}
		i := idx[k] & bm
		cur := lane[i]
		if cur >= mask {
			continue
		}
		next := cur + p1
		if next > mask || next < cur {
			next = mask
			clamps++
		}
		lane[i] = next
	}
	if clamps != 0 {
		atomic.AddUint64(&r.clamps, clamps)
	}
}

// ShardApplyBatch is ApplyBatch against the given worker's private lane
// with plain stores — the contention-free path for mergeable ops. The lane
// tolerates exactly one writer, so the loops skip the CAS entirely; the
// prefetch still uses an atomic load (self-owned data, race-free). Clamp
// events and the lane's access counter account exactly as if ShardApply
// had been called per element.
func (r *Register) ShardApplyBatch(shard int, op StatefulOp, idx, p1, p2, result, old []uint32) {
	n := len(idx)
	if n == 0 {
		return
	}
	sh := &r.shards[shard]
	sh.accesses += uint64(n)
	lane := sh.lane
	bm := uint32(len(lane) - 1)
	mask := r.mask
	var clamps uint64
	switch op {
	case OpCondAdd:
		for k := 0; k < n; k++ {
			if k+prefetchDist < n {
				prefetch(&lane[idx[k+prefetchDist]&bm])
			}
			i := idx[k] & bm
			cur := lane[i]
			if cur >= (p2[k] & mask) {
				result[k], old[k] = 0, cur
				continue
			}
			next := cur + (p1[k] & mask)
			if next > mask || next < cur {
				next = mask
				clamps++
			}
			lane[i] = next
			result[k], old[k] = next, cur
		}
	case OpMax:
		for k := 0; k < n; k++ {
			if k+prefetchDist < n {
				prefetch(&lane[idx[k+prefetchDist]&bm])
			}
			i := idx[k] & bm
			cur := lane[i]
			v := p1[k] & mask
			if cur >= v {
				result[k], old[k] = 0, cur
				continue
			}
			lane[i] = v
			result[k], old[k] = v, cur
		}
	case OpAndOr:
		for k := 0; k < n; k++ {
			if k+prefetchDist < n {
				prefetch(&lane[idx[k+prefetchDist]&bm])
			}
			i := idx[k] & bm
			cur := lane[i]
			next := cur
			if p2[k] == 0 {
				next &= p1[k] & mask
			} else {
				next |= p1[k] & mask
			}
			lane[i] = next
			result[k], old[k] = next, cur
		}
	case OpXor:
		for k := 0; k < n; k++ {
			if k+prefetchDist < n {
				prefetch(&lane[idx[k+prefetchDist]&bm])
			}
			i := idx[k] & bm
			cur := lane[i]
			next := cur ^ (p1[k] & mask)
			lane[i] = next
			result[k], old[k] = next, cur
		}
	case OpNone:
		for k := 0; k < n; k++ {
			result[k], old[k] = 0, lane[idx[k]&bm]
		}
	default:
		r.applyPlain(lane, op, idx[0], p1[0], p2[0])
	}
	if clamps != 0 {
		atomic.AddUint64(&r.clamps, clamps)
	}
}
