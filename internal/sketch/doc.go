// Package sketch provides from-scratch reference implementations of the
// sketching algorithms FlyMon composes on CMUs and compares against in its
// evaluation (Table 1, Fig. 14): Count-Min Sketch, Bloom filter,
// HyperLogLog, Linear Counting, MRAC, SuMax, TowerSketch, Counter Braids,
// UnivMon, and BeauCoup — plus exact ground-truth accumulators used to
// score every accuracy experiment.
//
// These are the *native* (static-deployment) forms of the algorithms; the
// CMU-composed "FlyMon-X" variants live in flymon/internal/core/algorithms
// and run on the simulated RMT data plane.
package sketch
