package packet

import (
	"testing"
	"testing/quick"
)

func TestPrefixMatches(t *testing.T) {
	pr := Prefix{Value: IPv4(10, 0, 0, 0), Bits: 8}
	if !pr.Matches(IPv4(10, 200, 3, 4)) {
		t.Error("10.200.3.4 should match 10/8")
	}
	if pr.Matches(IPv4(11, 0, 0, 1)) {
		t.Error("11.0.0.1 should not match 10/8")
	}
	if !(Prefix{}).Matches(12345) {
		t.Error("zero prefix must match everything")
	}
	host := Prefix{Value: IPv4(1, 2, 3, 4), Bits: 32}
	if !host.Matches(IPv4(1, 2, 3, 4)) || host.Matches(IPv4(1, 2, 3, 5)) {
		t.Error("/32 must match exactly one address")
	}
}

func TestPrefixContains(t *testing.T) {
	p8 := Prefix{Value: IPv4(10, 0, 0, 0), Bits: 8}
	p9a := Prefix{Value: IPv4(10, 0, 0, 0), Bits: 9}
	p9b := Prefix{Value: IPv4(10, 128, 0, 0), Bits: 9}
	other := Prefix{Value: IPv4(20, 0, 0, 0), Bits: 8}
	if !p8.Contains(p9a) || !p8.Contains(p9b) {
		t.Error("/8 must contain both /9 halves")
	}
	if p9a.Contains(p8) {
		t.Error("/9 cannot contain its /8 parent")
	}
	if p8.Contains(other) || !p8.Overlaps(p9a) || p8.Overlaps(other) {
		t.Error("containment/overlap with disjoint prefix wrong")
	}
}

func TestPrefixOverlapSymmetryProperty(t *testing.T) {
	f := func(a, b uint32, ab, bb uint8) bool {
		pa := Prefix{Value: a, Bits: int(ab % 33)}
		pb := Prefix{Value: b, Bits: int(bb % 33)}
		return pa.Overlaps(pb) == pb.Overlaps(pa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFilterMatches(t *testing.T) {
	f := Filter{
		SrcPrefix: Prefix{Value: IPv4(10, 0, 0, 0), Bits: 8},
		DstPort:   80,
	}
	in := Packet{SrcIP: IPv4(10, 1, 1, 1), DstPort: 80}
	if !f.Matches(&in) {
		t.Error("matching packet rejected")
	}
	badPort := in
	badPort.DstPort = 443
	if f.Matches(&badPort) {
		t.Error("wrong port accepted")
	}
	badSrc := in
	badSrc.SrcIP = IPv4(11, 1, 1, 1)
	if f.Matches(&badSrc) {
		t.Error("wrong source accepted")
	}
	if !MatchAll.Matches(&badSrc) {
		t.Error("MatchAll rejected a packet")
	}
}

func TestFilterIntersects(t *testing.T) {
	ten := Filter{SrcPrefix: Prefix{Value: IPv4(10, 0, 0, 0), Bits: 8}}
	tenNarrow := Filter{SrcPrefix: Prefix{Value: IPv4(10, 0, 0, 0), Bits: 16}}
	twenty := Filter{SrcPrefix: Prefix{Value: IPv4(20, 0, 0, 0), Bits: 8}}
	if !ten.Intersects(tenNarrow) {
		t.Error("10/8 and 10.0/16 intersect (the paper's co-location example)")
	}
	if ten.Intersects(twenty) {
		t.Error("10/8 and 20/8 are disjoint")
	}
	if !ten.Intersects(MatchAll) || !MatchAll.Intersects(ten) {
		t.Error("everything intersects the match-all filter")
	}
	p80 := Filter{DstPort: 80}
	p443 := Filter{DstPort: 443}
	if p80.Intersects(p443) {
		t.Error("distinct exact ports are disjoint")
	}
}

func TestFilterIntersectsIsSymmetricProperty(t *testing.T) {
	f := func(a, b uint32, ab, bb uint8, pa, pb uint16) bool {
		fa := Filter{SrcPrefix: Prefix{Value: a, Bits: int(ab % 33)}, DstPort: pa}
		fb := Filter{SrcPrefix: Prefix{Value: b, Bits: int(bb % 33)}, DstPort: pb}
		return fa.Intersects(fb) == fb.Intersects(fa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFilterMatchImpliesIntersect(t *testing.T) {
	// If two filters match a common packet they must be reported as
	// intersecting — the safety property the one-access-per-packet check
	// relies on.
	f := func(src, dst uint32, bitsA, bitsB uint8) bool {
		fa := Filter{SrcPrefix: Prefix{Value: src, Bits: int(bitsA % 33)}}
		fb := Filter{SrcPrefix: Prefix{Value: src, Bits: int(bitsB % 33)}}
		p := Packet{SrcIP: src, DstIP: dst}
		if fa.Matches(&p) && fb.Matches(&p) {
			return fa.Intersects(fb)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFilterSplitSrc(t *testing.T) {
	f := Filter{SrcPrefix: Prefix{Value: IPv4(10, 0, 0, 0), Bits: 8}}
	lo, hi, ok := f.SplitSrc()
	if !ok {
		t.Fatal("split of /8 must succeed")
	}
	if lo.SrcPrefix.Bits != 9 || hi.SrcPrefix.Bits != 9 {
		t.Fatalf("split bits = %d/%d, want 9/9", lo.SrcPrefix.Bits, hi.SrcPrefix.Bits)
	}
	if hi.SrcPrefix.Value != IPv4(10, 128, 0, 0) {
		t.Fatalf("upper half = %s, want 10.128.0.0/9", hi.SrcPrefix)
	}
	if lo.Intersects(hi) {
		t.Error("split halves must be disjoint")
	}
	// Every packet matching the parent matches exactly one half.
	for _, ip := range []uint32{IPv4(10, 0, 0, 1), IPv4(10, 127, 255, 255), IPv4(10, 128, 0, 0), IPv4(10, 255, 1, 2)} {
		p := Packet{SrcIP: ip}
		a, b := lo.Matches(&p), hi.Matches(&p)
		if a == b {
			t.Errorf("%s matched lo=%v hi=%v; want exactly one", FormatIPv4(ip), a, b)
		}
	}
	host := Filter{SrcPrefix: Prefix{Value: 1, Bits: 32}}
	if _, _, ok := host.SplitSrc(); ok {
		t.Error("host prefix cannot split")
	}
}

func TestFilterString(t *testing.T) {
	if MatchAll.String() != "*" {
		t.Errorf("MatchAll string = %q", MatchAll.String())
	}
	f := Filter{SrcPrefix: Prefix{Value: IPv4(10, 0, 0, 0), Bits: 8}, DstPort: 80}
	if f.String() != "src=10.0.0.0/8,dport=80" {
		t.Errorf("filter string = %q", f.String())
	}
}
