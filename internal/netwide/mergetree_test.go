package netwide

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"flymon/internal/telemetry"
	"flymon/internal/trace"
)

var allMergeOps = []MergeOp{MergeAdd, MergeMax, MergeOr, MergeXor}

// randomLeaves builds n switch readouts with a shared geometry. Values
// mix small counters with near-saturation ones so the add op's clamping
// is exercised by every tree shape.
func randomLeaves(rng *rand.Rand, n int, rows, buckets int) []Leaf {
	leaves := make([]Leaf, n)
	for i := range leaves {
		rs := make([][]uint32, rows)
		for r := range rs {
			row := make([]uint32, buckets)
			for j := range row {
				switch rng.Intn(10) {
				case 0:
					row[j] = ^uint32(0) - uint32(rng.Intn(3)) // saturation boundary
				case 1:
					row[j] = 0
				default:
					row[j] = rng.Uint32() >> 8
				}
			}
			rs[r] = row
		}
		leaves[i] = Leaf{Switch: i, Rows: rs}
	}
	return leaves
}

// cloneRows deep-copies a readout.
func cloneRows(rows [][]uint32) [][]uint32 {
	out := make([][]uint32, len(rows))
	for i, row := range rows {
		out[i] = append([]uint32(nil), row...)
	}
	return out
}

// flatReference folds leaves in switch order — the engine-independent
// ground truth the tree must match bit for bit.
func flatReference(t *testing.T, leaves []Leaf, op MergeOp) [][]uint32 {
	t.Helper()
	merged := cloneRows(leaves[0].Rows)
	for _, lf := range leaves[1:] {
		for r := range merged {
			if err := op.Combine(merged[r], lf.Rows[r]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return merged
}

func feedLeaves(leaves []Leaf, jitter time.Duration) <-chan Leaf {
	ch := make(chan Leaf, 1)
	go func() {
		defer close(ch)
		for _, lf := range leaves {
			if jitter > 0 {
				time.Sleep(time.Duration(rand.Int63n(int64(jitter))))
			}
			ch <- Leaf{Switch: lf.Switch, Rows: cloneRows(lf.Rows)}
		}
	}()
	return ch
}

func TestMergeStreamBitIdenticalToFlatFold(t *testing.T) {
	// Every op in the algebra is associative and commutative (saturating
	// add included), so any tree shape must reproduce the flat fold
	// exactly — across fleet sizes, arities, and worker counts.
	rng := rand.New(rand.NewSource(11))
	for _, op := range allMergeOps {
		for _, n := range []int{1, 2, 3, 7, 16, 33} {
			for _, arity := range []int{2, 4, 8} {
				t.Run(fmt.Sprintf("op=%s/n=%d/k=%d", op, n, arity), func(t *testing.T) {
					leaves := randomLeaves(rng, n, 3, 257)
					want := flatReference(t, leaves, op)
					res, err := MergeStream(feedLeaves(leaves, 0), op, TreeOptions{
						Task: "bitident", Arity: arity, Workers: 4,
					})
					if err != nil {
						t.Fatal(err)
					}
					if len(res.Contributed) != n {
						t.Fatalf("contributed %d/%d switches", len(res.Contributed), n)
					}
					for r := range want {
						for j := range want[r] {
							if res.Rows[r][j] != want[r][j] {
								t.Fatalf("row %d bucket %d: tree %d != flat %d",
									r, j, res.Rows[r][j], want[r][j])
							}
						}
					}
					if n == 1 && (res.Depth != 0 || res.Merges != 0) {
						t.Fatalf("single leaf: depth %d merges %d", res.Depth, res.Merges)
					}
					if n > 1 && res.Merges == 0 {
						t.Fatal("multi-leaf reduction executed no merges")
					}
				})
			}
		}
	}
}

func TestMergeStreamEmptyInput(t *testing.T) {
	ch := make(chan Leaf)
	close(ch)
	res, err := MergeStream(ch, MergeAdd, TreeOptions{})
	if err != nil || res.Rows != nil || len(res.Contributed) != 0 {
		t.Fatalf("empty reduction = %+v err %v", res, err)
	}
}

func TestMergeStreamGeometryError(t *testing.T) {
	mk := func(sw int, lens ...int) Leaf {
		rows := make([][]uint32, len(lens))
		for i, l := range lens {
			rows[i] = make([]uint32, l)
		}
		return Leaf{Switch: sw, Rows: rows}
	}
	cases := []struct {
		name           string
		leaves         []Leaf
		wantRow        int
		wantA, wB      int
		wantDimensions [2]int
	}{
		{"row-count", []Leaf{mk(3, 8, 8), mk(5, 8, 8, 8)}, -1, 3, 5, [2]int{2, 3}},
		{"row-length", []Leaf{mk(0, 8, 8), mk(2, 8, 9)}, 1, 0, 2, [2]int{8, 9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := MergeStream(feedLeaves(tc.leaves, 0), MergeAdd, TreeOptions{Task: "geo"})
			var ge *GeometryError
			if !errors.As(err, &ge) {
				t.Fatalf("error = %v (%T), want GeometryError", err, err)
			}
			if ge.Task != "geo" || ge.SwitchA != tc.wantA || ge.SwitchB != tc.wB ||
				ge.Row != tc.wantRow || ge.DimA != tc.wantDimensions[0] || ge.DimB != tc.wantDimensions[1] {
				t.Fatalf("GeometryError = %+v", ge)
			}
			if ge.Error() == "" {
				t.Fatal("empty rendering")
			}
		})
	}
}

// TestMergeStreamStress is the race-detector workout `make vet-merge`
// runs: many concurrent reductions with jittered leaf arrival, recycling
// into a shared pool, verifying every result bit-identically.
func TestMergeStreamStress(t *testing.T) {
	check := gateFleetGoroutines(t)
	t.Cleanup(check)
	rng := rand.New(rand.NewSource(7))
	leaves := randomLeaves(rng, 24, 3, 129)
	st := &telemetry.MergeTreeStats{}
	recycled := make(chan [][]uint32, 1024)
	recycle := func(rows [][]uint32) {
		select {
		case recycled <- rows:
		default:
		}
	}
	for _, op := range allMergeOps {
		want := flatReference(t, leaves, op)
		doneCh := make(chan error, 8)
		for g := 0; g < 8; g++ {
			go func(g int) {
				res, err := MergeStream(feedLeaves(leaves, 200*time.Microsecond), op, TreeOptions{
					Task: "stress", Arity: 2 + g%3, Workers: 4, Stats: st, Recycle: recycle,
				})
				if err != nil {
					doneCh <- err
					return
				}
				for r := range want {
					for j := range want[r] {
						if res.Rows[r][j] != want[r][j] {
							doneCh <- fmt.Errorf("goroutine %d row %d bucket %d: %d != %d",
								g, r, j, res.Rows[r][j], want[r][j])
							return
						}
					}
				}
				doneCh <- nil
			}(g)
		}
		for g := 0; g < 8; g++ {
			if err := <-doneCh; err != nil {
				t.Fatal(err)
			}
		}
	}
	if st.Queries.Load() != 32 || st.Merges.Load() == 0 {
		t.Fatalf("stats: queries %d merges %d", st.Queries.Load(), st.Merges.Load())
	}
	if len(recycled) == 0 {
		t.Fatal("no buffers recycled")
	}
}

func TestRemoteFleetEnginesBitIdentical(t *testing.T) {
	// The deployed path: flat and tree engines over the same daemons must
	// agree bit for bit, and the tree must record its shape telemetry.
	check := gateFleetGoroutines(t)
	t.Cleanup(check)
	cfg := fleetConfig()
	ctrls, clients := startDaemons(t, 4, cfg)
	reg := telemetry.NewRegistry()
	fleet := NewRemoteFleetOptions(clients, cfg, FleetOptions{Telemetry: &reg.Fleet, MergeArity: 2})
	if err := fleet.Deploy(cmsSpec("freq")); err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(trace.Config{Flows: 500, Packets: 20_000, ZipfS: 1.1, Seed: 31})
	for i := range tr.Packets {
		ctrls[i%len(ctrls)].Process(&tr.Packets[i])
	}
	for _, op := range allMergeOps {
		flat, freport, err := fleet.MergedRows("freq", op, EngineFlat)
		if err != nil {
			t.Fatal(err)
		}
		tree, treport, err := fleet.MergedRows("freq", op, EngineTree)
		if err != nil {
			t.Fatal(err)
		}
		if len(freport.Contributed) != 4 || len(treport.Contributed) != 4 {
			t.Fatalf("contributed: flat %v tree %v", freport.Contributed, treport.Contributed)
		}
		for r := range flat {
			for j := range flat[r] {
				if flat[r][j] != tree[r][j] {
					t.Fatalf("op %s row %d bucket %d: flat %d != tree %d",
						op, r, j, flat[r][j], tree[r][j])
				}
			}
		}
	}
	mt := reg.Fleet.MergeTree.Snapshot()
	if mt.Queries == 0 || mt.FlatFolds == 0 || mt.Merges == 0 {
		t.Fatalf("merge telemetry = %+v", mt)
	}
	if mt.LastDepth == 0 || mt.LastFanout != 4 {
		t.Fatalf("tree shape gauges = depth %d fanout %d", mt.LastDepth, mt.LastFanout)
	}
}
