package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"flymon/internal/packet"
)

// Binary trace format: a fixed 8-byte header ("FLYMTRC" + version) followed
// by fixed-width little-endian records. The format exists so generated
// workloads can be saved once and replayed identically by the daemon, the
// bench harness, and the examples.

var magic = [8]byte{'F', 'L', 'Y', 'M', 'T', 'R', 'C', 1}

const recordSize = 4 + 4 + 2 + 2 + 1 + 3 /*pad*/ + 4 + 8 + 4 + 4

// ErrBadMagic is returned when a trace stream does not start with the
// expected header.
var ErrBadMagic = errors.New("trace: bad magic (not a FlyMon trace)")

// Writer streams packets into the binary trace format.
type Writer struct {
	w   *bufio.Writer
	buf [recordSize]byte
	n   int
}

// NewWriter writes the header and returns a Writer. Call Flush when done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// WritePacket appends one packet record.
func (w *Writer) WritePacket(p *packet.Packet) error {
	b := w.buf[:]
	binary.LittleEndian.PutUint32(b[0:], p.SrcIP)
	binary.LittleEndian.PutUint32(b[4:], p.DstIP)
	binary.LittleEndian.PutUint16(b[8:], p.SrcPort)
	binary.LittleEndian.PutUint16(b[10:], p.DstPort)
	b[12] = p.Proto
	b[13], b[14], b[15] = 0, 0, 0
	binary.LittleEndian.PutUint32(b[16:], p.Size)
	binary.LittleEndian.PutUint64(b[20:], p.TimestampNs)
	binary.LittleEndian.PutUint32(b[28:], p.QueueLength)
	binary.LittleEndian.PutUint32(b[32:], p.QueueDelayNs)
	if _, err := w.w.Write(b); err != nil {
		return fmt.Errorf("trace: writing record %d: %w", w.n, err)
	}
	w.n++
	return nil
}

// WriteTrace appends every packet of t.
func (w *Writer) WriteTrace(t *Trace) error {
	for i := range t.Packets {
		if err := w.WritePacket(&t.Packets[i]); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader streams packets from the binary trace format.
type Reader struct {
	r   *bufio.Reader
	buf [recordSize]byte
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr != magic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// ReadPacket reads the next record into p. It returns io.EOF at a clean end
// of stream.
func (r *Reader) ReadPacket(p *packet.Packet) error {
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("trace: reading record: %w", err)
	}
	b := r.buf[:]
	p.SrcIP = binary.LittleEndian.Uint32(b[0:])
	p.DstIP = binary.LittleEndian.Uint32(b[4:])
	p.SrcPort = binary.LittleEndian.Uint16(b[8:])
	p.DstPort = binary.LittleEndian.Uint16(b[10:])
	p.Proto = b[12]
	p.Size = binary.LittleEndian.Uint32(b[16:])
	p.TimestampNs = binary.LittleEndian.Uint64(b[20:])
	p.QueueLength = binary.LittleEndian.Uint32(b[28:])
	p.QueueDelayNs = binary.LittleEndian.Uint32(b[32:])
	return nil
}

// ReadAll reads the remainder of the stream into an in-memory Trace.
func (r *Reader) ReadAll() (*Trace, error) {
	t := &Trace{}
	for {
		var p packet.Packet
		err := r.ReadPacket(&p)
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Packets = append(t.Packets, p)
	}
}
