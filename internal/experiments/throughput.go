package experiments

import (
	"runtime"
	"time"

	"flymon/internal/controlplane"
	"flymon/internal/packet"
	"flymon/internal/trace"
)

// Throughput measures the data-plane packet rate of a fully loaded 9-group
// pipeline (27 CMUs, one CMS task per CMU triple) under the batch API with
// a sweep of worker counts — the multi-pipe scaling the lock-free fast
// path (RCU snapshots + atomic registers + per-worker contexts) buys. It
// is not a figure of the paper; it quantifies this reproduction's "runs as
// fast as the hardware allows" claim.
//
// workers caps the sweep (0 sweeps 1..GOMAXPROCS doubling). With sharded
// set, the controller runs in sharded-state mode: each worker writes a
// private register lane with plain stores and queries reduce the lanes,
// replacing the contended CAS on hot buckets.
func Throughput(scale Scale, seed int64, workers int, sharded bool) *Table {
	_, packets := scale.workload()
	maxW := workers
	if maxW <= 0 {
		maxW = runtime.GOMAXPROCS(0)
	}
	cfg := controlplane.Config{Groups: 9, Buckets: 65536, BitWidth: 32}
	if sharded {
		cfg.ShardedState, cfg.Workers = true, maxW
	}
	ctrl := controlplane.NewController(cfg)
	for g := 0; g < 9; g++ {
		if _, err := ctrl.AddTask(controlplane.TaskSpec{
			Name: "load", Key: packet.KeyFiveTuple,
			Attribute: controlplane.AttrFrequency, MemBuckets: 16384, D: 3,
		}); err != nil {
			panic(err)
		}
	}
	tr := trace.Generate(trace.Config{Flows: 6000, Packets: packets, Seed: seed})

	title := "Throughput — lock-free batch processing vs worker count (9 groups, 27 CMUs loaded)"
	if sharded {
		title = "Throughput — sharded register lanes vs worker count (9 groups, 27 CMUs loaded)"
	}
	t := &Table{
		Title:  title,
		Header: []string{"Workers", "Mpps", "Speedup"},
	}
	var base float64
	for w := 1; w <= maxW; w *= 2 {
		// Warm once, then time the replay.
		ctrl.ProcessParallel(tr.Packets, w)
		start := time.Now()
		ctrl.ProcessParallel(tr.Packets, w)
		elapsed := time.Since(start)
		mpps := float64(len(tr.Packets)) / elapsed.Seconds() / 1e6
		if w == 1 {
			base = mpps
		}
		t.Rows = append(t.Rows, []string{itoa(w), f2(mpps), f2(mpps / base) + "x"})
	}
	ctrl.DrainShards()
	t.Notes = append(t.Notes,
		"reconfiguration never stalls this path: the control plane publishes immutable config snapshots (RCU)")
	if sharded {
		t.Notes = append(t.Notes,
			"mergeable ops (saturating add, max, or, xor) write per-worker lanes with plain stores; queries fold lanes exactly",
			"non-mergeable rules fall back to the atomic-CAS path automatically")
	} else {
		t.Notes = append(t.Notes,
			"per-bucket register updates are atomic CAS; counts stay exact under any interleaving")
	}
	return t
}
