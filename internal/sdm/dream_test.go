package sdm

import (
	"testing"

	"flymon/internal/controlplane"
	"flymon/internal/packet"
	"flymon/internal/trace"
)

func newCtrl(groups int) *controlplane.Controller {
	return controlplane.NewController(controlplane.Config{Groups: groups, Buckets: 65536, BitWidth: 32})
}

func addFreqTask(t *testing.T, c *controlplane.Controller, name string, buckets int, dport uint16) *controlplane.Task {
	t.Helper()
	task, err := c.AddTask(controlplane.TaskSpec{
		Name: name, Key: packet.KeyFiveTuple,
		Attribute: controlplane.AttrFrequency, MemBuckets: buckets,
		D: 1, Filter: packet.Filter{DstPort: dport},
	})
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestOccupancyProxy(t *testing.T) {
	c := newCtrl(1)
	task := addFreqTask(t, c, "t", 2048, 0)
	a := NewAllocator(c, DefaultPolicy())
	if err := a.Manage(task.ID); err != nil {
		t.Fatal(err)
	}
	occ, err := a.Occupancy(task.ID)
	if err != nil || occ != 0 {
		t.Fatalf("fresh task occupancy = %v, %v", occ, err)
	}
	tr := trace.Generate(trace.Config{Flows: 5000, Packets: 20_000, Seed: 1})
	for i := range tr.Packets {
		c.Process(&tr.Packets[i])
	}
	occ, err = a.Occupancy(task.ID)
	if err != nil {
		t.Fatal(err)
	}
	if occ < 0.5 {
		t.Fatalf("5000 flows in 2048 buckets should exceed 50%% occupancy, got %.2f", occ)
	}
}

func TestAllocatorGrowsStarvedTask(t *testing.T) {
	c := newCtrl(1)
	task := addFreqTask(t, c, "starved", 2048, 0)
	a := NewAllocator(c, DefaultPolicy())
	_ = a.Manage(task.ID)

	tr := trace.Generate(trace.Config{Flows: 10_000, Packets: 40_000, Seed: 2})
	for i := range tr.Packets {
		c.Process(&tr.Packets[i])
	}
	decisions := a.EpochEnd()
	if len(decisions) != 1 {
		t.Fatalf("decisions = %d", len(decisions))
	}
	d := decisions[0]
	if d.Err != nil {
		t.Fatal(d.Err)
	}
	if d.NewBuckets != 2*d.OldBuckets {
		t.Fatalf("starved task not doubled: %d → %d", d.OldBuckets, d.NewBuckets)
	}
	nt, _ := c.Task(task.ID)
	if nt.Buckets != 4096 {
		t.Fatalf("controller shows %d buckets", nt.Buckets)
	}
}

func TestAllocatorShrinksIdleTask(t *testing.T) {
	c := newCtrl(1)
	task := addFreqTask(t, c, "idle", 32768, 0)
	a := NewAllocator(c, DefaultPolicy())
	_ = a.Manage(task.ID)
	// A handful of flows: occupancy far below the low-water mark.
	tr := trace.Generate(trace.Config{Flows: 20, Packets: 200, Seed: 3})
	for i := range tr.Packets {
		c.Process(&tr.Packets[i])
	}
	d := a.EpochEnd()[0]
	if d.NewBuckets >= d.OldBuckets {
		t.Fatalf("idle task not shrunk: %d → %d", d.OldBuckets, d.NewBuckets)
	}
}

func TestAllocatorStableInBand(t *testing.T) {
	c := newCtrl(1)
	task := addFreqTask(t, c, "steady", 8192, 0)
	a := NewAllocator(c, DefaultPolicy())
	_ = a.Manage(task.ID)
	// ~2000 flows in 8192 buckets ≈ 22% occupancy: inside the band.
	tr := trace.Generate(trace.Config{Flows: 2000, Packets: 10_000, Seed: 4})
	for i := range tr.Packets {
		c.Process(&tr.Packets[i])
	}
	d := a.EpochEnd()[0]
	if d.NewBuckets != d.OldBuckets {
		t.Fatalf("in-band task resized: %d → %d", d.OldBuckets, d.NewBuckets)
	}
}

func TestAllocatorStealsFromRich(t *testing.T) {
	// Fill the whole group so a starved task's growth can ONLY succeed by
	// shrinking a donor: unmanaged fillers pin every other bucket.
	// CMU layout (64K each): donor 32K + filler 32K | filler 64K |
	// poor 8K + fillers 32K/16K/8K.
	c := newCtrl(1)
	donor := addFreqTask(t, c, "donor", 32768, 443)
	addFreqTask(t, c, "fillA", 32768, 1001)
	addFreqTask(t, c, "fillB", 65536, 1002)
	poor := addFreqTask(t, c, "poor", 8192, 80)
	addFreqTask(t, c, "fillC", 32768, 1003)
	addFreqTask(t, c, "fillD", 16384, 1004)
	addFreqTask(t, c, "fillE", 8192, 1005)
	free := c.FreeBuckets()
	for _, cmu := range free[0] {
		if cmu != 0 {
			t.Fatalf("setup must exhaust the group, free = %v", free[0])
		}
	}

	a := NewAllocator(c, DefaultPolicy())
	_ = a.Manage(donor.ID)
	_ = a.Manage(poor.ID)

	// Poor is starved; the donor carries light, in-band traffic so it does
	// not shrink on its own.
	poorTr := trace.Generate(trace.Config{Flows: 30_000, Packets: 90_000, Seed: 5})
	for i := range poorTr.Packets {
		poorTr.Packets[i].DstPort = 80
		c.Process(&poorTr.Packets[i])
	}
	donorTr := trace.Generate(trace.Config{Flows: 9_000, Packets: 27_000, Seed: 6})
	for i := range donorTr.Packets {
		donorTr.Packets[i].DstPort = 443
		c.Process(&donorTr.Packets[i])
	}
	occD, _ := a.Occupancy(donor.ID)
	if occD <= 0.05 || occD >= 0.5 {
		t.Fatalf("donor occupancy %.3f outside the band; test setup broken", occD)
	}

	decisions := a.EpochEnd()
	var poorNew, donorNew int
	for _, d := range decisions {
		if d.TaskID == poor.ID {
			if d.Err != nil {
				t.Fatalf("poor task decision error: %v", d.Err)
			}
			poorNew = d.NewBuckets
		}
		if d.TaskID == donor.ID && (donorNew == 0 || d.NewBuckets < donorNew) {
			donorNew = d.NewBuckets
		}
	}
	if poorNew <= 8192 {
		t.Fatalf("starved task not grown: %d", poorNew)
	}
	if donorNew >= 32768 {
		t.Fatalf("donor not shrunk: %d", donorNew)
	}
}

func TestAllocatorManageValidation(t *testing.T) {
	c := newCtrl(1)
	a := NewAllocator(c, DefaultPolicy())
	if err := a.Manage(42); err == nil {
		t.Fatal("managing an unknown task must fail")
	}
	task := addFreqTask(t, c, "x", 2048, 0)
	_ = a.Manage(task.ID)
	a.Unmanage(task.ID)
	if len(a.EpochEnd()) != 0 {
		t.Fatal("unmanaged tasks must not be touched")
	}
}

func TestAllocatorInvertedBandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("inverted band must panic")
		}
	}()
	NewAllocator(newCtrl(1), Policy{HighWater: 0.1, LowWater: 0.5})
}
