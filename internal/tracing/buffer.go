package tracing

import "sync/atomic"

// buffer is the bounded lock-free span ring. Writers claim a slot with a
// single atomic ticket increment and publish the span through an
// atomic.Pointer store, so recording a span never takes a lock and never
// blocks a reader; when the ring laps, the oldest spans are overwritten
// and counted as drops (surfaced as flymon_trace_dropped_total) instead
// of silently vanishing.
type buffer struct {
	slots  []atomic.Pointer[Span]
	mask   uint64
	ticket atomic.Uint64
}

func newBuffer(capacity int) *buffer {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &buffer{slots: make([]atomic.Pointer[Span], n), mask: uint64(n - 1)}
}

func (b *buffer) put(sp Span) {
	t := b.ticket.Add(1) - 1
	p := sp // private copy: the slot pointer must never alias caller memory
	b.slots[t&b.mask].Store(&p)
}

func (b *buffer) dropped() uint64 {
	total := b.ticket.Load()
	if c := uint64(len(b.slots)); total > c {
		return total - c
	}
	return 0
}

// snapshot copies the retained spans oldest-first. Concurrent writers may
// overwrite slots mid-snapshot; each slot load is atomic, so the copy is
// always a set of valid spans, merely racing on which generation a lapped
// slot shows.
func (b *buffer) snapshot() (spans []Span, total, droppedN uint64) {
	total = b.ticket.Load()
	droppedN = 0
	start := uint64(0)
	if c := uint64(len(b.slots)); total > c {
		start = total - c
		droppedN = start
	}
	spans = make([]Span, 0, total-start)
	for t := start; t < total; t++ {
		if p := b.slots[t&b.mask].Load(); p != nil {
			spans = append(spans, *p)
		}
	}
	return spans, total, droppedN
}
