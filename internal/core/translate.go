package core

import (
	"fmt"
	"math/bits"
)

// MemRange is one task's register partition: Buckets is a power of two and
// Base is aligned to it, so the partition is exactly the address sub-range
// [Base, Base+Buckets) the paper's address translation produces (§3.3).
type MemRange struct {
	Base    int
	Buckets int
}

// Overlaps reports whether two partitions share any bucket.
func (m MemRange) Overlaps(o MemRange) bool {
	return m.Base < o.Base+o.Buckets && o.Base < m.Base+m.Buckets
}

// String implements fmt.Stringer.
func (m MemRange) String() string {
	return fmt.Sprintf("[%d,%d)", m.Base, m.Base+m.Buckets)
}

// TranslationMethod selects how the preparation stage narrows a full-range
// address into a task's partition.
type TranslationMethod uint8

const (
	// ShiftBased right-shifts the address to the partition's size and adds
	// the base — costs an extra stage or pre-computed PHV fields but no
	// TCAM (§3.3, Fig. 9 top).
	ShiftBased TranslationMethod = iota
	// TCAMBased uses TCAM range matches to remap the address into the
	// partition within one stage — costs TCAM entries (§3.3, Fig. 9
	// bottom).
	TCAMBased
)

// String implements fmt.Stringer.
func (t TranslationMethod) String() string {
	if t == ShiftBased {
		return "shift"
	}
	return "tcam"
}

// Translate maps a 32-bit selected key (an address uniform over the
// register's full range) into the task's partition.
//
// Shift-based translation uses the address's high bits (right shift, then
// base add); TCAM-based translation uses its low bits (range remap by
// adding/subtracting partition-aligned offsets, which preserves the low
// bits). Both produce indices uniform over [Base, Base+Buckets).
func Translate(addr uint32, mem MemRange, method TranslationMethod) uint32 {
	n := uint32(mem.Buckets)
	if n == 0 {
		return uint32(mem.Base)
	}
	switch method {
	case ShiftBased:
		// Offset = addr >> (32 − log2(n)): the top log2(n) bits.
		shift := 32 - bits.TrailingZeros32(n)
		var off uint32
		if shift < 32 {
			off = addr >> uint(shift)
		}
		return uint32(mem.Base) + off
	default: // TCAMBased
		return uint32(mem.Base) + addr&(n-1)
	}
}

// ShiftTranslationStages returns the MAU stages shift-based translation
// costs: 2 normally (shift, then base add), or 1 when offsets are
// pre-computed into PHV (§3.3).
func ShiftTranslationStages(precomputed bool) int {
	if precomputed {
		return 1
	}
	return 2
}

// TCAMTranslationEntries returns the TCAM entries one task's translation
// needs: remapping the full range into one of `partitions` equal
// sub-ranges takes (partitions − 1) range entries plus a shared default
// (§3.3: three entries and a default for four partitions).
func TCAMTranslationEntries(partitions int) int {
	if partitions <= 1 {
		return 0
	}
	return partitions - 1
}

// PartitionsOf returns the number of equal partitions a register of
// `registerBuckets` splits into at this partition size.
func PartitionsOf(registerBuckets, partitionBuckets int) int {
	if partitionBuckets <= 0 {
		return 0
	}
	return registerBuckets / partitionBuckets
}
