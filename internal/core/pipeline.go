package core

import (
	"fmt"

	"flymon/internal/packet"
)

// Pipeline is an ordered set of CMU Groups sharing one RMT pipeline.
// Packets traverse groups in order; the per-packet Context threads the CMU
// result bus between them, which is what lets SuMax(Sum), Counter Braids,
// and the max-interval task span CMUs in different groups (§4).
//
// Spliced groups model the Appendix-E optimization: the triangle areas at
// the pipeline's ends form up to three additional CMU Groups reachable
// only by mirroring and recirculating a packet — measurement capacity
// bought with bandwidth. A packet is recirculated only when some spliced
// group has a task matching it.
type Pipeline struct {
	groups  []*Group
	spliced []*Group

	packets      uint64
	recirculated uint64
	ctx          Context
}

// NewPipeline builds a pipeline of n default-geometry CMU Groups.
func NewPipeline(n int) *Pipeline {
	p := &Pipeline{ctx: Context{rng: 0x9E3779B97F4A7C15}}
	for i := 0; i < n; i++ {
		p.groups = append(p.groups, NewGroup(GroupConfig{ID: i}))
	}
	return p
}

// NewPipelineWith builds a pipeline from explicit groups.
func NewPipelineWith(groups ...*Group) *Pipeline {
	return &Pipeline{groups: groups, ctx: Context{rng: 0x9E3779B97F4A7C15}}
}

// Groups returns the number of groups.
func (pl *Pipeline) Groups() int { return len(pl.groups) }

// Group returns group i.
func (pl *Pipeline) Group(i int) *Group { return pl.groups[i] }

// AddSpliced registers a spliced (mirror+recirculate) group. The number of
// spliced groups is bounded by the pipeline's triangle areas
// (PlanWithRecirculation's Mirrored count).
func (pl *Pipeline) AddSpliced(g *Group) error {
	if len(pl.spliced) >= StagesPerGroup-1 {
		return fmt.Errorf("core: pipeline already has %d spliced groups (Appendix E bound)", len(pl.spliced))
	}
	pl.spliced = append(pl.spliced, g)
	return nil
}

// SplicedGroups returns the number of spliced groups.
func (pl *Pipeline) SplicedGroups() int { return len(pl.spliced) }

// Process pushes one packet through every group in pipeline order, and —
// when a spliced group has a task for it — mirrors and recirculates it
// through the spliced groups.
func (pl *Pipeline) Process(p *packet.Packet) {
	pl.packets++
	pl.resetCtx(p)
	for _, g := range pl.groups {
		g.Process(&pl.ctx)
	}
	if len(pl.spliced) == 0 || !pl.splicedWants(p) {
		return
	}
	// The mirrored copy re-enters the pipeline: a fresh PHV.
	pl.recirculated++
	pl.resetCtx(p)
	for _, g := range pl.spliced {
		g.Process(&pl.ctx)
	}
}

func (pl *Pipeline) resetCtx(p *packet.Packet) {
	pl.ctx.Pkt = p
	pl.ctx.PrevResult = 0
	pl.ctx.PrevOld = 0
	pl.ctx.PrevNewFlow = false
	pl.ctx.RunningMin = ^uint32(0)
}

// splicedWants reports whether any spliced-group task matches p — the
// mirror decision the first pass takes.
func (pl *Pipeline) splicedWants(p *packet.Packet) bool {
	for _, g := range pl.spliced {
		for i := 0; i < g.CMUs(); i++ {
			for _, r := range g.CMU(i).Rules() {
				if r.Filter.Matches(p) {
					return true
				}
			}
		}
	}
	return false
}

// Packets returns the number of packets processed.
func (pl *Pipeline) Packets() uint64 { return pl.packets }

// Recirculated returns the number of packets mirrored through the spliced
// groups; Recirculated/Packets is the Appendix-E bandwidth overhead.
func (pl *Pipeline) Recirculated() uint64 { return pl.recirculated }

// FindTask locates a task's rule: it returns the group, CMU index and rule
// for every CMU carrying taskID.
type TaskLocation struct {
	Group *Group
	CMU   int
	Rule  *Rule
}

// Locate returns every CMU location where taskID is installed, in pipeline
// order (spliced groups last).
func (pl *Pipeline) Locate(taskID int) []TaskLocation {
	var out []TaskLocation
	for _, g := range pl.allGroups() {
		for i := 0; i < g.CMUs(); i++ {
			if r := g.CMU(i).RuleFor(taskID); r != nil {
				out = append(out, TaskLocation{Group: g, CMU: i, Rule: r})
			}
		}
	}
	return out
}

func (pl *Pipeline) allGroups() []*Group {
	if len(pl.spliced) == 0 {
		return pl.groups
	}
	all := make([]*Group, 0, len(pl.groups)+len(pl.spliced))
	all = append(all, pl.groups...)
	return append(all, pl.spliced...)
}

// ReadTask reads the register partitions of every CMU carrying taskID, in
// pipeline order (the control plane's register readout).
func (pl *Pipeline) ReadTask(taskID int) ([][]uint32, error) {
	locs := pl.Locate(taskID)
	if len(locs) == 0 {
		return nil, fmt.Errorf("core: task %d not installed", taskID)
	}
	out := make([][]uint32, 0, len(locs))
	for _, l := range locs {
		data, err := l.Group.CMU(l.CMU).ReadTask(taskID)
		if err != nil {
			return nil, err
		}
		out = append(out, data)
	}
	return out, nil
}

// RemoveTask uninstalls taskID from every CMU (spliced groups included).
// It reports how many rules were removed.
func (pl *Pipeline) RemoveTask(taskID int) int {
	n := 0
	for _, g := range pl.allGroups() {
		for i := 0; i < g.CMUs(); i++ {
			if g.CMU(i).RemoveRule(taskID) {
				n++
			}
		}
	}
	return n
}
