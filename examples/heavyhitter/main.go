// Heavy-hitter detection: the paper's §1 troubleshooting story. An
// operator suspecting congestion deploys a heavy-hitter task on the fly,
// replays traffic, and reads back the elephant flows — then swaps the
// implementation from FlyMon-CMS to the more memory-efficient
// FlyMon-SuMax(Sum) without reloading anything.
package main

import (
	"fmt"
	"log"
	"sort"

	"flymon/internal/controlplane"
	"flymon/internal/metrics"
	"flymon/internal/packet"
	"flymon/internal/sketch"
	"flymon/internal/trace"
)

func main() {
	const threshold = 256

	ctrl := controlplane.NewController(controlplane.Config{
		Groups: 3, Buckets: 65536, BitWidth: 32,
	})

	// Workload with a heavy tail.
	tr := trace.Generate(trace.Config{Flows: 8000, Packets: 400_000, ZipfS: 1.3, Seed: 3})
	exact := sketch.NewExactFrequency(packet.KeyFiveTuple)
	for i := range tr.Packets {
		exact.AddPacket(&tr.Packets[i])
	}
	truth := exact.HeavyHitters(threshold)
	fmt.Printf("ground truth: %d heavy hitters (≥%d packets) among %d flows\n",
		len(truth), threshold, exact.Flows())

	run := func(alg controlplane.Algorithm) {
		task, err := ctrl.AddTask(controlplane.TaskSpec{
			Name: "heavy-hitters", Key: packet.KeyFiveTuple,
			Attribute: controlplane.AttrFrequency, Threshold: threshold,
			MemBuckets: 8192, D: 3, Algorithm: alg,
		})
		if err != nil {
			log.Fatal(err)
		}
		for i := range tr.Packets {
			ctrl.Process(&tr.Packets[i])
		}
		candidates := make([]packet.CanonicalKey, 0, exact.Flows())
		universe := make(map[packet.CanonicalKey]bool)
		for k := range exact.Counts() {
			candidates = append(candidates, k)
			universe[k] = true
		}
		reported, err := ctrl.Reported(task.ID, candidates)
		if err != nil {
			log.Fatal(err)
		}
		cls := metrics.Classify(universe, truth, reported)
		fmt.Printf("%-22s reported %d, F1 %.3f (precision %.3f, recall %.3f)\n",
			task.Algorithm, len(reported), cls.F1(), cls.Precision(), cls.Recall())

		// Show the top 5 reported flows by estimate.
		type hh struct {
			k packet.CanonicalKey
			v float64
		}
		var tops []hh
		for k := range reported {
			v, _ := ctrl.EstimateKey(task.ID, k)
			tops = append(tops, hh{k, v})
		}
		sort.Slice(tops, func(i, j int) bool { return tops[i].v > tops[j].v })
		for i := 0; i < len(tops) && i < 5; i++ {
			fmt.Printf("   top-%d flow estimate %.0f (truth %d)\n",
				i+1, tops[i].v, exact.Counts()[tops[i].k])
		}
		if err := ctrl.RemoveTask(task.ID); err != nil {
			log.Fatal(err)
		}
	}

	// On-the-fly algorithm swap: same task abstraction, two implementations.
	run(controlplane.AlgCMS)
	run(controlplane.AlgSuMaxSum)
}
