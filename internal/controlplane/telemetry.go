package controlplane

import (
	"fmt"
	"time"

	"flymon/internal/packet"
	"flymon/internal/telemetry"
)

// This file is the control plane's half of the telemetry plane: journaling
// every reconfiguration with its latency and snapshot-version transition,
// settling retired snapshots' derived counters, and answering the
// registry's scrape-time data-plane fold (the controller is the registry's
// DataPlaneSource).

// teleRetiredKeep bounds the retired-snapshot ring. A retired snapshot
// only accumulates straggler flushes from pooled contexts that last ran
// against it — at most teleFlushEvery-1 packets per idle context — so a
// short ring folds them all: by the time four newer snapshots have been
// published, every live context has re-armed.
const teleRetiredKeep = 4

// settleRetiredLocked folds every retired snapshot's unsettled counts into
// the durable registry counters and trims the ring. Callers hold c.mu.
func (c *Controller) settleRetiredLocked() {
	for _, s := range c.retired {
		s.TelemetrySettle()
	}
	if n := len(c.retired); n > teleRetiredKeep {
		c.retired = append(c.retired[:0], c.retired[n-teleRetiredKeep:]...)
	}
}

// teleMutation starts timing one reconfiguration and returns the recorder
// to invoke when it completes (with the task ID, a human-readable detail,
// and the outcome). The recorder observes the mutation-latency histogram
// and appends a journal event carrying the snapshot-version transition.
// Both ends run under c.mu, so the version reads are consistent. With
// telemetry off the recorder is a no-op.
func (c *Controller) teleMutation(kind string) func(task int, detail string, err error) {
	if c.tele == nil {
		return func(int, string, error) {}
	}
	start := time.Now()
	before := c.version
	return func(task int, detail string, err error) {
		lat := time.Since(start)
		c.tele.MutationLatency.Observe(lat)
		e := telemetry.Event{
			Kind:          kind,
			Task:          task,
			Detail:        detail,
			LatencyNs:     lat.Nanoseconds(),
			VersionBefore: before,
			VersionAfter:  c.version,
			OK:            err == nil,
		}
		if err != nil {
			e.Err = err.Error()
		}
		c.tele.Journal.Record(e)
	}
}

// RekeyUnit reconfigures one of a group's compression units to extract a
// different flow key — the paper's on-the-fly attribute reconfiguration:
// the unit's hash lanes are rewired by a control-plane write, no pipeline
// reload. Every rule selecting that unit starts keying on the new
// attribute at the next published snapshot. The caller is responsible for
// the semantic cut-over (tasks keyed on the old attribute should be reset
// or removed first); stale register contents are not cleared.
func (c *Controller) RekeyUnit(group, unit int, spec packet.KeySpec) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	done := c.teleMutation("rekey")
	err := c.rekeyUnitLocked(group, unit, spec)
	done(0, fmt.Sprintf("group=%d unit=%d key=%s", group, unit, spec), err)
	return err
}

func (c *Controller) rekeyUnitLocked(group, unit int, spec packet.KeySpec) error {
	if group < 0 || group >= len(c.groups) {
		return fmt.Errorf("controlplane: no group %d", group)
	}
	if err := c.groups[group].ConfigureUnit(unit, spec); err != nil {
		return err
	}
	c.publishLocked()
	return nil
}

// TelemetryDataPlane implements telemetry.DataPlaneSource: it quiesces the
// writers enough for an honest read (drain sharded lanes, settle retired
// snapshots), folds the live snapshot's derived counts over the durable
// per-rule counters, and walks every register for occupancy and saturation
// gauges. Called by Registry.Report on every scrape.
func (c *Controller) TelemetryDataPlane() telemetry.DataPlane {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tele == nil {
		return telemetry.DataPlane{}
	}
	// Occupancy scans base buckets only; fold lanes first so sharded-mode
	// occupancy is not undercounted.
	c.drainShards()
	c.settleRetiredLocked()
	snap := c.snap.Load()
	dp := c.tele.FoldDataPlane(snap.TelemetryLive())
	dp.Packets = c.pipeline.Packets()
	dp.Recirculated = c.pipeline.Recirculated()
	dp.ShardedRules, dp.FallbackRules = snap.ShardedRules()
	for gi, g := range c.groups {
		for ci := 0; ci < g.CMUs(); ci++ {
			reg := g.CMU(ci).Register()
			dp.Registers = append(dp.Registers, telemetry.RegisterGauge{
				Group:    gi,
				CMU:      ci,
				Buckets:  reg.Size(),
				BitWidth: reg.BitWidth(),
				Occupied: reg.Occupancy(),
				Clamps:   reg.Clamps(),
				Accesses: reg.Accesses(),
				Lanes:    reg.Shards(),
			})
		}
	}
	return dp
}
