package experiments

import (
	"fmt"
	"runtime"
	"time"

	"flymon/internal/controlplane"
	"flymon/internal/packet"
	"flymon/internal/trace"
)

// Multitasking reproduces §5.1's "Dynamic memory and multitasking"
// paragraph as a table: one CMU Group is split into 32 partitions per CMU
// and loaded with up to 96 isolated measurement tasks (32 × 3), each with
// its own traffic filter. The table reports, per load level, the total
// deployment delay, the per-task memory, and a cross-task isolation check
// (every task counts exactly its own traffic).
func Multitasking(scale Scale, seed int64) *Table {
	t := &Table{
		Title:  "§5.1 — Multitasking: isolated tasks on one CMU Group (32 partitions × 3 CMUs)",
		Header: []string{"Tasks", "Buckets/task", "Total deploy delay (ms)", "Mean delay (ms)", "Isolation errors"},
	}
	_, packets := scale.workload()
	packets /= 8

	for _, n := range []int{3, 12, 48, 96} {
		ctrl := controlplane.NewController(controlplane.Config{Groups: 1, Buckets: 65536, BitWidth: 32})
		var total time.Duration
		perTask := 65536 / 32
		for i := 0; i < n; i++ {
			task, err := ctrl.AddTask(controlplane.TaskSpec{
				Name:       fmt.Sprintf("tenant-%d", i),
				Key:        packet.KeyFiveTuple,
				Attribute:  controlplane.AttrFrequency,
				MemBuckets: perTask,
				D:          1,
				Filter:     packet.Filter{DstPort: uint16(i + 1)},
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: multitasking task %d: %v", i, err))
			}
			total += task.Delay
		}

		// Drive traffic across all tenants and verify isolation: each
		// task's whole register mass must equal its own packet count. The
		// replay shards across all cores — per-bucket atomic adds make the
		// mass check exact regardless of packet interleaving.
		tr := trace.Generate(trace.Config{Flows: 2000, Packets: packets, Seed: seed})
		perTenant := make([]uint64, n)
		for i := range tr.Packets {
			tenant := i % n
			tr.Packets[i].DstPort = uint16(tenant + 1)
			perTenant[tenant]++
		}
		ctrl.ProcessParallel(tr.Packets, runtime.GOMAXPROCS(0))
		isolationErrors := 0
		for i := 0; i < n; i++ {
			rows, err := ctrl.ReadRegisters(i + 1)
			if err != nil {
				panic(err)
			}
			var mass uint64
			for _, row := range rows {
				for _, v := range row {
					mass += uint64(v)
				}
			}
			if mass != perTenant[i] {
				isolationErrors++
			}
		}

		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(perTask),
			f2(float64(total.Microseconds()) / 1000),
			f2(float64(total.Microseconds()) / 1000 / float64(n)),
			itoa(isolationErrors),
		})
	}
	t.Notes = append(t.Notes,
		"96 = 32 partitions × 3 CMUs, the paper's per-group multitasking bound; every deployment is a runtime rule install",
		"isolation check: each task's register mass equals exactly its own tenant's packet count")
	return t
}
