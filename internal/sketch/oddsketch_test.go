package sketch

import (
	"testing"

	"flymon/internal/metrics"
	"flymon/internal/packet"
	"flymon/internal/trace"
)

func TestOddSketchParity(t *testing.T) {
	o := NewOddSketch(packet.KeyFiveTuple, 1024)
	p := packet.Packet{SrcIP: 1, Proto: 6}
	o.Insert(&p)
	if o.OnesCount() != 1 {
		t.Fatalf("one insert → %d bits", o.OnesCount())
	}
	o.Insert(&p) // second insert cancels
	if o.OnesCount() != 0 {
		t.Fatalf("double insert → %d bits, want 0", o.OnesCount())
	}
}

func TestOddSketchSymmetricDifference(t *testing.T) {
	const m = 1 << 14
	a := NewOddSketch(packet.KeyFiveTuple, m)
	b := NewOddSketch(packet.KeyFiveTuple, m)
	tr := trace.Generate(trace.Config{Flows: 3000, Packets: 3000, Seed: 50})
	seen := map[packet.CanonicalKey]bool{}
	shared, onlyA, onlyB := 0, 0, 0
	i := 0
	for j := range tr.Packets {
		p := &tr.Packets[j]
		k := packet.KeyFiveTuple.Extract(p)
		if seen[k] {
			continue
		}
		seen[k] = true
		switch i % 3 {
		case 0: // shared
			a.Insert(p)
			b.Insert(p)
			shared++
		case 1:
			a.Insert(p)
			onlyA++
		default:
			b.Insert(p)
			onlyB++
		}
		i++
	}
	truth := float64(onlyA + onlyB)
	got, err := a.SymmetricDifference(b)
	if err != nil {
		t.Fatal(err)
	}
	if re := metrics.RE(truth, got); re > 0.15 {
		t.Fatalf("symmetric difference RE %.3f (est %.0f, truth %.0f)", re, got, truth)
	}
	// Jaccard of the two sets: |A∩B| / |A∪B|.
	wantJ := float64(shared) / float64(shared+onlyA+onlyB)
	j, err := a.Jaccard(b, float64(shared+onlyA), float64(shared+onlyB))
	if err != nil {
		t.Fatal(err)
	}
	if d := j - wantJ; d > 0.1 || d < -0.1 {
		t.Fatalf("Jaccard = %.3f, want ≈ %.3f", j, wantJ)
	}
}

func TestOddSketchSizeMismatch(t *testing.T) {
	a := NewOddSketch(packet.KeySrcIP, 512)
	b := NewOddSketch(packet.KeySrcIP, 1024)
	if _, err := a.SymmetricDifference(b); err == nil {
		t.Fatal("size mismatch must error")
	}
}

func TestOddSketchSaturation(t *testing.T) {
	o := NewOddSketch(packet.KeySrcIP, 64)
	p := NewOddSketch(packet.KeySrcIP, 64)
	for i := 0; i < 10_000; i++ {
		o.Insert(&packet.Packet{SrcIP: uint32(i)})
	}
	est, err := o.SymmetricDifference(p)
	if err != nil {
		t.Fatal(err)
	}
	if est <= 0 {
		t.Fatalf("saturated estimate must degrade gracefully, got %v", est)
	}
	o.Reset()
	if o.OnesCount() != 0 {
		t.Fatal("reset must clear")
	}
}
