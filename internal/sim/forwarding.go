// Package sim models the traffic-forwarding behaviour of the Fig. 12a
// experiment: servers drive ~80–93 Gbps of TCP through the switch while
// the operator issues reconfiguration events. FlyMon installs runtime
// rules without touching forwarding; the static-deployment baseline must
// reload the P4 program, interrupting traffic for several seconds and then
// ramping back up as TCP recovers.
package sim

import (
	"math"
	"math/rand"
)

// DeploymentKind distinguishes the three Fig. 12a lines.
type DeploymentKind uint8

const (
	// Bare is the data plane with no measurement functions.
	Bare DeploymentKind = iota
	// FlyMon reconfigures via runtime rules (no interruption).
	FlyMon
	// Static reconfigures by reloading the P4 program (traffic interrupted).
	Static
)

// String implements fmt.Stringer.
func (k DeploymentKind) String() string {
	switch k {
	case Bare:
		return "Bare"
	case FlyMon:
		return "FlyMon"
	default:
		return "Static"
	}
}

// EventKind classifies reconfiguration events.
type EventKind uint8

// Reconfiguration event kinds.
const (
	EventAddTask EventKind = iota
	EventRemoveTask
	EventReallocateMemory
)

// Event is one reconfiguration at a point in time.
type Event struct {
	AtSecond float64
	Kind     EventKind
}

// ForwardingConfig parameterizes the throughput simulation.
type ForwardingConfig struct {
	DurationSec float64 // total experiment length (100 s in the paper)
	StepSec     float64 // sampling interval
	BaseGbps    float64 // nominal offered load (~86 Gbps)
	JitterGbps  float64 // load noise amplitude
	Seed        int64
	Events      []Event
	// ReloadLowSec/ReloadHighSec bound the static-reload outage (4–8 s).
	ReloadLowSec  float64
	ReloadHighSec float64
	// RampSec is the TCP recovery ramp after an outage.
	RampSec float64
}

// Defaults fills zero fields with the paper's setting.
func (c *ForwardingConfig) Defaults() {
	if c.DurationSec == 0 {
		c.DurationSec = 100
	}
	if c.StepSec == 0 {
		c.StepSec = 0.5
	}
	if c.BaseGbps == 0 {
		c.BaseGbps = 86
	}
	if c.JitterGbps == 0 {
		c.JitterGbps = 6
	}
	if c.ReloadLowSec == 0 {
		c.ReloadLowSec = 4
	}
	if c.ReloadHighSec == 0 {
		c.ReloadHighSec = 8
	}
	if c.RampSec == 0 {
		c.RampSec = 1.5
	}
	if c.Events == nil {
		// Nine events, every 10 s (e1..e9), alternating kinds.
		for i := 1; i <= 9; i++ {
			c.Events = append(c.Events, Event{
				AtSecond: float64(i * 10),
				Kind:     EventKind(i % 3),
			})
		}
	}
}

// Sample is one point of the throughput time series.
type Sample struct {
	AtSecond float64
	Gbps     float64
}

// SimulateForwarding produces the throughput time series for one
// deployment kind under the configured reconfiguration events.
//
// The static baseline applies the paper's two optimizations: task-deletion
// events trigger no reload, and consecutive critical events could be
// batched (here each critical event reloads once, matching the paper's
// per-event dips).
func SimulateForwarding(kind DeploymentKind, cfg ForwardingConfig) []Sample {
	cfg.Defaults()
	rng := rand.New(rand.NewSource(cfg.Seed + int64(kind)))

	// Outage windows for the static baseline.
	type window struct{ start, end float64 }
	var outages []window
	if kind == Static {
		for _, ev := range cfg.Events {
			if ev.Kind == EventRemoveTask {
				continue // optimization (i): deletions are not critical
			}
			dur := cfg.ReloadLowSec + rng.Float64()*(cfg.ReloadHighSec-cfg.ReloadLowSec)
			outages = append(outages, window{ev.AtSecond, ev.AtSecond + dur})
		}
	}

	var out []Sample
	for t := 0.0; t <= cfg.DurationSec; t += cfg.StepSec {
		g := cfg.BaseGbps + cfg.JitterGbps*(rng.Float64()-0.5)
		// Gentle sinusoidal load swing so lines look like iPerf, not a
		// constant.
		g += 2 * math.Sin(t/7)
		for _, w := range outages {
			switch {
			case t >= w.start && t < w.end:
				g = 0
			case t >= w.end && t < w.end+cfg.RampSec:
				// Linear TCP recovery ramp.
				g *= (t - w.end) / cfg.RampSec
			}
		}
		if g < 0 {
			g = 0
		}
		out = append(out, Sample{AtSecond: t, Gbps: g})
	}
	return out
}

// MeanGbps averages a series.
func MeanGbps(s []Sample) float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s {
		sum += x.Gbps
	}
	return sum / float64(len(s))
}

// OutageSeconds sums the time the series spends below the threshold.
func OutageSeconds(s []Sample, thresholdGbps float64) float64 {
	if len(s) < 2 {
		return 0
	}
	step := s[1].AtSecond - s[0].AtSecond
	var total float64
	for _, x := range s {
		if x.Gbps < thresholdGbps {
			total += step
		}
	}
	return total
}
