// Adaptive memory management: a DREAM-style SDM controller (§3.4) runs on
// top of FlyMon's reconfiguration primitives. Two tenants' tasks share one
// CMU Group; when tenant A's traffic surges, the per-epoch feedback loop
// grows its task — stealing memory from the idle tenant when the group is
// full — with nothing but runtime rule installs.
package main

import (
	"fmt"
	"log"

	"flymon/internal/controlplane"
	"flymon/internal/packet"
	"flymon/internal/sdm"
	"flymon/internal/trace"
)

func main() {
	ctrl := controlplane.NewController(controlplane.Config{
		Groups: 1, Buckets: 65536, BitWidth: 32,
	})

	tenantA := packet.Filter{DstPort: 80}
	tenantB := packet.Filter{DstPort: 443}
	a, err := ctrl.AddTask(controlplane.TaskSpec{
		Name: "tenantA-flows", Filter: tenantA, Key: packet.KeyFiveTuple,
		Attribute: controlplane.AttrFrequency, MemBuckets: 4096, D: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	b, err := ctrl.AddTask(controlplane.TaskSpec{
		Name: "tenantB-flows", Filter: tenantB, Key: packet.KeyFiveTuple,
		Attribute: controlplane.AttrFrequency, MemBuckets: 32768, D: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	alloc := sdm.NewAllocator(ctrl, sdm.DefaultPolicy())
	if err := alloc.Manage(a.ID); err != nil {
		log.Fatal(err)
	}
	if err := alloc.Manage(b.ID); err != nil {
		log.Fatal(err)
	}

	// Five epochs: tenant A's flow count ramps up; tenant B stays light.
	flowRamp := []int{1000, 4000, 12_000, 30_000, 30_000}
	for epoch, flows := range flowRamp {
		_ = ctrl.ResetTaskCounters(a.ID)
		_ = ctrl.ResetTaskCounters(b.ID)
		trA := trace.Generate(trace.Config{Flows: flows, Packets: flows * 4, Seed: int64(epoch)})
		for i := range trA.Packets {
			trA.Packets[i].DstPort = 80
			ctrl.Process(&trA.Packets[i])
		}
		trB := trace.Generate(trace.Config{Flows: 500, Packets: 2000, Seed: int64(100 + epoch)})
		for i := range trB.Packets {
			trB.Packets[i].DstPort = 443
			ctrl.Process(&trB.Packets[i])
		}

		occA, _ := alloc.Occupancy(a.ID)
		occB, _ := alloc.Occupancy(b.ID)
		fmt.Printf("epoch %d: tenantA %5d flows, occupancy %.2f | tenantB occupancy %.2f\n",
			epoch, flows, occA, occB)
		for _, d := range alloc.EpochEnd() {
			if d.NewBuckets != d.OldBuckets {
				name := "tenantA"
				if d.TaskID == b.ID {
					name = "tenantB"
				}
				fmt.Printf("  → resized %s: %d → %d buckets\n", name, d.OldBuckets, d.NewBuckets)
			}
			if d.Err != nil {
				fmt.Printf("  → task %d resize blocked: %v\n", d.TaskID, d.Err)
			}
		}
	}

	fmt.Println("final allocations:")
	for _, t := range ctrl.Tasks() {
		fmt.Printf("  %-14s %6d buckets/row\n", t.Spec.Name, t.Buckets)
	}
}
