// Command benchcmp compares Go benchmark outputs by median time per op —
// the repo's standard for judging data-plane changes (-count=5 runs give it
// a median robust to the scheduler noise a single run is hostage to).
//
// Two-file mode compares a baseline run against a new run, matching
// benchmarks by full name (including the -cpu suffix):
//
//	go test -bench ... -count 5 . | tee old.txt   # before
//	go test -bench ... -count 5 . | tee new.txt   # after
//	benchcmp old.txt new.txt
//
// Pair mode compares two benchmark variants inside one file — e.g. the
// register-mode sub-benchmarks of one bench-scaling run:
//
//	benchcmp -pair 'mode=shared-cas:mode=sharded' bench_scaling.txt
//
// For every benchmark whose name contains the first substring, the
// counterpart is found by substituting the second, and the delta reported
// at equal -cpu. Negative deltas mean the new/right side is faster.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// samples maps full benchmark name → observed ns/op values, preserving
// first-appearance order for stable output.
type samples struct {
	order []string
	vals  map[string][]float64
}

func parseFile(path string) (*samples, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s := &samples{vals: make(map[string][]float64)}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if _, seen := s.vals[m[1]]; !seen {
			s.order = append(s.order, m[1])
		}
		s.vals[m[1]] = append(s.vals[m[1]], v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(s.order) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return s, nil
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

type row struct {
	name     string
	old, new float64
	oldN     int
	newN     int
}

func (r row) delta() float64 { return (r.new - r.old) / r.old * 100 }

func render(w *os.File, rows []row) {
	nameW := len("benchmark")
	for _, r := range rows {
		if len(r.name) > nameW {
			nameW = len(r.name)
		}
	}
	fmt.Fprintf(w, "%-*s  %12s  %12s  %8s\n", nameW, "benchmark", "old ns/op", "new ns/op", "delta")
	for _, r := range rows {
		note := ""
		if r.oldN != r.newN {
			note = fmt.Sprintf("  (n=%d vs %d)", r.oldN, r.newN)
		}
		fmt.Fprintf(w, "%-*s  %12.1f  %12.1f  %+7.2f%%%s\n", nameW, r.name, r.old, r.new, r.delta(), note)
	}
}

func compareFiles(oldPath, newPath string) error {
	oldS, err := parseFile(oldPath)
	if err != nil {
		return err
	}
	newS, err := parseFile(newPath)
	if err != nil {
		return err
	}
	var rows []row
	var missing []string
	for _, name := range oldS.order {
		nv, ok := newS.vals[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		ov := oldS.vals[name]
		rows = append(rows, row{name, median(ov), median(nv), len(ov), len(nv)})
	}
	if len(rows) == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath)
	}
	render(os.Stdout, rows)
	for _, name := range missing {
		fmt.Fprintf(os.Stderr, "benchcmp: %s only in %s\n", name, oldPath)
	}
	return nil
}

func comparePairs(spec, path string) error {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return fmt.Errorf("-pair wants 'oldSubstring:newSubstring', got %q", spec)
	}
	s, err := parseFile(path)
	if err != nil {
		return err
	}
	var rows []row
	for _, name := range s.order {
		if !strings.Contains(name, parts[0]) {
			continue
		}
		partner := strings.Replace(name, parts[0], parts[1], 1)
		pv, ok := s.vals[partner]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcmp: no counterpart %s for %s\n", partner, name)
			continue
		}
		ov := s.vals[name]
		rows = append(rows, row{name, median(ov), median(pv), len(ov), len(pv)})
	}
	if len(rows) == 0 {
		return fmt.Errorf("no %q/%q pairs in %s", parts[0], parts[1], path)
	}
	render(os.Stdout, rows)
	return nil
}

func main() {
	pair := flag.String("pair", "", "compare variants inside one file: 'oldSubstring:newSubstring'")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchcmp old.txt new.txt\n       benchcmp -pair 'a:b' bench.txt\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	var err error
	switch {
	case *pair != "" && flag.NArg() == 1:
		err = comparePairs(*pair, flag.Arg(0))
	case *pair == "" && flag.NArg() == 2:
		err = compareFiles(flag.Arg(0), flag.Arg(1))
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
}
