// Command flymonctl is the interactive control-plane client for flymond:
// it defines measurement tasks, reconfigures them on the fly, and reads
// results back — the operator workflow of the paper's §1 example.
//
// Usage:
//
//	flymonctl [-addr host:9177] [-timeout 30s] [-retries 2] <command> [flags]
//
// -timeout bounds each control-channel round trip (a hung daemon fails
// with an i/o timeout instead of blocking forever); -retries is the
// automatic retry budget for read-only commands after a transport failure
// (mutations are never auto-retried: on a transport failure the daemon may
// or may not have applied them — re-check with `list`).
//
// Commands: add, rm, resize, list, estimate, cardinality, contains,
// distribution, resources, gen, replay, stats, fleet, query, trace, watch.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"flymon/internal/cli"
	"flymon/internal/controlplane"
	"flymon/internal/netwide"
	"flymon/internal/packet"
	"flymon/internal/rpc"
	"flymon/internal/telemetry"
	"flymon/internal/tracing"
)

// logger is the CLI's leveled logger (stderr); -log-level tunes it.
var logger = telemetry.NewLogger("flymonctl", telemetry.LevelInfo, os.Stderr)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	addr := ":9177"
	opts := rpc.Options{}
	args := os.Args[1:]
	// Leading global flags, in any order, before the command word.
	// -version is valueless; every other global flag takes a value.
	need := func(args []string) {
		if len(args) < 2 {
			fatal(fmt.Errorf("%s: missing value", args[0]))
		}
	}
global:
	for len(args) >= 1 {
		switch args[0] {
		case "-version":
			fmt.Printf("flymonctl %s\n", telemetry.ReadBuildInfo())
			return
		case "-addr":
			need(args)
			addr, args = args[1], args[2:]
		case "-timeout":
			need(args)
			d, err := time.ParseDuration(args[1])
			if err != nil {
				fatal(fmt.Errorf("-timeout: %w", err))
			}
			opts.CallTimeout = d
			args = args[2:]
		case "-retries":
			need(args)
			n := 0
			if _, err := fmt.Sscanf(args[1], "%d", &n); err != nil {
				fatal(fmt.Errorf("-retries: %w", err))
			}
			if n == 0 {
				n = -1 // user asked for zero retries, not the default
			}
			opts.MaxRetries = n
			args = args[2:]
		case "-log-level":
			need(args)
			lvl, err := telemetry.ParseLogLevel(args[1])
			if err != nil {
				fatal(err)
			}
			logger.SetLevel(lvl)
			args = args[2:]
		default:
			break global
		}
	}
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cmd, args := args[0], args[1:]

	// fleet speaks to MANY daemons (its own -addrs list) and tolerates dead
	// ones — that is its whole point — so it dispatches before the
	// single-daemon dial below, which would die on the first dead address.
	if cmd == "fleet" {
		cmdFleet(addr, opts, args)
		return
	}
	// query likewise fans out to its own -addrs list and must keep going
	// when a switch is down (that is what the straggler report is for).
	if cmd == "query" {
		cmdQuery(addr, opts, args)
		return
	}
	// trace and watch read many daemons too and tolerate dead ones.
	if cmd == "trace" {
		cmdTrace(addr, opts, args)
		return
	}
	if cmd == "watch" {
		cmdWatch(addr, opts, args)
		return
	}

	client, err := rpc.DialOptions(addr, opts)
	if err != nil {
		fatal(err)
	}
	defer client.Close()

	switch cmd {
	case "add":
		cmdAdd(client, args)
	case "rm":
		cmdRemove(client, args)
	case "resize":
		cmdResize(client, args)
	case "split":
		cmdSplit(client, args)
	case "load":
		cmdLoad(client, args)
	case "list":
		cmdList(client)
	case "estimate":
		cmdEstimate(client, args)
	case "cardinality":
		cmdCardinality(client, args)
	case "contains":
		cmdContains(client, args)
	case "distribution":
		cmdDistribution(client, args)
	case "resources":
		cmdResources(client)
	case "report":
		cmdReport(client)
	case "gen":
		cmdGen(client, args)
	case "replay":
		cmdReplay(client, args)
	case "stats":
		cmdStats(client, args)
	default:
		fmt.Fprintf(os.Stderr, "flymonctl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "flymonctl: %v\n", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: flymonctl [-addr host:9177] [-timeout 30s] [-retries 2] <command> [flags]

global flags:
  -addr       daemon control-channel address
  -timeout    per-call deadline (default 30s); a hung daemon errors instead of blocking
  -retries    retry budget for read-only commands after transport failures (default 2)
  -log-level  stderr log verbosity: debug, info, warn, error, off (default info)
  -version    print version and build info, then exit

commands:
  add          deploy a measurement task
               -name N -key srcip|dstip|ippair|5tuple|srcip/24|... -attr frequency|distinct|existence|max
               -param count|bytes|qlen|qdelay|interval|<keyspec> -mem BUCKETS [-d N]
               [-threshold N] [-filter-src CIDR] [-filter-dst CIDR] [-prob P]
  rm           -id N                      remove a task
  resize       -id N -mem BUCKETS         reallocate a task's memory on the fly
  split        -id N                      split a task into two filter-disjoint subtasks
  load         -file PATH                 load a binary trace (trafficgen output) into the daemon
  list                                    list deployed tasks
  estimate     -id N -key SPEC -src IP -dst IP [-sport P -dport P -proto N]
  cardinality  -id N                      read a cardinality task
  contains     -id N -key SPEC -src IP ...  query an existence task
  distribution -id N                      read an MRAC task's size distribution
  resources                               free memory per CMU
  report                                  per-group occupancy (keys, rules, TCAM)
  gen          -flows N -packets N [-zipf S] [-seed N]   synthesize a workload
  replay       [-n N]                     push trace packets through the pipeline
  stats        [-metrics] [-events N]     daemon counters + telemetry report
               -metrics dumps Prometheus text; -events N prints the last N
               reconfiguration journal entries
  fleet        [-addrs a:9177,b:9177] [-tx 100ms] [-mult 3] [-watch 1s]
               probe a fleet with BFD-style liveness sessions and print the
               per-switch table (session state, detect time, failures,
               observed/desired tasks); '*' marks a flap-damped session
  query        -addrs a:9177,b:9177 -name N [-epoch E] [-policy wait|skip|partial]
               [-wait 2s] [-op add|max|or|xor] [-arity K] [-trace]
               [-estimate -key SPEC -src IP -dst IP ...]
               epoch-coherent network-wide readout: every switch's epoch-E
               register snapshot (binary frames) streamed through the
               parallel sketch-merge tree. -epoch 0 pins the first healthy
               switch's latest completed epoch. The report separates
               stragglers (reachable, behind) from failures (unreachable);
               -estimate probes the merged rows for a flow key (CMS min);
               -trace prints the end-to-end span tree with its critical path
  trace        [-addrs a:9177,b:9177] [-n 5] [-op NAME]
               dump every daemon's span buffer, knit spans into per-operation
               trace trees, print the newest N with critical-path breakdowns
  watch        [-addrs a:9177,b:9177] [-interval 1s] [-events 6]
               [-epoch-task N] [-tx 100ms] [-mult 3]
               live fleet dashboard: per-switch liveness sessions, task and
               packet counters, drain/mutation latency percentiles, per-switch
               completed epoch ('!' marks a straggler), and the newest
               reconfiguration journal entries; redraws in place each interval
`)
}

func cmdAdd(c *rpc.Client, args []string) {
	fs := flag.NewFlagSet("add", flag.ExitOnError)
	name := fs.String("name", "", "task name")
	key := fs.String("key", "5tuple", "flow key spec")
	attr := fs.String("attr", "frequency", "attribute: frequency|distinct|existence|max")
	param := fs.String("param", "count", "attribute parameter")
	mem := fs.Int("mem", 16384, "memory buckets per row")
	d := fs.Int("d", 0, "rows (0 = algorithm default)")
	threshold := fs.Int("threshold", 0, "detection threshold")
	fsrc := fs.String("filter-src", "", "source prefix filter (CIDR)")
	fdst := fs.String("filter-dst", "", "destination prefix filter (CIDR)")
	prob := fs.Float64("prob", 0, "probabilistic execution (0 or 1 = always)")
	alg := fs.String("alg", "", "pin algorithm: cms|sumax|mrac|tower|cb|beaucoup|hll|lc|bloom|sumaxmax|interval")
	_ = fs.Parse(args)

	spec := controlplane.TaskSpec{Name: *name, MemBuckets: *mem, D: *d,
		Threshold: *threshold, Prob: *prob}
	var err error
	if spec.Key, err = cli.ParseKeySpec(*key); err != nil {
		fatal(err)
	}
	if spec.Filter.SrcPrefix, err = cli.ParseCIDR(*fsrc); err != nil {
		fatal(err)
	}
	if spec.Filter.DstPrefix, err = cli.ParseCIDR(*fdst); err != nil {
		fatal(err)
	}
	switch strings.ToLower(*attr) {
	case "frequency":
		spec.Attribute = controlplane.AttrFrequency
	case "distinct":
		spec.Attribute = controlplane.AttrDistinct
	case "existence":
		spec.Attribute = controlplane.AttrExistence
	case "max":
		spec.Attribute = controlplane.AttrMax
	default:
		fatal(fmt.Errorf("unknown attribute %q", *attr))
	}
	switch strings.ToLower(*param) {
	case "count", "":
		spec.Param.Kind = controlplane.ParamPacketCount
	case "bytes":
		spec.Param.Kind = controlplane.ParamPacketBytes
	case "qlen":
		spec.Param.Kind = controlplane.ParamQueueLength
	case "qdelay":
		spec.Param.Kind = controlplane.ParamQueueDelay
	case "interval":
		spec.Param.Kind = controlplane.ParamPacketInterval
	default:
		ks, err := cli.ParseKeySpec(*param)
		if err != nil {
			fatal(err)
		}
		spec.Param = controlplane.ParamSpec{Kind: controlplane.ParamFlowKey, Key: ks}
	}
	switch strings.ToLower(*alg) {
	case "":
	case "cms":
		spec.Algorithm = controlplane.AlgCMS
	case "sumax":
		spec.Algorithm = controlplane.AlgSuMaxSum
	case "mrac":
		spec.Algorithm = controlplane.AlgMRAC
	case "tower":
		spec.Algorithm = controlplane.AlgTower
	case "cb":
		spec.Algorithm = controlplane.AlgCounterBraids
	case "beaucoup":
		spec.Algorithm = controlplane.AlgBeauCoup
	case "hll":
		spec.Algorithm = controlplane.AlgHLL
	case "lc":
		spec.Algorithm = controlplane.AlgLinearCounting
	case "bloom":
		spec.Algorithm = controlplane.AlgBloom
	case "sumaxmax":
		spec.Algorithm = controlplane.AlgSuMaxMax
	case "interval":
		spec.Algorithm = controlplane.AlgMaxInterval
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *alg))
	}

	res, err := c.AddTask(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("task %d deployed: %s on groups %v, %d buckets/row (%d B), delay %v\n",
		res.ID, res.Algorithm, res.Groups, res.Buckets, res.MemoryBytes, res.Delay)
}

func cmdRemove(c *rpc.Client, args []string) {
	fs := flag.NewFlagSet("rm", flag.ExitOnError)
	id := fs.Int("id", 0, "task id")
	_ = fs.Parse(args)
	if err := c.RemoveTask(*id); err != nil {
		fatal(err)
	}
	fmt.Printf("task %d removed\n", *id)
}

func cmdResize(c *rpc.Client, args []string) {
	fs := flag.NewFlagSet("resize", flag.ExitOnError)
	id := fs.Int("id", 0, "task id")
	mem := fs.Int("mem", 0, "new buckets per row")
	_ = fs.Parse(args)
	res, err := c.ResizeTask(*id, *mem)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("task %d resized: %d buckets/row (%d B), delay %v\n",
		res.ID, res.Buckets, res.MemoryBytes, res.Delay)
}

func cmdSplit(c *rpc.Client, args []string) {
	fs := flag.NewFlagSet("split", flag.ExitOnError)
	id := fs.Int("id", 0, "task id")
	_ = fs.Parse(args)
	lo, hi, err := c.SplitTask(*id)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("task %d split into %d (%s) and %d (%s)\n", *id, lo.ID, lo.Name, hi.ID, hi.Name)
}

func cmdLoad(c *rpc.Client, args []string) {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	file := fs.String("file", "", "binary trace path on the daemon host")
	_ = fs.Parse(args)
	n, err := c.LoadTrace(*file)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d packets\n", n)
}

// cmdFleet probes a fleet of daemons with real liveness sessions (the same
// BFD-style machinery RemoteFleet runs) for a short observation window and
// prints the per-switch health table. A dead daemon shows up as a down
// session, not as a command failure.
func cmdFleet(defaultAddr string, opts rpc.Options, args []string) {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	addrsFlag := fs.String("addrs", defaultAddr, "comma-separated daemon control-channel addresses")
	tx := fs.Duration("tx", 100*time.Millisecond, "hello tx interval")
	mult := fs.Int("mult", 3, "detection-time multiplier (detect = mult × tx)")
	watch := fs.Duration("watch", 0, "keep observing, reprinting every interval (0 = one snapshot)")
	_ = fs.Parse(args)

	var addrs []string
	for _, a := range strings.Split(*addrsFlag, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fatal(fmt.Errorf("fleet: no addresses"))
	}
	if opts.CallTimeout == 0 {
		opts.CallTimeout = 2 * time.Second
	}
	opts.MaxRetries = -1 // the session machinery owns failure handling

	m := netwide.NewLivenessManager(addrs, netwide.LivenessOptions{
		TxInterval: *tx,
		DetectMult: *mult,
	})
	m.Start()
	defer m.Stop()

	// Let the three-way handshakes complete plus one detect interval, so a
	// dead daemon is already reported down in the first snapshot.
	time.Sleep(time.Duration(*mult+2) * *tx)
	for {
		printFleet(m, opts)
		if *watch <= 0 {
			return
		}
		time.Sleep(*watch)
		fmt.Println()
	}
}

func printFleet(m *netwide.LivenessManager, opts rpc.Options) {
	snaps := m.Snapshot()
	// Observed task lists, over short-lived per-daemon connections; the
	// desired set is approximated as the union across reachable daemons
	// (the controller's mirror is not available to an offline CLI).
	observed := make([]int, len(snaps))
	union := make(map[int]bool)
	for i, s := range snaps {
		observed[i] = -1
		if s.State != netwide.SessionUp {
			continue
		}
		c, err := rpc.DialOptions(s.Addr, opts)
		if err != nil {
			continue
		}
		tasks, err := c.ListTasks()
		c.Close()
		if err != nil {
			continue
		}
		observed[i] = len(tasks)
		for _, t := range tasks {
			union[t.ID] = true
		}
	}
	fmt.Printf("%-22s %-8s %-8s %-6s %-12s %s\n", "ADDR", "SESSION", "DETECT", "FAILS", "LAST-CHANGE", "TASKS")
	for i, s := range snaps {
		sess := s.State.String()
		if s.Damped {
			sess += "*" // flap-damped: up but held out of service
		}
		change := "-"
		if !s.LastTransition.IsZero() {
			change = time.Since(s.LastTransition).Round(time.Millisecond).String()
		}
		tasks := "?"
		if observed[i] >= 0 {
			tasks = fmt.Sprintf("%d/%d", observed[i], len(union))
		}
		fmt.Printf("%-22s %-8s %-8s %-6d %-12s %s\n",
			s.Addr, sess, s.DetectTime, s.ConsecutiveFailures, change, tasks)
	}
	if len(union) > 0 {
		for i, s := range snaps {
			if observed[i] >= 0 && observed[i] < len(union) {
				fmt.Printf("fleet: switch %s is missing %d task(s) — a reconciler would re-deploy them\n",
					s.Addr, len(union)-observed[i])
			}
		}
	}
}

// cmdQuery runs an epoch-coherent network-wide readout without a resident
// fleet controller: dial every switch, fetch its epoch-E snapshot under
// the straggler policy (FetchEpochRows polls behind switches up to the
// wait bound), and stream the leaves through the parallel sketch-merge
// tree. The per-switch outcome table separates stragglers from failures —
// the CLI rendering of the QueryReport the fleet plane produces.
func cmdQuery(defaultAddr string, opts rpc.Options, args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	addrsFlag := fs.String("addrs", defaultAddr, "comma-separated daemon control-channel addresses")
	name := fs.String("name", "", "epoch task name")
	epochN := fs.Int("epoch", 0, "completed epoch to read (0 = first healthy switch's latest)")
	policyStr := fs.String("policy", "wait", "straggler policy: wait|skip|partial")
	waitBound := fs.Duration("wait", netwide.DefaultEpochWait, "straggler wait bound (wait/partial policies)")
	opStr := fs.String("op", "add", "merge op: add|max|or|xor")
	arity := fs.Int("arity", 0, "merge-tree fan-in (0 = default)")
	estimate := fs.Bool("estimate", false, "probe the merged rows for the key flags' flow (CMS min)")
	traceQ := fs.Bool("trace", false, "trace the query end-to-end and print the assembled span tree")
	p, keyStr := packetFromFlags(fs, args) // parses the flag set

	if *name == "" {
		fatal(fmt.Errorf("query: -name is required"))
	}
	policy, err := netwide.ParseStragglerPolicy(*policyStr)
	if err != nil {
		fatal(err)
	}
	op, err := netwide.ParseMergeOp(*opStr)
	if err != nil {
		fatal(err)
	}
	var addrs []string
	for _, a := range strings.Split(*addrsFlag, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fatal(fmt.Errorf("query: no addresses"))
	}

	// Tracing is opt-in per query: the CLI process holds the controller
	// half of the trace, the daemons record their halves, and the tree is
	// knit together from their trace_dump buffers after the query.
	var tr *tracing.Tracer
	if *traceQ {
		tr = tracing.New(0)
		opts.Tracer = tr
	}

	// Dial everything up front; a dead switch becomes a failure row, not a
	// command abort.
	clients := make([]*rpc.Client, len(addrs))
	outcome := make([]string, len(addrs)) // "" = contributed
	for i, a := range addrs {
		c, err := rpc.DialOptions(a, opts)
		if err != nil {
			outcome[i] = fmt.Sprintf("failed: %v", err)
			continue
		}
		clients[i] = c
		defer c.Close()
	}

	// Pin the epoch: coherence means every switch answers for the SAME E,
	// so "latest" is resolved once, not per switch.
	pinned := *epochN
	if pinned <= 0 {
		for _, c := range clients {
			if c == nil {
				continue
			}
			res, err := c.ReadEpoch(*name, 0)
			if err != nil {
				fatal(fmt.Errorf("query: resolving latest epoch: %w", err))
			}
			pinned = res.Epoch
			break
		}
		if pinned <= 0 {
			fatal(fmt.Errorf("query: no reachable switch to resolve the latest epoch"))
		}
	}

	root := tr.StartRoot("query")
	root.SetDetail(fmt.Sprintf("%s epoch=%d policy=%s", *name, pinned, policy))
	q := netwide.EpochQuery{Policy: policy, Wait: *waitBound, Op: op}
	leaves := make(chan netwide.Leaf, len(addrs))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		frozenID int
	)
	for i, c := range clients {
		if c == nil {
			continue
		}
		wg.Add(1)
		go func(i int, c *rpc.Client) {
			defer wg.Done()
			var sw *tracing.ActiveSpan
			if tr != nil {
				sw = tr.StartSpan(root.Context(), "switch")
				sw.SetSwitch(i)
				sw.SetDetail(addrs[i])
			}
			rows, fid, err := netwide.FetchEpochRows(c, *name, pinned, q, sw.Context())
			sw.Finish(err)
			if err != nil {
				mu.Lock()
				if have, ok := netwide.StragglerEpoch(err); ok {
					outcome[i] = fmt.Sprintf("straggler: behind @ epoch %d", have)
				} else {
					outcome[i] = fmt.Sprintf("failed: %v", err)
				}
				mu.Unlock()
				return
			}
			mu.Lock()
			if frozenID == 0 {
				frozenID = fid
			}
			mu.Unlock()
			leaves <- netwide.Leaf{Switch: i, Rows: rows}
		}(i, c)
	}
	go func() { wg.Wait(); close(leaves) }()
	res, err := netwide.MergeStream(leaves, op, netwide.TreeOptions{
		Task: *name, Arity: *arity, Tracer: tr, Parent: root.Context(),
	})
	root.Finish(err)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("epoch %d, op %s, policy %s: %d/%d switches contributed\n",
		pinned, op, policy, len(res.Contributed), len(addrs))
	stragglers := 0
	for i, a := range addrs {
		o := outcome[i]
		if o == "" {
			o = "ok"
		}
		if strings.HasPrefix(o, "straggler") {
			stragglers++
		}
		fmt.Printf("  %-22s %s\n", a, o)
	}
	if res.Rows == nil {
		fatal(fmt.Errorf("query: no switch contributed rows"))
	}
	buckets, nonzero := 0, 0
	for _, row := range res.Rows {
		buckets += len(row)
		for _, v := range row {
			if v != 0 {
				nonzero++
			}
		}
	}
	fmt.Printf("merged %d rows × %d buckets (%d nonzero), tree depth %d, %d merges\n",
		len(res.Rows), buckets/max(len(res.Rows), 1), nonzero, res.Depth, res.Merges)

	if *estimate {
		spec, err := cli.ParseKeySpec(keyStr)
		if err != nil {
			fatal(err)
		}
		key := spec.Extract(p)
		var idx []uint32
		for i, c := range clients {
			if c == nil || outcome[i] != "" {
				continue
			}
			if idx, err = c.KeyIndices(frozenID, key); err == nil {
				break
			}
		}
		if idx == nil {
			fatal(fmt.Errorf("query: no contributing switch answered key_indices: %v", err))
		}
		min := ^uint32(0)
		for i, ix := range idx {
			if i >= len(res.Rows) || int(ix) >= len(res.Rows[i]) {
				fatal(fmt.Errorf("query: index %d out of range for merged row %d", ix, i))
			}
			if v := res.Rows[i][ix]; v < min {
				min = v
			}
		}
		fmt.Printf("estimate for %s @ epoch %d: %d (%d-of-%d lower bound)\n",
			spec, pinned, min, len(res.Contributed), len(addrs))
	}
	if *traceQ {
		// Knit the end-to-end tree: this process's spans plus every
		// reachable daemon's buffer, filtered to this query's trace.
		spans, _, _ := tr.Dump()
		for i, c := range clients {
			if c == nil {
				continue
			}
			dump, err := c.TraceDump(0)
			if err != nil {
				logger.Warnf("trace: %s: %v", addrs[i], err)
				continue
			}
			spans = append(spans, dump.Spans...)
		}
		fmt.Println()
		for _, tree := range tracing.Assemble(spans) {
			if tree.ID == root.Context().Trace {
				tree.Render(os.Stdout)
			}
		}
	}
	if policy == netwide.StragglerWait && (stragglers > 0 || len(res.Contributed) < len(addrs)) {
		os.Exit(1) // a wait-policy caller asked for all-or-nothing
	}
}

func cmdList(c *rpc.Client) {
	tasks, err := c.ListTasks()
	if err != nil {
		fatal(err)
	}
	if len(tasks) == 0 {
		fmt.Println("no tasks deployed")
		return
	}
	fmt.Printf("%-4s %-16s %-22s %-3s %-8s %-10s %s\n", "ID", "NAME", "ALGORITHM", "D", "GROUPS", "BUCKETS", "MEMORY")
	for _, t := range tasks {
		fmt.Printf("%-4d %-16s %-22s %-3d %-8v %-10d %dB\n",
			t.ID, t.Name, t.Algorithm, t.D, t.Groups, t.Buckets, t.MemoryBytes)
	}
}

func packetFromFlags(fs *flag.FlagSet, args []string) (*packet.Packet, string) {
	src := fs.String("src", "0.0.0.0", "source IP")
	dst := fs.String("dst", "0.0.0.0", "destination IP")
	sport := fs.Int("sport", 0, "source port")
	dport := fs.Int("dport", 0, "destination port")
	proto := fs.Int("proto", 6, "protocol")
	key := fs.String("key", "5tuple", "key spec the task uses")
	_ = fs.Parse(args)
	s, err := cli.ParseIPv4(*src)
	if err != nil {
		fatal(err)
	}
	d, err := cli.ParseIPv4(*dst)
	if err != nil {
		fatal(err)
	}
	return &packet.Packet{SrcIP: s, DstIP: d, SrcPort: uint16(*sport),
		DstPort: uint16(*dport), Proto: uint8(*proto)}, *key
}

func cmdEstimate(c *rpc.Client, args []string) {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	id := fs.Int("id", 0, "task id")
	p, keyStr := packetFromFlags(fs, args)
	spec, err := cli.ParseKeySpec(keyStr)
	if err != nil {
		fatal(err)
	}
	v, err := c.Estimate(*id, spec.Extract(p))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("task %d estimate for %s: %.2f\n", *id, spec, v)
}

func cmdCardinality(c *rpc.Client, args []string) {
	fs := flag.NewFlagSet("cardinality", flag.ExitOnError)
	id := fs.Int("id", 0, "task id")
	_ = fs.Parse(args)
	v, err := c.Cardinality(*id)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("task %d cardinality estimate: %.1f\n", *id, v)
}

func cmdContains(c *rpc.Client, args []string) {
	fs := flag.NewFlagSet("contains", flag.ExitOnError)
	id := fs.Int("id", 0, "task id")
	p, keyStr := packetFromFlags(fs, args)
	spec, err := cli.ParseKeySpec(keyStr)
	if err != nil {
		fatal(err)
	}
	v, err := c.Contains(*id, spec.Extract(p))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("task %d contains %s: %v\n", *id, spec, v)
}

func cmdDistribution(c *rpc.Client, args []string) {
	fs := flag.NewFlagSet("distribution", flag.ExitOnError)
	id := fs.Int("id", 0, "task id")
	top := fs.Int("top", 10, "sizes to print")
	_ = fs.Parse(args)
	res, err := c.Distribution(*id)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("task %d flow-size distribution (entropy %.3f bits):\n", *id, res.Entropy)
	for i, sz := range res.Sizes {
		if i >= *top {
			fmt.Printf("  ... %d more sizes\n", len(res.Sizes)-i)
			break
		}
		fmt.Printf("  size %-8d ≈ %.1f flows\n", sz, res.Counts[i])
	}
}

func cmdResources(c *rpc.Client) {
	res, err := c.Resources()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d tasks deployed; free buckets per CMU:\n", res.Tasks)
	for gi, cmus := range res.FreeBuckets {
		fmt.Printf("  group %d: %v\n", gi, cmus)
	}
}

func cmdReport(c *rpc.Client) {
	groups, err := c.ResourceReport()
	if err != nil {
		fatal(err)
	}
	for _, g := range groups {
		fmt.Printf("group %d: %d rules, %d TCAM entries, tasks %v\n",
			g.Group, g.Rules, g.TCAMEntries, g.Tasks)
		for i, k := range g.Keys {
			if k == "" {
				k = "<idle>"
			}
			fmt.Printf("  unit %d: %s\n", i, k)
		}
		fmt.Printf("  free buckets: %v\n", g.FreeBuckets)
	}
}

func cmdGen(c *rpc.Client, args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	flows := fs.Int("flows", 10000, "distinct flows")
	packets := fs.Int("packets", 500000, "packets")
	zipf := fs.Float64("zipf", 1.2, "Zipf skew")
	seed := fs.Int64("seed", 1, "seed")
	_ = fs.Parse(args)
	n, err := c.GenTrace(*flows, *packets, *zipf, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("generated %d packets\n", n)
}

func cmdReplay(c *rpc.Client, args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	n := fs.Int("n", 0, "packets to replay (0 = all)")
	_ = fs.Parse(args)
	done, err := c.Replay(*n)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replayed %d packets\n", done)
}

func cmdStats(c *rpc.Client, args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	metrics := fs.Bool("metrics", false, "dump the full telemetry report as Prometheus text")
	events := fs.Int("events", 0, "also print the last N reconfiguration journal events")
	_ = fs.Parse(args)
	s, err := c.Stats()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("packets processed: %d\ntrace loaded: %d packets\ntasks: %d\n",
		s.PacketsProcessed, s.TracePackets, s.Tasks)
	rep, err := c.Telemetry()
	if err != nil {
		fmt.Printf("telemetry: unavailable (%v)\n", err)
		return
	}
	if *metrics {
		telemetry.WriteMetricsReport(os.Stdout, rep)
		return
	}
	dp, cp := rep.DataPlane, rep.ControlPlane
	fmt.Printf("uptime: %v\n", time.Duration(rep.UptimeNs).Round(time.Second))
	fmt.Printf("stages: C=%d I=%d P=%d O=%d (recirculated %d)\n",
		dp.Stages.Compression, dp.Stages.Initialization, dp.Stages.Preparation,
		dp.Stages.Operation, dp.Recirculated)
	if len(dp.Rules) > 0 {
		fmt.Printf("%-6s %-4s %-5s %-12s %s\n", "GROUP", "CMU", "TASK", "OP", "HITS")
		for _, r := range dp.Rules {
			fmt.Printf("%-6d %-4d %-5d %-12s %d\n", r.Group, r.CMU, r.Task, r.Op, r.Hits)
		}
	}
	occ, buckets := 0, 0
	var clamps uint64
	for _, g := range dp.Registers {
		occ += g.Occupied
		buckets += g.Buckets
		clamps += g.Clamps
	}
	if buckets > 0 {
		fmt.Printf("registers: %d/%d buckets occupied (%.1f%%), %d clamp events\n",
			occ, buckets, 100*float64(occ)/float64(buckets), clamps)
	}
	fmt.Printf("snapshot version: %d; reconfigurations: %d (journal holds %d, dropped %d)\n",
		cp.SnapshotVersion, cp.EventsTotal, len(cp.Events), cp.EventsDropped)
	if n := cp.MutationLatency.Count; n > 0 {
		fmt.Printf("mutation latency: %d samples, mean %v\n",
			n, (time.Duration(cp.MutationLatency.SumNs) / time.Duration(n)).Round(time.Microsecond))
	}
	if *events > 0 {
		evs := cp.Events
		if len(evs) > *events {
			evs = evs[len(evs)-*events:]
		}
		for _, e := range evs {
			status := "ok"
			if !e.OK {
				status = "FAILED: " + e.Err
			}
			detail := e.Detail
			if detail != "" {
				detail = " " + detail
			}
			fmt.Printf("  #%d %s task=%d%s v%d→v%d %v %s\n",
				e.Seq, e.Kind, e.Task, detail, e.VersionBefore, e.VersionAfter,
				time.Duration(e.LatencyNs).Round(time.Microsecond), status)
		}
	}
}
