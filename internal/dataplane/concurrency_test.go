package dataplane

import (
	"sync"
	"testing"
)

// TestCondAddConcurrentExact: Cond-ADD with p2=+∞ is an unconditional add,
// which commutes per bucket — G goroutines hammering overlapping buckets
// through Apply's CAS loop must lose no increments. (Execute/ApplySeq are
// the single-writer variants and are exercised by the semantics tests.)
func TestCondAddConcurrentExact(t *testing.T) {
	const (
		goroutines = 8
		perG       = 20_000
		buckets    = 64
	)
	r := NewRegister(buckets, 32)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Stride patterns differ per goroutine so every bucket sees
				// contention from several writers.
				r.Apply(OpCondAdd, uint32((i*7+g)%buckets), 1, ^uint32(0))
			}
		}(g)
	}
	wg.Wait()

	var mass uint64
	for i := 0; i < buckets; i++ {
		mass += uint64(r.Read(uint32(i)))
	}
	if want := uint64(goroutines * perG); mass != want {
		t.Fatalf("total mass %d, want %d: CAS loop dropped increments", mass, want)
	}
}

// TestMaxConcurrentUpperBound: concurrent MAX updates must converge to the
// true maximum regardless of interleaving.
func TestMaxConcurrentExact(t *testing.T) {
	const goroutines = 8
	r := NewRegister(1, 32)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for v := uint32(0); v < 10_000; v++ {
				r.Apply(OpMax, 0, v*uint32(g+1), 0)
			}
		}(g)
	}
	wg.Wait()
	if want := uint32(9_999 * goroutines); r.Read(0) != want {
		t.Fatalf("max = %d, want %d", r.Read(0), want)
	}
}

// TestApplyWitnessesOldValue: Apply must return the exact pre-update value
// it CASed against — the DetectNew (Bloom) predicate depends on it.
func TestApplyWitnessesOldValue(t *testing.T) {
	r := NewRegister(4, 32)
	if _, old := r.Apply(OpAndOr, 0, 0b0101, 0b0101); old != 0 {
		t.Fatalf("first OR witnessed old=%d, want 0 (new flow)", old)
	}
	if _, old := r.Apply(OpAndOr, 0, 0b0101, 0b0101); old&0b0101 == 0 {
		t.Fatalf("second OR witnessed old=%d, want bits already set", old)
	}
	if res, old := r.Apply(OpCondAdd, 1, 5, ^uint32(0)); res != 5 || old != 0 {
		t.Fatalf("Cond-ADD returned (%d, %d), want (5, 0)", res, old)
	}
}
