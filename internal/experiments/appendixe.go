package experiments

import (
	"fmt"

	"flymon/internal/core"
	"flymon/internal/core/algorithms"
	"flymon/internal/packet"
	"flymon/internal/trace"
)

// AppendixE reproduces the Appendix-E analysis: splicing the pipeline's
// unused triangle areas into up to 3 extra CMU Groups reachable by
// mirror+recirculation. Capacity grows from 9 to 12 groups, but packets
// matching spliced-group tasks consume extra bandwidth — the table sweeps
// the spliced task's traffic share and reports the measured recirculation
// overhead (which must track the share, since only matching packets are
// mirrored).
func AppendixE(scale Scale, seed int64) *Table {
	l := core.PlanWithRecirculation(12)
	t := &Table{
		Title: fmt.Sprintf("Appendix E — Recirculation splicing: %d+%d groups in 12 stages",
			l.Groups, l.Mirrored),
		Header: []string{"Spliced-task share of SrcIP space", "Packets", "Recirculated", "Bandwidth overhead"},
	}

	flows, packets := scale.workload()
	flows /= 4
	packets /= 4
	tr := trace.Generate(trace.Config{Flows: flows, Packets: packets, Seed: seed})

	// Filters selecting ≈ 1/8, 1/4, 1/2 and all of the traffic by source
	// prefix.
	shares := []struct {
		label  string
		filter packet.Filter
	}{
		{"1/8", packet.Filter{SrcPrefix: packet.Prefix{Value: 0, Bits: 3}}},
		{"1/4", packet.Filter{SrcPrefix: packet.Prefix{Value: 0, Bits: 2}}},
		{"1/2", packet.Filter{SrcPrefix: packet.Prefix{Value: 0, Bits: 1}}},
		{"all", packet.MatchAll},
	}
	for _, sh := range shares {
		pl := core.NewPipeline(1) // the regular groups
		spliced := core.NewGroup(core.GroupConfig{ID: 100, Buckets: 65536, BitWidth: 32})
		if err := pl.AddSpliced(spliced); err != nil {
			panic(err)
		}
		if _, err := algorithms.InstallCMS(spliced, 1, sh.filter, packet.KeyFiveTuple,
			core.Const(1), 3, nil); err != nil {
			panic(err)
		}
		replay(pl, tr)
		overhead := float64(pl.Recirculated()) / float64(pl.Packets())
		t.Rows = append(t.Rows, []string{
			sh.label,
			itoa(int(pl.Packets())),
			itoa(int(pl.Recirculated())),
			pct(overhead),
		})
	}
	t.Notes = append(t.Notes,
		"only packets whose tasks live on spliced groups are mirrored (Appendix E): overhead equals the spliced tasks' packet share",
		"packet share exceeds the SrcIP-space share when heavy (Zipf) flows fall inside the filter")
	return t
}
