// Package analysis implements the control-plane halves of measurement
// algorithms whose data-plane state is a plain counter array: the MRAC
// Expectation-Maximization inversion of counter values into a flow-size
// distribution, and the Counter Braids iterative message-passing decoder.
//
// Keeping these separate from the data-plane structures mirrors FlyMon's
// decomposition step (§3.1.2): only the stateful update runs on the switch;
// everything here runs after register readout.
package analysis

import "math"

// MRACDistribution inverts an MRAC counter array into an estimated
// flow-size distribution dist[s] ≈ number of flows of size s, using the
// Expectation-Maximization procedure of Kumar et al. under a Poisson
// approximation of per-counter flow collisions.
//
// maxSize caps the largest flow size modelled by EM; counters above the cap
// are attributed to single large flows (heavy-tail flows rarely collide in
// practice, and EM over huge supports is numerically pointless). iters
// bounds the EM rounds.
func MRACDistribution(counters []uint32, maxSize, iters int) map[uint64]float64 {
	m := len(counters)
	if m == 0 {
		return nil
	}
	// Histogram of counter values within the modelled support.
	hist := make(map[uint32]int)
	heavy := make(map[uint64]float64)
	zeros := 0
	maxVal := uint32(0)
	for _, c := range counters {
		if c == 0 {
			zeros++
			continue
		}
		if int(c) > maxSize {
			heavy[uint64(c)]++ // treat as an isolated large flow
			continue
		}
		hist[c]++
		if c > maxVal {
			maxVal = c
		}
	}
	if len(hist) == 0 {
		return heavy
	}

	// Initial flow-count estimate via the zero-counter fraction (the MRAC
	// paper's n̂ = m·ln(m/m0); when no counter is empty fall back to
	// counting non-zero buckets).
	var nEst float64
	if zeros > 0 {
		nEst = float64(m) * math.Log(float64(m)/float64(zeros))
	} else {
		nEst = float64(m) * 1.5
	}
	if nEst < 1 {
		nEst = 1
	}

	// φ[s] = probability a random flow has size s; initialised from the
	// naive reading (each non-zero counter is one flow of that size).
	support := int(maxVal)
	phi := make([]float64, support+1)
	var total float64
	for v, cnt := range hist {
		phi[v] += float64(cnt)
		total += float64(cnt)
	}
	for s := range phi {
		phi[s] /= total
	}

	lambda := nEst / float64(m)
	if lambda > 8 {
		lambda = 8 // heavier loads make EM numerically unstable; clamp
	}

	for it := 0; it < iters; it++ {
		phi = emRound(hist, phi, lambda)
	}

	dist := make(map[uint64]float64, len(phi))
	for s := 1; s <= support; s++ {
		if phi[s] <= 1e-12 {
			continue
		}
		dist[uint64(s)] = phi[s] * nEst
	}
	for s, n := range heavy {
		dist[s] += n
	}
	return dist
}

// emRound performs one EM iteration: for each observed counter value v it
// distributes v's probability mass across the flow-size compositions that
// could have produced it (0, 1 or 2 colliding flows — collisions of three
// or more flows in one counter are vanishingly rare at sane loads and are
// truncated, which is the standard practical simplification).
func emRound(hist map[uint32]int, phi []float64, lambda float64) []float64 {
	support := len(phi) - 1
	next := make([]float64, support+1)
	// Poisson weights for 1 and 2 flows in a bucket, conditioned on ≥1.
	p1 := lambda * math.Exp(-lambda)
	p2 := lambda * lambda / 2 * math.Exp(-lambda)
	norm := p1 + p2
	if norm <= 0 {
		return phi
	}
	p1, p2 = p1/norm, p2/norm

	var total float64
	for v, cnt := range hist {
		val := int(v)
		// Case 1: a single flow of size v.
		w1 := p1 * phiAt(phi, val)
		// Case 2: two flows of sizes s and v−s.
		var w2 float64
		pair := make([]float64, 0, val)
		for s := 1; s < val; s++ {
			w := phiAt(phi, s) * phiAt(phi, val-s)
			pair = append(pair, w)
			w2 += w
		}
		w2 *= p2
		z := w1 + w2
		if z <= 0 {
			// No explanation under current φ: re-inject as single flow.
			next[val] += float64(cnt)
			total += float64(cnt)
			continue
		}
		c := float64(cnt)
		next[val] += c * w1 / z
		total += c * w1 / z
		if w2 > 0 {
			scale := c * p2 / z
			for s := 1; s < val; s++ {
				w := pair[s-1] * scale
				if w <= 0 {
					continue
				}
				next[s] += w
				next[val-s] += w
				total += 2 * w
			}
		}
	}
	if total > 0 {
		for s := range next {
			next[s] /= total
		}
	}
	return next
}

func phiAt(phi []float64, s int) float64 {
	if s < 1 || s >= len(phi) {
		return 0
	}
	return phi[s]
}

// CBDecode runs the Counter Braids iterative message-passing decoder (Lu et
// al., SIGMETRICS '08). counters[c] holds the sum of the true values of all
// items whose edge lists include c; edges[i] lists the counters item i
// hashes to. The decoder alternates counter→item messages
// ν_{c→i} = max(value_c − Σ_{i'≠i} μ_{i'→c}, 0) and item→counter messages
// μ_{i→c} = min_{c'≠c} ν_{c'→i}, which produce alternating upper/lower
// bounds that converge when the braid is decodable; the returned estimate
// is the final min-message per item.
func CBDecode(counters []uint64, edges [][]uint32, iters int) []uint64 {
	nItems := len(edges)
	// Message storage per (item, edge-slot).
	nu := make([][]float64, nItems) // counter→item
	mu := make([][]float64, nItems) // item→counter
	for i, e := range edges {
		nu[i] = make([]float64, len(e))
		mu[i] = make([]float64, len(e))
		for j := range e {
			nu[i][j] = float64(counters[e[j]])
		}
	}
	// Per-counter incoming-μ sums, rebuilt each round.
	sumMu := make([]float64, len(counters))
	cntMu := make([]int, len(counters))

	for it := 0; it < iters; it++ {
		// Item→counter: μ_{i→c} = min over other edges' ν (or ν itself for
		// degree-1 items).
		for i, e := range edges {
			for j := range e {
				best := math.Inf(1)
				for j2 := range e {
					if j2 == j {
						continue
					}
					if nu[i][j2] < best {
						best = nu[i][j2]
					}
				}
				if math.IsInf(best, 1) {
					best = nu[i][j]
				}
				mu[i][j] = best
			}
		}
		// Aggregate μ per counter.
		clearFloats(sumMu)
		clearInts(cntMu)
		for i, e := range edges {
			for j, c := range e {
				sumMu[c] += mu[i][j]
				cntMu[c]++
			}
		}
		// Counter→item: ν_{c→i} = max(value − (Σμ − μ_{i→c}), 0).
		for i, e := range edges {
			for j, c := range e {
				v := float64(counters[c]) - (sumMu[c] - mu[i][j])
				if v < 0 {
					v = 0
				}
				nu[i][j] = v
			}
		}
	}

	out := make([]uint64, nItems)
	for i, e := range edges {
		best := math.Inf(1)
		for j := range e {
			if nu[i][j] < best {
				best = nu[i][j]
			}
		}
		if math.IsInf(best, 1) || best < 0 {
			best = 0
		}
		out[i] = uint64(best + 0.5)
	}
	return out
}

// HeavyChangers reports the keys whose estimated frequency changed by at
// least `threshold` between two measurement epochs — the heavy-changer
// task of Table 1, computed in the control plane from two epochs' register
// readouts of the same frequency task.
func HeavyChangers[K comparable](prev, cur map[K]uint64, threshold uint64) map[K]bool {
	out := make(map[K]bool)
	seen := make(map[K]bool, len(prev)+len(cur))
	for k := range prev {
		seen[k] = true
	}
	for k := range cur {
		seen[k] = true
	}
	for k := range seen {
		a, b := prev[k], cur[k]
		var d uint64
		if a > b {
			d = a - b
		} else {
			d = b - a
		}
		if d >= threshold {
			out[k] = true
		}
	}
	return out
}

func clearFloats(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

func clearInts(x []int) {
	for i := range x {
		x[i] = 0
	}
}
