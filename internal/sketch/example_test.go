package sketch_test

import (
	"fmt"

	"flymon/internal/packet"
	"flymon/internal/sketch"
)

// Count per-flow packets with a Count-Min Sketch.
func ExampleCMS() {
	cms := sketch.NewCMS(packet.KeyFiveTuple, 3, 1024)
	p := packet.Packet{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	for i := 0; i < 5; i++ {
		cms.AddPacket(&p)
	}
	fmt.Println(cms.Estimate(&p))
	// Output: 5
}

// Check set membership with a Bloom filter: no false negatives.
func ExampleBloom() {
	bf := sketch.NewBloom(packet.KeySrcIP, 1<<12, 3)
	in := packet.Packet{SrcIP: packet.IPv4(10, 0, 0, 1)}
	out := packet.Packet{SrcIP: packet.IPv4(192, 168, 0, 9)}
	bf.Insert(&in)
	fmt.Println(bf.Contains(&in), bf.Contains(&out))
	// Output: true false
}

// Solve a BeauCoup coupon configuration for a distinct-count threshold.
func ExampleSolveCouponConfig() {
	cfg := sketch.SolveCouponConfig(512)
	e := cfg.ExpectedDraws()
	fmt.Println(e > 256 && e < 1024)
	// Output: true
}
