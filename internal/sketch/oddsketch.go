package sketch

import (
	"fmt"
	"math"
	"math/bits"

	"flymon/internal/hashing"
	"flymon/internal/packet"
)

// OddSketch (Mitzenmacher et al., WWW '14) is a parity bitmap: inserting an
// element toggles one bit, so bit i ends up holding the parity of the
// number of distinct elements hashed to it. The XOR of two odd sketches is
// the odd sketch of the sets' symmetric difference, whose size is
// recoverable from the number of set bits:
// |AΔB| ≈ −(m/2)·ln(1 − 2·ones/m). The paper lists it as the natural use
// of FlyMon's reserved fourth stateful-operation slot (§6).
//
// Note: inserting an element twice cancels it. Callers deduplicate (insert
// each distinct flow key once), as the similarity use case requires.
type OddSketch struct {
	spec  packet.KeySpec
	mBits int
	words []uint64
	hash  *hashing.Unit
}

// NewOddSketch builds an odd sketch with mBits bits (rounded up to a power
// of two) keyed by spec.
func NewOddSketch(spec packet.KeySpec, mBits int) *OddSketch {
	if mBits <= 0 {
		panic(fmt.Sprintf("sketch: invalid odd-sketch size %d", mBits))
	}
	mBits = ceilPow2(mBits)
	h := hashing.NewUnit(0)
	h.Configure(spec)
	return &OddSketch{spec: spec, mBits: mBits, words: make([]uint64, mBits/64+1), hash: h}
}

// Insert toggles the bit of p's flow key.
func (o *OddSketch) Insert(p *packet.Packet) { o.toggle(o.hash.Hash(p)) }

// InsertKey toggles the bit of a canonical key.
func (o *OddSketch) InsertKey(k packet.CanonicalKey) { o.toggle(o.hash.HashBytes(k[:])) }

func (o *OddSketch) toggle(h uint32) {
	bit := h & uint32(o.mBits-1)
	o.words[bit/64] ^= 1 << (bit % 64)
}

// Bits returns the sketch size in bits.
func (o *OddSketch) Bits() int { return o.mBits }

// OnesCount returns the number of set (odd-parity) bits.
func (o *OddSketch) OnesCount() int {
	n := 0
	for _, w := range o.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// SymmetricDifference estimates |A Δ B| from two same-geometry sketches.
func (o *OddSketch) SymmetricDifference(other *OddSketch) (float64, error) {
	if o.mBits != other.mBits {
		return 0, fmt.Errorf("sketch: odd-sketch sizes differ (%d vs %d)", o.mBits, other.mBits)
	}
	ones := 0
	for i := range o.words {
		ones += bits.OnesCount64(o.words[i] ^ other.words[i])
	}
	return OddSketchDifferenceFromOnes(ones, o.mBits), nil
}

// OddSketchDifferenceFromOnes inverts a parity-bitmap popcount into a
// symmetric-difference estimate — the control-plane half shared with the
// CMU composition.
func OddSketchDifferenceFromOnes(ones, mBits int) float64 {
	m := float64(mBits)
	x := 1 - 2*float64(ones)/m
	if x <= 0 {
		// Saturated: half the bits disagree; the estimate diverges.
		return m * math.Log(m) / 2
	}
	return -m / 2 * math.Log(x)
}

// Jaccard estimates the Jaccard similarity of the two sets given their
// (known or estimated) cardinalities: J = 1 − |AΔB| / (|A|+|B|).
// The union size |A∪B| = (|A|+|B|+|AΔB|)/2.
func (o *OddSketch) Jaccard(other *OddSketch, cardA, cardB float64) (float64, error) {
	diff, err := o.SymmetricDifference(other)
	if err != nil {
		return 0, err
	}
	union := (cardA + cardB + diff) / 2
	if union <= 0 {
		return 1, nil
	}
	j := (union - diff) / union
	if j < 0 {
		j = 0
	}
	return j, nil
}

// MemoryBytes returns the bitmap footprint.
func (o *OddSketch) MemoryBytes() int { return o.mBits / 8 }

// Reset clears the bitmap.
func (o *OddSketch) Reset() { clear(o.words) }
