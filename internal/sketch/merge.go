package sketch

import "fmt"

// Mergeability: sketches built with the SAME key spec and geometry use the
// same hash functions (the hashing.Unit polynomials are deterministic per
// index), so their states combine linearly — the property network-wide
// measurement relies on when a central SDM controller aggregates register
// readouts from many switches (§3.4). Each merge below mutates the
// receiver in place.

// Merge adds another CMS's counters into s. Valid when each packet was
// observed by exactly one of the two sketches (e.g. distinct ingress
// switches): the merged sketch is exactly the CMS of the union stream.
func (s *CMS) Merge(other *CMS) error {
	if s.d != other.d || s.w != other.w || !s.spec.Equal(other.spec) {
		return fmt.Errorf("sketch: CMS geometries differ (d=%d/%d w=%d/%d)", s.d, other.d, s.w, other.w)
	}
	for j := 0; j < s.d; j++ {
		mergeAddKernel(s.rows[j], other.rows[j])
	}
	return nil
}

// Union ORs another Bloom filter into b: the result answers membership for
// the union of the two inserted sets.
func (b *Bloom) Union(other *Bloom) error {
	if b.mBits != other.mBits || b.k != other.k || !b.spec.Equal(other.spec) {
		return fmt.Errorf("sketch: Bloom geometries differ (m=%d/%d k=%d/%d)", b.mBits, other.mBits, b.k, other.k)
	}
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
	return nil
}

// Merge takes the element-wise register maximum of another HLL into h: the
// result estimates the cardinality of the union of the two observed sets
// (duplicate observation across sketches is harmless — HLL merge is
// idempotent).
func (h *HLL) Merge(other *HLL) error {
	if h.b != other.b || !h.spec.Equal(other.spec) {
		return fmt.Errorf("sketch: HLL precisions differ (b=%d/%d)", h.b, other.b)
	}
	for i := range h.regs {
		if other.regs[i] > h.regs[i] {
			h.regs[i] = other.regs[i]
		}
	}
	return nil
}

// Merge XORs another odd sketch into o: the result is the odd sketch of
// the symmetric difference of the two inserted sets (and, for disjoint
// sets, of their union).
func (o *OddSketch) Merge(other *OddSketch) error {
	if o.mBits != other.mBits || !o.spec.Equal(other.spec) {
		return fmt.Errorf("sketch: odd-sketch sizes differ (%d vs %d)", o.mBits, other.mBits)
	}
	for i := range o.words {
		o.words[i] ^= other.words[i]
	}
	return nil
}

// MergeMaxRegisters takes the element-wise maximum of two raw register
// readouts (MAX-operation tasks: per-key maxima, HLL ranks). Both slices
// must have the same length; the result is written into dst.
func MergeMaxRegisters(dst, src []uint32) error {
	if len(dst) != len(src) {
		return fmt.Errorf("sketch: register lengths differ (%d vs %d)", len(dst), len(src))
	}
	mergeMaxKernel(dst, src)
	return nil
}

// MergeAddRegisters adds two raw register readouts element-wise with
// saturation (Cond-ADD/counter tasks whose streams are disjoint). The
// result is written into dst.
func MergeAddRegisters(dst, src []uint32) error {
	if len(dst) != len(src) {
		return fmt.Errorf("sketch: register lengths differ (%d vs %d)", len(dst), len(src))
	}
	mergeAddKernel(dst, src)
	return nil
}

// MergeOrRegisters ORs two raw register readouts element-wise (bitmap
// tasks: Bloom filters, coupon tables). The result is written into dst.
func MergeOrRegisters(dst, src []uint32) error {
	if len(dst) != len(src) {
		return fmt.Errorf("sketch: register lengths differ (%d vs %d)", len(dst), len(src))
	}
	mergeOrKernel(dst, src)
	return nil
}

// MergeXorRegisters XORs two raw register readouts element-wise (odd
// sketches: the merged state describes the symmetric difference of the two
// inserted sets, i.e. the union when the per-switch streams are disjoint).
// The result is written into dst.
func MergeXorRegisters(dst, src []uint32) error {
	if len(dst) != len(src) {
		return fmt.Errorf("sketch: register lengths differ (%d vs %d)", len(dst), len(src))
	}
	mergeXorKernel(dst, src)
	return nil
}
