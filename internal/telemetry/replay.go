package telemetry

import "sync"

// ReplayReport is the replay-ingestion section of a Report: how far a
// trace replay has progressed and how the span ring between the mmap
// producers and the pool workers is behaving. Occupancy near capacity
// with push stalls means the sketch engine is the bottleneck; occupancy
// near zero with pop stalls means ingestion is.
type ReplayReport struct {
	Active        bool   `json:"active"`
	Packets       uint64 `json:"packets"`
	Producers     int    `json:"producers"`
	RingCap       int    `json:"ring_cap"`
	RingOccupancy int    `json:"ring_occupancy"`
	RingSpans     uint64 `json:"ring_spans"`
	PushStalls    uint64 `json:"push_stalls"`
	PopStalls     uint64 `json:"pop_stalls"`
}

// ReplaySource is implemented by the replay driver (mmtrace.Replayer); the
// Registry polls it at scrape time while a replay is attached.
type ReplaySource interface {
	TelemetryReplay() ReplayReport
}

// replayHook holds the currently attached replay source. Detaching latches
// the source's final report so post-replay scrapes still show totals.
type replayHook struct {
	mu    sync.Mutex
	src   ReplaySource
	final ReplayReport
	ever  bool
}

func (h *replayHook) attach(s ReplaySource) {
	h.mu.Lock()
	h.src = s
	h.ever = h.ever || s != nil
	h.mu.Unlock()
}

func (h *replayHook) detach(s ReplaySource) {
	h.mu.Lock()
	if h.src == s && s != nil {
		h.final = s.TelemetryReplay()
		h.final.Active = false
		h.src = nil
	}
	h.mu.Unlock()
}

func (h *replayHook) report() (ReplayReport, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.src != nil {
		rep := h.src.TelemetryReplay()
		rep.Active = true
		return rep, true
	}
	return h.final, h.ever
}

// SetReplaySource attaches a live replay to the registry; /metrics gains
// the flymon_replay_* family while it runs.
func (r *Registry) SetReplaySource(s ReplaySource) { r.replay.attach(s) }

// ClearReplaySource detaches s (if still attached), latching its final
// counters so they survive into post-replay scrapes.
func (r *Registry) ClearReplaySource(s ReplaySource) { r.replay.detach(s) }
