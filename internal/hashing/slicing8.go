package hashing

import (
	"sync"

	"flymon/internal/packet"
)

// Table8 is a slicing-by-8 CRC32 lookup table set for one (reversed)
// polynomial. The standard library only ships accelerated update paths for
// the IEEE and Castagnoli polynomials; FlyMon's hash units model Tofino's
// per-unit polynomial diversity, so the other six custom polynomials would
// fall back to the stdlib's byte-at-a-time loop. A Table8 gives every
// polynomial the same word-at-a-time treatment: eight bytes per iteration,
// eight table lookups, no data-dependent branches.
//
// The computed checksums are bit-identical to crc32.Checksum with a table
// built by crc32.MakeTable for the same polynomial — slicing-by-8 is an
// algebraic regrouping of the same CRC, not a different hash — so compiled
// snapshots, interpretive units, and control-plane readout keep agreeing on
// bucket locations across this change.
type Table8 [8][256]uint32

// MakeTable8 builds the slicing-by-8 tables for a reversed polynomial.
func MakeTable8(poly uint32) *Table8 {
	t := new(Table8)
	for i := range t[0] {
		crc := uint32(i)
		for j := 0; j < 8; j++ {
			if crc&1 == 1 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
		t[0][i] = crc
	}
	for i := range t[0] {
		crc := t[0][i]
		for j := 1; j < 8; j++ {
			crc = t[0][crc&0xFF] ^ crc>>8
			t[j][i] = crc
		}
	}
	return t
}

// update advances crc (already inverted) over b, eight bytes at a time.
func (t *Table8) update(crc uint32, b []byte) uint32 {
	for len(b) >= 8 {
		crc ^= uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
		crc = t[0][b[7]] ^ t[1][b[6]] ^ t[2][b[5]] ^ t[3][b[4]] ^
			t[4][crc>>24] ^ t[5][crc>>16&0xFF] ^
			t[6][crc>>8&0xFF] ^ t[7][crc&0xFF]
		b = b[8:]
	}
	for _, v := range b {
		crc = t[0][byte(crc)^v] ^ crc>>8
	}
	return crc
}

// Checksum digests arbitrary bytes, matching crc32.Checksum for the same
// polynomial.
func (t *Table8) Checksum(b []byte) uint32 {
	return ^t.update(^uint32(0), b)
}

// ChecksumKey digests a canonical key in word-sized chunks: two 8-byte
// slicing rounds cover the 16 leading bytes, a 4-byte tail finishes the
// timestamp and padding. Taking the key by pointer keeps the caller's
// stack copy from escaping — this is the data plane's zero-allocation
// digest primitive.
func (t *Table8) ChecksumKey(k *packet.CanonicalKey) uint32 {
	crc := ^uint32(0)

	crc ^= uint32(k[0]) | uint32(k[1])<<8 | uint32(k[2])<<16 | uint32(k[3])<<24
	crc = t[0][k[7]] ^ t[1][k[6]] ^ t[2][k[5]] ^ t[3][k[4]] ^
		t[4][crc>>24] ^ t[5][crc>>16&0xFF] ^
		t[6][crc>>8&0xFF] ^ t[7][crc&0xFF]

	crc ^= uint32(k[8]) | uint32(k[9])<<8 | uint32(k[10])<<16 | uint32(k[11])<<24
	crc = t[0][k[15]] ^ t[1][k[14]] ^ t[2][k[13]] ^ t[3][k[12]] ^
		t[4][crc>>24] ^ t[5][crc>>16&0xFF] ^
		t[6][crc>>8&0xFF] ^ t[7][crc&0xFF]

	crc = t[0][byte(crc)^k[16]] ^ crc>>8
	crc = t[0][byte(crc)^k[17]] ^ crc>>8
	crc = t[0][byte(crc)^k[18]] ^ crc>>8
	crc = t[0][byte(crc)^k[19]] ^ crc>>8

	return ^crc
}

// unitTables caches one Table8 per hash-unit polynomial: units are built
// per group and tables are 8 KB each, so construction is shared and lazy.
var (
	unitTables    = make([]*Table8, len(polynomials))
	unitTableOnce = make([]sync.Once, len(polynomials))
)

// tableFor returns the cached slicing-by-8 tables of polynomial index i.
func tableFor(i int) *Table8 {
	unitTableOnce[i].Do(func() { unitTables[i] = MakeTable8(polynomials[i]) })
	return unitTables[i]
}
