package core

import "flymon/internal/dataplane"

// This file implements the pipeline layout planner: cross-stacking CMU
// Groups across MAU stages (§3.2, Fig. 8) and the PHV-driven scalability
// model (Fig. 13c).

// Layout describes a cross-stacked placement of CMU Groups.
type Layout struct {
	Stages int
	Groups int
	// Mirrored counts additional groups spliced from the triangle areas at
	// the pipeline's ends via mirror+recirculate (Appendix E); zero unless
	// planned with recirculation.
	Mirrored int
}

// PlanCrossStacked returns the maximal cross-stacked layout for a pipeline
// of `stages` MAU stages. Each group spans StagesPerGroup consecutive
// stages; consecutive groups are shifted by one stage; a stage hosts at
// most one stage-slice of each kind because each slice saturates its
// dominant resource (compression takes the hash budget share, operation
// the SALUs, ...). With S stages the planner fits S − StagesPerGroup + 1
// groups, capped by the per-stage resource shares (hash: 2 slices/stage,
// SALU: 1 operation slice/stage) — for Tofino's 12 stages that is 9 groups
// (27 CMUs), the paper's headline.
func PlanCrossStacked(stages int) Layout {
	if stages < StagesPerGroup {
		return Layout{Stages: stages}
	}
	return Layout{Stages: stages, Groups: stages - StagesPerGroup + 1}
}

// PlanWithRecirculation extends the plan with the Appendix-E optimization:
// the unused triangle areas at the pipeline's head and tail can be spliced
// into ⌊(StagesPerGroup−1)·2/StagesPerGroup⌋... in the paper's 12-stage
// case, 3 extra groups, at the cost of mirroring and recirculating the
// packets that use them.
func PlanWithRecirculation(stages int) Layout {
	l := PlanCrossStacked(stages)
	if l.Groups > 0 {
		// Head and tail triangles together hold (StagesPerGroup−1) stage
		// slices of each kind, i.e. StagesPerGroup−1 spliced groups.
		l.Mirrored = StagesPerGroup - 1
	}
	return l
}

// Utilization returns the fraction of the allocated stages' hash and SALU
// budgets the layout consumes (Fig. 13b). Each group uses
// CompressionUnits + CMUsPerGroup hash units (compression + SALU
// addressing) and CMUsPerGroup SALUs.
func (l Layout) Utilization() dataplane.Utilization {
	if l.Stages == 0 {
		return dataplane.Utilization{}
	}
	cap_ := dataplane.StageCapacity().Scale(l.Stages)
	used := GroupStageResources().Scale(l.Groups)
	return dataplane.UtilizationOf(used, cap_)
}

// GroupStageResources returns the stage-local resources one cross-stacked
// group consumes (PHV excluded; see GroupPHVBits).
func GroupStageResources() dataplane.Resources {
	return dataplane.Resources{
		HashUnits:     CompressionUnits + CMUsPerGroup,
		SALUs:         CMUsPerGroup,
		SRAMBlocks:    CMUsPerGroup * dataplane.SRAMBlocksFor(DefaultBuckets, DefaultBitWidth),
		TCAMBlocks:    dataplane.TCAMBlocksPerStage/8 + dataplane.TCAMBlocksPerStage/2,
		VLIWSlots:     vliwPerGroup(),
		LogicalTables: 2 + 2*CMUsPerGroup,
	}
}

// PHVBudgetForMeasurement is the PHV share available to measurement after
// the baseline switch program's own headers and metadata (Fig. 13c model).
var PHVBudgetForMeasurement = dataplane.PHVBits - dataplane.BaselineSwitchProfile().PHVBits

// MaxCMUsByPHV returns how many CMUs fit the measurement PHV budget for a
// candidate key set of keyBits, with and without the less-copy compression
// strategy (Fig. 13c). The cross-stacking SALU cap (27 CMUs in 12 stages)
// bounds both.
func MaxCMUsByPHV(keyBits int, compressed bool) int {
	budget := PHVBudgetForMeasurement
	saluCap := PlanCrossStacked(dataplane.NumStages).Groups * CMUsPerGroup
	var n int
	if compressed {
		// Groups share compressed keys: count whole groups, then fit any
		// partial group the remainder allows.
		perGroup := GroupPHVBits(CompressionUnits, CMUsPerGroup)
		n = budget / perGroup * CMUsPerGroup
		rem := budget%perGroup - 32*CompressionUnits
		if rem >= 64 {
			n += rem / 64
		}
	} else {
		n = budget / UncompressedPHVBits(keyBits)
	}
	if n > saluCap {
		n = saluCap
	}
	if n < 0 {
		n = 0
	}
	return n
}
